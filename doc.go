// Package repro estimates the distribution of a numerical attribute under
// local differential privacy (LDP), implementing the SIGMOD 2020 paper
// "Estimating Numerical Distributions under Local Differential Privacy"
// (Li, Wang, Lopuhaä-Zwakenberg, Skoric, Li).
//
// # The problem
//
// Each of n users holds a private numerical value v ∈ [0,1] (incomes, ages,
// session durations, ...). An untrusted aggregator wants the distribution of
// the values. Under ε-LDP every user randomizes their value on-device before
// sending it, so the aggregator never sees anything sensitive; the challenge
// is reconstructing an accurate distribution from the noisy reports.
//
// # The method
//
// The paper's (and this package's) headline method is the Square Wave
// mechanism with Expectation–Maximization and Smoothing (SW+EMS): the user
// reports a value near their true value with an e^ε-times-higher density
// than a far value ("square wave" density), and the aggregator inverts the
// aggregate report histogram by maximum likelihood with a smoothness prior.
//
// # Quick start
//
//	res, err := repro.EstimateDistribution(values, repro.DefaultOptions(1.0))
//	if err != nil { ... }
//	fmt.Println(res.Mean(), res.Quantile(0.5))
//
// For streaming collection, pair a Client (user side) with an Aggregator
// (collector side):
//
//	client, _ := repro.NewClient(opts)
//	agg, _ := repro.NewAggregator(opts)
//	for _, v := range values {
//		agg.Ingest(client.Report(v)) // Report runs on the user's device
//	}
//	res, _ := agg.Estimate()
//
// Baseline methods from the paper's evaluation (HH-ADMM, plain hierarchical
// histograms, HaarHRR, CFO-with-binning) are available through Estimate with
// an explicit Method, for comparisons and research use.
//
// # Mechanisms
//
// The streaming pipeline's reporting mechanism is pluggable
// (Options.Mechanism): alongside the default continuous Square Wave ("sw")
// the same Client/Aggregator pair runs the discrete Square Wave
// ("sw-discrete") and the categorical frequency oracles of the paper's
// comparison section — "grr", "oue", "sue", "olh" and "hrr". Scalar-report
// mechanisms keep the Report/Ingest surface; every mechanism works through
// the vector form:
//
//	opts := repro.Options{Epsilon: 1, Buckets: 64, Mechanism: "oue"}
//	client, _ := repro.NewClient(opts)
//	agg, _ := repro.NewAggregator(opts)
//	_ = agg.IngestReport(client.Perturb(v)) // Perturb runs on the user's device
//
// Mechanism "auto" picks the lower-variance oracle for the stream's (ε, d)
// at construction, using the paper's Section 4.1 rule: GRR while
// d−2 < 3e^ε, OLH beyond. Mechanism selection guidance (variance formulas,
// report sizes, reconstruction paths) is tabulated in README.md; the
// ε-LDP conformance of every mechanism is property-tested in
// internal/mechanism.
//
// # Streams and queries
//
// A Streams registry hosts any number of named attributes (ages, incomes,
// session lengths, ...), each with its own Options and concurrency-safe
// Aggregator, and answers the analytics the reconstruction exists to serve
// — range probability, CDF, arbitrary quantiles, mean/variance, top-k
// buckets with significance scores:
//
//	streams := repro.NewStreams()
//	agg, _ := streams.Declare("age", repro.DefaultOptions(1.0))
//	... ingest ...
//	med, _ := streams.Query("age", repro.QueryRequest{Type: repro.QueryQuantile, Qs: []float64{0.5, 0.9}})
//
// The same queries are available on any Result via Result.Query (plus the
// Quantiles and TopK shorthands). Streams.Save and Streams.Load persist
// every stream's report histogram to a checksummed snapshot file (written
// atomically), interoperable with the HTTP collector's -snapshot files;
// Streams.Drop retires a stream without restarting anything.
//
// # Windowed collection
//
// An Aggregator built with Options.Epoch set is epoch-rotated: reports land
// in a live epoch whose histogram seals every Epoch (drive rotation with
// Advance(now) on your clock, or force it with Rotate), the last
// Options.Retain sealed epochs are kept, and EstimateWindow reconstructs
// any retained range with the collector's selector syntax:
//
//	agg, _ := repro.NewAggregator(repro.Options{Epsilon: 1, Epoch: time.Hour, Retain: 24})
//	... ingest, and periodically: agg.Advance(time.Now()) ...
//	lastDay, _ := agg.EstimateWindow("last:24") // sliding 24-hour window
//	hour3, _ := agg.EstimateWindow("epochs:3..3")
//
// Old epochs age out of every estimate and of persistence, so a long-running
// collection answers "what did the distribution look like recently" instead
// of averaging over its whole history. Windowed streams persist through
// Streams.Save with their rotation clock and sealed epochs (snapshot payload
// version 4, which also records each stream's mechanism and the federation
// cursors; version ≤ 3 files still load — pre-v3 streams default to "sw",
// v1 history lands in the live epoch, and pre-v4 files simply carry no
// federation state).
//
// # Collection at scale
//
// The Aggregator is built for heavy concurrent ingestion: reports land in a
// striped histogram of atomic counters (one stripe per CPU, Options.Shards
// overrides), so Ingest and IngestBatch take no lock and may be called from
// any number of goroutines; Estimate works from a non-blocking snapshot and
// never stalls writers. Options.Workers additionally partitions the EM
// reconstruction's matrix products across a reusable worker pool — the
// parallel estimate is bit-identical to the serial one, so it is purely a
// latency knob.
//
// The same substrate backs the HTTP collector (internal/ldphttp, run with
// cmd/ldpserver), which serves named streams over POST /streams, GET
// /streams, DELETE /streams/{name}, POST /report, POST /batch, GET
// /estimate, GET /query, POST /query and GET /config: each stream runs its
// declared mechanism ({"mechanism": "oue"} on POST /streams, mech=oue in
// the -stream flag), ingestion is lock-free per stream, and a pool of
// refresh workers (-refresh-workers, default GOMAXPROCS) drains a
// staleness-ordered dirty queue of warm-started refreshes (EM/EMS for
// channel mechanisms into per-stream zero-allocation workspaces, direct
// debiased estimates for the oracles) — and rotates windowed streams'
// epochs — so
// estimation cost never lands on a request goroutine (a not-yet-computed
// estimate answers 503 with pending_reports instead of blocking; window
// selectors ride the same contract via window=last:K and
// window=epochs:i..j). The -snapshot flag makes the collector durable
// across restarts, windowed streams resuming mid-epoch with bit-identical
// window estimates. See README.md for the operational details.
//
// # Federation
//
// One collector scales to one machine; a fleet of reporting users wants a
// tier of them. The federation layer (internal/federate) connects running
// collectors: edge servers near the clients accumulate reports in their own
// striped histograms and periodically POST the increments since their last
// acknowledged push — keyed by stream and epoch index, fingerprinted with
// the stream's mechanism/ε/granularity/bandwidth, CRC-checked and
// sequence-numbered — to a root's /federation/push endpoint, which merges
// each delta into the matching live or sealed epoch and answers queries
// over the union:
//
//	clients ──▶ edge A ─┐
//	clients ──▶ edge B ─┼── deltas ──▶ root ──▶ GET /estimate, /query
//	clients ──▶ edge C ─┘
//
// The protocol is exact: the root's histogram after every acknowledged push
// equals what a single collector ingesting every edge's reports would hold
// (the serving tests assert the reconstructions bit-identical). Replays —
// retries after a lost ack, or an edge restarted from its snapshot — are
// detected by per-edge sequence numbers and payload checksums and skipped,
// so crashes can neither lose nor double-count a delta. Run an edge with
// "ldpserver -push-to http://root:8080 -edge-id sfo-1", a root with
// "ldpserver -accept-federation" (add -federation-auto-declare to let edges
// declare their streams), and inspect the per-edge high-water marks on GET
// /federation/peers — or programmatically via FederationPeers.
//
// # Operations
//
// The HTTP collector serves a versioned v1 resource tree — POST/GET
// /v1/streams, GET/DELETE /v1/streams/{name}, and the per-stream
// subresources /report, /batch, /estimate, /query and /config. The original
// flat routes (POST /report with a "stream" body field, GET
// /estimate?stream=..., ...) remain as thin aliases onto the same handlers;
// they answer with "Deprecation: true" and a Link header naming their v1
// successor. Every non-2xx response, on every route, carries one envelope:
//
//	{"error": {"code": "rate_limited", "message": "...", "retry_after_ms": 250, "request_id": "9f3ac2d1-00004a"}}
//
// with a stable machine-readable code (unknown_stream, stream_conflict,
// no_reports, estimate_pending, rate_limited, not_ready, ...) and
// retry_after_ms plus a Retry-After header on anything worth retrying. The
// request_id (also echoed as X-Request-Id and as req_id in access logs)
// names the exact request when reporting a failure.
//
// The collector is observable and self-protecting. GET /metrics exposes
// Prometheus text-format telemetry from a zero-dependency registry:
// per-stream ingest and mechanism counters, EM refresh latency and
// staleness, epoch rotations, snapshot durations, federation absorb/replay/
// reject/drop counters and per-edge push lag, plus the edge pusher's cursor
// when running with -push-to. GET /healthz is liveness (the estimation
// engine is ticking) and GET /readyz is readiness (snapshot restore has
// completed — a -snapshot server stays unready until then). Admission
// control bounds request bodies (-max-body) and sheds traffic beyond a
// token-bucket rate (-rate-limit rps[:burst], plus a per-edge
// -edge-rate-limit tier on /federation/push) with 429s emitted before any
// engine work; the operational endpoints stay exempt so a drowning server
// still answers its probes. Structured access logs (-log-format kv|json,
// recording method, route, status, response bytes, negotiated codec,
// request ID and trace ID) complete the surface. Watch it all
// programmatically with FetchServerStats, CheckServerHealth and
// AwaitServerReady.
//
// # Tracing and diagnostics
//
// Every request through the collector can carry a trace. The server
// continues any W3C traceparent header it receives (and head-samples 1 in
// -trace-sample header-less report requests; engine and federation work is
// always traced), then threads one span tree through the whole pipeline —
// route dispatch, payload decode, bucketize, striped ingest, epoch
// rotation, EM refresh, snapshot save/load, federation push and absorb,
// and query evaluation. Finished spans land in a fixed-size in-memory ring
// (the flight recorder, -trace-buffer spans), inspectable at GET
// /v1/debug/traces with stream=, route=, trace=, min_duration= and limit=
// filters — served on the public port, or on a separate diagnostics
// listener with -debug-addr (which also mounts net/http/pprof; the old
// -pprof flag still mounts pprof on the public port but is deprecated).
// Requests at least -slow-request slow emit a slow_request access-log
// line, and the duration histograms keep an exemplar trace ID per
// endpoint, so a latency spike links directly to a recorded trace.
//
// The tracing story crosses processes: Reporter stamps each shipped batch
// with a sampled traceparent (the last one is readable via
// Reporter.LastTraceID, or turn stamping off with DisableTracing), the
// edge records the batch's decode/bucketize/ingest spans under that trace
// ID, and when the edge's epochs are pushed to a federation root the push
// carries the trace IDs it aggregates in an X-LDP-Trace-Link header — the
// root records absorb-link marker spans under those same IDs, so a single
// client batch is recoverable from the root's flight recorder after the
// full ingest → seal → push → absorb journey. Fetch recordings
// programmatically with FetchTraces and a TraceQuery.
//
// # Estimate quality and drift
//
// Beyond liveness, the collector reports whether its published estimates
// are statistically sound. Each stream's refresh engine keeps a quality
// record — EM convergence (iterations, final log-likelihood, last delta,
// whether the stopping rule fired), analytic 95% confidence half-widths
// from the mechanisms' closed-form variances (the sw family reports the
// better categorical oracle's variance, flagged approximate), warm-start
// effectiveness, and, on windowed streams, distribution drift: every epoch
// rotation scores the just-sealed epoch against its predecessor with
// normalized Wasserstein-1 and Kolmogorov–Smirnov distances through a
// hysteresis alerter (fire at 0.08/0.2 by default, clear after three
// consecutive quiet epochs at half that). The record is served per stream
// at GET /v1/streams/{name}/diagnostics and fleet-wide at GET
// /v1/diagnostics (filter with stream=, mechanism=, alerting=), fetchable
// with FetchDiagnostics and FetchFleetDiagnostics, and mirrored into the
// exposition as ldp_estimate_loglik, ldp_estimate_ci_halfwidth,
// ldp_em_converged, ldp_drift_score{metric="w1"|"ks"} and
// ldp_drift_alerts_total. The cmd/ldptop dashboard renders all of it live
// in a terminal. The telemetry registry caps per-family label cardinality
// (overflow folds into a "~overflow" series, self-reported by
// ldp_telemetry_series and ldp_telemetry_dropped_series_total), and
// /metrics serves gzip when the scraper accepts it.
//
// # Wire formats and the batching Reporter
//
// Both hot wire paths speak two codecs, negotiated per request by
// Content-Type: JSON (absent or "application/json" — the default, semantics
// unchanged) and a compact length-prefixed binary frame
// ("application/x-ldp-binary"); any other media type answers 415
// unsupported_media_type. Report batches use the LDPR frame (internal/wire),
// which varint-packs the small non-negative integers LDP mechanisms mostly
// emit and falls back to raw IEEE-754 bits for everything else, so the
// round-trip is bit-exact; federation pushes use the analogous LDPB frame
// with sparse gap/run-encoded epoch deltas (enable per edge with
// "ldpserver -push-format binary" — mixed fleets are fine, the root decodes
// by declared Content-Type and merges identically). Both frames are
// magic-tagged, versioned and CRC32-trailed, and their decoders are fuzzed
// in CI. At 1024 buckets a binary push is ~6.5x smaller than dense JSON;
// BENCH_wire.json pins sizes and throughput.
//
// Client-side, Reporter pairs the binary codec with amortized batching: each
// Report(v) perturbs locally (the value never leaves the process) and
// enqueues the wire report, and a background batcher ships size- or
// age-triggered batches with blocking backpressure — reports are never
// dropped, and failed batches stay queued for retry:
//
//	rep, _ := repro.NewReporter(repro.ReporterOptions{
//		URL: "http://collector:8080", Stream: "age",
//		Options: repro.Options{Epsilon: 1, Buckets: 64},
//		Binary:  true,
//	})
//	for _, v := range values { rep.Report(v) }
//	rep.Close() // flushes the remainder
package repro
