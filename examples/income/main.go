// Income survey: a spiky distribution (people report round salaries) is the
// one regime where the paper found HH-ADMM competitive with SW+EMS on
// KS-distance and quantiles (Section 6.2). This example reproduces that
// comparison on the synthetic income workload: it runs both methods at the
// same privacy budget and prints the metrics side by side.
//
//	go run ./examples/income
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

func main() {
	const (
		nUsers  = 200000
		eps     = 2.5
		buckets = 1024 // power of 4, as HH-ADMM's β=4 tree requires
	)
	ds := dataset.Income(nUsers, 11)
	truth := ds.TrueDistributionAt(buckets)
	fmt.Printf("income survey: %d users, epsilon=%.1f, %d buckets, spikiness=%.2f\n\n",
		nUsers, float64(eps), buckets, dataset.Spikiness(truth))

	opts := repro.Options{Epsilon: eps, Buckets: buckets}
	run := func(m repro.Method) *repro.Result {
		res, err := repro.Estimate(ds.Values, m, opts)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	swems := run(repro.SWEMS)
	hhadmm := run(repro.HHADMM)

	fmt.Printf("%-24s %12s %12s\n", "metric", "SW-EMS", "HH-ADMM")
	row := func(name string, a, b float64) {
		marker := " "
		if b < a {
			marker = "*" // HH-ADMM wins
		}
		fmt.Printf("%-24s %12.5f %12.5f %s\n", name, a, b, marker)
	}
	row("Wasserstein", metrics.Wasserstein(truth, swems.Distribution),
		metrics.Wasserstein(truth, hhadmm.Distribution))
	row("KS distance", metrics.KS(truth, swems.Distribution),
		metrics.KS(truth, hhadmm.Distribution))
	row("quantile MAE (deciles)", metrics.QuantileMAE(truth, swems.Distribution, metrics.DecileBetas),
		metrics.QuantileMAE(truth, hhadmm.Distribution, metrics.DecileBetas))
	row("mean abs. error", metrics.MeanError(truth, swems.Distribution),
		metrics.MeanError(truth, hhadmm.Distribution))
	fmt.Println("\n(* = HH-ADMM better; the paper finds HH-ADMM preserves the")
	fmt.Println(" income spikes that EMS smooths away, winning on KS/quantiles")
	fmt.Println(" at large epsilon while SW-EMS usually keeps Wasserstein.)")

	// Show a concrete spike: the most popular round salary.
	best, bestP := 0, 0.0
	for i, p := range truth {
		if p > bestP {
			best, bestP = i, p
		}
	}
	const scale = 524288.0 // income domain bound (2^19 dollars)
	lo := float64(best) / buckets * scale
	hi := float64(best+1) / buckets * scale
	fmt.Printf("\nbiggest true spike: bucket %d ($%.0f–$%.0f) with mass %.4f\n", best, lo, hi, bestP)
	fmt.Printf("  SW-EMS estimate:  %.4f\n", swems.Distribution[best])
	fmt.Printf("  HH-ADMM estimate: %.4f\n", hhadmm.Distribution[best])
	if math.Abs(hhadmm.Distribution[best]-bestP) < math.Abs(swems.Distribution[best]-bestP) {
		fmt.Println("  → HH-ADMM tracked the spike more closely")
	} else {
		fmt.Println("  → SW-EMS tracked the spike more closely")
	}
}
