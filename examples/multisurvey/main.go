// Multi-attribute survey: collect several numerical attributes (commute
// time, screen time, exercise hours) from one population under a single
// ε-LDP budget. Each user is sampled to report exactly one attribute with
// the full budget — the attribute-sampling construction that dominates
// splitting the budget across attributes (see internal/multiattr).
//
//	go run ./examples/multisurvey
package main

import (
	"fmt"
	"math"

	"repro/internal/histogram"
	"repro/internal/multiattr"
	"repro/internal/randx"
)

// Attribute domains (public constants, hours).
var attrs = []struct {
	name string
	max  float64
}{
	{"daily commute (h)", 4},
	{"daily screen time (h)", 12},
	{"weekly exercise (h)", 14},
}

func main() {
	rng := randx.New(99)
	const nUsers = 120000

	// Ground truth: commute is bimodal (remote vs office), screen time
	// right-skewed, exercise heavy at zero.
	records := make([]multiattr.Record, nUsers)
	truthH := make([]*histogram.Histogram, len(attrs))
	const d = 128
	for a := range truthH {
		truthH[a] = histogram.New(d)
	}
	for i := range records {
		commute := 0.1 + 0.2*rng.Float64() // remote: near zero
		if rng.Bernoulli(0.65) {
			commute = math.Abs(rng.Normal(1.1, 0.5)) // office commute
		}
		screen := rng.LogNormal(math.Log(4), 0.5)
		exercise := 0.0
		if rng.Bernoulli(0.7) {
			exercise = rng.Exponential(1.0 / 3.5)
		}
		rec := multiattr.Record{
			clamp01(commute / attrs[0].max),
			clamp01(screen / attrs[1].max),
			clamp01(exercise / attrs[2].max),
		}
		records[i] = rec
		for a, v := range rec {
			truthH[a].Add(v)
		}
	}

	res := multiattr.Collect(records, multiattr.Config{
		Epsilon: 1.0, Attributes: len(attrs), Buckets: d,
	}, rng)

	fmt.Printf("multi-attribute survey: %d users, epsilon=1.0, %d attributes\n\n", nUsers, len(attrs))
	fmt.Printf("%-24s %8s %12s %12s %12s %12s\n",
		"attribute", "sampled", "mean (est)", "mean (true)", "p90 (est)", "p90 (true)")
	for a, at := range attrs {
		est := res.Distributions[a]
		truth := truthH[a].Distribution()
		fmt.Printf("%-24s %8d %12.2f %12.2f %12.2f %12.2f\n",
			at.name, res.Counts[a],
			histogram.Mean(est)*at.max, histogram.Mean(truth)*at.max,
			histogram.Quantile(est, 0.9)*at.max, histogram.Quantile(truth, 0.9)*at.max)
	}
	fmt.Println("\neach user reported exactly one attribute with the full budget;")
	fmt.Println("no individual's values were ever sent in the clear.")
}

func clamp01(v float64) float64 {
	return math.Min(math.Max(v, 0), 1)
}
