// Telemetry: the paper's motivating scenario — a vendor collects "time spent
// viewing a page" from an app's users without learning any individual's
// usage. This example runs the streaming Client/Aggregator API the way a
// real deployment would: reports are produced on-device, shipped as plain
// floats, and the aggregator reconstructs the usage distribution and answers
// product questions from it.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"sort"

	"repro"
)

// maxSeconds is the public domain bound: view times are clipped to 10
// minutes. Domain bounds must be public constants (they are part of the
// mechanism, not the data).
const maxSeconds = 600.0

func main() {
	// Ground truth: session durations are roughly lognormal (median ~45s,
	// long tail), a standard shape for dwell-time telemetry.
	rng := rand.New(rand.NewPCG(7, 9))
	const nUsers = 200000
	durations := make([]float64, nUsers)
	for i := range durations {
		d := math.Exp(rng.NormFloat64()*0.9 + math.Log(45))
		durations[i] = math.Min(d, maxSeconds)
	}

	opts := repro.DefaultOptions(1.0)
	opts.Buckets = 512

	// --- on each user's device -------------------------------------------
	client, err := repro.NewClient(opts)
	if err != nil {
		log.Fatal(err)
	}
	reports := make([]float64, nUsers)
	for i, d := range durations {
		reports[i] = client.Report(d / maxSeconds) // map to [0,1], randomize
	}

	// --- at the collector -------------------------------------------------
	agg, err := repro.NewAggregator(opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		agg.Ingest(r)
	}
	res, err := agg.Estimate()
	if err != nil {
		log.Fatal(err)
	}

	// Product questions answered from the private estimate.
	fmt.Printf("collected %d reports at epsilon=%.1f\n\n", agg.N(), res.Epsilon)
	fmt.Printf("%-42s %10s %10s\n", "question", "private", "truth")
	line := func(q string, private, truth float64) {
		fmt.Printf("%-42s %10.1f %10.1f\n", q, private, truth)
	}
	sorted := append([]float64(nil), durations...)
	sort.Float64s(sorted)
	trueQ := func(p float64) float64 { return sorted[int(p*float64(nUsers-1))] }
	line("median view time (s)", res.Quantile(0.5)*maxSeconds, trueQ(0.5))
	line("90th percentile view time (s)", res.Quantile(0.9)*maxSeconds, trueQ(0.9))
	var mean float64
	for _, d := range durations {
		mean += d
	}
	mean /= nUsers
	line("mean view time (s)", res.Mean()*maxSeconds, mean)

	bounce := 0.0
	for _, d := range durations {
		if d < 10 {
			bounce++
		}
	}
	fmt.Printf("%-42s %9.1f%% %9.1f%%\n", "bounce rate (view < 10s)",
		100*res.Range(0, 10/maxSeconds), 100*bounce/nUsers)
	engaged := 0.0
	for _, d := range durations {
		if d > 300 {
			engaged++
		}
	}
	fmt.Printf("%-42s %9.1f%% %9.1f%%\n", "highly engaged (view > 5min)",
		100*res.Range(300/maxSeconds, 1), 100*engaged/nUsers)
}
