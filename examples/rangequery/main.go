// Range queries: answer "what fraction of taxi pickups happen between 7am
// and 10am?"-style questions under LDP, comparing the Square Wave pipeline
// with the hierarchy baselines built for exactly this workload (HH with
// constrained inference, HaarHRR) — the Figure 3 setting of the paper.
//
//	go run ./examples/rangequery
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/dataset"
	"repro/internal/histogram"
)

// query is a time-of-day range question.
type query struct {
	name     string
	from, to float64 // hours
}

func main() {
	const (
		nUsers  = 200000
		eps     = 1.0
		buckets = 1024
	)
	ds := dataset.Taxi(nUsers, 5)
	truth := ds.TrueDistributionAt(buckets)
	fmt.Printf("taxi pickups: %d users, epsilon=%.1f, %d buckets\n\n", nUsers, eps, buckets)

	opts := repro.Options{Epsilon: eps, Buckets: buckets}
	methods := []repro.Method{repro.SWEMS, repro.HHADMM, repro.HHist, repro.HaarHRR}
	results := map[repro.Method]*repro.Result{}
	for _, m := range methods {
		res, err := repro.Estimate(ds.Values, m, opts)
		if err != nil {
			log.Fatal(err)
		}
		results[m] = res
	}

	queries := []query{
		{"morning rush (7-10h)", 7, 10},
		{"lunch (11-14h)", 11, 14},
		{"evening rush (17-21h)", 17, 21},
		{"overnight (0-5h)", 0, 5},
		{"one hour (8-9h)", 8, 9},
	}

	fmt.Printf("%-24s %8s", "range query", "truth")
	for _, m := range methods {
		fmt.Printf(" %9s", m)
	}
	fmt.Println()
	maes := map[repro.Method]float64{}
	for _, q := range queries {
		lo, hi := q.from/24, q.to/24
		want := histogram.RangeProb(truth, lo, hi)
		fmt.Printf("%-24s %7.2f%%", q.name, 100*want)
		for _, m := range methods {
			got := results[m].Range(lo, hi)
			maes[m] += math.Abs(got - want)
			fmt.Printf(" %8.2f%%", 100*got)
		}
		fmt.Println()
	}
	fmt.Printf("\n%-24s %8s", "MAE over the queries", "")
	for _, m := range methods {
		fmt.Printf(" %8.3f%%", 100*maes[m]/float64(len(queries)))
	}
	fmt.Println()
	fmt.Println("\nnote: hh and haar-hrr output signed estimates tuned for range")
	fmt.Println("queries (Table 2); sw-ems additionally yields a valid distribution")
	fmt.Println("usable for quantiles, means and variances.")
}
