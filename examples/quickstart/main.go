// Quickstart: estimate the distribution of a numerical attribute under
// ε-local differential privacy in a dozen lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"repro"
)

func main() {
	// 50,000 users each hold a private value in [0,1] — here, synthetic
	// "fraction of monthly quota used" values, skewed toward high usage.
	rng := rand.New(rand.NewPCG(1, 2))
	values := make([]float64, 50000)
	for i := range values {
		// Beta(5,2)-like skew via rejection-free trick: max of two draws.
		a, b := rng.Float64(), rng.Float64()
		values[i] = max(a, b)
	}

	// One call runs the whole pipeline: every value is randomized with the
	// Square Wave mechanism (ε-LDP on the user's device) and the noisy
	// aggregate is inverted with EMS.
	opts := repro.DefaultOptions(1.0) // ε = 1
	opts.Buckets = 256
	res, err := repro.EstimateDistribution(values, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("estimated from %d users at epsilon=%.1f\n", len(values), res.Epsilon)
	fmt.Printf("  mean:              %.4f\n", res.Mean())
	fmt.Printf("  variance:          %.4f\n", res.Variance())
	fmt.Printf("  median:            %.4f\n", res.Quantile(0.5))
	fmt.Printf("  P[v > 0.9]:        %.4f\n", res.Range(0.9, 1.0))
	fmt.Printf("  90th percentile:   %.4f\n", res.Quantile(0.9))

	// Compare with the non-private ground truth.
	var mean float64
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	fmt.Printf("true mean (non-private, for reference): %.4f\n", mean)
}
