// Age survey: the paper's discrete-domain scenario (Section 5.4). Ages are
// already discrete (0–100), so the natural mechanism is the
// bucketize-before-randomize Square Wave (sw-br-ems), which randomizes
// within the discrete domain directly instead of treating the value as a
// continuous float. This example collects an age distribution privately and
// reads off demographic shares.
//
//	go run ./examples/agesurvey
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"repro"
)

const maxAge = 100

func main() {
	// Ground truth: a two-bump age pyramid (young adults + a boomer bump).
	rng := rand.New(rand.NewPCG(3, 14))
	const nUsers = 150000
	ages := make([]int, nUsers)
	for i := range ages {
		var age float64
		if rng.Float64() < 0.6 {
			age = rng.NormFloat64()*9 + 31
		} else {
			age = rng.NormFloat64()*11 + 62
		}
		ages[i] = int(math.Round(math.Min(math.Max(age, 0), maxAge)))
	}

	// Each user maps its age to [0,1]; the B-R method re-discretizes to
	// the bucket grid internally and randomizes over the discrete domain.
	values := make([]float64, nUsers)
	for i, a := range ages {
		values[i] = float64(a) / maxAge
	}
	opts := repro.Options{
		Epsilon: 1.0,
		Buckets: maxAge + 1, // one bucket per year of age
	}
	res, err := repro.Estimate(values, repro.SWBREMS, opts)
	if err != nil {
		log.Fatal(err)
	}

	// True shares for comparison.
	trueShare := func(lo, hi int) float64 {
		c := 0
		for _, a := range ages {
			if a >= lo && a <= hi {
				c++
			}
		}
		return float64(c) / nUsers
	}
	estShare := func(lo, hi int) float64 {
		var acc float64
		for a := lo; a <= hi && a <= maxAge; a++ {
			acc += res.Distribution[a]
		}
		return acc
	}

	fmt.Printf("age survey: %d users, epsilon=%.1f, %d one-year buckets (sw-br-ems)\n\n",
		nUsers, res.Epsilon, opts.Buckets)
	fmt.Printf("%-22s %10s %10s\n", "age band", "private", "truth")
	for _, band := range [][2]int{{0, 17}, {18, 29}, {30, 44}, {45, 64}, {65, 100}} {
		fmt.Printf("%3d–%-18d %9.2f%% %9.2f%%\n", band[0], band[1],
			100*estShare(band[0], band[1]), 100*trueShare(band[0], band[1]))
	}
	fmt.Printf("\nestimated median age: %.1f (true %.1f)\n",
		res.Quantile(0.5)*maxAge, medianOf(ages))
}

func medianOf(ages []int) float64 {
	counts := make([]int, maxAge+1)
	for _, a := range ages {
		counts[a]++
	}
	half := len(ages) / 2
	acc := 0
	for a, c := range counts {
		acc += c
		if acc >= half {
			return float64(a)
		}
	}
	return maxAge
}
