// HTTP collection: runs the full client/server deployment shape on
// localhost — an aggregation server exposing /report and /estimate, and a
// fleet of concurrent clients that randomize on-device and POST their
// reports, exactly how the deployed LDP systems the paper cites (RAPPOR,
// Apple, Microsoft telemetry) are structured.
//
//	go run ./examples/httpcollect
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ldphttp"
	"repro/internal/randx"
)

func main() {
	cfg := ldphttp.Config{Epsilon: 1.0, Buckets: 128}

	// --- server ------------------------------------------------------------
	srv := ldphttp.NewServer(cfg)
	defer srv.Close() // stop the background estimation engine
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, srv.Handler()); err != nil && err != http.ErrServerClosed {
			log.Print(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("collector listening on %s (epsilon=%.1f)\n", base, cfg.Epsilon)

	// --- clients -----------------------------------------------------------
	// 16 concurrent client shards, 2500 users each; every user randomizes
	// a Beta(5,2)-distributed private value locally before anything is
	// sent over the wire.
	const shards = 16
	const perShard = 2500
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := core.NewClient(core.Config{
				Epsilon: cfg.Epsilon, Buckets: cfg.Buckets, Smoothing: true,
			})
			rng := randx.New(uint64(id + 1))
			reports := make([]float64, perShard)
			for i := range reports {
				private := rng.Beta(5, 2)                // never leaves this goroutine
				reports[i] = client.Report(private, rng) // ε-LDP randomized
			}
			blob, _ := json.Marshal(map[string]any{"reports": reports})
			resp, err := http.Post(base+"/batch", "application/json", bytes.NewReader(blob))
			if err != nil {
				log.Print(err)
				return
			}
			resp.Body.Close()
		}(sh)
	}
	wg.Wait()
	fmt.Printf("ingested %d reports from %d client shards\n", srv.N(), shards)

	// --- anyone can query the aggregate -------------------------------------
	// /estimate serves the background engine's cached reconstruction; poll
	// until it has caught up with every report we just ingested.
	var est ldphttp.EstimateResponse
	for {
		resp, err := http.Get(base + "/estimate")
		if err != nil {
			log.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&est)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		if est.N == srv.N() {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("reconstruction: %d EM iterations (converged=%v, warm_start=%v)\n",
		est.Iterations, est.Converged, est.WarmStart)
	fmt.Printf("  estimated mean:     %.4f (Beta(5,2) truth 0.7143)\n", est.Mean)
	fmt.Printf("  estimated median:   %.4f (truth 0.7356)\n", est.Median)
	fmt.Printf("  estimated variance: %.4f (truth 0.0255)\n", est.Variance)

	// --- and the analytics layer --------------------------------------------
	// GET /query evaluates range/CDF/quantile/top-k analytics against the
	// same cached reconstruction.
	resp, err := http.Get(base + "/query?type=quantile&q=0.1,0.5,0.9")
	if err != nil {
		log.Fatal(err)
	}
	var q ldphttp.QueryResponse
	err = json.NewDecoder(resp.Body).Decode(&q)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  served quantiles:   q10=%.4f q50=%.4f q90=%.4f (truths 0.4577, 0.7356, 0.9274)\n",
		q.Values[0], q.Values[1], q.Values[2])
}
