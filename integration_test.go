package repro_test

// Cross-module integration tests: every public method against every
// evaluation workload, plus invariants spanning the public API surface.

import (
	"math"
	"testing"

	"repro"
	"repro/internal/dataset"
	"repro/internal/histogram"
	"repro/internal/mathx"
	"repro/internal/metrics"
)

// TestIntegrationAllDatasetsAllMethods runs a reduced-scale collection on
// every workload with every public method and checks each estimate beats the
// uniform baseline on Wasserstein distance.
func TestIntegrationAllDatasetsAllMethods(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	const n = 20000
	const d = 256 // power of 4 (hierarchies) and multiple of 64 (binning)
	const eps = 1.5
	methods := []repro.Method{
		repro.SWEMS, repro.SWEM, repro.SWBREMS, repro.HHADMM,
		repro.Binning16, repro.Binning32, repro.Binning64,
	}
	for _, name := range dataset.Names() {
		ds, err := dataset.ByName(name, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		truth := ds.TrueDistributionAt(d)
		uniform := make([]float64, d)
		for i := range uniform {
			uniform[i] = 1.0 / d
		}
		baseline := metrics.Wasserstein(truth, uniform)
		for _, m := range methods {
			opts := repro.Options{Epsilon: eps, Buckets: d, Seed: 3}
			res, err := repro.Estimate(ds.Values, m, opts)
			if err != nil {
				t.Errorf("%s/%s: %v", name, m, err)
				continue
			}
			if got := metrics.Wasserstein(truth, res.Distribution); got >= baseline {
				t.Errorf("%s/%s: W1 %v not better than uniform %v", name, m, got, baseline)
			}
			if !mathx.IsDistribution(res.Distribution, 1e-6) {
				t.Errorf("%s/%s: invalid distribution", name, m)
			}
		}
	}
}

// TestIntegrationStatisticsConsistency cross-checks the Result statistics
// against direct histogram computations.
func TestIntegrationStatisticsConsistency(t *testing.T) {
	ds := dataset.Taxi(20000, 2)
	opts := repro.Options{Epsilon: 2, Buckets: 128, Seed: 9}
	res, err := repro.EstimateDistribution(ds.Values, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Mean(), histogram.Mean(res.Distribution); got != want {
		t.Errorf("Mean() = %v, histogram.Mean = %v", got, want)
	}
	if got, want := res.Quantile(0.3), histogram.Quantile(res.Distribution, 0.3); got != want {
		t.Errorf("Quantile mismatch: %v vs %v", got, want)
	}
	// CDF at the β-quantile returns β.
	for _, beta := range []float64{0.1, 0.5, 0.9} {
		q := res.Quantile(beta)
		if got := res.CDF(q); math.Abs(got-beta) > 1e-6 {
			t.Errorf("CDF(Quantile(%v)) = %v", beta, got)
		}
	}
	// Range over complementary intervals sums to 1.
	if got := res.Range(0, 0.4) + res.Range(0.4, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("complementary ranges sum to %v", got)
	}
}

// TestIntegrationPrivacyBudgetMonotonicity checks the fundamental trade-off
// end to end: more budget, less error (averaged over seeds to be robust).
func TestIntegrationPrivacyBudgetMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	const n = 30000
	const d = 128
	ds := dataset.Beta52(n, 5)
	truth := ds.TrueDistributionAt(d)
	avgW1 := func(eps float64) float64 {
		var acc float64
		for seed := uint64(1); seed <= 3; seed++ {
			opts := repro.Options{Epsilon: eps, Buckets: d, Seed: seed}
			res, err := repro.EstimateDistribution(ds.Values, opts)
			if err != nil {
				t.Fatal(err)
			}
			acc += metrics.Wasserstein(truth, res.Distribution)
		}
		return acc / 3
	}
	w05, w4 := avgW1(0.5), avgW1(4)
	if w4 >= w05 {
		t.Errorf("W1 should fall with budget: eps=0.5 → %v, eps=4 → %v", w05, w4)
	}
}
