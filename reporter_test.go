package repro_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/ldphttp"
)

// reporterCollector spins a collector whose refresh engine stays quiet and
// returns its base URL plus a probe for the default stream's report count.
func reporterCollector(t *testing.T) (string, func() int) {
	t.Helper()
	s := ldphttp.NewServer(ldphttp.Config{Epsilon: 1, Buckets: 64, RefreshInterval: time.Hour})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	streamN := func() int {
		resp, err := http.Get(ts.URL + "/v1/streams/default")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info struct {
			N int `json:"n"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		return info.N
	}
	return ts.URL, streamN
}

func TestReporterShipsBatches(t *testing.T) {
	for _, binary := range []bool{false, true} {
		name := "json"
		if binary {
			name = "binary"
		}
		t.Run(name, func(t *testing.T) {
			url, streamN := reporterCollector(t)
			rep, err := repro.NewReporter(repro.ReporterOptions{
				URL:      url,
				Options:  repro.Options{Epsilon: 1, Buckets: 64, Seed: 7},
				Binary:   binary,
				MaxBatch: 8,
				MaxDelay: time.Hour, // only size- and Close-triggered flushes
			})
			if err != nil {
				t.Fatal(err)
			}
			const reports = 20
			for i := 0; i < reports; i++ {
				if err := rep.Report(float64(i) / reports); err != nil {
					t.Fatal(err)
				}
			}
			// Two full batches of 8 have shipped on size; 4 remain queued
			// until Flush/Close.
			if err := rep.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			if got := streamN(); got != reports {
				t.Fatalf("collector has %d reports after Flush, want %d", got, reports)
			}
			if err := rep.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := rep.Report(0.5); err == nil {
				t.Fatal("Report after Close succeeded")
			}
		})
	}
}

func TestReporterRejectsBadTargets(t *testing.T) {
	if _, err := repro.NewReporter(repro.ReporterOptions{}); err == nil {
		t.Fatal("missing URL accepted")
	}
	if _, err := repro.NewReporter(repro.ReporterOptions{URL: "ftp://x"}); err == nil {
		t.Fatal("non-http URL accepted")
	}
	if _, err := repro.NewReporter(repro.ReporterOptions{
		URL: "http://localhost:1", Options: repro.Options{Epsilon: -3},
	}); err == nil {
		t.Fatal("invalid randomizer options accepted")
	}
}

func TestReporterSurfacesCollectorErrors(t *testing.T) {
	// A collector refusing the batch (unknown stream) must surface through
	// Flush, and the reports stay queued rather than vanish.
	url, _ := reporterCollector(t)
	rep, err := repro.NewReporter(repro.ReporterOptions{
		URL:      url,
		Stream:   "not-declared",
		Options:  repro.Options{Epsilon: 1, Buckets: 64, Seed: 7},
		MaxBatch: 64,
		MaxDelay: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Report(0.5); err != nil {
		t.Fatal(err)
	}
	if err := rep.Flush(); err == nil {
		t.Fatal("Flush against an unknown stream returned nil")
	}
	rep.Close()
}
