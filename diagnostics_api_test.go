package repro_test

// The observability PR's acceptance criterion through the public API alone:
// a seeded cohort shift on a windowed stream is visible as a drift alert via
// repro.FetchDiagnostics and the FetchFleetDiagnostics alerting filter,
// while a stationary control stream ingesting the same volume stays quiet.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/ldphttp"
	"repro/internal/randx"
)

type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestDriftAlertThroughPublicAPI(t *testing.T) {
	clock := &manualClock{now: time.Date(2026, 8, 1, 9, 0, 0, 0, time.UTC)}
	s := ldphttp.NewServer(ldphttp.Config{
		Epsilon: 1, Buckets: 32, RefreshInterval: 5 * time.Millisecond, Clock: clock.Now,
	})
	t.Cleanup(s.Close)
	for _, name := range []string{"shift", "control"} {
		if err := s.CreateStream(name, ldphttp.StreamConfig{
			Epsilon: 1, Buckets: 32, Epoch: ldphttp.Duration(time.Minute), Retain: 4,
		}); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	client, err := repro.NewClient(repro.Options{Epsilon: 1, Buckets: 32, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	post := func(stream string, seed uint64, a, b float64) {
		t.Helper()
		rng := randx.New(seed)
		reports := make([]float64, 1200)
		for i := range reports {
			reports[i] = client.Report(rng.Beta(a, b))
		}
		blob, _ := json.Marshal(map[string]any{"reports": reports})
		resp, err := http.Post(ts.URL+"/v1/streams/"+stream+"/batch", "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status %d", resp.StatusCode)
		}
	}
	rotate := func(epoch int) {
		t.Helper()
		clock.Advance(time.Minute)
		deadline := time.Now().Add(10 * time.Second)
		for {
			d, err := repro.FetchDiagnostics(ts.URL, "shift", nil)
			if err != nil {
				t.Fatal(err)
			}
			if d.Window != nil && d.Window.CurrentEpoch >= epoch {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("stream never rotated to epoch %d", epoch)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Two stationary epochs prime the baseline and a quiet score, then the
	// shift cohort jumps from Beta(5, 2) to Beta(2, 5).
	for e := 0; e < 2; e++ {
		post("shift", uint64(10+e), 5, 2)
		post("control", uint64(20+e), 5, 2)
		rotate(e + 1)
	}
	post("shift", 12, 2, 5)
	post("control", 22, 5, 2)
	rotate(3)

	var d *repro.StreamDiagnostics
	deadline := time.Now().Add(10 * time.Second)
	for {
		d, err = repro.FetchDiagnostics(ts.URL, "shift", nil)
		if err != nil {
			t.Fatal(err)
		}
		if d.Drift != nil && d.Drift.Alerting {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shift stream never alerted (drift: %+v)", d.Drift)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if d.Drift.AlertsTotal != 1 {
		t.Errorf("alerts_total = %d, want 1", d.Drift.AlertsTotal)
	}
	if d.Drift.W1 < 0.08 && d.Drift.KS < 0.2 {
		t.Errorf("alerting with sub-threshold scores: %+v", d.Drift)
	}
	if !d.EMBased || d.Refreshes == 0 || d.Confidence.HalfWidth <= 0 {
		t.Errorf("quality record incomplete: em_based=%v refreshes=%d confidence=%+v",
			d.EMBased, d.Refreshes, d.Confidence)
	}

	// The control stream stays quiet, and the fleet filter isolates the
	// alerting stream.
	cd, err := repro.FetchDiagnostics(ts.URL, "control", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cd.Drift == nil || cd.Drift.Alerting || cd.Drift.AlertsTotal != 0 {
		t.Errorf("control drift = %+v, want quiet", cd.Drift)
	}
	alerting := true
	fleet, err := repro.FetchFleetDiagnostics(ts.URL, repro.DiagnosticsQuery{Alerting: &alerting}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 1 || fleet[0].Stream != "shift" {
		t.Fatalf("alerting fleet = %+v, want exactly [shift]", fleet)
	}

	// The same alert is visible in the scrape through FetchServerStats.
	stats, err := repro.FetchServerStats(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := stats.Raw[`ldp_drift_alerts_total{stream="shift"}`]; v != 1 {
		t.Errorf(`ldp_drift_alerts_total{stream="shift"} = %v, want 1`, v)
	}
	if v := stats.Raw[`ldp_drift_alerts_total{stream="control"}`]; v != 0 {
		t.Errorf(`ldp_drift_alerts_total{stream="control"} = %v, want 0`, v)
	}
}
