package repro

// Multi-stream and analytics surface of the public API: the same
// stream/query/snapshot capabilities the HTTP collector serves, for users
// embedding the library directly. A Streams registry hosts any number of
// named attributes, each backed by its own concurrency-safe Aggregator;
// Query evaluates range/CDF/quantile/mean/variance/top-k analytics against
// a reconstruction; Save/Load persist every stream's report histogram
// through the same checksummed atomic-rename snapshot format as the server.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/query"
	"repro/internal/snapshot"
	"repro/internal/window"
)

// QueryType selects an analytics query kind. The values match the HTTP
// collector's wire names.
type QueryType string

// Supported query types.
const (
	QueryQuantile  QueryType = QueryType(query.Quantile)
	QueryCDF       QueryType = QueryType(query.CDF)
	QueryRange     QueryType = QueryType(query.Range)
	QueryMean      QueryType = QueryType(query.Mean)
	QueryVariance  QueryType = QueryType(query.Variance)
	QueryTopK      QueryType = QueryType(query.TopK)
	QueryHistogram QueryType = QueryType(query.Histogram)
)

// QueryRequest is one analytics query against a reconstructed distribution.
type QueryRequest struct {
	// Type selects the query kind. Required.
	Type QueryType
	// Qs carries the probabilities (QueryQuantile) or evaluation points
	// (QueryCDF), each in [0,1].
	Qs []float64
	// Lo, Hi bound a QueryRange query, 0 ≤ Lo ≤ Hi ≤ 1.
	Lo, Hi float64
	// K is the bucket count for QueryTopK.
	K int
}

// QueryBin is one bucket of a top-k answer.
type QueryBin struct {
	// Index is the bucket position; Lo, Hi its bounds in [0,1]; P its
	// estimated mass.
	Index  int
	Lo, Hi float64
	P      float64
	// PValue, when the report count is known, scores how surprising the
	// bucket's mass would be under a uniform distribution (exact binomial
	// tail); 0 means "not computed".
	PValue float64
}

// QueryResult is the answer to one QueryRequest.
type QueryResult struct {
	// Type echoes the request.
	Type QueryType
	// Values holds per-point answers (QueryQuantile, QueryCDF, aligned
	// with the request's Qs) and the full distribution for QueryHistogram.
	Values []float64
	// Value holds the scalar answer (QueryRange, QueryMean, QueryVariance).
	Value float64
	// Bins holds the QueryTopK answer, most probable first.
	Bins []QueryBin
}

func toInternalQuery(q QueryRequest) query.Request {
	return query.Request{Type: query.Type(q.Type), Qs: q.Qs, Lo: q.Lo, Hi: q.Hi, K: q.K}
}

func fromInternalQuery(r query.Response) *QueryResult {
	out := &QueryResult{Type: QueryType(r.Type), Values: r.Values, Value: r.Value}
	if r.Bins != nil {
		out.Bins = make([]QueryBin, len(r.Bins))
		for i, b := range r.Bins {
			out.Bins[i] = QueryBin{Index: b.Index, Lo: b.Lo, Hi: b.Hi, P: b.P, PValue: b.PValue}
		}
	}
	return out
}

// Query evaluates one analytics query against the result's distribution.
// Signed estimates (HHist, HaarHRR) are post-processed per the paper first:
// additive normalization for range/CDF queries, simplex projection for
// point statistics.
func (r *Result) Query(req QueryRequest) (*QueryResult, error) {
	resp, err := query.Eval(r.Distribution, 0, toInternalQuery(req))
	if err != nil {
		return nil, err
	}
	return fromInternalQuery(resp), nil
}

// Quantiles evaluates several quantiles at once (each β ∈ [0,1]).
func (r *Result) Quantiles(betas ...float64) ([]float64, error) {
	res, err := r.Query(QueryRequest{Type: QueryQuantile, Qs: betas})
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}

// TopK returns the k most probable buckets of the reconstruction.
func (r *Result) TopK(k int) ([]QueryBin, error) {
	res, err := r.Query(QueryRequest{Type: QueryTopK, K: k})
	if err != nil {
		return nil, err
	}
	return res.Bins, nil
}

// Streams is a registry of named attribute streams, each backed by its own
// Aggregator — the library-side equivalent of the HTTP collector's
// multi-stream surface. All methods are safe for concurrent use; ingestion
// into different streams never contends.
type Streams struct {
	mu sync.RWMutex
	m  map[string]*streamEntry
}

type streamEntry struct {
	agg  *Aggregator
	opts Options
}

// NewStreams returns an empty registry.
func NewStreams() *Streams {
	return &Streams{m: make(map[string]*streamEntry)}
}

// Declare registers a named stream with its own Options and returns its
// Aggregator. Redeclaring a stream with identical options returns the
// existing Aggregator; different options are an error. Names are 1–64
// bytes with no control characters.
func (s *Streams) Declare(name string, opts Options) (*Aggregator, error) {
	if !snapshot.ValidStreamName(name) {
		return nil, fmt.Errorf("repro: invalid stream name %q (want 1-64 bytes with no control characters)", name)
	}
	opts, err := opts.validate()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[name]; ok {
		if e.opts != opts {
			return nil, fmt.Errorf("repro: stream %q already declared with different options", name)
		}
		return e.agg, nil
	}
	agg, err := NewAggregator(opts)
	if err != nil {
		return nil, err
	}
	s.m[name] = &streamEntry{agg: agg, opts: opts}
	return agg, nil
}

// Get returns a declared stream's Aggregator.
func (s *Streams) Get(name string) (*Aggregator, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.m[name]
	if !ok {
		return nil, false
	}
	return e.agg, true
}

// Drop retires a declared stream: it disappears from the registry and from
// future Save calls, and its reports are discarded. Dropping an unknown
// stream is an error. Callers still holding the stream's Aggregator can
// keep using it; the registry just no longer knows it.
func (s *Streams) Drop(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[name]; !ok {
		return fmt.Errorf("repro: unknown stream %q", name)
	}
	delete(s.m, name)
	return nil
}

// Names lists the declared streams, sorted.
func (s *Streams) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.m))
	for name := range s.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Estimate reconstructs one stream's distribution from the reports ingested
// so far.
func (s *Streams) Estimate(name string) (*Result, error) {
	agg, ok := s.Get(name)
	if !ok {
		return nil, fmt.Errorf("repro: unknown stream %q", name)
	}
	return agg.Estimate()
}

// Query reconstructs one stream's distribution and evaluates an analytics
// query against it. The stream's report count feeds top-k significance
// scores.
func (s *Streams) Query(name string, req QueryRequest) (*QueryResult, error) {
	agg, ok := s.Get(name)
	if !ok {
		return nil, fmt.Errorf("repro: unknown stream %q", name)
	}
	res, err := agg.Estimate()
	if err != nil {
		return nil, err
	}
	resp, err := query.Eval(res.Distribution, agg.N(), toInternalQuery(req))
	if err != nil {
		return nil, err
	}
	return fromInternalQuery(resp), nil
}

// Save persists every stream's report histogram to path in the snapshot
// format (checksummed, written via atomic temp-file rename). Safe to call
// concurrently with ingestion: each stream is captured with a non-blocking
// consistent snapshot.
func (s *Streams) Save(path string) error {
	s.mu.RLock()
	names := make([]string, 0, len(s.m))
	for name := range s.m {
		names = append(names, name)
	}
	sort.Strings(names)
	records := make([]snapshot.Stream, 0, len(names))
	for _, name := range names {
		e := s.m[name]
		rec := snapshot.Stream{
			Name:      name,
			Epsilon:   e.opts.Epsilon,
			Buckets:   e.opts.Buckets,
			Mechanism: e.opts.Mechanism,
			Bandwidth: e.opts.Bandwidth,
			Shards:    e.opts.Shards,
		}
		if e.agg.ring != nil {
			// Windowed stream: the live epoch's histogram goes in Counts,
			// the rotation clock and sealed epochs in the window block —
			// the same version-2 shape the HTTP collector writes.
			state := e.agg.ring.State()
			rec.Counts = state.Live
			if rec.Counts == nil {
				rec.Counts = make([]uint64, e.agg.ring.Buckets())
			}
			rec.Window = snapshot.NewWindow(state)
		} else {
			counts, _ := e.agg.counts.Snapshot(nil)
			rec.Counts = make([]uint64, len(counts))
			for i, c := range counts {
				rec.Counts[i] = uint64(c)
			}
		}
		records = append(records, rec)
	}
	s.mu.RUnlock()
	return snapshot.Save(path, records)
}

// Load restores streams from a snapshot file, creating missing streams with
// their persisted options (including epoch-rotation state) and merging
// histograms into streams that already exist (options must match). A
// windowed record restoring into a declared windowed stream requires
// matching epoch/retain and a stream that has not rotated yet (and no
// concurrent Advance/Rotate on that aggregator during the Load — the
// registry cannot serialize rotations of aggregators the caller holds); a
// record without window state restoring into a windowed stream merges into
// the live epoch. Corrupt, truncated, or incompatible files return an error and
// change nothing: validation of every record and construction of every
// missing aggregator happen before the first merge, all under the registry
// lock, so no error path or concurrent Declare can leave a partial restore
// behind. Snapshots written by the HTTP collector load here and vice versa.
func (s *Streams) Load(path string) error {
	records, err := snapshot.Load(path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Phase 1 — validate every record and build (but do not register) the
	// aggregators for missing streams.
	entries := make([]*streamEntry, len(records))
	fresh := make([]bool, len(records))
	for i, rec := range records {
		e, ok := s.m[rec.Name]
		if ok {
			if e.opts.Epsilon != rec.Epsilon || e.opts.Buckets != rec.Buckets ||
				e.opts.Bandwidth != rec.Bandwidth {
				return fmt.Errorf("repro: snapshot stream %q has (ε=%v, buckets=%d, b=%v) but the declared stream differs",
					rec.Name, rec.Epsilon, rec.Buckets, rec.Bandwidth)
			}
			if e.opts.Mechanism != rec.MechanismName() {
				return fmt.Errorf("repro: snapshot stream %q uses mechanism %q but the declared stream uses %q",
					rec.Name, rec.MechanismName(), e.opts.Mechanism)
			}
			if rec.Window != nil {
				if e.agg.ring == nil {
					return fmt.Errorf("repro: snapshot stream %q is windowed but the declared stream is not; declare it with Options.Epoch",
						rec.Name)
				}
				if int64(e.opts.Epoch) != rec.Window.EpochNanos || e.opts.Retain != rec.Window.Retain {
					return fmt.Errorf("repro: snapshot stream %q rotates every %v retaining %d but the declared stream rotates every %v retaining %d",
						rec.Name, time.Duration(rec.Window.EpochNanos), rec.Window.Retain,
						e.opts.Epoch, e.opts.Retain)
				}
				if err := e.agg.ring.CanAdopt(streamWindowState(rec)); err != nil {
					return fmt.Errorf("repro: restore stream %q: %w", rec.Name, err)
				}
			}
		} else {
			if !snapshot.ValidStreamName(rec.Name) {
				return fmt.Errorf("repro: restore stream: invalid name %q", rec.Name)
			}
			opts := Options{
				Epsilon:   rec.Epsilon,
				Buckets:   rec.Buckets,
				Mechanism: rec.MechanismName(),
				Bandwidth: rec.Bandwidth,
				Shards:    rec.Shards,
			}
			if rec.Window != nil {
				opts.Epoch = time.Duration(rec.Window.EpochNanos)
				opts.Retain = rec.Window.Retain
			}
			opts, err := opts.validate()
			if err != nil {
				return fmt.Errorf("repro: restore stream %q: %w", rec.Name, err)
			}
			agg, err := NewAggregator(opts)
			if err != nil {
				return fmt.Errorf("repro: restore stream %q: %w", rec.Name, err)
			}
			if rec.Window != nil {
				// The fresh ring is pristine and unregistered; adopting the
				// persisted clock and history cannot race anything.
				if err := agg.ring.Adopt(streamWindowState(rec)); err != nil {
					return fmt.Errorf("repro: restore stream %q: %w", rec.Name, err)
				}
			}
			e = &streamEntry{agg: agg, opts: opts}
			fresh[i] = true
		}
		if got := e.agg.histBuckets(); got != len(rec.Counts) {
			return fmt.Errorf("repro: snapshot stream %q has %d histogram buckets, the stream has %d",
				rec.Name, len(rec.Counts), got)
		}
		entries[i] = e
	}
	// Phase 2 — register and merge; no failure paths remain short of a
	// windowed adopt racing a concurrent rotation of a pristine ring.
	for i, rec := range records {
		e := entries[i]
		if fresh[i] {
			s.m[rec.Name] = e
			if rec.Window != nil {
				continue // counts arrived via the phase-1 Adopt
			}
		} else if rec.Window != nil {
			if err := e.agg.ring.Adopt(streamWindowState(rec)); err != nil {
				return fmt.Errorf("repro: restore stream %q: %w", rec.Name, err)
			}
			continue
		}
		for bucket, c := range rec.Counts {
			if e.agg.ring != nil {
				e.agg.ring.AddN(bucket, c)
			} else {
				e.agg.counts.AddN(bucket, c)
			}
		}
	}
	return nil
}

// streamWindowState converts a persisted window block into a ring state.
func streamWindowState(rec snapshot.Stream) window.State {
	return rec.Window.State(rec.Counts)
}

// histBuckets is the report-histogram granularity of the aggregator.
func (a *Aggregator) histBuckets() int {
	if a.ring != nil {
		return a.ring.Buckets()
	}
	return a.counts.Buckets()
}
