package repro_test

import (
	"math"
	"sync"
	"testing"

	"repro"
	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/randx"
)

func TestEstimateDistributionQuickstart(t *testing.T) {
	ds := dataset.Beta52(20000, 1)
	opts := repro.DefaultOptions(1.0)
	opts.Buckets = 128
	res, err := repro.EstimateDistribution(ds.Values, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Distribution) != 128 {
		t.Fatalf("got %d buckets", len(res.Distribution))
	}
	if !mathx.IsDistribution(res.Distribution, 1e-9) {
		t.Error("result is not a distribution")
	}
	// Statistics should be near Beta(5,2): mean 5/7 ≈ 0.714.
	if math.Abs(res.Mean()-5.0/7.0) > 0.03 {
		t.Errorf("mean = %v, want ≈ 0.714", res.Mean())
	}
	if math.Abs(res.Quantile(0.5)-0.736) > 0.05 {
		t.Errorf("median = %v, want ≈ 0.736", res.Quantile(0.5))
	}
	if res.Variance() < 0 || res.Variance() > 0.1 {
		t.Errorf("variance = %v", res.Variance())
	}
	if full := res.Range(0, 1); math.Abs(full-1) > 1e-6 {
		t.Errorf("Range(0,1) = %v", full)
	}
	if res.CDF(1) < 0.999 {
		t.Errorf("CDF(1) = %v", res.CDF(1))
	}
}

func TestEstimateValidation(t *testing.T) {
	values := []float64{0.5}
	cases := []struct {
		name string
		fn   func() (*repro.Result, error)
	}{
		{"zero epsilon", func() (*repro.Result, error) {
			return repro.EstimateDistribution(values, repro.Options{})
		}},
		{"negative epsilon", func() (*repro.Result, error) {
			return repro.EstimateDistribution(values, repro.Options{Epsilon: -1})
		}},
		{"no values", func() (*repro.Result, error) {
			return repro.EstimateDistribution(nil, repro.DefaultOptions(1))
		}},
		{"unknown method", func() (*repro.Result, error) {
			return repro.Estimate(values, "bogus", repro.DefaultOptions(1))
		}},
		{"bad bandwidth", func() (*repro.Result, error) {
			return repro.EstimateDistribution(values, repro.Options{Epsilon: 1, Bandwidth: 5})
		}},
		{"one bucket", func() (*repro.Result, error) {
			return repro.EstimateDistribution(values, repro.Options{Epsilon: 1, Buckets: 1})
		}},
	}
	for _, tc := range cases {
		if _, err := tc.fn(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestEstimateAllMethods(t *testing.T) {
	ds := dataset.Beta52(10000, 2)
	opts := repro.DefaultOptions(1.5)
	opts.Buckets = 64
	valid := map[repro.Method]bool{
		repro.SWEMS: true, repro.SWEM: true, repro.HHADMM: true,
		repro.Binning16: true, repro.Binning32: true, repro.Binning64: true,
		repro.HHist: false, repro.HaarHRR: false,
	}
	for m, wantValid := range valid {
		res, err := repro.Estimate(ds.Values, m, opts)
		if err != nil {
			t.Errorf("%s: %v", m, err)
			continue
		}
		if got := mathx.IsDistribution(res.Distribution, 1e-6); got != wantValid {
			t.Errorf("%s: IsDistribution = %v, want %v", m, got, wantValid)
		}
		if res.Method != m || res.Epsilon != 1.5 {
			t.Errorf("%s: result metadata %+v", m, res)
		}
	}
}

func TestEstimateBadBucketsForHierarchy(t *testing.T) {
	// 100 is not a power of 4: the hierarchy method must surface an error,
	// not a panic.
	opts := repro.Options{Epsilon: 1, Buckets: 100}
	if _, err := repro.Estimate([]float64{0.5, 0.6}, repro.HHADMM, opts); err == nil {
		t.Error("expected an error for non-power-of-4 buckets")
	}
}

func TestClientAggregatorStreaming(t *testing.T) {
	ds := dataset.Beta52(20000, 3)
	opts := repro.DefaultOptions(1.0)
	opts.Buckets = 128

	client, err := repro.NewClient(opts)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := repro.NewAggregator(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Estimate(); err == nil {
		t.Error("empty aggregator should error")
	}
	b := client.Bandwidth()
	for _, v := range ds.Values {
		r := client.Report(v)
		if r < -b-1e-9 || r > 1+b+1e-9 {
			t.Fatalf("report %v outside [−b, 1+b]", r)
		}
		agg.Ingest(r)
	}
	if agg.N() != ds.N() {
		t.Errorf("N = %d", agg.N())
	}
	res, err := agg.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	truth := ds.TrueDistributionAt(128)
	if w1 := metrics.Wasserstein(truth, res.Distribution); w1 > 0.02 {
		t.Errorf("streaming W1 = %v", w1)
	}
}

func TestSeedReproducibility(t *testing.T) {
	ds := dataset.Beta52(5000, 4)
	opts := repro.DefaultOptions(1)
	opts.Buckets = 64
	opts.Seed = 99
	a, err := repro.EstimateDistribution(ds.Values, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := repro.EstimateDistribution(ds.Values, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mathx.L1(a.Distribution, b.Distribution) != 0 {
		t.Error("same seed produced different estimates")
	}
	opts.Seed = 100
	c, err := repro.EstimateDistribution(ds.Values, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mathx.L1(a.Distribution, c.Distribution) == 0 {
		t.Error("different seeds produced identical estimates")
	}
}

func TestConfidenceIntervalAPI(t *testing.T) {
	ds := dataset.Beta52(15000, 6)
	opts := repro.DefaultOptions(1)
	opts.Buckets = 64
	client, _ := repro.NewClient(opts)
	agg, _ := repro.NewAggregator(opts)
	for _, v := range ds.Values {
		agg.Ingest(client.Report(v))
	}
	ci, err := agg.ConfidenceInterval(repro.MeanStatistic(), 0.9, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !(ci.Lo <= ci.Point && ci.Point <= ci.Hi) {
		t.Errorf("CI does not bracket its point estimate: %+v", ci)
	}
	if ci.Hi-ci.Lo <= 0 || ci.Hi-ci.Lo > 0.1 {
		t.Errorf("CI width %v out of sane bounds", ci.Hi-ci.Lo)
	}
	// Beta(5,2) mean ≈ 0.714 should be near (usually inside) the interval.
	if ci.Lo > 0.76 || ci.Hi < 0.67 {
		t.Errorf("CI [%v, %v] far from the true mean 0.714", ci.Lo, ci.Hi)
	}
	// Quantile and range statistics work too.
	if _, err := agg.ConfidenceInterval(repro.QuantileStatistic(0.5), 0.8, 20); err != nil {
		t.Error(err)
	}
	if _, err := agg.ConfidenceInterval(repro.RangeStatistic(0.5, 1), 0.8, 20); err != nil {
		t.Error(err)
	}
	// Errors: bad level, empty aggregator.
	if _, err := agg.ConfidenceInterval(repro.MeanStatistic(), 1.5, 10); err == nil {
		t.Error("bad level accepted")
	}
	empty, _ := repro.NewAggregator(opts)
	if _, err := empty.ConfidenceInterval(repro.MeanStatistic(), 0.9, 10); err == nil {
		t.Error("empty aggregator accepted")
	}
}

func TestAggregatorConcurrentIngestion(t *testing.T) {
	opts := repro.DefaultOptions(1.0)
	opts.Buckets = 64
	agg, err := repro.NewAggregator(opts)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Each goroutine owns its Client (clients are not shared);
			// the Aggregator is shared by all of them.
			client, err := repro.NewClient(repro.Options{Epsilon: 1, Buckets: 64, Seed: uint64(id + 1)})
			if err != nil {
				t.Error(err)
				return
			}
			rng := randx.New(uint64(1000 + id))
			batch := make([]float64, 0, 16)
			for i := 0; i < perWorker; i++ {
				r := client.Report(rng.Beta(5, 2))
				if i%2 == 0 {
					agg.Ingest(r)
				} else {
					batch = append(batch, r)
					if len(batch) == cap(batch) {
						agg.IngestBatch(batch)
						batch = batch[:0]
					}
				}
			}
			agg.IngestBatch(batch)
		}(w)
	}
	// Estimating mid-ingestion must not block writers or corrupt counts.
	for i := 0; i < 3; i++ {
		if _, err := agg.Estimate(); err != nil && err != repro.ErrNoValues {
			t.Errorf("mid-ingestion estimate: %v", err)
		}
	}
	wg.Wait()
	if agg.N() != workers*perWorker {
		t.Fatalf("N = %d, want %d (reports lost)", agg.N(), workers*perWorker)
	}
	res, err := agg.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.IsDistribution(res.Distribution, 1e-9) {
		t.Error("concurrent-ingestion estimate is not a distribution")
	}
	if math.Abs(res.Mean()-5.0/7.0) > 0.05 {
		t.Errorf("mean = %v, want ≈ 0.714", res.Mean())
	}
}
