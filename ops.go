package repro

// Operational surface of the public API: typed access to a collector's
// telemetry (GET /metrics, Prometheus text exposition) and probe endpoints
// (GET /healthz, GET /readyz), so tooling embedding this library can watch a
// deployment without hand-parsing the exposition format. Built on the same
// zero-dependency parser the server's own tests lint their scrapes with.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// ServerStats is a typed snapshot of a collector's /metrics exposition. The
// named fields cover the signals an operator dashboards first; Raw holds
// every sample for anything else.
type ServerStats struct {
	// Up, Ready, Healthy mirror the ldp_up / ldp_ready / ldp_healthy probe
	// gauges — what /healthz and /readyz would answer at scrape time.
	Up      bool
	Ready   bool
	Healthy bool
	// Streams is the number of declared streams.
	Streams int
	// Requests counts HTTP requests served across all endpoints; Shed the
	// requests rejected by admission control before reaching the engine.
	Requests uint64
	Shed     uint64
	// Reports maps stream name to randomized reports ingested.
	Reports map[string]uint64
	// EpochRotations maps stream name to epoch rotations performed.
	EpochRotations map[string]uint64
	// FederationAbsorbed / FederationDuplicates map edge id to histogram
	// increments absorbed from, and replayed pushes skipped for, that edge
	// (root side; empty on a non-federated collector).
	FederationAbsorbed   map[string]uint64
	FederationDuplicates map[string]uint64
	// Raw holds every parsed sample keyed in exposition style:
	// name{label="value",...} with labels sorted by name.
	Raw map[string]float64
}

// FetchServerStats scrapes GET {baseURL}/metrics and returns the typed
// snapshot. An http.Client can be supplied for timeouts and transports; nil
// uses http.DefaultClient.
func FetchServerStats(baseURL string, hc *http.Client) (*ServerStats, error) {
	body, err := opsGet(baseURL, "/metrics", hc)
	if err != nil {
		return nil, fmt.Errorf("repro: server stats: %w", err)
	}
	return parseServerStats(body)
}

// parseServerStats builds a ServerStats from one exposition payload.
func parseServerStats(exposition []byte) (*ServerStats, error) {
	sc, err := telemetry.ParseText(bytes.NewReader(exposition))
	if err != nil {
		return nil, fmt.Errorf("repro: server stats: %w", err)
	}
	st := &ServerStats{
		Reports:              make(map[string]uint64),
		EpochRotations:       make(map[string]uint64),
		FederationAbsorbed:   make(map[string]uint64),
		FederationDuplicates: make(map[string]uint64),
		Raw:                  make(map[string]float64),
	}
	for _, fam := range sc.Families {
		for _, s := range fam.Samples {
			st.Raw[rawSampleKey(s.Name, s.Labels)] = s.Value
			switch s.Name {
			case "ldp_up":
				st.Up = s.Value == 1
			case "ldp_ready":
				st.Ready = s.Value == 1
			case "ldp_healthy":
				st.Healthy = s.Value == 1
			case "ldp_streams":
				st.Streams = int(s.Value)
			case "ldp_requests_total":
				st.Requests += uint64(s.Value)
			case "ldp_shed_total":
				st.Shed += uint64(s.Value)
			case "ldp_reports_total":
				st.Reports[s.Labels["stream"]] += uint64(s.Value)
			case "ldp_epoch_rotations_total":
				st.EpochRotations[s.Labels["stream"]] += uint64(s.Value)
			case "ldp_federation_absorbed_total":
				st.FederationAbsorbed[s.Labels["edge"]] += uint64(s.Value)
			case "ldp_federation_duplicate_pushes_total":
				st.FederationDuplicates[s.Labels["edge"]] += uint64(s.Value)
			}
		}
	}
	return st, nil
}

// rawSampleKey renders a sample identity in exposition style with sorted
// labels, so Raw lookups are deterministic.
func rawSampleKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	pairs := make([]string, 0, len(labels))
	for k, v := range labels {
		pairs = append(pairs, k+`="`+v+`"`)
	}
	sort.Strings(pairs)
	return name + "{" + strings.Join(pairs, ",") + "}"
}

// ServerHealth is the combined answer of a collector's probe endpoints.
type ServerHealth struct {
	// Healthy is GET /healthz: the estimation engine is ticking.
	Healthy bool
	// Ready is GET /readyz: snapshot restore has completed.
	Ready bool
	// UptimeSeconds comes from a healthy /healthz answer (0 otherwise).
	UptimeSeconds float64
	// Detail carries the failing probe's error message ("" when both pass).
	Detail string
}

// CheckServerHealth queries GET {baseURL}/healthz and /readyz. A 503 from
// either probe is NOT an error — it comes back as Healthy/Ready false with
// the probe's message in Detail. The error return is reserved for transport
// failures and unexpected statuses.
func CheckServerHealth(baseURL string, hc *http.Client) (ServerHealth, error) {
	var h ServerHealth
	ok, detail, extra, err := opsProbe(baseURL, "/healthz", hc)
	if err != nil {
		return h, fmt.Errorf("repro: health: %w", err)
	}
	h.Healthy = ok
	if ok {
		h.UptimeSeconds, _ = extra["uptime_seconds"].(float64)
	} else {
		h.Detail = detail
	}
	ok, detail, _, err = opsProbe(baseURL, "/readyz", hc)
	if err != nil {
		return h, fmt.Errorf("repro: health: %w", err)
	}
	h.Ready = ok
	if !ok && h.Detail == "" {
		h.Detail = detail
	}
	return h, nil
}

// opsProbe hits one probe endpoint: 200 → ok, 503 → probe failure with the
// envelope's message, anything else → error.
func opsProbe(baseURL, path string, hc *http.Client) (ok bool, detail string, extra map[string]any, err error) {
	u, err := url.Parse(baseURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return false, "", nil, fmt.Errorf("%q is not an http(s) URL", baseURL)
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Get(strings.TrimSuffix(baseURL, "/") + path)
	if err != nil {
		return false, "", nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return false, "", nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		extra = make(map[string]any)
		json.Unmarshal(body, &extra) // best effort; a 200 is ok regardless
		return true, "", extra, nil
	case http.StatusServiceUnavailable:
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.Unmarshal(body, &env) == nil && env.Error.Message != "" {
			return false, env.Error.Code + ": " + env.Error.Message, nil, nil
		}
		return false, strings.TrimSpace(string(body)), nil, nil
	default:
		return false, "", nil, fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, strings.TrimSpace(string(body)))
	}
}

// opsGet fetches one endpoint, demanding a 200.
func opsGet(baseURL, path string, hc *http.Client) ([]byte, error) {
	u, err := url.Parse(baseURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("%q is not an http(s) URL", baseURL)
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Get(strings.TrimSuffix(baseURL, "/") + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// TraceSpan is one span of a collector's flight recorder as served by GET
// /v1/debug/traces: a stage of one traced request (or engine cycle), with
// its lineage and duration.
type TraceSpan struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	// Stage names the pipeline step ("http /v1/streams/{name}/report",
	// "decode", "bucketize", "ingest", "federation/push", "absorb", ...).
	Stage  string    `json:"stage"`
	Stream string    `json:"stream,omitempty"`
	Start  time.Time `json:"start"`
	// DurationNS is the span's monotonic duration in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// Attrs are the span's key/value annotations; Error is the failure code
	// ("" on success).
	Attrs []TraceAttr `json:"attrs,omitempty"`
	Error string      `json:"error,omitempty"`
}

// TraceAttr is one key/value annotation of a TraceSpan.
type TraceAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// TraceQuery filters FetchTraces. The zero value returns everything the
// flight recorder holds.
type TraceQuery struct {
	// Stream keeps spans of one stream; TraceID one trace (32 hex chars);
	// Route whole traces rooted at one route template
	// ("/v1/streams/{name}/report").
	Stream  string
	TraceID string
	Route   string
	// MinDuration drops spans faster than this.
	MinDuration time.Duration
	// Limit keeps only the most recent N matching spans (0 = all).
	Limit int
}

// Traces is FetchTraces' answer: the recorder's geometry plus the matching
// spans, oldest first.
type Traces struct {
	// Capacity is the flight recorder's span capacity; Recorded counts
	// spans ever recorded (at most Capacity are still held).
	Capacity int         `json:"capacity"`
	Recorded uint64      `json:"recorded"`
	Spans    []TraceSpan `json:"spans"`
	// Exemplars maps endpoint to the most recent trace-annotated request
	// duration — the bridge from a latency tail on /metrics to a trace ID.
	Exemplars map[string]TraceExemplar `json:"exemplars,omitempty"`
}

// TraceExemplar is one trace-annotated histogram observation.
type TraceExemplar struct {
	Value   float64   `json:"value"`
	TraceID string    `json:"trace_id"`
	Time    time.Time `json:"time"`
}

// FetchTraces queries GET {baseURL}/v1/debug/traces on a collector's debug
// listener (cmd/ldpserver -debug-addr; the route is not mounted on the
// public port). nil hc uses http.DefaultClient.
func FetchTraces(baseURL string, q TraceQuery, hc *http.Client) (*Traces, error) {
	params := url.Values{}
	if q.Stream != "" {
		params.Set("stream", q.Stream)
	}
	if q.TraceID != "" {
		params.Set("trace", q.TraceID)
	}
	if q.Route != "" {
		params.Set("route", q.Route)
	}
	if q.MinDuration > 0 {
		params.Set("min_duration", q.MinDuration.String())
	}
	if q.Limit > 0 {
		params.Set("limit", fmt.Sprintf("%d", q.Limit))
	}
	path := "/v1/debug/traces"
	if len(params) > 0 {
		path += "?" + params.Encode()
	}
	body, err := opsGet(baseURL, path, hc)
	if err != nil {
		return nil, fmt.Errorf("repro: fetch traces: %w", err)
	}
	var out Traces
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("repro: fetch traces: undecodable response: %w", err)
	}
	return &out, nil
}

// AwaitServerReady polls GET {baseURL}/readyz until it answers 200 or the
// deadline passes — the programmatic version of "wait for the snapshot
// restore before pointing traffic at it".
func AwaitServerReady(baseURL string, hc *http.Client, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok, detail, _, err := opsProbe(baseURL, "/readyz", hc)
		if err != nil {
			return fmt.Errorf("repro: await ready: %w", err)
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("repro: await ready: not ready after %v (%s)", timeout, detail)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
