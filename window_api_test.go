package repro

// Tests of the windowed public API: epoch-rotated Aggregators
// (Options.Epoch/Retain, Advance/Rotate/EstimateWindow), Streams.Drop, and
// windowed snapshot interchange with the registry.

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/randx"
)

func ingestCohort(t *testing.T, agg *Aggregator, seed uint64, n int, alpha, beta float64) {
	t.Helper()
	client, err := NewClient(Options{Epsilon: 1, Buckets: 64, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(seed)
	for i := 0; i < n; i++ {
		agg.Ingest(client.Report(rng.Beta(alpha, beta)))
	}
}

func TestOptionsWindowValidation(t *testing.T) {
	if _, err := NewAggregator(Options{Epsilon: 1, Retain: 3}); err == nil {
		t.Error("retain without epoch accepted")
	}
	if _, err := NewAggregator(Options{Epsilon: 1, Epoch: -time.Second}); err == nil {
		t.Error("negative epoch accepted")
	}
	if _, err := NewAggregator(Options{Epsilon: 1, Epoch: time.Minute, Retain: -2}); err == nil {
		t.Error("negative retain accepted")
	}
}

func TestPlainAggregatorWindowMethodsFail(t *testing.T) {
	agg, err := NewAggregator(Options{Epsilon: 1, Buckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Advance(time.Now()); err != ErrNotWindowed {
		t.Errorf("Advance on plain aggregator: %v", err)
	}
	if err := agg.Rotate(); err != ErrNotWindowed {
		t.Errorf("Rotate on plain aggregator: %v", err)
	}
	if _, err := agg.EstimateWindow("last:1"); err != ErrNotWindowed {
		t.Errorf("EstimateWindow on plain aggregator: %v", err)
	}
	if agg.CurrentEpoch() != -1 {
		t.Errorf("CurrentEpoch on plain aggregator = %d", agg.CurrentEpoch())
	}
}

func TestWindowedAggregatorTracksCohorts(t *testing.T) {
	agg, err := NewAggregator(Options{Epsilon: 1, Buckets: 64, Epoch: time.Minute, Retain: 4})
	if err != nil {
		t.Fatal(err)
	}
	if agg.CurrentEpoch() != 0 {
		t.Fatalf("born in epoch %d", agg.CurrentEpoch())
	}

	// Epoch 0: right-skewed cohort. Epoch 1: left-skewed cohort.
	ingestCohort(t, agg, 1, 3000, 5, 2)
	if err := agg.Rotate(); err != nil {
		t.Fatal(err)
	}
	ingestCohort(t, agg, 2, 3000, 2, 5)

	res0, err := agg.EstimateWindow("epochs:0..0")
	if err != nil {
		t.Fatal(err)
	}
	res1, err := agg.EstimateWindow("last:1")
	if err != nil {
		t.Fatal(err)
	}
	// Beta(5,2) has mean ~0.714, Beta(2,5) ~0.286: the windows must land on
	// opposite sides of 0.5 — windowing separated the cohorts.
	if m := res0.Mean(); m < 0.6 {
		t.Errorf("epoch 0 mean %v, want right-skewed (> 0.6)", m)
	}
	if m := res1.Mean(); m > 0.4 {
		t.Errorf("live epoch mean %v, want left-skewed (< 0.4)", m)
	}
	// The all-retained estimate blends both cohorts.
	all, err := agg.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if m := all.Mean(); math.Abs(m-0.5) > 0.1 {
		t.Errorf("blended mean %v, want ≈ 0.5", m)
	}
	if agg.N() != 6000 {
		t.Errorf("N = %d, want 6000", agg.N())
	}

	// Selector errors surface.
	if _, err := agg.EstimateWindow("yesterday"); err == nil {
		t.Error("bad selector accepted")
	}
	if _, err := agg.EstimateWindow("epochs:5..9"); err == nil {
		t.Error("future range accepted")
	}
}

func TestWindowedAggregatorAdvanceAndAging(t *testing.T) {
	agg, err := NewAggregator(Options{Epsilon: 1, Buckets: 32, Epoch: time.Minute, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	agg.Ingest(0.4)
	// Jump three periods at once: epoch 0 seals with the report, 1 and 2
	// seal empty, 3 is live.
	rot, err := agg.Advance(time.Now().Add(3*time.Minute + time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if rot != 3 {
		t.Fatalf("Advance sealed %d epochs, want 3", rot)
	}
	if agg.CurrentEpoch() != 3 {
		t.Fatalf("current epoch %d, want 3", agg.CurrentEpoch())
	}
	// Retain 2 keeps epochs 2 and 1 — the report in epoch 0 aged out.
	if agg.N() != 0 {
		t.Errorf("aged-out report still visible: N = %d", agg.N())
	}
	if _, err := agg.EstimateWindow("epochs:0..0"); err == nil {
		t.Error("aged-out epoch still addressable")
	}
}

func TestStreamsDrop(t *testing.T) {
	reg := NewStreams()
	if _, err := reg.Declare("tmp", Options{Epsilon: 1, Buckets: 32}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Drop("tmp"); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get("tmp"); ok {
		t.Error("dropped stream still resolvable")
	}
	if err := reg.Drop("tmp"); err == nil {
		t.Error("double drop succeeded")
	}
	// The name is reusable — with different options, even.
	if _, err := reg.Declare("tmp", Options{Epsilon: 2, Buckets: 16, Epoch: time.Minute}); err != nil {
		t.Fatalf("redeclare after drop: %v", err)
	}
}

func TestStreamsWindowedSaveLoad(t *testing.T) {
	reg := NewStreams()
	agg, err := reg.Declare("lat", Options{Epsilon: 1, Buckets: 64, Epoch: time.Minute, Retain: 4})
	if err != nil {
		t.Fatal(err)
	}
	ingestCohort(t, agg, 7, 2000, 5, 2)
	if err := agg.Rotate(); err != nil {
		t.Fatal(err)
	}
	ingestCohort(t, agg, 8, 1000, 2, 5)

	path := filepath.Join(t.TempDir(), "reg.snap")
	if err := reg.Save(path); err != nil {
		t.Fatal(err)
	}

	// Restore into an empty registry: the stream comes back windowed, with
	// the same epoch index, population, and per-epoch separation.
	reg2 := NewStreams()
	if err := reg2.Load(path); err != nil {
		t.Fatal(err)
	}
	agg2, ok := reg2.Get("lat")
	if !ok {
		t.Fatal("windowed stream not restored")
	}
	if agg2.CurrentEpoch() != 1 || agg2.N() != 3000 {
		t.Fatalf("restored epoch %d N %d, want 1/3000", agg2.CurrentEpoch(), agg2.N())
	}
	a, err := agg.EstimateWindow("epochs:0..0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := agg2.EstimateWindow("epochs:0..0")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Distribution {
		if a.Distribution[i] != b.Distribution[i] {
			t.Fatalf("sealed epoch estimate differs at bucket %d after restore", i)
		}
	}

	// Restoring into a declared-but-mismatched registry fails loudly.
	reg3 := NewStreams()
	if _, err := reg3.Declare("lat", Options{Epsilon: 1, Buckets: 64}); err != nil {
		t.Fatal(err)
	}
	if err := reg3.Load(path); err == nil {
		t.Fatal("windowed snapshot restored into a plain declaration")
	}
	// And into a matching windowed declaration, it adopts cleanly.
	reg4 := NewStreams()
	if _, err := reg4.Declare("lat", Options{Epsilon: 1, Buckets: 64, Epoch: time.Minute, Retain: 4}); err != nil {
		t.Fatal(err)
	}
	if err := reg4.Load(path); err != nil {
		t.Fatal(err)
	}
	agg4, _ := reg4.Get("lat")
	if agg4.CurrentEpoch() != 1 || agg4.N() != 3000 {
		t.Fatalf("adopted epoch %d N %d, want 1/3000", agg4.CurrentEpoch(), agg4.N())
	}
}
