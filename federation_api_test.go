package repro

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestFederationPeers(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/federation/peers" || r.Method != http.MethodGet {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"peers": [
			{"edge": "edge-1", "last_seq": 4, "last_push": "2026-07-30T12:00:00.5Z",
			 "reports": 900, "dropped": 2,
			 "streams": [{"stream": "age", "n": 900,
			              "epochs": [{"epoch": 0, "n": 600}, {"epoch": 1, "n": 300}]}]},
			{"edge": "edge-2", "last_seq": 1, "reports": 10}
		]}`))
	}))
	defer ts.Close()

	peers, err := FederationPeers(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("got %d peers", len(peers))
	}
	p := peers[0]
	if p.Edge != "edge-1" || p.LastSeq != 4 || p.Reports != 900 || p.Dropped != 2 {
		t.Fatalf("peer %+v", p)
	}
	want := time.Date(2026, 7, 30, 12, 0, 0, 500000000, time.UTC)
	if !p.LastPush.Equal(want) {
		t.Fatalf("last push %v, want %v", p.LastPush, want)
	}
	if len(p.Streams) != 1 || p.Streams[0].N != 900 || len(p.Streams[0].Epochs) != 2 ||
		p.Streams[0].Epochs[1].N != 300 {
		t.Fatalf("peer streams %+v", p.Streams)
	}
	if !peers[1].LastPush.IsZero() {
		t.Fatalf("peer without last_push decoded %v", peers[1].LastPush)
	}
}

func TestFederationPeersErrors(t *testing.T) {
	if _, err := FederationPeers("not a url", nil); err == nil {
		t.Error("bad URL accepted")
	}
	if _, err := FederationPeers("ftp://x", nil); err == nil {
		t.Error("non-http scheme accepted")
	}

	// Non-200 statuses and undecodable bodies surface as errors.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer bad.Close()
	if _, err := FederationPeers(bad.URL, nil); err == nil {
		t.Error("503 accepted")
	}
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json"))
	}))
	defer garbage.Close()
	if _, err := FederationPeers(garbage.URL, nil); err == nil {
		t.Error("garbage body accepted")
	}
}
