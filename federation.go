package repro

// Federation surface of the public API: typed access to a root collector's
// peer status, so operators and tooling embedding this library can watch a
// federation tier (edges pushing histogram deltas into a root, see
// internal/federate and the ldpserver -push-to / -accept-federation flags)
// without hand-parsing the HTTP responses.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// FederationPeerEpoch is one absorbed-count high-water mark: how many
// histogram increments of one epoch the root has merged from the edge.
type FederationPeerEpoch struct {
	Epoch int
	N     uint64
}

// FederationPeerStream is the per-stream watermark block of one peer.
type FederationPeerStream struct {
	Stream string
	// N sums the absorbed increments across the retained epochs.
	N      uint64
	Epochs []FederationPeerEpoch
}

// FederationPeer is everything a root collector knows about one edge: the
// replay-detection sequence high-water mark (a restarted edge resumes
// against it without double counting) and the absorbed-increment watermarks
// per stream and epoch.
type FederationPeer struct {
	// Edge is the edge collector's stable identity (its -edge-id).
	Edge string
	// LastSeq is the last push sequence the root applied for this edge.
	LastSeq int64
	// LastPush is when that push arrived (zero if never).
	LastPush time.Time
	// Reports counts the histogram increments absorbed from this edge;
	// Dropped the increments whose epochs fell outside the root's window.
	Reports uint64
	Dropped uint64
	Streams []FederationPeerStream
}

// wire shapes of GET /federation/peers (internal/ldphttp.PeerInfo).
type wirePeerEpoch struct {
	Epoch int    `json:"epoch"`
	N     uint64 `json:"n"`
}

type wirePeerStream struct {
	Stream string          `json:"stream"`
	N      uint64          `json:"n"`
	Epochs []wirePeerEpoch `json:"epochs"`
}

type wirePeer struct {
	Edge     string           `json:"edge"`
	LastSeq  int64            `json:"last_seq"`
	LastPush string           `json:"last_push"`
	Reports  uint64           `json:"reports"`
	Dropped  uint64           `json:"dropped"`
	Streams  []wirePeerStream `json:"streams"`
}

// FederationPeers fetches a root collector's per-edge federation status from
// GET {baseURL}/federation/peers. The result is sorted by edge id (the
// server's order). An http.Client can be supplied for timeouts and
// transports; nil uses http.DefaultClient.
func FederationPeers(baseURL string, hc *http.Client) ([]FederationPeer, error) {
	u, err := url.Parse(baseURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("repro: federation peers: %q is not an http(s) URL", baseURL)
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Get(strings.TrimSuffix(baseURL, "/") + "/federation/peers")
	if err != nil {
		return nil, fmt.Errorf("repro: federation peers: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, fmt.Errorf("repro: federation peers: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("repro: federation peers: status %d: %s",
			resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var wire struct {
		Peers []wirePeer `json:"peers"`
	}
	if err := json.Unmarshal(body, &wire); err != nil {
		return nil, fmt.Errorf("repro: federation peers: decode: %v", err)
	}
	out := make([]FederationPeer, 0, len(wire.Peers))
	for _, wp := range wire.Peers {
		p := FederationPeer{
			Edge:    wp.Edge,
			LastSeq: wp.LastSeq,
			Reports: wp.Reports,
			Dropped: wp.Dropped,
		}
		if wp.LastPush != "" {
			ts, err := time.Parse(time.RFC3339Nano, wp.LastPush)
			if err != nil {
				return nil, fmt.Errorf("repro: federation peers: peer %q last_push %q: %v",
					wp.Edge, wp.LastPush, err)
			}
			p.LastPush = ts
		}
		for _, ws := range wp.Streams {
			ps := FederationPeerStream{Stream: ws.Stream, N: ws.N}
			for _, we := range ws.Epochs {
				ps.Epochs = append(ps.Epochs, FederationPeerEpoch{Epoch: we.Epoch, N: we.N})
			}
			p.Streams = append(p.Streams, ps)
		}
		out = append(out, p)
	}
	return out, nil
}
