package repro

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/aggregate"
	"repro/internal/boot"
	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/histogram"
	"repro/internal/mathx"
	"repro/internal/mechanism"
	"repro/internal/randx"
	"repro/internal/window"
)

// Method selects the estimation algorithm. The default and recommended
// method is SWEMS; the others reproduce the paper's baselines.
type Method string

// Supported methods.
const (
	// SWEMS is Square Wave reporting with Expectation–Maximization and
	// Smoothing — the paper's contribution and the recommended default.
	SWEMS Method = "sw-ems"
	// SWEM is Square Wave with plain EM (no smoothing step).
	SWEM Method = "sw-em"
	// SWBREMS is the discrete bucketize-before-randomize Square Wave with
	// EMS, for domains that are already discrete (ages, counts, ratings).
	SWBREMS Method = "sw-br-ems"
	// HHADMM is the hierarchical histogram with ADMM post-processing
	// (the paper's improved hierarchy baseline).
	HHADMM Method = "hh-admm"
	// HHist is the plain hierarchical histogram with constrained
	// inference; its output may contain negative entries and is intended
	// for range queries only.
	HHist Method = "hh"
	// HaarHRR is the discrete-Haar hierarchy with Hadamard response;
	// like HHist, range queries only.
	HaarHRR Method = "haar-hrr"
	// Binning16/32/64 are categorical-frequency-oracle binning baselines.
	Binning16 Method = "binning-16"
	Binning32 Method = "binning-32"
	Binning64 Method = "binning-64"
)

// Options configures an estimation round.
type Options struct {
	// Epsilon is the LDP privacy budget. Required, must be positive.
	Epsilon float64
	// Buckets is the number of histogram buckets of the reconstruction.
	// Defaults to 1024. Hierarchy methods require a power of 4 (HHADMM,
	// HHist) or 2 (HaarHRR); binning methods require a multiple of the
	// bin count.
	Buckets int
	// Bandwidth overrides the square-wave half-width b. 0 selects the
	// paper's mutual-information optimum.
	Bandwidth float64
	// Seed makes the mechanism's randomness reproducible. 0 selects a
	// fixed default seed (LDP noise must be random in production; expose
	// the seed only for experiments and tests).
	Seed uint64
	// Workers sets the reconstruction's EM parallelism: 0 or 1 run
	// serially, n > 1 partitions the E-step matrix products across n
	// workers, negative uses every CPU. Parallel reconstructions are
	// bit-identical to serial ones, so this is purely a latency knob.
	Workers int
	// Shards overrides the Aggregator's ingestion stripe count
	// (0 = one per CPU, rounded up to a power of two).
	Shards int
	// Epoch, when positive, makes the Aggregator epoch-rotated: reports
	// land in a live epoch that seals every Epoch (drive rotation with
	// Advance or Rotate), the last Retain sealed epochs are kept, and
	// EstimateWindow answers sliding-window selectors ("last:K",
	// "epochs:i..j"). Zero (the default) collects one cumulative
	// histogram, exactly as before.
	Epoch time.Duration
	// Retain bounds how many sealed epochs a windowed Aggregator keeps
	// (0 = 8). Requires Epoch.
	Retain int
	// Mechanism selects the streaming pipeline's reporting mechanism by
	// wire name: "sw" (the default continuous Square Wave), "sw-discrete",
	// "grr", "oue", "sue", "olh", "hrr", or "auto" (pick the
	// lower-variance categorical oracle for this (ε, Buckets) per the
	// paper's Section 4.1 rule; resolved at construction). Scalar-report
	// mechanisms (sw, sw-discrete, grr) work with Client.Report and
	// Aggregator.Ingest; the rest use Client.Perturb and
	// Aggregator.IngestReport. Batch estimation (Estimate,
	// EstimateDistribution) selects its method independently via Method.
	Mechanism string
}

// DefaultOptions returns the recommended configuration at the given budget.
func DefaultOptions(eps float64) Options {
	return Options{Epsilon: eps, Buckets: 1024}
}

func (o Options) validate() (Options, error) {
	if o.Epsilon <= 0 || math.IsNaN(o.Epsilon) || math.IsInf(o.Epsilon, 0) {
		return o, fmt.Errorf("repro: epsilon must be positive and finite, got %v", o.Epsilon)
	}
	if o.Buckets == 0 {
		o.Buckets = 1024
	}
	if o.Buckets < 2 {
		return o, fmt.Errorf("repro: need at least 2 buckets, got %d", o.Buckets)
	}
	if o.Bandwidth < 0 || o.Bandwidth > 2 {
		return o, fmt.Errorf("repro: bandwidth %v out of range [0, 2]", o.Bandwidth)
	}
	if o.Seed == 0 {
		o.Seed = 0x5157454d53 // arbitrary fixed default
	}
	if o.Epoch < 0 {
		return o, fmt.Errorf("repro: epoch duration %v must not be negative", o.Epoch)
	}
	if o.Retain != 0 && o.Epoch == 0 {
		return o, fmt.Errorf("repro: retain %d needs an epoch duration", o.Retain)
	}
	if o.Epoch > 0 {
		wcfg, err := window.Config{Epoch: o.Epoch, Retain: o.Retain}.Validate()
		if err != nil {
			return o, fmt.Errorf("repro: %v", err)
		}
		o.Retain = wcfg.Retain
	}
	// "" and "auto" resolve here so declared streams, snapshots and
	// redeclarations all carry the concrete mechanism name.
	mech, err := mechanism.Resolve(o.Mechanism, o.Epsilon, o.Buckets)
	if err != nil {
		return o, fmt.Errorf("repro: %v", err)
	}
	o.Mechanism = mech
	if o.Bandwidth != 0 && mech != mechanism.SW && mech != mechanism.SWDiscrete {
		return o, fmt.Errorf("repro: bandwidth only applies to the sw family, not %q", mech)
	}
	return o, nil
}

// Result is a reconstructed distribution with convenience statistics.
type Result struct {
	// Distribution is the estimated probability of each bucket. For
	// HHist and HaarHRR it may contain negative entries (range queries
	// remain meaningful; point statistics do not).
	Distribution []float64
	// Method that produced the estimate.
	Method Method
	// Epsilon of the round.
	Epsilon float64
}

// Mean returns the estimated mean of the private values (in [0,1]).
func (r *Result) Mean() float64 { return histogram.Mean(r.Distribution) }

// Variance returns the estimated variance.
func (r *Result) Variance() float64 { return histogram.Variance(r.Distribution) }

// Quantile returns the estimated β-quantile (β ∈ [0,1]).
func (r *Result) Quantile(beta float64) float64 {
	return histogram.Quantile(r.Distribution, beta)
}

// Range returns the estimated probability mass on [lo, hi] ⊆ [0,1].
func (r *Result) Range(lo, hi float64) float64 {
	return histogram.RangeProb(r.Distribution, lo, hi)
}

// CDF returns the estimated cumulative distribution at v ∈ [0,1].
func (r *Result) CDF(v float64) float64 {
	return histogram.CDFAt(r.Distribution, v)
}

// ErrNoValues is returned when an estimation round receives no input.
var ErrNoValues = errors.New("repro: no values to estimate from")

func estimatorFor(m Method, o Options) (core.Estimator, error) {
	switch m {
	case SWEMS, "":
		if o.Bandwidth > 0 {
			return core.SWEMSWithBandwidth(o.Bandwidth), nil
		}
		return core.SWEMS(), nil
	case SWEM:
		return core.SWEM(), nil
	case SWBREMS:
		return core.SWDiscreteEMS(), nil
	case HHADMM:
		return core.HHADMM(4), nil
	case HHist:
		return core.HH(4), nil
	case HaarHRR:
		return core.HaarHRR(), nil
	case Binning16:
		return core.Binning(16), nil
	case Binning32:
		return core.Binning(32), nil
	case Binning64:
		return core.Binning(64), nil
	default:
		return nil, fmt.Errorf("repro: unknown method %q", m)
	}
}

// EstimateDistribution runs a full SW+EMS round over the private values
// (each in [0,1]; out-of-range values are clamped) and returns the
// reconstructed distribution.
func EstimateDistribution(values []float64, opts Options) (*Result, error) {
	return Estimate(values, SWEMS, opts)
}

// Estimate runs a full round with an explicit method.
func Estimate(values []float64, m Method, opts Options) (*Result, error) {
	opts, err := opts.validate()
	if err != nil {
		return nil, err
	}
	if len(values) == 0 {
		return nil, ErrNoValues
	}
	est, err := estimatorFor(m, opts)
	if err != nil {
		return nil, err
	}
	dist, err := runGuarded(func() []float64 {
		return est.Estimate(values, opts.Buckets, opts.Epsilon, randx.New(opts.Seed))
	})
	if err != nil {
		return nil, err
	}
	if m == "" {
		m = SWEMS
	}
	return &Result{Distribution: dist, Method: m, Epsilon: opts.Epsilon}, nil
}

// runGuarded converts internal invariant panics (e.g. a bucket count a
// hierarchy method cannot use) into errors at the public boundary.
func runGuarded(fn func() []float64) (out []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("repro: %v", r)
		}
	}()
	return fn(), nil
}

// Client is the user-side half of the streaming SW pipeline. A Client is
// cheap to construct and holds only mechanism parameters; call Report once
// per private value. Not safe for concurrent use (each goroutine should own
// a Client).
type Client struct {
	inner *core.Client
	rng   *randx.Rand
}

// NewClient builds a client. Bandwidth, Buckets and Mechanism behave as in
// Options.
func NewClient(opts Options) (*Client, error) {
	opts, err := opts.validate()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{Epsilon: opts.Epsilon, Buckets: opts.Buckets, Mechanism: opts.Mechanism,
		Bandwidth: opts.Bandwidth, Smoothing: true}
	return &Client{inner: core.NewClient(cfg), rng: randx.New(opts.Seed)}, nil
}

// Report randomizes one private value v ∈ [0,1] (clamped) into a scalar
// report suitable for sending to the aggregator (for SW: a value in
// [−b, 1+b]). Report only works for scalar-report mechanisms (sw,
// sw-discrete, grr); use Perturb for the general wire form.
func (c *Client) Report(v float64) float64 {
	return c.inner.Report(mathx.Clamp(v, 0, 1), c.rng)
}

// Perturb randomizes one private value v ∈ [0,1] (clamped) into a wire
// report of the configured mechanism — the vector form every mechanism
// supports (olh: [seed, y]; hrr: [row, ±1]; oue/sue: set-bit indices; the
// scalar mechanisms: one component). Feed it to Aggregator.IngestReport or
// the collector's POST /report.
func (c *Client) Perturb(v float64) []float64 {
	return c.inner.Perturb(mathx.Clamp(v, 0, 1), c.rng)
}

// Mechanism returns the wire name of the client's reporting mechanism.
func (c *Client) Mechanism() string { return c.inner.Mechanism().Name() }

// Epsilon returns the privacy budget.
func (c *Client) Epsilon() float64 { return c.inner.Epsilon() }

// Bandwidth returns the wave half-width b in use; reports lie in [−b, 1+b].
func (c *Client) Bandwidth() float64 { return c.inner.Bandwidth() }

// Aggregator is the collector-side half of the streaming pipeline: feed it
// reports as they arrive and call Estimate whenever a reconstruction is
// needed. All methods are safe for heavy concurrent use: reports land in a
// striped histogram of atomic counters (no global lock), and Estimate works
// from a non-blocking snapshot, so reconstruction never stalls ingestion.
//
// An Aggregator built with Options.Epoch set is windowed: reports land in a
// live epoch, Advance/Rotate seal it on schedule, and EstimateWindow
// reconstructs any retained epoch range — see Options.Epoch.
type Aggregator struct {
	inner  *core.Aggregator   // immutable channel + mechanism parameters
	counts *aggregate.Striped // cumulative histogram; nil when windowed
	ring   *window.Ring       // epoch-rotated histogram; nil when not windowed
	opts   Options
}

// NewAggregator builds an aggregator with the same Options as the clients.
// A windowed aggregator's epoch 0 starts at the wall clock's now.
func NewAggregator(opts Options) (*Aggregator, error) {
	opts, err := opts.validate()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Epsilon:   opts.Epsilon,
		Buckets:   opts.Buckets,
		Mechanism: opts.Mechanism,
		Bandwidth: opts.Bandwidth,
		Smoothing: true,
		EM:        em.Options{Workers: opts.Workers},
	}
	inner := core.NewAggregator(cfg)
	a := &Aggregator{inner: inner, opts: opts}
	if opts.Epoch > 0 {
		a.ring = window.New(inner.OutputBuckets(), opts.Shards,
			window.Config{Epoch: opts.Epoch, Retain: opts.Retain}, time.Now())
	} else {
		a.counts = aggregate.New(inner.OutputBuckets(), opts.Shards)
	}
	return a, nil
}

// Ingest adds one scalar client report (sw, sw-discrete, grr). Safe to call
// from many goroutines at once. It panics on reports no client of the
// mechanism can produce; collectors ingesting untrusted wire reports use
// IngestReport, which returns an error instead.
func (a *Aggregator) Ingest(report float64) {
	if a.ring != nil {
		a.ring.Add(a.inner.Bucket(report))
		return
	}
	a.counts.Add(a.inner.Bucket(report))
}

// IngestReport adds one wire report of any mechanism (the vector form
// Client.Perturb emits), validating it first. Safe to call from many
// goroutines at once.
func (a *Aggregator) IngestReport(report []float64) error {
	cells, err := a.inner.Bucketize(nil, report)
	if err != nil {
		return err
	}
	if a.ring != nil {
		a.ring.AddBatch(cells)
		return nil
	}
	a.counts.AddBatch(cells)
	return nil
}

// Mechanism returns the wire name of the aggregator's reporting mechanism.
func (a *Aggregator) Mechanism() string { return a.inner.Mechanism().Name() }

// IngestBatch adds many client reports, resolving the counter stripe once
// for the whole batch — the cheapest way to drain a transport that delivers
// reports in chunks.
func (a *Aggregator) IngestBatch(reports []float64) {
	if len(reports) == 0 {
		return
	}
	buckets := make([]int, len(reports))
	for i, r := range reports {
		buckets[i] = a.inner.Bucket(r)
	}
	if a.ring != nil {
		a.ring.AddBatch(buckets)
		return
	}
	a.counts.AddBatch(buckets)
}

// N returns the number of reports visible to estimates: everything ingested
// for a plain aggregator, the live plus retained epochs for a windowed one.
// Fan-out mechanisms (oue/sue, olh) track the report count in their marker
// cell (the last output cell), read directly; every path is O(shards).
func (a *Aggregator) N() int {
	var raw int
	if a.ring != nil {
		raw = a.ring.N()
	} else {
		raw = a.counts.N()
	}
	if raw == 0 || !a.inner.Mechanism().FanOut() {
		return raw
	}
	marker := a.inner.OutputBuckets() - 1
	if a.ring != nil {
		return a.ring.Cell(marker)
	}
	return a.counts.Cell(marker)
}

// snapshotCounts reads the aggregator's visible report histogram.
func (a *Aggregator) snapshotCounts() ([]float64, int) {
	if a.ring != nil {
		return a.ring.MergeAll(nil)
	}
	return a.counts.Snapshot(nil)
}

// method is the Result.Method label of streaming reconstructions: the
// historical SWEMS for the default mechanism, the mechanism's wire name for
// the rest.
func (a *Aggregator) method() Method {
	if a.opts.Mechanism == mechanism.SW {
		return SWEMS
	}
	return Method(a.opts.Mechanism)
}

// Estimate reconstructs the distribution from a snapshot of the reports so
// far. Concurrent ingestion is never blocked; reports that finish arriving
// before the call are always included. On a windowed aggregator this covers
// every retained epoch plus the live one.
func (a *Aggregator) Estimate() (*Result, error) {
	counts, n := a.snapshotCounts()
	if n == 0 {
		return nil, ErrNoValues
	}
	res := a.inner.EstimateFrom(counts, nil)
	return &Result{Distribution: res.Estimate, Method: a.method(), Epsilon: a.opts.Epsilon}, nil
}

// ErrNotWindowed is returned by window methods of a plain aggregator.
var ErrNotWindowed = errors.New("repro: aggregator is not windowed (set Options.Epoch)")

// Advance rotates a windowed aggregator forward to now, sealing one epoch
// per elapsed period (periods that passed unobserved seal empty). It
// returns how many epochs were sealed. Production collectors call this
// periodically with time.Now(); tests pass a mock clock's now.
func (a *Aggregator) Advance(now time.Time) (int, error) {
	if a.ring == nil {
		return 0, ErrNotWindowed
	}
	return a.ring.Advance(now), nil
}

// Rotate forces exactly one epoch rotation regardless of the clock, for
// callers who drive epochs on their own cadence.
func (a *Aggregator) Rotate() error {
	if a.ring == nil {
		return ErrNotWindowed
	}
	a.ring.Rotate()
	return nil
}

// CurrentEpoch returns the live epoch's index of a windowed aggregator, or
// -1 for a plain one.
func (a *Aggregator) CurrentEpoch() int {
	if a.ring == nil {
		return -1
	}
	cur, _ := a.ring.Current()
	return cur
}

// EstimateWindow reconstructs the distribution of one sliding window of a
// windowed aggregator. The selector uses the collector's wire syntax:
// "last:K" (the most recent K epochs ending at the live one, clamped to
// retention) or "epochs:i..j" (absolute inclusive bounds; aged-out or
// future epochs are an error).
func (a *Aggregator) EstimateWindow(selector string) (*Result, error) {
	if a.ring == nil {
		return nil, ErrNotWindowed
	}
	sel, err := window.ParseSelector(selector)
	if err != nil {
		return nil, err
	}
	g, err := a.ring.Resolve(sel)
	if err != nil {
		return nil, err
	}
	counts, n, err := a.ring.Merge(g, nil)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, ErrNoValues
	}
	res := a.inner.EstimateFrom(counts, nil)
	return &Result{Distribution: res.Estimate, Method: a.method(), Epsilon: a.opts.Epsilon}, nil
}

// Statistic maps a reconstructed distribution (over d buckets of [0,1]) to
// a scalar, for use with ConfidenceInterval. Package histogram-style
// statistics can be expressed inline:
//
//	mean := func(dist []float64) float64 { ... }
//
// or use the ready-made MeanStatistic / QuantileStatistic helpers.
type Statistic = func(dist []float64) float64

// MeanStatistic reads the distribution mean.
func MeanStatistic() Statistic { return histogram.Mean }

// QuantileStatistic reads the β-quantile.
func QuantileStatistic(beta float64) Statistic {
	return func(dist []float64) float64 { return histogram.Quantile(dist, beta) }
}

// RangeStatistic reads the probability mass on [lo, hi].
func RangeStatistic(lo, hi float64) Statistic {
	return func(dist []float64) float64 { return histogram.RangeProb(dist, lo, hi) }
}

// ConfidenceInterval is a bootstrap percentile interval for a statistic of
// the reconstructed distribution.
type ConfidenceInterval struct {
	Point, Lo, Hi float64
	Level         float64
}

// ConfidenceInterval bootstraps the aggregator's report histogram (resample
// → reconstruct → re-read the statistic, replicas times) and returns the
// percentile interval at the given level (e.g. 0.9). Replicas ≤ 0 selects
// 100. This is expensive — one EMS reconstruction per replica.
func (a *Aggregator) ConfidenceInterval(stat Statistic, level float64, replicas int) (ConfidenceInterval, error) {
	counts, n := a.snapshotCounts()
	if n == 0 {
		return ConfidenceInterval{}, ErrNoValues
	}
	if level <= 0 || level >= 1 {
		return ConfidenceInterval{}, fmt.Errorf("repro: confidence level %v outside (0,1)", level)
	}
	if a.inner.Channel() == nil {
		return ConfidenceInterval{}, fmt.Errorf("repro: ConfidenceInterval needs a transition channel; mechanism %q is matrix-free",
			a.opts.Mechanism)
	}
	ci := boot.Estimate(a.inner.Channel(), counts, stat,
		boot.Options{Replicas: replicas, Level: level}, randx.New(a.opts.Seed^0xb007))
	return ConfidenceInterval{Point: ci.Point, Lo: ci.Lo, Hi: ci.Hi, Level: ci.Level}, nil
}
