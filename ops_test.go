package repro

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ldphttp"
)

// newOpsServer boots a real collector for the accessor tests.
func newOpsServer(t *testing.T, ops ldphttp.OpsConfig) (*ldphttp.Server, *httptest.Server) {
	t.Helper()
	s := ldphttp.NewServer(ldphttp.Config{Epsilon: 1, Buckets: 32,
		RefreshInterval: time.Hour, Ops: ops})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestFetchServerStats(t *testing.T) {
	_, ts := newOpsServer(t, ldphttp.OpsConfig{})
	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/v1/streams/default/report", "application/json",
			strings.NewReader(`{"report": 0.5}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report %d: %d", i, resp.StatusCode)
		}
	}

	st, err := FetchServerStats(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Up || !st.Ready || !st.Healthy {
		t.Errorf("probe gauges wrong: up=%v ready=%v healthy=%v", st.Up, st.Ready, st.Healthy)
	}
	if st.Streams != 1 {
		t.Errorf("Streams = %d, want 1", st.Streams)
	}
	if st.Reports["default"] != 4 {
		t.Errorf(`Reports["default"] = %d, want 4`, st.Reports["default"])
	}
	if st.Requests < 4 {
		t.Errorf("Requests = %d, want >= 4", st.Requests)
	}
	if st.Shed != 0 {
		t.Errorf("Shed = %d, want 0", st.Shed)
	}
	// Raw carries every sample under its exposition-style key.
	if v, ok := st.Raw[`ldp_reports_total{mechanism="sw",stream="default"}`]; !ok || v != 4 {
		t.Errorf("Raw reports sample = %v (present %v), want 4", v, ok)
	}
	if _, ok := st.Raw["ldp_up"]; !ok {
		t.Error("Raw misses the unlabeled ldp_up sample")
	}

	// A server with telemetry disabled answers 404 → accessor error.
	_, off := newOpsServer(t, ldphttp.OpsConfig{DisableTelemetry: true})
	if _, err := FetchServerStats(off.URL, nil); err == nil {
		t.Error("FetchServerStats against disabled telemetry did not error")
	}
	if _, err := FetchServerStats("not a url", nil); err == nil {
		t.Error("bad URL accepted")
	}
}

func TestCheckServerHealth(t *testing.T) {
	s, ts := newOpsServer(t, ldphttp.OpsConfig{AwaitRestore: true})
	h, err := CheckServerHealth(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Healthy || h.Ready {
		t.Fatalf("pre-restore health %+v, want healthy and unready", h)
	}
	if !strings.Contains(h.Detail, "not_ready") {
		t.Errorf("Detail %q does not carry the probe code", h.Detail)
	}

	s.MarkReady()
	h, err = CheckServerHealth(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Healthy || !h.Ready || h.Detail != "" {
		t.Fatalf("post-ready health %+v, want healthy+ready with no detail", h)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("UptimeSeconds = %v", h.UptimeSeconds)
	}

	// A closed server fails liveness but the accessor still answers typed.
	s.Close()
	h, err = CheckServerHealth(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.Healthy {
		t.Fatal("closed server reported healthy")
	}
	if !strings.Contains(h.Detail, "engine_stopped") {
		t.Errorf("Detail %q does not carry engine_stopped", h.Detail)
	}

	if _, err := CheckServerHealth("ftp://x", nil); err == nil {
		t.Error("non-http scheme accepted")
	}
}

func TestAwaitServerReady(t *testing.T) {
	s, ts := newOpsServer(t, ldphttp.OpsConfig{AwaitRestore: true})
	if err := AwaitServerReady(ts.URL, nil, 100*time.Millisecond); err == nil {
		t.Fatal("AwaitServerReady returned before the restore")
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		s.MarkReady()
	}()
	if err := AwaitServerReady(ts.URL, nil, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}
