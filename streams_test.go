package repro_test

import (
	"math"
	"path/filepath"
	"testing"

	"repro"
)

// ingestStream runs n client reports of a fixed value-generator through a
// stream's aggregator.
func ingestStream(t *testing.T, agg *repro.Aggregator, opts repro.Options, n int, gen func(i int) float64) {
	t.Helper()
	client, err := repro.NewClient(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		agg.Ingest(client.Report(gen(i)))
	}
}

func TestStreamsDeclareAndQuery(t *testing.T) {
	s := repro.NewStreams()
	ageOpts := repro.Options{Epsilon: 1, Buckets: 64, Seed: 3}
	incomeOpts := repro.Options{Epsilon: 2, Buckets: 32, Seed: 4}

	age, err := s.Declare("age", ageOpts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Declare("income", incomeOpts); err != nil {
		t.Fatal(err)
	}

	// Redeclaring identically hands back the same aggregator; a mismatch
	// and an invalid name are errors.
	again, err := s.Declare("age", ageOpts)
	if err != nil || again != age {
		t.Fatalf("idempotent redeclare: agg=%p (want %p), err=%v", again, age, err)
	}
	if _, err := s.Declare("age", repro.Options{Epsilon: 9, Buckets: 64}); err == nil {
		t.Error("conflicting redeclare succeeded")
	}
	if _, err := s.Declare("ctrl\x00char", ageOpts); err == nil {
		t.Error("invalid stream name accepted")
	}
	if got := s.Names(); len(got) != 2 || got[0] != "age" || got[1] != "income" {
		t.Errorf("Names() = %v", got)
	}

	// Two distinct populations: ages around 0.7, incomes around 0.2.
	ingestStream(t, age, ageOpts, 4000, func(i int) float64 { return 0.7 + 0.1*math.Sin(float64(i)) })
	income, _ := s.Get("income")
	ingestStream(t, income, incomeOpts, 4000, func(i int) float64 { return 0.2 + 0.05*math.Cos(float64(i)) })

	med, err := s.Query("age", repro.QueryRequest{Type: repro.QueryQuantile, Qs: []float64{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med.Values[0]-0.7) > 0.1 {
		t.Errorf("age median = %v, want ≈ 0.7", med.Values[0])
	}
	rng, err := s.Query("income", repro.QueryRequest{Type: repro.QueryRange, Lo: 0, Hi: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if rng.Value < 0.8 {
		t.Errorf("income mass on [0, 0.4] = %v, want most of it", rng.Value)
	}
	top, err := s.Query("age", repro.QueryRequest{Type: repro.QueryTopK, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Bins) != 3 {
		t.Fatalf("topk bins = %d", len(top.Bins))
	}
	if c := (top.Bins[0].Lo + top.Bins[0].Hi) / 2; math.Abs(c-0.7) > 0.15 {
		t.Errorf("age top bin centered at %v, want near 0.7", c)
	}
	if top.Bins[0].PValue <= 0 || top.Bins[0].PValue > 0.01 {
		t.Errorf("dominant bin significance = %v, want tiny positive", top.Bins[0].PValue)
	}

	// Unknown streams and queries on empty streams error cleanly.
	if _, err := s.Query("nope", repro.QueryRequest{Type: repro.QueryMean}); err == nil {
		t.Error("query on unknown stream succeeded")
	}
	if _, err := s.Estimate("nope"); err == nil {
		t.Error("estimate on unknown stream succeeded")
	}
	if _, err := s.Declare("empty", ageOpts); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("empty", repro.QueryRequest{Type: repro.QueryMean}); err == nil {
		t.Error("query on empty stream succeeded")
	}
}

func TestStreamsSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "streams.snap")
	opts := repro.Options{Epsilon: 1, Buckets: 32, Seed: 9}

	s1 := repro.NewStreams()
	agg, err := s1.Declare("age", opts)
	if err != nil {
		t.Fatal(err)
	}
	ingestStream(t, agg, opts, 3000, func(i int) float64 { return 0.6 })
	res1, err := s1.Estimate("age")
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Save(path); err != nil {
		t.Fatal(err)
	}

	// A fresh registry restores the stream — options, histogram and all —
	// and reconstructs the identical estimate (EM is deterministic on
	// identical counts).
	s2 := repro.NewStreams()
	if err := s2.Load(path); err != nil {
		t.Fatal(err)
	}
	restored, ok := s2.Get("age")
	if !ok {
		t.Fatal("restored registry is missing the stream")
	}
	if restored.N() != 3000 {
		t.Errorf("restored N = %d, want 3000", restored.N())
	}
	res2, err := s2.Estimate("age")
	if err != nil {
		t.Fatal(err)
	}
	for i := range res1.Distribution {
		if res1.Distribution[i] != res2.Distribution[i] {
			t.Fatalf("bucket %d: %v != %v (estimates not bit-identical)",
				i, res1.Distribution[i], res2.Distribution[i])
		}
	}

	// Loading into a registry whose declared options conflict fails and
	// merges nothing.
	s3 := repro.NewStreams()
	if _, err := s3.Declare("age", repro.Options{Epsilon: 5, Buckets: 32}); err != nil {
		t.Fatal(err)
	}
	if err := s3.Load(path); err == nil {
		t.Error("option-mismatched load succeeded")
	}
	if agg3, _ := s3.Get("age"); agg3.N() != 0 {
		t.Error("rejected load still merged counts")
	}
}

func TestResultQueryHelpers(t *testing.T) {
	values := make([]float64, 3000)
	for i := range values {
		values[i] = 0.3
	}
	res, err := repro.EstimateDistribution(values, repro.Options{Epsilon: 2, Buckets: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := res.Quantiles(0.1, 0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if math.Abs(q-0.3) > 0.1 {
			t.Errorf("quantile = %v, want ≈ 0.3 for a point mass", q)
		}
	}
	top, err := res.TopK(1)
	if err != nil {
		t.Fatal(err)
	}
	if c := (top[0].Lo + top[0].Hi) / 2; math.Abs(c-0.3) > 0.1 {
		t.Errorf("top bin centered at %v, want ≈ 0.3", c)
	}
	if _, err := res.Query(repro.QueryRequest{Type: "bogus"}); err == nil {
		t.Error("bogus query type succeeded")
	}
	cdf, err := res.Query(repro.QueryRequest{Type: repro.QueryCDF, Qs: []float64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cdf.Values[0]) > 1e-9 || math.Abs(cdf.Values[1]-1) > 1e-9 {
		t.Errorf("cdf endpoints = %v", cdf.Values)
	}
}
