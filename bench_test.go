package repro_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (Section 6). Each benchmark executes the same harness
// code path cmd/experiments uses to regenerate the artifact, at a reduced
// scale so `go test -bench=.` completes in minutes; raise the scale with
// cmd/experiments for the EXPERIMENTS.md numbers.

import (
	"testing"

	"repro/internal/experiment"
)

// benchCfg is the reduced-scale configuration the benchmarks share.
func benchCfg() experiment.Config {
	return experiment.Config{
		N:            5000,
		Reps:         1,
		Seed:         1,
		Buckets:      64,
		Datasets:     []string{"beta", "income"},
		Epsilons:     []float64{0.5, 2.5},
		RangeQueries: 100,
	}
}

func sinkRows(b *testing.B, rows []experiment.Row) {
	if len(rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
}

// BenchmarkTable2Matrix regenerates the method × metric applicability
// matrix (Table 2).
func BenchmarkTable2Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiment.Table2().Len() == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1Datasets regenerates the dataset-shape summaries (Figure 1).
func BenchmarkFig1Datasets(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		sinkRows(b, experiment.Fig1(cfg))
	}
}

// BenchmarkFig2Wasserstein regenerates the distribution-distance comparison
// (Figure 2: Wasserstein and KS vs ε for the standard method set).
func BenchmarkFig2Wasserstein(b *testing.B) {
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRows(b, experiment.Fig2(cfg))
	}
}

// BenchmarkFig3RangeQuery regenerates the range-query comparison (Figure 3:
// MAE at α = 0.1 and 0.4, including HH and HaarHRR).
func BenchmarkFig3RangeQuery(b *testing.B) {
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRows(b, experiment.Fig3(cfg))
	}
}

// BenchmarkFig4Mean regenerates the first row of Figure 4 (mean MAE,
// including SR and PM). The harness computes all three Figure 4 metrics in
// one pass; the three benchmarks below are split to mirror the figure's
// rows while sharing the code path.
func BenchmarkFig4Mean(b *testing.B) {
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig4(cfg)
		kept := rows[:0]
		for _, r := range rows {
			if r.Metric == "mean" {
				kept = append(kept, r)
			}
		}
		sinkRows(b, kept)
	}
}

// BenchmarkFig4Variance regenerates the second row of Figure 4 (variance
// MAE with the two-phase SR/PM protocol).
func BenchmarkFig4Variance(b *testing.B) {
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig4(cfg)
		kept := rows[:0]
		for _, r := range rows {
			if r.Metric == "variance" {
				kept = append(kept, r)
			}
		}
		sinkRows(b, kept)
	}
}

// BenchmarkFig4Quantile regenerates the third row of Figure 4 (decile
// quantile MAE).
func BenchmarkFig4Quantile(b *testing.B) {
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig4(cfg)
		kept := rows[:0]
		for _, r := range rows {
			if r.Metric == "quantile" {
				kept = append(kept, r)
			}
		}
		sinkRows(b, kept)
	}
}

// BenchmarkFig5WaveShapes regenerates the wave-shape ablation (Figure 5:
// trapezoid ratios and triangle vs square wave, W1 across the b grid).
func BenchmarkFig5WaveShapes(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"beta"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRows(b, experiment.Fig5(cfg))
	}
}

// BenchmarkFig6BandwidthSweep regenerates the bandwidth sweep (Figure 6:
// W1 vs b at ε ∈ {1,2,3,4}, with the closed-form b_SW marker).
func BenchmarkFig6BandwidthSweep(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"beta"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRows(b, experiment.Fig6(cfg))
	}
}

// BenchmarkFig7Granularity regenerates the bucketization-granularity sweep
// (Figure 7: W1 at d ∈ {256, 512, 1024, 2048}).
func BenchmarkFig7Granularity(b *testing.B) {
	cfg := benchCfg()
	cfg.Buckets = 0 // figure 7 sweeps granularity itself
	cfg.Datasets = []string{"beta"}
	cfg.Epsilons = []float64{1.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRows(b, experiment.Fig7(cfg))
	}
}
