package repro_test

// The PR's acceptance criterion through the public API alone: a Reporter
// ships a stamped batch to an edge collector, the edge federates into a
// root, and the trace ID the Reporter exposes is recoverable from the
// root's debug listener with repro.FetchTraces — the reports themselves
// dissolved into histogram deltas long before.

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/ldphttp"
)

// traceCollector boots a quiet collector plus its debug listener.
func traceCollector(t *testing.T, fed ldphttp.FederationConfig) (*ldphttp.Server, *httptest.Server, *httptest.Server) {
	t.Helper()
	s := ldphttp.NewServer(ldphttp.Config{Epsilon: 1, Buckets: 64,
		RefreshInterval: time.Hour, Federation: fed})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	dts := httptest.NewServer(s.DebugHandler())
	t.Cleanup(dts.Close)
	return s, ts, dts
}

func stagesOf(spans []repro.TraceSpan) map[string]int {
	out := make(map[string]int)
	for _, sp := range spans {
		out[sp.Stage]++
	}
	return out
}

func TestReporterTraceRecoverableAtRoot(t *testing.T) {
	_, rootTS, rootDbg := traceCollector(t, ldphttp.FederationConfig{Accept: true})
	edge, edgeTS, edgeDbg := traceCollector(t, ldphttp.FederationConfig{})

	rep, err := repro.NewReporter(repro.ReporterOptions{
		URL:      edgeTS.URL,
		Options:  repro.Options{Epsilon: 1, Buckets: 64, Seed: 7},
		MaxBatch: 8,
		MaxDelay: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	for i := 0; i < 8; i++ {
		if err := rep.Report(float64(i) / 8); err != nil {
			t.Fatal(err)
		}
	}
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	id := rep.LastTraceID()
	if len(id) != 32 {
		t.Fatalf("LastTraceID %q, want a 32-hex trace ID", id)
	}

	// The edge holds the full ingest pipeline under the Reporter's trace.
	edgeTraces, err := repro.FetchTraces(edgeDbg.URL, repro.TraceQuery{TraceID: id}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stages := stagesOf(edgeTraces.Spans)
	for _, stage := range []string{"http /v1/streams/{name}/batch", "decode", "bucketize", "ingest"} {
		if stages[stage] != 1 {
			t.Errorf("edge trace %s: stage %q count %d, want 1 (stages %v)", id, stage, stages[stage], stages)
		}
	}

	// Federate, then recover the same ID at the root as an absorb-link
	// marker, with the absorb stage span on the push route beside it.
	if err := edge.EnablePush(ldphttp.PushOptions{URL: rootTS.URL, Edge: "api-edge", Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if acked, err := edge.PushNow(); err != nil || !acked {
		t.Fatalf("push: acked=%v err=%v", acked, err)
	}
	rootTraces, err := repro.FetchTraces(rootDbg.URL, repro.TraceQuery{TraceID: id}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rootTraces.Spans) == 0 {
		t.Fatalf("Reporter trace %s not recoverable at the root", id)
	}
	for _, sp := range rootTraces.Spans {
		if sp.Stage != "federation/absorb-link" {
			t.Errorf("root span under the Reporter trace has stage %q", sp.Stage)
		}
	}
	pushRoute, err := repro.FetchTraces(rootDbg.URL, repro.TraceQuery{Route: "/federation/push"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stagesOf(pushRoute.Spans)["absorb"] == 0 {
		t.Error("root recorded no absorb span for the push")
	}

	// DisableTracing keeps the wire clean and LastTraceID empty.
	quiet, err := repro.NewReporter(repro.ReporterOptions{
		URL:            edgeTS.URL,
		Options:        repro.Options{Epsilon: 1, Buckets: 64, Seed: 9},
		MaxBatch:       4,
		MaxDelay:       time.Hour,
		DisableTracing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer quiet.Close()
	for i := 0; i < 4; i++ {
		if err := quiet.Report(0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := quiet.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := quiet.LastTraceID(); got != "" {
		t.Errorf("LastTraceID with DisableTracing = %q, want empty", got)
	}
}
