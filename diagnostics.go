package repro

// Typed access to a collector's estimate-quality diagnostics (GET
// /v1/streams/{name}/diagnostics and GET /v1/diagnostics): EM convergence
// trajectory, analytic confidence intervals, warm-start effectiveness, and
// the drift-alert state of windowed streams. The types mirror the server's
// JSON exactly, so tooling embedding this library gets the same answer an
// operator sees with curl.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
)

// DiagConvergence is the EM trajectory block of a stream's diagnostics.
type DiagConvergence struct {
	// Iterations, LogLikelihood and LastDelta describe the most recent
	// published reconstruction; LogLikelihood is count-weighted and only
	// meaningful when the record's EMBased flag is set.
	Iterations    int     `json:"iterations"`
	LogLikelihood float64 `json:"log_likelihood"`
	LastDelta     float64 `json:"last_delta"`
	// Converged reports that the EM stopping rule fired; HitMaxIters that
	// the run exhausted its iteration budget instead.
	Converged   bool `json:"converged"`
	HitMaxIters bool `json:"hit_max_iters"`
}

// DiagWarmStart is the warm-start effectiveness block.
type DiagWarmStart struct {
	ColdIterations     int     `json:"cold_iterations"`
	WarmRefreshes      uint64  `json:"warm_refreshes"`
	MeanWarmIterations float64 `json:"mean_warm_iterations"`
	LastWarm           bool    `json:"last_warm"`
	// Speedup is ColdIterations / MeanWarmIterations — how many times fewer
	// iterations a warm-started reconstruction needs.
	Speedup float64 `json:"speedup"`
}

// DiagConfidence is the analytic-uncertainty block: the per-frequency
// estimator variance at the current user count and the matching two-sided
// confidence half-width.
type DiagConfidence struct {
	Level     float64 `json:"level"`
	Variance  float64 `json:"variance"`
	HalfWidth float64 `json:"half_width"`
	// Approximate marks the sw family, whose EM estimator has no closed
	// variance form — the value is the better categorical oracle's proxy.
	Approximate bool `json:"approximate"`
}

// DiagDrift is the epoch-over-epoch drift block (windowed streams only).
type DiagDrift struct {
	// W1 and KS score the two most recent consecutive sealed epochs
	// (normalized Wasserstein-1 and Kolmogorov–Smirnov distance).
	W1           float64 `json:"w1"`
	KS           float64 `json:"ks"`
	EpochsScored int     `json:"epochs_scored"`
	LastEpoch    int     `json:"last_epoch"`
	// Alerting is the hysteresis state machine's current state;
	// AlertsTotal counts raises; StateSinceEpoch the epoch of the last
	// state change.
	Alerting        bool   `json:"alerting"`
	AlertsTotal     uint64 `json:"alerts_total"`
	StateSinceEpoch int    `json:"state_since_epoch"`
}

// StreamDiagnostics is one stream's quality record as served by GET
// /v1/streams/{name}/diagnostics (and one row of GET /v1/diagnostics).
type StreamDiagnostics struct {
	Stream         string  `json:"stream"`
	Mechanism      string  `json:"mechanism"`
	Epsilon        float64 `json:"epsilon"`
	Buckets        int     `json:"buckets"`
	Users          int     `json:"users"`
	PendingReports int     `json:"pending_reports"`
	// LastRefreshAgeSeconds is -1 until the first refresh publishes.
	LastRefreshAgeSeconds float64 `json:"last_refresh_age_seconds"`
	// Refreshes counts published reconstructions; every quality block is
	// zero-valued until the first one.
	Refreshes   uint64          `json:"refreshes"`
	EMBased     bool            `json:"em_based"`
	Convergence DiagConvergence `json:"convergence"`
	WarmStart   DiagWarmStart   `json:"warm_start"`
	Confidence  DiagConfidence  `json:"confidence"`
	Drift       *DiagDrift      `json:"drift,omitempty"`
	// Window carries the epoch-rotation state of a windowed stream.
	Window *StreamWindowInfo `json:"window,omitempty"`
}

// StreamWindowInfo is the epoch-rotation state echoed by the diagnostics
// endpoints for windowed streams.
type StreamWindowInfo struct {
	CurrentEpoch int `json:"current_epoch"`
	OldestEpoch  int `json:"oldest_epoch"`
	SealedEpochs int `json:"sealed_epochs"`
	LiveN        int `json:"live_n"`
}

// FetchDiagnostics queries GET {baseURL}/v1/streams/{stream}/diagnostics
// ("" addresses the default stream). nil hc uses http.DefaultClient.
func FetchDiagnostics(baseURL, stream string, hc *http.Client) (*StreamDiagnostics, error) {
	if stream == "" {
		stream = "default"
	}
	body, err := opsGet(baseURL, "/v1/streams/"+url.PathEscape(stream)+"/diagnostics", hc)
	if err != nil {
		return nil, fmt.Errorf("repro: fetch diagnostics: %w", err)
	}
	var out StreamDiagnostics
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("repro: fetch diagnostics: undecodable response: %w", err)
	}
	return &out, nil
}

// DiagnosticsQuery filters FetchFleetDiagnostics. The zero value returns
// every stream.
type DiagnosticsQuery struct {
	// Stream keeps one stream by exact name; Mechanism every stream of one
	// mechanism.
	Stream    string
	Mechanism string
	// Alerting, when non-nil, keeps only streams whose drift alert state
	// matches.
	Alerting *bool
}

// FetchFleetDiagnostics queries GET {baseURL}/v1/diagnostics and returns
// every matching stream's record in declaration order.
func FetchFleetDiagnostics(baseURL string, q DiagnosticsQuery, hc *http.Client) ([]StreamDiagnostics, error) {
	params := url.Values{}
	if q.Stream != "" {
		params.Set("stream", q.Stream)
	}
	if q.Mechanism != "" {
		params.Set("mechanism", q.Mechanism)
	}
	if q.Alerting != nil {
		params.Set("alerting", fmt.Sprintf("%t", *q.Alerting))
	}
	path := "/v1/diagnostics"
	if len(params) > 0 {
		path += "?" + params.Encode()
	}
	body, err := opsGet(baseURL, path, hc)
	if err != nil {
		return nil, fmt.Errorf("repro: fetch fleet diagnostics: %w", err)
	}
	var out struct {
		Streams []StreamDiagnostics `json:"streams"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("repro: fetch fleet diagnostics: undecodable response: %w", err)
	}
	return out.Streams, nil
}
