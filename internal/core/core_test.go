package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/randx"
)

func TestConfigDefaults(t *testing.T) {
	cfg := NewConfig(1)
	cfg.fillDefaults()
	if cfg.Buckets != 1024 || cfg.OutputBuckets != 1024 {
		t.Errorf("defaults: d=%d, dt=%d", cfg.Buckets, cfg.OutputBuckets)
	}
	if !cfg.Smoothing {
		t.Error("NewConfig should enable smoothing")
	}
	if math.Abs(cfg.Bandwidth-0.256) > 0.002 {
		t.Errorf("default bandwidth = %v, want BOpt(1) ≈ 0.256", cfg.Bandwidth)
	}
	if cfg.PlateauRatio != 1 {
		t.Errorf("default plateau ratio = %v, want 1 (square)", cfg.PlateauRatio)
	}
}

func TestConfigPanicsOnBadEpsilon(t *testing.T) {
	for _, eps := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%v should panic", eps)
				}
			}()
			NewClient(Config{Epsilon: eps})
		}()
	}
}

func TestClientReportInRange(t *testing.T) {
	client := NewClient(NewConfig(1))
	rng := randx.New(1)
	b := client.Bandwidth()
	for i := 0; i < 10000; i++ {
		r := client.Report(rng.Float64(), rng)
		if r < -b-1e-9 || r > 1+b+1e-9 {
			t.Fatalf("report %v outside [−b, 1+b]", r)
		}
	}
	// Out-of-domain values are clamped, not rejected.
	if r := client.Report(5, rng); r < -b || r > 1+b {
		t.Errorf("clamped report %v out of range", r)
	}
}

func TestClientAggregatorRoundTrip(t *testing.T) {
	cfg := NewConfig(1)
	cfg.Buckets = 128
	client := NewClient(cfg)
	agg := NewAggregator(cfg)
	rng := randx.New(2)

	ds := dataset.Beta52(30000, 3)
	for _, v := range ds.Values {
		agg.Ingest(client.Report(v, rng))
	}
	if agg.N() != 30000 {
		t.Errorf("N = %d", agg.N())
	}
	if got := mathx.Sum(agg.Counts()); got != 30000 {
		t.Errorf("counts sum = %v", got)
	}
	res := agg.Estimate()
	if !mathx.IsDistribution(res.Estimate, 1e-9) {
		t.Error("estimate is not a distribution")
	}
	truth := ds.TrueDistributionAt(128)
	if got := metrics.Wasserstein(truth, res.Estimate); got > 0.02 {
		t.Errorf("round-trip W1 = %v", got)
	}
}

func TestRunMatchesClientAggregator(t *testing.T) {
	cfg := NewConfig(1)
	cfg.Buckets = 64
	ds := dataset.Beta52(5000, 4)

	got := Run(cfg, ds.Values, randx.New(7))

	client := NewClient(cfg)
	agg := NewAggregator(cfg)
	rng := randx.New(7)
	for _, v := range ds.Values {
		agg.Ingest(client.Report(v, rng))
	}
	want := agg.Estimate().Estimate
	if mathx.L1(got, want) > 1e-12 {
		t.Error("Run and manual client/aggregator disagree under the same seed")
	}
}

func TestEstimatorRegistryNamesAndValidity(t *testing.T) {
	valid := map[string]bool{
		"SW-EMS": true, "SW-EM": true, "SW-BR-EMS": true, "HH-ADMM": true,
		"CFO-bin-16": true, "CFO-bin-32": true, "CFO-bin-64": true,
		"HH": false, "HaarHRR": false,
	}
	all := append(RangeQueryEstimators(), SWDiscreteEMS())
	seen := map[string]bool{}
	for _, e := range all {
		want, ok := valid[e.Name()]
		if !ok {
			t.Errorf("unexpected estimator %q", e.Name())
			continue
		}
		if e.ValidDistribution() != want {
			t.Errorf("%s: ValidDistribution = %v, want %v", e.Name(), e.ValidDistribution(), want)
		}
		seen[e.Name()] = true
	}
	if len(seen) != len(valid) {
		t.Errorf("registry covers %d methods, want %d", len(seen), len(valid))
	}
}

func TestAllEstimatorsProduceSaneOutput(t *testing.T) {
	ds := dataset.Beta52(20000, 5)
	const d = 64
	truth := ds.TrueDistributionAt(d)
	uniform := make([]float64, d)
	for i := range uniform {
		uniform[i] = 1.0 / d
	}
	baseline := metrics.Wasserstein(truth, uniform)

	for _, e := range append(RangeQueryEstimators(), SWDiscreteEMS()) {
		rng := randx.New(6)
		est := e.Estimate(ds.Values, d, 1.5, rng)
		if len(est) != d {
			t.Errorf("%s: estimate length %d, want %d", e.Name(), len(est), d)
			continue
		}
		if e.ValidDistribution() && !mathx.IsDistribution(est, 1e-6) {
			t.Errorf("%s: claims valid distribution but is not", e.Name())
		}
		// Every method must beat the uniform baseline on W1 at ε=1.5
		// with 20k users (sanity, not a utility claim).
		if got := metrics.Wasserstein(truth, est); got > baseline {
			t.Errorf("%s: W1 %v worse than uniform baseline %v", e.Name(), got, baseline)
		}
	}
}

func TestSWEMSBeatsBinningOnSmoothData(t *testing.T) {
	// The paper's central claim, in miniature, averaged over seeds.
	const d = 256
	const eps = 1.0
	var swW1, binW1 float64
	const runs = 3
	for run := 0; run < runs; run++ {
		ds := dataset.Beta52(30000, uint64(10+run))
		truth := ds.TrueDistributionAt(d)
		rng := randx.New(uint64(20 + run))
		swW1 += metrics.Wasserstein(truth, SWEMS().Estimate(ds.Values, d, eps, rng))
		binW1 += metrics.Wasserstein(truth, Binning(16).Estimate(ds.Values, d, eps, rng))
	}
	if swW1 >= binW1 {
		t.Errorf("SW-EMS avg W1 %v should beat CFO-bin-16 %v", swW1/runs, binW1/runs)
	}
}

func TestGeneralWaveEstimator(t *testing.T) {
	ds := dataset.Beta52(10000, 8)
	rng := randx.New(9)
	est := GeneralWaveEMS(0.5, 0.25).Estimate(ds.Values, 64, 1, rng)
	if !mathx.IsDistribution(est, 1e-9) {
		t.Error("GW estimate not a distribution")
	}
	tri := GeneralWaveEMS(0, 0.25)
	if tri.Name() != "Triangle-EMS" {
		t.Errorf("triangle name = %q", tri.Name())
	}
}

func TestSWEMSWithBandwidth(t *testing.T) {
	e := SWEMSWithBandwidth(0.1)
	ds := dataset.Beta52(10000, 10)
	rng := randx.New(11)
	est := e.Estimate(ds.Values, 64, 1, rng)
	if !mathx.IsDistribution(est, 1e-9) {
		t.Error("estimate not a distribution")
	}
}

func BenchmarkRunSWEMS(b *testing.B) {
	cfg := NewConfig(1)
	cfg.Buckets = 256
	ds := dataset.Beta52(20000, 1)
	rng := randx.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(cfg, ds.Values, rng)
	}
}

func TestAggregatorDecay(t *testing.T) {
	cfg := NewConfig(1)
	cfg.Buckets = 32
	agg := NewAggregator(cfg)
	client := NewClient(cfg)
	rng := randx.New(20)
	for i := 0; i < 1000; i++ {
		agg.Ingest(client.Report(0.5, rng))
	}
	before := mathx.Sum(agg.Counts())
	agg.Decay(0.5)
	after := mathx.Sum(agg.Counts())
	if !mathx.AlmostEqual(after, before/2, 1e-9) {
		t.Errorf("decayed mass = %v, want %v", after, before/2)
	}
	if agg.N() != 500 {
		t.Errorf("decayed N = %d, want 500", agg.N())
	}
	agg.Decay(1) // no-op
	if got := mathx.Sum(agg.Counts()); !mathx.AlmostEqual(got, after, 1e-12) {
		t.Error("Decay(1) changed the histogram")
	}
	defer func() {
		if recover() == nil {
			t.Error("Decay(0) should panic")
		}
	}()
	agg.Decay(0)
}

func TestDecaySlidingWindowTracksShift(t *testing.T) {
	// A distribution shift with decay applied between epochs: the old
	// regime's reports fade and the estimate tracks the new regime.
	cfg := NewConfig(2)
	cfg.Buckets = 64
	agg := NewAggregator(cfg)
	client := NewClient(cfg)
	rng := randx.New(21)

	// Epoch 1: mass near 0.2.
	for i := 0; i < 30000; i++ {
		agg.Ingest(client.Report(mathx.Clamp(rng.Normal(0.2, 0.05), 0, 1), rng))
	}
	// Several decayed epochs of the new regime near 0.8.
	for epoch := 0; epoch < 6; epoch++ {
		agg.Decay(0.3)
		for i := 0; i < 30000; i++ {
			agg.Ingest(client.Report(mathx.Clamp(rng.Normal(0.8, 0.05), 0, 1), rng))
		}
	}
	est := agg.Estimate().Estimate
	// The estimate's mean should sit near the new regime.
	var mean float64
	for i, p := range est {
		mean += p * (float64(i) + 0.5) / 64
	}
	if mean < 0.7 {
		t.Errorf("post-shift mean = %v, want > 0.7", mean)
	}
}
