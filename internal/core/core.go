// Package core wires the substrates into end-to-end distribution-estimation
// pipelines: a client/aggregator pair implementing the paper's primary
// contribution (Square Wave reporting + EMS reconstruction) for streaming
// use, plus an Estimator registry covering every method the evaluation
// section compares (SW+EMS, SW+EM, discrete SW, general-wave ablations,
// HH-ADMM, HH, HaarHRR, CFO-with-binning).
package core

import (
	"fmt"
	"math"

	"repro/internal/admm"
	"repro/internal/binning"
	"repro/internal/em"
	"repro/internal/hierarchy"
	"repro/internal/mathx"
	"repro/internal/matrixx"
	"repro/internal/randx"
	"repro/internal/sw"
)

// Config parameterizes a Square Wave collection round.
type Config struct {
	// Epsilon is the LDP privacy budget. Required.
	Epsilon float64
	// Buckets is the reconstruction granularity d. Defaults to 1024.
	Buckets int
	// OutputBuckets is the report-histogram granularity d̃. Defaults to
	// Buckets (the paper sets d̃ = d).
	OutputBuckets int
	// Bandwidth overrides the wave half-width b; 0 means the
	// mutual-information optimum sw.BOpt(Epsilon).
	Bandwidth float64
	// PlateauRatio is the general-wave plateau ratio ρ; SW is ρ = 1
	// (the default when 0 is interpreted only through ExplicitShape).
	// Leave ExplicitShape false for the Square Wave.
	PlateauRatio float64
	// ExplicitShape makes PlateauRatio meaningful (so a triangle wave,
	// ρ = 0, can be requested).
	ExplicitShape bool
	// Smoothing selects EMS (true, default via NewConfig) or plain EM.
	Smoothing bool
	// EM carries fine-grained reconstruction options; zero values take
	// the paper's defaults for the chosen Smoothing mode.
	EM em.Options
}

// NewConfig returns the paper's recommended configuration: SW with the
// optimal bandwidth and EMS reconstruction.
func NewConfig(eps float64) Config {
	return Config{Epsilon: eps, Smoothing: true}
}

func (c *Config) fillDefaults() {
	if c.Epsilon <= 0 || math.IsNaN(c.Epsilon) || math.IsInf(c.Epsilon, 0) {
		panic(fmt.Sprintf("core: epsilon %v must be positive and finite", c.Epsilon))
	}
	if c.Buckets <= 0 {
		c.Buckets = 1024
	}
	if c.OutputBuckets <= 0 {
		c.OutputBuckets = c.Buckets
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = sw.BOpt(c.Epsilon)
	}
	if !c.ExplicitShape {
		c.PlateauRatio = 1
	}
	if c.EM.Tau == 0 {
		workers := c.EM.Workers
		if c.Smoothing {
			c.EM = em.EMSOptions()
		} else {
			c.EM = em.EMOptions(c.Epsilon)
		}
		c.EM.Workers = workers
	} else {
		c.EM.Smoothing = c.Smoothing
	}
}

func (c Config) wave() sw.Wave {
	return sw.NewWave(c.Epsilon, c.Bandwidth, c.PlateauRatio)
}

// Client is the user-side half of the SW pipeline: it holds no state beyond
// the mechanism parameters and maps one private value to one report.
type Client struct {
	cfg  Config
	wave sw.Wave
}

// NewClient builds a client from cfg.
func NewClient(cfg Config) *Client {
	cfg.fillDefaults()
	return &Client{cfg: cfg, wave: cfg.wave()}
}

// Report randomizes one private value v ∈ [0,1] into a report in
// [−b, 1+b]. Values outside [0,1] are clamped (the usual contract for
// bounded-domain LDP mechanisms: the clamping happens on the user's device
// before randomization, so privacy is unaffected).
func (c *Client) Report(v float64, rng *randx.Rand) float64 {
	return c.wave.Sample(mathx.Clamp(v, 0, 1), rng)
}

// Epsilon returns the client's privacy budget.
func (c *Client) Epsilon() float64 { return c.cfg.Epsilon }

// Bandwidth returns the wave half-width in use.
func (c *Client) Bandwidth() float64 { return c.cfg.Bandwidth }

// Aggregator is the collector-side half: it buckets incoming reports into
// the report histogram and reconstructs the input distribution on demand.
type Aggregator struct {
	cfg    Config
	wave   sw.Wave
	m      matrixx.Channel
	counts []float64
	n      int
}

// NewAggregator builds an aggregator from cfg (must match the clients').
// The transition matrix is precomputed once and, for the square wave (whose
// channel is a constant floor plus a contiguous band), compressed to banded
// form so each EM iteration costs O(d·band) instead of O(d·d̃).
func NewAggregator(cfg Config) *Aggregator {
	cfg.fillDefaults()
	w := cfg.wave()
	var m matrixx.Channel = w.TransitionMatrix(cfg.Buckets, cfg.OutputBuckets)
	if cfg.PlateauRatio >= 1 {
		m = matrixx.CompressBanded(m.(*matrixx.Matrix), 1e-15)
	}
	return &Aggregator{
		cfg:    cfg,
		wave:   w,
		m:      m,
		counts: make([]float64, cfg.OutputBuckets),
	}
}

// Bucket maps one report (a value in [−b, 1+b]) to its report-histogram
// bucket. It reads only immutable mechanism state and is safe for concurrent
// use — it is the ingestion kernel concurrent accumulators (package
// aggregate, the HTTP collector) build on.
func (a *Aggregator) Bucket(report float64) int {
	span := a.wave.OutHi() - a.wave.OutLo()
	j := int((report - a.wave.OutLo()) / span * float64(a.cfg.OutputBuckets))
	return mathx.ClampInt(j, 0, a.cfg.OutputBuckets-1)
}

// Ingest adds one report (a value in [−b, 1+b]) to the aggregate.
func (a *Aggregator) Ingest(report float64) {
	a.counts[a.Bucket(report)]++
	a.n++
}

// N returns the number of reports ingested.
func (a *Aggregator) N() int { return a.n }

// OutputBuckets returns the report-histogram granularity d̃ after defaulting
// — the length external accumulators must use.
func (a *Aggregator) OutputBuckets() int { return a.cfg.OutputBuckets }

// Channel returns the transition channel the aggregator reconstructs with
// (shared, not copied — callers must treat it as read-only).
func (a *Aggregator) Channel() matrixx.Channel { return a.m }

// Counts returns a copy of the report histogram.
func (a *Aggregator) Counts() []float64 {
	return append([]float64(nil), a.counts...)
}

// Decay multiplies the accumulated report histogram by factor ∈ (0, 1],
// implementing an exponentially-weighted sliding window for long-running
// collections: calling Decay(γ) once per epoch makes a report from k epochs
// ago weigh γ^k. The reconstruction is unaffected in expectation because the
// channel is linear and EM normalizes the counts. Decay(1) is a no-op.
func (a *Aggregator) Decay(factor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("core: decay factor %v outside (0, 1]", factor))
	}
	if factor == 1 {
		return
	}
	for j := range a.counts {
		a.counts[j] *= factor
	}
	a.n = int(float64(a.n)*factor + 0.5)
}

// Estimate reconstructs the input distribution from the reports ingested so
// far with EM/EMS per the configuration.
func (a *Aggregator) Estimate() em.Result {
	return em.Reconstruct(a.m, a.counts, a.cfg.EM)
}

// EstimateFrom reconstructs from an externally-accumulated report histogram
// (e.g. an aggregate.Striped snapshot) instead of the aggregator's own
// counts. A non-nil init warm-starts EM from a previous estimate, which
// typically converges in a fraction of the iterations — the backbone of the
// background re-estimation engine. EstimateFrom does not touch mutable
// aggregator state and is safe to call concurrently with Bucket.
func (a *Aggregator) EstimateFrom(counts, init []float64) em.Result {
	opts := a.cfg.EM
	if init != nil {
		opts.Init = init
	}
	return em.Reconstruct(a.m, counts, opts)
}

// Run executes a complete round over a slice of private values and returns
// the reconstructed distribution — the one-shot convenience the estimator
// registry and benchmarks use.
func Run(cfg Config, values []float64, rng *randx.Rand) []float64 {
	client := NewClient(cfg)
	agg := NewAggregator(cfg)
	for _, v := range values {
		agg.Ingest(client.Report(v, rng))
	}
	return agg.Estimate().Estimate
}

// ---------------------------------------------------------------------------
// Estimator registry
// ---------------------------------------------------------------------------

// Estimator is a full distribution-estimation method under LDP, the unit the
// experiment harness compares.
type Estimator interface {
	// Name is the label used in figures ("SW-EMS", "HH-ADMM", ...).
	Name() string
	// ValidDistribution reports whether Estimate returns a point of the
	// probability simplex. HH and HaarHRR return signed estimates that
	// are only meaningful for range queries (Table 2).
	ValidDistribution() bool
	// Estimate runs a full private collection round over values ∈ [0,1]
	// at granularity d and budget eps.
	Estimate(values []float64, d int, eps float64, rng *randx.Rand) []float64
}

// swEstimator covers SW/GW with EM or EMS reconstruction.
type swEstimator struct {
	name      string
	smoothing bool
	rho       float64
	explicit  bool
	bandwidth float64 // 0 → BOpt
}

// SWEMS returns the paper's headline method: Square Wave + EMS.
func SWEMS() Estimator { return swEstimator{name: "SW-EMS", smoothing: true} }

// SWEM returns Square Wave + plain EM.
func SWEM() Estimator { return swEstimator{name: "SW-EM"} }

// SWEMSWithBandwidth returns SW+EMS with an explicit wave half-width
// (Figure 6 sweep).
func SWEMSWithBandwidth(b float64) Estimator {
	return swEstimator{name: fmt.Sprintf("SW-EMS(b=%.3f)", b), smoothing: true, bandwidth: b}
}

// GeneralWaveEMS returns a trapezoid/triangle wave with plateau ratio rho
// plus EMS (Figure 5 ablation).
func GeneralWaveEMS(rho, b float64) Estimator {
	name := fmt.Sprintf("GW(ρ=%.1f)-EMS", rho)
	if rho == 0 {
		name = "Triangle-EMS"
	}
	return swEstimator{name: name, smoothing: true, rho: rho, explicit: true, bandwidth: b}
}

func (s swEstimator) Name() string            { return s.name }
func (s swEstimator) ValidDistribution() bool { return true }

func (s swEstimator) Estimate(values []float64, d int, eps float64, rng *randx.Rand) []float64 {
	cfg := Config{
		Epsilon:       eps,
		Buckets:       d,
		Bandwidth:     s.bandwidth,
		PlateauRatio:  s.rho,
		ExplicitShape: s.explicit,
		Smoothing:     s.smoothing,
	}
	return Run(cfg, values, rng)
}

// swDiscreteEstimator is the bucketize-before-randomize variant.
type swDiscreteEstimator struct{ smoothing bool }

// SWDiscreteEMS returns the discrete (B-R) Square Wave with EMS
// (Section 5.4).
func SWDiscreteEMS() Estimator { return swDiscreteEstimator{smoothing: true} }

func (s swDiscreteEstimator) Name() string            { return "SW-BR-EMS" }
func (s swDiscreteEstimator) ValidDistribution() bool { return true }

func (s swDiscreteEstimator) Estimate(values []float64, d int, eps float64, rng *randx.Rand) []float64 {
	mech := sw.NewDiscrete(d, eps)
	disc := make([]int, len(values))
	for i, v := range values {
		disc[i] = int(mathx.Clamp(v, 0, 1) * float64(d))
		if disc[i] >= d {
			disc[i] = d - 1
		}
	}
	counts := mech.Collect(disc, rng)
	opts := em.EMSOptions()
	if !s.smoothing {
		opts = em.EMOptions(eps)
	}
	return em.Reconstruct(mech.TransitionMatrix(), counts, opts).Estimate
}

// hierarchyEstimator covers HH, HH-ADMM and HaarHRR.
type hierarchyEstimator struct {
	name string
	beta int
	mode string // "raw", "admm", "haar"
}

// HHADMM returns the paper's improved hierarchy method (Section 4.3) with
// branching factor beta (the paper uses 4).
func HHADMM(beta int) Estimator {
	return hierarchyEstimator{name: "HH-ADMM", beta: beta, mode: "admm"}
}

// HH returns the plain hierarchical histogram with constrained inference
// [18]; its output is not a valid distribution.
func HH(beta int) Estimator {
	return hierarchyEstimator{name: "HH", beta: beta, mode: "raw"}
}

// HaarHRR returns the Haar-transform hierarchy with Hadamard response [18];
// its output is not a valid distribution.
func HaarHRR() Estimator {
	return hierarchyEstimator{name: "HaarHRR", beta: 2, mode: "haar"}
}

func (h hierarchyEstimator) Name() string            { return h.name }
func (h hierarchyEstimator) ValidDistribution() bool { return h.mode == "admm" }

func (h hierarchyEstimator) Estimate(values []float64, d int, eps float64, rng *randx.Rand) []float64 {
	disc := make([]int, len(values))
	for i, v := range values {
		j := int(mathx.Clamp(v, 0, 1) * float64(d))
		if j >= d {
			j = d - 1
		}
		disc[i] = j
	}
	switch h.mode {
	case "haar":
		return hierarchy.NewHaarHRR(d, eps).Collect(disc, rng).Leaves()
	case "admm":
		raw := hierarchy.NewHH(d, h.beta, eps).Collect(disc, rng)
		return admm.Distribution(raw, admm.Options{})
	default:
		raw := hierarchy.NewHH(d, h.beta, eps).Collect(disc, rng)
		return raw.ConstrainedInference().Leaves()
	}
}

// binningEstimator is CFO-with-binning.
type binningEstimator struct{ c int }

// Binning returns CFO-with-binning with c bins (Section 4.1; the paper
// evaluates c ∈ {16, 32, 64}).
func Binning(c int) Estimator { return binningEstimator{c: c} }

func (b binningEstimator) Name() string            { return fmt.Sprintf("CFO-bin-%d", b.c) }
func (b binningEstimator) ValidDistribution() bool { return true }

func (b binningEstimator) Estimate(values []float64, d int, eps float64, rng *randx.Rand) []float64 {
	return binning.New(b.c, eps).Collect(values, d, rng)
}

// StandardEstimators returns the method set of Figures 2–4: SW-EMS, SW-EM,
// HH-ADMM (β=4) and CFO-binning with 16/32/64 bins.
func StandardEstimators() []Estimator {
	return []Estimator{
		SWEMS(), SWEM(), HHADMM(4), Binning(16), Binning(32), Binning(64),
	}
}

// RangeQueryEstimators returns the extended set of Figure 3, which adds the
// signed-output hierarchy baselines.
func RangeQueryEstimators() []Estimator {
	return append(StandardEstimators(), HH(4), HaarHRR())
}
