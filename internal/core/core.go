// Package core wires the substrates into end-to-end distribution-estimation
// pipelines: a client/aggregator pair built on the pluggable mechanism layer
// (package mechanism) with the paper's primary contribution — Square Wave
// reporting + EMS reconstruction — as the default, plus an Estimator
// registry covering every method the evaluation section compares (SW+EMS,
// SW+EM, discrete SW, general-wave ablations, HH-ADMM, HH, HaarHRR,
// CFO-with-binning).
package core

import (
	"fmt"
	"math"

	"repro/internal/admm"
	"repro/internal/binning"
	"repro/internal/em"
	"repro/internal/hierarchy"
	"repro/internal/mathx"
	"repro/internal/matrixx"
	"repro/internal/mechanism"
	"repro/internal/postprocess"
	"repro/internal/randx"
	"repro/internal/sw"
)

// Config parameterizes a collection round. The zero Mechanism is the
// continuous Square Wave, for which the SW-specific fields (OutputBuckets,
// Bandwidth, PlateauRatio, ExplicitShape) keep their historical meaning.
type Config struct {
	// Epsilon is the LDP privacy budget. Required.
	Epsilon float64
	// Buckets is the reconstruction granularity d. Defaults to 1024.
	Buckets int
	// OutputBuckets is the report-histogram granularity d̃ of the sw
	// mechanism. Defaults to Buckets (the paper sets d̃ = d); other
	// mechanisms derive their output granularity.
	OutputBuckets int
	// Bandwidth overrides the wave half-width b for the sw family (a
	// domain fraction; sw-discrete uses ⌊b·d⌋ buckets); 0 means the
	// mutual-information optimum sw.BOpt(Epsilon).
	Bandwidth float64
	// PlateauRatio is the general-wave plateau ratio ρ; SW is ρ = 1
	// (the default when 0 is interpreted only through ExplicitShape).
	// Leave ExplicitShape false for the Square Wave.
	PlateauRatio float64
	// ExplicitShape makes PlateauRatio meaningful (so a triangle wave,
	// ρ = 0, can be requested).
	ExplicitShape bool
	// Smoothing selects EMS (true, default via NewConfig) or plain EM.
	Smoothing bool
	// EM carries fine-grained reconstruction options; zero values take
	// the paper's defaults for the chosen Smoothing mode.
	EM em.Options
	// Mechanism selects the reporting mechanism by wire name: "sw" (the
	// default), "sw-discrete", "grr", "oue", "sue", "olh", "hrr", or
	// "auto" (the Section 4.1 variance rule, resolved at construction).
	Mechanism string
}

// NewConfig returns the paper's recommended configuration: SW with the
// optimal bandwidth and EMS reconstruction.
func NewConfig(eps float64) Config {
	return Config{Epsilon: eps, Smoothing: true}
}

func (c *Config) fillDefaults() {
	if c.Epsilon <= 0 || math.IsNaN(c.Epsilon) || math.IsInf(c.Epsilon, 0) {
		panic(fmt.Sprintf("core: epsilon %v must be positive and finite", c.Epsilon))
	}
	if c.Buckets <= 0 {
		c.Buckets = 1024
	}
	name, err := mechanism.Resolve(c.Mechanism, c.Epsilon, c.Buckets)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	c.Mechanism = name
	if name == mechanism.SW {
		// SW-family defaults, resolved here so the Config fingerprint
		// (merge.go) and accessors carry the effective values.
		if c.OutputBuckets <= 0 {
			c.OutputBuckets = c.Buckets
		}
		if c.Bandwidth == 0 {
			c.Bandwidth = sw.BOpt(c.Epsilon)
		}
		if !c.ExplicitShape {
			c.PlateauRatio = 1
		}
	}
	if c.EM.Tau == 0 {
		workers := c.EM.Workers
		if c.Smoothing {
			c.EM = em.EMSOptions()
		} else {
			c.EM = em.EMOptions(c.Epsilon)
		}
		c.EM.Workers = workers
	} else {
		c.EM.Smoothing = c.Smoothing
	}
}

// mechParams maps the (default-filled) Config onto the mechanism codec.
func (c Config) mechParams() mechanism.Params {
	p := mechanism.Params{
		Name:    c.Mechanism,
		Epsilon: c.Epsilon,
		Buckets: c.Buckets,
	}
	switch c.Mechanism {
	case mechanism.SW:
		p.OutputBuckets = c.OutputBuckets
		p.Bandwidth = c.Bandwidth
		p.PlateauRatio = c.PlateauRatio
		p.ExplicitShape = c.ExplicitShape
	case mechanism.SWDiscrete:
		p.Bandwidth = c.Bandwidth
	}
	return p
}

// Client is the user-side half of the pipeline: it holds no state beyond
// the mechanism parameters and maps one private value to one report.
type Client struct {
	cfg  Config
	mech mechanism.Mechanism
}

// NewClient builds a client from cfg.
func NewClient(cfg Config) *Client {
	cfg.fillDefaults()
	return &Client{cfg: cfg, mech: mechanism.MustNew(cfg.mechParams())}
}

// Report randomizes one private value v ∈ [0,1] into a scalar report (for
// SW: a value in [−b, 1+b]). Values outside [0,1] are clamped (the usual
// contract for bounded-domain LDP mechanisms: the clamping happens on the
// user's device before randomization, so privacy is unaffected). Report is
// only available for scalar-report mechanisms (sw, sw-discrete, grr); use
// Perturb for the general wire form.
func (c *Client) Report(v float64, rng *randx.Rand) float64 {
	if !c.mech.Scalar() {
		panic(fmt.Sprintf("core: %s reports are not scalar; use Perturb", c.mech.Name()))
	}
	return c.mech.Perturb(mathx.Clamp(v, 0, 1), rng)[0]
}

// Perturb randomizes one private value v ∈ [0,1] (clamped) into a wire
// report of the configured mechanism.
func (c *Client) Perturb(v float64, rng *randx.Rand) mechanism.Report {
	return c.mech.Perturb(mathx.Clamp(v, 0, 1), rng)
}

// Epsilon returns the client's privacy budget.
func (c *Client) Epsilon() float64 { return c.cfg.Epsilon }

// Bandwidth returns the wave half-width in use (0 for non-SW mechanisms).
func (c *Client) Bandwidth() float64 { return c.cfg.Bandwidth }

// Mechanism returns the client's reporting mechanism.
func (c *Client) Mechanism() mechanism.Mechanism { return c.mech }

// Aggregator is the collector-side half: it buckets incoming reports into
// the report histogram and reconstructs the input distribution on demand.
type Aggregator struct {
	cfg    Config
	mech   mechanism.Mechanism
	counts []float64
	n      int
}

// NewAggregator builds an aggregator from cfg (must match the clients').
// For channel-based mechanisms the transition matrix is precomputed once
// and, where its structure allows (the square wave's constant floor plus
// contiguous band, GRR's flat-plus-diagonal), stored compressed so each EM
// iteration costs far less than O(d·d̃).
func NewAggregator(cfg Config) *Aggregator {
	cfg.fillDefaults()
	mech := mechanism.MustNew(cfg.mechParams())
	mech.Channel() // build (and cache) the channel eagerly, as before
	return &Aggregator{
		cfg:    cfg,
		mech:   mech,
		counts: make([]float64, mech.OutputBuckets()),
	}
}

// Bucket maps one scalar report to its report-histogram bucket. It reads
// only immutable mechanism state and is safe for concurrent use — it is the
// ingestion kernel concurrent accumulators (package aggregate, the HTTP
// collector) build on. It panics on reports no client of this mechanism can
// produce (impossible for SW, whose out-of-range reports clamp) and on
// non-scalar mechanisms; servers ingesting untrusted wire reports use
// Bucketize, which returns errors instead.
func (a *Aggregator) Bucket(report float64) int {
	j, err := a.mech.BucketOf(report)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return j
}

// Bucketize validates one wire report and appends the histogram cells it
// increments to dst. Safe for concurrent use.
func (a *Aggregator) Bucketize(dst []int, rep mechanism.Report) ([]int, error) {
	return a.mech.Bucketize(dst, rep)
}

// Ingest adds one scalar report to the aggregate.
func (a *Aggregator) Ingest(report float64) {
	a.counts[a.Bucket(report)]++
	a.n++
}

// IngestReport adds one wire report (any mechanism) to the aggregate.
func (a *Aggregator) IngestReport(rep mechanism.Report) error {
	cells, err := a.mech.Bucketize(nil, rep)
	if err != nil {
		return err
	}
	for _, c := range cells {
		a.counts[c]++
	}
	a.n++
	return nil
}

// N returns the number of reports ingested.
func (a *Aggregator) N() int { return a.n }

// OutputBuckets returns the report-histogram granularity d̃ — the length
// external accumulators must use.
func (a *Aggregator) OutputBuckets() int { return a.mech.OutputBuckets() }

// Mechanism returns the aggregator's reporting mechanism.
func (a *Aggregator) Mechanism() mechanism.Mechanism { return a.mech }

// Users converts an externally-accumulated histogram plus its increment
// total into the report (user) count it represents. For one-cell-per-report
// mechanisms this is the increment total; fan-out oracles (OUE/SUE, OLH)
// read their marker cell.
func (a *Aggregator) Users(counts []float64, increments int) int {
	return a.mech.Users(counts, increments)
}

// Channel returns the transition channel the aggregator reconstructs with
// (shared, not copied — callers must treat it as read-only). It is nil for
// matrix-free oracle mechanisms (oue, sue, olh, hrr), which reconstruct via
// the direct debiased estimate instead of EM.
func (a *Aggregator) Channel() matrixx.Channel { return a.mech.Channel() }

// Counts returns a copy of the report histogram.
func (a *Aggregator) Counts() []float64 {
	return append([]float64(nil), a.counts...)
}

// Decay multiplies the accumulated report histogram by factor ∈ (0, 1],
// implementing an exponentially-weighted sliding window for long-running
// collections: calling Decay(γ) once per epoch makes a report from k epochs
// ago weigh γ^k. The reconstruction is unaffected in expectation because the
// channel is linear and EM normalizes the counts. Decay(1) is a no-op.
func (a *Aggregator) Decay(factor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("core: decay factor %v outside (0, 1]", factor))
	}
	if factor == 1 {
		return
	}
	for j := range a.counts {
		a.counts[j] *= factor
	}
	a.n = int(float64(a.n)*factor + 0.5)
}

// Estimate reconstructs the input distribution from the reports ingested so
// far (EM/EMS for channel mechanisms, direct debiased estimation for
// oracles).
func (a *Aggregator) Estimate() em.Result {
	return a.EstimateFrom(a.counts, nil)
}

// EstimateFrom reconstructs from an externally-accumulated report histogram
// (e.g. an aggregate.Striped snapshot) instead of the aggregator's own
// counts. Channel-based mechanisms run EM/EMS; a non-nil init warm-starts
// EM from a previous estimate, which typically converges in a fraction of
// the iterations — the backbone of the background re-estimation engine.
// Matrix-free oracles compute the direct debiased estimate and project it
// onto the simplex with Norm-Sub (Section 4.1); being closed-form, they
// ignore init and always report convergence. EstimateFrom does not touch
// mutable aggregator state and is safe to call concurrently with Bucket.
func (a *Aggregator) EstimateFrom(counts, init []float64) em.Result {
	return a.EstimateInto(nil, counts, init)
}

// EstimateInto is EstimateFrom running out of a reusable em.Workspace: once
// the workspace is warm for this aggregator's shape, a re-estimation
// allocates nothing on either the EM or the oracle path. A nil workspace
// falls back to per-call buffers. Result.Estimate aliases workspace memory
// and is only valid until the workspace's next use; callers that retain it
// must copy it out. The workspace (unlike the aggregator itself) is NOT safe
// for concurrent use.
func (a *Aggregator) EstimateInto(w *em.Workspace, counts, init []float64) em.Result {
	if w == nil {
		w = new(em.Workspace)
	}
	if ch := a.mech.Channel(); ch != nil {
		opts := a.cfg.EM
		if init != nil {
			opts.Init = init
		}
		return w.Reconstruct(ch, counts, opts)
	}
	est, scratch := w.OracleBuffers(len(counts))
	est = a.mech.EstimateInto(est, counts)
	postprocess.NormSubInPlace(est, scratch[:len(est)])
	return em.Result{
		Estimate:   est,
		Iterations: 1,
		Converged:  true,
	}
}

// Run executes a complete round over a slice of private values and returns
// the reconstructed distribution — the one-shot convenience the estimator
// registry and benchmarks use.
func Run(cfg Config, values []float64, rng *randx.Rand) []float64 {
	client := NewClient(cfg)
	agg := NewAggregator(cfg)
	var cells []int
	var err error
	for _, v := range values {
		cells, err = agg.Bucketize(cells[:0], client.Perturb(v, rng))
		if err != nil {
			panic(fmt.Sprintf("core: own client produced an invalid report: %v", err))
		}
		for _, c := range cells {
			agg.counts[c]++
		}
		agg.n++
	}
	return agg.Estimate().Estimate
}

// ---------------------------------------------------------------------------
// Estimator registry
// ---------------------------------------------------------------------------

// Estimator is a full distribution-estimation method under LDP, the unit the
// experiment harness compares.
type Estimator interface {
	// Name is the label used in figures ("SW-EMS", "HH-ADMM", ...).
	Name() string
	// ValidDistribution reports whether Estimate returns a point of the
	// probability simplex. HH and HaarHRR return signed estimates that
	// are only meaningful for range queries (Table 2).
	ValidDistribution() bool
	// Estimate runs a full private collection round over values ∈ [0,1]
	// at granularity d and budget eps.
	Estimate(values []float64, d int, eps float64, rng *randx.Rand) []float64
}

// swEstimator covers SW/GW with EM or EMS reconstruction.
type swEstimator struct {
	name      string
	smoothing bool
	rho       float64
	explicit  bool
	bandwidth float64 // 0 → BOpt
}

// SWEMS returns the paper's headline method: Square Wave + EMS.
func SWEMS() Estimator { return swEstimator{name: "SW-EMS", smoothing: true} }

// SWEM returns Square Wave + plain EM.
func SWEM() Estimator { return swEstimator{name: "SW-EM"} }

// SWEMSWithBandwidth returns SW+EMS with an explicit wave half-width
// (Figure 6 sweep).
func SWEMSWithBandwidth(b float64) Estimator {
	return swEstimator{name: fmt.Sprintf("SW-EMS(b=%.3f)", b), smoothing: true, bandwidth: b}
}

// GeneralWaveEMS returns a trapezoid/triangle wave with plateau ratio rho
// plus EMS (Figure 5 ablation).
func GeneralWaveEMS(rho, b float64) Estimator {
	name := fmt.Sprintf("GW(ρ=%.1f)-EMS", rho)
	if rho == 0 {
		name = "Triangle-EMS"
	}
	return swEstimator{name: name, smoothing: true, rho: rho, explicit: true, bandwidth: b}
}

func (s swEstimator) Name() string            { return s.name }
func (s swEstimator) ValidDistribution() bool { return true }

func (s swEstimator) Estimate(values []float64, d int, eps float64, rng *randx.Rand) []float64 {
	cfg := Config{
		Epsilon:       eps,
		Buckets:       d,
		Bandwidth:     s.bandwidth,
		PlateauRatio:  s.rho,
		ExplicitShape: s.explicit,
		Smoothing:     s.smoothing,
	}
	return Run(cfg, values, rng)
}

// swDiscreteEstimator is the bucketize-before-randomize variant.
type swDiscreteEstimator struct{ smoothing bool }

// SWDiscreteEMS returns the discrete (B-R) Square Wave with EMS
// (Section 5.4).
func SWDiscreteEMS() Estimator { return swDiscreteEstimator{smoothing: true} }

func (s swDiscreteEstimator) Name() string            { return "SW-BR-EMS" }
func (s swDiscreteEstimator) ValidDistribution() bool { return true }

func (s swDiscreteEstimator) Estimate(values []float64, d int, eps float64, rng *randx.Rand) []float64 {
	mech := sw.NewDiscrete(d, eps)
	disc := make([]int, len(values))
	for i, v := range values {
		disc[i] = int(mathx.Clamp(v, 0, 1) * float64(d))
		if disc[i] >= d {
			disc[i] = d - 1
		}
	}
	counts := mech.Collect(disc, rng)
	opts := em.EMSOptions()
	if !s.smoothing {
		opts = em.EMOptions(eps)
	}
	return em.Reconstruct(mech.TransitionMatrix(), counts, opts).Estimate
}

// hierarchyEstimator covers HH, HH-ADMM and HaarHRR.
type hierarchyEstimator struct {
	name string
	beta int
	mode string // "raw", "admm", "haar"
}

// HHADMM returns the paper's improved hierarchy method (Section 4.3) with
// branching factor beta (the paper uses 4).
func HHADMM(beta int) Estimator {
	return hierarchyEstimator{name: "HH-ADMM", beta: beta, mode: "admm"}
}

// HH returns the plain hierarchical histogram with constrained inference
// [18]; its output is not a valid distribution.
func HH(beta int) Estimator {
	return hierarchyEstimator{name: "HH", beta: beta, mode: "raw"}
}

// HaarHRR returns the Haar-transform hierarchy with Hadamard response [18];
// its output is not a valid distribution.
func HaarHRR() Estimator {
	return hierarchyEstimator{name: "HaarHRR", beta: 2, mode: "haar"}
}

func (h hierarchyEstimator) Name() string            { return h.name }
func (h hierarchyEstimator) ValidDistribution() bool { return h.mode == "admm" }

func (h hierarchyEstimator) Estimate(values []float64, d int, eps float64, rng *randx.Rand) []float64 {
	disc := make([]int, len(values))
	for i, v := range values {
		j := int(mathx.Clamp(v, 0, 1) * float64(d))
		if j >= d {
			j = d - 1
		}
		disc[i] = j
	}
	switch h.mode {
	case "haar":
		return hierarchy.NewHaarHRR(d, eps).Collect(disc, rng).Leaves()
	case "admm":
		raw := hierarchy.NewHH(d, h.beta, eps).Collect(disc, rng)
		return admm.Distribution(raw, admm.Options{})
	default:
		raw := hierarchy.NewHH(d, h.beta, eps).Collect(disc, rng)
		return raw.ConstrainedInference().Leaves()
	}
}

// binningEstimator is CFO-with-binning.
type binningEstimator struct{ c int }

// Binning returns CFO-with-binning with c bins (Section 4.1; the paper
// evaluates c ∈ {16, 32, 64}).
func Binning(c int) Estimator { return binningEstimator{c: c} }

func (b binningEstimator) Name() string            { return fmt.Sprintf("CFO-bin-%d", b.c) }
func (b binningEstimator) ValidDistribution() bool { return true }

func (b binningEstimator) Estimate(values []float64, d int, eps float64, rng *randx.Rand) []float64 {
	return binning.New(b.c, eps).Collect(values, d, rng)
}

// StandardEstimators returns the method set of Figures 2–4: SW-EMS, SW-EM,
// HH-ADMM (β=4) and CFO-binning with 16/32/64 bins.
func StandardEstimators() []Estimator {
	return []Estimator{
		SWEMS(), SWEM(), HHADMM(4), Binning(16), Binning(32), Binning(64),
	}
}

// RangeQueryEstimators returns the extended set of Figure 3, which adds the
// signed-output hierarchy baselines.
func RangeQueryEstimators() []Estimator {
	return append(StandardEstimators(), HH(4), HaarHRR())
}
