package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mechanism"
)

// collectingHook records every flushed batch (copied — the Batcher reuses
// its slices) and can be told to fail.
type collectingHook struct {
	mu      sync.Mutex
	batches [][]mechanism.Report
	fail    atomic.Bool
	failErr error
}

func (c *collectingHook) flush(reports []mechanism.Report) error {
	if c.fail.Load() {
		return c.failErr
	}
	cp := make([]mechanism.Report, len(reports))
	for i, r := range reports {
		cp[i] = append(mechanism.Report(nil), r...)
	}
	c.mu.Lock()
	c.batches = append(c.batches, cp)
	c.mu.Unlock()
	return nil
}

func (c *collectingHook) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, b := range c.batches {
		n += len(b)
	}
	return n
}

func rep(v float64) mechanism.Report { return mechanism.Report{v} }

func TestBatcherSizeFlush(t *testing.T) {
	hook := &collectingHook{}
	b, err := NewBatcher(BatcherConfig{MaxBatch: 4, MaxDelay: time.Hour, Flush: hook.flush})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 4; i++ {
		if err := b.Add(rep(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for hook.total() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("size-triggered flush never fired; shipped %d/4", hook.total())
		}
		time.Sleep(time.Millisecond)
	}
	hook.mu.Lock()
	defer hook.mu.Unlock()
	if len(hook.batches) != 1 || len(hook.batches[0]) != 4 {
		t.Fatalf("batches = %v, want one batch of 4", hook.batches)
	}
	for i, r := range hook.batches[0] {
		if len(r) != 1 || r[0] != float64(i) {
			t.Fatalf("batch[%d] = %v (order not preserved)", i, r)
		}
	}
}

func TestBatcherTimedFlush(t *testing.T) {
	hook := &collectingHook{}
	b, err := NewBatcher(BatcherConfig{MaxBatch: 1000, MaxDelay: 20 * time.Millisecond, Flush: hook.flush})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Add(rep(0.5))
	deadline := time.Now().Add(2 * time.Second)
	for hook.total() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("timed flush never fired")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBatcherBackpressureBlocks(t *testing.T) {
	hook := &collectingHook{failErr: errors.New("down")}
	hook.fail.Store(true)
	b, err := NewBatcher(BatcherConfig{MaxBatch: 2, MaxDelay: 5 * time.Millisecond, QueueCap: 2, Flush: hook.flush})
	if err != nil {
		t.Fatal(err)
	}
	b.Add(rep(1))
	b.Add(rep(2))

	// The queue is full and the transport is failing, so a third Add must
	// block — not drop — until the transport recovers and a flush drains.
	unblocked := make(chan error, 1)
	go func() { unblocked <- b.Add(rep(3)) }()
	select {
	case err := <-unblocked:
		t.Fatalf("Add returned (%v) with a full queue; want blocking backpressure", err)
	case <-time.After(50 * time.Millisecond):
	}

	hook.fail.Store(false)
	select {
	case err := <-unblocked:
		if err != nil {
			t.Fatalf("Add after recovery: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Add still blocked after the transport recovered")
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if hook.total() != 3 {
		t.Fatalf("shipped %d reports, want 3", hook.total())
	}
}

func TestBatcherCloseFlushesRemainder(t *testing.T) {
	hook := &collectingHook{}
	b, err := NewBatcher(BatcherConfig{MaxBatch: 100, MaxDelay: time.Hour, Flush: hook.flush})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		b.Add(rep(float64(i)))
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if hook.total() != 7 {
		t.Fatalf("Close shipped %d reports, want 7", hook.total())
	}
	if err := b.Add(rep(9)); err == nil {
		t.Fatal("Add after Close succeeded")
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestBatcherErrorRequeuesAndReports(t *testing.T) {
	hook := &collectingHook{failErr: errors.New("transport down")}
	hook.fail.Store(true)
	var onErr atomic.Int64
	b, err := NewBatcher(BatcherConfig{
		MaxBatch: 10, MaxDelay: time.Hour, Flush: hook.flush,
		OnError: func(error) { onErr.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Add(rep(1))
	b.Add(rep(2))
	if err := b.Flush(); err == nil {
		t.Fatal("Flush on a failing transport returned nil")
	}
	if onErr.Load() == 0 {
		t.Fatal("OnError was not invoked")
	}
	if b.Len() != 2 {
		t.Fatalf("failed batch was dropped: Len = %d, want 2", b.Len())
	}

	// Recovery: the same reports ship on the next flush, nothing lost.
	hook.fail.Store(false)
	if err := b.Flush(); err != nil {
		t.Fatalf("Flush after recovery: %v", err)
	}
	if hook.total() != 2 || b.Len() != 0 {
		t.Fatalf("after recovery shipped=%d queued=%d, want 2/0", hook.total(), b.Len())
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestBatcherConcurrentAdds(t *testing.T) {
	hook := &collectingHook{}
	b, err := NewBatcher(BatcherConfig{MaxBatch: 16, MaxDelay: 5 * time.Millisecond, QueueCap: 32, Flush: hook.flush})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, each = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := b.Add(rep(0.5)); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if hook.total() != goroutines*each {
		t.Fatalf("shipped %d reports, want %d", hook.total(), goroutines*each)
	}
}

func TestBatcherRequiresFlushHook(t *testing.T) {
	if _, err := NewBatcher(BatcherConfig{}); err == nil {
		t.Fatal("NewBatcher without a Flush hook succeeded")
	}
}
