package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/randx"
)

func TestMergeEqualsSingleAggregator(t *testing.T) {
	// Two shards merged must reproduce exactly the histogram of one
	// aggregator that saw all reports.
	cfg := NewConfig(1)
	cfg.Buckets = 64
	client := NewClient(cfg)
	whole := NewAggregator(cfg)
	shardA := NewAggregator(cfg)
	shardB := NewAggregator(cfg)

	rng := randx.New(1)
	ds := dataset.Beta52(10000, 2)
	for i, v := range ds.Values {
		r := client.Report(v, rng)
		whole.Ingest(r)
		if i%2 == 0 {
			shardA.Ingest(r)
		} else {
			shardB.Ingest(r)
		}
	}
	if err := shardA.Merge(shardB); err != nil {
		t.Fatal(err)
	}
	if shardA.N() != whole.N() {
		t.Errorf("merged N = %d, want %d", shardA.N(), whole.N())
	}
	if mathx.L1(shardA.Counts(), whole.Counts()) != 0 {
		t.Error("merged histogram differs from single-aggregator histogram")
	}
	// And therefore the reconstructions agree exactly.
	a := shardA.Estimate().Estimate
	w := whole.Estimate().Estimate
	if mathx.L1(a, w) != 0 {
		t.Error("merged reconstruction differs")
	}
}

func TestMergeRejectsMismatchedConfig(t *testing.T) {
	mk := func(eps float64, d int, b float64) *Aggregator {
		cfg := NewConfig(eps)
		cfg.Buckets = d
		cfg.Bandwidth = b
		return NewAggregator(cfg)
	}
	base := mk(1, 64, 0)
	cases := []*Aggregator{
		mk(2, 64, 0),    // epsilon mismatch
		mk(1, 128, 0),   // granularity mismatch
		mk(1, 64, 0.05), // bandwidth mismatch
	}
	for i, other := range cases {
		if err := base.Merge(other); err == nil {
			t.Errorf("case %d: mismatched merge accepted", i)
		}
	}
}

func TestAggregatorSerializationRoundTrip(t *testing.T) {
	cfg := NewConfig(1)
	cfg.Buckets = 64
	client := NewClient(cfg)
	agg := NewAggregator(cfg)
	rng := randx.New(3)
	for i := 0; i < 5000; i++ {
		agg.Ingest(client.Report(rng.Float64(), rng))
	}
	blob, err := agg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	restored := NewAggregator(cfg)
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.N() != agg.N() {
		t.Errorf("restored N = %d, want %d", restored.N(), agg.N())
	}
	if mathx.L1(restored.Counts(), agg.Counts()) != 0 {
		t.Error("restored histogram differs")
	}
	a := agg.Estimate().Estimate
	b := restored.Estimate().Estimate
	if mathx.L1(a, b) != 0 {
		t.Error("restored reconstruction differs")
	}
}

func TestUnmarshalRejectsWrongConfig(t *testing.T) {
	cfgA := NewConfig(1)
	cfgA.Buckets = 64
	src := NewAggregator(cfgA)
	blob, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	cfgB := NewConfig(2)
	cfgB.Buckets = 64
	dst := NewAggregator(cfgB)
	if err := dst.UnmarshalBinary(blob); err == nil {
		t.Error("mismatched unmarshal accepted")
	}
	if err := dst.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Error("garbage unmarshal accepted")
	}
}
