package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
)

// aggregatorState is the serialized form of an Aggregator: the configuration
// fingerprint plus the report histogram. Reports themselves never need to be
// retained — the SW/EMS pipeline is aggregate-sufficient — so shards stay
// O(d̃) regardless of population size.
type aggregatorState struct {
	Epsilon       float64
	Buckets       int
	OutputBuckets int
	Bandwidth     float64
	PlateauRatio  float64
	Mechanism     string
	N             int
	Counts        []float64
}

func (a *Aggregator) state() aggregatorState {
	return aggregatorState{
		Epsilon:       a.cfg.Epsilon,
		Buckets:       a.cfg.Buckets,
		OutputBuckets: a.cfg.OutputBuckets,
		Bandwidth:     a.cfg.Bandwidth,
		PlateauRatio:  a.cfg.PlateauRatio,
		Mechanism:     a.cfg.Mechanism,
		N:             a.n,
		Counts:        a.counts,
	}
}

func (a *Aggregator) compatible(s aggregatorState) error {
	switch {
	case s.Mechanism != a.cfg.Mechanism:
		return fmt.Errorf("core: mechanism mismatch (%q vs %q)", s.Mechanism, a.cfg.Mechanism)
	case s.Epsilon != a.cfg.Epsilon:
		return fmt.Errorf("core: epsilon mismatch (%v vs %v)", s.Epsilon, a.cfg.Epsilon)
	case s.Buckets != a.cfg.Buckets || s.OutputBuckets != a.cfg.OutputBuckets:
		return fmt.Errorf("core: granularity mismatch (%d/%d vs %d/%d)",
			s.Buckets, s.OutputBuckets, a.cfg.Buckets, a.cfg.OutputBuckets)
	case math.Abs(s.Bandwidth-a.cfg.Bandwidth) > 1e-12:
		return fmt.Errorf("core: bandwidth mismatch (%v vs %v)", s.Bandwidth, a.cfg.Bandwidth)
	case s.PlateauRatio != a.cfg.PlateauRatio:
		return fmt.Errorf("core: wave shape mismatch (ρ %v vs %v)", s.PlateauRatio, a.cfg.PlateauRatio)
	}
	return nil
}

// Merge folds another aggregator's reports into a (e.g. per-datacenter
// shards merging before reconstruction). Both aggregators must have been
// built from identical mechanism parameters; a configuration mismatch is an
// error because the shards' reports were produced by different channels.
func (a *Aggregator) Merge(other *Aggregator) error {
	s := other.state()
	if err := a.compatible(s); err != nil {
		return err
	}
	for j, c := range s.Counts {
		a.counts[j] += c
	}
	a.n += s.N
	return nil
}

// MarshalBinary serializes the aggregator's configuration fingerprint and
// report histogram (encoding/gob). The transition matrix is not serialized;
// it is recomputed on load.
func (a *Aggregator) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a.state()); err != nil {
		return nil, fmt.Errorf("core: marshal aggregator: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores serialized state into an aggregator constructed
// with the same Config; it replaces any reports ingested so far. It fails if
// the serialized configuration does not match.
func (a *Aggregator) UnmarshalBinary(data []byte) error {
	var s aggregatorState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return fmt.Errorf("core: unmarshal aggregator: %w", err)
	}
	if err := a.compatible(s); err != nil {
		return err
	}
	if len(s.Counts) != len(a.counts) {
		return fmt.Errorf("core: serialized histogram has %d buckets, want %d",
			len(s.Counts), len(a.counts))
	}
	copy(a.counts, s.Counts)
	a.n = s.N
	return nil
}
