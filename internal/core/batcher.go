package core

// Batcher amortizes per-report transport cost on the client side: reports
// accumulate in a bounded queue and are flushed as one batch when the batch
// fills, when the oldest queued report has waited MaxDelay, or on an
// explicit Flush/Close. Backpressure is blocking — Add waits when the queue
// is full rather than dropping a report, because an LDP report is one
// user's single contribution and silently losing it would bias the
// estimate, not just lose throughput.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/mechanism"
)

// BatcherConfig parameterizes a Batcher.
type BatcherConfig struct {
	// MaxBatch is the flush size (default 128).
	MaxBatch int
	// MaxDelay bounds how long a queued report may wait before a timed
	// flush (default 200ms; ≤0 uses the default).
	MaxDelay time.Duration
	// QueueCap bounds the queue; Add blocks when it is full (default
	// 4×MaxBatch, and never below MaxBatch).
	QueueCap int
	// Flush ships one batch. Required. It is called from the background
	// goroutine and from Add/Flush/Close callers, never concurrently with
	// itself. The slice is owned by the Batcher and reused; copy it to
	// retain.
	Flush func(reports []mechanism.Report) error
	// OnError receives flush failures (nil = dropped silently into the
	// error returned by the next Flush/Close). The failed batch is
	// re-queued ahead of newer reports and retried on the next flush.
	OnError func(error)
}

func (c BatcherConfig) filled() (BatcherConfig, error) {
	if c.Flush == nil {
		return c, fmt.Errorf("core: batcher needs a Flush hook")
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 128
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 200 * time.Millisecond
	}
	if c.QueueCap < c.MaxBatch {
		c.QueueCap = 4 * c.MaxBatch
	}
	return c, nil
}

// Batcher accumulates reports and flushes them in batches. Create with
// NewBatcher; all methods are safe for concurrent use.
type Batcher struct {
	cfg BatcherConfig

	mu      sync.Mutex
	notFull *sync.Cond
	queue   []mechanism.Report
	oldest  time.Time // arrival of queue[0], zero when empty
	lastErr error     // latest flush failure not yet returned
	closed  bool

	// flushMu serializes actual Flush-hook invocations so the hook never
	// races itself even when Add, the timer, and Close all trigger one.
	flushMu sync.Mutex

	wake chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// NewBatcher validates the configuration and starts the timed-flush
// goroutine.
func NewBatcher(cfg BatcherConfig) (*Batcher, error) {
	cfg, err := cfg.filled()
	if err != nil {
		return nil, err
	}
	b := &Batcher{
		cfg:   cfg,
		queue: make([]mechanism.Report, 0, cfg.MaxBatch),
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	b.notFull = sync.NewCond(&b.mu)
	b.wg.Add(1)
	go b.run()
	return b, nil
}

// Add enqueues one report, blocking while the queue is full (backpressure)
// and returning an error only after Close.
func (b *Batcher) Add(rep mechanism.Report) error {
	b.mu.Lock()
	for len(b.queue) >= b.cfg.QueueCap && !b.closed {
		b.notFull.Wait()
	}
	if b.closed {
		b.mu.Unlock()
		return fmt.Errorf("core: batcher is closed")
	}
	if len(b.queue) == 0 {
		b.oldest = time.Now()
	}
	b.queue = append(b.queue, rep)
	full := len(b.queue) >= b.cfg.MaxBatch
	b.mu.Unlock()
	if full {
		select {
		case b.wake <- struct{}{}:
		default:
		}
	}
	return nil
}

// Len is the number of queued, unflushed reports.
func (b *Batcher) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// Flush synchronously ships everything queued. It returns this flush's
// failure, or a background flush failure not yet reported.
func (b *Batcher) Flush() error {
	return b.flushNow(false)
}

// Close flushes what remains, stops the background goroutine, and returns
// the final error state. Add fails afterwards; Close is idempotent.
func (b *Batcher) Close() error {
	b.mu.Lock()
	alreadyClosed := b.closed
	b.closed = true
	b.notFull.Broadcast()
	b.mu.Unlock()
	if !alreadyClosed {
		close(b.done)
		b.wg.Wait()
	}
	return b.flushNow(false)
}

// run is the timed-flush loop: it sleeps until the oldest queued report
// has waited MaxDelay (or a size-triggered wake) and flushes.
func (b *Batcher) run() {
	defer b.wg.Done()
	timer := time.NewTimer(b.cfg.MaxDelay)
	defer timer.Stop()
	for {
		b.mu.Lock()
		wait := b.cfg.MaxDelay
		if len(b.queue) > 0 {
			if d := b.cfg.MaxDelay - time.Since(b.oldest); d < wait {
				wait = d
			}
		}
		b.mu.Unlock()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-b.done:
			return
		case <-b.wake:
		case <-timer.C:
		}
		b.mu.Lock()
		due := len(b.queue) >= b.cfg.MaxBatch ||
			(len(b.queue) > 0 && time.Since(b.oldest) >= b.cfg.MaxDelay)
		b.mu.Unlock()
		if due {
			// Failures are recorded in lastErr (and reported via OnError)
			// inside flushNow; the queue keeps the unshipped reports.
			b.flushNow(true)
		}
	}
}

// flushNow drains the queue through the Flush hook in MaxBatch-sized
// slices. On failure the unshipped remainder (including the failed batch)
// stays queued, oldest first, so a transient transport error loses nothing.
// A background caller (the timer goroutine discards the return value) sets
// background so the failure parks in lastErr and surfaces on the next
// synchronous Flush/Close; a synchronous caller gets it returned directly
// and exactly once.
func (b *Batcher) flushNow(background bool) error {
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	for {
		b.mu.Lock()
		if len(b.queue) == 0 {
			err := b.lastErr
			b.lastErr = nil
			b.mu.Unlock()
			return err
		}
		n := len(b.queue)
		if n > b.cfg.MaxBatch {
			n = b.cfg.MaxBatch
		}
		batch := make([]mechanism.Report, n)
		copy(batch, b.queue)
		b.mu.Unlock()

		err := b.cfg.Flush(batch)

		b.mu.Lock()
		if err != nil {
			if background {
				b.lastErr = err
			}
			b.mu.Unlock()
			if b.cfg.OnError != nil {
				b.cfg.OnError(err)
			}
			return err
		}
		// Drop the shipped prefix; Adds that ran during the Flush appended
		// behind it and survive for the next iteration.
		b.queue = append(b.queue[:0], b.queue[n:]...)
		if len(b.queue) > 0 {
			b.oldest = time.Now()
		}
		b.notFull.Broadcast()
		b.mu.Unlock()
	}
}
