// Package aggregate provides the concurrent report-accumulation substrate of
// the collector: a bucket histogram striped across shards of atomic counters
// so that millions of clients can ingest concurrently without a global lock,
// while the estimator takes non-blocking snapshots.
//
// The design follows the striped-counter pattern: each shard owns a separate
// counter array (its own allocation, so shards do not share cache lines),
// and every ingestion increments exactly one atomic counter in one shard.
// Shard selection is cached per-P through a sync.Pool, which gives each
// processor an affine shard under load — the common case is an uncontended
// atomic add to a processor-local line. Snapshots sum the stripes with
// atomic loads and therefore never block writers; a snapshot taken during
// ingestion reflects every report that completed before the call, possibly
// some in-flight ones, and is always internally consistent (its total equals
// the sum of its buckets). No report is ever lost.
package aggregate

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// shard is one stripe: a private histogram plus its running total. The pad
// keeps the hot n counters of adjacent shards on distinct cache lines.
type shard struct {
	n      atomic.Uint64
	_      [56]byte
	counts []atomic.Uint64
}

// Striped is a sharded histogram of report counts. All methods are safe for
// concurrent use. A Striped must not be copied after first use.
type Striped struct {
	buckets int
	shards  []shard
	next    atomic.Uint32
	hint    sync.Pool // *uint32 shard indices with per-P affinity
}

// DefaultShards returns the automatic stripe count: the smallest power of
// two ≥ runtime.NumCPU(), so stripes spread across processors without
// over-allocating on small machines.
func DefaultShards() int {
	s := 1
	for s < runtime.NumCPU() {
		s <<= 1
	}
	return s
}

// New builds a striped histogram with the given bucket count; shards <= 0
// selects DefaultShards().
func New(buckets, shards int) *Striped {
	if buckets < 1 {
		panic(fmt.Sprintf("aggregate: need at least 1 bucket, got %d", buckets))
	}
	if shards <= 0 {
		shards = DefaultShards()
	}
	s := &Striped{buckets: buckets, shards: make([]shard, shards)}
	for i := range s.shards {
		s.shards[i].counts = make([]atomic.Uint64, buckets)
	}
	s.hint.New = func() any {
		id := new(uint32)
		*id = s.next.Add(1) % uint32(len(s.shards))
		return id
	}
	return s
}

// Buckets returns the histogram granularity.
func (s *Striped) Buckets() int { return s.buckets }

// Shards returns the stripe count.
func (s *Striped) Shards() int { return len(s.shards) }

// Add records one report in the given bucket. It panics if bucket is out of
// range.
func (s *Striped) Add(bucket int) {
	id := s.hint.Get().(*uint32)
	sh := &s.shards[*id]
	sh.counts[bucket].Add(1)
	sh.n.Add(1)
	s.hint.Put(id)
}

// AddN records n reports in the given bucket (merges, replays).
func (s *Striped) AddN(bucket int, n uint64) {
	if n == 0 {
		return
	}
	id := s.hint.Get().(*uint32)
	sh := &s.shards[*id]
	sh.counts[bucket].Add(n)
	sh.n.Add(n)
	s.hint.Put(id)
}

// AddBatch records one report per bucket index, resolving the shard once for
// the whole batch.
func (s *Striped) AddBatch(buckets []int) {
	if len(buckets) == 0 {
		return
	}
	id := s.hint.Get().(*uint32)
	sh := &s.shards[*id]
	for _, b := range buckets {
		sh.counts[b].Add(1)
	}
	sh.n.Add(uint64(len(buckets)))
	s.hint.Put(id)
}

// N returns the total number of reports recorded. It costs one atomic load
// per shard, not per bucket.
func (s *Striped) N() int {
	var n uint64
	for i := range s.shards {
		n += s.shards[i].n.Load()
	}
	return int(n)
}

// Cell returns the count of one bucket. It costs one atomic load per
// shard — the cheap path for callers that need a single cell (e.g. the
// user-marker cell of fan-out LDP mechanisms) without a full Snapshot.
func (s *Striped) Cell(bucket int) int {
	if bucket < 0 || bucket >= s.buckets {
		panic(fmt.Sprintf("aggregate: bucket %d outside [0, %d)", bucket, s.buckets))
	}
	var n uint64
	for i := range s.shards {
		n += s.shards[i].counts[bucket].Load()
	}
	return int(n)
}

// Snapshot sums the stripes into a dense float64 histogram — the shape the
// EM reconstruction consumes — and returns it with its total count. dst is
// reused when it has the right length (its contents are overwritten);
// passing nil allocates. Snapshot never blocks writers; its total always
// equals the sum of the returned buckets.
func (s *Striped) Snapshot(dst []float64) ([]float64, int) {
	if len(dst) != s.buckets {
		dst = make([]float64, s.buckets)
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	var n uint64
	for i := range s.shards {
		counts := s.shards[i].counts
		for b := range counts {
			c := counts[b].Load()
			if c != 0 {
				dst[b] += float64(c)
				n += c
			}
		}
	}
	return dst, int(n)
}

// AddCounts folds a dense histogram into s in one pass (federation deltas,
// snapshot restores): the shard is resolved once for the whole histogram and
// zero cells cost nothing, so merging a delta is O(nonzero buckets) atomic
// adds rather than one shard lookup per bucket.
func (s *Striped) AddCounts(counts []uint64) error {
	if len(counts) != s.buckets {
		return fmt.Errorf("aggregate: add granularity mismatch (%d vs %d buckets)",
			len(counts), s.buckets)
	}
	id := s.hint.Get().(*uint32)
	sh := &s.shards[*id]
	var n uint64
	for b, c := range counts {
		if c != 0 {
			sh.counts[b].Add(c)
			n += c
		}
	}
	sh.n.Add(n)
	s.hint.Put(id)
	return nil
}

// Merge folds a snapshot of other into s (e.g. per-datacenter stripes
// merging before reconstruction). The bucket counts must match.
func (s *Striped) Merge(other *Striped) error {
	if other.buckets != s.buckets {
		return fmt.Errorf("aggregate: merge granularity mismatch (%d vs %d buckets)",
			other.buckets, s.buckets)
	}
	id := s.hint.Get().(*uint32)
	sh := &s.shards[*id]
	var n uint64
	for i := range other.shards {
		counts := other.shards[i].counts
		for b := range counts {
			if c := counts[b].Load(); c != 0 {
				sh.counts[b].Add(c)
				n += c
			}
		}
	}
	sh.n.Add(n)
	s.hint.Put(id)
	return nil
}

// Reset zeroes every stripe. Reset concurrent with ingestion is safe but not
// linearizable: reports racing with the reset land in either the old or the
// new epoch.
func (s *Striped) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		for b := range sh.counts {
			sh.counts[b].Store(0)
		}
		sh.n.Store(0)
	}
}
