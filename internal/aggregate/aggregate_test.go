package aggregate

import (
	"sync"
	"testing"
)

func TestAddSnapshotRoundTrip(t *testing.T) {
	s := New(8, 4)
	s.Add(0)
	s.Add(0)
	s.Add(7)
	s.AddN(3, 5)
	s.AddBatch([]int{1, 1, 2})
	counts, n := s.Snapshot(nil)
	if n != 11 || s.N() != 11 {
		t.Fatalf("n = %d (N() = %d), want 11", n, s.N())
	}
	want := []float64{2, 2, 1, 5, 0, 0, 0, 1}
	for b, w := range want {
		if counts[b] != w {
			t.Errorf("bucket %d = %v, want %v", b, counts[b], w)
		}
	}
	// Snapshot into a reused buffer overwrites it.
	reused := []float64{9, 9, 9, 9, 9, 9, 9, 9}
	counts2, _ := s.Snapshot(reused)
	if &counts2[0] != &reused[0] {
		t.Error("Snapshot did not reuse the buffer")
	}
	for b, w := range want {
		if counts2[b] != w {
			t.Errorf("reused bucket %d = %v, want %v", b, counts2[b], w)
		}
	}
}

func TestConcurrentAddsNeverLoseReports(t *testing.T) {
	const (
		workers   = 16
		perWorker = 5000
		buckets   = 64
	)
	s := New(buckets, 8)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			batch := make([]int, 0, 10)
			for i := 0; i < perWorker; i++ {
				b := (id*perWorker + i) % buckets
				if i%3 == 0 {
					batch = append(batch, b)
					if len(batch) == cap(batch) {
						s.AddBatch(batch)
						batch = batch[:0]
					}
				} else {
					s.Add(b)
				}
			}
			s.AddBatch(batch)
		}(w)
	}
	// Concurrent snapshots must never block or observe an inconsistent
	// total.
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]float64, buckets)
		for i := 0; i < 200; i++ {
			counts, n := s.Snapshot(buf)
			var sum float64
			for _, c := range counts {
				sum += c
			}
			if int(sum) != n {
				t.Errorf("snapshot total %d != bucket sum %v", n, sum)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if s.N() != workers*perWorker {
		t.Fatalf("N = %d, want %d", s.N(), workers*perWorker)
	}
	counts, n := s.Snapshot(nil)
	if n != workers*perWorker {
		t.Fatalf("snapshot n = %d, want %d", n, workers*perWorker)
	}
	per := float64(workers * perWorker / buckets)
	for b, c := range counts {
		if c != per {
			t.Errorf("bucket %d = %v, want %v", b, c, per)
		}
	}
}

func TestMergeAndReset(t *testing.T) {
	a := New(4, 2)
	b := New(4, 3)
	a.Add(0)
	b.Add(1)
	b.AddN(2, 3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	counts, n := a.Snapshot(nil)
	if n != 5 {
		t.Fatalf("merged n = %d, want 5", n)
	}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 3 {
		t.Errorf("merged counts = %v", counts)
	}
	if err := a.Merge(New(8, 1)); err == nil {
		t.Error("granularity mismatch accepted")
	}
	a.Reset()
	if a.N() != 0 {
		t.Errorf("N after reset = %d", a.N())
	}
	if _, n := a.Snapshot(nil); n != 0 {
		t.Errorf("snapshot after reset n = %d", n)
	}
}

func TestDefaults(t *testing.T) {
	s := New(16, 0)
	if s.Shards() < 1 || s.Shards()&(s.Shards()-1) != 0 {
		t.Errorf("default shard count %d is not a power of two", s.Shards())
	}
	if s.Buckets() != 16 {
		t.Errorf("buckets = %d", s.Buckets())
	}
}

func TestAddCounts(t *testing.T) {
	s := New(4, 2)
	s.Add(1)
	if err := s.AddCounts([]uint64{5, 0, 0, 2}); err != nil {
		t.Fatal(err)
	}
	if got := s.N(); got != 8 {
		t.Fatalf("N = %d, want 8", got)
	}
	hist, n := s.Snapshot(nil)
	if n != 8 || hist[0] != 5 || hist[1] != 1 || hist[3] != 2 {
		t.Fatalf("snapshot %v (n=%d)", hist, n)
	}
	if err := s.AddCounts([]uint64{1}); err == nil {
		t.Fatal("wrong-width AddCounts accepted")
	}
}
