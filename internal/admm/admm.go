// Package admm implements HH-ADMM (Section 4.3, Algorithm 2): post-
// processing of hierarchical histogram estimates with the Alternating
// Direction Method of Multipliers, enforcing simultaneously
//
//   - hierarchical consistency (A·x̂ = 0: every parent equals the sum of its
//     children),
//   - non-negativity, and
//   - the known total (the root equals 1 — in LDP the population size is
//     public, so each level must sum to 1).
//
// The L2 objective ½‖x̂ − x̃‖² is the MLE under the approximately Gaussian
// CFO noise. The splitting follows the paper's Algorithm 2 with ρ = 1:
// Π_C is the exact consistency projection (Hay's two-pass algorithm,
// hierarchy.Estimate.ConstrainedInference) and Π_N+ is per-level Norm-Sub.
package admm

import (
	"fmt"
	"math"

	"repro/internal/hierarchy"
	"repro/internal/postprocess"
)

// Options configures the ADMM loop.
type Options struct {
	// MaxIters caps the number of ADMM iterations. Defaults to 200.
	MaxIters int
	// Tol stops the loop once the largest entry-wise change of x̂ between
	// iterations falls below it. Defaults to 1e-7.
	Tol float64
	// Rho is the augmented-Lagrangian penalty parameter. The paper sets
	// ρ = 1 (the default); it affects convergence speed, not the fixed
	// point.
	Rho float64
}

func (o *Options) fillDefaults() {
	if o.MaxIters <= 0 {
		o.MaxIters = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	if o.Rho <= 0 {
		o.Rho = 1
	}
}

// Result reports the post-processed hierarchy and loop statistics.
type Result struct {
	// Estimate holds the post-processed levels (consistent, non-negative
	// up to Tol, each level summing to 1).
	Estimate *hierarchy.Estimate
	// Iterations performed.
	Iterations int
	// Converged reports whether Tol was reached before MaxIters.
	Converged bool
}

type vec struct {
	tree   hierarchy.Tree
	levels [][]float64
}

func newVec(t hierarchy.Tree) vec { return vec{tree: t, levels: t.NewLevels()} }

func cloneVec(t hierarchy.Tree, src [][]float64) vec {
	v := newVec(t)
	for l := range src {
		copy(v.levels[l], src[l])
	}
	return v
}

// apply sets dst[l][i] = f(l, i) over all nodes.
func (v vec) apply(f func(l, i int) float64) {
	for l := range v.levels {
		for i := range v.levels[l] {
			v.levels[l][i] = f(l, i)
		}
	}
}

// maxDiff returns the largest |v − o| entry.
func (v vec) maxDiff(o vec) float64 {
	var worst float64
	for l := range v.levels {
		for i := range v.levels[l] {
			d := v.levels[l][i] - o.levels[l][i]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// projectConsistency is Π_C: the exact L2 projection onto {A·x = 0}.
func projectConsistency(t hierarchy.Tree, levels [][]float64) [][]float64 {
	est := &hierarchy.Estimate{Tree: t, Levels: levels}
	return est.ConstrainedInference().Levels
}

// projectSimplexPerLevel is Π_N+: project every level onto the scaled
// simplex {non-negative, sums to 1} with Norm-Sub; the root is pinned to 1.
func projectSimplexPerLevel(t hierarchy.Tree, levels [][]float64) [][]float64 {
	out := make([][]float64, len(levels))
	for l := range levels {
		out[l] = postprocess.NormSub(levels[l])
	}
	return out
}

// PostProcess runs Algorithm 2 on a raw hierarchy estimate and returns the
// improved, constraint-satisfying estimate. The input estimate is not
// modified. Non-finite inputs fail fast (a NaN would otherwise propagate
// silently through every projection).
func PostProcess(raw *hierarchy.Estimate, opts Options) Result {
	opts.fillDefaults()
	t := raw.Tree
	t.CheckLevels(raw.Levels)
	for l, level := range raw.Levels {
		for i, v := range level {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				panic(fmt.Sprintf("admm: non-finite input %v at level %d index %d", v, l, i))
			}
		}
	}

	xTilde := cloneVec(t, raw.Levels)
	x := cloneVec(t, raw.Levels)
	y := newVec(t)
	var z, w vec
	mu := newVec(t)
	nu := newVec(t)
	eta := newVec(t)

	res := Result{}
	prev := cloneVec(t, x.levels)
	for iter := 1; iter <= opts.MaxIters; iter++ {
		res.Iterations = iter

		// y-update: argmin ½‖y‖² + ρ/2‖x − x̃ − y + µ‖²
		//   ⇒  y = ρ/(1+ρ)·(x − x̃ + µ), which is /2 at the paper's ρ = 1.
		yScale := opts.Rho / (1 + opts.Rho)
		y.apply(func(l, i int) float64 {
			return yScale * (x.levels[l][i] - xTilde.levels[l][i] + mu.levels[l][i])
		})

		// z-update: Π_C(x + ν).
		tmp := newVec(t)
		tmp.apply(func(l, i int) float64 { return x.levels[l][i] + nu.levels[l][i] })
		z = vec{tree: t, levels: projectConsistency(t, tmp.levels)}

		// w-update: Π_N+(x + η).
		tmp2 := newVec(t)
		tmp2.apply(func(l, i int) float64 { return x.levels[l][i] + eta.levels[l][i] })
		w = vec{tree: t, levels: projectSimplexPerLevel(t, tmp2.levels)}

		// x-update: average of the three consensus terms.
		x.apply(func(l, i int) float64 {
			return ((y.levels[l][i] + xTilde.levels[l][i] - mu.levels[l][i]) +
				(z.levels[l][i] - nu.levels[l][i]) +
				(w.levels[l][i] - eta.levels[l][i])) / 3
		})

		// Dual updates.
		mu.apply(func(l, i int) float64 {
			return mu.levels[l][i] + x.levels[l][i] - xTilde.levels[l][i] - y.levels[l][i]
		})
		nu.apply(func(l, i int) float64 {
			return nu.levels[l][i] + x.levels[l][i] - z.levels[l][i]
		})
		eta.apply(func(l, i int) float64 {
			return eta.levels[l][i] + x.levels[l][i] - w.levels[l][i]
		})

		if x.maxDiff(prev) < opts.Tol {
			res.Converged = true
			break
		}
		prev = cloneVec(t, x.levels)
	}

	// Final feasibility polish: the ADMM iterate satisfies the constraints
	// only in the limit; land exactly on them by one consistency
	// projection followed by per-level Norm-Sub of the leaves propagated
	// upward.
	final := projectConsistency(t, x.levels)
	leaves := postprocess.NormSub(final[t.Height()])
	res.Estimate = &hierarchy.Estimate{Tree: t, Levels: t.TrueLevels(leaves)}
	return res
}

// Distribution runs PostProcess and returns just the leaf distribution —
// the HH-ADMM method's final output, a valid probability distribution over
// the leaf domain.
func Distribution(raw *hierarchy.Estimate, opts Options) []float64 {
	return PostProcess(raw, opts).Estimate.Leaves()
}
