package admm

import (
	"math"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/randx"
)

// noisyEstimate builds a ground-truth hierarchy and a noisy observation of
// it with i.i.d. Gaussian noise of the given sigma.
func noisyEstimate(d, beta int, sigma float64, rng *randx.Rand) (truth []float64, est *hierarchy.Estimate) {
	t := hierarchy.NewTree(d, beta)
	truth = make([]float64, d)
	for i := range truth {
		x := float64(i)/float64(d) - 0.4
		truth[i] = math.Exp(-25*x*x) + 0.05
	}
	mathx.Normalize(truth)
	levels := t.TrueLevels(truth)
	noisy := t.NewLevels()
	noisy[0][0] = 1 // root is public
	for l := 1; l < len(levels); l++ {
		for i := range levels[l] {
			noisy[l][i] = levels[l][i] + rng.Normal(0, sigma)
		}
	}
	return truth, &hierarchy.Estimate{Tree: t, Levels: noisy}
}

func TestPostProcessSatisfiesAllConstraints(t *testing.T) {
	rng := randx.New(1)
	_, est := noisyEstimate(64, 4, 0.02, rng)
	res := PostProcess(est, Options{})
	out := res.Estimate

	if resid := out.Tree.ConsistencyResidual(out.Levels); resid > 1e-9 {
		t.Errorf("consistency residual = %v", resid)
	}
	for l, level := range out.Levels {
		var sum float64
		for _, v := range level {
			if v < -1e-9 {
				t.Errorf("level %d has negative entry %v", l, v)
			}
			sum += v
		}
		if !mathx.AlmostEqual(sum, 1, 1e-6) {
			t.Errorf("level %d sums to %v", l, sum)
		}
	}
}

func TestPostProcessImprovesOverRawAndCI(t *testing.T) {
	// Averaged over seeds, ADMM post-processing must beat both the raw
	// leaves and plain constrained inference on Wasserstein distance (the
	// non-negativity information is worth something).
	var rawW1, ciW1, admmW1 float64
	const runs = 10
	for run := 0; run < runs; run++ {
		rng := randx.New(uint64(10 + run))
		truth, est := noisyEstimate(64, 4, 0.03, rng)
		rawW1 += metrics.Wasserstein(truth, clampToDist(est.Leaves()))
		ciW1 += metrics.Wasserstein(truth, clampToDist(est.ConstrainedInference().Leaves()))
		admmW1 += metrics.Wasserstein(truth, Distribution(est, Options{}))
	}
	if admmW1 >= ciW1 {
		t.Errorf("ADMM W1 %v should beat CI W1 %v", admmW1/runs, ciW1/runs)
	}
	if admmW1 >= rawW1 {
		t.Errorf("ADMM W1 %v should beat raw W1 %v", admmW1/runs, rawW1/runs)
	}
}

// clampToDist makes a crude valid distribution out of raw leaves so the
// comparison in the test above is apples-to-apples.
func clampToDist(leaves []float64) []float64 {
	out := make([]float64, len(leaves))
	for i, v := range leaves {
		if v > 0 {
			out[i] = v
		}
	}
	mathx.Normalize(out)
	return out
}

func TestPostProcessNoNoiseIsIdentity(t *testing.T) {
	// With a perfectly consistent, non-negative input, ADMM must not move
	// the estimate (it is already the constrained optimum).
	rng := randx.New(3)
	truth, _ := noisyEstimate(16, 4, 0, rng)
	tr := hierarchy.NewTree(16, 4)
	est := &hierarchy.Estimate{Tree: tr, Levels: tr.TrueLevels(truth)}
	out := Distribution(est, Options{})
	if got := mathx.L1(out, truth); got > 1e-6 {
		t.Errorf("noise-free ADMM moved the estimate by L1 %v", got)
	}
}

func TestPostProcessConverges(t *testing.T) {
	rng := randx.New(4)
	_, est := noisyEstimate(64, 4, 0.02, rng)
	res := PostProcess(est, Options{MaxIters: 2000, Tol: 1e-8})
	if !res.Converged {
		t.Errorf("ADMM did not converge in %d iterations", res.Iterations)
	}
}

func TestPostProcessRespectsMaxIters(t *testing.T) {
	rng := randx.New(5)
	_, est := noisyEstimate(64, 4, 0.05, rng)
	res := PostProcess(est, Options{MaxIters: 3, Tol: 1e-300})
	if res.Iterations != 3 {
		t.Errorf("Iterations = %d, want 3", res.Iterations)
	}
	if res.Converged {
		t.Error("should not report convergence")
	}
}

func TestPostProcessDoesNotModifyInput(t *testing.T) {
	rng := randx.New(6)
	_, est := noisyEstimate(16, 4, 0.05, rng)
	before := make([][]float64, len(est.Levels))
	for l := range est.Levels {
		before[l] = append([]float64(nil), est.Levels[l]...)
	}
	PostProcess(est, Options{})
	for l := range est.Levels {
		if mathx.L1(before[l], est.Levels[l]) != 0 {
			t.Fatal("PostProcess modified its input")
		}
	}
}

func TestDistributionIsValid(t *testing.T) {
	rng := randx.New(7)
	_, est := noisyEstimate(256, 4, 0.04, rng)
	dist := Distribution(est, Options{})
	if !mathx.IsDistribution(dist, 1e-9) {
		t.Error("Distribution output is not a valid distribution")
	}
	if len(dist) != 256 {
		t.Errorf("length = %d", len(dist))
	}
}

func TestEndToEndHHADMM(t *testing.T) {
	// Full protocol: HH collection under LDP then ADMM post-processing,
	// compared against the uniform baseline.
	const d = 64
	rng := randx.New(8)
	weights := make([]float64, d)
	for i := range weights {
		x := float64(i)/d - 0.5
		weights[i] = math.Exp(-30 * x * x)
	}
	alias := randx.NewAlias(weights)
	values := make([]int, 100000)
	truth := make([]float64, d)
	for i := range values {
		v := alias.Draw(rng)
		values[i] = v
		truth[v]++
	}
	mathx.Normalize(truth)

	hh := hierarchy.NewHH(d, 4, 1)
	raw := hh.Collect(values, rng)
	dist := Distribution(raw, Options{})

	uniform := make([]float64, d)
	for i := range uniform {
		uniform[i] = 1.0 / d
	}
	gotW1 := metrics.Wasserstein(truth, dist)
	baseW1 := metrics.Wasserstein(truth, uniform)
	if gotW1 > baseW1/3 {
		t.Errorf("HH-ADMM W1 = %v vs uniform %v; expected ≥3x improvement", gotW1, baseW1)
	}
}

func BenchmarkPostProcess256(b *testing.B) {
	rng := randx.New(1)
	_, est := noisyEstimate(256, 4, 0.03, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PostProcess(est, Options{MaxIters: 100})
	}
}

func TestRhoDoesNotChangeFixedPoint(t *testing.T) {
	// ADMM converges to the same constrained optimum for any penalty ρ.
	rng := randx.New(9)
	_, est := noisyEstimate(64, 4, 0.03, rng)
	a := Distribution(est, Options{MaxIters: 2000, Tol: 1e-9, Rho: 1})
	b := Distribution(est, Options{MaxIters: 2000, Tol: 1e-9, Rho: 4})
	if got := mathx.L1(a, b); got > 1e-3 {
		t.Errorf("rho=1 and rho=4 fixed points differ by L1 %v", got)
	}
}

func TestPostProcessRejectsNonFiniteInput(t *testing.T) {
	rng := randx.New(10)
	_, est := noisyEstimate(16, 4, 0.05, rng)
	est.Levels[2][3] = math.NaN()
	defer func() {
		if recover() == nil {
			t.Error("NaN input should panic")
		}
	}()
	PostProcess(est, Options{})
}
