// Package multiattr collects several numerical attributes from the same
// population under a single ε-LDP budget. The standard construction (used by
// the multi-dimensional analytical-query systems the paper cites [33]) is
// attribute sampling: each user is assigned one attribute uniformly at
// random and spends the entire budget reporting that attribute through the
// Square Wave mechanism. Compared to splitting ε across the k attributes,
// sampling trades a k-fold smaller per-attribute population for full-budget
// (much lower-noise) reports — the same population-vs-budget trade-off that
// favors population division in the hierarchy protocols (Section 4.2).
package multiattr

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/mathx"
	"repro/internal/randx"
	"repro/internal/sw"
)

// Record is one user's private values, one per attribute.
type Record []float64

// Config parameterizes a multi-attribute round.
type Config struct {
	// Epsilon is the per-user LDP budget. Required.
	Epsilon float64
	// Attributes is the number of attributes k. Required.
	Attributes int
	// Buckets is the per-attribute reconstruction granularity.
	// Defaults to 256.
	Buckets int
}

func (c *Config) fillDefaults() {
	if c.Epsilon <= 0 {
		panic("multiattr: epsilon must be positive")
	}
	if c.Attributes < 1 {
		panic("multiattr: need at least one attribute")
	}
	if c.Buckets <= 0 {
		c.Buckets = 256
	}
}

// Result holds the per-attribute reconstructions.
type Result struct {
	// Distributions[a] is the estimated distribution of attribute a.
	Distributions [][]float64
	// Counts[a] is the number of users sampled to attribute a.
	Counts []int
}

// Collect runs a full multi-attribute round: every record is assigned one
// attribute uniformly at random, the user reports that attribute's value
// through SW at the full budget, and each attribute's report pool is
// reconstructed with EMS.
func Collect(records []Record, cfg Config, rng *randx.Rand) *Result {
	cfg.fillDefaults()
	if len(records) == 0 {
		panic("multiattr: no records")
	}
	w := sw.NewSquare(cfg.Epsilon)
	d := cfg.Buckets
	span := 1 + 2*w.B()

	counts := make([][]float64, cfg.Attributes)
	for a := range counts {
		counts[a] = make([]float64, d)
	}
	n := make([]int, cfg.Attributes)
	for i, rec := range records {
		if len(rec) != cfg.Attributes {
			panic(fmt.Sprintf("multiattr: record %d has %d attributes, want %d",
				i, len(rec), cfg.Attributes))
		}
		a := rng.IntN(cfg.Attributes)
		n[a]++
		vt := w.Sample(mathx.Clamp(rec[a], 0, 1), rng)
		j := int((vt - w.OutLo()) / span * float64(d))
		counts[a][mathx.ClampInt(j, 0, d-1)]++
	}

	m := w.TransitionMatrix(d, d)
	res := &Result{Distributions: make([][]float64, cfg.Attributes), Counts: n}
	for a := 0; a < cfg.Attributes; a++ {
		if n[a] == 0 {
			uniform := make([]float64, d)
			for i := range uniform {
				uniform[i] = 1 / float64(d)
			}
			res.Distributions[a] = uniform
			continue
		}
		res.Distributions[a] = em.Reconstruct(m, counts[a], em.EMSOptions()).Estimate
	}
	return res
}

// CollectBudgetSplit is the alternative accounting: every user reports every
// attribute, each at ε/k. Provided for the ablation; attribute sampling
// (Collect) should dominate for k ≥ 2 under LDP noise levels.
func CollectBudgetSplit(records []Record, cfg Config, rng *randx.Rand) *Result {
	cfg.fillDefaults()
	if len(records) == 0 {
		panic("multiattr: no records")
	}
	perEps := cfg.Epsilon / float64(cfg.Attributes)
	res := &Result{
		Distributions: make([][]float64, cfg.Attributes),
		Counts:        make([]int, cfg.Attributes),
	}
	for a := 0; a < cfg.Attributes; a++ {
		values := make([]float64, len(records))
		for i, rec := range records {
			if len(rec) != cfg.Attributes {
				panic(fmt.Sprintf("multiattr: record %d has %d attributes, want %d",
					i, len(rec), cfg.Attributes))
			}
			values[i] = rec[a]
		}
		res.Counts[a] = len(records)
		res.Distributions[a] = core.Run(core.Config{
			Epsilon: perEps, Buckets: cfg.Buckets, Smoothing: true,
		}, values, rng)
	}
	return res
}
