package multiattr

import (
	"testing"

	"repro/internal/histogram"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/randx"
)

// genRecords builds n records with 3 attributes of distinct shapes and
// returns the records plus each attribute's true distribution at d buckets.
func genRecords(n, d int, rng *randx.Rand) ([]Record, [][]float64) {
	truth := make([][]float64, 3)
	hists := make([]*histogram.Histogram, 3)
	for a := range hists {
		hists[a] = histogram.New(d)
	}
	records := make([]Record, n)
	for i := range records {
		r := Record{
			rng.Beta(5, 2),                          // right-skewed
			rng.Beta(2, 5),                          // left-skewed
			mathx.Clamp(rng.Normal(0.5, 0.1), 0, 1), // central bump
		}
		records[i] = r
		for a, v := range r {
			hists[a].Add(v)
		}
	}
	for a := range truth {
		truth[a] = hists[a].Distribution()
	}
	return records, truth
}

func TestCollectRecoversEachAttribute(t *testing.T) {
	rng := randx.New(1)
	const n, d = 60000, 64
	records, truth := genRecords(n, d, rng)
	res := Collect(records, Config{Epsilon: 1, Attributes: 3, Buckets: d}, rng)

	if len(res.Distributions) != 3 {
		t.Fatalf("got %d attribute estimates", len(res.Distributions))
	}
	total := 0
	for a, dist := range res.Distributions {
		if !mathx.IsDistribution(dist, 1e-9) {
			t.Errorf("attribute %d estimate invalid", a)
		}
		if w1 := metrics.Wasserstein(truth[a], dist); w1 > 0.03 {
			t.Errorf("attribute %d W1 = %v", a, w1)
		}
		total += res.Counts[a]
	}
	if total != n {
		t.Errorf("sampled counts sum to %d, want %d", total, n)
	}
	// Sampling is roughly uniform across attributes.
	for a, c := range res.Counts {
		if c < n/3-2000 || c > n/3+2000 {
			t.Errorf("attribute %d sampled %d users, want ≈ %d", a, c, n/3)
		}
	}
}

func TestSamplingBeatsBudgetSplit(t *testing.T) {
	// The design rationale: at k = 3 attributes, attribute sampling gives
	// lower average W1 than splitting ε three ways. Averaged over seeds.
	const n, d = 30000, 64
	var sampW1, splitW1 float64
	const runs = 3
	for run := 0; run < runs; run++ {
		rng := randx.New(uint64(10 + run))
		records, truth := genRecords(n, d, rng)
		cfg := Config{Epsilon: 1, Attributes: 3, Buckets: d}
		samp := Collect(records, cfg, rng)
		split := CollectBudgetSplit(records, cfg, rng)
		for a := range truth {
			sampW1 += metrics.Wasserstein(truth[a], samp.Distributions[a])
			splitW1 += metrics.Wasserstein(truth[a], split.Distributions[a])
		}
	}
	if sampW1 >= splitW1 {
		t.Errorf("attribute sampling W1 %v should beat budget split %v",
			sampW1/(3*runs), splitW1/(3*runs))
	}
}

func TestCollectPanics(t *testing.T) {
	rng := randx.New(2)
	cases := []func(){
		func() { Collect(nil, Config{Epsilon: 1, Attributes: 2}, rng) },
		func() { Collect([]Record{{0.5}}, Config{Epsilon: 1, Attributes: 2}, rng) },
		func() { Collect([]Record{{0.5}}, Config{Epsilon: 0, Attributes: 1}, rng) },
		func() { Collect([]Record{{0.5}}, Config{Epsilon: 1, Attributes: 0}, rng) },
		func() { CollectBudgetSplit([]Record{{0.5, 0.5}}, Config{Epsilon: 1, Attributes: 3}, rng) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSingleAttributeMatchesCore(t *testing.T) {
	// k = 1 degenerates to the ordinary pipeline: every user reports the
	// only attribute with the full budget.
	rng := randx.New(3)
	const n, d = 20000, 64
	records, truth := genRecords(n, d, rng)
	single := make([]Record, n)
	for i, r := range records {
		single[i] = Record{r[0]}
	}
	res := Collect(single, Config{Epsilon: 1, Attributes: 1, Buckets: d}, rng)
	if res.Counts[0] != n {
		t.Errorf("Counts[0] = %d", res.Counts[0])
	}
	if w1 := metrics.Wasserstein(truth[0], res.Distributions[0]); w1 > 0.02 {
		t.Errorf("k=1 W1 = %v", w1)
	}
}
