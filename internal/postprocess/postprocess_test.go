package postprocess

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/randx"
)

func TestNormSubAlreadyValid(t *testing.T) {
	x := []float64{0.25, 0.25, 0.5}
	got := NormSub(x)
	for i := range x {
		if !mathx.AlmostEqual(got[i], x[i], 1e-9) {
			t.Errorf("valid distribution changed: %v -> %v", x, got)
		}
	}
}

func TestNormSubClipsNegatives(t *testing.T) {
	// est sums to 1 but has a negative entry: [-0.2, 0.6, 0.6].
	// Norm-Sub: clip -0.2, subtract 0.1 from each positive → [0, 0.5, 0.5].
	got := NormSub([]float64{-0.2, 0.6, 0.6})
	want := []float64{0, 0.5, 0.5}
	for i := range want {
		if !mathx.AlmostEqual(got[i], want[i], 1e-9) {
			t.Errorf("NormSub[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNormSubIterativeCase(t *testing.T) {
	// A case where one round of clip-and-shift creates a new negative:
	// [0.05, 1.2, -0.25]. Sum = 1. First round: clip -0.25, shift 0.125
	// off the two positives: [−0.075, 1.075, 0] → second round needed.
	// Final answer: [0, 1, 0].
	got := NormSub([]float64{0.05, 1.2, -0.25})
	want := []float64{0, 1, 0}
	for i := range want {
		if !mathx.AlmostEqual(got[i], want[i], 1e-9) {
			t.Errorf("NormSub[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNormSubAllNegative(t *testing.T) {
	// The Euclidean projection of an all-negative vector onto the simplex
	// is a point mass at the largest entry.
	got := NormSub([]float64{-3, -1, -2, -4})
	want := []float64{0, 1, 0, 0}
	for i := range want {
		if !mathx.AlmostEqual(got[i], want[i], 1e-9) {
			t.Errorf("all-negative NormSub[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNormSubEmpty(t *testing.T) {
	if got := NormSub(nil); len(got) != 0 {
		t.Errorf("NormSub(nil) = %v", got)
	}
}

func TestNormSubDoesNotModifyInput(t *testing.T) {
	in := []float64{-0.5, 1.5}
	NormSub(in)
	if in[0] != -0.5 || in[1] != 1.5 {
		t.Error("NormSub modified its input")
	}
}

func TestNormSubProperty(t *testing.T) {
	// For arbitrary noisy inputs the output is always a distribution, and
	// the ordering of entries is preserved (NormSub is monotone).
	rng := randx.New(1)
	err := quick.Check(func(seed uint64) bool {
		r := rng.Split(seed)
		est := make([]float64, 24)
		for i := range est {
			est[i] = r.Normal(1.0/24, 0.2)
		}
		out := NormSub(est)
		if !mathx.IsDistribution(out, 1e-9) {
			return false
		}
		for i := range est {
			for j := range est {
				if est[i] > est[j] && out[i] < out[j]-1e-12 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestNormSubIsEuclideanProjection(t *testing.T) {
	// Verify against brute-force projection: for random v, NormSub(v) must
	// be at least as close to v (in L2) as any other simplex point we try.
	rng := randx.New(2)
	for trial := 0; trial < 50; trial++ {
		est := make([]float64, 8)
		for i := range est {
			est[i] = rng.Normal(0.125, 0.3)
		}
		proj := NormSub(est)
		base := mathx.L2(proj, est)
		for probe := 0; probe < 200; probe++ {
			cand := make([]float64, 8)
			for i := range cand {
				cand[i] = rng.Float64()
			}
			mathx.Normalize(cand)
			if mathx.L2(cand, est) < base-1e-9 {
				t.Fatalf("found simplex point closer than NormSub output (trial %d)", trial)
			}
		}
	}
}

func TestNormSubTo(t *testing.T) {
	got := NormSubTo([]float64{-0.4, 1.2, 1.2}, 2)
	if !mathx.AlmostEqual(mathx.Sum(got), 2, 1e-9) {
		t.Errorf("NormSubTo sum = %v, want 2", mathx.Sum(got))
	}
	for _, v := range got {
		if v < 0 {
			t.Errorf("NormSubTo produced negative entry %v", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NormSubTo(_, 0) should panic")
		}
	}()
	NormSubTo([]float64{1}, 0)
}

func TestClipRenorm(t *testing.T) {
	got := ClipRenorm([]float64{-1, 1, 3})
	want := []float64{0, 0.25, 0.75}
	for i := range want {
		if !mathx.AlmostEqual(got[i], want[i], 1e-9) {
			t.Errorf("ClipRenorm[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// All-zero input → uniform fallback via Normalize.
	got = ClipRenorm([]float64{-1, -1})
	if !mathx.AlmostEqual(got[0], 0.5, 1e-12) {
		t.Errorf("ClipRenorm fallback = %v", got)
	}
}

func TestNormSubKeepsLessSupportThanClipRenorm(t *testing.T) {
	// The motivating property: on noise-dominated estimates Norm-Sub
	// zeroes more spurious entries than clip-and-renormalize.
	rng := randx.New(3)
	est := make([]float64, 100)
	est[0] = 0.9
	for i := 1; i < 100; i++ {
		est[i] = rng.Normal(0.001, 0.05)
	}
	ns := NormSub(est)
	cr := ClipRenorm(est)
	nsSupport, crSupport := 0, 0
	for i := range est {
		if ns[i] > 0 {
			nsSupport++
		}
		if cr[i] > 0 {
			crSupport++
		}
	}
	if nsSupport >= crSupport {
		t.Errorf("NormSub support %d should be smaller than ClipRenorm support %d",
			nsSupport, crSupport)
	}
}

func TestSimplexProjectAlias(t *testing.T) {
	in := []float64{0.2, -0.1, 0.9}
	a, b := SimplexProject(in), NormSub(in)
	for i := range a {
		if a[i] != b[i] {
			t.Error("SimplexProject differs from NormSub")
		}
	}
}

func TestNormSubIdempotent(t *testing.T) {
	rng := randx.New(4)
	err := quick.Check(func(seed uint64) bool {
		r := rng.Split(seed)
		est := make([]float64, 16)
		for i := range est {
			est[i] = r.Normal(0, 1)
		}
		once := NormSub(est)
		twice := NormSub(once)
		return mathx.L1(once, twice) < 1e-9
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestNormSubExtremeMagnitudes(t *testing.T) {
	got := NormSub([]float64{1e9, -1e9, 1})
	if !mathx.IsDistribution(got, 1e-6) {
		t.Errorf("extreme input did not project to simplex: %v", got)
	}
	if got[0] < 0.99 {
		t.Errorf("dominant entry should keep nearly all mass: %v", got)
	}
	if math.Abs(got[1]) > 1e-9 {
		t.Errorf("hugely negative entry should be zeroed: %v", got[1])
	}
}

func BenchmarkNormSub1024(b *testing.B) {
	rng := randx.New(5)
	est := make([]float64, 1024)
	for i := range est {
		est[i] = rng.Normal(1.0/1024, 0.01)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NormSub(est)
	}
}

func TestNorm(t *testing.T) {
	got := Norm([]float64{0.5, -0.5, 0.9})
	if !mathx.AlmostEqual(mathx.Sum(got), 1, 1e-12) {
		t.Errorf("Norm sum = %v", mathx.Sum(got))
	}
	// Constant shift: pairwise differences preserved.
	if !mathx.AlmostEqual(got[0]-got[1], 1.0, 1e-12) {
		t.Errorf("Norm changed relative values: %v", got)
	}
	// Negatives may remain (delta = 0.1/3 here, far below 0.5).
	if got[1] >= 0 {
		t.Errorf("Norm should keep the negative entry negative here: %v", got[1])
	}
	if out := Norm(nil); len(out) != 0 {
		t.Errorf("Norm(nil) = %v", out)
	}
}

func TestNormKeepsRangeSumsUnbiasedInExpectation(t *testing.T) {
	// Norm only shifts by a constant, so the sum over any fixed range
	// changes by (width/d)·(1 − total): with an unbiased estimator whose
	// total is 1 in expectation, range sums stay unbiased. Check the
	// mechanics: range sums of Norm(est) equal range sums of est plus the
	// deterministic correction.
	est := []float64{0.3, -0.2, 0.5, 0.2}
	out := Norm(est)
	delta := (1 - mathx.Sum(est)) / 4
	for lo := 0; lo < 4; lo++ {
		for hi := lo + 1; hi <= 4; hi++ {
			var a, b float64
			for i := lo; i < hi; i++ {
				a += est[i]
				b += out[i]
			}
			want := a + float64(hi-lo)*delta
			if !mathx.AlmostEqual(b, want, 1e-12) {
				t.Fatalf("range [%d,%d): %v, want %v", lo, hi, b, want)
			}
		}
	}
}

func TestNormCut(t *testing.T) {
	// Mass exceeds 1: smallest positives are cut, survivors rescaled.
	got := NormCut([]float64{0.9, 0.4, 0.05, -0.3})
	if !mathx.IsDistribution(got, 1e-9) {
		t.Errorf("NormCut output invalid: %v", got)
	}
	if got[2] != 0 || got[3] != 0 {
		t.Errorf("NormCut should cut the smallest positive and the negative: %v", got)
	}
	// The two largest survive with their ratio preserved.
	if !mathx.AlmostEqual(got[0]/got[1], 0.9/0.4, 1e-9) {
		t.Errorf("NormCut distorted the kept ratio: %v", got)
	}
}

func TestNormCutUnderfullMass(t *testing.T) {
	// Positive mass below 1: everything positive is kept and rescaled.
	got := NormCut([]float64{0.3, 0.2, -0.1})
	want := []float64{0.6, 0.4, 0}
	for i := range want {
		if !mathx.AlmostEqual(got[i], want[i], 1e-9) {
			t.Errorf("NormCut[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNormCutAllNegativeFallsBack(t *testing.T) {
	got := NormCut([]float64{-1, -2})
	if !mathx.IsDistribution(got, 1e-9) {
		t.Errorf("fallback output invalid: %v", got)
	}
}

func TestNormCutZeroesTheNoiseTail(t *testing.T) {
	// A dominant spike among noisy small estimates: NormCut keeps a
	// strictly smaller support than the set of positive entries (the
	// smallest positives are cut once the mass budget is reached).
	est := make([]float64, 50)
	est[7] = 0.9
	rng := randx.New(11)
	for i := range est {
		if i != 7 {
			est[i] = rng.Normal(0.01, 0.05)
		}
	}
	positives := 0
	for _, v := range est {
		if v > 0 {
			positives++
		}
	}
	cut := NormCut(est)
	support := 0
	for _, v := range cut {
		if v > 0 {
			support++
		}
	}
	if support >= positives {
		t.Errorf("NormCut support %d should be below positive count %d", support, positives)
	}
	// The spike keeps the dominant share.
	if cut[7] < 0.7 {
		t.Errorf("spike share = %v, want ≥ 0.7", cut[7])
	}
}
