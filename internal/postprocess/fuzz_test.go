package postprocess

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

// FuzzNormSub checks the projection invariants on arbitrary 8-entry inputs:
// output on the simplex, idempotent, monotone in the input ordering.
func FuzzNormSub(f *testing.F) {
	f.Add(0.1, 0.2, 0.3, 0.4, -0.1, 0.0, 1.5, -2.0)
	f.Add(1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
	f.Add(-1.0, -1.0, -1.0, -1.0, -1.0, -1.0, -1.0, -1.0)
	f.Add(1e9, -1e9, 1e-9, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h, i float64) {
		in := []float64{a, b, c, d, e, g, h, i}
		for _, v := range in {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				t.Skip()
			}
		}
		out := NormSub(in)
		if !mathx.IsDistribution(out, 1e-6) {
			t.Fatalf("NormSub(%v) = %v is not a distribution", in, out)
		}
		twice := NormSub(out)
		if mathx.L1(out, twice) > 1e-6 {
			t.Fatalf("NormSub not idempotent on %v", in)
		}
		for x := range in {
			for y := range in {
				if in[x] > in[y] && out[x] < out[y]-1e-9 {
					t.Fatalf("NormSub not monotone on %v", in)
				}
			}
		}
	})
}

// FuzzNormCut checks that the cut normalization always returns a valid
// distribution regardless of input sign pattern.
func FuzzNormCut(f *testing.F) {
	f.Add(0.9, 0.4, 0.05, -0.3)
	f.Add(-1.0, -2.0, -3.0, -4.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		in := []float64{a, b, c, d}
		for _, v := range in {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				t.Skip()
			}
		}
		out := NormCut(in)
		if !mathx.IsDistribution(out, 1e-6) {
			t.Fatalf("NormCut(%v) = %v is not a distribution", in, out)
		}
	})
}
