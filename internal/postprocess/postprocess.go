// Package postprocess implements simplex projections for noisy frequency
// estimates. LDP frequency oracles produce unbiased but noisy estimates that
// are routinely negative and do not sum to one; the paper (Section 4.1,
// following Wang et al. [35]) post-processes them with Norm-Sub so the result
// is a valid probability distribution.
package postprocess

import (
	"math"
	"sort"

	"repro/internal/mathx"
)

// NormSub projects the estimate vector onto the probability simplex using
// the Norm-Sub rule: negative entries are clipped to zero and a constant is
// subtracted from the remaining positive entries so the total becomes 1,
// repeating if the subtraction creates new negative entries. The input is
// not modified; the returned slice is fresh.
//
// Norm-Sub is exactly the Euclidean projection onto the simplex restricted
// to the support it converges to, and is the estimator of choice for CFO
// outputs in the paper.
func NormSub(est []float64) []float64 {
	d := len(est)
	out := make([]float64, d)
	copy(out, est)
	if d == 0 {
		return out
	}
	// Iteratively: find delta such that Σ max(out_i − delta, 0) = 1.
	// The classical simplex-projection algorithm solves this in one pass
	// over the sorted values; iterating the clip-and-shift rule converges
	// to the same fixed point, but the sorted form is O(d log d) and
	// deterministic, so use it directly.
	sorted := append([]float64(nil), out...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var cum float64
	var delta float64
	for i, v := range sorted {
		cum += v
		d := (cum - 1) / float64(i+1)
		if v-d > 0 {
			delta = d
		}
	}
	// The first sorted element always satisfies v − (v−1)/1 = 1 > 0, so
	// delta is always set; an all-negative input projects to a point mass
	// at its largest entry.
	for i := range out {
		out[i] = math.Max(out[i]-delta, 0)
	}
	// Guard against floating-point drift.
	mathx.Normalize(out)
	return out
}

// NormSubInPlace applies the same Norm-Sub projection as NormSub — identical
// results, bit for bit — but writes the projection into est itself and uses
// scratch (which must have the same length as est) for the sorted working
// copy, so the hot oracle-refresh path allocates nothing. The scratch
// contents are destroyed.
func NormSubInPlace(est, scratch []float64) []float64 {
	d := len(est)
	if len(scratch) != d {
		panic("postprocess: NormSubInPlace scratch length mismatch")
	}
	if d == 0 {
		return est
	}
	copy(scratch, est)
	// sort.Float64s is ascending; walking it from the end reproduces the
	// descending delta scan of NormSub term for term.
	sort.Float64s(scratch)
	var cum float64
	var delta float64
	for i := 0; i < d; i++ {
		v := scratch[d-1-i]
		cum += v
		dd := (cum - 1) / float64(i+1)
		if v-dd > 0 {
			delta = dd
		}
	}
	for i := range est {
		est[i] = math.Max(est[i]-delta, 0)
	}
	mathx.Normalize(est)
	return est
}

// NormSubTo applies Norm-Sub with a target total other than 1 (used per
// hierarchy level where each level must sum to the level total). target must
// be positive.
func NormSubTo(est []float64, target float64) []float64 {
	if target <= 0 {
		panic("postprocess: NormSubTo target must be positive")
	}
	scaled := make([]float64, len(est))
	inv := 1 / target
	for i, v := range est {
		scaled[i] = v * inv
	}
	out := NormSub(scaled)
	for i := range out {
		out[i] *= target
	}
	return out
}

// ClipRenorm is the naive baseline projection: clip negatives to zero and
// rescale to sum 1. It keeps more spurious support than Norm-Sub and is
// provided for comparison and tests.
func ClipRenorm(est []float64) []float64 {
	out := make([]float64, len(est))
	for i, v := range est {
		if v > 0 {
			out[i] = v
		}
	}
	mathx.Normalize(out)
	return out
}

// SimplexProject is an alias for NormSub kept for call sites that care about
// the geometric interpretation (Euclidean projection onto the probability
// simplex) rather than the paper's name for it.
func SimplexProject(est []float64) []float64 { return NormSub(est) }

// Norm applies the additive normalization of Wang et al. [35]: a single
// constant is added to every entry so the total becomes 1, keeping negative
// entries. The result is NOT a valid distribution, but it is the estimator
// that keeps range-query answers unbiased (errors on disjoint ranges cancel
// instead of being clipped), which is why [35] recommends it for
// range-query workloads.
func Norm(est []float64) []float64 {
	d := len(est)
	out := make([]float64, d)
	if d == 0 {
		return out
	}
	delta := (1 - mathx.Sum(est)) / float64(d)
	for i, v := range est {
		out[i] = v + delta
	}
	return out
}

// NormCut applies the cut normalization of Wang et al. [35]: negative
// entries are zeroed, then — if the positive mass exceeds 1 — the smallest
// positive entries are cut to zero until the remaining mass is at most 1,
// and the survivors are rescaled to sum to exactly 1. NormCut preserves
// large spikes even more aggressively than Norm-Sub (everything below the
// cut threshold becomes exactly zero) at the cost of bias on the tail.
func NormCut(est []float64) []float64 {
	d := len(est)
	out := make([]float64, d)
	if d == 0 {
		return out
	}
	type entry struct {
		idx int
		v   float64
	}
	positives := make([]entry, 0, d)
	for i, v := range est {
		if v > 0 {
			positives = append(positives, entry{i, v})
		}
	}
	if len(positives) == 0 {
		return NormSub(est) // degenerate: fall back to the projection
	}
	sort.Slice(positives, func(i, j int) bool { return positives[i].v > positives[j].v })
	// Keep the largest entries until their mass reaches 1.
	var mass float64
	kept := 0
	for _, e := range positives {
		if mass >= 1 {
			break
		}
		mass += e.v
		kept++
	}
	for _, e := range positives[:kept] {
		out[e.idx] = e.v
	}
	mathx.Normalize(out)
	return out
}
