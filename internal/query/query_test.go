package query

import (
	"math"
	"testing"
)

// uniformDist returns the uniform distribution over d buckets.
func uniformDist(d int) []float64 {
	out := make([]float64, d)
	for i := range out {
		out[i] = 1 / float64(d)
	}
	return out
}

// triangularDist returns the discretized symmetric triangular distribution
// over [0,1] (density 4x on [0,1/2], 4(1−x) on [1/2,1]) by integrating the
// density over each bucket — so the bucketed CDF agrees with the closed form
// at every bucket boundary.
func triangularDist(d int) []float64 {
	cdf := func(x float64) float64 {
		if x <= 0.5 {
			return 2 * x * x
		}
		return 1 - 2*(1-x)*(1-x)
	}
	out := make([]float64, d)
	for i := range out {
		lo := float64(i) / float64(d)
		hi := float64(i+1) / float64(d)
		out[i] = cdf(hi) - cdf(lo)
	}
	return out
}

// pointMass returns a point mass at bucket i of d.
func pointMass(i, d int) []float64 {
	out := make([]float64, d)
	out[i] = 1
	return out
}

func evalOK(t *testing.T, dist []float64, req Request) Response {
	t.Helper()
	resp, err := Eval(dist, 0, req)
	if err != nil {
		t.Fatalf("Eval(%+v) error: %v", req, err)
	}
	return resp
}

func TestQuantileGolden(t *testing.T) {
	const tol = 1e-12
	cases := []struct {
		name string
		dist []float64
		q    float64
		want float64
	}{
		// Uniform: the β-quantile is β itself, including the endpoints.
		{"uniform q=0", uniformDist(64), 0, 0},
		{"uniform q=0.25", uniformDist(64), 0.25, 0.25},
		{"uniform q=0.5", uniformDist(64), 0.5, 0.5},
		{"uniform q=0.75", uniformDist(64), 0.75, 0.75},
		{"uniform q=1", uniformDist(64), 1, 1},
		// Triangular: closed form Q(β) = sqrt(β/2) for β ≤ 1/2 and
		// 1 − sqrt((1−β)/2) above. Bucket boundaries are exact; interior
		// points carry the piecewise-linear interpolation error O(1/d).
		{"triangular q=0.5", triangularDist(1000), 0.5, 0.5},
		{"triangular q=0.08", triangularDist(1000), 0.08, 0.2}, // 2·0.2² = 0.08
		{"triangular q=0.92", triangularDist(1000), 0.92, 0.8},
		// Point mass at bucket i of d: every interior quantile lies inside
		// bucket i.
		{"point mass q=0.5", pointMass(10, 64), 0.5, (10 + 0.5) / 64.0},
		{"point mass q=1", pointMass(10, 64), 1, (10 + 1.0) / 64.0},
		// Single-bin domain: the only bucket spans all of [0,1].
		{"single bin q=0", []float64{1}, 0, 0},
		{"single bin q=0.5", []float64{1}, 0.5, 0.5},
		{"single bin q=1", []float64{1}, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := evalOK(t, tc.dist, Request{Type: Quantile, Qs: []float64{tc.q}})
			if got := resp.Values[0]; math.Abs(got-tc.want) > tol {
				t.Errorf("quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestCDFGolden(t *testing.T) {
	const tol = 1e-12
	cases := []struct {
		name string
		dist []float64
		at   float64
		want float64
	}{
		{"uniform at 0", uniformDist(64), 0, 0},
		{"uniform at 0.3", uniformDist(64), 0.3, 0.3},
		{"uniform at 1", uniformDist(64), 1, 1},
		{"triangular at 0.25", triangularDist(1000), 0.25, 0.125},
		{"triangular at 0.5", triangularDist(1000), 0.5, 0.5},
		{"triangular at 0.75", triangularDist(1000), 0.75, 0.875},
		// Point mass at bucket 10 of 64 ([10/64, 11/64)): zero before,
		// one after, linear within.
		{"point mass before", pointMass(10, 64), 9.0 / 64, 0},
		{"point mass after", pointMass(10, 64), 12.0 / 64, 1},
		{"point mass inside", pointMass(10, 64), 10.5 / 64, 0.5},
		{"single bin mid", []float64{1}, 0.25, 0.25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := evalOK(t, tc.dist, Request{Type: CDF, Qs: []float64{tc.at}})
			if got := resp.Values[0]; math.Abs(got-tc.want) > tol {
				t.Errorf("cdf(%v) = %v, want %v", tc.at, got, tc.want)
			}
		})
	}
}

func TestRangeMeanVarianceGolden(t *testing.T) {
	const tol = 1e-12
	uni := uniformDist(128)
	if got := evalOK(t, uni, Request{Type: Range, Lo: 0.25, Hi: 0.75}).Value; math.Abs(got-0.5) > tol {
		t.Errorf("uniform range [0.25,0.75] = %v, want 0.5", got)
	}
	if got := evalOK(t, uni, Request{Type: Mean}).Value; math.Abs(got-0.5) > tol {
		t.Errorf("uniform mean = %v, want 0.5", got)
	}
	// histogram.Variance includes the within-bucket term so the uniform
	// variance is exactly 1/12 at any granularity.
	if got := evalOK(t, uni, Request{Type: Variance}).Value; math.Abs(got-1.0/12) > tol {
		t.Errorf("uniform variance = %v, want 1/12", got)
	}
	tri := triangularDist(1000)
	if got := evalOK(t, tri, Request{Type: Mean}).Value; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("triangular mean = %v, want 0.5", got)
	}
	// Degenerate range lo == hi has zero mass.
	if got := evalOK(t, tri, Request{Type: Range, Lo: 0.4, Hi: 0.4}).Value; math.Abs(got) > tol {
		t.Errorf("zero-width range = %v, want 0", got)
	}
	// Full range carries all the mass.
	if got := evalOK(t, tri, Request{Type: Range, Lo: 0, Hi: 1}).Value; math.Abs(got-1) > 1e-9 {
		t.Errorf("full range = %v, want 1", got)
	}
}

func TestTopK(t *testing.T) {
	dist := []float64{0.1, 0.4, 0.1, 0.3, 0.1}
	resp := evalOK(t, dist, Request{Type: TopK, K: 2})
	if len(resp.Bins) != 2 {
		t.Fatalf("topk returned %d bins", len(resp.Bins))
	}
	if resp.Bins[0].Index != 1 || resp.Bins[1].Index != 3 {
		t.Errorf("topk order = [%d %d], want [1 3]", resp.Bins[0].Index, resp.Bins[1].Index)
	}
	if resp.Bins[0].Lo != 0.2 || resp.Bins[0].Hi != 0.4 {
		t.Errorf("top bin bounds = [%v, %v], want [0.2, 0.4]", resp.Bins[0].Lo, resp.Bins[0].Hi)
	}
	// Ties break by lower index; K above the granularity clamps.
	resp = evalOK(t, uniformDist(4), Request{Type: TopK, K: 99})
	if len(resp.Bins) != 4 {
		t.Fatalf("clamped topk returned %d bins", len(resp.Bins))
	}
	for i, b := range resp.Bins {
		if b.Index != i {
			t.Errorf("tie order bin %d has index %d", i, b.Index)
		}
	}
	// With n known, a dominant bin under a wide domain is significant and
	// a uniform bin is not.
	withN, err := Eval([]float64{0.9, 0.05, 0.03, 0.02}, 100, Request{Type: TopK, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p := withN.Bins[0].PValue; p <= 0 || p > 1e-6 {
		t.Errorf("dominant bin p-value = %v, want tiny positive", p)
	}
	if p := withN.Bins[3].PValue; p < 0.5 {
		t.Errorf("light bin p-value = %v, want ≥ 0.5", p)
	}
}

func TestHistogramQuery(t *testing.T) {
	dist := triangularDist(16)
	resp := evalOK(t, dist, Request{Type: Histogram})
	if len(resp.Values) != 16 {
		t.Fatalf("histogram returned %d values", len(resp.Values))
	}
	// The answer is a copy, not an alias.
	resp.Values[0] = 99
	if dist[0] == 99 {
		t.Error("histogram query aliased the input")
	}
}

func TestSignedEstimatePostprocessing(t *testing.T) {
	// A signed estimate (as HH/HaarHRR produce) must be projected before
	// point statistics: quantiles of the prepared vector lie in [0,1] and
	// the top-k masses are non-negative.
	signed := []float64{-0.2, 0.5, 0.4, -0.1, 0.4}
	resp := evalOK(t, signed, Request{Type: Quantile, Qs: []float64{0, 0.5, 1}})
	for _, v := range resp.Values {
		if v < 0 || v > 1 {
			t.Errorf("quantile of signed estimate = %v outside [0,1]", v)
		}
	}
	for _, b := range evalOK(t, signed, Request{Type: TopK, K: 5}).Bins {
		if b.P < 0 {
			t.Errorf("topk bin %d has negative mass %v after projection", b.Index, b.P)
		}
	}
	// Range queries use the additive Norm: the full range still sums to 1.
	if got := evalOK(t, signed, Request{Type: Range, Lo: 0, Hi: 1}).Value; math.Abs(got-1) > 1e-9 {
		t.Errorf("signed full-range mass = %v, want 1", got)
	}
}

func TestEvalErrors(t *testing.T) {
	uni := uniformDist(8)
	cases := []struct {
		name string
		dist []float64
		req  Request
	}{
		{"empty distribution", nil, Request{Type: Mean}},
		{"unknown type", uni, Request{Type: "median"}},
		{"quantile no points", uni, Request{Type: Quantile}},
		{"quantile out of range", uni, Request{Type: Quantile, Qs: []float64{1.5}}},
		{"quantile NaN", uni, Request{Type: Quantile, Qs: []float64{math.NaN()}}},
		{"cdf no points", uni, Request{Type: CDF}},
		{"range inverted", uni, Request{Type: Range, Lo: 0.8, Hi: 0.2}},
		{"range out of domain", uni, Request{Type: Range, Lo: -0.1, Hi: 0.5}},
		{"topk k=0", uni, Request{Type: TopK}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Eval(tc.dist, 0, tc.req); err == nil {
				t.Errorf("Eval(%+v) succeeded, want error", tc.req)
			}
		})
	}
}
