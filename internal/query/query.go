// Package query evaluates analytics queries against a reconstructed
// distribution — the answers the paper's pipeline exists to produce (Section
// 3: range probabilities, quantiles, means and variances), packaged as a
// single typed request/response pair so the HTTP collector, the public
// library API, and the experiment harness all serve exactly the same
// semantics.
//
// Inputs are bucketed estimates over [0,1] as produced by the EMS
// reconstruction (package em via core) or any of the baseline estimators.
// Signed estimates — HH and HaarHRR return vectors with negative entries —
// are post-processed per the paper before evaluation: Norm (additive
// normalization, keeps range queries unbiased) for CDF/range queries,
// Norm-Sub (simplex projection) for point statistics (package postprocess).
package query

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/histogram"
	"repro/internal/postprocess"
	"repro/internal/stats"
)

// Type names a query kind. The string values are the wire names used by the
// HTTP API (GET /query?type=...).
type Type string

// Supported query types.
const (
	// Quantile evaluates the β-quantile for each probability in Qs.
	Quantile Type = "quantile"
	// CDF evaluates the cumulative distribution at each point in Qs.
	CDF Type = "cdf"
	// Range returns the probability mass on [Lo, Hi].
	Range Type = "range"
	// Mean returns the distribution mean.
	Mean Type = "mean"
	// Variance returns the distribution variance.
	Variance Type = "variance"
	// TopK returns the K most probable buckets with their bounds.
	TopK Type = "topk"
	// Histogram returns the full reconstructed distribution.
	Histogram Type = "histogram"
)

// Request is one analytics query.
type Request struct {
	// Type selects the query kind. Required.
	Type Type `json:"type"`
	// Qs carries the probabilities (Quantile) or evaluation points (CDF),
	// each in [0,1].
	Qs []float64 `json:"q,omitempty"`
	// Lo, Hi bound a Range query, Lo ≤ Hi, both in [0,1].
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// K is the bucket count for TopK. Values above the granularity are
	// clamped.
	K int `json:"k,omitempty"`
}

// Bin is one bucket of a TopK answer.
type Bin struct {
	// Index is the bucket position in the d-bucket grid.
	Index int `json:"index"`
	// Lo, Hi are the bucket bounds in [0,1].
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// P is the estimated probability mass of the bucket.
	P float64 `json:"p"`
	// PValue, present when the report count n is known, is the exact
	// binomial tail Pr[X ≥ n·P] for X ~ Binomial(n, 1/d) — how surprising
	// this bucket's mass would be if the true distribution were uniform.
	// It is a heuristic significance score (the reconstruction already
	// denoised the counts), useful for ranking heavy hitters; 0 means "not
	// computed".
	PValue float64 `json:"p_value,omitempty"`
}

// Response is the answer to one Request.
type Response struct {
	// Type echoes the request.
	Type Type `json:"type"`
	// Values holds per-point answers for Quantile and CDF (aligned with
	// Request.Qs) and the full distribution for Histogram.
	Values []float64 `json:"values,omitempty"`
	// Value holds the scalar answer for Range, Mean and Variance. (No
	// omitempty: a range query legitimately answers exactly 0.)
	Value float64 `json:"value"`
	// Bins holds the TopK answer, most probable first.
	Bins []Bin `json:"bins,omitempty"`
}

// Eval answers req against the reconstructed distribution dist (over d
// equal-width buckets of [0,1]). n is the number of reports behind the
// estimate and is only used to attach significance scores to TopK bins; pass
// 0 when unknown. The input is never modified.
func Eval(dist []float64, n int, req Request) (Response, error) {
	if len(dist) == 0 {
		return Response{}, fmt.Errorf("query: empty distribution")
	}
	if err := Validate(req); err != nil {
		return Response{}, err
	}
	dist = prepare(dist, req.Type)
	resp := Response{Type: req.Type}
	switch req.Type {
	case Quantile:
		resp.Values = make([]float64, len(req.Qs))
		for i, q := range req.Qs {
			resp.Values[i] = histogram.Quantile(dist, q)
		}
	case CDF:
		resp.Values = make([]float64, len(req.Qs))
		for i, v := range req.Qs {
			resp.Values[i] = histogram.CDFAt(dist, v)
		}
	case Range:
		resp.Value = histogram.RangeProb(dist, req.Lo, req.Hi)
	case Mean:
		resp.Value = histogram.Mean(dist)
	case Variance:
		resp.Value = histogram.Variance(dist)
	case TopK:
		resp.Bins = topK(dist, n, req.K)
	case Histogram:
		resp.Values = append([]float64(nil), dist...)
	}
	return resp, nil
}

// Validate checks a request without evaluating it, so transports can reject
// malformed queries before touching an estimate.
func Validate(req Request) error {
	switch req.Type {
	case Quantile, CDF:
		if len(req.Qs) == 0 {
			return fmt.Errorf("query: %s needs at least one point in q", req.Type)
		}
		for _, q := range req.Qs {
			if q < 0 || q > 1 || math.IsNaN(q) {
				return fmt.Errorf("query: %s point %v outside [0,1]", req.Type, q)
			}
		}
	case Range:
		if req.Lo < 0 || req.Hi > 1 || req.Lo > req.Hi ||
			math.IsNaN(req.Lo) || math.IsNaN(req.Hi) {
			return fmt.Errorf("query: range [%v, %v] must satisfy 0 ≤ lo ≤ hi ≤ 1", req.Lo, req.Hi)
		}
	case Mean, Variance, Histogram:
		// No parameters.
	case TopK:
		if req.K < 1 {
			return fmt.Errorf("query: topk needs k ≥ 1, got %d", req.K)
		}
	default:
		return fmt.Errorf("query: unknown type %q", req.Type)
	}
	return nil
}

// prepare post-processes signed estimates per the paper: range/CDF queries
// keep the additive Norm (disjoint-range errors cancel, Section 4.1
// following Wang et al. [35]); point statistics need a valid distribution
// and use the Norm-Sub simplex projection. Valid distributions pass through
// untouched (no allocation on the common SW-EMS path).
func prepare(dist []float64, typ Type) []float64 {
	signed := false
	for _, p := range dist {
		if p < 0 {
			signed = true
			break
		}
	}
	if !signed {
		return dist
	}
	if typ == Range || typ == CDF {
		return postprocess.Norm(dist)
	}
	return postprocess.NormSub(dist)
}

// topK returns the k most probable bins, ties broken by lower index, with
// binomial significance scores when n > 0.
func topK(dist []float64, n, k int) []Bin {
	d := len(dist)
	if k > d {
		k = d
	}
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return dist[idx[a]] > dist[idx[b]] })
	bins := make([]Bin, k)
	for i := 0; i < k; i++ {
		j := idx[i]
		lo, hi := histogram.BucketBounds(j, d)
		bins[i] = Bin{Index: j, Lo: lo, Hi: hi, P: dist[j]}
		if n > 0 && d > 1 {
			count := int(math.Round(dist[j] * float64(n)))
			if count > n {
				count = n
			}
			bins[i].PValue = stats.BinomialTail(count, n, 1/float64(d))
		}
	}
	return bins
}
