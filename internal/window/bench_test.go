package window

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkRotate measures one epoch rotation (seal + retention trim +
// live reset) at serving granularities. BENCH_window.json records the
// smoke baseline; the ci.yml bench-smoke job keeps this compiling and
// running on every PR.
func BenchmarkRotate(b *testing.B) {
	for _, buckets := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("B=%d", buckets), func(b *testing.B) {
			r := New(buckets, 0, Config{Epoch: time.Minute, Retain: 8}, t0)
			for i := 0; i < buckets; i++ {
				r.AddN(i, 3)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Advance(t0.Add(time.Duration(i+1) * time.Minute))
			}
		})
	}
}

// BenchmarkMerge measures a K-epoch sliding-window merge, the histogram
// assembly that precedes every window reconstruction.
func BenchmarkMerge(b *testing.B) {
	for _, buckets := range []int{256, 1024, 4096} {
		for _, k := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("B=%d/K=%d", buckets, k), func(b *testing.B) {
				r := New(buckets, 0, Config{Epoch: time.Minute, Retain: 8}, t0)
				for e := 0; e < 8; e++ {
					for i := 0; i < buckets; i++ {
						r.AddN(i, 2)
					}
					r.Advance(t0.Add(time.Duration(e+1) * time.Minute))
				}
				g, err := r.Resolve(Selector{Last: k})
				if err != nil {
					b.Fatal(err)
				}
				dst := make([]float64, buckets)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dst, _, _ = r.Merge(g, dst)
				}
			})
		}
	}
}
