package window

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 30, 12, 0, 0, 0, time.UTC)

func newRing(t *testing.T, buckets, retain int) *Ring {
	t.Helper()
	return New(buckets, 2, Config{Epoch: time.Minute, Retain: retain}, t0)
}

func TestConfigValidate(t *testing.T) {
	if _, err := (Config{}).Validate(); err == nil {
		t.Error("zero epoch accepted")
	}
	if _, err := (Config{Epoch: -time.Second}).Validate(); err == nil {
		t.Error("negative epoch accepted")
	}
	if _, err := (Config{Epoch: time.Second, Retain: -1}).Validate(); err == nil {
		t.Error("negative retain accepted")
	}
	cfg, err := (Config{Epoch: time.Second}).Validate()
	if err != nil || cfg.Retain != DefaultRetain {
		t.Errorf("default retain: got %d, %v", cfg.Retain, err)
	}
}

func TestRotationSealsAndRetains(t *testing.T) {
	r := newRing(t, 8, 3)
	if cur, start := r.Current(); cur != 0 || !start.Equal(t0) {
		t.Fatalf("born in epoch %d at %v", cur, start)
	}
	// Epoch 0: 5 reports in bucket 1.
	r.AddN(1, 5)
	if got := r.Advance(t0.Add(30 * time.Second)); got != 0 {
		t.Fatalf("rotated %d epochs before the period elapsed", got)
	}
	if got := r.Advance(t0.Add(time.Minute)); got != 1 {
		t.Fatalf("Advance at +1m rotated %d epochs, want 1", got)
	}
	if cur, start := r.Current(); cur != 1 || !start.Equal(t0.Add(time.Minute)) {
		t.Fatalf("after rotation: epoch %d start %v", cur, start)
	}
	if r.LiveN() != 0 {
		t.Fatalf("live epoch not reset: LiveN = %d", r.LiveN())
	}
	if r.N() != 5 {
		t.Fatalf("total N = %d, want 5 (sealed)", r.N())
	}
	// Epochs 1..4, one report each in bucket e%8; retention 3 drops 0 and 1.
	for e := 1; e <= 4; e++ {
		r.Add(e % 8)
		r.Advance(t0.Add(time.Duration(e+1) * time.Minute))
	}
	if cur, _ := r.Current(); cur != 5 {
		t.Fatalf("current epoch %d, want 5", cur)
	}
	if r.Oldest() != 2 {
		t.Fatalf("oldest retained %d, want 2", r.Oldest())
	}
	if r.SealedLen() != 3 {
		t.Fatalf("sealed count %d, want 3", r.SealedLen())
	}
	if r.N() != 3 {
		t.Fatalf("N after aging = %d, want 3", r.N())
	}
}

func TestAdvanceGapFillsEmptyEpochs(t *testing.T) {
	r := newRing(t, 4, 10)
	r.Add(2)
	// The clock jumps 3.5 periods: epoch 0 seals with the report, epochs
	// 1 and 2 seal empty, epoch 3 is live and half elapsed.
	if got := r.Advance(t0.Add(3*time.Minute + 30*time.Second)); got != 3 {
		t.Fatalf("rotated %d epochs, want 3", got)
	}
	cur, start := r.Current()
	if cur != 3 || !start.Equal(t0.Add(3*time.Minute)) {
		t.Fatalf("after jump: epoch %d start %v", cur, start)
	}
	for _, tc := range []struct {
		epoch, wantN int
	}{{0, 1}, {1, 0}, {2, 0}} {
		_, n, err := r.Merge(Range{Lo: tc.epoch, Hi: tc.epoch}, nil)
		if err != nil || n != tc.wantN {
			t.Errorf("epoch %d: n=%d err=%v, want n=%d", tc.epoch, n, err, tc.wantN)
		}
	}
}

// TestAdvanceHugeJumpIsBounded pins the catch-up path: a clock jump of
// millions of periods (a restored snapshot after long downtime) must not
// materialize one sealed epoch per elapsed period — only the retained tail
// survives, the report sealed before the jump ages out, and the rotation
// clock lands on the right boundary.
func TestAdvanceHugeJumpIsBounded(t *testing.T) {
	r := New(4, 1, Config{Epoch: time.Second, Retain: 3}, t0)
	r.Add(1)
	const jump = 5_000_000 // ~58 days of one-second epochs
	done := make(chan int, 1)
	go func() { done <- r.Advance(t0.Add(jump * time.Second)) }()
	select {
	case got := <-done:
		if got != jump {
			t.Fatalf("rotated %d epochs, want %d", got, jump)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Advance did not return — catch-up is not bounded")
	}
	cur, start := r.Current()
	if cur != jump || !start.Equal(t0.Add(jump*time.Second)) {
		t.Fatalf("after jump: epoch %d start %v", cur, start)
	}
	if r.SealedLen() != 3 || r.Oldest() != jump-3 {
		t.Fatalf("retained %d sealed epochs, oldest %d; want 3 ending at %d",
			r.SealedLen(), r.Oldest(), jump-1)
	}
	if r.N() != 0 {
		t.Fatalf("pre-jump report survived retention: N = %d", r.N())
	}
}

func TestMergeRanges(t *testing.T) {
	r := newRing(t, 4, 8)
	// Epoch e gets e+1 reports in bucket e.
	for e := 0; e < 3; e++ {
		r.AddN(e, uint64(e+1))
		r.Advance(t0.Add(time.Duration(e+1) * time.Minute))
	}
	r.AddN(3, 10) // live epoch 3

	counts, n, err := r.Merge(Range{Lo: 0, Hi: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("sealed merge n = %d, want 6", n)
	}
	for b, want := range []float64{1, 2, 3, 0} {
		if counts[b] != want {
			t.Errorf("bucket %d = %v, want %v", b, counts[b], want)
		}
	}

	// Including the live epoch picks up unsealed reports.
	counts, n, err = r.Merge(Range{Lo: 2, Hi: 3}, counts)
	if err != nil {
		t.Fatal(err)
	}
	if n != 13 || counts[2] != 3 || counts[3] != 10 {
		t.Fatalf("live-inclusive merge: n=%d counts=%v", n, counts)
	}

	all, n := r.MergeAll(nil)
	if n != 16 {
		t.Fatalf("MergeAll n = %d, want 16", n)
	}
	var sum float64
	for _, c := range all {
		sum += c
	}
	if sum != 16 {
		t.Fatalf("MergeAll counts sum to %v", sum)
	}

	// Out-of-retention and future ranges fail.
	if _, _, err := r.Merge(Range{Lo: 0, Hi: 9}, nil); err == nil {
		t.Error("future range merged")
	}
	r2 := newRing(t, 4, 1)
	for e := 0; e < 4; e++ {
		r2.Advance(t0.Add(time.Duration(e+1) * time.Minute))
	}
	if _, _, err := r2.Merge(Range{Lo: 0, Hi: 0}, nil); err == nil {
		t.Error("aged-out range merged")
	}
}

func TestParseSelector(t *testing.T) {
	good := map[string]Selector{
		"last:1":      {Last: 1},
		"last:12":     {Last: 12},
		"epochs:0..0": {Lo: 0, Hi: 0, Abs: true},
		"epochs:3..7": {Lo: 3, Hi: 7, Abs: true},
	}
	for s, want := range good {
		got, err := ParseSelector(s)
		if err != nil || got != want {
			t.Errorf("ParseSelector(%q) = %+v, %v; want %+v", s, got, err, want)
		}
	}
	bad := []string{"", "last:", "last:0", "last:-2", "last:x", "epochs:", "epochs:5",
		"epochs:5..2", "epochs:-1..2", "epochs:a..b", "hour", "epochs:1..", "last:1.5"}
	for _, s := range bad {
		if _, err := ParseSelector(s); err == nil {
			t.Errorf("ParseSelector(%q) accepted", s)
		}
	}
}

func TestResolve(t *testing.T) {
	r := newRing(t, 4, 3)
	for e := 0; e < 5; e++ { // current epoch 5, retained 2..4
		r.Advance(t0.Add(time.Duration(e+1) * time.Minute))
	}
	cases := []struct {
		sel  Selector
		want Range
		ok   bool
	}{
		{Selector{Last: 1}, Range{5, 5}, true},
		{Selector{Last: 3}, Range{3, 5}, true},
		{Selector{Last: 100}, Range{2, 5}, true}, // clamped
		{Selector{Lo: 3, Hi: 4, Abs: true}, Range{3, 4}, true},
		{Selector{Lo: 5, Hi: 5, Abs: true}, Range{5, 5}, true},
		{Selector{Lo: 1, Hi: 4, Abs: true}, Range{}, false}, // aged out
		{Selector{Lo: 5, Hi: 6, Abs: true}, Range{}, false}, // future
		{Selector{}, Range{}, false},
	}
	for _, tc := range cases {
		got, err := r.Resolve(tc.sel)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("Resolve(%+v) = %+v, %v; want %+v ok=%v", tc.sel, got, err, tc.want, tc.ok)
		}
	}
}

func TestStateRestoreRoundTrip(t *testing.T) {
	r := newRing(t, 8, 4)
	for e := 0; e < 6; e++ {
		r.AddN(e%8, uint64(10*(e+1)))
		r.Advance(t0.Add(time.Duration(e+1) * time.Minute))
	}
	r.AddN(7, 3) // mid-epoch live reports

	st := r.State()
	r2, err := Restore(8, 2, st)
	if err != nil {
		t.Fatal(err)
	}
	if c1, s1 := r.Current(); true {
		if c2, s2 := r2.Current(); c1 != c2 || !s1.Equal(s2) {
			t.Fatalf("restored clock (%d, %v) != original (%d, %v)", c2, s2, c1, s1)
		}
	}
	if r.N() != r2.N() || r.LiveN() != r2.LiveN() || r.Oldest() != r2.Oldest() {
		t.Fatalf("restored totals differ: N %d/%d live %d/%d oldest %d/%d",
			r.N(), r2.N(), r.LiveN(), r2.LiveN(), r.Oldest(), r2.Oldest())
	}
	a, na := r.MergeAll(nil)
	b, nb := r2.MergeAll(nil)
	if na != nb {
		t.Fatalf("merge totals differ: %d vs %d", na, nb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bucket %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// Restored ring keeps rotating on the same clock.
	cur, _ := r2.Current()
	if got := r2.Advance(t0.Add(time.Duration(cur+1) * time.Minute)); got != 1 {
		t.Fatalf("restored ring rotated %d, want 1", got)
	}
}

func TestRestoreRejectsBadState(t *testing.T) {
	good := New(4, 1, Config{Epoch: time.Minute, Retain: 2}, t0).State()
	cases := map[string]func(State) State{
		"zero epoch":       func(s State) State { s.Epoch = 0; return s },
		"negative current": func(s State) State { s.Current = -1; return s },
		"sealed >= current": func(s State) State {
			s.Current = 1
			s.Sealed = []Epoch{{Index: 1, Counts: []uint64{1, 0, 0, 0}, N: 1}}
			return s
		},
		"sealed out of order": func(s State) State {
			s.Current = 3
			s.Sealed = []Epoch{{Index: 1}, {Index: 1}}
			return s
		},
		"sealed wrong buckets": func(s State) State {
			s.Current = 1
			s.Sealed = []Epoch{{Index: 0, Counts: []uint64{1}, N: 1}}
			return s
		},
		"live wrong buckets": func(s State) State { s.Live = []uint64{1, 2}; return s },
	}
	for name, mutate := range cases {
		if _, err := Restore(4, 1, mutate(good)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestConcurrentIngestionRotationMerge races writers against rotation,
// merges and state dumps; run with -race. No report may be lost: every
// ingested report is either in a retained epoch or has aged out with it,
// and with retention ≥ total epochs nothing ages out.
func TestConcurrentIngestionRotationMerge(t *testing.T) {
	const (
		writers   = 4
		perWriter = 2000
		rotations = 20
	)
	r := New(16, 0, Config{Epoch: time.Minute, Retain: rotations + 1}, t0)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				r.Add((id + i) % 16)
			}
		}(w)
	}
	var readers sync.WaitGroup
	stop := make(chan struct{})
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.MergeAll(nil)
			r.State()
			if cur, _ := r.Current(); cur > 0 {
				r.Resolve(Selector{Last: 2})
			}
		}
	}()
	close(start)
	for i := 1; i <= rotations; i++ {
		r.Advance(t0.Add(time.Duration(i) * time.Minute))
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	r.Advance(t0.Add(time.Duration(rotations+1) * time.Minute))
	if got, want := r.N(), writers*perWriter; got != want {
		t.Fatalf("reports lost across rotations: N = %d, want %d", got, want)
	}
	_, n := r.MergeAll(nil)
	if n != writers*perWriter {
		t.Fatalf("merge lost reports: n = %d, want %d", n, writers*perWriter)
	}
}

func TestRangeString(t *testing.T) {
	if got := (Range{Lo: 2, Hi: 5}).String(); got != "epochs:2..5" {
		t.Errorf("Range.String() = %q", got)
	}
	if got := fmt.Sprint(Range{Lo: 0, Hi: 0}); got != "epochs:0..0" {
		t.Errorf("Range via Sprint = %q", got)
	}
}

func TestAddEpochCounts(t *testing.T) {
	t0 := time.Unix(0, 0)
	r := New(4, 1, Config{Epoch: time.Minute, Retain: 4}, t0)
	r.Add(0) // live epoch 0
	r.Advance(t0.Add(time.Minute))
	r.Add(1) // live epoch 1

	// Merge into the live epoch.
	if err := r.AddEpochCounts(1, []uint64{0, 2, 0, 0}); err != nil {
		t.Fatal(err)
	}
	// Merge into a sealed epoch.
	if err := r.AddEpochCounts(0, []uint64{3, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if got := r.N(); got != 8 {
		t.Fatalf("N = %d, want 8", got)
	}
	hist, n, err := r.Merge(Range{Lo: 0, Hi: 0}, nil)
	if err != nil || n != 5 {
		t.Fatalf("sealed epoch merge n=%d err=%v", n, err)
	}
	if hist[0] != 4 || hist[3] != 1 {
		t.Fatalf("sealed epoch hist %v", hist)
	}

	// Future epochs are refused with the typed error.
	if err := r.AddEpochCounts(2, []uint64{1, 0, 0, 0}); !errors.Is(err, ErrEpochNotStarted) {
		t.Fatalf("future epoch err = %v", err)
	}
	// Aged-out epochs are refused with the typed error.
	for i := 2; i <= 6; i++ {
		r.Advance(t0.Add(time.Duration(i) * time.Minute))
	}
	if err := r.AddEpochCounts(0, []uint64{1, 0, 0, 0}); !errors.Is(err, ErrEpochAgedOut) {
		t.Fatalf("aged epoch err = %v", err)
	}
	// Shape mismatches are refused.
	if err := r.AddEpochCounts(6, []uint64{1}); err == nil {
		t.Fatal("wrong-width merge accepted")
	}
}

func TestAddEpochCountsFillsSparseAdoptedHistory(t *testing.T) {
	t0 := time.Unix(0, 0)
	r := New(2, 1, Config{Epoch: time.Minute, Retain: 8}, t0)
	// A sparse history (holes at epochs 1 and 3) from an old snapshot.
	if err := r.Adopt(State{
		Epoch: time.Minute, Retain: 8, Current: 4, Start: t0.Add(4 * time.Minute),
		Sealed: []Epoch{{Index: 0, Counts: []uint64{1, 0}, N: 1}, {Index: 2, Counts: []uint64{0, 1}, N: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddEpochCounts(3, []uint64{0, 5}); err != nil {
		t.Fatal(err)
	}
	hist, n, err := r.Merge(Range{Lo: 3, Hi: 3}, nil)
	if err != nil || n != 5 || hist[1] != 5 {
		t.Fatalf("sparse-fill merge hist=%v n=%d err=%v", hist, n, err)
	}
	// The filled epoch keeps the sealed list ordered: every index resolves.
	for _, idx := range []int{0, 2, 3} {
		if _, _, err := r.Merge(Range{Lo: idx, Hi: idx}, nil); err != nil {
			t.Fatalf("epoch %d unreachable after sparse fill: %v", idx, err)
		}
	}
}
