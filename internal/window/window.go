// Package window turns the collector's one-shot report streams into a
// time-series: an epoch Ring rotates the live striped histogram (package
// aggregate) on a fixed epoch duration, retains the last Retain sealed
// epochs, and merges any contiguous epoch range back into a single report
// histogram so the EMS reconstruction can answer "what did the distribution
// look like over the last hour/day" while old cohorts age out.
//
// # Epoch model
//
// Epochs are numbered globally from 0 and never reused: the Ring is born in
// epoch 0, and every rotation seals the live epoch and starts the next
// index. A rotation that arrives k > 1 periods late (the clock jumped, the
// process slept) seals the live epoch and inserts k−1 empty sealed epochs,
// so epoch indexes always map to wall-clock intervals of exactly the epoch
// duration — range selectors stay time-aligned across stalls and restarts.
// Only the most recent Retain sealed epochs are kept; older ones age out of
// every merge and of persistence.
//
// # Concurrency
//
// Ingestion (Add/AddBatch/AddN) takes a shared read-lock around the live
// striped histogram, so concurrent writers still scale across stripes;
// Advance takes the write-lock for the O(buckets) seal, during which the
// histogram is quiescent — the sealed counts are exact, no report is ever
// lost to a rotation race. Merges and snapshots read sealed epochs (frozen
// dense arrays) plus a non-blocking snapshot of the live stripes.
//
// # Time
//
// The Ring never reads the wall clock itself: callers pass "now" into
// Advance. Production drivers pass time.Now(); tests drive a mock clock and
// get fully deterministic rotation.
package window

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/aggregate"
)

// Config parameterizes a Ring.
type Config struct {
	// Epoch is the rotation period. Required, must be positive.
	Epoch time.Duration
	// Retain is how many sealed epochs are kept (the live epoch is always
	// additionally available). Defaults to 8.
	Retain int
}

// DefaultRetain is the sealed-epoch retention used when Config.Retain is 0.
const DefaultRetain = 8

// Validate fills defaults and rejects unusable configurations.
func (c Config) Validate() (Config, error) {
	if c.Epoch <= 0 {
		return c, fmt.Errorf("window: epoch duration must be positive, got %v", c.Epoch)
	}
	if c.Retain == 0 {
		c.Retain = DefaultRetain
	}
	if c.Retain < 1 {
		return c, fmt.Errorf("window: retain must be at least 1, got %d", c.Retain)
	}
	return c, nil
}

// Epoch is one sealed epoch: a frozen dense report histogram. Empty epochs
// (no reports, or gap-fill after a clock jump) have nil Counts.
type Epoch struct {
	// Index is the global epoch number.
	Index int
	// Counts is the dense report histogram; nil means empty.
	Counts []uint64
	// N is the report total of Counts.
	N int
}

// Ring is a per-stream epoch ring: the live striped histogram plus the
// retained sealed epochs. All methods are safe for concurrent use. A Ring
// must not be copied after first use.
type Ring struct {
	cfg     Config
	buckets int
	shards  int

	mu     sync.RWMutex
	live   *aggregate.Striped
	cur    int       // index of the live epoch
	start  time.Time // start of the live epoch
	sealed []Epoch   // ascending Index, len ≤ cfg.Retain
}

// New builds a ring whose live epoch 0 starts at now. Config must already be
// valid (see Config.Validate); buckets/shards follow aggregate.New.
func New(buckets, shards int, cfg Config, now time.Time) *Ring {
	cfg, err := cfg.Validate()
	if err != nil {
		panic(err.Error()) // programmer error: callers validate at the API boundary
	}
	return &Ring{
		cfg:     cfg,
		buckets: buckets,
		shards:  shards,
		live:    aggregate.New(buckets, shards),
		start:   now,
	}
}

// Config returns the ring's (default-filled) configuration.
func (r *Ring) Config() Config { return r.cfg }

// Buckets returns the histogram granularity.
func (r *Ring) Buckets() int { return r.buckets }

// Add records one report in the live epoch.
func (r *Ring) Add(bucket int) {
	r.mu.RLock()
	r.live.Add(bucket)
	r.mu.RUnlock()
}

// AddN records n reports in one bucket of the live epoch (merges, replays).
func (r *Ring) AddN(bucket int, n uint64) {
	r.mu.RLock()
	r.live.AddN(bucket, n)
	r.mu.RUnlock()
}

// AddBatch records one report per bucket index in the live epoch.
func (r *Ring) AddBatch(buckets []int) {
	r.mu.RLock()
	r.live.AddBatch(buckets)
	r.mu.RUnlock()
}

// N returns the total reports across the live epoch and every retained
// sealed epoch — the population still visible to estimates.
func (r *Ring) N() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := r.live.N()
	for i := range r.sealed {
		n += r.sealed[i].N
	}
	return n
}

// LiveN returns the report count of the live epoch alone.
func (r *Ring) LiveN() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.live.N()
}

// Cell returns one bucket's count summed over the live epoch and every
// retained sealed epoch — O(shards + retained), the cheap path for reading
// a single cell (e.g. a fan-out mechanism's user-marker cell) without a
// full merge.
func (r *Ring) Cell(bucket int) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := r.live.Cell(bucket)
	for i := range r.sealed {
		if r.sealed[i].Counts != nil {
			n += int(r.sealed[i].Counts[bucket])
		}
	}
	return n
}

// Current returns the live epoch's index and start time.
func (r *Ring) Current() (index int, start time.Time) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cur, r.start
}

// Oldest returns the lowest epoch index still addressable (the oldest
// retained sealed epoch, or the live epoch when nothing is sealed yet).
func (r *Ring) Oldest() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.oldestLocked()
}

func (r *Ring) oldestLocked() int {
	if len(r.sealed) == 0 {
		return r.cur
	}
	return r.sealed[0].Index
}

// SealedLen returns how many sealed epochs are currently retained.
func (r *Ring) SealedLen() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sealed)
}

// Advance rotates the ring forward to now: zero rotations if the live epoch
// has not elapsed, one per elapsed period otherwise (late periods seal as
// empty epochs). It returns the number of epochs sealed. Advance with a now
// before the live epoch's start is a no-op — the clock never runs backward
// from the ring's point of view.
func (r *Ring) Advance(now time.Time) int {
	r.mu.RLock()
	elapsed := now.Sub(r.start)
	r.mu.RUnlock()
	if elapsed < r.cfg.Epoch {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.advanceLocked(now)
}

func (r *Ring) advanceLocked(now time.Time) int {
	rotations := int(now.Sub(r.start) / r.cfg.Epoch)
	if rotations <= 0 {
		return 0
	}
	// Only the newest Retain sealed epochs can survive this advance, so
	// never construct more than that — a restore after long downtime with
	// a short epoch must not materialize millions of gap epochs under the
	// write lock.
	newCur := r.cur + rotations
	oldestKept := newCur - r.cfg.Retain
	if r.cur >= oldestKept {
		// Seal the live epoch. Writers are excluded by the lock, so the
		// snapshot is exact and the reset cannot race an Add.
		counts, n := r.live.Snapshot(nil)
		sealed := Epoch{Index: r.cur}
		if n > 0 {
			sealed.Counts = make([]uint64, len(counts))
			for i, c := range counts {
				sealed.Counts[i] = uint64(c)
			}
			sealed.N = n
		}
		r.sealed = append(r.sealed, sealed)
	}
	// Gap-fill the periods that elapsed entirely unobserved, skipping any
	// already past retention.
	first := r.cur + 1
	if first < oldestKept {
		first = oldestKept
	}
	for idx := first; idx < newCur; idx++ {
		r.sealed = append(r.sealed, Epoch{Index: idx})
	}
	r.cur = newCur
	r.start = r.start.Add(time.Duration(rotations) * r.cfg.Epoch)
	if drop := len(r.sealed) - r.cfg.Retain; drop > 0 {
		r.sealed = append(r.sealed[:0], r.sealed[drop:]...)
	}
	r.live.Reset()
	return rotations
}

// ErrEpochAgedOut marks an AddEpochCounts target that already fell out of
// retention; ErrEpochNotStarted one the ring's clock has not reached yet.
// Both are normal weather for a federated merge (edge and root clocks are
// never perfectly aligned) — callers count and report them rather than fail.
var (
	ErrEpochAgedOut    = errors.New("window: epoch aged out of retention")
	ErrEpochNotStarted = errors.New("window: epoch not started")
)

// AddEpochCounts merges a dense histogram into one retained epoch by global
// index — the live epoch, or any retained sealed epoch (a federated edge
// shipping increments for an epoch the root has already sealed). The whole
// merge happens under the write lock, so it is atomic with respect to
// rotation: an increment lands entirely in the epoch it was addressed to.
func (r *Ring) AddEpochCounts(idx int, counts []uint64) error {
	if len(counts) != r.buckets {
		return fmt.Errorf("window: epoch %d merge has %d buckets, want %d", idx, len(counts), r.buckets)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if idx > r.cur {
		return fmt.Errorf("%w: epoch %d (current is %d)", ErrEpochNotStarted, idx, r.cur)
	}
	if idx == r.cur {
		for b, c := range counts {
			if c != 0 {
				r.live.AddN(b, c)
			}
		}
		return nil
	}
	if idx < r.oldestLocked() {
		return fmt.Errorf("%w: epoch %d (oldest retained is %d)", ErrEpochAgedOut, idx, r.oldestLocked())
	}
	// Find the sealed epoch, or the insertion point for one an adopted
	// sparse history skipped (advanceLocked gap-fills, so this only happens
	// after restoring a snapshot with holes).
	at := sort.Search(len(r.sealed), func(i int) bool { return r.sealed[i].Index >= idx })
	if at == len(r.sealed) || r.sealed[at].Index != idx {
		r.sealed = append(r.sealed, Epoch{})
		copy(r.sealed[at+1:], r.sealed[at:])
		r.sealed[at] = Epoch{Index: idx}
	}
	ep := &r.sealed[at]
	if ep.Counts == nil {
		ep.Counts = make([]uint64, r.buckets)
	}
	for b, c := range counts {
		ep.Counts[b] += c
		ep.N += int(c)
	}
	return nil
}

// Rotate forces exactly one rotation regardless of the clock: the live
// epoch seals as-is and the next one starts on the ring's own schedule.
// Library users who drive epochs by their own cadence (instead of a wall
// clock) rotate with this. The read of the schedule and the rotation happen
// under one lock, so Rotate always seals exactly one epoch even when racing
// an Advance.
func (r *Ring) Rotate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advanceLocked(r.start.Add(r.cfg.Epoch))
}

// Range is a resolved, inclusive epoch range.
type Range struct{ Lo, Hi int }

// String renders the range in the canonical selector syntax.
func (g Range) String() string { return fmt.Sprintf("epochs:%d..%d", g.Lo, g.Hi) }

// Selector is a parsed window selector: exactly one of Last or the absolute
// range is set.
type Selector struct {
	// Last selects the most recent Last epochs ending at the live one
	// (clamped to what is retained). 0 means "not a last: selector".
	Last int
	// Lo, Hi are the absolute inclusive epoch bounds of an epochs:i..j
	// selector; only meaningful when Abs is true.
	Lo, Hi int
	Abs    bool
}

// ParseSelector parses the wire syntax: "last:K" (K ≥ 1) or "epochs:i..j"
// (0 ≤ i ≤ j).
func ParseSelector(s string) (Selector, error) {
	switch {
	case strings.HasPrefix(s, "last:"):
		k, err := strconv.Atoi(s[len("last:"):])
		if err != nil || k < 1 {
			return Selector{}, fmt.Errorf("window: bad selector %q (want last:K with K ≥ 1)", s)
		}
		return Selector{Last: k}, nil
	case strings.HasPrefix(s, "epochs:"):
		lo, hi, ok := strings.Cut(s[len("epochs:"):], "..")
		if !ok {
			return Selector{}, fmt.Errorf("window: bad selector %q (want epochs:i..j)", s)
		}
		i, err1 := strconv.Atoi(lo)
		j, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || i < 0 || j < i {
			return Selector{}, fmt.Errorf("window: bad selector %q (want epochs:i..j with 0 ≤ i ≤ j)", s)
		}
		return Selector{Lo: i, Hi: j, Abs: true}, nil
	default:
		return Selector{}, fmt.Errorf("window: bad selector %q (want last:K or epochs:i..j)", s)
	}
}

// ErrAgedOut marks a Resolve failure caused by the requested epochs having
// fallen out of retention (as opposed to a malformed or future range).
var ErrAgedOut = errors.New("window: epochs aged out of retention")

// IsAgedOut reports whether err stems from an aged-out epoch range.
func IsAgedOut(err error) bool { return errors.Is(err, ErrAgedOut) }

// Resolve maps a selector onto the ring's current state. last:K clamps to
// the retained range; epochs:i..j must lie entirely inside it (aged-out or
// future epochs are an error, so a caller can distinguish "gone" from
// "malformed").
func (r *Ring) Resolve(sel Selector) (Range, error) {
	r.mu.RLock()
	cur, oldest := r.cur, r.oldestLocked()
	r.mu.RUnlock()
	if sel.Abs {
		if sel.Hi > cur {
			return Range{}, fmt.Errorf("window: epoch %d has not started (current is %d)", sel.Hi, cur)
		}
		if sel.Lo < oldest {
			return Range{}, fmt.Errorf("%w: epoch %d is gone (oldest retained is %d)", ErrAgedOut, sel.Lo, oldest)
		}
		return Range{Lo: sel.Lo, Hi: sel.Hi}, nil
	}
	if sel.Last < 1 {
		return Range{}, fmt.Errorf("window: empty selector")
	}
	lo := cur - sel.Last + 1
	if lo < oldest {
		lo = oldest
	}
	return Range{Lo: lo, Hi: cur}, nil
}

// Merge sums the report histograms of the inclusive epoch range into a dense
// float64 histogram (the shape the EM reconstruction consumes) and returns
// it with its report total. dst is reused when it has the right length. A
// range that includes the live epoch reads a non-blocking snapshot of it;
// sealed epochs are frozen, so a fully-sealed range merges identically
// forever. Ranges outside retention return an error.
func (r *Ring) Merge(g Range, dst []float64) ([]float64, int, error) {
	dst = r.clearDst(dst)
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.mergeLocked(g, dst)
}

// MergeAll merges every retained epoch plus the live one — the windowed
// stream's "current" population.
func (r *Ring) MergeAll(dst []float64) ([]float64, int) {
	dst = r.clearDst(dst)
	r.mu.RLock()
	defer r.mu.RUnlock()
	out, n, _ := r.mergeLocked(Range{Lo: r.oldestLocked(), Hi: r.cur}, dst)
	return out, n
}

func (r *Ring) clearDst(dst []float64) []float64 {
	if len(dst) != r.buckets {
		return make([]float64, r.buckets)
	}
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

func (r *Ring) mergeLocked(g Range, dst []float64) ([]float64, int, error) {
	if g.Lo < r.oldestLocked() || g.Hi > r.cur || g.Lo > g.Hi {
		return dst, 0, fmt.Errorf("window: range %s outside retained epochs %d..%d",
			g, r.oldestLocked(), r.cur)
	}
	var n int
	for i := range r.sealed {
		ep := &r.sealed[i]
		if ep.Index < g.Lo || ep.Index > g.Hi || ep.Counts == nil {
			continue
		}
		for b, c := range ep.Counts {
			dst[b] += float64(c)
		}
		n += ep.N
	}
	if g.Hi == r.cur {
		live, ln := r.live.Snapshot(nil)
		for b, c := range live {
			dst[b] += c
		}
		n += ln
	}
	return dst, n, nil
}

// RangeN returns the current report total of the inclusive epoch range
// without materializing a merged histogram — one addition per sealed epoch
// plus (for live-inclusive ranges) one atomic load per live stripe.
func (r *Ring) RangeN(g Range) (int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if g.Lo < r.oldestLocked() || g.Hi > r.cur || g.Lo > g.Hi {
		return 0, fmt.Errorf("window: range %s outside retained epochs %d..%d",
			g, r.oldestLocked(), r.cur)
	}
	var n int
	for i := range r.sealed {
		if idx := r.sealed[i].Index; idx >= g.Lo && idx <= g.Hi {
			n += r.sealed[i].N
		}
	}
	if g.Hi == r.cur {
		n += r.live.N()
	}
	return n, nil
}

// State is a point-in-time serializable dump of a ring, the shape package
// snapshot persists. Live is the live epoch's dense histogram.
type State struct {
	Epoch   time.Duration
	Retain  int
	Current int
	Start   time.Time
	Sealed  []Epoch
	Live    []uint64
	LiveN   int
}

// State captures the ring for persistence. The live histogram is read with a
// non-blocking snapshot; sealed epochs are copied, so the result shares no
// memory with the ring.
func (r *Ring) State() State {
	r.mu.RLock()
	defer r.mu.RUnlock()
	live, ln := r.live.Snapshot(nil)
	st := State{
		Epoch:   r.cfg.Epoch,
		Retain:  r.cfg.Retain,
		Current: r.cur,
		Start:   r.start,
		LiveN:   ln,
	}
	if ln > 0 {
		st.Live = make([]uint64, len(live))
		for i, c := range live {
			st.Live[i] = uint64(c)
		}
	}
	st.Sealed = make([]Epoch, len(r.sealed))
	for i, ep := range r.sealed {
		st.Sealed[i] = Epoch{Index: ep.Index, N: ep.N}
		if ep.Counts != nil {
			st.Sealed[i].Counts = append([]uint64(nil), ep.Counts...)
		}
	}
	return st
}

// validate checks a State against a ring geometry without mutating anything.
func (st State) validate(buckets int) error {
	if st.Current < 0 {
		return fmt.Errorf("window: restore: negative current epoch %d", st.Current)
	}
	for i, ep := range st.Sealed {
		if ep.Index < 0 || ep.Index >= st.Current {
			return fmt.Errorf("window: restore: sealed epoch %d outside [0, %d)", ep.Index, st.Current)
		}
		if i > 0 && ep.Index <= st.Sealed[i-1].Index {
			return fmt.Errorf("window: restore: sealed epochs out of order at index %d", ep.Index)
		}
		if ep.Counts != nil && len(ep.Counts) != buckets {
			return fmt.Errorf("window: restore: sealed epoch %d has %d buckets, want %d",
				ep.Index, len(ep.Counts), buckets)
		}
	}
	if st.Live != nil && len(st.Live) != buckets {
		return fmt.Errorf("window: restore: live histogram has %d buckets, want %d",
			len(st.Live), buckets)
	}
	return nil
}

// CanAdopt reports (as an error) why a State could not be adopted by this
// ring: a malformed state, or a ring that already rotated or sealed history.
// A clean CanAdopt does not reserve anything — Adopt rechecks under the
// ring's lock.
func (r *Ring) CanAdopt(st State) error {
	if err := st.validate(r.buckets); err != nil {
		return err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.cur != 0 || len(r.sealed) != 0 {
		return fmt.Errorf("window: ring already rotated (epoch %d); cannot adopt persisted state", r.cur)
	}
	return nil
}

// Adopt installs a persisted State into a ring that has not rotated yet: the
// rotation clock, sealed history and live histogram all come from st, and
// any reports already ingested into the (epoch-0) live histogram are carried
// into the adopted live epoch — the same additive merge semantics a
// non-windowed restore uses. The ring's own Epoch/Retain configuration is
// kept; callers verify it matches the persisted one.
func (r *Ring) Adopt(st State) error {
	if err := st.validate(r.buckets); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != 0 || len(r.sealed) != 0 {
		return fmt.Errorf("window: ring already rotated (epoch %d); cannot adopt persisted state", r.cur)
	}
	r.cur = st.Current
	r.start = st.Start
	r.sealed = r.sealed[:0]
	for _, ep := range st.Sealed {
		cp := Epoch{Index: ep.Index, N: ep.N}
		if ep.Counts != nil {
			cp.Counts = append([]uint64(nil), ep.Counts...)
		}
		r.sealed = append(r.sealed, cp)
	}
	if drop := len(r.sealed) - r.cfg.Retain; drop > 0 {
		r.sealed = append(r.sealed[:0], r.sealed[drop:]...)
	}
	for b, c := range st.Live {
		r.live.AddN(b, c)
	}
	return nil
}

// Restore rebuilds a ring from a persisted State, so a restarted collector
// resumes mid-epoch with the identical rotation clock and sealed history.
func Restore(buckets, shards int, st State) (*Ring, error) {
	cfg, err := Config{Epoch: st.Epoch, Retain: st.Retain}.Validate()
	if err != nil {
		return nil, err
	}
	r := New(buckets, shards, cfg, st.Start)
	if err := r.Adopt(st); err != nil {
		return nil, err
	}
	return r, nil
}
