package matrixx

import (
	"runtime"

	"repro/internal/parallel"
)

// RangeChannel is a Channel whose products can be computed over contiguous
// output sub-ranges: rows of M·x (plain or fused with the EM ratio/ll
// epilogue), columns of Mᵀ·x. Both *Matrix and *Banded satisfy it, and both
// guarantee that a partitioned product accumulates each output element in
// the same order as the serial one — partitioning changes wall-clock time,
// never bits.
type RangeChannel interface {
	Channel
	MulVecRows(dst, x []float64, lo, hi int)
	MulVecTCols(dst, x []float64, lo, hi int)
	MulVecRatioRows(ratio, ll, x, counts []float64, lo, hi int)
}

// MulVecWork estimates the flops of one forward product — the quantity the
// fan-out decision must be made on. rows·cols for the dense layout.
func (m *Matrix) MulVecWork() int { return m.rows * m.cols }

// MulVecWork estimates the flops of one forward banded product: the stored
// excess entries plus the constant-floor pass — NOT rows·cols, which for a
// narrow band overstates the work by orders of magnitude (the bug behind
// the historical banded B=1024 parallel regression).
func (b *Banded) MulVecWork() int { return len(b.tval) + b.rows + b.cols }

// workEstimator is satisfied by channels that can report their per-product
// flops; channels without an estimate are assumed dense.
type workEstimator interface{ MulVecWork() int }

// parallelMinWork is the per-product flops floor below which fan-out
// overhead exceeds the compute being split, measured on the recorded
// BENCH_em.json baselines: the banded B=1024 channel (≈0.35 Mflops per
// product) regressed 12% under the old wrapper while dense B=1024
// (≈1 Mflop) broke even, so the threshold sits between the two. Parallelize
// returns the channel unwrapped below it — the serial kernel IS the fast
// path there.
const parallelMinWork = 1 << 19

// ParallelChannel wraps a RangeChannel so MulVec (and its fused E-step
// variant) row-partitions and MulVecT column-partitions across the shared
// worker pool. Products remain bit-identical to the wrapped channel's
// serial ones.
type ParallelChannel struct {
	inner  RangeChannel
	chunks int
	pool   *parallel.Pool
}

// Parallelize wraps c for parallel products over `workers` partitions.
// workers == 0 or 1 (or a channel without range kernels) returns c
// unchanged; workers < 0 selects runtime.NumCPU(). Channels whose
// per-product work is under the measured fan-out threshold are also
// returned unchanged — for a banded channel that decision is made on the
// band's true flops, not the dense rows·cols.
func Parallelize(c Channel, workers int) Channel {
	if workers == 0 || workers == 1 {
		return c
	}
	rc, ok := c.(RangeChannel)
	if !ok {
		return c
	}
	work := c.Rows() * c.Cols()
	if we, ok := c.(workEstimator); ok {
		work = we.MulVecWork()
	}
	if work < parallelMinWork {
		return c
	}
	if workers < 0 {
		workers = runtime.NumCPU()
	}
	if workers <= 1 {
		return c
	}
	return &ParallelChannel{inner: rc, chunks: workers, pool: parallel.Default()}
}

// Rows implements Channel.
func (p *ParallelChannel) Rows() int { return p.inner.Rows() }

// Cols implements Channel.
func (p *ParallelChannel) Cols() int { return p.inner.Cols() }

// Unwrap returns the wrapped serial channel.
func (p *ParallelChannel) Unwrap() Channel { return p.inner }

// MulVec implements Channel, row-partitioned across the pool.
func (p *ParallelChannel) MulVec(dst, x []float64) []float64 {
	rows, cols := p.inner.Rows(), p.inner.Cols()
	if len(dst) != rows || len(x) != cols {
		// Fail on the caller's goroutine, not inside a pool worker.
		panic("matrixx: ParallelChannel.MulVec dimension mismatch")
	}
	p.pool.For(rows, p.chunks, func(lo, hi int) {
		p.inner.MulVecRows(dst, x, lo, hi)
	})
	return dst
}

// MulVecT implements Channel, column-partitioned across the pool.
func (p *ParallelChannel) MulVecT(dst, x []float64) []float64 {
	rows, cols := p.inner.Rows(), p.inner.Cols()
	if len(dst) != cols || len(x) != rows {
		panic("matrixx: ParallelChannel.MulVecT dimension mismatch")
	}
	p.pool.For(cols, p.chunks, func(lo, hi int) {
		p.inner.MulVecTCols(dst, x, lo, hi)
	})
	return dst
}

// MulVecRatio implements RatioChannel, row-partitioned across the pool.
// Every output of the fused E-step is per-row (the caller folds ll
// serially), so the partition is bit-identical to the serial fused pass.
func (p *ParallelChannel) MulVecRatio(ratio, ll, x, counts []float64) {
	rows, cols := p.inner.Rows(), p.inner.Cols()
	if len(ratio) != rows || len(ll) != rows || len(counts) != rows || len(x) != cols {
		panic("matrixx: ParallelChannel.MulVecRatio dimension mismatch")
	}
	p.pool.For(rows, p.chunks, func(lo, hi int) {
		p.inner.MulVecRatioRows(ratio, ll, x, counts, lo, hi)
	})
}

// Compile-time checks: the concrete channels support range partitioning and
// the wrapper speaks both the plain and the fused product surfaces.
var (
	_ RangeChannel = (*Matrix)(nil)
	_ RangeChannel = (*Banded)(nil)
	_ Channel      = (*ParallelChannel)(nil)
	_ RatioChannel = (*Matrix)(nil)
	_ RatioChannel = (*Banded)(nil)
	_ RatioChannel = (*ParallelChannel)(nil)
)
