package matrixx

import (
	"runtime"

	"repro/internal/parallel"
)

// RangeChannel is a Channel whose products can be computed over contiguous
// output sub-ranges: rows of M·x, columns of Mᵀ·x. Both *Matrix and *Banded
// satisfy it, and both guarantee that a partitioned product accumulates each
// output element in the same order as the serial one — partitioning changes
// wall-clock time, never bits.
type RangeChannel interface {
	Channel
	MulVecRows(dst, x []float64, lo, hi int)
	MulVecTCols(dst, x []float64, lo, hi int)
}

// parallelThreshold is the rows×cols size below which fan-out overhead
// (one channel handoff per chunk) exceeds the compute being split.
const parallelThreshold = 1 << 14

// ParallelChannel wraps a RangeChannel so MulVec row-partitions and MulVecT
// column-partitions across the shared worker pool. Products remain
// bit-identical to the wrapped channel's serial ones. Small matrices are
// executed serially regardless.
type ParallelChannel struct {
	inner  RangeChannel
	chunks int
	pool   *parallel.Pool
}

// Parallelize wraps c for parallel products over `workers` partitions.
// workers == 0 or 1 (or a channel without range kernels) returns c
// unchanged; workers < 0 selects runtime.NumCPU().
func Parallelize(c Channel, workers int) Channel {
	if workers == 0 || workers == 1 {
		return c
	}
	rc, ok := c.(RangeChannel)
	if !ok {
		return c
	}
	if workers < 0 {
		workers = runtime.NumCPU()
	}
	if workers <= 1 {
		return c
	}
	return &ParallelChannel{inner: rc, chunks: workers, pool: parallel.Default()}
}

// Rows implements Channel.
func (p *ParallelChannel) Rows() int { return p.inner.Rows() }

// Cols implements Channel.
func (p *ParallelChannel) Cols() int { return p.inner.Cols() }

// Unwrap returns the wrapped serial channel.
func (p *ParallelChannel) Unwrap() Channel { return p.inner }

// MulVec implements Channel, row-partitioned across the pool.
func (p *ParallelChannel) MulVec(dst, x []float64) []float64 {
	rows, cols := p.inner.Rows(), p.inner.Cols()
	if len(dst) != rows || len(x) != cols {
		// Fail on the caller's goroutine, not inside a pool worker.
		panic("matrixx: ParallelChannel.MulVec dimension mismatch")
	}
	if rows*cols < parallelThreshold {
		return p.inner.MulVec(dst, x)
	}
	p.pool.For(rows, p.chunks, func(lo, hi int) {
		p.inner.MulVecRows(dst, x, lo, hi)
	})
	return dst
}

// MulVecT implements Channel, column-partitioned across the pool.
func (p *ParallelChannel) MulVecT(dst, x []float64) []float64 {
	rows, cols := p.inner.Rows(), p.inner.Cols()
	if len(dst) != cols || len(x) != rows {
		panic("matrixx: ParallelChannel.MulVecT dimension mismatch")
	}
	if rows*cols < parallelThreshold {
		return p.inner.MulVecT(dst, x)
	}
	p.pool.For(cols, p.chunks, func(lo, hi int) {
		p.inner.MulVecTCols(dst, x, lo, hi)
	})
	return dst
}

// Compile-time checks: the concrete channels support range partitioning and
// the wrapper remains a Channel.
var (
	_ RangeChannel = (*Matrix)(nil)
	_ RangeChannel = (*Banded)(nil)
	_ Channel      = (*ParallelChannel)(nil)
)
