package matrixx

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// waveMatrix builds a column-stochastic wave-shaped matrix (constant floor
// plus a contiguous per-column band) of the kind CompressBanded expects.
func waveMatrix(rows, cols, band int) *Matrix {
	m := New(rows, cols)
	base := 0.2 / float64(rows)
	for i := 0; i < cols; i++ {
		lo := i * (rows - band) / maxInt(cols-1, 1)
		for j := 0; j < rows; j++ {
			m.Set(j, i, base)
		}
		for k := 0; k < band; k++ {
			m.Set(lo+k, i, base+0.8/float64(band))
		}
	}
	m.NormalizeCols()
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func randVec(n int, rng *randx.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()
	}
	v[n/3] = 0 // exercise the xi == 0 skip path
	return v
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: entry %d differs: %v vs %v (Δ=%g)",
				name, i, got[i], want[i], got[i]-want[i])
		}
	}
}

func TestRangeKernelsMatchSerialDense(t *testing.T) {
	rng := randx.New(7)
	for _, shape := range [][2]int{{64, 64}, {200, 128}, {128, 200}, {257, 255}} {
		rows, cols := shape[0], shape[1]
		m := waveMatrix(rows, cols, maxInt(rows/4, 1))
		x := randVec(cols, rng)
		y := randVec(rows, rng)

		want := m.MulVec(make([]float64, rows), x)
		got := make([]float64, rows)
		for _, pieces := range []int{1, 2, 3, 5} {
			for p := 0; p < pieces; p++ {
				lo, hi := rows*p/pieces, rows*(p+1)/pieces
				m.MulVecRows(got, x, lo, hi)
			}
			bitsEqual(t, "dense MulVecRows", got, want)
		}

		wantT := m.MulVecT(make([]float64, cols), y)
		gotT := make([]float64, cols)
		for _, pieces := range []int{1, 2, 3, 5} {
			for p := 0; p < pieces; p++ {
				lo, hi := cols*p/pieces, cols*(p+1)/pieces
				m.MulVecTCols(gotT, y, lo, hi)
			}
			bitsEqual(t, "dense MulVecTCols", gotT, wantT)
		}
	}
}

func TestRangeKernelsMatchSerialBanded(t *testing.T) {
	rng := randx.New(8)
	for _, shape := range [][2]int{{64, 64}, {200, 128}, {300, 300}} {
		rows, cols := shape[0], shape[1]
		b := CompressBanded(waveMatrix(rows, cols, maxInt(rows/5, 1)), 1e-15)
		x := randVec(cols, rng)
		y := randVec(rows, rng)

		want := b.MulVec(make([]float64, rows), x)
		got := make([]float64, rows)
		for p := 0; p < 4; p++ {
			lo, hi := rows*p/4, rows*(p+1)/4
			b.MulVecRows(got, x, lo, hi)
		}
		bitsEqual(t, "banded MulVecRows", got, want)

		wantT := b.MulVecT(make([]float64, cols), y)
		gotT := make([]float64, cols)
		for p := 0; p < 4; p++ {
			lo, hi := cols*p/4, cols*(p+1)/4
			b.MulVecTCols(gotT, y, lo, hi)
		}
		bitsEqual(t, "banded MulVecTCols", gotT, wantT)
	}
}

func TestParallelizeBitIdentical(t *testing.T) {
	rng := randx.New(9)
	rows, cols := 300, 280 // above parallelThreshold
	dense := waveMatrix(rows, cols, 60)
	banded := CompressBanded(dense, 1e-15)
	x := randVec(cols, rng)
	y := randVec(rows, rng)

	for _, tc := range []struct {
		name   string
		serial Channel
	}{{"dense", dense}, {"banded", banded}} {
		for _, workers := range []int{2, 3, 8, -1} {
			par := Parallelize(tc.serial, workers)
			if _, ok := par.(*ParallelChannel); !ok && workers != -1 {
				t.Fatalf("%s: Parallelize(workers=%d) did not wrap", tc.name, workers)
			}
			bitsEqual(t, tc.name+" parallel MulVec",
				par.MulVec(make([]float64, rows), x),
				tc.serial.MulVec(make([]float64, rows), x))
			bitsEqual(t, tc.name+" parallel MulVecT",
				par.MulVecT(make([]float64, cols), y),
				tc.serial.MulVecT(make([]float64, cols), y))
		}
	}
}

func TestParallelizeDegenerate(t *testing.T) {
	m := waveMatrix(32, 32, 8)
	if Parallelize(m, 0) != Channel(m) {
		t.Error("workers=0 should return the channel unchanged")
	}
	if Parallelize(m, 1) != Channel(m) {
		t.Error("workers=1 should return the channel unchanged")
	}
	// Small matrix goes through the serial fallback inside the wrapper.
	par := Parallelize(m, 4)
	x := make([]float64, 32)
	x[3] = 1
	bitsEqual(t, "small-matrix fallback",
		par.MulVec(make([]float64, 32), x),
		m.MulVec(make([]float64, 32), x))
}
