package matrixx

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// waveMatrix builds a column-stochastic wave-shaped matrix (constant floor
// plus a contiguous per-column band) of the kind CompressBanded expects.
func waveMatrix(rows, cols, band int) *Matrix {
	m := New(rows, cols)
	base := 0.2 / float64(rows)
	for i := 0; i < cols; i++ {
		lo := i * (rows - band) / maxInt(cols-1, 1)
		for j := 0; j < rows; j++ {
			m.Set(j, i, base)
		}
		for k := 0; k < band; k++ {
			m.Set(lo+k, i, base+0.8/float64(band))
		}
	}
	m.NormalizeCols()
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func randVec(n int, rng *randx.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()
	}
	v[n/3] = 0 // exercise the xi == 0 skip path
	return v
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: entry %d differs: %v vs %v (Δ=%g)",
				name, i, got[i], want[i], got[i]-want[i])
		}
	}
}

func TestRangeKernelsMatchSerialDense(t *testing.T) {
	rng := randx.New(7)
	for _, shape := range [][2]int{{64, 64}, {200, 128}, {128, 200}, {257, 255}} {
		rows, cols := shape[0], shape[1]
		m := waveMatrix(rows, cols, maxInt(rows/4, 1))
		x := randVec(cols, rng)
		y := randVec(rows, rng)

		want := m.MulVec(make([]float64, rows), x)
		got := make([]float64, rows)
		for _, pieces := range []int{1, 2, 3, 5} {
			for p := 0; p < pieces; p++ {
				lo, hi := rows*p/pieces, rows*(p+1)/pieces
				m.MulVecRows(got, x, lo, hi)
			}
			bitsEqual(t, "dense MulVecRows", got, want)
		}

		wantT := m.MulVecT(make([]float64, cols), y)
		gotT := make([]float64, cols)
		for _, pieces := range []int{1, 2, 3, 5} {
			for p := 0; p < pieces; p++ {
				lo, hi := cols*p/pieces, cols*(p+1)/pieces
				m.MulVecTCols(gotT, y, lo, hi)
			}
			bitsEqual(t, "dense MulVecTCols", gotT, wantT)
		}
	}
}

func TestRangeKernelsMatchSerialBanded(t *testing.T) {
	rng := randx.New(8)
	for _, shape := range [][2]int{{64, 64}, {200, 128}, {300, 300}} {
		rows, cols := shape[0], shape[1]
		b := CompressBanded(waveMatrix(rows, cols, maxInt(rows/5, 1)), 1e-15)
		x := randVec(cols, rng)
		y := randVec(rows, rng)

		want := b.MulVec(make([]float64, rows), x)
		got := make([]float64, rows)
		for p := 0; p < 4; p++ {
			lo, hi := rows*p/4, rows*(p+1)/4
			b.MulVecRows(got, x, lo, hi)
		}
		bitsEqual(t, "banded MulVecRows", got, want)

		wantT := b.MulVecT(make([]float64, cols), y)
		gotT := make([]float64, cols)
		for p := 0; p < 4; p++ {
			lo, hi := cols*p/4, cols*(p+1)/4
			b.MulVecTCols(gotT, y, lo, hi)
		}
		bitsEqual(t, "banded MulVecTCols", gotT, wantT)
	}
}

func TestParallelizeBitIdentical(t *testing.T) {
	rng := randx.New(9)
	rows, cols := 1024, 1024 // dense and banded work both above parallelMinWork
	dense := waveMatrix(rows, cols, 600)
	banded := CompressBanded(dense, 1e-15)
	x := randVec(cols, rng)
	y := randVec(rows, rng)
	counts := make([]float64, rows)
	for j := range counts {
		counts[j] = float64((j * 7) % 23) // zeros included: the ll skip path
	}

	for _, tc := range []struct {
		name   string
		serial RatioChannel
	}{{"dense", dense}, {"banded", banded}} {
		if tc.serial.(workEstimator).MulVecWork() < parallelMinWork {
			t.Fatalf("%s: test channel under parallelMinWork; grow it", tc.name)
		}
		for _, workers := range []int{2, 3, 8, -1} {
			par := Parallelize(tc.serial, workers)
			if _, ok := par.(*ParallelChannel); !ok && workers != -1 {
				t.Fatalf("%s: Parallelize(workers=%d) did not wrap", tc.name, workers)
			}
			bitsEqual(t, tc.name+" parallel MulVec",
				par.MulVec(make([]float64, rows), x),
				tc.serial.MulVec(make([]float64, rows), x))
			bitsEqual(t, tc.name+" parallel MulVecT",
				par.MulVecT(make([]float64, cols), y),
				tc.serial.MulVecT(make([]float64, cols), y))
			if rc, ok := par.(RatioChannel); ok {
				wantR, wantL := make([]float64, rows), make([]float64, rows)
				gotR, gotL := make([]float64, rows), make([]float64, rows)
				tc.serial.MulVecRatio(wantR, wantL, x, counts)
				rc.MulVecRatio(gotR, gotL, x, counts)
				bitsEqual(t, tc.name+" parallel MulVecRatio ratio", gotR, wantR)
				bitsEqual(t, tc.name+" parallel MulVecRatio ll", gotL, wantL)
			} else {
				t.Fatalf("%s: Parallelize result lost the fused kernel", tc.name)
			}
		}
	}
}

func TestFusedRatioMatchesUnfused(t *testing.T) {
	rng := randx.New(10)
	for _, shape := range [][2]int{{64, 64}, {200, 128}, {257, 255}} {
		rows, cols := shape[0], shape[1]
		dense := waveMatrix(rows, cols, maxInt(rows/4, 1))
		banded := CompressBanded(dense, 1e-15)
		x := randVec(cols, rng)
		counts := make([]float64, rows)
		for j := range counts {
			counts[j] = float64((j * 13) % 17)
		}
		for _, tc := range []struct {
			name string
			ch   RatioChannel
		}{{"dense", dense}, {"banded", banded}} {
			// Reference: the unfused E-step exactly as package em ran it.
			denom := tc.ch.MulVec(make([]float64, rows), x)
			wantR, wantL := make([]float64, rows), make([]float64, rows)
			for j := range denom {
				if counts[j] == 0 {
					continue
				}
				dj := denom[j]
				if dj < DenomFloor {
					dj = DenomFloor
				}
				wantR[j] = counts[j] / dj
				wantL[j] = counts[j] * math.Log(dj)
			}
			gotR, gotL := make([]float64, rows), make([]float64, rows)
			tc.ch.MulVecRatio(gotR, gotL, x, counts)
			bitsEqual(t, tc.name+" fused ratio", gotR, wantR)
			bitsEqual(t, tc.name+" fused ll", gotL, wantL)

			// Partitioned fused rows reproduce the one-shot fused pass.
			gotR2, gotL2 := make([]float64, rows), make([]float64, rows)
			for p := 0; p < 5; p++ {
				lo, hi := rows*p/5, rows*(p+1)/5
				tc.ch.(RangeChannel).MulVecRatioRows(gotR2, gotL2, x, counts, lo, hi)
			}
			bitsEqual(t, tc.name+" fused ratio rows", gotR2, wantR)
			bitsEqual(t, tc.name+" fused ll rows", gotL2, wantL)
		}
	}
}

func TestParallelizeDegenerate(t *testing.T) {
	m := waveMatrix(32, 32, 8)
	if Parallelize(m, 0) != Channel(m) {
		t.Error("workers=0 should return the channel unchanged")
	}
	if Parallelize(m, 1) != Channel(m) {
		t.Error("workers=1 should return the channel unchanged")
	}
	// A channel under the flops threshold comes back unwrapped: the serial
	// kernel IS its fast path, whatever the requested parallelism.
	if Parallelize(m, 4) != Channel(m) {
		t.Error("small matrix should be returned unwrapped")
	}
}

func TestParallelizeWorkThreshold(t *testing.T) {
	// A big-but-narrow wave: the dense rows·cols estimate clears the
	// threshold, the banded nnz-based one does not — so the dense channel
	// wraps and its banded compression of the SAME matrix does not. This is
	// the fix for the recorded banded B=1024 parallel regression.
	rows, cols := 1024, 1024
	dense := waveMatrix(rows, cols, 16)
	banded := CompressBanded(dense, 1e-15)
	if dense.MulVecWork() < parallelMinWork {
		t.Fatalf("dense work %d unexpectedly under threshold", dense.MulVecWork())
	}
	if banded.MulVecWork() >= parallelMinWork {
		t.Fatalf("banded work %d unexpectedly over threshold", banded.MulVecWork())
	}
	if _, ok := Parallelize(dense, 4).(*ParallelChannel); !ok {
		t.Error("dense channel above threshold should wrap")
	}
	if Parallelize(banded, 4) != Channel(banded) {
		t.Error("narrow banded channel should be returned unwrapped")
	}
}
