package matrixx

import "fmt"

// Channel is the minimal matrix surface the EM reconstruction needs: the
// forward map (distribution → expected report histogram) and its transpose.
// Both *Matrix and *Banded satisfy it.
type Channel interface {
	Rows() int
	Cols() int
	// MulVec computes dst = M·x (len(dst) = Rows, len(x) = Cols).
	MulVec(dst, x []float64) []float64
	// MulVecT computes dst = Mᵀ·x (len(dst) = Cols, len(x) = Rows).
	MulVecT(dst, x []float64) []float64
}

// Banded is a structured representation of a Square Wave transition matrix:
// a constant floor plus a contiguous per-column band of excess values,
//
//	M[j][i] = base + excess_i[j − lo_i]  for lo_i ≤ j < lo_i+len(excess_i),
//	M[j][i] = base                        otherwise.
//
// The SW channel has exactly this shape — density q everywhere with a
// plateau band around the input — so M·x reduces to base·Σx plus a band
// product whose cost scales with the wave width b instead of the full
// matrix. At large ε (small b) this is an order-of-magnitude EM speedup
// with bit-identical structure (within compression tolerance).
type Banded struct {
	rows, cols int
	base       float64
	lo         []int
	excess     [][]float64

	// Row-major (CSR) view of the excess entries, built once at compression
	// time: for output row j, the contributing columns are tcol[tptr[j]:
	// tptr[j+1]] with excesses tval[...], stored in increasing column order.
	// This is what lets MulVec be partitioned by output row — the natural
	// per-column scatter cannot split rows — while preserving the serial
	// accumulation order exactly.
	tptr []int
	tcol []int
	tval []float64
}

// CompressBanded converts a dense matrix into banded form. base is the
// minimum entry of m; every entry exceeding base by more than tol must form
// one contiguous run per column, which holds for all wave-shaped channels.
// It panics if a column's excess support is not contiguous.
func CompressBanded(m *Matrix, tol float64) *Banded {
	rows, cols := m.Rows(), m.Cols()
	base := m.At(0, 0)
	for i := 0; i < rows; i++ {
		for _, v := range m.Row(i) {
			if v < base {
				base = v
			}
		}
	}
	b := &Banded{rows: rows, cols: cols, base: base,
		lo: make([]int, cols), excess: make([][]float64, cols)}
	for i := 0; i < cols; i++ {
		first, last := -1, -1
		for j := 0; j < rows; j++ {
			if m.At(j, i)-base > tol {
				if first < 0 {
					first = j
				}
				last = j
			}
		}
		if first < 0 {
			b.lo[i] = 0
			b.excess[i] = nil
			continue
		}
		// Contiguity check: no sub-threshold gap inside [first, last].
		ex := make([]float64, last-first+1)
		for j := first; j <= last; j++ {
			ex[j-first] = m.At(j, i) - base
		}
		b.lo[i] = first
		b.excess[i] = ex
	}
	b.buildTranspose()
	return b
}

// buildTranspose indexes the excess entries by output row (CSR). Entries
// within a row are stored in increasing column order, matching the order the
// per-column scatter of the serial MulVec touches each row.
func (b *Banded) buildTranspose() {
	nnz := 0
	for _, ex := range b.excess {
		nnz += len(ex)
	}
	b.tptr = make([]int, b.rows+1)
	for i, ex := range b.excess {
		for k := range ex {
			b.tptr[b.lo[i]+k+1]++
		}
	}
	for j := 0; j < b.rows; j++ {
		b.tptr[j+1] += b.tptr[j]
	}
	b.tcol = make([]int, nnz)
	b.tval = make([]float64, nnz)
	next := make([]int, b.rows)
	copy(next, b.tptr[:b.rows])
	for i, ex := range b.excess {
		lo := b.lo[i]
		for k, e := range ex {
			j := lo + k
			p := next[j]
			next[j]++
			b.tcol[p] = i
			b.tval[p] = e
		}
	}
}

// Rows implements Channel.
func (b *Banded) Rows() int { return b.rows }

// Cols implements Channel.
func (b *Banded) Cols() int { return b.cols }

// Base returns the constant floor.
func (b *Banded) Base() float64 { return b.base }

// Bandwidth returns the widest column band (diagnostics and tests).
func (b *Banded) Bandwidth() int {
	var w int
	for _, ex := range b.excess {
		if len(ex) > w {
			w = len(ex)
		}
	}
	return w
}

// MulVec implements Channel: dst = base·Σx + Σ_i excess_i·x_i scattered
// into the band rows.
func (b *Banded) MulVec(dst, x []float64) []float64 {
	if len(x) != b.cols || len(dst) != b.rows {
		panic(fmt.Sprintf("matrixx: Banded.MulVec dimension mismatch (%d,%d) vs (%d,%d)",
			len(dst), len(x), b.rows, b.cols))
	}
	b.scatterMulVec(dst, x)
	return dst
}

// scatterMulVec is the forward-product core: dst = base·Σx, then every
// column's excess band scattered in increasing column order. It lives in
// its own call-free function so the register allocator keeps the scatter
// loop entirely in registers regardless of what the caller does with the
// result (a trailing call in the same function demotes the loop's
// induction variable to the stack; //go:noinline keeps it that way, since
// inlining would merge it back into exactly such callers).
//
//go:noinline
func (b *Banded) scatterMulVec(dst, x []float64) {
	var sum float64
	for _, v := range x {
		sum += v
	}
	floor := b.base * sum
	for j := range dst {
		dst[j] = floor
	}
	for i, ex := range b.excess {
		xi := x[i]
		if xi == 0 {
			continue
		}
		lo := b.lo[i]
		for k, e := range ex {
			dst[lo+k] += e * xi
		}
	}
}

// gatherRow accumulates one output row of the forward product from the
// transpose index: the constant floor first, then the band contributions in
// increasing column order — exactly the order scatterMulVec produces for
// that row, so gather and scatter are bit-identical. Call-free for the same
// regalloc reason as scatterMulVec.
//
//go:noinline
func (b *Banded) gatherRow(x []float64, j int, floor float64) float64 {
	acc := floor
	s, e := b.tptr[j], b.tptr[j+1]
	cols := b.tcol[s:e]
	vals := b.tval[s:e]
	for k, i := range cols {
		xi := x[i]
		if xi == 0 {
			continue
		}
		acc += vals[k] * xi
	}
	return acc
}

// MulVecT implements Channel: dst_i = base·Σy + excess_i·y[band_i].
func (b *Banded) MulVecT(dst, y []float64) []float64 {
	if len(y) != b.rows || len(dst) != b.cols {
		panic(fmt.Sprintf("matrixx: Banded.MulVecT dimension mismatch (%d,%d) vs (%d,%d)",
			len(dst), len(y), b.cols, b.rows))
	}
	var sum float64
	for _, v := range y {
		sum += v
	}
	floor := b.base * sum
	for i, ex := range b.excess {
		lo := b.lo[i]
		acc := floor
		for k, e := range ex {
			acc += e * y[lo+k]
		}
		dst[i] = acc
	}
	return dst
}

// MulVecRows computes the dst[lo:hi] rows of M·x via the row-major excess
// index, leaving the rest of dst untouched. For every output row the
// contributions are added in increasing column order after the constant
// floor — exactly the order the serial MulVec scatter produces — so a row
// partition across goroutines is bit-identical to MulVec.
func (b *Banded) MulVecRows(dst, x []float64, lo, hi int) {
	if len(x) != b.cols || len(dst) != b.rows || lo < 0 || hi > b.rows || lo > hi {
		panic("matrixx: Banded.MulVecRows dimension mismatch")
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	floor := b.base * sum
	for j := lo; j < hi; j++ {
		dst[j] = b.gatherRow(x, j, floor)
	}
}

// MulVecTCols computes the dst[lo:hi] columns of Mᵀ·y, leaving the rest of
// dst untouched. Columns are independent in the banded transpose product, so
// this is the serial MulVecT loop restricted to [lo, hi) — bit-identical
// under any partition.
func (b *Banded) MulVecTCols(dst, y []float64, lo, hi int) {
	if len(y) != b.rows || len(dst) != b.cols || lo < 0 || hi > b.cols || lo > hi {
		panic("matrixx: Banded.MulVecTCols dimension mismatch")
	}
	var sum float64
	for _, v := range y {
		sum += v
	}
	floor := b.base * sum
	for i := lo; i < hi; i++ {
		blo := b.lo[i]
		acc := floor
		for k, e := range b.excess[i] {
			acc += e * y[blo+k]
		}
		dst[i] = acc
	}
}

// Dense materializes the banded matrix back to dense form (tests).
func (b *Banded) Dense() *Matrix {
	m := New(b.rows, b.cols)
	for i := 0; i < b.cols; i++ {
		for j := 0; j < b.rows; j++ {
			m.Set(j, i, b.base)
		}
		for k, e := range b.excess[i] {
			m.Set(b.lo[i]+k, i, b.base+e)
		}
	}
	return m
}

// Compile-time interface checks.
var (
	_ Channel = (*Matrix)(nil)
	_ Channel = (*Banded)(nil)
)
