package matrixx

import "fmt"

// Channel is the minimal matrix surface the EM reconstruction needs: the
// forward map (distribution → expected report histogram) and its transpose.
// Both *Matrix and *Banded satisfy it.
type Channel interface {
	Rows() int
	Cols() int
	// MulVec computes dst = M·x (len(dst) = Rows, len(x) = Cols).
	MulVec(dst, x []float64) []float64
	// MulVecT computes dst = Mᵀ·x (len(dst) = Cols, len(x) = Rows).
	MulVecT(dst, x []float64) []float64
}

// Banded is a structured representation of a Square Wave transition matrix:
// a constant floor plus a contiguous per-column band of excess values,
//
//	M[j][i] = base + excess_i[j − lo_i]  for lo_i ≤ j < lo_i+len(excess_i),
//	M[j][i] = base                        otherwise.
//
// The SW channel has exactly this shape — density q everywhere with a
// plateau band around the input — so M·x reduces to base·Σx plus a band
// product whose cost scales with the wave width b instead of the full
// matrix. At large ε (small b) this is an order-of-magnitude EM speedup
// with bit-identical structure (within compression tolerance).
type Banded struct {
	rows, cols int
	base       float64
	lo         []int
	excess     [][]float64
}

// CompressBanded converts a dense matrix into banded form. base is the
// minimum entry of m; every entry exceeding base by more than tol must form
// one contiguous run per column, which holds for all wave-shaped channels.
// It panics if a column's excess support is not contiguous.
func CompressBanded(m *Matrix, tol float64) *Banded {
	rows, cols := m.Rows(), m.Cols()
	base := m.At(0, 0)
	for i := 0; i < rows; i++ {
		for _, v := range m.Row(i) {
			if v < base {
				base = v
			}
		}
	}
	b := &Banded{rows: rows, cols: cols, base: base,
		lo: make([]int, cols), excess: make([][]float64, cols)}
	for i := 0; i < cols; i++ {
		first, last := -1, -1
		for j := 0; j < rows; j++ {
			if m.At(j, i)-base > tol {
				if first < 0 {
					first = j
				}
				last = j
			}
		}
		if first < 0 {
			b.lo[i] = 0
			b.excess[i] = nil
			continue
		}
		// Contiguity check: no sub-threshold gap inside [first, last].
		ex := make([]float64, last-first+1)
		for j := first; j <= last; j++ {
			ex[j-first] = m.At(j, i) - base
		}
		b.lo[i] = first
		b.excess[i] = ex
	}
	return b
}

// Rows implements Channel.
func (b *Banded) Rows() int { return b.rows }

// Cols implements Channel.
func (b *Banded) Cols() int { return b.cols }

// Base returns the constant floor.
func (b *Banded) Base() float64 { return b.base }

// Bandwidth returns the widest column band (diagnostics and tests).
func (b *Banded) Bandwidth() int {
	var w int
	for _, ex := range b.excess {
		if len(ex) > w {
			w = len(ex)
		}
	}
	return w
}

// MulVec implements Channel: dst = base·Σx + Σ_i excess_i·x_i scattered
// into the band rows.
func (b *Banded) MulVec(dst, x []float64) []float64 {
	if len(x) != b.cols || len(dst) != b.rows {
		panic(fmt.Sprintf("matrixx: Banded.MulVec dimension mismatch (%d,%d) vs (%d,%d)",
			len(dst), len(x), b.rows, b.cols))
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	floor := b.base * sum
	for j := range dst {
		dst[j] = floor
	}
	for i, ex := range b.excess {
		xi := x[i]
		if xi == 0 {
			continue
		}
		lo := b.lo[i]
		for k, e := range ex {
			dst[lo+k] += e * xi
		}
	}
	return dst
}

// MulVecT implements Channel: dst_i = base·Σy + excess_i·y[band_i].
func (b *Banded) MulVecT(dst, y []float64) []float64 {
	if len(y) != b.rows || len(dst) != b.cols {
		panic(fmt.Sprintf("matrixx: Banded.MulVecT dimension mismatch (%d,%d) vs (%d,%d)",
			len(dst), len(y), b.cols, b.rows))
	}
	var sum float64
	for _, v := range y {
		sum += v
	}
	floor := b.base * sum
	for i, ex := range b.excess {
		lo := b.lo[i]
		acc := floor
		for k, e := range ex {
			acc += e * y[lo+k]
		}
		dst[i] = acc
	}
	return dst
}

// Dense materializes the banded matrix back to dense form (tests).
func (b *Banded) Dense() *Matrix {
	m := New(b.rows, b.cols)
	for i := 0; i < b.cols; i++ {
		for j := 0; j < b.rows; j++ {
			m.Set(j, i, b.base)
		}
		for k, e := range b.excess[i] {
			m.Set(b.lo[i]+k, i, b.base+e)
		}
	}
	return m
}

// Compile-time interface checks.
var (
	_ Channel = (*Matrix)(nil)
	_ Channel = (*Banded)(nil)
)
