package matrixx

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/randx"
)

// waveLike builds a dense matrix with the SW structure: floor q plus a
// contiguous band of height p−q around the (scaled) diagonal.
func waveLike(rows, cols int, q, p float64, half int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < cols; i++ {
		center := i * rows / cols
		for j := 0; j < rows; j++ {
			v := q
			if j >= center-half && j <= center+half {
				v = p
			}
			m.Set(j, i, v)
		}
	}
	return m
}

func TestCompressBandedRoundTrip(t *testing.T) {
	m := waveLike(32, 32, 0.01, 0.08, 4)
	b := CompressBanded(m, 1e-12)
	if b.Base() != 0.01 {
		t.Errorf("base = %v, want 0.01", b.Base())
	}
	if got := b.Dense().MaxAbsDiff(m); got > 1e-12 {
		t.Errorf("round trip differs by %v", got)
	}
	if b.Bandwidth() != 9 {
		t.Errorf("bandwidth = %d, want 9", b.Bandwidth())
	}
}

func TestBandedMulVecMatchesDense(t *testing.T) {
	rng := randx.New(1)
	for trial := 0; trial < 20; trial++ {
		rows := 16 + rng.IntN(48)
		cols := 16 + rng.IntN(48)
		half := 1 + rng.IntN(6)
		m := waveLike(rows, cols, 0.003, 0.05, half)
		b := CompressBanded(m, 1e-12)

		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.Float64()
		}
		dDense := m.MulVec(make([]float64, rows), x)
		dBand := b.MulVec(make([]float64, rows), x)
		if mathx.L1(dDense, dBand) > 1e-9 {
			t.Fatalf("trial %d: MulVec differs", trial)
		}

		y := make([]float64, rows)
		for i := range y {
			y[i] = rng.Float64()
		}
		tDense := m.MulVecT(make([]float64, cols), y)
		tBand := b.MulVecT(make([]float64, cols), y)
		if mathx.L1(tDense, tBand) > 1e-9 {
			t.Fatalf("trial %d: MulVecT differs", trial)
		}
	}
}

func TestBandedConstantMatrix(t *testing.T) {
	// A constant matrix compresses to empty bands.
	m := New(8, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			m.Set(i, j, 0.125)
		}
	}
	b := CompressBanded(m, 1e-12)
	if b.Bandwidth() != 0 {
		t.Errorf("constant matrix bandwidth = %d", b.Bandwidth())
	}
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	got := b.MulVec(make([]float64, 8), x)
	want := m.MulVec(make([]float64, 8), x)
	if mathx.L1(got, want) > 1e-12 {
		t.Error("constant matrix product differs")
	}
}

func TestBandedDimensionPanics(t *testing.T) {
	b := CompressBanded(waveLike(8, 8, 0.01, 0.1, 1), 1e-12)
	cases := []func(){
		func() { b.MulVec(make([]float64, 7), make([]float64, 8)) },
		func() { b.MulVecT(make([]float64, 7), make([]float64, 8)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkDenseMulVec1024Narrow(b *testing.B) {
	m := waveLike(1024, 1024, 0.0005, 0.02, 30)
	x := make([]float64, 1024)
	for i := range x {
		x[i] = 1.0 / 1024
	}
	dst := make([]float64, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkBandedMulVec1024Narrow(b *testing.B) {
	m := CompressBanded(waveLike(1024, 1024, 0.0005, 0.02, 30), 1e-12)
	x := make([]float64, 1024)
	for i := range x {
		x[i] = 1.0 / 1024
	}
	dst := make([]float64, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}
