package matrixx

import (
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/randx"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %v", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Errorf("zero value not zero")
	}
}

func TestNewPanics(t *testing.T) {
	for _, shape := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) should panic", shape)
				}
			}()
			New(shape[0], shape[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows content wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows should panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowIsView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 99 {
		t.Error("Row should be a view into the matrix")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
	})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Errorf("MulVec = %v", dst)
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	m.MulVec(dst, []float64{1, 1})
}

func TestMulVecT(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
	})
	dst := make([]float64, 3)
	m.MulVecT(dst, []float64{1, 1})
	want := []float64{5, 7, 9}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("MulVecT[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestMulVecTMatchesExplicitTranspose(t *testing.T) {
	rng := randx.New(1)
	err := quick.Check(func(seed uint64) bool {
		r := rng.Split(seed)
		m := New(7, 5)
		for i := 0; i < 7; i++ {
			for j := 0; j < 5; j++ {
				m.Set(i, j, r.Normal(0, 1))
			}
		}
		x := make([]float64, 7)
		for i := range x {
			x[i] = r.Normal(0, 1)
		}
		fast := m.MulVecT(make([]float64, 5), x)
		slow := make([]float64, 5)
		for j := 0; j < 5; j++ {
			for i := 0; i < 7; i++ {
				slow[j] += m.At(i, j) * x[i]
			}
		}
		return mathx.L1(fast, slow) < 1e-9
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestColSumsAndNormalize(t *testing.T) {
	m := FromRows([][]float64{
		{1, 0, 2},
		{3, 0, 2},
	})
	sums := m.ColSums()
	want := []float64{4, 0, 4}
	for i := range want {
		if sums[i] != want[i] {
			t.Errorf("ColSums[%d] = %v, want %v", i, sums[i], want[i])
		}
	}
	m.NormalizeCols()
	if !mathx.AlmostEqual(m.At(0, 0), 0.25, 1e-12) || !mathx.AlmostEqual(m.At(1, 0), 0.75, 1e-12) {
		t.Errorf("NormalizeCols wrong: %v %v", m.At(0, 0), m.At(1, 0))
	}
	// Zero column left alone.
	if m.At(0, 1) != 0 || m.At(1, 1) != 0 {
		t.Error("zero column was modified")
	}
}

func TestIsColumnStochastic(t *testing.T) {
	m := FromRows([][]float64{
		{0.5, 1},
		{0.5, 0},
	})
	if !m.IsColumnStochastic(1e-12) {
		t.Error("valid stochastic matrix rejected")
	}
	m.Set(0, 0, -0.5)
	if m.IsColumnStochastic(1e-12) {
		t.Error("negative entry accepted")
	}
	m.Set(0, 0, 0.6)
	if m.IsColumnStochastic(1e-12) {
		t.Error("non-unit column accepted")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1.5, 1}})
	if got := a.MaxAbsDiff(b); got != 1 {
		t.Errorf("MaxAbsDiff = %v, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	a.MaxAbsDiff(New(2, 2))
}

func BenchmarkMulVec1024(b *testing.B) {
	m := New(1024, 1024)
	x := make([]float64, 1024)
	dst := make([]float64, 1024)
	for i := range x {
		x[i] = 1.0 / 1024
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}
