// Package matrixx provides the small dense-matrix substrate used by the
// Square Wave transition matrix and the EM reconstruction: row-major float64
// matrices with the handful of operations the estimators need (matrix–vector
// products, column sums/normalization, transpose products). Dimensions in
// this library top out around 2048×2048, so a simple contiguous layout with
// cache-friendly loops is all that is required.
package matrixx

import (
	"fmt"

	"repro/internal/mathx"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero matrix with the given shape. It panics on non-positive
// dimensions.
func New(rows, cols int) *Matrix {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("matrixx: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be non-empty and of
// equal length. The data is copied.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("matrixx: FromRows needs non-empty data")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("matrixx: FromRows with ragged rows")
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the (i, j) entry.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the (i, j) entry.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// MulVec computes dst = M·x. dst must have length Rows and x length Cols;
// dst must not alias x. It returns dst for chaining.
func (m *Matrix) MulVec(dst, x []float64) []float64 {
	if len(x) != m.cols || len(dst) != m.rows {
		panic("matrixx: MulVec dimension mismatch")
	}
	m.MulVecRows(dst, x, 0, m.rows)
	return dst
}

// MulVecRows computes the dst[lo:hi] rows of M·x, leaving the rest of dst
// untouched. Disjoint row ranges are independent, so a row partition across
// goroutines reproduces MulVec bit for bit (each dst entry is accumulated in
// the same order as the serial product).
//
// Rows are processed four at a time: each row keeps its own accumulator and
// adds its terms in exactly the serial left-to-right order, so the result is
// bit-identical to the one-row loop — but the four independent accumulator
// chains hide the floating-point add latency that a single dependent chain
// is bound by, which is where the dense product's time actually goes.
func (m *Matrix) MulVecRows(dst, x []float64, lo, hi int) {
	if len(x) != m.cols || len(dst) != m.rows || lo < 0 || hi > m.rows || lo > hi {
		panic("matrixx: MulVecRows dimension mismatch")
	}
	i := lo
	for ; i+4 <= hi; i += 4 {
		d0, d1, d2, d3 := m.dot4(x, i)
		dst[i], dst[i+1], dst[i+2], dst[i+3] = d0, d1, d2, d3
	}
	for ; i < hi; i++ {
		dst[i] = dotRow(m.Row(i), x)
	}
}

// dot4 computes the dot products of rows i..i+3 against x, each accumulated
// in serial order on its own chain.
func (m *Matrix) dot4(x []float64, i int) (d0, d1, d2, d3 float64) {
	c := m.cols
	r0 := m.data[(i+0)*c : (i+1)*c : (i+1)*c]
	r1 := m.data[(i+1)*c : (i+2)*c : (i+2)*c]
	r2 := m.data[(i+2)*c : (i+3)*c : (i+3)*c]
	r3 := m.data[(i+3)*c : (i+4)*c : (i+4)*c]
	// Reslicing to len(x) lets the compiler drop the bounds checks in the
	// inner loop (len(x) == cols == len(rk) is established by the caller).
	r0, r1, r2, r3 = r0[:len(x)], r1[:len(x)], r2[:len(x)], r3[:len(x)]
	for j, xj := range x {
		d0 += r0[j] * xj
		d1 += r1[j] * xj
		d2 += r2[j] * xj
		d3 += r3[j] * xj
	}
	return d0, d1, d2, d3
}

// dotRow is the single-row serial dot product.
func dotRow(row, x []float64) float64 {
	var acc float64
	for j, v := range row {
		acc += v * x[j]
	}
	return acc
}

// MulVecT computes dst = Mᵀ·x (x over rows, dst over columns) without
// materializing the transpose. dst must not alias x.
func (m *Matrix) MulVecT(dst, x []float64) []float64 {
	if len(x) != m.rows || len(dst) != m.cols {
		panic("matrixx: MulVecT dimension mismatch")
	}
	m.MulVecTCols(dst, x, 0, m.cols)
	return dst
}

// MulVecTCols computes the dst[lo:hi] columns of Mᵀ·x, leaving the rest of
// dst untouched. Each output column still accumulates over rows in
// increasing order, so a column partition across goroutines reproduces
// MulVecT bit for bit.
//
// Rows are consumed four at a time when all four weights are non-zero: each
// output entry receives its four contributions as separate adds in the same
// increasing-row order the one-row loop uses (bit-identical), but one pass
// over the output segment replaces four. Blocks containing a zero weight
// fall back to the one-row loop so the serial skip-zero semantics are
// preserved exactly.
func (m *Matrix) MulVecTCols(dst, x []float64, lo, hi int) {
	if len(x) != m.rows || len(dst) != m.cols || lo < 0 || hi > m.cols || lo > hi {
		panic("matrixx: MulVecTCols dimension mismatch")
	}
	seg := dst[lo:hi]
	for j := range seg {
		seg[j] = 0
	}
	i := 0
	for ; i+4 <= m.rows; i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		if x0 == 0 || x1 == 0 || x2 == 0 || x3 == 0 {
			m.scatterRows(seg, x, i, i+4, lo, hi)
			continue
		}
		c := m.cols
		r0 := m.data[(i+0)*c+lo : (i+0)*c+hi : (i+0)*c+hi]
		r1 := m.data[(i+1)*c+lo : (i+1)*c+hi : (i+1)*c+hi]
		r2 := m.data[(i+2)*c+lo : (i+2)*c+hi : (i+2)*c+hi]
		r3 := m.data[(i+3)*c+lo : (i+3)*c+hi : (i+3)*c+hi]
		r0, r1, r2, r3 = r0[:len(seg)], r1[:len(seg)], r2[:len(seg)], r3[:len(seg)]
		for j := range seg {
			s := seg[j]
			s += r0[j] * x0
			s += r1[j] * x1
			s += r2[j] * x2
			s += r3[j] * x3
			seg[j] = s
		}
	}
	m.scatterRows(seg, x, i, m.rows, lo, hi)
}

// scatterRows adds rows [i0, i1) of the transpose product into seg one row
// at a time — the serial loop, with its skip of zero weights.
func (m *Matrix) scatterRows(seg, x []float64, i0, i1, lo, hi int) {
	for i := i0; i < i1; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols+lo : i*m.cols+hi : i*m.cols+hi]
		row = row[:len(seg)]
		for j, v := range row {
			seg[j] += v * xi
		}
	}
}

// ColSums returns the sum of each column.
func (m *Matrix) ColSums() []float64 {
	sums := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += v
		}
	}
	return sums
}

// NormalizeCols scales each column to sum to 1. Columns that sum to zero are
// left untouched. This is used to squash residual quadrature error in
// transition matrices, whose columns are probability distributions.
func (m *Matrix) NormalizeCols() {
	sums := m.ColSums()
	for j, s := range sums {
		if s == 0 {
			continue
		}
		sums[j] = 1 / s
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= sums[j]
		}
	}
}

// IsColumnStochastic reports whether every entry is non-negative and every
// column sums to 1 within tol.
func (m *Matrix) IsColumnStochastic(tol float64) bool {
	for _, v := range m.data {
		if v < -tol {
			return false
		}
	}
	for _, s := range m.ColSums() {
		if !mathx.AlmostEqual(s, 1, tol) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute entry-wise difference between m
// and other, which must have the same shape.
func (m *Matrix) MaxAbsDiff(other *Matrix) float64 {
	if m.rows != other.rows || m.cols != other.cols {
		panic("matrixx: MaxAbsDiff shape mismatch")
	}
	var worst float64
	for i, v := range m.data {
		d := v - other.data[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
