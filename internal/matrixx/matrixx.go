// Package matrixx provides the small dense-matrix substrate used by the
// Square Wave transition matrix and the EM reconstruction: row-major float64
// matrices with the handful of operations the estimators need (matrix–vector
// products, column sums/normalization, transpose products). Dimensions in
// this library top out around 2048×2048, so a simple contiguous layout with
// cache-friendly loops is all that is required.
package matrixx

import (
	"fmt"

	"repro/internal/mathx"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero matrix with the given shape. It panics on non-positive
// dimensions.
func New(rows, cols int) *Matrix {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("matrixx: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be non-empty and of
// equal length. The data is copied.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("matrixx: FromRows needs non-empty data")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("matrixx: FromRows with ragged rows")
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the (i, j) entry.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the (i, j) entry.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// MulVec computes dst = M·x. dst must have length Rows and x length Cols;
// dst must not alias x. It returns dst for chaining.
func (m *Matrix) MulVec(dst, x []float64) []float64 {
	if len(x) != m.cols || len(dst) != m.rows {
		panic("matrixx: MulVec dimension mismatch")
	}
	m.MulVecRows(dst, x, 0, m.rows)
	return dst
}

// MulVecRows computes the dst[lo:hi] rows of M·x, leaving the rest of dst
// untouched. Disjoint row ranges are independent, so a row partition across
// goroutines reproduces MulVec bit for bit (each dst entry is accumulated in
// the same order as the serial product).
func (m *Matrix) MulVecRows(dst, x []float64, lo, hi int) {
	if len(x) != m.cols || len(dst) != m.rows || lo < 0 || hi > m.rows || lo > hi {
		panic("matrixx: MulVecRows dimension mismatch")
	}
	for i := lo; i < hi; i++ {
		row := m.Row(i)
		var acc float64
		for j, v := range row {
			acc += v * x[j]
		}
		dst[i] = acc
	}
}

// MulVecT computes dst = Mᵀ·x (x over rows, dst over columns) without
// materializing the transpose. dst must not alias x.
func (m *Matrix) MulVecT(dst, x []float64) []float64 {
	if len(x) != m.rows || len(dst) != m.cols {
		panic("matrixx: MulVecT dimension mismatch")
	}
	m.MulVecTCols(dst, x, 0, m.cols)
	return dst
}

// MulVecTCols computes the dst[lo:hi] columns of Mᵀ·x, leaving the rest of
// dst untouched. Each output column still accumulates over rows in
// increasing order, so a column partition across goroutines reproduces
// MulVecT bit for bit.
func (m *Matrix) MulVecTCols(dst, x []float64, lo, hi int) {
	if len(x) != m.rows || len(dst) != m.cols || lo < 0 || hi > m.cols || lo > hi {
		panic("matrixx: MulVecTCols dimension mismatch")
	}
	seg := dst[lo:hi]
	for j := range seg {
		seg[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols+lo : i*m.cols+hi : i*m.cols+hi]
		for j, v := range row {
			seg[j] += v * xi
		}
	}
}

// ColSums returns the sum of each column.
func (m *Matrix) ColSums() []float64 {
	sums := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += v
		}
	}
	return sums
}

// NormalizeCols scales each column to sum to 1. Columns that sum to zero are
// left untouched. This is used to squash residual quadrature error in
// transition matrices, whose columns are probability distributions.
func (m *Matrix) NormalizeCols() {
	sums := m.ColSums()
	for j, s := range sums {
		if s == 0 {
			continue
		}
		sums[j] = 1 / s
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= sums[j]
		}
	}
}

// IsColumnStochastic reports whether every entry is non-negative and every
// column sums to 1 within tol.
func (m *Matrix) IsColumnStochastic(tol float64) bool {
	for _, v := range m.data {
		if v < -tol {
			return false
		}
	}
	for _, s := range m.ColSums() {
		if !mathx.AlmostEqual(s, 1, tol) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute entry-wise difference between m
// and other, which must have the same shape.
func (m *Matrix) MaxAbsDiff(other *Matrix) float64 {
	if m.rows != other.rows || m.cols != other.cols {
		panic("matrixx: MaxAbsDiff shape mismatch")
	}
	var worst float64
	for i, v := range m.data {
		d := v - other.data[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
