package matrixx

import "math"

// DenomFloor is the clamp the EM E-step applies to the per-row denominator
// (M·x)_j before dividing and taking its log, shared between the fused
// kernels here and the unfused fallback in package em so the two can never
// diverge.
const DenomFloor = 1e-300

// RatioChannel is a Channel that can fuse the EM E-step into its forward
// product: one sweep over the matrix computes denom = M·x, the clamped
// counts/denom ratio, and the per-row log-likelihood term, instead of a
// product pass followed by a separate pass over the result. The fused form
// halves the traffic over the denominator vector and — because ll is
// reported per ROW, with the caller summing the terms serially — stays
// bit-identical to the unfused serial E-step under any row partition.
type RatioChannel interface {
	Channel
	// MulVecRatio computes, for every output row j:
	//
	//	denom_j  = (M·x)_j, accumulated exactly as MulVec accumulates it
	//	ratio[j] = counts[j] / max(denom_j, DenomFloor)   (0 when counts[j] == 0)
	//	ll[j]    = counts[j] · ln(max(denom_j, DenomFloor)) (0 when counts[j] == 0)
	//
	// len(ratio) = len(ll) = len(counts) = Rows, len(x) = Cols. counts must
	// be non-negative. Summing ll serially in increasing row order
	// reproduces the unfused log-likelihood accumulation bit for bit: the
	// skipped rows contribute an explicit +0.0, and no term or partial sum
	// of this form can be -0.0, so the added zeros do not change a single
	// bit of the total.
	MulVecRatio(ratio, ll, x, counts []float64)
}

// ratioRow finishes one fused E-step row from its accumulated denominator.
func ratioRow(ratio, ll, counts []float64, j int, denom float64) {
	c := counts[j]
	if c == 0 {
		ratio[j] = 0
		ll[j] = 0
		return
	}
	if denom < DenomFloor {
		denom = DenomFloor
	}
	ratio[j] = c / denom
	ll[j] = c * math.Log(denom)
}

// MulVecRatio implements RatioChannel.
func (m *Matrix) MulVecRatio(ratio, ll, x, counts []float64) {
	m.MulVecRatioRows(ratio, ll, x, counts, 0, m.rows)
}

// MulVecRatioRows computes the [lo, hi) rows of the fused E-step, leaving
// the rest of ratio and ll untouched. Every output element is produced from
// a denominator accumulated in serial order (see MulVecRows), so a row
// partition across goroutines is bit-identical to the serial fused pass.
func (m *Matrix) MulVecRatioRows(ratio, ll, x, counts []float64, lo, hi int) {
	if len(x) != m.cols || len(ratio) != m.rows || len(ll) != m.rows ||
		len(counts) != m.rows || lo < 0 || hi > m.rows || lo > hi {
		panic("matrixx: MulVecRatioRows dimension mismatch")
	}
	i := lo
	for ; i+4 <= hi; i += 4 {
		d0, d1, d2, d3 := m.dot4(x, i)
		ratioRow(ratio, ll, counts, i, d0)
		ratioRow(ratio, ll, counts, i+1, d1)
		ratioRow(ratio, ll, counts, i+2, d2)
		ratioRow(ratio, ll, counts, i+3, d3)
	}
	for ; i < hi; i++ {
		ratioRow(ratio, ll, counts, i, dotRow(m.Row(i), x))
	}
}

// MulVecRatio implements RatioChannel. The full-range pass scatters
// column-by-column like MulVec — independent stores instead of one long
// accumulator chain per row — using ratio itself as the denominator
// scratch, then finishes every row in place. For each output row the
// contributions still arrive in increasing column order after the constant
// floor, exactly the order the row-gather in MulVecRatioRows accumulates
// them, so the two forms are bit-identical.
func (b *Banded) MulVecRatio(ratio, ll, x, counts []float64) {
	if len(x) != b.cols || len(ratio) != b.rows || len(ll) != b.rows || len(counts) != b.rows {
		panic("matrixx: Banded.MulVecRatio dimension mismatch")
	}
	b.scatterMulVec(ratio, x)
	for j := range ratio {
		ratioRow(ratio, ll, counts, j, ratio[j])
	}
}

// MulVecRatioRows computes the [lo, hi) rows of the fused E-step via the
// row-major excess index (see Banded.MulVecRows for why the order matches
// the serial scatter), leaving the rest of ratio and ll untouched.
func (b *Banded) MulVecRatioRows(ratio, ll, x, counts []float64, lo, hi int) {
	if len(x) != b.cols || len(ratio) != b.rows || len(ll) != b.rows ||
		len(counts) != b.rows || lo < 0 || hi > b.rows || lo > hi {
		panic("matrixx: Banded.MulVecRatioRows dimension mismatch")
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	floor := b.base * sum
	for j := lo; j < hi; j++ {
		ratioRow(ratio, ll, counts, j, b.gatherRow(x, j, floor))
	}
}
