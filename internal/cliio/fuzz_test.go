package cliio

import (
	"math"
	"strings"
	"testing"
)

// FuzzReadValues checks the parser never panics and that every accepted
// value is finite.
func FuzzReadValues(f *testing.F) {
	f.Add("0.5\n1.25\n")
	f.Add("# comment\n\n0.1")
	f.Add("NaN\n")
	f.Add("1e309\n")
	f.Add("0.1 0.2\n")
	f.Fuzz(func(t *testing.T, in string) {
		vals, err := ReadValues(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted non-finite value %v from %q", v, in)
			}
		}
	})
}

// FuzzResolveDomain checks domain resolution never returns an unusable
// (non-positive-width) domain without an error.
func FuzzResolveDomain(f *testing.F) {
	f.Add(0.0, 1.0, 0.5, 0.7)
	f.Add(math.NaN(), math.NaN(), 0.5, 0.7)
	f.Add(5.0, 5.0, 1.0, 2.0)
	f.Fuzz(func(t *testing.T, lo, hi, v1, v2 float64) {
		if math.IsInf(lo, 0) || math.IsInf(hi, 0) || math.IsNaN(v1) || math.IsNaN(v2) ||
			math.IsInf(v1, 0) || math.IsInf(v2, 0) {
			t.Skip()
		}
		d, err := ResolveDomain([]float64{v1, v2}, lo, hi)
		if err != nil {
			return
		}
		if !(d.Hi > d.Lo) {
			t.Fatalf("ResolveDomain returned empty domain %+v without error", d)
		}
		// Scaling the bounds lands on 0 and 1.
		if got := d.Scale(d.Lo); got != 0 {
			t.Fatalf("Scale(lo) = %v", got)
		}
		if got := d.Scale(d.Hi); math.Abs(got-1) > 1e-12 {
			t.Fatalf("Scale(hi) = %v", got)
		}
	})
}
