// Package cliio holds the input parsing shared by the command-line tools:
// reading whitespace/line-separated float values with comment support, and
// domain rescaling with explicit provenance (public bounds vs derived from
// data), so the logic is unit-tested instead of living untested in main().
package cliio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ReadValues parses one float64 per line from r. Blank lines and lines
// starting with '#' are skipped. Parse failures report the line number.
func ReadValues(r io.Reader) ([]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var out []float64
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("line %d: non-finite value %q", line, s)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Domain is a resolved input domain with provenance.
type Domain struct {
	Lo, Hi float64
	// Derived is true when the bounds were inferred from the private data
	// rather than supplied as public constants — acceptable for
	// experimentation, a privacy leak in deployment (callers should warn).
	Derived bool
}

// ResolveDomain returns the domain to rescale with: the explicit bounds if
// both are finite, otherwise the observed min/max of values (Derived=true).
// It errors on an empty or single-point domain.
func ResolveDomain(values []float64, lo, hi float64) (Domain, error) {
	d := Domain{Lo: lo, Hi: hi}
	if math.IsNaN(lo) || math.IsNaN(hi) {
		if len(values) == 0 {
			return d, fmt.Errorf("cliio: no values to derive a domain from")
		}
		d.Lo, d.Hi = values[0], values[0]
		for _, v := range values {
			d.Lo = math.Min(d.Lo, v)
			d.Hi = math.Max(d.Hi, v)
		}
		d.Derived = true
	}
	if d.Hi <= d.Lo {
		return d, fmt.Errorf("cliio: empty domain [%g, %g]", d.Lo, d.Hi)
	}
	return d, nil
}

// Scale maps v from the domain into [0,1].
func (d Domain) Scale(v float64) float64 { return (v - d.Lo) / (d.Hi - d.Lo) }

// Unscale maps x ∈ [0,1] back to the domain.
func (d Domain) Unscale(x float64) float64 { return d.Lo + x*(d.Hi-d.Lo) }

// ScaleAll maps a slice into [0,1] (fresh slice).
func (d Domain) ScaleAll(values []float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = d.Scale(v)
	}
	return out
}
