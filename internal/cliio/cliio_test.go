package cliio

import (
	"math"
	"strings"
	"testing"
)

func TestReadValues(t *testing.T) {
	in := "0.5\n# comment\n\n  1.25  \n-3e-2\n"
	got, err := ReadValues(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1.25, -0.03}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("value[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReadValuesErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"garbage", "1.0\nnot-a-number\n"},
		{"nan", "NaN\n"},
		{"inf", "+Inf\n"},
	}
	for _, tc := range cases {
		if _, err := ReadValues(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		} else if tc.name == "garbage" && !strings.Contains(err.Error(), "line 2") {
			t.Errorf("error should name the line: %v", err)
		}
	}
}

func TestReadValuesEmpty(t *testing.T) {
	got, err := ReadValues(strings.NewReader("# only comments\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("got %v, %v", got, err)
	}
}

func TestResolveDomainExplicit(t *testing.T) {
	d, err := ResolveDomain([]float64{5, 9}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Derived {
		t.Error("explicit bounds flagged as derived")
	}
	if d.Scale(5) != 0.5 || d.Unscale(0.5) != 5 {
		t.Errorf("scaling wrong: %v, %v", d.Scale(5), d.Unscale(0.5))
	}
}

func TestResolveDomainDerived(t *testing.T) {
	d, err := ResolveDomain([]float64{2, 8, 5}, math.NaN(), math.NaN())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Derived || d.Lo != 2 || d.Hi != 8 {
		t.Errorf("derived domain = %+v", d)
	}
}

func TestResolveDomainErrors(t *testing.T) {
	if _, err := ResolveDomain(nil, math.NaN(), math.NaN()); err == nil {
		t.Error("empty values with derived bounds should error")
	}
	if _, err := ResolveDomain([]float64{3, 3}, math.NaN(), math.NaN()); err == nil {
		t.Error("single-point domain should error")
	}
	if _, err := ResolveDomain([]float64{1}, 5, 5); err == nil {
		t.Error("explicit empty domain should error")
	}
}

func TestScaleAllRoundTrip(t *testing.T) {
	d := Domain{Lo: -10, Hi: 30}
	in := []float64{-10, 0, 30}
	scaled := d.ScaleAll(in)
	want := []float64{0, 0.25, 1}
	for i := range want {
		if scaled[i] != want[i] {
			t.Errorf("scaled[%d] = %v, want %v", i, scaled[i], want[i])
		}
		if got := d.Unscale(scaled[i]); got != in[i] {
			t.Errorf("round trip[%d] = %v, want %v", i, got, in[i])
		}
	}
}
