package federate

// The binary push codec: the same Push semantics as the JSON envelope —
// versioned, edge- and seq-stamped, CRC32 over the inner stream-delta
// payload — in a varint frame that encodes epoch increments as runs of
// consecutive nonzero buckets. A mid-round histogram is mostly zeros with
// clustered mass, so runs beat both JSON dense (every zero costs bytes) and
// JSON sparse (every cell repeats its bucket index in decimal). Roots
// accept either codec on the same endpoint, keyed by Content-Type; the CRC
// carried in Push.CRC stays the hex crc32 of the inner payload bytes, so
// duplicate detection compares the exact bytes that traveled regardless of
// codec — a JSON and a binary encoding of the same deltas are, correctly,
// different payloads.
//
// Frame layout:
//
//	"LDPB" | version(1) | uvarint len(edge) | edge | uvarint seq
//	       | uvarint len(inner) | inner | crc32(inner) (LE, 4)
//	inner   = uvarint streamCount | streamCount × stream
//	stream  = uvarint len(name) | name | fingerprint
//	        | uvarint epochCount | epochCount × epoch
//	fingerprint = uvarint len(mechanism) | mechanism | epsilon (8, LE bits)
//	        | uvarint buckets | uvarint outputBuckets
//	        | bandwidth (8, LE bits) | varint epochNanos | uvarint retain
//	        | varint epochOriginNanos
//	epoch   = uvarint index | uvarint n | uvarint runCount | runCount × run
//	run     = uvarint gap | uvarint runLen | runLen × uvarint count
//
// A run's gap is the zero-bucket distance from the end of the previous run
// (from bucket 0 for the first), so bucket indexes are strictly ascending
// by construction and the decoder always yields the sparse Cells form,
// which EpochDelta.Dense validates downstream exactly like a JSON sparse
// delta. Decoding never panics: every length is bounded by the bytes that
// remain and bucket indexes are capped.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/wire"
)

const (
	pushMagic   = "LDPB"
	pushVersion = 1
)

// maxBinaryBuckets caps decoded bucket indexes and epoch numbers against
// hostile frames; real histograms are orders of magnitude smaller.
const maxBinaryBuckets = 1 << 26

// IsBinaryPush reports whether body starts with the binary push magic. A
// JSON envelope starts with '{', so sniffing is unambiguous — this is how
// replayed pending payloads and received bodies pick their decoder.
func IsBinaryPush(body []byte) bool {
	return len(body) >= len(pushMagic) && string(body[:len(pushMagic)]) == pushMagic
}

// EncodePushBinary freezes a push payload in the binary codec; the exact
// analogue of EncodePush. The returned bytes are what travels and what a
// write-ahead snapshot persists.
func EncodePushBinary(edge string, seq int64, streams []StreamDelta) ([]byte, error) {
	if edge == "" {
		return nil, fmt.Errorf("federate: empty edge id")
	}
	if seq < 1 {
		return nil, fmt.Errorf("federate: push seq must be positive, got %d", seq)
	}
	inner, err := appendStreamDeltas(nil, streams)
	if err != nil {
		return nil, fmt.Errorf("federate: encode push: %w", err)
	}
	body := make([]byte, 0, len(pushMagic)+1+len(edge)+len(inner)+24)
	body = append(body, pushMagic...)
	body = append(body, pushVersion)
	body = binary.AppendUvarint(body, uint64(len(edge)))
	body = append(body, edge...)
	body = binary.AppendUvarint(body, uint64(seq))
	body = binary.AppendUvarint(body, uint64(len(inner)))
	body = append(body, inner...)
	return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(inner)), nil
}

func appendStreamDeltas(dst []byte, streams []StreamDelta) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(streams)))
	for _, sd := range streams {
		dst = binary.AppendUvarint(dst, uint64(len(sd.Stream)))
		dst = append(dst, sd.Stream...)
		dst = appendFingerprint(dst, sd.Fingerprint)
		dst = binary.AppendUvarint(dst, uint64(len(sd.Epochs)))
		for _, d := range sd.Epochs {
			var err error
			if dst, err = appendEpochDelta(dst, d); err != nil {
				return nil, fmt.Errorf("stream %q: %w", sd.Stream, err)
			}
		}
	}
	return dst, nil
}

func appendFingerprint(dst []byte, f Fingerprint) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(f.Mechanism)))
	dst = append(dst, f.Mechanism...)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f.Epsilon))
	dst = binary.AppendUvarint(dst, uint64(f.Buckets))
	dst = binary.AppendUvarint(dst, uint64(f.OutputBuckets))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f.Bandwidth))
	dst = binary.AppendVarint(dst, f.EpochNanos)
	dst = binary.AppendUvarint(dst, uint64(f.Retain))
	return binary.AppendVarint(dst, f.EpochOriginNanos)
}

// appendEpochDelta writes one epoch as nonzero runs, accepting either the
// dense or the sparse in-memory form.
func appendEpochDelta(dst []byte, d EpochDelta) ([]byte, error) {
	if d.Epoch < 0 {
		return nil, fmt.Errorf("negative epoch %d", d.Epoch)
	}
	if d.Counts != nil && d.Cells != nil {
		return nil, fmt.Errorf("epoch %d delta is both dense and sparse", d.Epoch)
	}
	cells := d.Cells
	if d.Counts != nil {
		cells = cells[:0]
		for b, c := range d.Counts {
			if c != 0 {
				cells = append(cells, [2]uint64{uint64(b), c})
			}
		}
	} else if cells == nil {
		return nil, fmt.Errorf("epoch %d delta carries no counts", d.Epoch)
	}
	dst = binary.AppendUvarint(dst, uint64(d.Epoch))
	dst = binary.AppendUvarint(dst, d.N)
	// First pass: count the runs of consecutive buckets.
	runs := 0
	prev := uint64(math.MaxUint64)
	for _, cell := range cells {
		if prev != math.MaxUint64 && cell[0] <= prev {
			return nil, fmt.Errorf("epoch %d delta cell bucket %d out of order", d.Epoch, cell[0])
		}
		if prev == math.MaxUint64 || cell[0] != prev+1 {
			runs++
		}
		prev = cell[0]
	}
	dst = binary.AppendUvarint(dst, uint64(runs))
	// Second pass: emit gap, length, and counts per run.
	for i := 0; i < len(cells); {
		j := i + 1
		for j < len(cells) && cells[j][0] == cells[j-1][0]+1 {
			j++
		}
		gap := cells[i][0]
		if i > 0 {
			gap = cells[i][0] - cells[i-1][0] - 1
		}
		dst = binary.AppendUvarint(dst, gap)
		dst = binary.AppendUvarint(dst, uint64(j-i))
		for ; i < j; i++ {
			dst = binary.AppendUvarint(dst, cells[i][1])
		}
	}
	return dst, nil
}

// DecodePushBinary parses and verifies a binary push payload, enforcing the
// same shape rules as DecodePush: version, CRC over the inner payload,
// nonempty edge and positive seq, named, unique, epoch-bearing streams.
// Deeper validation (fingerprints, bucket counts, the N checksum) is the
// receiver's job via EpochDelta.Dense, exactly as for JSON pushes.
func DecodePushBinary(body []byte) (Push, error) {
	if !IsBinaryPush(body) {
		return Push{}, fmt.Errorf("federate: not a binary push (bad magic)")
	}
	if len(body) < len(pushMagic)+1+4 {
		return Push{}, fmt.Errorf("federate: binary push truncated (%d bytes)", len(body))
	}
	if v := body[len(pushMagic)]; v != pushVersion {
		return Push{}, fmt.Errorf("federate: binary push version %d not supported (this build speaks %d)", v, pushVersion)
	}
	r := wire.NewReader(body[len(pushMagic)+1 : len(body)-4])
	edgeLen := r.Uvarint()
	if edgeLen > uint64(r.Remaining()) {
		return Push{}, fmt.Errorf("federate: binary push edge id truncated")
	}
	edge := string(r.Bytes(int(edgeLen)))
	seq := r.Uvarint()
	innerLen := r.Uvarint()
	if r.Err() == nil && innerLen != uint64(r.Remaining()) {
		return Push{}, fmt.Errorf("federate: binary push inner payload claims %d bytes, frame carries %d",
			innerLen, r.Remaining())
	}
	inner := r.Bytes(int(innerLen))
	if err := r.Err(); err != nil {
		return Push{}, fmt.Errorf("federate: decode binary push: %w", err)
	}
	if edge == "" {
		return Push{}, fmt.Errorf("federate: push carries no edge id")
	}
	if seq < 1 || seq > math.MaxInt64 {
		return Push{}, fmt.Errorf("federate: push seq %d must be positive", seq)
	}
	if crc32.ChecksumIEEE(inner) != binary.LittleEndian.Uint32(body[len(body)-4:]) {
		return Push{}, fmt.Errorf("federate: push payload checksum mismatch (corrupt in flight?)")
	}
	streams, err := decodeStreamDeltas(inner)
	if err != nil {
		return Push{}, fmt.Errorf("federate: decode binary push streams: %w", err)
	}
	seen := make(map[string]bool, len(streams))
	for _, sd := range streams {
		if sd.Stream == "" {
			return Push{}, fmt.Errorf("federate: push carries a nameless stream delta")
		}
		if seen[sd.Stream] {
			return Push{}, fmt.Errorf("federate: push carries stream %q twice", sd.Stream)
		}
		seen[sd.Stream] = true
		if len(sd.Epochs) == 0 {
			return Push{}, fmt.Errorf("federate: push stream %q carries no epochs", sd.Stream)
		}
	}
	return Push{
		Edge:    edge,
		Seq:     int64(seq),
		CRC:     fmt.Sprintf("%08x", crc32.ChecksumIEEE(inner)),
		Streams: streams,
	}, nil
}

func decodeStreamDeltas(inner []byte) ([]StreamDelta, error) {
	r := wire.NewReader(inner)
	count := r.Uvarint()
	if count > uint64(r.Remaining()) {
		return nil, fmt.Errorf("claims %d streams in %d bytes", count, r.Remaining())
	}
	streams := make([]StreamDelta, 0, count)
	for i := uint64(0); i < count && r.Err() == nil; i++ {
		var sd StreamDelta
		nameLen := r.Uvarint()
		if nameLen > uint64(r.Remaining()) {
			return nil, fmt.Errorf("stream %d name truncated", i)
		}
		sd.Stream = string(r.Bytes(int(nameLen)))
		fp, err := decodeFingerprint(r)
		if err != nil {
			return nil, fmt.Errorf("stream %q: %w", sd.Stream, err)
		}
		sd.Fingerprint = fp
		epochCount := r.Uvarint()
		if epochCount > uint64(r.Remaining()) {
			return nil, fmt.Errorf("stream %q claims %d epochs in %d bytes", sd.Stream, epochCount, r.Remaining())
		}
		sd.Epochs = make([]EpochDelta, 0, epochCount)
		for e := uint64(0); e < epochCount && r.Err() == nil; e++ {
			d, err := decodeEpochDelta(r)
			if err != nil {
				return nil, fmt.Errorf("stream %q: %w", sd.Stream, err)
			}
			sd.Epochs = append(sd.Epochs, d)
		}
		streams = append(streams, sd)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%d trailing bytes after stream deltas", r.Remaining())
	}
	return streams, nil
}

func decodeFingerprint(r *wire.Reader) (Fingerprint, error) {
	var f Fingerprint
	mechLen := r.Uvarint()
	if mechLen > uint64(r.Remaining()) {
		return f, fmt.Errorf("fingerprint mechanism truncated")
	}
	f.Mechanism = string(r.Bytes(int(mechLen)))
	f.Epsilon = r.Float64()
	buckets := r.Uvarint()
	outputBuckets := r.Uvarint()
	if buckets > maxBinaryBuckets || outputBuckets > maxBinaryBuckets {
		return f, fmt.Errorf("fingerprint granularity %d/%d out of range", buckets, outputBuckets)
	}
	f.Buckets = int(buckets)
	f.OutputBuckets = int(outputBuckets)
	f.Bandwidth = r.Float64()
	f.EpochNanos = r.Varint()
	retain := r.Uvarint()
	if retain > maxBinaryBuckets {
		return f, fmt.Errorf("fingerprint retain %d out of range", retain)
	}
	f.Retain = int(retain)
	f.EpochOriginNanos = r.Varint()
	return f, r.Err()
}

func decodeEpochDelta(r *wire.Reader) (EpochDelta, error) {
	var d EpochDelta
	epoch := r.Uvarint()
	if epoch > maxBinaryBuckets {
		return d, fmt.Errorf("epoch index %d out of range", epoch)
	}
	d.Epoch = int(epoch)
	d.N = r.Uvarint()
	runs := r.Uvarint()
	if runs > uint64(r.Remaining()) {
		return d, fmt.Errorf("epoch %d claims %d runs in %d bytes", d.Epoch, runs, r.Remaining())
	}
	d.Cells = make([][2]uint64, 0, runs)
	next := uint64(0)
	for i := uint64(0); i < runs && r.Err() == nil; i++ {
		gap := r.Uvarint()
		runLen := r.Uvarint()
		if runLen == 0 {
			return d, fmt.Errorf("epoch %d carries an empty run", d.Epoch)
		}
		if runLen > uint64(r.Remaining()) || gap > maxBinaryBuckets || next+gap+runLen > maxBinaryBuckets {
			return d, fmt.Errorf("epoch %d run %d out of range (gap %d, len %d)", d.Epoch, i, gap, runLen)
		}
		b := next + gap
		for j := uint64(0); j < runLen && r.Err() == nil; j++ {
			d.Cells = append(d.Cells, [2]uint64{b, r.Uvarint()})
			b++
		}
		next = b
	}
	return d, r.Err()
}

// DecodePushAuto decodes a push payload in whichever codec its bytes carry
// — the binary magic selects DecodePushBinary, anything else is treated as
// the JSON envelope. Replay paths (Tracker.Ack, CursorState.Validate) use
// this so a pending payload frozen under one codec restores and replays
// correctly even if the pusher was since reconfigured to the other.
func DecodePushAuto(body []byte) (Push, error) {
	if IsBinaryPush(body) {
		return DecodePushBinary(body)
	}
	return DecodePush(body)
}
