package federate

// Delta-pipeline benchmarks at the standard granularities B ∈ {256, 1024,
// 4096}: freezing a push payload (delta arithmetic + JSON + CRC), decoding
// and verifying it, and merging the dense counts root-side. Results are
// recorded in BENCH_fed.json; the CI bench-smoke job keeps these compiling
// and running on every PR.

import (
	"fmt"
	"testing"
)

// benchStates builds a single-stream state with ~10% occupancy — a typical
// sufficient-statistic histogram mid-round.
func benchStates(buckets int) []StreamState {
	counts := make([]uint64, buckets)
	for b := 0; b < buckets; b += 10 {
		counts[b] = uint64(b%97 + 1)
	}
	return []StreamState{{
		Name: "bench",
		Fingerprint: Fingerprint{
			Mechanism: "sw", Epsilon: 1, Buckets: buckets, OutputBuckets: buckets, Bandwidth: 0.25,
		},
		Epochs: []EpochCounts{{Epoch: 0, Counts: counts}},
	}}
}

func BenchmarkDeltaEncode(b *testing.B) {
	for _, buckets := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("B=%d", buckets), func(b *testing.B) {
			states := benchStates(buckets)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := NewTracker()
				p, err := tr.Prepare("edge", states)
				if err != nil || p == nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(len(p.Body)))
			}
		})
	}
}

func BenchmarkDeltaDecode(b *testing.B) {
	for _, buckets := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("B=%d", buckets), func(b *testing.B) {
			tr := NewTracker()
			p, err := tr.Prepare("edge", benchStates(buckets))
			if err != nil || p == nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(p.Body)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DecodePush(p.Body); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDeltaMerge(b *testing.B) {
	// Root-side apply: expand one epoch delta dense and fold it into an
	// accumulator histogram.
	for _, buckets := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("B=%d", buckets), func(b *testing.B) {
			tr := NewTracker()
			p, err := tr.Prepare("edge", benchStates(buckets))
			if err != nil || p == nil {
				b.Fatal(err)
			}
			push, err := DecodePush(p.Body)
			if err != nil {
				b.Fatal(err)
			}
			delta := push.Streams[0].Epochs[0]
			acc := make([]uint64, buckets)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dense, err := delta.Dense(buckets)
				if err != nil {
					b.Fatal(err)
				}
				for bkt, c := range dense {
					acc[bkt] += c
				}
			}
		})
	}
}

func BenchmarkTrackerIncremental(b *testing.B) {
	// Steady-state edge cycle: prepare → ack against a growing histogram.
	for _, buckets := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("B=%d", buckets), func(b *testing.B) {
			states := benchStates(buckets)
			tr := NewTracker()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				states[0].Epochs[0].Counts[(i*7)%buckets] += 3
				p, err := tr.Prepare("edge", states)
				if err != nil || p == nil {
					b.Fatal(err)
				}
				if err := tr.Ack(p.Seq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
