package federate

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestEpochDeltaEncodingChoice(t *testing.T) {
	// Dense-ish increments stay dense; sparse increments become cells.
	dense := make([]uint64, 8)
	for i := range dense {
		dense[i] = uint64(i + 1)
	}
	d, ok := NewEpochDelta(0, dense)
	if !ok || d.Counts == nil || d.Cells != nil {
		t.Fatalf("dense increments encoded as %+v", d)
	}
	if d.N != 36 {
		t.Fatalf("dense delta N = %d, want 36", d.N)
	}

	sparse := make([]uint64, 100)
	sparse[7] = 3
	sparse[42] = 9
	d, ok = NewEpochDelta(5, sparse)
	if !ok || d.Cells == nil || d.Counts != nil {
		t.Fatalf("sparse increments encoded as %+v", d)
	}
	if d.N != 12 || len(d.Cells) != 2 {
		t.Fatalf("sparse delta = %+v", d)
	}

	if _, ok := NewEpochDelta(0, make([]uint64, 16)); ok {
		t.Fatal("all-zero increments must not encode")
	}
}

func TestEpochDeltaDenseRoundTrip(t *testing.T) {
	for _, buckets := range []int{4, 100} {
		inc := make([]uint64, buckets)
		inc[1] = 5
		inc[buckets-1] = 2
		d, ok := NewEpochDelta(3, inc)
		if !ok {
			t.Fatal("delta did not encode")
		}
		got, err := d.Dense(buckets)
		if err != nil {
			t.Fatal(err)
		}
		for b := range inc {
			if got[b] != inc[b] {
				t.Fatalf("buckets=%d: bucket %d = %d, want %d", buckets, b, got[b], inc[b])
			}
		}
	}
}

func TestEpochDeltaDenseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		d    EpochDelta
	}{
		{"negative epoch", EpochDelta{Epoch: -1, N: 1, Counts: []uint64{1, 0}}},
		{"both encodings", EpochDelta{N: 1, Counts: []uint64{1, 0}, Cells: [][2]uint64{{0, 1}}}},
		{"no counts", EpochDelta{N: 1}},
		{"wrong width", EpochDelta{N: 1, Counts: []uint64{1}}},
		{"bad checksum", EpochDelta{N: 7, Counts: []uint64{1, 0}}},
		{"zero total", EpochDelta{N: 0, Counts: []uint64{0, 0}}},
		{"cell out of range", EpochDelta{N: 1, Cells: [][2]uint64{{9, 1}}}},
		{"cells out of order", EpochDelta{N: 2, Cells: [][2]uint64{{1, 1}, {0, 1}}}},
	}
	for _, tc := range cases {
		if _, err := tc.d.Dense(2); err == nil {
			t.Errorf("%s: Dense accepted %+v", tc.name, tc.d)
		}
	}
}

func testDeltas() []StreamDelta {
	return []StreamDelta{{
		Stream: "age",
		Fingerprint: Fingerprint{
			Mechanism: "sw", Epsilon: 1, Buckets: 8, OutputBuckets: 8, Bandwidth: 0.25,
		},
		Epochs: []EpochDelta{{Epoch: 0, N: 3, Counts: []uint64{1, 0, 2, 0, 0, 0, 0, 0}}},
	}}
}

func TestPushRoundTrip(t *testing.T) {
	body, err := EncodePush("edge-1", 7, testDeltas())
	if err != nil {
		t.Fatal(err)
	}
	push, err := DecodePush(body)
	if err != nil {
		t.Fatal(err)
	}
	if push.Edge != "edge-1" || push.Seq != 7 || len(push.Streams) != 1 {
		t.Fatalf("decoded %+v", push)
	}
	sd := push.Streams[0]
	if sd.Stream != "age" || !sd.Fingerprint.Equal(testDeltas()[0].Fingerprint) {
		t.Fatalf("decoded stream %+v", sd)
	}
	dense, err := sd.Epochs[0].Dense(8)
	if err != nil {
		t.Fatal(err)
	}
	if dense[0] != 1 || dense[2] != 2 {
		t.Fatalf("decoded counts %v", dense)
	}
}

func TestDecodePushRejectsCorruption(t *testing.T) {
	body, err := EncodePush("edge-1", 1, testDeltas())
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the streams payload: the CRC must catch it.
	corrupt := bytes.Replace(body, []byte(`"age"`), []byte(`"agf"`), 1)
	if bytes.Equal(corrupt, body) {
		t.Fatal("corruption did not apply")
	}
	if _, err := DecodePush(corrupt); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted payload decoded: %v", err)
	}
}

func TestDecodePushRejectsMalformed(t *testing.T) {
	good, _ := EncodePush("e", 1, testDeltas())
	rewrite := func(mutate func(map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(good, &m); err != nil {
			t.Fatal(err)
		}
		mutate(m)
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := map[string][]byte{
		"not json":      []byte("{"),
		"wrong version": rewrite(func(m map[string]any) { m["version"] = 99 }),
		"no edge":       rewrite(func(m map[string]any) { m["edge"] = "" }),
		"zero seq":      rewrite(func(m map[string]any) { m["seq"] = 0 }),
	}
	for name, body := range cases {
		if _, err := DecodePush(body); err == nil {
			t.Errorf("%s: decoded", name)
		}
	}

	// Structural stream errors, re-encoded through EncodePush so the CRC is
	// valid and the failure is attributable to the validation.
	bad := [][]StreamDelta{
		{{Stream: "", Epochs: []EpochDelta{{N: 1, Counts: []uint64{1}}}}},
		{{Stream: "a", Epochs: []EpochDelta{{N: 1, Counts: []uint64{1}}}},
			{Stream: "a", Epochs: []EpochDelta{{N: 1, Counts: []uint64{1}}}}},
		{{Stream: "a"}},
	}
	for i, streams := range bad {
		body, err := EncodePush("e", 1, streams)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodePush(body); err == nil {
			t.Errorf("bad streams %d decoded", i)
		}
	}
}

func TestEncodePushRejectsBadArgs(t *testing.T) {
	if _, err := EncodePush("", 1, nil); err == nil {
		t.Error("empty edge encoded")
	}
	if _, err := EncodePush("e", 0, nil); err == nil {
		t.Error("zero seq encoded")
	}
}

func TestFingerprintEqualAndString(t *testing.T) {
	a := Fingerprint{Mechanism: "sw", Epsilon: 1, Buckets: 64, OutputBuckets: 64, Bandwidth: 0.3}
	b := a
	if !a.Equal(b) {
		t.Fatal("identical fingerprints unequal")
	}
	b.Epsilon = 2
	if a.Equal(b) {
		t.Fatal("different fingerprints equal")
	}
	w := Fingerprint{Mechanism: "oue", Epsilon: 1, Buckets: 32, OutputBuckets: 33,
		EpochNanos: int64(time.Minute), Retain: 4}
	if s := w.String(); !strings.Contains(s, "epoch=1m") || !strings.Contains(s, "retain=4") {
		t.Fatalf("windowed fingerprint renders %q", s)
	}
}
