package federate

// Edge-side delta cursor: the Tracker remembers, per stream and epoch, the
// per-bucket counts the root has durably acknowledged, computes the next
// delta as "current histogram minus acked basis", and freezes it into an
// immutable pending payload that is retried until acknowledged. All the
// arithmetic is on snapshots the caller provides, so the Tracker never
// touches live histograms and has no lock-ordering relationship with the
// collector's ingestion path.

import (
	"fmt"
	"sort"
	"sync"
)

// EpochCounts is one epoch's dense histogram as the Tracker consumes and
// persists it.
type EpochCounts struct {
	Epoch int `json:"epoch"`
	// Counts may be nil (an epoch that exists but has no reports).
	Counts []uint64 `json:"counts,omitempty"`
}

// StreamState is one stream's current histogram state, as gathered by the
// collector for delta computation: every retained epoch plus the live one.
// Plain (non-windowed) streams present a single epoch 0 that never rotates.
type StreamState struct {
	Name        string
	Fingerprint Fingerprint
	Epochs      []EpochCounts
}

// Pending is a frozen, in-flight push: the exact bytes to (re)transmit. It
// is immutable once built — retries and crash-restore replays send the same
// payload, which is what makes the root's CRC-checked duplicate detection
// exact.
type Pending struct {
	Seq int64 `json:"seq"`
	// CRC is the payload checksum inside Body, kept alongside so the
	// pusher can compare against a duplicate ack without re-decoding.
	CRC  string `json:"payload_crc32"`
	Body []byte `json:"body"`
}

// CursorState is the Tracker's persistent form, carried in snapshot payloads
// (version ≥ 4) so a restarted edge resumes its push stream without double
// counting.
type CursorState struct {
	// Seq is the last acknowledged push sequence.
	Seq int64 `json:"seq"`
	// Streams holds the acked basis per stream, epochs ascending.
	Streams []CursorStream `json:"streams,omitempty"`
	// Pending is the frozen in-flight payload, if one was built but not
	// yet acknowledged.
	Pending *Pending `json:"pending,omitempty"`
}

// CursorStream is the acked basis of one stream.
type CursorStream struct {
	Stream string        `json:"stream"`
	Epochs []EpochCounts `json:"epochs,omitempty"`
}

// Tracker is the edge-side cursor. All methods are safe for concurrent use.
type Tracker struct {
	mu      sync.Mutex
	seq     int64 // last acked push sequence
	streams map[string]map[int][]uint64
	pending *Pending
}

// NewTracker returns an empty cursor: nothing acked, nothing in flight.
func NewTracker() *Tracker {
	return &Tracker{streams: make(map[string]map[int][]uint64)}
}

// AckedSeq returns the last acknowledged push sequence.
func (t *Tracker) AckedSeq() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Pending returns the frozen in-flight payload, or nil.
func (t *Tracker) Pending() *Pending {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pending
}

// fresh reports whether the tracker has never folded an acknowledgment —
// the state of a brand-new edge (or one restarted without a snapshot).
func (t *Tracker) fresh() bool {
	return t.seq == 0 && len(t.streams) == 0
}

// Prepare returns the payload to transmit in the JSON codec: the existing
// pending push if one is in flight, otherwise a freshly frozen delta of
// states against the acked basis (seq = acked+1). It returns nil when there
// is nothing to ship. As a side effect it prunes acked state for epochs
// that aged out of states and for streams no longer present — their deltas
// can never be shipped again.
func (t *Tracker) Prepare(edge string, states []StreamState) (*Pending, error) {
	return t.PrepareFormat(edge, states, false)
}

// PrepareFormat is Prepare with an explicit codec: binary selects the LDPB
// frame (EncodePushBinary), false the JSON envelope. An already-frozen
// pending payload is returned as-is whatever codec it carries — the codec
// choice applies to the next freeze, never retroactively, so a pusher
// reconfigured across a restart still replays the persisted bytes verbatim.
func (t *Tracker) PrepareFormat(edge string, states []StreamState, binary bool) (*Pending, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pending != nil {
		return t.pending, nil
	}
	t.pruneLocked(states)
	var deltas []StreamDelta
	for _, st := range states {
		acked := t.streams[st.Name]
		sd := StreamDelta{Stream: st.Name, Fingerprint: st.Fingerprint}
		for _, ep := range st.Epochs {
			inc := incrementsSince(ep.Counts, acked[ep.Epoch])
			if inc == nil {
				continue
			}
			if d, ok := NewEpochDelta(ep.Epoch, inc); ok {
				sd.Epochs = append(sd.Epochs, d)
			}
		}
		if len(sd.Epochs) > 0 {
			sort.Slice(sd.Epochs, func(i, j int) bool { return sd.Epochs[i].Epoch < sd.Epochs[j].Epoch })
			deltas = append(deltas, sd)
		}
	}
	if len(deltas) == 0 {
		return nil, nil
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Stream < deltas[j].Stream })
	encode := EncodePush
	if binary {
		encode = EncodePushBinary
	}
	body, err := encode(edge, t.seq+1, deltas)
	if err != nil {
		return nil, err
	}
	push, err := DecodePushAuto(body) // recover the CRC the frame carries
	if err != nil {
		return nil, err
	}
	t.pending = &Pending{Seq: push.Seq, CRC: push.CRC, Body: body}
	return t.pending, nil
}

// incrementsSince computes cur − acked per bucket, nil when nothing grew.
// A bucket that shrank (a stream dropped and re-declared under the same
// name) clamps to zero: conservatively never re-ship counts the root may
// already hold.
func incrementsSince(cur, acked []uint64) []uint64 {
	if cur == nil {
		return nil
	}
	var out []uint64
	for b, c := range cur {
		var base uint64
		if b < len(acked) {
			base = acked[b]
		}
		if c > base {
			if out == nil {
				out = make([]uint64, len(cur))
			}
			out[b] = c - base
		}
	}
	return out
}

// pruneLocked drops acked state that can never be shipped against again:
// streams absent from states, and epochs below each stream's oldest
// presented epoch.
func (t *Tracker) pruneLocked(states []StreamState) {
	live := make(map[string]int, len(states)) // stream → oldest epoch presented
	for _, st := range states {
		oldest := 0
		for i, ep := range st.Epochs {
			if i == 0 || ep.Epoch < oldest {
				oldest = ep.Epoch
			}
		}
		live[st.Name] = oldest
	}
	for name, acked := range t.streams {
		oldest, ok := live[name]
		if !ok {
			delete(t.streams, name)
			continue
		}
		for epoch := range acked {
			if epoch < oldest {
				delete(acked, epoch)
			}
		}
	}
}

// Ack folds the pending push into the acked basis: the root has durably
// applied (or provably already held) payload seq. The seq must match the
// pending one.
func (t *Tracker) Ack(seq int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pending == nil {
		return fmt.Errorf("federate: ack %d with no pending push", seq)
	}
	if t.pending.Seq != seq {
		return fmt.Errorf("federate: ack %d does not match pending push %d", seq, t.pending.Seq)
	}
	push, err := DecodePushAuto(t.pending.Body)
	if err != nil {
		return fmt.Errorf("federate: pending push unreadable at ack: %w", err)
	}
	for _, sd := range push.Streams {
		acked := t.streams[sd.Stream]
		if acked == nil {
			acked = make(map[int][]uint64)
			t.streams[sd.Stream] = acked
		}
		for _, d := range sd.Epochs {
			// Pending payloads are built by this tracker (or restored from
			// its own snapshot), so Dense cannot fail against the width the
			// delta itself carries. The acked basis grows to the delta's
			// width when needed; a wider stale basis (a stream re-declared
			// narrower) is left alone — incrementsSince only ever reads up
			// to the current histogram's width.
			width := len(d.Counts)
			if width == 0 {
				for _, cell := range d.Cells {
					if w := int(cell[0]) + 1; w > width {
						width = w
					}
				}
			}
			inc, err := d.Dense(width)
			if err != nil {
				return fmt.Errorf("federate: pending epoch %d unreadable at ack: %w", d.Epoch, err)
			}
			base := acked[d.Epoch]
			if len(base) < width {
				grown := make([]uint64, width)
				copy(grown, base)
				base = grown
			}
			for b, c := range inc {
				base[b] += c
			}
			acked[d.Epoch] = base
		}
	}
	t.seq = seq
	t.pending = nil
	return nil
}

// Discard drops an unsent pending push. Safe only before the payload ever
// reached the root (e.g. the write-ahead persist failed): the next Prepare
// rebuilds a superset delta under a fresh attempt of the same sequence.
func (t *Tracker) Discard() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pending = nil
}

// AdoptSeq resynchronizes a fresh tracker (nothing ever acked) to the root's
// sequence high-water mark: a restarted-without-snapshot edge whose id the
// root already knows continues the sequence instead of colliding with it.
// The acked basis stays empty — the edge's histograms restarted from zero
// too, so shipping everything from scratch is exact. Calling it on a
// non-fresh tracker is an error.
func (t *Tracker) AdoptSeq(seq int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.fresh() {
		return fmt.Errorf("federate: cannot adopt seq %d: tracker already acked seq %d", seq, t.seq)
	}
	if seq < 0 {
		return fmt.Errorf("federate: cannot adopt negative seq %d", seq)
	}
	t.seq = seq
	t.pending = nil
	return nil
}

// Reset clears the cursor entirely: the root reports no memory of this edge
// (its sequence high-water mark is zero — a fresh root, or one that lost its
// disk), so the next delta ships the edge's full history from basis zero.
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq = 0
	t.streams = make(map[string]map[int][]uint64)
	t.pending = nil
}

// Fresh reports whether the tracker has never acked anything — the state in
// which AdoptSeq is legal.
func (t *Tracker) Fresh() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fresh()
}

// State captures the cursor for persistence: acked bases, sequence, and the
// frozen pending payload. The result shares no memory with the tracker.
func (t *Tracker) State() CursorState {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := CursorState{Seq: t.seq}
	names := make([]string, 0, len(t.streams))
	for name := range t.streams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cs := CursorStream{Stream: name}
		epochs := make([]int, 0, len(t.streams[name]))
		for e := range t.streams[name] {
			epochs = append(epochs, e)
		}
		sort.Ints(epochs)
		for _, e := range epochs {
			cs.Epochs = append(cs.Epochs, EpochCounts{
				Epoch:  e,
				Counts: append([]uint64(nil), t.streams[name][e]...),
			})
		}
		out.Streams = append(out.Streams, cs)
	}
	if t.pending != nil {
		out.Pending = &Pending{
			Seq:  t.pending.Seq,
			CRC:  t.pending.CRC,
			Body: append([]byte(nil), t.pending.Body...),
		}
	}
	return out
}

// Restore installs a persisted cursor into an empty tracker (restart path).
// A tracker that already acked pushes refuses the restore — overwriting a
// live cursor would forget what the root holds.
func (t *Tracker) Restore(cs CursorState) error {
	if err := cs.Validate(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.fresh() || t.pending != nil {
		return fmt.Errorf("federate: tracker already in use (acked seq %d); cannot restore a persisted cursor", t.seq)
	}
	t.seq = cs.Seq
	for _, cstream := range cs.Streams {
		acked := make(map[int][]uint64, len(cstream.Epochs))
		for _, ep := range cstream.Epochs {
			acked[ep.Epoch] = append([]uint64(nil), ep.Counts...)
		}
		t.streams[cstream.Stream] = acked
	}
	if cs.Pending != nil {
		t.pending = &Pending{
			Seq:  cs.Pending.Seq,
			CRC:  cs.Pending.CRC,
			Body: append([]byte(nil), cs.Pending.Body...),
		}
	}
	return nil
}

// Validate checks a persisted cursor before any field is trusted.
func (cs CursorState) Validate() error {
	if cs.Seq < 0 {
		return fmt.Errorf("federate: cursor seq %d is negative", cs.Seq)
	}
	seen := make(map[string]bool, len(cs.Streams))
	for _, cstream := range cs.Streams {
		if cstream.Stream == "" {
			return fmt.Errorf("federate: cursor carries a nameless stream")
		}
		if seen[cstream.Stream] {
			return fmt.Errorf("federate: cursor carries stream %q twice", cstream.Stream)
		}
		seen[cstream.Stream] = true
		prev := -1
		for _, ep := range cstream.Epochs {
			if ep.Epoch < 0 || ep.Epoch <= prev {
				return fmt.Errorf("federate: cursor stream %q epochs out of order at %d", cstream.Stream, ep.Epoch)
			}
			prev = ep.Epoch
		}
	}
	if p := cs.Pending; p != nil {
		if p.Seq != cs.Seq+1 {
			return fmt.Errorf("federate: cursor pending seq %d does not follow acked seq %d", p.Seq, cs.Seq)
		}
		push, err := DecodePushAuto(p.Body)
		if err != nil {
			return fmt.Errorf("federate: cursor pending payload: %w", err)
		}
		if push.Seq != p.Seq || push.CRC != p.CRC {
			return fmt.Errorf("federate: cursor pending payload disagrees with its envelope (seq %d/%d)",
				push.Seq, p.Seq)
		}
	}
	return nil
}
