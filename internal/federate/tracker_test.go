package federate

import (
	"testing"
)

func fp(mech string) Fingerprint {
	return Fingerprint{Mechanism: mech, Epsilon: 1, Buckets: 4, OutputBuckets: 4}
}

// state builds a single-stream, single-epoch StreamState.
func state(name string, epoch int, counts ...uint64) StreamState {
	return StreamState{Name: name, Fingerprint: fp("sw"),
		Epochs: []EpochCounts{{Epoch: epoch, Counts: counts}}}
}

func mustPrepare(t *testing.T, tr *Tracker, states ...StreamState) *Pending {
	t.Helper()
	p, err := tr.Prepare("edge", states)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// deltaOf decodes a pending payload and returns the dense delta of one
// stream/epoch (nil if absent).
func deltaOf(t *testing.T, p *Pending, stream string, epoch, buckets int) []uint64 {
	t.Helper()
	push, err := DecodePush(p.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, sd := range push.Streams {
		if sd.Stream != stream {
			continue
		}
		for _, d := range sd.Epochs {
			if d.Epoch == epoch {
				dense, err := d.Dense(buckets)
				if err != nil {
					t.Fatal(err)
				}
				return dense
			}
		}
	}
	return nil
}

func TestTrackerDeltaAckDelta(t *testing.T) {
	tr := NewTracker()
	if p := mustPrepare(t, tr, state("age", 0, 0, 0, 0, 0)); p != nil {
		t.Fatal("empty histogram produced a pending push")
	}

	p := mustPrepare(t, tr, state("age", 0, 3, 0, 1, 0))
	if p == nil || p.Seq != 1 {
		t.Fatalf("pending = %+v", p)
	}
	if d := deltaOf(t, p, "age", 0, 4); d[0] != 3 || d[2] != 1 {
		t.Fatalf("first delta %v", d)
	}
	if err := tr.Ack(1); err != nil {
		t.Fatal(err)
	}
	if tr.AckedSeq() != 1 || tr.Pending() != nil {
		t.Fatal("ack did not clear pending")
	}

	// Nothing new: no pending.
	if p := mustPrepare(t, tr, state("age", 0, 3, 0, 1, 0)); p != nil {
		t.Fatal("unchanged histogram produced a pending push")
	}

	// Growth ships only the increment.
	p = mustPrepare(t, tr, state("age", 0, 5, 2, 1, 0))
	if p.Seq != 2 {
		t.Fatalf("second pending seq %d", p.Seq)
	}
	if d := deltaOf(t, p, "age", 0, 4); d[0] != 2 || d[1] != 2 || d[2] != 0 {
		t.Fatalf("incremental delta %v", d)
	}
}

func TestTrackerPendingIsFrozen(t *testing.T) {
	tr := NewTracker()
	p1 := mustPrepare(t, tr, state("age", 0, 1, 0, 0, 0))
	// More reports arrive while the push is in flight: Prepare returns the
	// same frozen payload, byte for byte.
	p2 := mustPrepare(t, tr, state("age", 0, 9, 9, 9, 9))
	if p1.Seq != p2.Seq || string(p1.Body) != string(p2.Body) {
		t.Fatal("pending payload mutated while in flight")
	}
	if err := tr.Ack(p1.Seq); err != nil {
		t.Fatal(err)
	}
	// The increments that arrived in flight ship next.
	p3 := mustPrepare(t, tr, state("age", 0, 9, 9, 9, 9))
	if d := deltaOf(t, p3, "age", 0, 4); d[0] != 8 || d[1] != 9 {
		t.Fatalf("post-ack delta %v", d)
	}
}

func TestTrackerAckValidation(t *testing.T) {
	tr := NewTracker()
	if err := tr.Ack(1); err == nil {
		t.Fatal("ack with no pending accepted")
	}
	mustPrepare(t, tr, state("age", 0, 1, 0, 0, 0))
	if err := tr.Ack(9); err == nil {
		t.Fatal("mismatched ack accepted")
	}
}

func TestTrackerDiscardRebuildsSuperset(t *testing.T) {
	tr := NewTracker()
	p1 := mustPrepare(t, tr, state("age", 0, 1, 0, 0, 0))
	tr.Discard()
	p2 := mustPrepare(t, tr, state("age", 0, 2, 0, 0, 0))
	if p2.Seq != p1.Seq {
		t.Fatalf("discarded pending reused seq %d, rebuilt got %d", p1.Seq, p2.Seq)
	}
	if d := deltaOf(t, p2, "age", 0, 4); d[0] != 2 {
		t.Fatalf("rebuilt delta %v", d)
	}
}

func TestTrackerWindowedEpochsAndPrune(t *testing.T) {
	tr := NewTracker()
	st := StreamState{Name: "lat", Fingerprint: fp("sw"), Epochs: []EpochCounts{
		{Epoch: 0, Counts: []uint64{5, 0, 0, 0}},
		{Epoch: 1, Counts: []uint64{0, 2, 0, 0}},
	}}
	p := mustPrepare(t, tr, st)
	if d := deltaOf(t, p, "lat", 0, 4); d[0] != 5 {
		t.Fatalf("epoch 0 delta %v", d)
	}
	if d := deltaOf(t, p, "lat", 1, 4); d[1] != 2 {
		t.Fatalf("epoch 1 delta %v", d)
	}
	if err := tr.Ack(p.Seq); err != nil {
		t.Fatal(err)
	}

	// Epoch 0 ages out; epoch 1 is sealed frozen; epoch 2 is live.
	st = StreamState{Name: "lat", Fingerprint: fp("sw"), Epochs: []EpochCounts{
		{Epoch: 1, Counts: []uint64{0, 2, 0, 0}},
		{Epoch: 2, Counts: []uint64{0, 0, 7, 0}},
	}}
	p = mustPrepare(t, tr, st)
	if d := deltaOf(t, p, "lat", 1, 4); d != nil {
		t.Fatalf("frozen sealed epoch re-shipped: %v", d)
	}
	if d := deltaOf(t, p, "lat", 2, 4); d[2] != 7 {
		t.Fatalf("live epoch delta %v", d)
	}
	if err := tr.Ack(p.Seq); err != nil {
		t.Fatal(err)
	}
	// The acked basis for aged epoch 0 is pruned.
	cs := tr.State()
	for _, s := range cs.Streams {
		for _, ep := range s.Epochs {
			if ep.Epoch == 0 {
				t.Fatal("aged epoch 0 still in the cursor")
			}
		}
	}
}

func TestTrackerDroppedStreamClampsNotReships(t *testing.T) {
	tr := NewTracker()
	p := mustPrepare(t, tr, state("age", 0, 4, 0, 0, 0))
	if err := tr.Ack(p.Seq); err != nil {
		t.Fatal(err)
	}
	// The stream was dropped and re-declared: its histogram went backward.
	// The tracker must not ship negative or stale counts.
	if p := mustPrepare(t, tr, state("age", 0, 2, 0, 0, 0)); p != nil {
		t.Fatalf("shrunk histogram shipped %+v", p)
	}
	// Growth past the old basis ships only the excess (conservative).
	p = mustPrepare(t, tr, state("age", 0, 6, 0, 0, 0))
	if d := deltaOf(t, p, "age", 0, 4); d[0] != 2 {
		t.Fatalf("post-shrink delta %v", d)
	}
}

func TestTrackerStateRestoreRoundTrip(t *testing.T) {
	tr := NewTracker()
	p := mustPrepare(t, tr, state("age", 0, 3, 1, 0, 0))
	if err := tr.Ack(p.Seq); err != nil {
		t.Fatal(err)
	}
	mustPrepare(t, tr, state("age", 0, 5, 1, 0, 0)) // leave a pending in flight

	cs := tr.State()
	tr2 := NewTracker()
	if err := tr2.Restore(cs); err != nil {
		t.Fatal(err)
	}
	if tr2.AckedSeq() != 1 {
		t.Fatalf("restored seq %d", tr2.AckedSeq())
	}
	p2 := tr2.Pending()
	if p2 == nil || p2.Seq != 2 || string(p2.Body) != string(tr.Pending().Body) {
		t.Fatal("pending did not survive the round trip byte-identically")
	}
	// The restored tracker acks the pending and resumes exact deltas.
	if err := tr2.Ack(2); err != nil {
		t.Fatal(err)
	}
	p3 := mustPrepare(t, tr2, state("age", 0, 6, 1, 0, 0))
	if d := deltaOf(t, p3, "age", 0, 4); d[0] != 1 {
		t.Fatalf("post-restore delta %v", d)
	}

	// Restore refuses a used tracker.
	if err := tr2.Restore(cs); err == nil {
		t.Fatal("restore over a used tracker accepted")
	}
}

func TestCursorStateValidate(t *testing.T) {
	good, _ := EncodePush("e", 1, testDeltas())
	push, _ := DecodePush(good)
	cases := []struct {
		name string
		cs   CursorState
	}{
		{"negative seq", CursorState{Seq: -1}},
		{"nameless stream", CursorState{Streams: []CursorStream{{}}}},
		{"dup stream", CursorState{Streams: []CursorStream{{Stream: "a"}, {Stream: "a"}}}},
		{"epochs out of order", CursorState{Streams: []CursorStream{
			{Stream: "a", Epochs: []EpochCounts{{Epoch: 2}, {Epoch: 1}}}}}},
		{"pending seq gap", CursorState{Seq: 3, Pending: &Pending{Seq: 5, CRC: push.CRC, Body: good}}},
		{"pending corrupt", CursorState{Seq: 0, Pending: &Pending{Seq: 1, CRC: push.CRC, Body: []byte("x")}}},
		{"pending crc disagrees", CursorState{Seq: 0, Pending: &Pending{Seq: 1, CRC: "ffffffff", Body: good}}},
	}
	for _, tc := range cases {
		if err := tc.cs.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
	ok := CursorState{Seq: 0, Pending: &Pending{Seq: 1, CRC: push.CRC, Body: good}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid cursor rejected: %v", err)
	}
}

func TestTrackerAdoptSeqAndReset(t *testing.T) {
	tr := NewTracker()
	if err := tr.AdoptSeq(9); err != nil {
		t.Fatal(err)
	}
	p := mustPrepare(t, tr, state("age", 0, 2, 0, 0, 0))
	if p.Seq != 10 {
		t.Fatalf("adopted tracker pending seq %d, want 10", p.Seq)
	}
	if err := tr.Ack(10); err != nil {
		t.Fatal(err)
	}
	if err := tr.AdoptSeq(20); err == nil {
		t.Fatal("adopt on a used tracker accepted")
	}

	tr.Reset()
	if !tr.Fresh() {
		t.Fatal("reset tracker not fresh")
	}
	// Full history ships again from basis zero.
	p = mustPrepare(t, tr, state("age", 0, 2, 0, 0, 0))
	if p.Seq != 1 {
		t.Fatalf("reset tracker pending seq %d", p.Seq)
	}
	if d := deltaOf(t, p, "age", 0, 4); d[0] != 2 {
		t.Fatalf("reset delta %v", d)
	}
}

func TestTrackerAckSurvivesNarrowedStream(t *testing.T) {
	// A stream dropped and re-declared with fewer buckets leaves a wider
	// acked basis behind. The next (narrower) delta must still fold on
	// ack — a failure here would wedge the push loop forever, since the
	// root has already applied the payload.
	tr := NewTracker()
	wide := StreamState{Name: "age", Fingerprint: fp("sw"),
		Epochs: []EpochCounts{{Epoch: 0, Counts: []uint64{1, 2, 3, 4}}}}
	p := mustPrepare(t, tr, wide)
	if err := tr.Ack(p.Seq); err != nil {
		t.Fatal(err)
	}
	narrow := StreamState{Name: "age", Fingerprint: fp("sw"),
		Epochs: []EpochCounts{{Epoch: 0, Counts: []uint64{5, 9}}}}
	p = mustPrepare(t, tr, narrow)
	if p == nil {
		t.Fatal("narrowed stream produced no delta")
	}
	if err := tr.Ack(p.Seq); err != nil {
		t.Fatalf("ack after narrowing: %v", err)
	}
	// Steady state resumes: nothing new, no delta.
	if p := mustPrepare(t, tr, narrow); p != nil {
		t.Fatalf("post-narrowing idle cycle shipped %+v", p)
	}
}
