package federate

// Pusher is the edge-side background loop: on a jittered interval it gathers
// the collector's stream states, freezes a delta payload through the
// Tracker, POSTs it to the root, and folds the acknowledgment back. Failures
// back off exponentially; the frozen pending payload is retried verbatim
// until acknowledged, so a flaky root never causes loss or double counting.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
)

// PusherConfig parameterizes a Pusher.
type PusherConfig struct {
	// URL is the root collector's base URL ("http://root:8080"); the
	// pusher POSTs to URL + "/federation/push". Required.
	URL string
	// Edge identifies this edge at the root (1–64 chars of
	// [A-Za-z0-9._-]). Required, and must be stable across restarts — the
	// root's replay detection is keyed by it.
	Edge string
	// Interval is the push cadence (default 10s); each sleep is jittered
	// by ±Jitter (a fraction, default 0.1) so a fleet of edges does not
	// synchronize against the root.
	Interval time.Duration
	Jitter   float64
	// MinBackoff and MaxBackoff bound the exponential failure backoff
	// (defaults 1s and 5m).
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// Gather returns the current stream states (the collector provides
	// this). Required.
	Gather func() []StreamState
	// Persist, when set, is the write-ahead hook: it is called after a new
	// pending payload is frozen and before its first transmission
	// (typically the collector's SaveSnapshot), so a crash between send
	// and ack restores the identical bytes. If it fails, the payload is
	// discarded unsent and rebuilt on the next cycle.
	Persist func() error
	// Streams optionally restricts pushing to these stream names (nil =
	// every stream with unshipped increments).
	Streams []string
	// Binary freezes new payloads in the LDPB binary codec instead of the
	// JSON envelope (≈5–10× smaller at typical occupancy). A pending
	// payload persisted under the other codec still replays verbatim —
	// transmit picks the Content-Type by sniffing the frozen bytes.
	Binary bool
	// Logf receives push-loop diagnostics (nil = silent).
	Logf func(format string, args ...any)
	// Tracer, when set, records a federation/push span per shipped payload
	// and propagates its context to the root in the traceparent header
	// (header-based: the frozen payload bytes and codecs are untouched).
	Tracer *trace.Tracer
	// TraceLinks, when set, is drained once per transmission; the returned
	// trace IDs ride the X-LDP-Trace-Link header so the root can mint link
	// markers for the edge's sampled ingest traces. Best-effort: IDs
	// drained into a failed transmission are dropped, not re-queued.
	TraceLinks func() []string
}

func (c PusherConfig) filled() (PusherConfig, error) {
	if c.URL == "" {
		return c, fmt.Errorf("federate: pusher needs a root URL")
	}
	u, err := url.Parse(c.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return c, fmt.Errorf("federate: pusher root URL %q is not an http(s) URL", c.URL)
	}
	if c.Edge == "" {
		return c, fmt.Errorf("federate: pusher needs an edge id")
	}
	if c.Gather == nil {
		return c, fmt.Errorf("federate: pusher needs a Gather hook")
	}
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.Jitter <= 0 {
		c.Jitter = 0.1
	}
	if c.Jitter > 0.5 {
		c.Jitter = 0.5
	}
	if c.MinBackoff <= 0 {
		c.MinBackoff = time.Second
	}
	if c.MaxBackoff < c.MinBackoff {
		c.MaxBackoff = 5 * time.Minute
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// PusherStatus is a point-in-time view of the push loop for operators.
type PusherStatus struct {
	Edge        string    `json:"edge"`
	Root        string    `json:"root"`
	AckedSeq    int64     `json:"acked_seq"`
	LastAttempt time.Time `json:"last_attempt,omitzero"`
	LastSuccess time.Time `json:"last_success,omitzero"`
	LastError   string    `json:"last_error,omitempty"`
	// Failures counts consecutive failed attempts (resets on success);
	// Backoff is the exponential wait the loop applies before the next
	// attempt while Failures is non-zero (zero after a success).
	Failures int           `json:"failures,omitempty"`
	Backoff  time.Duration `json:"backoff,omitempty"`
	// Pushes and Reports count acknowledged pushes and the increments
	// they shipped.
	Pushes  uint64 `json:"pushes"`
	Reports uint64 `json:"reports"`
	// Diverged is set when the root provably holds a different history for
	// this edge than the local cursor (e.g. the root restored an older
	// snapshot); the loop stops pushing until an operator intervenes.
	Diverged bool `json:"diverged,omitempty"`
}

// Pusher ships deltas from one edge to one root. Create with NewPusher.
type Pusher struct {
	cfg     PusherConfig
	tracker *Tracker

	// attemptMu serializes whole push attempts: the background Run loop
	// and a manual PushOnce (shutdown flush, tests) must not both freeze,
	// persist and transmit the same pending payload concurrently.
	attemptMu sync.Mutex

	mu     sync.Mutex
	status PusherStatus
}

// NewPusher validates the configuration and binds it to a tracker.
func NewPusher(cfg PusherConfig, tracker *Tracker) (*Pusher, error) {
	cfg, err := cfg.filled()
	if err != nil {
		return nil, err
	}
	if tracker == nil {
		tracker = NewTracker()
	}
	return &Pusher{cfg: cfg, tracker: tracker, status: PusherStatus{Edge: cfg.Edge, Root: cfg.URL}}, nil
}

// Tracker returns the cursor the pusher folds acknowledgments into.
func (p *Pusher) Tracker() *Tracker { return p.tracker }

// Status returns a snapshot of the push loop's health.
func (p *Pusher) Status() PusherStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.status
	st.AckedSeq = p.tracker.AckedSeq()
	return st
}

// Run pushes on the jittered interval until done closes, backing off
// exponentially while the root is unreachable or rejecting. It never
// returns an error: transient failure is this loop's normal weather, and
// permanent divergence parks the loop with Status().Diverged set.
func (p *Pusher) Run(done <-chan struct{}) {
	failures := 0
	for {
		wait := p.jittered(p.cfg.Interval)
		if failures > 0 {
			wait = p.jittered(p.backoffFor(failures))
		}
		select {
		case <-done:
			return
		case <-time.After(wait):
		}
		if p.Status().Diverged {
			return
		}
		if _, err := p.PushOnce(); err != nil {
			if failures < 62 { // cap the shift, not the backoff
				failures++
			}
			p.cfg.Logf("federate: push to %s: %v", p.cfg.URL, err)
		} else {
			failures = 0
		}
	}
}

// jittered spreads d by ±cfg.Jitter.
func (p *Pusher) jittered(d time.Duration) time.Duration {
	f := 1 + p.cfg.Jitter*(2*rand.Float64()-1)
	return time.Duration(float64(d) * f)
}

// backoffFor is the exponential failure backoff after n consecutive
// failures, bounded by MinBackoff/MaxBackoff.
func (p *Pusher) backoffFor(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	if n > 62 {
		n = 62 // cap the shift, not the backoff
	}
	backoff := p.cfg.MinBackoff << (n - 1)
	if backoff > p.cfg.MaxBackoff || backoff <= 0 {
		backoff = p.cfg.MaxBackoff
	}
	return backoff
}

// PushOnce performs one full push attempt: freeze (or reuse) the pending
// delta, write it ahead, transmit, and fold the acknowledgment. It returns
// (false, nil) when there was nothing to ship, (true, nil) when a payload
// was acknowledged (applied or provably duplicate), and an error when the
// attempt must be retried.
func (p *Pusher) PushOnce() (acked bool, err error) {
	p.attemptMu.Lock()
	defer p.attemptMu.Unlock()
	p.mu.Lock()
	if p.status.Diverged {
		p.mu.Unlock()
		return false, fmt.Errorf("federate: edge %q diverged from root %s; pushing is parked", p.cfg.Edge, p.cfg.URL)
	}
	p.status.LastAttempt = time.Now()
	p.mu.Unlock()

	acked, err = p.pushOnce()
	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil {
		p.status.LastError = err.Error()
		p.status.Failures++
		p.status.Backoff = p.backoffFor(p.status.Failures)
		return acked, err
	}
	p.status.LastError = ""
	p.status.Failures = 0
	p.status.Backoff = 0
	if acked {
		p.status.LastSuccess = time.Now()
	}
	return acked, nil
}

func (p *Pusher) pushOnce() (acked bool, err error) {
	hadPending := p.tracker.Pending() != nil
	pending, err := p.tracker.PrepareFormat(p.cfg.Edge, p.filteredStates(), p.cfg.Binary)
	if err != nil {
		return false, err
	}
	if pending == nil {
		return false, nil
	}
	// The push span starts only once there is a payload, so idle cycles
	// leave no trace. Its context travels in the traceparent header.
	sp := p.cfg.Tracer.NewTrace("federation/push")
	sp.Attr("edge", p.cfg.Edge).Attr("seq", fmt.Sprintf("%d", pending.Seq))
	defer func() {
		if err != nil {
			sp.Fail("push_failed")
		}
		sp.End()
	}()
	if !hadPending && p.cfg.Persist != nil {
		// Write-ahead: the frozen payload must survive a crash before it
		// may travel, or a restart could rebuild a different payload under
		// the same sequence number.
		if perr := p.cfg.Persist(); perr != nil {
			p.tracker.Discard()
			return false, fmt.Errorf("federate: write-ahead persist: %w", perr)
		}
	}

	resp, err := p.transmit(pending, sp)
	if err != nil {
		return false, err
	}
	switch {
	case resp.Applied:
		if err := p.tracker.Ack(pending.Seq); err != nil {
			return false, err
		}
		p.mu.Lock()
		p.status.Pushes++
		p.status.Reports += resp.Reports
		p.mu.Unlock()
		return true, nil
	case resp.Duplicate:
		if resp.CRC == pending.CRC {
			// The root already holds exactly these bytes: fold and move on.
			return true, p.tracker.Ack(pending.Seq)
		}
		if p.tracker.Fresh() {
			// A restarted-without-state edge colliding with its own past
			// sequence numbers: adopt the root's high-water mark and ship
			// the post-restart history under fresh sequences. Exact,
			// because the pre-restart reports exist only at the root now.
			p.cfg.Logf("federate: edge %q resyncing to root seq %d (local state is fresh)", p.cfg.Edge, resp.LastSeq)
			if err := p.tracker.AdoptSeq(resp.LastSeq); err != nil {
				return false, err
			}
			return false, fmt.Errorf("federate: adopted root seq %d; delta rebuilt next cycle", resp.LastSeq)
		}
		p.park(fmt.Sprintf("root applied a different payload for seq %d (crc %s != %s)",
			pending.Seq, resp.CRC, pending.CRC))
		return false, fmt.Errorf("federate: edge %q diverged from root: seq %d applied with different payload",
			p.cfg.Edge, pending.Seq)
	case resp.Reason == ReasonSeqGap:
		if resp.LastSeq == 0 && pending.Seq > 1 {
			// The root has no memory of this edge at all (fresh root, or
			// one that lost its disk): resetting the cursor re-ships the
			// edge's entire retained history from basis zero — exact,
			// because the root holds none of it.
			p.cfg.Logf("federate: root %s has no state for edge %q; re-shipping full history", p.cfg.URL, p.cfg.Edge)
			p.tracker.Reset()
			return false, fmt.Errorf("federate: root lost edge state; full history re-shipping next cycle")
		}
		p.park(fmt.Sprintf("root high-water mark %d is behind local acked %d (root restored an older snapshot?)",
			resp.LastSeq, pending.Seq-1))
		return false, fmt.Errorf("federate: edge %q diverged: root seq %d behind local %d",
			p.cfg.Edge, resp.LastSeq, pending.Seq-1)
	default:
		reason := resp.Reason
		if reason == "" {
			reason = "rejected"
		}
		return false, fmt.Errorf("federate: root %s %s: %s", p.cfg.URL, reason, resp.Error)
	}
}

// park marks the pusher diverged; Run exits on the next cycle.
func (p *Pusher) park(why string) {
	p.cfg.Logf("federate: edge %q parked: %s", p.cfg.Edge, why)
	p.mu.Lock()
	p.status.Diverged = true
	p.status.LastError = why
	p.mu.Unlock()
}

// filteredStates applies the optional stream allow-list to Gather's output.
func (p *Pusher) filteredStates() []StreamState {
	states := p.cfg.Gather()
	if len(p.cfg.Streams) == 0 {
		return states
	}
	allow := make(map[string]bool, len(p.cfg.Streams))
	for _, name := range p.cfg.Streams {
		allow[name] = true
	}
	out := states[:0]
	for _, st := range states {
		if allow[st.Name] {
			out = append(out, st)
		}
	}
	return out
}

// transmit POSTs the frozen payload and decodes the root's answer. HTTP 200
// and 409 both carry a PushResponse; anything else is a transport-level
// error to be retried.
func (p *Pusher) transmit(pending *Pending, sp *trace.Span) (PushResponse, error) {
	req, err := http.NewRequest(http.MethodPost, strings.TrimSuffix(p.cfg.URL, "/")+"/federation/push",
		bytes.NewReader(pending.Body))
	if err != nil {
		return PushResponse{}, err
	}
	// The Content-Type follows the frozen bytes, not the current config: a
	// pending payload restored from a snapshot may predate a codec change.
	if IsBinaryPush(pending.Body) {
		req.Header.Set("Content-Type", wire.ContentType)
	} else {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("Accept", "application/json")
	if sc := sp.Context(); sc.Valid() {
		req.Header.Set("traceparent", sc.Header())
	}
	if p.cfg.TraceLinks != nil {
		if links := p.cfg.TraceLinks(); len(links) > 0 {
			req.Header.Set("X-LDP-Trace-Link", strings.Join(links, ","))
		}
	}
	resp, err := p.cfg.HTTPClient.Do(req)
	if err != nil {
		return PushResponse{}, fmt.Errorf("federate: POST /federation/push: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return PushResponse{}, fmt.Errorf("federate: read push response: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusConflict:
		var pr PushResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			return PushResponse{}, fmt.Errorf("federate: undecodable push response (status %d): %v",
				resp.StatusCode, err)
		}
		return pr, nil
	default:
		return PushResponse{}, fmt.Errorf("federate: push status %d: %s", resp.StatusCode,
			strings.TrimSpace(string(body)))
	}
}
