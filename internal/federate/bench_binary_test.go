package federate

// Codec-comparative benchmarks for the push wire formats at the standard
// granularities B ∈ {256, 1024, 4096}: the same ~10% occupancy delta
// encoded and decoded as JSON and as the LDPB binary frame. Results are
// recorded in BENCH_wire.json; bytes/op is the payload size, so the
// federation bandwidth ratio can be read straight off the two codecs.

import (
	"fmt"
	"testing"
)

// benchDeltas converts the benchmark state into the StreamDelta shape both
// encoders take.
func benchDeltas(buckets int) []StreamDelta {
	st := benchStates(buckets)[0]
	d, ok := NewEpochDelta(0, st.Epochs[0].Counts)
	if !ok {
		panic("bench delta did not encode")
	}
	return []StreamDelta{{Stream: st.Name, Fingerprint: st.Fingerprint, Epochs: []EpochDelta{d}}}
}

func BenchmarkPushEncode(b *testing.B) {
	codecs := []struct {
		name   string
		encode func(string, int64, []StreamDelta) ([]byte, error)
	}{
		{"json", EncodePush},
		{"binary", EncodePushBinary},
	}
	for _, codec := range codecs {
		for _, buckets := range []int{256, 1024, 4096} {
			b.Run(fmt.Sprintf("%s/B=%d", codec.name, buckets), func(b *testing.B) {
				deltas := benchDeltas(buckets)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					body, err := codec.encode("edge", 1, deltas)
					if err != nil {
						b.Fatal(err)
					}
					b.SetBytes(int64(len(body)))
				}
			})
		}
	}
}

func BenchmarkPushDecode(b *testing.B) {
	codecs := []struct {
		name   string
		encode func(string, int64, []StreamDelta) ([]byte, error)
		decode func([]byte) (Push, error)
	}{
		{"json", EncodePush, DecodePush},
		{"binary", EncodePushBinary, DecodePushBinary},
	}
	for _, codec := range codecs {
		for _, buckets := range []int{256, 1024, 4096} {
			b.Run(fmt.Sprintf("%s/B=%d", codec.name, buckets), func(b *testing.B) {
				body, err := codec.encode("edge", 1, benchDeltas(buckets))
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(len(body)))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := codec.decode(body); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkPushMergeBinary(b *testing.B) {
	// Root-side apply of a binary push: decode + expand dense + fold, the
	// full per-push cost at the root.
	for _, buckets := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("B=%d", buckets), func(b *testing.B) {
			body, err := EncodePushBinary("edge", 1, benchDeltas(buckets))
			if err != nil {
				b.Fatal(err)
			}
			acc := make([]uint64, buckets)
			b.SetBytes(int64(len(body)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				push, err := DecodePushBinary(body)
				if err != nil {
					b.Fatal(err)
				}
				dense, err := push.Streams[0].Epochs[0].Dense(buckets)
				if err != nil {
					b.Fatal(err)
				}
				for bkt, c := range dense {
					acc[bkt] += c
				}
			}
		})
	}
}
