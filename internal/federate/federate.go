// Package federate is the wire protocol and edge-side state machine of the
// collector's federation tier: many edge collectors near the reporting
// clients, each periodically shipping the histogram increments it has
// accumulated since its last acknowledged push to one root collector, which
// merges them and answers queries over the union. Shipping deltas — not
// reports, not full histograms — keeps the payloads O(buckets) regardless of
// population size (the SW/EMS pipeline is aggregate-sufficient, so nothing
// beyond the sufficient-statistic histogram ever needs to travel), and keying
// every delta by epoch index makes windowed streams federate exactly: an
// increment lands in the same epoch at the root that it occupied at the edge.
//
// # Exactness model
//
// The protocol is exact: after every acknowledged push, the root's histogram
// equals what a single collector would hold had it ingested every edge's
// reports directly. Three mechanisms make that survive crashes and retries:
//
//   - Per-push sequence numbers. An edge freezes each delta payload with
//     seq = lastAcked+1 and retries that exact payload until the root
//     acknowledges it. The root remembers the last sequence (and payload
//     CRC) it applied per edge, so a replayed payload — a retry after a lost
//     response, or a restart from a snapshot taken before the ack — is
//     detected and skipped, never double-counted.
//   - Per-bucket acked cursors. The edge's Tracker remembers, per stream and
//     epoch, exactly which counts the root has durably acknowledged; the next
//     delta is the current histogram minus that basis. A restarted edge
//     resumes from its persisted cursor and recomputes the same arithmetic.
//   - Write-ahead pending. A pusher configured with a Persist hook persists
//     the frozen pending payload before its first transmission, so a crash
//     between send and ack restores the identical bytes — the root's CRC
//     check then proves the replay is the payload it already applied (or
//     never received), and either way the fold is exact.
//
// # Compatibility
//
// Every stream delta carries the stream's Fingerprint — mechanism, ε,
// reconstruction and histogram granularity, resolved bandwidth, and epoch
// geometry. The root refuses (HTTP 409) any push whose fingerprint differs
// from its own stream: merging histograms produced by different channels
// would be statistically meaningless, the same rule core.Aggregator.Merge
// has always enforced in-process.
package federate

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"time"
)

// WireVersion is the push payload version. Roots reject newer versions;
// older versions (there are none yet) would be accepted here.
const WireVersion = 1

// Fingerprint is a stream's compatibility surface: two streams may be merged
// iff their fingerprints are equal. Bandwidth travels resolved (the declared
// 0 = "optimal" is expanded first), so an edge that declared the default and
// a root that declared the explicit optimum still match.
type Fingerprint struct {
	Mechanism string  `json:"mechanism"`
	Epsilon   float64 `json:"epsilon"`
	// Buckets is the reconstruction granularity; OutputBuckets the report
	// histogram granularity the deltas are shaped in.
	Buckets       int     `json:"buckets"`
	OutputBuckets int     `json:"output_buckets"`
	Bandwidth     float64 `json:"bandwidth,omitempty"`
	// EpochNanos and Retain carry the epoch geometry of a windowed stream
	// (zero for plain streams). Windowing must match: a windowed edge
	// cannot fold into a plain root stream or vice versa.
	EpochNanos int64 `json:"epoch_nanos,omitempty"`
	Retain     int   `json:"retain,omitempty"`
	// EpochOriginNanos is the wall-clock instant (Unix nanoseconds) of the
	// stream's epoch 0. Deltas are keyed by epoch index, so two streams
	// may merge only when their indexes name the same wall-clock
	// intervals — the origin makes a misaligned pairing a loud 409 instead
	// of silently filing reports into the wrong epochs. Roots that
	// auto-declare adopt the first edge's origin.
	EpochOriginNanos int64 `json:"epoch_origin_nanos,omitempty"`
}

// Equal reports whether two fingerprints are merge-compatible. Equality is
// exact, including the float64 bandwidth: both sides resolve the default
// bandwidth through the same arithmetic, so compatible configurations agree
// bit-for-bit.
func (f Fingerprint) Equal(o Fingerprint) bool { return f == o }

// String renders the fingerprint for error messages.
func (f Fingerprint) String() string {
	s := fmt.Sprintf("%s ε=%v d=%d/%d b=%v", f.Mechanism, f.Epsilon, f.Buckets, f.OutputBuckets, f.Bandwidth)
	if f.EpochNanos > 0 {
		s += fmt.Sprintf(" epoch=%v retain=%d origin=%s", time.Duration(f.EpochNanos), f.Retain,
			time.Unix(0, f.EpochOriginNanos).UTC().Format(time.RFC3339Nano))
	}
	return s
}

// EpochDelta is the increments of one epoch of one stream since the last
// acknowledged push. Exactly one of Counts (dense) or Cells (sparse
// [bucket, count] pairs) is set; the encoder picks whichever is smaller on
// the wire. An all-zero delta is never encoded.
type EpochDelta struct {
	// Epoch is the epoch index the increments belong to (always 0 for a
	// plain, non-windowed stream).
	Epoch int `json:"epoch"`
	// N is the increment total, a checksum over the counts.
	N uint64 `json:"n"`
	// Counts is the dense increment histogram.
	Counts []uint64 `json:"counts,omitempty"`
	// Cells is the sparse encoding: [bucket, count] pairs, ascending by
	// bucket.
	Cells [][2]uint64 `json:"cells,omitempty"`
}

// sparseCutover is the nonzero-cell fraction above which dense encoding is
// smaller on the wire (a pair costs roughly 2.5× a dense zero).
const sparseCutover = 3

// NewEpochDelta builds the wire encoding of one epoch's increments, choosing
// sparse cells when fewer than 1/3 of the buckets are nonzero. ok is false
// when every increment is zero — such deltas are not shipped.
func NewEpochDelta(epoch int, inc []uint64) (d EpochDelta, ok bool) {
	var n uint64
	nonzero := 0
	for _, c := range inc {
		if c != 0 {
			n += c
			nonzero++
		}
	}
	if n == 0 {
		return EpochDelta{}, false
	}
	d = EpochDelta{Epoch: epoch, N: n}
	if nonzero*sparseCutover < len(inc) {
		d.Cells = make([][2]uint64, 0, nonzero)
		for b, c := range inc {
			if c != 0 {
				d.Cells = append(d.Cells, [2]uint64{uint64(b), c})
			}
		}
		return d, true
	}
	d.Counts = append([]uint64(nil), inc...)
	return d, true
}

// Dense expands the delta into a dense histogram of the given granularity,
// validating shape and the N checksum. The returned slice is freshly
// allocated for sparse deltas and aliases d.Counts for dense ones.
func (d EpochDelta) Dense(buckets int) ([]uint64, error) {
	if d.Epoch < 0 {
		return nil, fmt.Errorf("federate: negative epoch %d", d.Epoch)
	}
	if d.Counts != nil && d.Cells != nil {
		return nil, fmt.Errorf("federate: epoch %d delta is both dense and sparse", d.Epoch)
	}
	var out []uint64
	var n uint64
	switch {
	case d.Counts != nil:
		if len(d.Counts) != buckets {
			return nil, fmt.Errorf("federate: epoch %d delta has %d buckets, want %d",
				d.Epoch, len(d.Counts), buckets)
		}
		out = d.Counts
		for _, c := range out {
			n += c
		}
	case d.Cells != nil:
		out = make([]uint64, buckets)
		prev := -1
		for _, cell := range d.Cells {
			b := int(cell[0])
			if b <= prev || b >= buckets {
				return nil, fmt.Errorf("federate: epoch %d delta cell bucket %d out of order or outside [0, %d)",
					d.Epoch, b, buckets)
			}
			prev = b
			out[b] = cell[1]
			n += cell[1]
		}
	default:
		return nil, fmt.Errorf("federate: epoch %d delta carries no counts", d.Epoch)
	}
	if n != d.N || n == 0 {
		return nil, fmt.Errorf("federate: epoch %d delta totals %d counts but claims n=%d", d.Epoch, n, d.N)
	}
	return out, nil
}

// StreamDelta is every unshipped epoch of one stream.
type StreamDelta struct {
	Stream      string       `json:"stream"`
	Fingerprint Fingerprint  `json:"fingerprint"`
	Epochs      []EpochDelta `json:"epochs"`
}

// pushEnvelope is the top-level JSON of POST /federation/push. Streams stays
// raw so the CRC is computed over the exact bytes that traveled.
type pushEnvelope struct {
	Version int             `json:"version"`
	Edge    string          `json:"edge"`
	Seq     int64           `json:"seq"`
	CRC     string          `json:"payload_crc32"`
	Streams json.RawMessage `json:"streams"`
}

// Push is a decoded, CRC-verified push payload.
type Push struct {
	Edge string
	Seq  int64
	// CRC is the hex CRC32 of the streams payload — the root remembers it
	// per edge so byte-identical replays are provably the payload already
	// applied.
	CRC     string
	Streams []StreamDelta
}

// EncodePush freezes a push payload: the stream deltas are marshaled once,
// checksummed, and wrapped in the versioned envelope. The returned bytes are
// what travels — and what a write-ahead snapshot persists, so a crash replays
// the identical payload.
func EncodePush(edge string, seq int64, streams []StreamDelta) ([]byte, error) {
	if edge == "" {
		return nil, fmt.Errorf("federate: empty edge id")
	}
	if seq < 1 {
		return nil, fmt.Errorf("federate: push seq must be positive, got %d", seq)
	}
	inner, err := json.Marshal(streams)
	if err != nil {
		return nil, fmt.Errorf("federate: encode push: %w", err)
	}
	body, err := json.Marshal(pushEnvelope{
		Version: WireVersion,
		Edge:    edge,
		Seq:     seq,
		CRC:     fmt.Sprintf("%08x", crc32.ChecksumIEEE(inner)),
		Streams: inner,
	})
	if err != nil {
		return nil, fmt.Errorf("federate: encode push: %w", err)
	}
	return body, nil
}

// DecodePush parses and verifies a push payload: version, CRC over the raw
// stream bytes, and basic shape. It never panics on hostile input; deeper
// validation (fingerprints, bucket counts) is the receiver's job because it
// needs the live stream registry.
func DecodePush(body []byte) (Push, error) {
	var env pushEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		return Push{}, fmt.Errorf("federate: decode push: %v", err)
	}
	if env.Version != WireVersion {
		return Push{}, fmt.Errorf("federate: push version %d not supported (this build speaks %d)",
			env.Version, WireVersion)
	}
	if env.Edge == "" {
		return Push{}, fmt.Errorf("federate: push carries no edge id")
	}
	if env.Seq < 1 {
		return Push{}, fmt.Errorf("federate: push seq %d must be positive", env.Seq)
	}
	if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(env.Streams)); got != env.CRC {
		return Push{}, fmt.Errorf("federate: push payload checksum mismatch (corrupt in flight?)")
	}
	var streams []StreamDelta
	if err := json.Unmarshal(env.Streams, &streams); err != nil {
		return Push{}, fmt.Errorf("federate: decode push streams: %v", err)
	}
	seen := make(map[string]bool, len(streams))
	for _, sd := range streams {
		if sd.Stream == "" {
			return Push{}, fmt.Errorf("federate: push carries a nameless stream delta")
		}
		if seen[sd.Stream] {
			return Push{}, fmt.Errorf("federate: push carries stream %q twice", sd.Stream)
		}
		seen[sd.Stream] = true
		if len(sd.Epochs) == 0 {
			return Push{}, fmt.Errorf("federate: push stream %q carries no epochs", sd.Stream)
		}
	}
	return Push{Edge: env.Edge, Seq: env.Seq, CRC: env.CRC, Streams: streams}, nil
}

// Machine-readable reasons carried by PushResponse on failure, so the pusher
// can distinguish retryable transport trouble from configuration conflicts
// and state divergence.
const (
	// ReasonSeqGap: the push's sequence is more than one ahead of the
	// root's high-water mark — the root lost state (restored an older
	// snapshot, or is fresh).
	ReasonSeqGap = "seq_gap"
	// ReasonFingerprint: a stream's fingerprint does not match the root's.
	ReasonFingerprint = "fingerprint_mismatch"
	// ReasonUnknownStream: the root does not host the stream and
	// auto-declaration is off.
	ReasonUnknownStream = "unknown_stream"
	// ReasonDisabled: the root does not accept federation pushes.
	ReasonDisabled = "federation_disabled"
)

// StreamResult is the per-stream outcome inside a PushResponse.
type StreamResult struct {
	Stream string `json:"stream"`
	// AppliedEpochs counts epochs merged; N the increments they carried.
	AppliedEpochs int    `json:"applied_epochs"`
	N             uint64 `json:"n"`
	// DroppedEpochs lists epoch indexes the root could not place (aged out
	// of its retention, or not yet started on its clock); DroppedN the
	// increments they carried. Drops are reported, never silently eaten.
	DroppedEpochs []int  `json:"dropped_epochs,omitempty"`
	DroppedN      uint64 `json:"dropped_n,omitempty"`
}

// PushResponse is the root's answer to POST /federation/push.
type PushResponse struct {
	// Seq echoes the push; LastSeq is the root's per-edge high-water mark
	// after handling it.
	Seq     int64 `json:"seq"`
	LastSeq int64 `json:"last_seq"`
	// Applied is true when this push's deltas were merged; Duplicate when
	// the sequence was already applied and the push was skipped. CRC, on a
	// duplicate, is the payload checksum the root applied for that
	// sequence — the edge compares it to prove the skip was exact.
	Applied   bool   `json:"applied"`
	Duplicate bool   `json:"duplicate,omitempty"`
	CRC       string `json:"payload_crc32,omitempty"`
	// Reports is the total increments absorbed by this push.
	Reports uint64         `json:"reports,omitempty"`
	Streams []StreamResult `json:"streams,omitempty"`
	// Error and Reason describe a rejection (HTTP 4xx). On the wire they
	// travel as the uniform error envelope every collector endpoint speaks
	// — {"error": {"code": Reason, "message": Error}} — see MarshalJSON.
	Error  string `json:"-"`
	Reason string `json:"-"`
}

// pushResponseWire is PushResponse's JSON form: every field flat except the
// rejection, which nests as the uniform HTTP error envelope so federation
// 4xx bodies look exactly like every other endpoint's. The Go struct keeps
// flat Error/Reason fields — the pusher's state machine and its tests never
// see the envelope.
type pushResponseWire struct {
	Seq       int64          `json:"seq"`
	LastSeq   int64          `json:"last_seq"`
	Applied   bool           `json:"applied"`
	Duplicate bool           `json:"duplicate,omitempty"`
	CRC       string         `json:"payload_crc32,omitempty"`
	Reports   uint64         `json:"reports,omitempty"`
	Streams   []StreamResult `json:"streams,omitempty"`
	Err       *wireError     `json:"error,omitempty"`
}

// wireError mirrors ldphttp's envelope body (the two packages must not
// import each other).
type wireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// MarshalJSON renders Reason/Error as the nested envelope, with Reason as
// the machine-readable code ("bad_request" when a rejection carries no
// reason).
func (r PushResponse) MarshalJSON() ([]byte, error) {
	w := pushResponseWire{
		Seq: r.Seq, LastSeq: r.LastSeq, Applied: r.Applied, Duplicate: r.Duplicate,
		CRC: r.CRC, Reports: r.Reports, Streams: r.Streams,
	}
	if r.Error != "" || r.Reason != "" {
		code := r.Reason
		if code == "" {
			code = "bad_request"
		}
		w.Err = &wireError{Code: code, Message: r.Error}
	}
	return json.Marshal(w)
}

// UnmarshalJSON folds the envelope back into the flat fields.
func (r *PushResponse) UnmarshalJSON(b []byte) error {
	var w pushResponseWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = PushResponse{
		Seq: w.Seq, LastSeq: w.LastSeq, Applied: w.Applied, Duplicate: w.Duplicate,
		CRC: w.CRC, Reports: w.Reports, Streams: w.Streams,
	}
	if w.Err != nil {
		r.Reason = w.Err.Code
		r.Error = w.Err.Message
	}
	return nil
}
