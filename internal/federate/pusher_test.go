package federate

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// stubRoot speaks the root half of the push protocol: seq/CRC replay
// detection plus a merged histogram per stream/epoch, so pusher tests can
// assert exactness without the full collector.
type stubRoot struct {
	mu      sync.Mutex
	lastSeq int64
	lastCRC string
	merged  map[string]map[int][]uint64
	pushes  int
	// lastContentType records the most recent request's Content-Type so
	// codec tests can assert what the pusher declared.
	lastContentType string
	// failNext makes the next request fail at the HTTP layer.
	failNext int
}

func newStubRoot() *stubRoot {
	return &stubRoot{merged: make(map[string]map[int][]uint64)}
}

func (r *stubRoot) handler(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failNext > 0 {
		r.failNext--
		http.Error(w, "root on fire", http.StatusInternalServerError)
		return
	}
	r.lastContentType = req.Header.Get("Content-Type")
	body := make([]byte, req.ContentLength)
	if _, err := req.Body.Read(body); err != nil && err.Error() != "EOF" {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	push, err := DecodePushAuto(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.pushes++
	resp := PushResponse{Seq: push.Seq, LastSeq: r.lastSeq}
	switch {
	case push.Seq <= r.lastSeq:
		resp.Duplicate = true
		if push.Seq == r.lastSeq {
			resp.CRC = r.lastCRC
		}
	case push.Seq > r.lastSeq+1:
		resp.Reason = ReasonSeqGap
		resp.Error = fmt.Sprintf("push seq %d but high-water mark is %d", push.Seq, r.lastSeq)
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(resp)
		return
	default:
		for _, sd := range push.Streams {
			epochs := r.merged[sd.Stream]
			if epochs == nil {
				epochs = make(map[int][]uint64)
				r.merged[sd.Stream] = epochs
			}
			for _, d := range sd.Epochs {
				dense, err := d.Dense(sd.Fingerprint.OutputBuckets)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				if epochs[d.Epoch] == nil {
					epochs[d.Epoch] = make([]uint64, len(dense))
				}
				for b, c := range dense {
					epochs[d.Epoch][b] += c
					resp.Reports += c
				}
			}
		}
		r.lastSeq = push.Seq
		r.lastCRC = push.CRC
		resp.Applied = true
		resp.LastSeq = push.Seq
	}
	json.NewEncoder(w).Encode(resp)
}

func (r *stubRoot) counts(stream string, epoch int) []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.merged[stream][epoch]...)
}

// edgeHist is a mutable fake edge histogram feeding Gather.
type edgeHist struct {
	mu     sync.Mutex
	counts []uint64
}

func (h *edgeHist) add(b int, n uint64) {
	h.mu.Lock()
	h.counts[b] += n
	h.mu.Unlock()
}

func (h *edgeHist) states() []StreamState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return []StreamState{{
		Name:        "age",
		Fingerprint: Fingerprint{Mechanism: "sw", Epsilon: 1, Buckets: 4, OutputBuckets: 4},
		Epochs:      []EpochCounts{{Epoch: 0, Counts: append([]uint64(nil), h.counts...)}},
	}}
}

func newTestPusher(t *testing.T, url string, h *edgeHist, mutate func(*PusherConfig)) *Pusher {
	t.Helper()
	cfg := PusherConfig{URL: url, Edge: "edge-1", Gather: h.states}
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := NewPusher(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPusherShipsAndAcks(t *testing.T) {
	root := newStubRoot()
	ts := httptest.NewServer(http.HandlerFunc(root.handler))
	defer ts.Close()
	h := &edgeHist{counts: []uint64{3, 0, 1, 0}}
	p := newTestPusher(t, ts.URL, h, nil)

	acked, err := p.PushOnce()
	if err != nil || !acked {
		t.Fatalf("push: acked=%v err=%v", acked, err)
	}
	if got := root.counts("age", 0); got[0] != 3 || got[2] != 1 {
		t.Fatalf("root merged %v", got)
	}
	// Nothing new: no request needed.
	if acked, err := p.PushOnce(); err != nil || acked {
		t.Fatalf("idle push: acked=%v err=%v", acked, err)
	}
	h.add(1, 2)
	if acked, err := p.PushOnce(); err != nil || !acked {
		t.Fatalf("incremental push: acked=%v err=%v", acked, err)
	}
	if got := root.counts("age", 0); got[0] != 3 || got[1] != 2 {
		t.Fatalf("root merged %v", got)
	}
	st := p.Status()
	if st.Pushes != 2 || st.Reports != 6 || st.AckedSeq != 2 || st.Diverged {
		t.Fatalf("status %+v", st)
	}
}

func TestPusherRetriesFrozenPayloadThroughFailures(t *testing.T) {
	root := newStubRoot()
	ts := httptest.NewServer(http.HandlerFunc(root.handler))
	defer ts.Close()
	h := &edgeHist{counts: []uint64{5, 0, 0, 0}}
	p := newTestPusher(t, ts.URL, h, nil)

	root.mu.Lock()
	root.failNext = 2
	root.mu.Unlock()
	for i := 0; i < 2; i++ {
		if _, err := p.PushOnce(); err == nil {
			t.Fatal("push succeeded against a failing root")
		}
	}
	// Reports arriving during the outage must not leak into the frozen
	// payload — they ship with the next sequence.
	h.add(3, 4)
	if acked, err := p.PushOnce(); err != nil || !acked {
		t.Fatalf("recovery push: acked=%v err=%v", acked, err)
	}
	if got := root.counts("age", 0); got[0] != 5 || got[3] != 0 {
		t.Fatalf("after recovery root has %v", got)
	}
	if acked, err := p.PushOnce(); err != nil || !acked {
		t.Fatalf("follow-up push: %v", err)
	}
	if got := root.counts("age", 0); got[0] != 5 || got[3] != 4 {
		t.Fatalf("final root %v", got)
	}
}

// duplicateDropTransport forwards requests but reports failure to the caller,
// simulating a response lost in flight.
type dropResponseTransport struct {
	inner http.RoundTripper
	drops int
	mu    sync.Mutex
}

func (d *dropResponseTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := d.inner.RoundTrip(req)
	d.mu.Lock()
	defer d.mu.Unlock()
	if err == nil && d.drops > 0 {
		d.drops--
		resp.Body.Close()
		return nil, errors.New("response lost in flight")
	}
	return resp, err
}

func TestPusherLostResponseReplaysExactly(t *testing.T) {
	root := newStubRoot()
	ts := httptest.NewServer(http.HandlerFunc(root.handler))
	defer ts.Close()
	h := &edgeHist{counts: []uint64{7, 0, 0, 0}}
	drop := &dropResponseTransport{inner: http.DefaultTransport, drops: 1}
	p := newTestPusher(t, ts.URL, h, func(c *PusherConfig) {
		c.HTTPClient = &http.Client{Transport: drop}
	})

	// The root applies the push but the edge never hears the ack.
	if _, err := p.PushOnce(); err == nil {
		t.Fatal("lost response reported success")
	}
	if got := root.counts("age", 0); got[0] != 7 {
		t.Fatalf("root did not apply the first transmission: %v", got)
	}
	// The retry replays the identical payload; the root detects the
	// duplicate by CRC and the edge folds without double counting.
	if acked, err := p.PushOnce(); err != nil || !acked {
		t.Fatalf("replay: acked=%v err=%v", acked, err)
	}
	if got := root.counts("age", 0); got[0] != 7 {
		t.Fatalf("replay double-counted: %v", got)
	}
	if p.Status().Diverged {
		t.Fatal("exact replay marked the edge diverged")
	}
}

func TestPusherFreshEdgeAdoptsRootSeq(t *testing.T) {
	root := newStubRoot()
	root.lastSeq = 5
	root.lastCRC = "deadbeef"
	ts := httptest.NewServer(http.HandlerFunc(root.handler))
	defer ts.Close()
	h := &edgeHist{counts: []uint64{2, 0, 0, 0}}
	p := newTestPusher(t, ts.URL, h, nil)

	// First attempt collides with the root's history for this edge id and
	// adopts its high-water mark.
	if _, err := p.PushOnce(); err == nil {
		t.Fatal("colliding push reported success")
	}
	if p.Status().Diverged {
		t.Fatal("fresh edge marked diverged")
	}
	if acked, err := p.PushOnce(); err != nil || !acked {
		t.Fatalf("post-adopt push: acked=%v err=%v", acked, err)
	}
	root.mu.Lock()
	gotSeq := root.lastSeq
	root.mu.Unlock()
	if gotSeq != 6 {
		t.Fatalf("root seq %d, want 6", gotSeq)
	}
}

func TestPusherRootLostStateReships(t *testing.T) {
	root := newStubRoot()
	ts := httptest.NewServer(http.HandlerFunc(root.handler))
	defer ts.Close()
	h := &edgeHist{counts: []uint64{4, 0, 0, 0}}
	p := newTestPusher(t, ts.URL, h, nil)
	if acked, err := p.PushOnce(); err != nil || !acked {
		t.Fatal(err)
	}

	// The root loses its disk.
	root.mu.Lock()
	root.lastSeq, root.lastCRC = 0, ""
	root.merged = map[string]map[int][]uint64{}
	root.mu.Unlock()

	h.add(1, 1)
	// seq 2 against a root at 0 → gap → reset → full history re-ships.
	if _, err := p.PushOnce(); err == nil {
		t.Fatal("gap push reported success")
	}
	if acked, err := p.PushOnce(); err != nil || !acked {
		t.Fatalf("re-ship: acked=%v err=%v", acked, err)
	}
	if got := root.counts("age", 0); got[0] != 4 || got[1] != 1 {
		t.Fatalf("re-shipped root %v", got)
	}
}

func TestPusherPartialRootRollbackParks(t *testing.T) {
	root := newStubRoot()
	ts := httptest.NewServer(http.HandlerFunc(root.handler))
	defer ts.Close()
	h := &edgeHist{counts: []uint64{1, 0, 0, 0}}
	p := newTestPusher(t, ts.URL, h, nil)
	for i := 0; i < 2; i++ {
		h.add(0, 1)
		if acked, err := p.PushOnce(); err != nil || !acked {
			t.Fatal(err)
		}
	}

	// The root rolls back to seq 1 (restored an older snapshot): exact
	// recovery is impossible, the pusher must park rather than guess.
	root.mu.Lock()
	root.lastSeq = 1
	root.mu.Unlock()
	h.add(2, 1)
	if _, err := p.PushOnce(); err == nil {
		t.Fatal("rollback push reported success")
	}
	if !p.Status().Diverged {
		t.Fatal("partial rollback did not park the pusher")
	}
	if _, err := p.PushOnce(); err == nil {
		t.Fatal("parked pusher pushed")
	}
}

func TestPusherWriteAheadPersist(t *testing.T) {
	root := newStubRoot()
	ts := httptest.NewServer(http.HandlerFunc(root.handler))
	defer ts.Close()
	h := &edgeHist{counts: []uint64{6, 0, 0, 0}}

	var persisted []CursorState
	failPersist := true
	var p *Pusher
	p = newTestPusher(t, ts.URL, h, func(c *PusherConfig) {
		c.Persist = func() error {
			if failPersist {
				return errors.New("disk full")
			}
			persisted = append(persisted, p.Tracker().State())
			return nil
		}
	})

	// Persist failure discards the unsent payload; nothing reaches the root.
	if _, err := p.PushOnce(); err == nil {
		t.Fatal("push succeeded despite persist failure")
	}
	if root.pushes != 0 {
		t.Fatal("payload traveled before being persisted")
	}
	failPersist = false
	if acked, err := p.PushOnce(); err != nil || !acked {
		t.Fatalf("push: acked=%v err=%v", acked, err)
	}
	if len(persisted) != 1 {
		t.Fatalf("persist called %d times, want 1", len(persisted))
	}
	// The persisted cursor carries the frozen pending payload: a crash here
	// restores the exact bytes that were (about to be) sent.
	if persisted[0].Pending == nil || persisted[0].Pending.Seq != 1 {
		t.Fatalf("persisted cursor %+v lacks the pending payload", persisted[0])
	}
}

func TestPusherRunLoopAndBackoff(t *testing.T) {
	root := newStubRoot()
	ts := httptest.NewServer(http.HandlerFunc(root.handler))
	defer ts.Close()
	h := &edgeHist{counts: []uint64{9, 0, 0, 0}}
	p := newTestPusher(t, ts.URL, h, func(c *PusherConfig) {
		c.Interval = time.Millisecond
		c.MinBackoff = time.Millisecond
		c.MaxBackoff = 4 * time.Millisecond
	})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); p.Run(done) }()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := root.counts("age", 0); len(got) > 0 && got[0] == 9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run loop never shipped the histogram")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(done)
	wg.Wait()
}

func TestPusherConfigValidation(t *testing.T) {
	gather := func() []StreamState { return nil }
	bad := []PusherConfig{
		{},
		{URL: "http://x", Edge: "e"}, // no gather
		{URL: "ftp://x", Edge: "e", Gather: gather},
		{URL: "http://x", Gather: gather},       // no edge
		{URL: "://", Edge: "e", Gather: gather}, // unparsable
	}
	for i, cfg := range bad {
		if _, err := NewPusher(cfg, nil); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewPusher(PusherConfig{URL: "http://x", Edge: "e", Gather: gather}, nil); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
}

func TestPusherStreamFilter(t *testing.T) {
	root := newStubRoot()
	ts := httptest.NewServer(http.HandlerFunc(root.handler))
	defer ts.Close()
	gather := func() []StreamState {
		return []StreamState{
			{Name: "keep", Fingerprint: fp("sw"), Epochs: []EpochCounts{{Epoch: 0, Counts: []uint64{1, 0, 0, 0}}}},
			{Name: "skip", Fingerprint: fp("sw"), Epochs: []EpochCounts{{Epoch: 0, Counts: []uint64{1, 0, 0, 0}}}},
		}
	}
	p, err := NewPusher(PusherConfig{URL: ts.URL, Edge: "e", Gather: gather, Streams: []string{"keep"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acked, err := p.PushOnce(); err != nil || !acked {
		t.Fatalf("push: acked=%v err=%v", acked, err)
	}
	if got := root.counts("keep", 0); len(got) == 0 || got[0] != 1 {
		t.Fatalf("kept stream not shipped: %v", got)
	}
	if got := root.counts("skip", 0); len(got) != 0 {
		t.Fatalf("filtered stream shipped: %v", got)
	}
}
