package federate

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/wire"
)

// binaryTestDeltas exercises every fingerprint field, both epoch
// encodings, and multiple streams.
func binaryTestDeltas() []StreamDelta {
	sparse := make([]uint64, 1000)
	sparse[3] = 7
	sparse[900] = 2
	d, _ := NewEpochDelta(4, sparse)
	return []StreamDelta{
		{
			Stream: "age",
			Fingerprint: Fingerprint{
				Mechanism: "sw", Epsilon: 1.25, Buckets: 8, OutputBuckets: 8, Bandwidth: 0.25,
			},
			Epochs: []EpochDelta{
				{Epoch: 0, N: 3, Counts: []uint64{1, 0, 2, 0, 0, 0, 0, 0}},
				{Epoch: 2, N: 5, Counts: []uint64{0, 5, 0, 0, 0, 0, 0, 0}},
			},
		},
		{
			Stream: "income (windowed)",
			Fingerprint: Fingerprint{
				Mechanism: "oue", Epsilon: 2, Buckets: 1000, OutputBuckets: 1000,
				EpochNanos: 60e9, Retain: 24, EpochOriginNanos: -5e9,
			},
			Epochs: []EpochDelta{d},
		},
	}
}

func TestBinaryPushRoundTrip(t *testing.T) {
	deltas := binaryTestDeltas()
	body, err := EncodePushBinary("edge-1", 7, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBinaryPush(body) {
		t.Fatal("IsBinaryPush = false on an encoded push")
	}
	if IsBinaryPush([]byte(`{"edge":"x"}`)) {
		t.Fatal("IsBinaryPush = true on JSON")
	}
	push, err := DecodePushBinary(body)
	if err != nil {
		t.Fatal(err)
	}
	if push.Edge != "edge-1" || push.Seq != 7 || len(push.Streams) != 2 {
		t.Fatalf("decoded %+v", push)
	}
	if push.CRC == "" || len(push.CRC) != 8 {
		t.Fatalf("CRC = %q, want 8 hex digits", push.CRC)
	}
	for i, sd := range push.Streams {
		want := deltas[i]
		if sd.Stream != want.Stream || !sd.Fingerprint.Equal(want.Fingerprint) {
			t.Fatalf("stream %d decoded %+v, want %+v", i, sd, want)
		}
		if len(sd.Epochs) != len(want.Epochs) {
			t.Fatalf("stream %d epoch count %d, want %d", i, len(sd.Epochs), len(want.Epochs))
		}
		for j, e := range sd.Epochs {
			wd, err := want.Epochs[j].Dense(want.Fingerprint.OutputBuckets)
			if err != nil {
				t.Fatal(err)
			}
			gd, err := e.Dense(want.Fingerprint.OutputBuckets)
			if err != nil {
				t.Fatalf("stream %d epoch %d: %v", i, j, err)
			}
			if e.Epoch != want.Epochs[j].Epoch || e.N != want.Epochs[j].N || !reflect.DeepEqual(gd, wd) {
				t.Fatalf("stream %d epoch %d decoded %+v", i, j, e)
			}
		}
	}

	// DecodePushAuto sniffs the right codec for both framings.
	if p, err := DecodePushAuto(body); err != nil || p.Edge != "edge-1" {
		t.Fatalf("auto on binary: %+v %v", p, err)
	}
	jsonBody, err := EncodePush("edge-1", 7, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if p, err := DecodePushAuto(jsonBody); err != nil || p.Edge != "edge-1" {
		t.Fatalf("auto on JSON: %+v %v", p, err)
	}
}

func TestBinaryPushStableCRC(t *testing.T) {
	// The CRC is a pure function of the streams payload: re-encoding the
	// same deltas yields the same CRC, so root-side duplicate comparison
	// works across a pusher restart exactly as it does for JSON.
	a, err := EncodePushBinary("e", 3, binaryTestDeltas())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodePushBinary("e", 3, binaryTestDeltas())
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := DecodePushBinary(a)
	pb, _ := DecodePushBinary(b)
	if pa.CRC != pb.CRC {
		t.Fatalf("CRC not stable: %s != %s", pa.CRC, pb.CRC)
	}
}

func TestBinaryPushSmallerThanJSON(t *testing.T) {
	// The acceptance bar of the codec: at B=1024 with ~10% occupancy the
	// binary framing must be at least 5× smaller than the dense JSON push.
	const buckets = 1024
	counts := make([]uint64, buckets)
	for b := 0; b < buckets; b += 10 {
		counts[b] = uint64(b%97 + 1)
	}
	deltas := []StreamDelta{{
		Stream: "bench",
		Fingerprint: Fingerprint{
			Mechanism: "sw", Epsilon: 1, Buckets: buckets, OutputBuckets: buckets, Bandwidth: 0.25,
		},
		Epochs: []EpochDelta{{Epoch: 0, N: total(counts), Counts: counts}},
	}}
	jsonBody, err := EncodePush("edge-1", 1, deltas)
	if err != nil {
		t.Fatal(err)
	}
	binBody, err := EncodePushBinary("edge-1", 1, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if len(binBody)*5 > len(jsonBody) {
		t.Fatalf("binary push is %d bytes vs %d JSON — less than the required 5× reduction",
			len(binBody), len(jsonBody))
	}
}

func total(counts []uint64) uint64 {
	var n uint64
	for _, c := range counts {
		n += c
	}
	return n
}

func TestDecodeBinaryPushRejectsCorruption(t *testing.T) {
	body, err := EncodePushBinary("edge-1", 2, binaryTestDeltas())
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte in turn: never a panic, and almost always an error.
	// (A flip in the edge-name bytes that keeps lengths and CRC coherent is
	// impossible — the CRC trailer covers the streams payload and the
	// header fields feed length checks.)
	for i := range body {
		corrupt := append([]byte(nil), body...)
		corrupt[i] ^= 0x01
		p, err := DecodePushBinary(corrupt)
		if err == nil {
			// The only legal silent flips are in the edge-name byte or the
			// seq varint, which the CRC does not cover (they are replay
			// metadata, compared server-side). Anything else must fail.
			if p.Edge == "edge-1" && p.Seq == 2 {
				t.Fatalf("flipping byte %d decoded cleanly to the identical push", i)
			}
			continue
		}
	}
	for n := 0; n < len(body); n++ {
		if _, err := DecodePushBinary(body[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
	}
	if _, err := DecodePushBinary(append(append([]byte(nil), body...), 0)); err == nil {
		t.Fatal("trailing garbage decoded cleanly")
	}
}

func TestEncodePushBinaryRejectsBadArgs(t *testing.T) {
	if _, err := EncodePushBinary("", 1, binaryTestDeltas()); err == nil {
		t.Fatal("empty edge accepted")
	}
	if _, err := EncodePushBinary("e", 0, binaryTestDeltas()); err == nil {
		t.Fatal("seq 0 accepted")
	}
	bad := []StreamDelta{{
		Stream:      "x",
		Fingerprint: Fingerprint{Mechanism: "sw", Epsilon: 1, Buckets: 4, OutputBuckets: 4},
		Epochs:      []EpochDelta{{Epoch: -1, N: 1, Counts: []uint64{1, 0, 0, 0}}},
	}}
	if _, err := EncodePushBinary("e", 1, bad); err == nil {
		t.Fatal("negative epoch accepted")
	}
}

// TestTrackerBinaryFormat: a tracker asked for binary pending payloads
// freezes LDPB bodies whose decoded content matches the JSON path, and Ack
// and cursor-state validation work unchanged on them.
func TestTrackerBinaryFormat(t *testing.T) {
	trJ := NewTracker()
	trB := NewTracker()
	states := []StreamState{state("age", 0, 4, 0, 9, 0)}
	pj, err := trJ.PrepareFormat("edge-1", states, false)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := trB.PrepareFormat("edge-1", states, true)
	if err != nil {
		t.Fatal(err)
	}
	if IsBinaryPush(pj.Body) || !IsBinaryPush(pb.Body) {
		t.Fatalf("formats: json body binary=%v, binary body binary=%v",
			IsBinaryPush(pj.Body), IsBinaryPush(pb.Body))
	}
	pushJ, err := DecodePushAuto(pj.Body)
	if err != nil {
		t.Fatal(err)
	}
	pushB, err := DecodePushAuto(pb.Body)
	if err != nil {
		t.Fatal(err)
	}
	dj, _ := pushJ.Streams[0].Epochs[0].Dense(4)
	db, _ := pushB.Streams[0].Epochs[0].Dense(4)
	if !reflect.DeepEqual(dj, db) {
		t.Fatalf("binary pending carries %v, JSON carries %v", db, dj)
	}

	// Ack on a binary pending advances the cursor; the next delta is
	// incremental, and a restored state revalidates the binary body.
	if err := trB.Ack(pb.Seq); err != nil {
		t.Fatalf("ack binary pending: %v", err)
	}
	states2 := []StreamState{state("age", 0, 4, 1, 9, 0)}
	pb2, err := trB.PrepareFormat("edge-1", states2, true)
	if err != nil {
		t.Fatal(err)
	}
	push2, err := DecodePushAuto(pb2.Body)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := push2.Streams[0].Epochs[0].Dense(4)
	if d2[1] != 1 || d2[0] != 0 {
		t.Fatalf("incremental binary delta %v, want only bucket 1", d2)
	}
	cs := trB.State()
	if cs.Pending == nil {
		t.Fatal("cursor state lost the binary pending")
	}
	fresh := NewTracker()
	if err := fresh.Restore(cs); err != nil {
		t.Fatalf("restore with binary pending: %v", err)
	}
}

// TestPusherBinaryContentType: a binary-configured pusher declares the
// binary media type; a JSON pusher keeps application/json; and a frozen
// payload of either codec replays with its own Content-Type after a
// config change (the transmit header is sniffed from the body).
func TestPusherBinaryContentType(t *testing.T) {
	root := newStubRoot()
	ts := httptest.NewServer(http.HandlerFunc(root.handler))
	defer ts.Close()
	h := &edgeHist{counts: []uint64{3, 0, 1, 0}}
	p := newTestPusher(t, ts.URL, h, func(cfg *PusherConfig) { cfg.Binary = true })

	if acked, err := p.PushOnce(); err != nil || !acked {
		t.Fatalf("binary push: acked=%v err=%v", acked, err)
	}
	if root.lastContentType != wire.ContentType {
		t.Fatalf("binary pusher sent Content-Type %q, want %q", root.lastContentType, wire.ContentType)
	}
	if got := root.counts("age", 0); got[0] != 3 || got[2] != 1 {
		t.Fatalf("root merged %v from binary push", got)
	}

	// A JSON pusher restored with a frozen *binary* pending must replay it
	// as binary (the body bytes are frozen; only the header is derived).
	root.mu.Lock()
	root.failNext = 1
	root.mu.Unlock()
	h.add(1, 2)
	if _, err := p.PushOnce(); err == nil {
		t.Fatal("push succeeded against a failing root")
	}
	cs := p.Tracker().State()
	if cs.Pending == nil || !IsBinaryPush(cs.Pending.Body) {
		t.Fatal("outage did not freeze a binary pending")
	}
	restored := NewTracker()
	if err := restored.Restore(cs); err != nil {
		t.Fatalf("restore: %v", err)
	}
	pJSON, err := NewPusher(PusherConfig{URL: ts.URL, Edge: "edge-1", Gather: h.states}, restored)
	if err != nil {
		t.Fatal(err)
	}
	if acked, err := pJSON.PushOnce(); err != nil || !acked {
		t.Fatalf("replay of frozen binary pending: acked=%v err=%v", acked, err)
	}
	if root.lastContentType != wire.ContentType {
		t.Fatalf("frozen binary pending replayed as %q", root.lastContentType)
	}
	if got := root.counts("age", 0); got[1] != 2 {
		t.Fatalf("root merged %v after replay", got)
	}
	// And its next fresh delta goes back to JSON.
	h.add(3, 5)
	if acked, err := pJSON.PushOnce(); err != nil || !acked {
		t.Fatalf("json push after replay: %v", err)
	}
	if root.lastContentType != "application/json" {
		t.Fatalf("json pusher sent Content-Type %q", root.lastContentType)
	}
}

// FuzzBinaryPush: arbitrary bytes never panic the binary push decoder, and
// anything that decodes re-encodes to a semantically identical push.
func FuzzBinaryPush(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("LDPB"))
	if body, err := EncodePushBinary("edge-1", 7, binaryTestDeltas()); err == nil {
		f.Add(body)
	}
	if body, err := EncodePushBinary("e", 1, testDeltas()); err == nil {
		f.Add(body)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		push, err := DecodePushBinary(data)
		if err != nil {
			return
		}
		body, err := EncodePushBinary(push.Edge, push.Seq, push.Streams)
		if err != nil {
			t.Fatalf("re-encode of a decoded push failed: %v", err)
		}
		again, err := DecodePushBinary(body)
		if err != nil {
			t.Fatalf("decode of a re-encoded push failed: %v", err)
		}
		if again.Edge != push.Edge || again.Seq != push.Seq || len(again.Streams) != len(push.Streams) {
			t.Fatalf("push not stable: %+v != %+v", again, push)
		}
	})
}
