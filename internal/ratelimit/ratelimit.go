// Package ratelimit implements the admission-control token buckets the
// collection server sheds load with: a Bucket is one rate/burst tier, a
// Keyed lazily grows one bucket per key (federation edges). Denials come
// back with the wait until a token frees up, so HTTP handlers can answer
// 429 with an honest Retry-After instead of stalling the client.
//
// Buckets are mock-clock testable (NewWithClock) and safe for concurrent
// use; the fast path is one mutex and a handful of float operations —
// nanoseconds against the microseconds of the request it admits.
package ratelimit

import (
	"math"
	"sync"
	"time"
)

// Bucket is a token bucket refilling at Rate tokens per second up to Burst.
type Bucket struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// New builds a bucket born full. rate must be positive; burst below 1 is
// raised to 1 (a bucket that can never hold a whole token admits nothing).
func New(rate, burst float64) *Bucket {
	return NewWithClock(rate, burst, time.Now)
}

// NewWithClock is New under a caller-supplied clock (tests).
func NewWithClock(rate, burst float64, now func() time.Time) *Bucket {
	if rate <= 0 {
		panic("ratelimit: rate must be positive")
	}
	if burst < 1 {
		burst = 1
	}
	return &Bucket{rate: rate, burst: burst, now: now, tokens: burst, last: now()}
}

// Allow takes one token. Denials report how long until a token is
// available — the Retry-After an HTTP 429 should carry.
func (b *Bucket) Allow() (ok bool, retryAfter time.Duration) {
	return b.AllowN(1)
}

// AllowN takes n tokens atomically: all n or none.
func (b *Bucket) AllowN(n float64) (ok bool, retryAfter time.Duration) {
	if n <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = now
	if n > b.burst {
		// Can never succeed; report the time to a full bucket as the
		// honest "not soon" answer.
		return false, b.durationFor(b.burst - b.tokens)
	}
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	return false, b.durationFor(n - b.tokens)
}

// Tokens reports the tokens available right now (tests, introspection).
func (b *Bucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = now
	return b.tokens
}

// durationFor converts a token deficit into a wait, rounded up to a whole
// millisecond so a Retry-After of "0" can never mean "now but denied".
func (b *Bucket) durationFor(deficit float64) time.Duration {
	d := time.Duration(deficit / b.rate * float64(time.Second))
	if rem := d % time.Millisecond; rem != 0 || d == 0 {
		d += time.Millisecond - rem
	}
	return d
}

// Keyed is a family of buckets sharing one rate/burst configuration, one
// bucket per key — the per-edge federation tier. Unknown keys get a fresh
// full bucket on first use; keys never expire (the key space is operator
// -controlled edge identities, bounded by the fleet size).
type Keyed struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu sync.Mutex
	m  map[string]*Bucket
}

// NewKeyed builds an empty family.
func NewKeyed(rate, burst float64) *Keyed {
	return NewKeyedWithClock(rate, burst, time.Now)
}

// NewKeyedWithClock is NewKeyed under a caller-supplied clock (tests).
func NewKeyedWithClock(rate, burst float64, now func() time.Time) *Keyed {
	if rate <= 0 {
		panic("ratelimit: rate must be positive")
	}
	return &Keyed{rate: rate, burst: burst, now: now, m: make(map[string]*Bucket)}
}

// Allow takes one token from key's bucket.
func (k *Keyed) Allow(key string) (ok bool, retryAfter time.Duration) {
	k.mu.Lock()
	b := k.m[key]
	if b == nil {
		b = NewWithClock(k.rate, k.burst, k.now)
		k.m[key] = b
	}
	k.mu.Unlock()
	return b.Allow()
}

// Len reports how many keys have been seen.
func (k *Keyed) Len() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.m)
}
