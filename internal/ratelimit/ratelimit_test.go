package ratelimit

import (
	"sync"
	"testing"
	"time"
)

// mockClock is a manually-advanced clock.
type mockClock struct {
	mu sync.Mutex
	t  time.Time
}

func newMockClock() *mockClock {
	return &mockClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *mockClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *mockClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestBurstThenDeny(t *testing.T) {
	clk := newMockClock()
	b := NewWithClock(10, 5, clk.Now)
	for i := 0; i < 5; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := b.Allow()
	if ok {
		t.Fatal("6th request admitted from a burst-5 bucket")
	}
	// Deficit is 1 token at 10/s: 100ms.
	if retry != 100*time.Millisecond {
		t.Errorf("retry-after = %v, want 100ms", retry)
	}
}

func TestRefill(t *testing.T) {
	clk := newMockClock()
	b := NewWithClock(10, 5, clk.Now)
	for i := 0; i < 5; i++ {
		b.Allow()
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("empty bucket admitted")
	}
	clk.Advance(100 * time.Millisecond) // exactly one token
	if ok, _ := b.Allow(); !ok {
		t.Fatal("refilled token not admitted")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("second request admitted after a single-token refill")
	}
	// Refill caps at burst.
	clk.Advance(time.Hour)
	if got := b.Tokens(); got != 5 {
		t.Errorf("tokens after an hour = %v, want burst cap 5", got)
	}
}

func TestAllowNAtomicity(t *testing.T) {
	clk := newMockClock()
	b := NewWithClock(1, 4, clk.Now)
	if ok, _ := b.AllowN(3); !ok {
		t.Fatal("AllowN(3) denied on a full burst-4 bucket")
	}
	// 1 token left; a 2-token take must fail and take nothing.
	if ok, _ := b.AllowN(2); ok {
		t.Fatal("AllowN(2) admitted with 1 token")
	}
	if ok, _ := b.AllowN(1); !ok {
		t.Fatal("the single remaining token vanished on a failed AllowN")
	}
	// A take above burst can never succeed, even from full.
	clk.Advance(time.Hour)
	if ok, retry := b.AllowN(10); ok || retry <= 0 {
		t.Fatalf("AllowN(10) on burst 4 = %v %v", ok, retry)
	}
	if ok, _ := b.AllowN(0); !ok {
		t.Fatal("AllowN(0) denied")
	}
}

func TestRetryAfterNeverZeroOnDenial(t *testing.T) {
	clk := newMockClock()
	b := NewWithClock(1e9, 1, clk.Now) // refills almost instantly
	b.Allow()
	if ok, retry := b.Allow(); !ok && retry <= 0 {
		t.Errorf("denied with retry-after %v", retry)
	}
}

func TestKeyedIsolation(t *testing.T) {
	clk := newMockClock()
	k := NewKeyedWithClock(10, 2, clk.Now)
	// Edge A burns its burst.
	for i := 0; i < 2; i++ {
		if ok, _ := k.Allow("edge-a"); !ok {
			t.Fatalf("edge-a burst request %d denied", i)
		}
	}
	if ok, _ := k.Allow("edge-a"); ok {
		t.Fatal("edge-a over-burst admitted")
	}
	// Edge B is untouched by A's exhaustion.
	if ok, _ := k.Allow("edge-b"); !ok {
		t.Fatal("edge-b denied by edge-a's exhaustion")
	}
	if k.Len() != 2 {
		t.Errorf("keys = %d, want 2", k.Len())
	}
	// A's refill is A's alone.
	clk.Advance(100 * time.Millisecond)
	if ok, _ := k.Allow("edge-a"); !ok {
		t.Fatal("edge-a refill not admitted")
	}
}

func TestBurstBelowOneIsRaised(t *testing.T) {
	clk := newMockClock()
	b := NewWithClock(10, 0, clk.Now)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("burst-0 bucket admits nothing; want the documented raise to 1")
	}
}

func TestInvalidRatePanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1) },
		func() { NewKeyed(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestConcurrentExactAdmission(t *testing.T) {
	clk := newMockClock()
	b := NewWithClock(1, 100, clk.Now)
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if ok, _ := b.Allow(); ok {
					mu.Lock()
					admitted++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	// 400 requests against a frozen clock and a burst of 100: exactly 100
	// admitted, not one more.
	if admitted != 100 {
		t.Errorf("admitted %d, want exactly 100", admitted)
	}
}
