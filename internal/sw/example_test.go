package sw_test

import (
	"fmt"

	"repro/internal/randx"
	"repro/internal/sw"
)

// ExampleBOpt shows the closed-form bandwidth at the ε values of the
// paper's Figure 6 captions.
func ExampleBOpt() {
	for _, eps := range []float64{1, 2, 3, 4} {
		fmt.Printf("eps=%d: b=%.3f\n", int(eps), sw.BOpt(eps))
	}
	// Output:
	// eps=1: b=0.256
	// eps=2: b=0.129
	// eps=3: b=0.064
	// eps=4: b=0.030
}

// ExampleWave_Sample randomizes one private value with the Square Wave
// mechanism.
func ExampleWave_Sample() {
	w := sw.NewSquare(1.0)
	rng := randx.New(1)
	report := w.Sample(0.5, rng)
	fmt.Printf("report in [%.3f, %.3f]: %v\n", w.OutLo(), w.OutHi(),
		report >= w.OutLo() && report <= w.OutHi())
	// Output:
	// report in [-0.256, 1.256]: true
}

// ExampleDiscrete shows the bucketize-before-randomize variant on an
// already-discrete domain.
func ExampleDiscrete() {
	s := sw.NewDiscrete(100, 1.0) // e.g. ages 0..99
	rng := randx.New(2)
	out := s.Perturb(30, rng)
	fmt.Printf("output domain size %d, report valid: %v\n", s.Dt(), out >= 0 && out < s.Dt())
	// Output:
	// output domain size 150, report valid: true
}
