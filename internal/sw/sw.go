// Package sw implements the paper's primary reporting mechanism: the Square
// Wave (SW) mechanism of Section 5, together with the General Wave (GW)
// family it is the optimal member of (trapezoid and triangle shapes, used in
// the Section 6.4 ablation), the mutual-information-based choice of the
// bandwidth parameter b (Section 5.3), the discrete bucketize-before-
// randomize variant (Section 5.4) and the analytic construction of the
// transition matrix the EM/EMS reconstruction consumes (Section 5.5).
//
// A wave mechanism maps a private value v ∈ [0,1] to a report ṽ ∈ [−b, 1+b]
// drawn from a density that equals a high plateau near v and a low floor q
// elsewhere, with plateau/floor ratio e^ε so the report satisfies ε-LDP.
package sw

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/matrixx"
	"repro/internal/randx"
)

// BOpt returns the bandwidth b that maximizes the upper bound of the mutual
// information between input and output of the Square Wave mechanism
// (Section 5.3):
//
//	b = (ε·e^ε − e^ε + 1) / (2e^ε(e^ε − 1 − ε))
//
// BOpt is non-increasing in ε, tends to 1/2 as ε → 0 and to 0 as ε → ∞.
func BOpt(eps float64) float64 {
	if eps <= 0 || math.IsNaN(eps) {
		panic("sw: BOpt needs a positive epsilon")
	}
	if eps < 1e-4 {
		return 0.5 // analytic limit; the closed form is 0/0 here
	}
	ee := math.Exp(eps)
	return (eps*ee - ee + 1) / (2 * ee * (ee - 1 - eps))
}

// MutualInfoUpperBound returns the upper bound of the mutual information
// I(V, Ṽ) of the Square Wave mechanism with bandwidth b at budget eps
// (equation in Section 5.3); BOpt maximizes this quantity in b.
func MutualInfoUpperBound(b, eps float64) float64 {
	ee := math.Exp(eps)
	return math.Log((2*b+1)/(2*b*ee+1)) + 2*b*eps*ee/(2*b*ee+1)
}

// Wave is a General Wave reporting mechanism over input domain [0,1] and
// output domain [−b, 1+b]. The wave profile is a symmetric trapezoid of
// half-width b whose plateau half-width is ρ·b: ρ = 1 is the Square Wave,
// ρ = 0 the triangle wave, and intermediate values are the trapezoid shapes
// of the Section 6.4 ablation. The plateau height is e^ε·q (maximal, which
// Lemma 5.5 shows is required for optimality within a shape class) and q is
// pinned by total probability:
//
//	q = 1 / (1 + 2b + (e^ε − 1)·b·(1+ρ))
type Wave struct {
	eps float64
	b   float64
	rho float64
	p   float64 // plateau density = e^ε·q
	q   float64 // floor density
}

// NewSquare returns the Square Wave mechanism with the mutual-information
// optimal bandwidth BOpt(eps).
func NewSquare(eps float64) Wave { return NewSquareWithB(eps, BOpt(eps)) }

// NewSquareWithB returns the Square Wave mechanism with an explicit
// bandwidth (used by the Figure 6 sweep).
func NewSquareWithB(eps, b float64) Wave { return NewWave(eps, b, 1) }

// NewTriangle returns the triangle-shaped General Wave mechanism.
func NewTriangle(eps, b float64) Wave { return NewWave(eps, b, 0) }

// NewWave returns a General Wave mechanism with plateau ratio rho ∈ [0,1].
func NewWave(eps, b, rho float64) Wave {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		panic(fmt.Sprintf("sw: epsilon %v must be positive and finite", eps))
	}
	if b <= 0 || b > 2 {
		panic(fmt.Sprintf("sw: bandwidth %v out of range (0, 2]", b))
	}
	if rho < 0 || rho > 1 {
		panic(fmt.Sprintf("sw: plateau ratio %v out of [0,1]", rho))
	}
	ee := math.Exp(eps)
	q := 1 / (1 + 2*b + (ee-1)*b*(1+rho))
	return Wave{eps: eps, b: b, rho: rho, p: ee * q, q: q}
}

// Epsilon returns the privacy budget.
func (w Wave) Epsilon() float64 { return w.eps }

// B returns the wave half-width.
func (w Wave) B() float64 { return w.b }

// Rho returns the plateau ratio (1 for square, 0 for triangle).
func (w Wave) Rho() float64 { return w.rho }

// P returns the plateau density.
func (w Wave) P() float64 { return w.p }

// Q returns the floor density.
func (w Wave) Q() float64 { return w.q }

// OutLo and OutHi delimit the output domain D̃ = [−b, 1+b].
func (w Wave) OutLo() float64 { return -w.b }

// OutHi returns the upper end of the output domain.
func (w Wave) OutHi() float64 { return 1 + w.b }

// Density returns the output probability density M_v(ṽ) = W(ṽ − v) for a
// user with private value v. It is 0 outside [−b, 1+b], q for |ṽ−v| ≥ b,
// e^ε·q on the plateau |ṽ−v| ≤ ρb, and linear on the ramps between.
func (w Wave) Density(v, vt float64) float64 {
	if v < 0 || v > 1 {
		panic(fmt.Sprintf("sw: input %v outside [0,1]", v))
	}
	if vt < w.OutLo() || vt > w.OutHi() {
		return 0
	}
	z := math.Abs(vt - v)
	switch {
	case z >= w.b:
		return w.q
	case z <= w.rho*w.b:
		return w.p
	default:
		// Linear ramp from p at ρb down to q at b.
		return w.q + (w.p-w.q)*(w.b-z)/(w.b-w.rho*w.b)
	}
}

// bandCDF returns F(z) = ∫_{−b}^{z} W(t) dt for z ∈ [−b, b], the cumulative
// in-band mass of the wave profile. F(b) = 1 − q by the GW normalization.
func (w Wave) bandCDF(z float64) float64 {
	b, rb := w.b, w.rho*w.b
	z = mathx.Clamp(z, -b, b)
	if w.rho >= 1 {
		return w.p * (z + b)
	}
	c := (w.p - w.q) / (b - rb) // ramp slope
	switch {
	case z <= -rb:
		t := z + b
		return w.q*t + c*t*t/2
	case z <= rb:
		t := b - rb
		return w.q*t + c*t*t/2 + w.p*(z+rb)
	default:
		fAtRb := w.q*(b-rb) + c*(b-rb)*(b-rb)/2 + w.p*2*rb
		t := z - rb
		return fAtRb + w.q*t + c*(b*t-(z*z-rb*rb)/2)
	}
}

// BandMass returns ∫ over [lo,hi] ∩ [v−b, v+b] of the density M_v, the
// probability that the report lands in [lo, hi] through the in-band part of
// the wave.
func (w Wave) BandMass(v, lo, hi float64) float64 {
	z1 := mathx.Clamp(lo-v, -w.b, w.b)
	z2 := mathx.Clamp(hi-v, -w.b, w.b)
	if z2 <= z1 {
		return 0
	}
	return w.bandCDF(z2) - w.bandCDF(z1)
}

// CellMass returns the probability that a report from value v lands in the
// output interval [lo, hi] ⊆ [−b, 1+b]: the floor contribution q·|cell∖band|
// plus the in-band mass.
func (w Wave) CellMass(v, lo, hi float64) float64 {
	lo = math.Max(lo, w.OutLo())
	hi = math.Min(hi, w.OutHi())
	if hi <= lo {
		return 0
	}
	band := mathx.IntervalOverlap(lo, hi, v-w.b, v+w.b)
	return w.q*((hi-lo)-band) + w.BandMass(v, lo, hi)
}

// Sample draws one report ṽ ∈ [−b, 1+b] for the private value v ∈ [0,1].
func (w Wave) Sample(v float64, rng *randx.Rand) float64 {
	if v < 0 || v > 1 {
		panic(fmt.Sprintf("sw: input %v outside [0,1]", v))
	}
	// With probability q the report is uniform over the out-of-band region
	// [−b, v−b) ∪ (v+b, 1+b], which always has total length exactly 1.
	if rng.Bernoulli(w.q) {
		s := rng.Float64()
		if s < v {
			return -w.b + s
		}
		return v + w.b + (s - v)
	}
	// Otherwise sample z from the in-band profile, decomposed into a
	// uniform floor (mass 2b·q), a plateau bump (mass 2ρb·(p−q)) and two
	// linear ramps (mass (p−q)(b−ρb)/2 each).
	b, rb := w.b, w.rho*w.b
	floor := 2 * b * w.q
	plateau := 2 * rb * (w.p - w.q)
	ramp := (w.p - w.q) * (b - rb) / 2
	total := floor + plateau + 2*ramp // equals 1−q by construction
	r := rng.Float64() * total
	var z float64
	switch {
	case r < floor:
		z = rng.Uniform(-b, b)
	case r < floor+plateau:
		z = rng.Uniform(-rb, rb)
	default:
		// Ramp: density decreases linearly from the plateau edge to the
		// band edge, so |z| = rb + (b−rb)·(1−√u); mirror for the left.
		u := rng.Float64()
		z = rb + (b-rb)*(1-math.Sqrt(u))
		if rng.Bernoulli(0.5) {
			z = -z
		}
	}
	return mathx.Clamp(v+z, w.OutLo(), w.OutHi())
}

// TransitionMatrix returns the dt×d column-stochastic matrix M with
// M[j][i] = Pr[report ∈ output bucket j | value uniform in input bucket i].
// The input domain [0,1] is split into d equal buckets and the output domain
// [−b, 1+b] into dt equal buckets.
//
// For the Square Wave (ρ = 1) the average over the input bucket is computed
// in closed form via the band/rectangle overlap integral; other shapes use
// midpoint quadrature over the input bucket (the integrand is piecewise
// smooth, so 32 points give ~1e-6 accuracy). Columns are normalized to kill
// residual quadrature error.
func (w Wave) TransitionMatrix(d, dt int) *matrixx.Matrix {
	if d < 1 || dt < 1 {
		panic("sw: TransitionMatrix needs positive bucket counts")
	}
	m := matrixx.New(dt, d)
	outW := (1 + 2*w.b) / float64(dt)
	inW := 1 / float64(d)
	const quadPoints = 32
	for i := 0; i < d; i++ {
		vlo := float64(i) * inW
		vhi := vlo + inW
		for j := 0; j < dt; j++ {
			ulo := w.OutLo() + float64(j)*outW
			uhi := ulo + outW
			var mass float64
			if w.rho >= 1 {
				// Exact: q·|cell| + (p−q)·avg band overlap.
				overlap := mathx.BandRectOverlapIntegral(vlo, vhi, ulo, uhi, w.b) / inW
				mass = w.q*outW + (w.p-w.q)*overlap
			} else {
				for k := 0; k < quadPoints; k++ {
					v := vlo + (float64(k)+0.5)*inW/quadPoints
					mass += w.CellMass(v, ulo, uhi)
				}
				mass /= quadPoints
			}
			m.Set(j, i, mass)
		}
	}
	m.NormalizeCols()
	return m
}

// Collect runs a full collection round: every value in values (each in
// [0,1]) is perturbed and the reports are bucketized into dt output buckets,
// returning the report counts n_j that the EM reconstruction consumes.
func (w Wave) Collect(values []float64, dt int, rng *randx.Rand) []float64 {
	counts := make([]float64, dt)
	span := 1 + 2*w.b
	for _, v := range values {
		vt := w.Sample(mathx.Clamp(v, 0, 1), rng)
		j := int((vt - w.OutLo()) / span * float64(dt))
		counts[mathx.ClampInt(j, 0, dt-1)]++
	}
	return counts
}

// ---------------------------------------------------------------------------
// Discrete (bucketize-before-randomize) Square Wave, Section 5.4
// ---------------------------------------------------------------------------

// Discrete is the Square Wave mechanism over an already-discrete input
// domain {0..d−1}, with integer half-width b buckets and output domain
// {0..d+2b−1} (input value v is centered at output index v+b):
//
//	Pr[out = j | v] = p  if |j − (v+b)| ≤ b,   q otherwise,
//	p = e^ε / ((2b+1)e^ε + d − 1),   q = 1 / ((2b+1)e^ε + d − 1).
type Discrete struct {
	d   int
	b   int
	eps float64
	p   float64
	q   float64
}

// NewDiscrete returns the discrete SW with b = ⌊BOpt(eps)·d⌋ (Section 5.4).
func NewDiscrete(d int, eps float64) Discrete {
	return NewDiscreteWithB(d, eps, int(math.Floor(BOpt(eps)*float64(d))))
}

// NewDiscreteWithB returns the discrete SW with an explicit integer
// half-width b ≥ 0.
func NewDiscreteWithB(d int, eps float64, b int) Discrete {
	if d < 2 {
		panic("sw: discrete domain must have at least 2 values")
	}
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		panic("sw: epsilon must be positive and finite")
	}
	if b < 0 {
		panic("sw: negative bandwidth")
	}
	ee := math.Exp(eps)
	width := float64(2*b + 1)
	q := 1 / (width*ee + float64(d) - 1)
	return Discrete{d: d, b: b, eps: eps, p: ee * q, q: q}
}

// D returns the input domain size.
func (s Discrete) D() int { return s.d }

// B returns the integer half-width.
func (s Discrete) B() int { return s.b }

// Dt returns the output domain size d + 2b.
func (s Discrete) Dt() int { return s.d + 2*s.b }

// Epsilon returns the privacy budget.
func (s Discrete) Epsilon() float64 { return s.eps }

// P returns the near-set probability.
func (s Discrete) P() float64 { return s.p }

// Q returns the far-set probability.
func (s Discrete) Q() float64 { return s.q }

// Perturb randomizes one discrete value v ∈ [0, d) into an output index in
// [0, d+2b).
func (s Discrete) Perturb(v int, rng *randx.Rand) int {
	if v < 0 || v >= s.d {
		panic(fmt.Sprintf("sw: discrete value %d outside domain [0,%d)", v, s.d))
	}
	near := 2*s.b + 1
	center := v + s.b
	pNear := float64(near) * s.p
	if rng.Bernoulli(pNear) {
		return center - s.b + rng.IntN(near)
	}
	// Uniform over the d−1 far outputs.
	far := rng.IntN(s.Dt() - near)
	if far >= center-s.b {
		far += near
	}
	return far
}

// TransitionMatrix returns the (d+2b)×d column-stochastic matrix of the
// discrete mechanism.
func (s Discrete) TransitionMatrix() *matrixx.Matrix {
	m := matrixx.New(s.Dt(), s.d)
	for i := 0; i < s.d; i++ {
		center := i + s.b
		for j := 0; j < s.Dt(); j++ {
			if abs(j-center) <= s.b {
				m.Set(j, i, s.p)
			} else {
				m.Set(j, i, s.q)
			}
		}
	}
	return m
}

// Collect perturbs every discrete value and returns output counts of length
// d+2b for the EM reconstruction.
func (s Discrete) Collect(values []int, rng *randx.Rand) []float64 {
	counts := make([]float64, s.Dt())
	for _, v := range values {
		counts[s.Perturb(v, rng)]++
	}
	return counts
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
