package sw

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/matrixx"
	"repro/internal/randx"
)

// Profile is an arbitrary wave profile for the General Wave mechanism: a
// shape function φ : [−1, 1] → [0, 1] (evaluated at z/b) that scales the
// density between the floor q (φ = 0) and the ceiling e^ε·q (φ = 1).
// Definition 5.1 requires only that the density stays within [q, e^ε·q] on
// the band, so any φ into [0,1] yields a valid ε-LDP mechanism; the floor q
// is pinned by total probability:
//
//	q = 1 / (1 + 2b + (e^ε−1)·b·I(φ)),  I(φ) = ∫_{−1}^{1} φ(u) du.
//
// ProfileWave generalizes Wave (whose trapezoid family corresponds to
// piecewise-linear φ) so researchers can evaluate novel shapes against the
// square wave; Theorem 5.3 predicts none can beat it, and the shape
// benchmarks agree.
type Profile func(u float64) float64

// ProfileWave is a General Wave mechanism with an arbitrary profile.
// Construct with NewProfileWave.
type ProfileWave struct {
	eps     float64
	b       float64
	profile Profile
	q       float64
	ceil    float64 // e^ε·q
	// cdf tabulates the in-band cumulative mass for sampling and the
	// transition matrix (4096-point grid; the profile is user code, so no
	// closed form exists).
	cdf []float64
}

// profileGrid is the tabulation resolution of the in-band CDF.
const profileGrid = 4096

// NewProfileWave builds the mechanism, validating that the profile maps
// into [0,1] on a dense grid.
func NewProfileWave(eps, b float64, profile Profile) *ProfileWave {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		panic(fmt.Sprintf("sw: epsilon %v must be positive and finite", eps))
	}
	if b <= 0 || b > 2 {
		panic(fmt.Sprintf("sw: bandwidth %v out of range (0, 2]", b))
	}
	if profile == nil {
		panic("sw: nil profile")
	}
	// Validate and integrate the profile.
	var integral float64
	h := 2.0 / profileGrid
	for i := 0; i < profileGrid; i++ {
		u := -1 + (float64(i)+0.5)*h
		v := profile(u)
		if v < -1e-12 || v > 1+1e-12 || math.IsNaN(v) {
			panic(fmt.Sprintf("sw: profile(%v) = %v outside [0,1]", u, v))
		}
		integral += mathx.Clamp(v, 0, 1) * h
	}
	ee := math.Exp(eps)
	q := 1 / (1 + 2*b + (ee-1)*b*integral)
	w := &ProfileWave{eps: eps, b: b, profile: profile, q: q, ceil: ee * q}

	// Tabulate F(z) = ∫_{−b}^{z} W, W(z) = q + (ceil−q)·φ(z/b).
	w.cdf = make([]float64, profileGrid+1)
	hz := 2 * b / profileGrid
	var acc float64
	for i := 0; i < profileGrid; i++ {
		z := -b + (float64(i)+0.5)*hz
		acc += (q + (w.ceil-q)*mathx.Clamp(profile(z/b), 0, 1)) * hz
		w.cdf[i+1] = acc
	}
	return w
}

// Epsilon returns the privacy budget.
func (w *ProfileWave) Epsilon() float64 { return w.eps }

// B returns the band half-width.
func (w *ProfileWave) B() float64 { return w.b }

// Q returns the floor density.
func (w *ProfileWave) Q() float64 { return w.q }

// OutLo and OutHi delimit the output domain [−b, 1+b].
func (w *ProfileWave) OutLo() float64 { return -w.b }

// OutHi returns the top of the output domain.
func (w *ProfileWave) OutHi() float64 { return 1 + w.b }

// Density returns M_v(ṽ).
func (w *ProfileWave) Density(v, vt float64) float64 {
	if vt < w.OutLo() || vt > w.OutHi() {
		return 0
	}
	z := vt - v
	if z < -w.b || z > w.b {
		return w.q
	}
	return w.q + (w.ceil-w.q)*mathx.Clamp(w.profile(z/w.b), 0, 1)
}

// bandMass returns ∫ over [z1, z2] ⊆ [−b, b] of W via the tabulated CDF.
func (w *ProfileWave) bandMass(z1, z2 float64) float64 {
	at := func(z float64) float64 {
		pos := (z + w.b) / (2 * w.b) * profileGrid
		i := mathx.ClampInt(int(pos), 0, profileGrid)
		return w.cdf[i]
	}
	return at(mathx.Clamp(z2, -w.b, w.b)) - at(mathx.Clamp(z1, -w.b, w.b))
}

// inBandMass is the total band mass 1 − q.
func (w *ProfileWave) inBandMass() float64 { return w.cdf[profileGrid] }

// Sample draws one report for v ∈ [0,1] by inverse-CDF over the tabulated
// band plus the uniform out-of-band region.
func (w *ProfileWave) Sample(v float64, rng *randx.Rand) float64 {
	if v < 0 || v > 1 {
		panic(fmt.Sprintf("sw: input %v outside [0,1]", v))
	}
	band := w.inBandMass()
	if rng.Float64() >= band {
		// Out of band: uniform over [−b, v−b) ∪ (v+b, 1+b], length 1.
		s := rng.Float64()
		if s < v {
			return -w.b + s
		}
		return v + w.b + (s - v)
	}
	// In band: inverse CDF by binary search over the table.
	target := rng.Float64() * band
	lo, hi := 0, profileGrid
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cdf[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	z := -w.b + float64(lo)/profileGrid*2*w.b
	return mathx.Clamp(v+z, w.OutLo(), w.OutHi())
}

// TransitionMatrix builds the dt×d column-stochastic channel by midpoint
// quadrature over the input bucket (as the trapezoid path of Wave does).
func (w *ProfileWave) TransitionMatrix(d, dt int) *matrixx.Matrix {
	if d < 1 || dt < 1 {
		panic("sw: TransitionMatrix needs positive bucket counts")
	}
	m := matrixx.New(dt, d)
	outW := (1 + 2*w.b) / float64(dt)
	inW := 1 / float64(d)
	const quadPoints = 16
	for i := 0; i < d; i++ {
		vlo := float64(i) * inW
		for j := 0; j < dt; j++ {
			ulo := w.OutLo() + float64(j)*outW
			uhi := ulo + outW
			var mass float64
			for k := 0; k < quadPoints; k++ {
				v := vlo + (float64(k)+0.5)*inW/quadPoints
				overlap := mathx.IntervalOverlap(ulo, uhi, v-w.b, v+w.b)
				mass += w.q*((uhi-ulo)-overlap) + w.bandMass(ulo-v, uhi-v)
			}
			m.Set(j, i, mass/quadPoints)
		}
	}
	m.NormalizeCols()
	return m
}

// Cosine is a smooth raised-cosine profile, a natural "gentler than square"
// candidate shape.
func Cosine(u float64) float64 { return (1 + math.Cos(math.Pi*u)) / 2 }

// Parabolic is the Epanechnikov-style profile 1 − u².
func Parabolic(u float64) float64 { return 1 - u*u }
