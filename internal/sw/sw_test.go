package sw

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/randx"
)

func TestBOptKnownValues(t *testing.T) {
	// Figure 6 of the paper annotates the used values of b_SW.
	tests := []struct {
		eps, want float64
	}{
		{1.0, 0.256},
		{2.0, 0.129},
		{3.0, 0.064},
		{4.0, 0.030},
	}
	for _, tc := range tests {
		if got := BOpt(tc.eps); math.Abs(got-tc.want) > 0.002 {
			t.Errorf("BOpt(%v) = %v, want ~%v", tc.eps, got, tc.want)
		}
	}
}

func TestBOptLimits(t *testing.T) {
	if got := BOpt(1e-6); math.Abs(got-0.5) > 1e-3 {
		t.Errorf("BOpt(ε→0) = %v, want 0.5", got)
	}
	if got := BOpt(20); got > 1e-6 {
		t.Errorf("BOpt(ε→∞) = %v, want ~0", got)
	}
	// Non-increasing in ε.
	prev := math.Inf(1)
	for eps := 0.1; eps <= 6; eps += 0.1 {
		b := BOpt(eps)
		if b > prev+1e-12 {
			t.Fatalf("BOpt increased at eps=%v", eps)
		}
		prev = b
	}
}

func TestBOptMaximizesMutualInfo(t *testing.T) {
	// BOpt should attain (numerically) the maximum of the mutual
	// information upper bound over a fine grid of b.
	for _, eps := range []float64{0.5, 1, 2, 3, 4} {
		bStar := BOpt(eps)
		best := MutualInfoUpperBound(bStar, eps)
		for b := 0.005; b <= 0.6; b += 0.005 {
			if MutualInfoUpperBound(b, eps) > best+1e-9 {
				t.Errorf("eps=%v: b=%v beats BOpt=%v", eps, b, bStar)
				break
			}
		}
	}
}

func TestWaveParameters(t *testing.T) {
	w := NewSquareWithB(1, 0.25)
	// q = 1/(2b e^ε + 1), p = e^ε q for the square wave.
	ee := math.E
	wantQ := 1 / (2*0.25*ee + 1)
	if !mathx.AlmostEqual(w.Q(), wantQ, 1e-12) {
		t.Errorf("q = %v, want %v", w.Q(), wantQ)
	}
	if !mathx.AlmostEqual(w.P(), ee*wantQ, 1e-12) {
		t.Errorf("p = %v, want %v", w.P(), ee*wantQ)
	}
	if w.OutLo() != -0.25 || w.OutHi() != 1.25 {
		t.Errorf("output domain [%v, %v]", w.OutLo(), w.OutHi())
	}
}

func TestWaveConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewWave(0, 0.2, 1) },
		func() { NewWave(1, 0, 1) },
		func() { NewWave(1, 3, 1) },
		func() { NewWave(1, 0.2, -0.1) },
		func() { NewWave(1, 0.2, 1.1) },
		func() { BOpt(-1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestDensityIntegratesToOne(t *testing.T) {
	// For every shape and several inputs, the density must integrate to 1
	// over the output domain.
	for _, rho := range []float64{0, 0.2, 0.5, 0.8, 1} {
		w := NewWave(1.5, 0.3, rho)
		for _, v := range []float64{0, 0.1, 0.5, 0.93, 1} {
			const steps = 200000
			span := w.OutHi() - w.OutLo()
			h := span / steps
			var acc float64
			for i := 0; i < steps; i++ {
				vt := w.OutLo() + (float64(i)+0.5)*h
				acc += w.Density(v, vt) * h
			}
			if math.Abs(acc-1) > 1e-4 {
				t.Errorf("rho=%v v=%v: density integrates to %v", rho, v, acc)
			}
		}
	}
}

func TestDensitySatisfiesLDP(t *testing.T) {
	// max over outputs of densities from any two inputs must be within
	// e^ε of each other — pointwise ratio bounded by p/q = e^ε.
	for _, rho := range []float64{0, 0.5, 1} {
		const eps = 1.2
		w := NewWave(eps, 0.25, rho)
		limit := math.Exp(eps) * (1 + 1e-9)
		for v1 := 0.0; v1 <= 1; v1 += 0.11 {
			for v2 := 0.0; v2 <= 1; v2 += 0.13 {
				for vt := w.OutLo(); vt <= w.OutHi(); vt += 0.017 {
					d1 := w.Density(v1, vt)
					d2 := w.Density(v2, vt)
					if d2 <= 0 {
						t.Fatalf("density must be positive inside the domain")
					}
					if d1/d2 > limit {
						t.Fatalf("LDP violated: rho=%v M_%v(%v)/M_%v(%v) = %v",
							rho, v1, vt, v2, vt, d1/d2)
					}
				}
			}
		}
	}
}

func TestBandCDFMatchesNumericIntegral(t *testing.T) {
	for _, rho := range []float64{0, 0.3, 0.7, 1} {
		w := NewWave(2, 0.2, rho)
		for _, z := range []float64{-0.2, -0.15, -0.06, 0, 0.06, 0.15, 0.2} {
			const steps = 100000
			h := (z + w.b) / steps
			var acc float64
			if h > 0 {
				for i := 0; i < steps; i++ {
					zz := -w.b + (float64(i)+0.5)*h
					acc += w.Density(0.5, 0.5+zz) * h
				}
			}
			if got := w.bandCDF(z); math.Abs(got-acc) > 1e-5 {
				t.Errorf("rho=%v bandCDF(%v) = %v, numeric %v", rho, z, got, acc)
			}
		}
		// Normalization: F(b) = 1 − q.
		if got := w.bandCDF(w.b); !mathx.AlmostEqual(got, 1-w.q, 1e-12) {
			t.Errorf("rho=%v bandCDF(b) = %v, want 1−q = %v", rho, got, 1-w.q)
		}
	}
}

func TestCellMassPartitionsUnity(t *testing.T) {
	// Summing CellMass over a partition of the output domain gives 1.
	rng := randx.New(1)
	err := quick.Check(func(seed uint64) bool {
		r := rng.Split(seed)
		w := NewWave(0.5+2*r.Float64(), 0.05+0.4*r.Float64(), r.Float64())
		v := r.Float64()
		const cells = 37
		span := w.OutHi() - w.OutLo()
		var acc float64
		for j := 0; j < cells; j++ {
			lo := w.OutLo() + float64(j)*span/cells
			hi := lo + span/cells
			acc += w.CellMass(v, lo, hi)
		}
		return mathx.AlmostEqual(acc, 1, 1e-9)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestSampleMatchesDensity(t *testing.T) {
	// Empirical histogram of samples must match the analytic cell masses.
	for _, rho := range []float64{0, 0.5, 1} {
		w := NewWave(1, 0.3, rho)
		rng := randx.New(42)
		const n = 300000
		const cells = 20
		span := w.OutHi() - w.OutLo()
		counts := make([]float64, cells)
		v := 0.35
		for i := 0; i < n; i++ {
			vt := w.Sample(v, rng)
			if vt < w.OutLo() || vt > w.OutHi() {
				t.Fatalf("sample %v outside output domain", vt)
			}
			j := int((vt - w.OutLo()) / span * cells)
			counts[mathx.ClampInt(j, 0, cells-1)]++
		}
		for j := 0; j < cells; j++ {
			lo := w.OutLo() + float64(j)*span/cells
			hi := lo + span/cells
			want := w.CellMass(v, lo, hi)
			got := counts[j] / n
			if math.Abs(got-want) > 0.004 {
				t.Errorf("rho=%v cell %d: empirical %v, analytic %v", rho, j, got, want)
			}
		}
	}
}

func TestSampleEdgeInputs(t *testing.T) {
	w := NewSquare(1)
	rng := randx.New(7)
	for _, v := range []float64{0, 1} {
		for i := 0; i < 10000; i++ {
			vt := w.Sample(v, rng)
			if vt < w.OutLo() || vt > w.OutHi() {
				t.Fatalf("Sample(%v) = %v outside domain", v, vt)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Sample outside [0,1] should panic")
		}
	}()
	w.Sample(1.5, rng)
}

func TestTransitionMatrixColumnStochastic(t *testing.T) {
	for _, rho := range []float64{0, 0.4, 1} {
		w := NewWave(1, 0.25, rho)
		m := w.TransitionMatrix(32, 32)
		if m.Rows() != 32 || m.Cols() != 32 {
			t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
		}
		if !m.IsColumnStochastic(1e-9) {
			t.Errorf("rho=%v: transition matrix not column stochastic", rho)
		}
	}
}

func TestTransitionMatrixMatchesSampling(t *testing.T) {
	// Column i of M must match the empirical output histogram of inputs
	// drawn uniformly from bucket i.
	w := NewSquare(1)
	const d, dt = 16, 16
	m := w.TransitionMatrix(d, dt)
	rng := randx.New(9)
	const n = 200000
	i := 5 // input bucket under test
	counts := make([]float64, dt)
	span := w.OutHi() - w.OutLo()
	for k := 0; k < n; k++ {
		v := (float64(i) + rng.Float64()) / d
		vt := w.Sample(v, rng)
		j := int((vt - w.OutLo()) / span * dt)
		counts[mathx.ClampInt(j, 0, dt-1)]++
	}
	for j := 0; j < dt; j++ {
		got := counts[j] / n
		want := m.At(j, i)
		if math.Abs(got-want) > 0.005 {
			t.Errorf("M[%d][%d] = %v, empirical %v", j, i, want, got)
		}
	}
}

func TestTransitionMatrixSquareVsQuadrature(t *testing.T) {
	// The exact square-wave construction must agree with the generic
	// quadrature path (exercised via rho slightly below 1).
	exact := NewSquareWithB(1.5, 0.2).TransitionMatrix(24, 24)
	quad := NewWave(1.5, 0.2, 1-1e-12).TransitionMatrix(24, 24)
	if diff := exact.MaxAbsDiff(quad); diff > 1e-4 {
		t.Errorf("exact vs quadrature transition matrices differ by %v", diff)
	}
}

func TestCollectProducesCounts(t *testing.T) {
	w := NewSquare(1)
	rng := randx.New(10)
	values := make([]float64, 5000)
	for i := range values {
		values[i] = rng.Float64()
	}
	counts := w.Collect(values, 64, rng)
	if len(counts) != 64 {
		t.Fatalf("len(counts) = %d", len(counts))
	}
	if got := mathx.Sum(counts); got != 5000 {
		t.Errorf("counts sum to %v, want 5000", got)
	}
}

func TestDiscreteParameters(t *testing.T) {
	s := NewDiscreteWithB(100, 1, 10)
	// p = e^ε/((2b+1)e^ε + d − 1), q = p/e^ε.
	ee := math.E
	wantQ := 1 / (21*ee + 99)
	if !mathx.AlmostEqual(s.Q(), wantQ, 1e-12) {
		t.Errorf("q = %v, want %v", s.Q(), wantQ)
	}
	if !mathx.AlmostEqual(s.P(), ee*wantQ, 1e-12) {
		t.Errorf("p = %v, want %v", s.P(), ee*wantQ)
	}
	if s.Dt() != 120 {
		t.Errorf("Dt = %d, want 120", s.Dt())
	}
	// Default b uses the continuous optimum scaled by d.
	auto := NewDiscrete(100, 1)
	if auto.B() != int(math.Floor(BOpt(1)*100)) {
		t.Errorf("default b = %d", auto.B())
	}
}

func TestDiscreteTotalProbability(t *testing.T) {
	s := NewDiscreteWithB(50, 1.5, 7)
	// (2b+1)p + (d−1)q = 1.
	total := float64(2*7+1)*s.P() + float64(50-1)*s.Q()
	if !mathx.AlmostEqual(total, 1, 1e-12) {
		t.Errorf("discrete total probability = %v", total)
	}
}

func TestDiscretePerturbDistribution(t *testing.T) {
	s := NewDiscreteWithB(20, 1, 3)
	rng := randx.New(11)
	const n = 500000
	v := 8
	counts := make([]float64, s.Dt())
	for i := 0; i < n; i++ {
		counts[s.Perturb(v, rng)]++
	}
	center := v + s.B()
	for j := 0; j < s.Dt(); j++ {
		want := s.Q()
		if j >= center-s.B() && j <= center+s.B() {
			want = s.P()
		}
		got := counts[j] / n
		if math.Abs(got-want) > 0.002 {
			t.Errorf("Pr[out=%d] = %v, want %v", j, got, want)
		}
	}
}

func TestDiscretePerturbEdges(t *testing.T) {
	s := NewDiscreteWithB(10, 1, 2)
	rng := randx.New(12)
	for _, v := range []int{0, 9} {
		for i := 0; i < 20000; i++ {
			j := s.Perturb(v, rng)
			if j < 0 || j >= s.Dt() {
				t.Fatalf("Perturb(%d) = %d outside output domain", v, j)
			}
		}
	}
}

func TestDiscreteTransitionMatrix(t *testing.T) {
	s := NewDiscreteWithB(10, 1, 2)
	m := s.TransitionMatrix()
	if m.Rows() != s.Dt() || m.Cols() != 10 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if !m.IsColumnStochastic(1e-9) {
		t.Error("discrete transition matrix not column stochastic")
	}
	// Spot-check the plateau placement for v=0: rows 0..4 get p.
	for j := 0; j < m.Rows(); j++ {
		want := s.Q()
		if j <= 4 {
			want = s.P()
		}
		if !mathx.AlmostEqual(m.At(j, 0), want, 1e-12) {
			t.Errorf("M[%d][0] = %v, want %v", j, m.At(j, 0), want)
		}
	}
}

func TestDiscreteCollect(t *testing.T) {
	s := NewDiscrete(64, 1)
	rng := randx.New(13)
	values := make([]int, 10000)
	for i := range values {
		values[i] = rng.IntN(64)
	}
	counts := s.Collect(values, rng)
	if len(counts) != s.Dt() {
		t.Fatalf("len(counts) = %d, want %d", len(counts), s.Dt())
	}
	if got := mathx.Sum(counts); got != 10000 {
		t.Errorf("counts sum = %v", got)
	}
}

func TestDiscreteZeroBandwidthIsGRRLike(t *testing.T) {
	// With b = 0 the discrete SW degenerates to GRR (same p and q).
	s := NewDiscreteWithB(16, 1, 0)
	ee := math.E
	if !mathx.AlmostEqual(s.P(), ee/(ee+15), 1e-12) {
		t.Errorf("b=0 p = %v, want GRR p", s.P())
	}
	if s.Dt() != 16 {
		t.Errorf("b=0 Dt = %d, want 16", s.Dt())
	}
}

func BenchmarkSampleSquare(b *testing.B) {
	w := NewSquare(1)
	rng := randx.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Sample(0.5, rng)
	}
}

func BenchmarkTransitionMatrix256(b *testing.B) {
	w := NewSquare(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.TransitionMatrix(256, 256)
	}
}
