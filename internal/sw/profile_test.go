package sw

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/randx"
)

func TestProfileWaveDensityIntegratesToOne(t *testing.T) {
	for _, p := range []struct {
		name string
		fn   Profile
	}{
		{"cosine", Cosine},
		{"parabolic", Parabolic},
		{"square", func(u float64) float64 { return 1 }},
	} {
		w := NewProfileWave(1.5, 0.3, p.fn)
		for _, v := range []float64{0, 0.37, 1} {
			const steps = 100000
			span := w.OutHi() - w.OutLo()
			h := span / steps
			var acc float64
			for i := 0; i < steps; i++ {
				acc += w.Density(v, w.OutLo()+(float64(i)+0.5)*h) * h
			}
			if math.Abs(acc-1) > 1e-3 {
				t.Errorf("%s v=%v: density integrates to %v", p.name, v, acc)
			}
		}
	}
}

func TestProfileWaveSquareMatchesWave(t *testing.T) {
	// A constant-1 profile is the square wave: q must match the closed
	// form and the transition matrices must agree.
	const eps, b = 1.0, 0.25
	pw := NewProfileWave(eps, b, func(u float64) float64 { return 1 })
	sq := NewSquareWithB(eps, b)
	if !mathx.AlmostEqual(pw.Q(), sq.Q(), 1e-9) {
		t.Errorf("q = %v, want %v", pw.Q(), sq.Q())
	}
	mp := pw.TransitionMatrix(24, 24)
	ms := sq.TransitionMatrix(24, 24)
	if diff := mp.MaxAbsDiff(ms); diff > 1e-3 {
		t.Errorf("transition matrices differ by %v", diff)
	}
}

func TestProfileWaveLDP(t *testing.T) {
	// Density ratio bounded by e^ε for smooth profiles.
	const eps = 1.2
	for _, fn := range []Profile{Cosine, Parabolic} {
		w := NewProfileWave(eps, 0.25, fn)
		limit := math.Exp(eps) * (1 + 1e-9)
		for v1 := 0.0; v1 <= 1; v1 += 0.2 {
			for v2 := 0.0; v2 <= 1; v2 += 0.2 {
				for vt := w.OutLo(); vt <= w.OutHi(); vt += 0.03 {
					d1, d2 := w.Density(v1, vt), w.Density(v2, vt)
					if d2 <= 0 {
						t.Fatal("zero density inside the output domain")
					}
					if d1/d2 > limit {
						t.Fatalf("LDP violated at (%v,%v,%v): ratio %v", v1, v2, vt, d1/d2)
					}
				}
			}
		}
	}
}

func TestProfileWaveSampleMatchesDensity(t *testing.T) {
	w := NewProfileWave(1, 0.3, Cosine)
	rng := randx.New(5)
	const n = 300000
	const cells = 20
	span := w.OutHi() - w.OutLo()
	counts := make([]float64, cells)
	v := 0.4
	for i := 0; i < n; i++ {
		vt := w.Sample(v, rng)
		if vt < w.OutLo() || vt > w.OutHi() {
			t.Fatalf("sample %v out of domain", vt)
		}
		j := int((vt - w.OutLo()) / span * cells)
		counts[mathx.ClampInt(j, 0, cells-1)]++
	}
	for j := 0; j < cells; j++ {
		lo := w.OutLo() + float64(j)*span/cells
		hi := lo + span/cells
		// Analytic cell mass via floor + tabulated band.
		overlap := mathx.IntervalOverlap(lo, hi, v-w.B(), v+w.B())
		want := w.Q()*((hi-lo)-overlap) + w.bandMass(lo-v, hi-v)
		got := counts[j] / n
		if math.Abs(got-want) > 0.005 {
			t.Errorf("cell %d: empirical %v, analytic %v", j, got, want)
		}
	}
}

func TestProfileWaveTransitionMatrixStochastic(t *testing.T) {
	w := NewProfileWave(2, 0.15, Parabolic)
	m := w.TransitionMatrix(32, 32)
	if !m.IsColumnStochastic(1e-9) {
		t.Error("profile wave transition matrix not column stochastic")
	}
}

func TestProfileWavePanics(t *testing.T) {
	cases := []func(){
		func() { NewProfileWave(0, 0.2, Cosine) },
		func() { NewProfileWave(1, 0, Cosine) },
		func() { NewProfileWave(1, 0.2, nil) },
		func() { NewProfileWave(1, 0.2, func(u float64) float64 { return 2 }) },
		func() { NewProfileWave(1, 0.2, func(u float64) float64 { return math.NaN() }) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}
