// Package wire is the compact binary codec of the collector's hot ingest
// path: a length-prefixed, CRC32-trailed framing for batches of perturbed
// reports, negotiated over HTTP as Content-Type application/x-ldp-binary
// with JSON as the compatibility fallback. A perturbed report is one or a
// few float64s that are almost always small non-negative integers (bucket
// indexes, hash seeds, bit values), so components use a varint fast path —
// value v>0 encodes float64(v-1) — and fall back to raw IEEE-754 bits only
// for negatives, fractions, and values ≥ 2^52. The same Reader primitives
// back package federate's binary push codec.
//
// Frame layout:
//
//	"LDPR" | version(1) | uvarint count | count × report | crc32(LE, 4)
//	report  = uvarint arity | arity × component
//	component = uvarint v      (v > 0: the value is float64(v-1))
//	          | 0x00 + 8 bytes (raw little-endian IEEE-754 bits)
//
// The CRC covers every byte before the trailer. Decoding never panics on
// hostile input: every length is bounded by the bytes that remain, and a
// frame must be consumed exactly.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// ContentType is the media type both binary codecs negotiate under.
const ContentType = "application/x-ldp-binary"

const (
	reportsMagic   = "LDPR"
	reportsVersion = 1
)

// maxArity bounds a single report's component count; fan-out reports carry
// one component per output bucket, far below this.
const maxArity = 1 << 20

// IsReports reports whether data starts with the binary report magic —
// used to sniff a frame without decoding it.
func IsReports(data []byte) bool {
	return len(data) >= len(reportsMagic) && string(data[:len(reportsMagic)]) == reportsMagic
}

// AppendReports appends the binary frame for a batch of reports to dst and
// returns the extended slice.
func AppendReports(dst []byte, reports [][]float64) []byte {
	start := len(dst)
	dst = append(dst, reportsMagic...)
	dst = append(dst, reportsVersion)
	dst = binary.AppendUvarint(dst, uint64(len(reports)))
	for _, rep := range reports {
		dst = binary.AppendUvarint(dst, uint64(len(rep)))
		for _, f := range rep {
			dst = appendComponent(dst, f)
		}
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// EncodeReports is AppendReports into a fresh slice.
func EncodeReports(reports [][]float64) []byte {
	return AppendReports(nil, reports)
}

// appendComponent writes one float64: varint fast path for small
// non-negative integers, raw bits otherwise. Signbit excludes -0.0 from the
// fast path so decoding reproduces the exact bits.
func appendComponent(dst []byte, f float64) []byte {
	if f == math.Trunc(f) && f >= 0 && f < 1<<52 && !math.Signbit(f) {
		return binary.AppendUvarint(dst, uint64(f)+1)
	}
	dst = append(dst, 0)
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// DecodeReports parses and verifies a binary report frame. Arbitrary bytes
// never panic: a bad magic, version, CRC, truncation, or trailing garbage
// is an error.
func DecodeReports(data []byte) ([][]float64, error) {
	const overhead = len(reportsMagic) + 1 + 4
	if len(data) < overhead+1 {
		return nil, fmt.Errorf("wire: report frame truncated (%d bytes)", len(data))
	}
	if !IsReports(data) {
		return nil, fmt.Errorf("wire: not a binary report frame (bad magic)")
	}
	if v := data[len(reportsMagic)]; v != reportsVersion {
		return nil, fmt.Errorf("wire: report frame version %d not supported (this build speaks %d)", v, reportsVersion)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("wire: report frame checksum mismatch (corrupt in flight?)")
	}
	r := NewReader(body[len(reportsMagic)+1:])
	count := r.Uvarint()
	if count > uint64(r.Remaining()) {
		return nil, fmt.Errorf("wire: report frame claims %d reports in %d bytes", count, r.Remaining())
	}
	// All components land in one grown-once backing array — one allocation
	// for the whole batch instead of one per report. Headers are carved out
	// only after the parse loop: an append that grows the backing mid-loop
	// would strand earlier subslices on the old array.
	arities := make([]int, 0, count)
	components := make([]float64, 0, count) // ≥ 1 byte per component on the wire
	for i := uint64(0); i < count && r.Err() == nil; i++ {
		arity := r.Uvarint()
		if arity > maxArity || arity > uint64(r.Remaining()) {
			return nil, fmt.Errorf("wire: report %d claims arity %d in %d bytes", i, arity, r.Remaining())
		}
		for j := uint64(0); j < arity; j++ {
			components = append(components, r.Float64Component())
		}
		arities = append(arities, int(arity))
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wire: decode reports: %w", err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after report frame", r.Remaining())
	}
	reports := make([][]float64, len(arities))
	off := 0
	for i, arity := range arities {
		reports[i] = components[off : off+arity : off+arity]
		off += arity
	}
	return reports, nil
}

// Reader is a bounds-checked cursor over a binary frame. All reads after
// the first failure return zero values; Err reports the first failure. The
// zero-allocation primitive layer under both binary codecs.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader returns a Reader over data (the caller keeps ownership; Bytes
// aliases it).
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining is how many bytes are left to read.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// Uvarint reads one unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("truncated or overlong varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Varint reads one signed (zigzag) varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("truncated or overlong varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Bytes reads exactly n bytes, aliasing the underlying frame.
func (r *Reader) Bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.Remaining() {
		r.fail("truncated frame: want %d bytes at offset %d, have %d", n, r.off, r.Remaining())
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// Float64 reads 8 raw little-endian IEEE-754 bytes.
func (r *Reader) Float64() float64 {
	b := r.Bytes(8)
	if r.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// Float64Component reads one report component: varint fast path, 0x00
// escape for raw bits.
func (r *Reader) Float64Component() float64 {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if v == 0 {
		return r.Float64()
	}
	return float64(v - 1)
}
