package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"
)

// roundTrip encodes and decodes one report set, failing on any error.
func roundTrip(t *testing.T, reports [][]float64) [][]float64 {
	t.Helper()
	frame := EncodeReports(reports)
	if !IsReports(frame) {
		t.Fatalf("IsReports = false on an encoded frame")
	}
	got, err := DecodeReports(frame)
	if err != nil {
		t.Fatalf("DecodeReports: %v", err)
	}
	return got
}

// sameBits compares float slices bit-for-bit, so NaN payloads and the sign
// of zero count.
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestReportsRoundTrip(t *testing.T) {
	cases := [][][]float64{
		{},
		{{}},
		{{0}},
		{{1}},
		{{0.5}},
		{{-0.25}},
		{{math.Copysign(0, -1)}}, // -0.0 must keep its sign
		{{math.NaN()}},           // NaN payload preserved bitwise
		{{math.Inf(1)}, {math.Inf(-1)}},
		{{1<<52 - 1}, {1 << 52}, {float64(1 << 53)}}, // integer fast-path boundary
		{{3, 0, 1, 0, 7, 0}},                         // fan-out (oue-style) report
		{{0.1, 0.2, 0.3}, {4}, {}, {5, 6}},           // ragged arities
		{{math.SmallestNonzeroFloat64}, {math.MaxFloat64}},
	}
	for _, reports := range cases {
		got := roundTrip(t, reports)
		if len(got) != len(reports) {
			t.Fatalf("round-trip count %d, want %d", len(got), len(reports))
		}
		for i := range reports {
			if !sameBits(got[i], reports[i]) {
				t.Fatalf("report %d: got %v, want %v (bitwise)", i, got[i], reports[i])
			}
		}
	}
}

func TestReportsIntegerCompression(t *testing.T) {
	// The whole point of the codec: small non-negative integers (discrete
	// mechanism reports) cost one or two bytes, not eight.
	reports := make([][]float64, 100)
	for i := range reports {
		reports[i] = []float64{float64(i % 16)}
	}
	frame := EncodeReports(reports)
	// 4 magic + 1 version + 1 count + 100×(1 arity + 1 value) + 4 CRC.
	if len(frame) > 4+1+1+200+4 {
		t.Fatalf("integer frame is %d bytes, want ≤ %d", len(frame), 210)
	}
}

func TestReportsRejectsCorruption(t *testing.T) {
	frame := EncodeReports([][]float64{{0.5}, {1, 2, 3}})
	// Flip every single byte in turn: decoding must error (the CRC covers
	// everything before the trailer, and the trailer is the CRC itself) and
	// never panic.
	for i := range frame {
		corrupt := append([]byte(nil), frame...)
		corrupt[i] ^= 0x01
		if _, err := DecodeReports(corrupt); err == nil {
			t.Fatalf("flipping byte %d decoded cleanly", i)
		}
	}
	// Truncations of every length must error cleanly too.
	for n := 0; n < len(frame); n++ {
		if _, err := DecodeReports(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
	}
	// Trailing garbage after a valid frame is an error, not ignored.
	if _, err := DecodeReports(append(append([]byte(nil), frame...), 0x00)); err == nil {
		t.Fatal("frame with trailing garbage decoded cleanly")
	}
}

func TestReportsRejectsOversizedClaims(t *testing.T) {
	// A tiny frame claiming a huge report count (or arity) must fail on the
	// bounds check, not attempt a giant allocation. Build the inner payload
	// by hand with a valid CRC so only the bounds check can reject it.
	seal := func(payload []byte) []byte {
		return binary.LittleEndian.AppendUint32(payload, crc32.ChecksumIEEE(payload))
	}
	var payload []byte
	payload = append(payload, reportsMagic...)
	payload = append(payload, reportsVersion)
	payload = binary.AppendUvarint(payload, 1<<40) // claimed count ≫ remaining bytes
	if _, err := DecodeReports(seal(payload)); err == nil {
		t.Fatal("absurd count claim decoded cleanly")
	}

	payload = payload[:0]
	payload = append(payload, reportsMagic...)
	payload = append(payload, reportsVersion)
	payload = binary.AppendUvarint(payload, 1)          // one report
	payload = binary.AppendUvarint(payload, maxArity+1) // arity over the cap
	if _, err := DecodeReports(seal(payload)); err == nil {
		t.Fatal("over-cap arity decoded cleanly")
	}
}

func TestIsReports(t *testing.T) {
	if IsReports(nil) || IsReports([]byte("LDP")) || IsReports([]byte(`{"reports":[]}`)) {
		t.Fatal("IsReports accepted a non-frame")
	}
	if !IsReports([]byte("LDPRxxxx")) {
		t.Fatal("IsReports rejected a magic-prefixed buffer")
	}
}

func TestReaderPrimitives(t *testing.T) {
	var buf []byte
	buf = binary.AppendUvarint(buf, 300)
	buf = binary.AppendVarint(buf, -7)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(2.5))
	buf = append(buf, []byte("ab")...)
	r := NewReader(buf)
	if v := r.Uvarint(); v != 300 {
		t.Fatalf("Uvarint = %d", v)
	}
	if v := r.Varint(); v != -7 {
		t.Fatalf("Varint = %d", v)
	}
	if v := r.Float64(); v != 2.5 {
		t.Fatalf("Float64 = %v", v)
	}
	if b := r.Bytes(2); !bytes.Equal(b, []byte("ab")) {
		t.Fatalf("Bytes = %q", b)
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
	// Reading past the end fails sticky, never panics.
	r.Bytes(1)
	if r.Err() == nil {
		t.Fatal("read past end did not error")
	}
	r.Uvarint()
	if r.Err() == nil {
		t.Fatal("error state not sticky")
	}
}

// FuzzBinaryReports is the codec's native fuzz target: any byte string
// either decodes to reports that re-encode-decode to the same bits, or
// fails cleanly — never panics, never over-reads.
func FuzzBinaryReports(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("LDPR"))
	f.Add(EncodeReports(nil))
	f.Add(EncodeReports([][]float64{{0.5}}))
	f.Add(EncodeReports([][]float64{{math.NaN(), -0.0, 1 << 52}, {}, {3}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		reports, err := DecodeReports(data)
		if err != nil {
			return
		}
		again, err := DecodeReports(EncodeReports(reports))
		if err != nil {
			t.Fatalf("re-encode of a decoded frame failed: %v", err)
		}
		if len(again) != len(reports) {
			t.Fatalf("re-encode changed count: %d != %d", len(again), len(reports))
		}
		for i := range reports {
			if !sameBits(again[i], reports[i]) {
				t.Fatalf("report %d not bit-stable: %v != %v", i, again[i], reports[i])
			}
		}
	})
}
