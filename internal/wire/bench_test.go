package wire

// Report-frame codec benchmarks at the client batch sizes the Batcher
// ships: scalar (sw-family) and fan-out (oue-style, 24 components) reports.
// bytes/op is the frame size. Results recorded in BENCH_wire.json.

import (
	"encoding/json"
	"fmt"
	"testing"
)

func benchReports(n, arity int) [][]float64 {
	reports := make([][]float64, n)
	for i := range reports {
		rep := make([]float64, arity)
		if arity == 1 {
			// sw-discrete style: small bucket indexes.
			rep[0] = float64(i % 48)
		} else {
			// oue style: mostly-zero bit vector.
			rep[i%arity] = 1
			rep[(i*7)%arity] = 1
		}
		reports[i] = rep
	}
	return reports
}

func BenchmarkReportsEncode(b *testing.B) {
	for _, shape := range []struct {
		name  string
		arity int
	}{{"scalar", 1}, {"fanout24", 24}} {
		for _, n := range []int{1, 128, 1024} {
			b.Run(fmt.Sprintf("%s/n=%d", shape.name, n), func(b *testing.B) {
				reports := benchReports(n, shape.arity)
				buf := EncodeReports(reports)
				b.SetBytes(int64(len(buf)))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					buf = AppendReports(buf[:0], reports)
				}
			})
		}
	}
}

func BenchmarkReportsDecode(b *testing.B) {
	for _, shape := range []struct {
		name  string
		arity int
	}{{"scalar", 1}, {"fanout24", 24}} {
		for _, n := range []int{1, 128, 1024} {
			b.Run(fmt.Sprintf("%s/n=%d", shape.name, n), func(b *testing.B) {
				frame := EncodeReports(benchReports(n, shape.arity))
				b.SetBytes(int64(len(frame)))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := DecodeReports(frame); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkReportsJSONBaseline is the JSON equivalent of the binary encode,
// so the two codecs compare within one bench run.
func BenchmarkReportsJSONBaseline(b *testing.B) {
	for _, n := range []int{128, 1024} {
		b.Run(fmt.Sprintf("scalar/n=%d", n), func(b *testing.B) {
			reports := benchReports(n, 1)
			blob, err := json.Marshal(map[string]any{"reports": reports})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(blob)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := json.Marshal(map[string]any{"reports": reports}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
