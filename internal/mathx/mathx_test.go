package mathx

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSum(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3.5}, 3.5},
		{"mixed", []float64{1, -1, 2, -2, 5}, 5},
		{"small terms", []float64{1e16, 1, -1e16}, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Sum(tc.in); got != tc.want {
				t.Errorf("Sum(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestSumCompensated(t *testing.T) {
	// One million copies of 0.1 should sum to exactly 100000 with Kahan
	// compensation (naive summation drifts by ~1e-8).
	xs := make([]float64, 1_000_000)
	for i := range xs {
		xs[i] = 0.1
	}
	if got := Sum(xs); math.Abs(got-100000) > 1e-9 {
		t.Errorf("compensated Sum drifted: got %v", got)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v, want 0", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(-1, 0, 1); got != 0 {
		t.Errorf("Clamp(-1,0,1) = %v", got)
	}
	if got := Clamp(2, 0, 1); got != 1 {
		t.Errorf("Clamp(2,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Clamp(0, 1, 0) should panic")
		}
	}()
	Clamp(0, 1, 0)
}

func TestClampInt(t *testing.T) {
	if got := ClampInt(5, 0, 3); got != 3 {
		t.Errorf("ClampInt(5,0,3) = %v", got)
	}
	if got := ClampInt(-2, 0, 3); got != 0 {
		t.Errorf("ClampInt(-2,0,3) = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	Normalize(xs)
	if !AlmostEqual(Sum(xs), 1, 1e-12) {
		t.Errorf("normalized sum = %v", Sum(xs))
	}
	if !AlmostEqual(xs[3], 0.4, 1e-12) {
		t.Errorf("xs[3] = %v, want 0.4", xs[3])
	}

	zero := []float64{0, 0, 0}
	Normalize(zero)
	for i, v := range zero {
		if !AlmostEqual(v, 1.0/3, 1e-12) {
			t.Errorf("zero normalize [%d] = %v, want uniform", i, v)
		}
	}

	bad := []float64{math.NaN(), 1}
	Normalize(bad)
	if !AlmostEqual(bad[0], 0.5, 1e-12) {
		t.Errorf("NaN input should normalize to uniform, got %v", bad)
	}
}

func TestIsDistribution(t *testing.T) {
	if !IsDistribution([]float64{0.25, 0.25, 0.5}, 1e-9) {
		t.Error("valid distribution rejected")
	}
	if IsDistribution([]float64{0.5, 0.6}, 1e-9) {
		t.Error("non-normalized accepted")
	}
	if IsDistribution([]float64{-0.1, 1.1}, 1e-9) {
		t.Error("negative entry accepted")
	}
	if IsDistribution(nil, 1e-9) {
		t.Error("empty accepted")
	}
}

func TestDistances(t *testing.T) {
	a := []float64{0, 3}
	b := []float64{4, 0}
	if got := L1(a, b); got != 7 {
		t.Errorf("L1 = %v, want 7", got)
	}
	if got := L2(a, b); got != 5 {
		t.Errorf("L2 = %v, want 5", got)
	}
	if got := Dot(a, b); got != 0 {
		t.Errorf("Dot = %v, want 0", got)
	}
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs([]float64{1, -5, 3}); got != 5 {
		t.Errorf("MaxAbs = %v, want 5", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Errorf("MaxAbs(nil) = %v", got)
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !AlmostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Linspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got[len(got)-1] != 1 {
		t.Error("Linspace endpoint not exact")
	}
}

func TestCumSumAndSearchCDF(t *testing.T) {
	cdf := CumSum([]float64{0.1, 0.2, 0.3, 0.4})
	want := []float64{0.1, 0.3, 0.6, 1.0}
	for i := range want {
		if !AlmostEqual(cdf[i], want[i], 1e-12) {
			t.Errorf("CumSum[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	tests := []struct {
		p    float64
		want int
	}{
		{0, 0}, {0.1, 0}, {0.11, 1}, {0.3, 1}, {0.9, 3}, {1, 3}, {2, 3},
	}
	for _, tc := range tests {
		if got := SearchCDF(cdf, tc.p); got != tc.want {
			t.Errorf("SearchCDF(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
	if got := SearchCDF(nil, 0.5); got != -1 {
		t.Errorf("SearchCDF(nil) = %d, want -1", got)
	}
}

func TestIntervalOverlap(t *testing.T) {
	tests := []struct {
		a0, a1, b0, b1, want float64
	}{
		{0, 1, 0.5, 2, 0.5},
		{0, 1, 2, 3, 0},
		{0, 1, -1, 2, 1},
		{0, 1, 1, 2, 0},
		{1, 0, 0, 1, 0}, // degenerate
	}
	for _, tc := range tests {
		if got := IntervalOverlap(tc.a0, tc.a1, tc.b0, tc.b1); got != tc.want {
			t.Errorf("IntervalOverlap(%v,%v,%v,%v) = %v, want %v",
				tc.a0, tc.a1, tc.b0, tc.b1, got, tc.want)
		}
	}
}

// numericBandOverlap is a brute-force Riemann sum reference for
// BandRectOverlapIntegral.
func numericBandOverlap(vlo, vhi, ulo, uhi, b float64, steps int) float64 {
	h := (vhi - vlo) / float64(steps)
	var acc float64
	for i := 0; i < steps; i++ {
		v := vlo + (float64(i)+0.5)*h
		acc += IntervalOverlap(v-b, v+b, ulo, uhi) * h
	}
	return acc
}

func TestBandRectOverlapIntegralAgainstNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		vlo := rng.Float64()
		vhi := vlo + rng.Float64()
		ulo := rng.Float64()*2 - 0.5
		uhi := ulo + rng.Float64()
		b := rng.Float64() * 0.6
		got := BandRectOverlapIntegral(vlo, vhi, ulo, uhi, b)
		want := numericBandOverlap(vlo, vhi, ulo, uhi, b, 20000)
		if math.Abs(got-want) > 1e-4 {
			t.Fatalf("trial %d: BandRectOverlapIntegral(%v,%v,%v,%v,%v) = %v, numeric %v",
				trial, vlo, vhi, ulo, uhi, b, got, want)
		}
	}
}

func TestBandRectOverlapIntegralEdgeCases(t *testing.T) {
	if got := BandRectOverlapIntegral(0, 1, 0, 1, 0); got != 0 {
		t.Errorf("zero bandwidth should integrate to 0, got %v", got)
	}
	if got := BandRectOverlapIntegral(1, 0, 0, 1, 0.1); got != 0 {
		t.Errorf("degenerate v-interval should be 0, got %v", got)
	}
	// Band fully covering the rectangle: integral = |V| * |U|.
	got := BandRectOverlapIntegral(0, 1, 0.4, 0.6, 10)
	if !AlmostEqual(got, 0.2, 1e-12) {
		t.Errorf("full cover integral = %v, want 0.2", got)
	}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(nil) = %v, want -Inf", got)
	}
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if !AlmostEqual(got, math.Log(6), 1e-12) {
		t.Errorf("LogSumExp = %v, want log 6", got)
	}
	// Stability: huge values must not overflow.
	got = LogSumExp([]float64{1000, 1000})
	if !AlmostEqual(got, 1000+math.Log(2), 1e-9) {
		t.Errorf("LogSumExp(1000,1000) = %v", got)
	}
}

func TestBinomialKernel(t *testing.T) {
	k := BinomialKernel(3)
	want := []float64{0.25, 0.5, 0.25}
	for i := range want {
		if !AlmostEqual(k[i], want[i], 1e-12) {
			t.Errorf("kernel[%d] = %v, want %v", i, k[i], want[i])
		}
	}
	k5 := BinomialKernel(5)
	want5 := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for i := range want5 {
		if !AlmostEqual(k5[i], want5[i], 1e-12) {
			t.Errorf("kernel5[%d] = %v, want %v", i, k5[i], want5[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("even kernel width should panic")
		}
	}()
	BinomialKernel(4)
}

func TestSmoothBinomialPreservesSimplex(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = math.Abs(math.Mod(v, 100))
		}
		Normalize(xs)
		dst := make([]float64, len(xs))
		SmoothBinomial(dst, xs)
		return IsDistribution(dst, 1e-9)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestSmoothBinomialValues(t *testing.T) {
	xs := []float64{1, 0, 0, 0}
	dst := make([]float64, 4)
	SmoothBinomial(dst, xs)
	want := []float64{0.75, 0.25, 0, 0}
	for i := range want {
		if !AlmostEqual(dst[i], want[i], 1e-12) {
			t.Errorf("smooth[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	// Short vectors pass through.
	one := []float64{1}
	dstOne := []float64{0}
	SmoothBinomial(dstOne, one)
	if dstOne[0] != 1 {
		t.Errorf("length-1 smooth changed value: %v", dstOne[0])
	}
}

func TestSmoothBinomialFixedPointUniform(t *testing.T) {
	// The interior of a uniform distribution is a fixed point; boundary
	// renormalization keeps it exactly uniform.
	d := 64
	xs := make([]float64, d)
	for i := range xs {
		xs[i] = 1 / float64(d)
	}
	dst := make([]float64, d)
	SmoothBinomial(dst, xs)
	for i := range dst {
		if !AlmostEqual(dst[i], 1/float64(d), 1e-12) {
			t.Fatalf("uniform not fixed point at %d: %v", i, dst[i])
		}
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, tc := range tests {
		if got := Quantile(xs, tc.p); !AlmostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-element quantile = %v", got)
	}
}

func TestQuantileMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	sort.Float64s(xs)
	// With 1001 points the p-quantile lands exactly on an order statistic
	// for p in multiples of 1/1000.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		want := xs[int(p*1000)]
		if got := Quantile(xs, p); !AlmostEqual(got, want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1+1e-12, 1e-9) {
		t.Error("close values not equal")
	}
	if AlmostEqual(1, 2, 1e-9) {
		t.Error("distant values equal")
	}
	if AlmostEqual(math.NaN(), math.NaN(), 1) {
		t.Error("NaN should never be equal")
	}
}

func BenchmarkSum(b *testing.B) {
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = float64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum(xs)
	}
}

func BenchmarkSmoothBinomial(b *testing.B) {
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = 1.0 / 1024
	}
	dst := make([]float64, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SmoothBinomial(dst, xs)
	}
}

func TestSmoothBinomialKMatchesWidth3(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	xs := make([]float64, 32)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	Normalize(xs)
	a := make([]float64, 32)
	b := make([]float64, 32)
	SmoothBinomial(a, xs)
	SmoothBinomialK(b, xs, 3)
	if L1(a, b) > 1e-12 {
		t.Errorf("SmoothBinomialK(3) differs from SmoothBinomial by %v", L1(a, b))
	}
}

func TestSmoothBinomialKPreservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, w := range []int{1, 3, 5, 7, 9} {
		xs := make([]float64, 16)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		Normalize(xs)
		dst := make([]float64, 16)
		SmoothBinomialK(dst, xs, w)
		if !IsDistribution(dst, 1e-9) {
			t.Errorf("width %d broke the simplex", w)
		}
	}
}

func TestSmoothBinomialKWiderIsSmoother(t *testing.T) {
	xs := make([]float64, 64)
	xs[32] = 1 // point mass
	tv := func(v []float64) float64 {
		var acc float64
		for i := 1; i < len(v); i++ {
			acc += math.Abs(v[i] - v[i-1])
		}
		return acc
	}
	d3 := make([]float64, 64)
	d5 := make([]float64, 64)
	SmoothBinomialK(d3, xs, 3)
	SmoothBinomialK(d5, xs, 5)
	if tv(d5) >= tv(d3) {
		t.Errorf("width 5 TV %v should be below width 3 TV %v", tv(d5), tv(d3))
	}
}

func TestSmoothBinomialKWidth1IsIdentity(t *testing.T) {
	xs := []float64{0.2, 0.3, 0.5}
	dst := make([]float64, 3)
	SmoothBinomialK(dst, xs, 1)
	if L1(dst, xs) != 0 {
		t.Error("width 1 should be the identity")
	}
}
