// Package mathx provides small numeric helpers shared across the library:
// numerically stable summation, clamping, simplex utilities, piecewise-linear
// integration and the binomial smoothing kernel used by EMS.
//
// Everything in this package is deterministic and allocation-conscious; the
// hot paths (EM iterations, transition-matrix construction) call into these
// helpers millions of times per experiment.
package mathx

import (
	"errors"
	"math"
)

// ErrEmpty is returned by reductions over empty slices.
var ErrEmpty = errors.New("mathx: empty input")

// Sum returns the Neumaier (compensated) sum of xs. For the vector sizes used
// in this library (up to a few thousand) plain summation is usually fine, but
// EM repeatedly normalizes near-simplex vectors where compensation keeps the
// invariant Σx = 1 tight across thousands of iterations.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, not n-1),
// computed with a two-pass algorithm for stability. Returns 0 for fewer than
// one element.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	mu := Mean(xs)
	var acc float64
	for _, x := range xs {
		d := x - mu
		acc += d * d
	}
	return acc / float64(n)
}

// Clamp limits x to the closed interval [lo, hi]. It panics if lo > hi.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		panic("mathx: Clamp with lo > hi")
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampInt limits x to the closed interval [lo, hi]. It panics if lo > hi.
func ClampInt(x, lo, hi int) int {
	if lo > hi {
		panic("mathx: ClampInt with lo > hi")
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Normalize scales xs in place so it sums to 1 and returns the original sum.
// If the sum is zero or non-finite the slice is set to uniform.
func Normalize(xs []float64) float64 {
	s := Sum(xs)
	if len(xs) == 0 {
		return s
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		u := 1 / float64(len(xs))
		for i := range xs {
			xs[i] = u
		}
		return s
	}
	inv := 1 / s
	for i := range xs {
		xs[i] *= inv
	}
	return s
}

// IsDistribution reports whether xs is entry-wise non-negative and sums to 1
// within tol.
func IsDistribution(xs []float64, tol float64) bool {
	if len(xs) == 0 {
		return false
	}
	for _, x := range xs {
		if x < -tol || math.IsNaN(x) {
			return false
		}
	}
	return math.Abs(Sum(xs)-1) <= tol
}

// L1 returns the L1 distance between a and b. It panics on length mismatch.
func L1(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: L1 length mismatch")
	}
	var acc float64
	for i := range a {
		acc += math.Abs(a[i] - b[i])
	}
	return acc
}

// L2 returns the Euclidean distance between a and b. It panics on length
// mismatch.
func L2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: L2 length mismatch")
	}
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return math.Sqrt(acc)
}

// Dot returns the inner product of a and b. It panics on length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	var acc float64
	for i := range a {
		acc += a[i] * b[i]
	}
	return acc
}

// MaxAbs returns the largest absolute entry of xs, or 0 for an empty slice.
func MaxAbs(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Linspace returns n points evenly spaced over [lo, hi] inclusive.
// n must be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("mathx: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// CumSum returns the running sums of xs: out[i] = xs[0]+...+xs[i].
func CumSum(xs []float64) []float64 {
	out := make([]float64, len(xs))
	var acc float64
	for i, x := range xs {
		acc += x
		out[i] = acc
	}
	return out
}

// SearchCDF returns the smallest index i such that cdf[i] >= p, or len(cdf)-1
// if no such index exists. cdf must be non-decreasing.
func SearchCDF(cdf []float64, p float64) int {
	lo, hi := 0, len(cdf)-1
	if hi < 0 {
		return -1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// IntervalOverlap returns the length of the intersection of the intervals
// [a0, a1] and [b0, b1]. Degenerate (reversed) intervals contribute 0.
func IntervalOverlap(a0, a1, b0, b1 float64) float64 {
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// BandRectOverlapIntegral computes
//
//	∫_{v=vlo}^{vhi} len([v-b, v+b] ∩ [ulo, uhi]) dv
//
// i.e. the area of the intersection of the diagonal band {|u-v| <= b} with
// the axis-aligned rectangle [vlo,vhi] × [ulo,uhi]. The integrand is
// piecewise linear in v with breakpoints where v±b crosses ulo or uhi, so the
// integral is computed exactly by the trapezoid rule between breakpoints.
//
// This is the core quantity for the Square Wave transition matrix: the
// probability mass the mechanism sends from an input bucket to an output
// bucket has a (p−q) term proportional to exactly this area.
func BandRectOverlapIntegral(vlo, vhi, ulo, uhi, b float64) float64 {
	if vhi <= vlo || uhi <= ulo || b <= 0 {
		return 0
	}
	// Candidate breakpoints: where the moving window edges v−b, v+b cross
	// the rectangle edges ulo, uhi.
	pts := []float64{vlo, vhi, ulo - b, ulo + b, uhi - b, uhi + b}
	// Sort the small fixed-size slice (insertion sort keeps this
	// allocation-free and branch-predictable).
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j] < pts[j-1]; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	f := func(v float64) float64 {
		return IntervalOverlap(v-b, v+b, ulo, uhi)
	}
	var area float64
	for i := 0; i+1 < len(pts); i++ {
		a0 := math.Max(pts[i], vlo)
		a1 := math.Min(pts[i+1], vhi)
		if a1 <= a0 {
			continue
		}
		// f is linear on [a0, a1]; the trapezoid rule is exact.
		area += (f(a0) + f(a1)) / 2 * (a1 - a0)
	}
	return area
}

// LogSumExp returns log(Σ exp(x_i)) computed stably. Returns -Inf for an
// empty slice.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var acc float64
	for _, x := range xs {
		acc += math.Exp(x - m)
	}
	return m + math.Log(acc)
}

// BinomialKernel returns the width-w binomial smoothing kernel, i.e. row w-1
// of Pascal's triangle normalized to sum to 1. For w = 3 this is the
// (1/4, 1/2, 1/4) kernel the EMS smoothing step uses. w must be odd and >= 1.
func BinomialKernel(w int) []float64 {
	if w < 1 || w%2 == 0 {
		panic("mathx: BinomialKernel width must be odd and >= 1")
	}
	k := make([]float64, w)
	k[0] = 1
	for row := 1; row < w; row++ {
		for i := row; i > 0; i-- {
			k[i] += k[i-1]
		}
	}
	Normalize(k)
	return k
}

// SmoothBinomial applies the (1,2,1)/4 binomial smoothing of the EMS S-step
// to xs, writing the result into dst. At the boundaries the kernel mass that
// would fall off the edge is reflected back onto the edge bin, so the
// operation preserves total mass exactly and maps the probability simplex
// into itself:
//
//	dst[0]   = (3·xs[0] + xs[1]) / 4
//	dst[i]   = (xs[i-1] + 2·xs[i] + xs[i+1]) / 4
//	dst[d-1] = (xs[d-2] + 3·xs[d-1]) / 4
//
// Vectors of length < 2 are copied unchanged.
func SmoothBinomial(dst, xs []float64) {
	d := len(xs)
	if len(dst) != d {
		panic("mathx: SmoothBinomial length mismatch")
	}
	if d < 2 {
		copy(dst, xs)
		return
	}
	first := (3*xs[0] + xs[1]) / 4
	last := (xs[d-2] + 3*xs[d-1]) / 4
	prev := xs[0]
	for i := 1; i < d-1; i++ {
		cur := xs[i]
		dst[i] = (prev + 2*cur + xs[i+1]) / 4
		prev = cur
	}
	dst[0] = first
	dst[d-1] = last
}

// SmoothBinomialK generalizes SmoothBinomial to any odd kernel width: each
// bin's mass is spread by the binomial kernel and mass that would land
// outside the domain is reflected back (destination −1 maps to 0, −2 to 1,
// and symmetrically at the top), so total mass is preserved exactly for any
// width. Width 3 reproduces SmoothBinomial.
func SmoothBinomialK(dst, xs []float64, width int) {
	d := len(xs)
	if len(dst) != d {
		panic("mathx: SmoothBinomialK length mismatch")
	}
	if d < 2 || width == 1 {
		copy(dst, xs)
		return
	}
	kernel := BinomialKernel(width)
	half := width / 2
	for i := range dst {
		dst[i] = 0
	}
	for i, x := range xs {
		if x == 0 {
			continue
		}
		for t, k := range kernel {
			j := i + t - half
			// Reflect out-of-domain destinations back inside.
			for j < 0 || j >= d {
				if j < 0 {
					j = -j - 1
				} else {
					j = 2*d - 1 - j
				}
			}
			dst[j] += k * x
		}
	}
}

// Quantile returns the p-quantile (0 <= p <= 1) of sorted xs using linear
// interpolation between order statistics. It panics if xs is empty or p is
// outside [0,1]. xs must already be sorted ascending.
func Quantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("mathx: Quantile of empty slice")
	}
	if p < 0 || p > 1 {
		panic("mathx: Quantile p outside [0,1]")
	}
	if n == 1 {
		return sorted[0]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// AlmostEqual reports whether a and b differ by at most tol in absolute
// value, treating NaN as never equal.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}
