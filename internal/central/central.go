// Package central implements the centralized-DP histogram baselines the
// paper contrasts the local setting against (Section 4.2): a trusted curator
// holds the raw data and publishes a Laplace-noised histogram, optionally
// with a budget-divided hierarchy and Hay constrained inference (the regime
// where budget division — not population division — is optimal).
//
// The package exists to quantify the price of the local model: at equal ε
// the centralized estimate's error is orders of magnitude smaller, which the
// tests and the local-vs-central benchmark demonstrate.
package central

import (
	"fmt"

	"repro/internal/hierarchy"
	"repro/internal/postprocess"
	"repro/internal/randx"
)

// Histogram releases an ε-DP histogram of the discrete values over
// {0..d−1}: true counts plus Laplace(1/ε) noise per bin (a single user
// changes one bin by 1, so the L1 sensitivity of the histogram is... 1 for
// add/remove neighbors; we use the standard add/remove model), normalized
// and projected onto the simplex with Norm-Sub.
func Histogram(values []int, d int, eps float64, rng *randx.Rand) []float64 {
	if d < 1 {
		panic("central: need at least one bucket")
	}
	if eps <= 0 {
		panic("central: epsilon must be positive")
	}
	if len(values) == 0 {
		panic("central: no values")
	}
	counts := make([]float64, d)
	for _, v := range values {
		if v < 0 || v >= d {
			panic(fmt.Sprintf("central: value %d outside domain [0,%d)", v, d))
		}
		counts[v]++
	}
	n := float64(len(values))
	est := make([]float64, d)
	for i := range counts {
		est[i] = (counts[i] + rng.Laplace(1/eps)) / n
	}
	return postprocess.NormSub(est)
}

// HierarchicalHistogram releases an ε-DP hierarchy over a β-ary tree with
// the centralized accounting: the budget is divided among the h levels
// (each level's counts get Laplace(h/ε) noise) and Hay's constrained
// inference fuses them. In the centralized setting this beats the flat
// histogram on range queries for large domains.
func HierarchicalHistogram(values []int, d, beta int, eps float64, rng *randx.Rand) *hierarchy.Estimate {
	if eps <= 0 {
		panic("central: epsilon must be positive")
	}
	if len(values) == 0 {
		panic("central: no values")
	}
	t := hierarchy.NewTree(d, beta)
	h := t.Height()
	perLevel := eps / float64(h)
	n := float64(len(values))

	trueLeaves := make([]float64, d)
	for _, v := range values {
		if v < 0 || v >= d {
			panic(fmt.Sprintf("central: value %d outside domain [0,%d)", v, d))
		}
		trueLeaves[v]++
	}
	for i := range trueLeaves {
		trueLeaves[i] /= n
	}
	exact := t.TrueLevels(trueLeaves)

	noisy := t.NewLevels()
	noisy[0][0] = 1 // the total is public
	for l := 1; l <= h; l++ {
		for i := range exact[l] {
			noisy[l][i] = exact[l][i] + rng.Laplace(1/(perLevel*n))
		}
	}
	est := &hierarchy.Estimate{Tree: t, Levels: noisy}
	return est.ConstrainedInference()
}
