package central

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/randx"
)

func genValues(n, d int, rng *randx.Rand) ([]int, []float64, []float64) {
	weights := make([]float64, d)
	for i := range weights {
		x := float64(i)/float64(d) - 0.4
		weights[i] = math.Exp(-20 * x * x)
	}
	alias := randx.NewAlias(weights)
	values := make([]int, n)
	cont := make([]float64, n)
	truth := make([]float64, d)
	for i := range values {
		v := alias.Draw(rng)
		values[i] = v
		cont[i] = (float64(v) + 0.5) / float64(d)
		truth[v]++
	}
	mathx.Normalize(truth)
	return values, cont, truth
}

func TestHistogramAccuracy(t *testing.T) {
	rng := randx.New(1)
	values, _, truth := genValues(50000, 64, rng)
	est := Histogram(values, 64, 1, rng)
	if !mathx.IsDistribution(est, 1e-9) {
		t.Error("central histogram not a distribution")
	}
	// Laplace(1/ε)/n noise at n=50k is tiny: W1 well under 1e-3.
	if got := metrics.Wasserstein(truth, est); got > 1e-3 {
		t.Errorf("central W1 = %v, want < 1e-3", got)
	}
}

func TestCentralBeatsLocalAtEqualBudget(t *testing.T) {
	// The cost of the local model (Section 1: "significantly higher
	// noises"): at the same ε and n, the centralized histogram is at
	// least 10x better in W1 than SW+EMS.
	rng := randx.New(2)
	const n, d = 50000, 64
	values, cont, truth := genValues(n, d, rng)

	centralEst := Histogram(values, d, 1, rng)
	localEst := core.SWEMS().Estimate(cont, d, 1, rng)

	cw := metrics.Wasserstein(truth, centralEst)
	lw := metrics.Wasserstein(truth, localEst)
	if cw*10 > lw {
		t.Errorf("central W1 %v should be ≥10x better than local W1 %v", cw, lw)
	}
}

func TestHierarchicalHistogramConsistent(t *testing.T) {
	rng := randx.New(3)
	values, _, truth := genValues(50000, 64, rng)
	est := HierarchicalHistogram(values, 64, 4, 1, rng)
	if got := est.Tree.ConsistencyResidual(est.Levels); got > 1e-9 {
		t.Errorf("residual = %v", got)
	}
	// Range queries highly accurate in the central model.
	var worst float64
	cum := make([]float64, 65)
	for i, p := range truth {
		cum[i+1] = cum[i] + p
	}
	for lo := 0; lo < 64; lo += 7 {
		hi := lo + 6
		if hi > 64 {
			hi = 64
		}
		want := cum[hi] - cum[lo]
		if err := math.Abs(est.RangeCount(lo, hi) - want); err > worst {
			worst = err
		}
	}
	if worst > 0.005 {
		t.Errorf("worst central range error = %v", worst)
	}
}

func TestPanics(t *testing.T) {
	rng := randx.New(4)
	cases := []func(){
		func() { Histogram(nil, 4, 1, rng) },
		func() { Histogram([]int{0}, 0, 1, rng) },
		func() { Histogram([]int{0}, 4, 0, rng) },
		func() { Histogram([]int{4}, 4, 1, rng) },
		func() { HierarchicalHistogram(nil, 16, 4, 1, rng) },
		func() { HierarchicalHistogram([]int{0}, 16, 4, -1, rng) },
		func() { HierarchicalHistogram([]int{16}, 16, 4, 1, rng) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}
