package ldptest

// Serving-path acceptance checking: CheckServing drives a population of
// synthetic clients through a full HTTP collection round against a live
// collector — randomize on the client, POST /batch, poll GET /estimate —
// and verifies that the served reconstruction lands within paper-level
// Wasserstein/KS distance of the true distribution. It is the statistical
// complement of CheckDiscrete/CheckContinuous: those verify the privacy side
// of a mechanism, this verifies the utility side of a deployment, end to
// end through the transport, the striped accumulator, the background EMS
// engine and the response cache.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/histogram"
	"repro/internal/metrics"
	"repro/internal/randx"
)

// ServingOptions configures one serving-path check.
type ServingOptions struct {
	// Stream names the collector stream to drive ("" = the default
	// stream). The stream must start empty: the check asserts the estimate
	// covers exactly the reports it sent.
	Stream string
	// Epsilon, Buckets, Bandwidth are the mechanism parameters and must
	// match the stream's server-side configuration.
	Epsilon   float64
	Buckets   int
	Bandwidth float64
	// Mechanism selects the client-side reporting mechanism ("" = "sw").
	// It must match the stream's declaration. Scalar mechanisms ship their
	// reports as bare JSON numbers (the pre-mechanism wire format); the
	// rest ship vectors.
	Mechanism string
	// Clients is the synthetic population size. Defaults to 3000.
	Clients int
	// BatchSize chunks the reports into POST /batch requests. Defaults
	// to 500.
	BatchSize int
	// Seed makes the round deterministic. Defaults to 1.
	Seed uint64
	// MaxW1 and MaxKS bound the distance between the served estimate and
	// the true (bucketized) distribution. Zero disables that bound.
	MaxW1, MaxKS float64
	// Timeout bounds the wait for a fresh estimate. Defaults to 30s.
	Timeout time.Duration
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
}

func (o ServingOptions) filled() ServingOptions {
	if o.Clients <= 0 {
		o.Clients = 3000
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 500
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	return o
}

// ServingReport is the measured outcome of a serving-path check, returned
// even when a bound is violated so tests can log the distances.
type ServingReport struct {
	// N is the number of reports covered by the served estimate.
	N int
	// W1 and KS are the distances between Truth and Estimate.
	W1, KS float64
	// Truth is the bucketized true distribution of the sampled values at
	// the estimate's granularity; Estimate is the served reconstruction.
	Truth, Estimate []float64
}

// ServingViolation is returned when a served estimate misses a bound.
type ServingViolation struct {
	Metric string // "W1" or "KS"
	Got    float64
	Bound  float64
}

// Error formats the violation.
func (v ServingViolation) Error() string {
	return fmt.Sprintf("ldptest: served estimate %s = %.5f exceeds bound %.5f", v.Metric, v.Got, v.Bound)
}

// CheckServing samples Clients private values from sample, randomizes each
// with the configured mechanism's client (the Square Wave by default),
// ships them to the collector at baseURL over POST /batch, polls GET
// /estimate until the served reconstruction covers the whole population
// (tolerating 503 "first estimate pending" responses — the collector must
// never block the poll), and compares it against the bucketized truth. The
// returned report always carries the measured distances; the error is
// non-nil on transport failures or bound violations.
func CheckServing(baseURL string, sample func(*randx.Rand) float64, opts ServingOptions) (ServingReport, error) {
	opts = opts.filled()
	rng := randx.New(opts.Seed)
	client := core.NewClient(core.Config{
		Epsilon:   opts.Epsilon,
		Buckets:   opts.Buckets,
		Mechanism: opts.Mechanism,
		Bandwidth: opts.Bandwidth,
		Smoothing: true,
	})
	scalar := client.Mechanism().Scalar()

	values := make([]float64, opts.Clients)
	reports := make([]any, opts.Clients) // bare numbers or vectors, per mechanism
	for i := range values {
		values[i] = sample(rng)
		rep := client.Perturb(values[i], rng) // randomized on the "device"
		if scalar {
			reports[i] = rep[0] // the pre-mechanism scalar wire format
		} else {
			reports[i] = []float64(rep)
		}
	}

	for start := 0; start < len(reports); start += opts.BatchSize {
		end := start + opts.BatchSize
		if end > len(reports) {
			end = len(reports)
		}
		if err := postBatch(opts.HTTPClient, baseURL, opts.Stream, reports[start:end]); err != nil {
			return ServingReport{}, err
		}
	}

	est, err := pollEstimate(opts.HTTPClient, baseURL, opts.Stream, opts.Clients, opts.Timeout)
	if err != nil {
		return ServingReport{}, err
	}

	truth := histogram.FromSamples(values, len(est.Distribution)).Distribution()
	rep := ServingReport{
		N:        est.N,
		W1:       metrics.Wasserstein(truth, est.Distribution),
		KS:       metrics.KS(truth, est.Distribution),
		Truth:    truth,
		Estimate: est.Distribution,
	}
	if opts.MaxW1 > 0 && rep.W1 > opts.MaxW1 {
		return rep, ServingViolation{Metric: "W1", Got: rep.W1, Bound: opts.MaxW1}
	}
	if opts.MaxKS > 0 && rep.KS > opts.MaxKS {
		return rep, ServingViolation{Metric: "KS", Got: rep.KS, Bound: opts.MaxKS}
	}
	return rep, nil
}

func postBatch(hc *http.Client, baseURL, stream string, reports []any) error {
	blob, err := json.Marshal(map[string]any{"stream": stream, "reports": reports})
	if err != nil {
		return err
	}
	resp, err := hc.Post(baseURL+"/batch", "application/json", bytes.NewReader(blob))
	if err != nil {
		return fmt.Errorf("ldptest: POST /batch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("ldptest: POST /batch status %d: %s", resp.StatusCode, body)
	}
	return nil
}

// servedEstimate is the subset of the collector's estimate response the
// checker needs.
type servedEstimate struct {
	N            int       `json:"n"`
	Distribution []float64 `json:"distribution"`
}

func pollEstimate(hc *http.Client, baseURL, stream string, wantN int, timeout time.Duration) (servedEstimate, error) {
	url := baseURL + "/estimate"
	if stream != "" {
		url += "?stream=" + stream
	}
	deadline := time.Now().Add(timeout)
	var last servedEstimate
	for {
		resp, err := hc.Get(url)
		if err != nil {
			return last, fmt.Errorf("ldptest: GET /estimate: %w", err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			err = json.NewDecoder(resp.Body).Decode(&last)
			resp.Body.Close()
			if err != nil {
				return last, fmt.Errorf("ldptest: decode estimate: %w", err)
			}
			if last.N >= wantN {
				return last, nil
			}
		case http.StatusServiceUnavailable, http.StatusConflict:
			// First estimate pending / reports still racing in — retry.
			resp.Body.Close()
		default:
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return last, fmt.Errorf("ldptest: GET /estimate status %d: %s", resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			return last, fmt.Errorf("ldptest: estimate never covered %d reports within %v (last N=%d)",
				wantN, timeout, last.N)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
