package ldptest

// Windowed serving-path acceptance checking: CheckWindowServing drives
// synthetic client cohorts through a mock-clock-driven epoch rotation
// against a live collector and verifies that sliding-window estimates track
// each cohort's (shifting) distribution within Wasserstein/KS bounds. It is
// the time-series complement of CheckServing: where that check verifies one
// static population end to end, this one verifies that window=last:1
// follows the distribution as it drifts across epochs, and that sealed
// per-epoch estimates (window=epochs:e..e) keep answering for the cohort
// that lived in them.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/histogram"
	"repro/internal/metrics"
	"repro/internal/randx"
)

// WindowServingOptions configures one windowed serving-path check.
type WindowServingOptions struct {
	// Stream names the collector stream to drive ("" = the default
	// stream). It must be declared windowed with at least as many retained
	// epochs as there are cohorts, and must start empty in epoch 0.
	Stream string
	// Epsilon, Buckets, Bandwidth are the mechanism parameters and must
	// match the stream's server-side configuration.
	Epsilon   float64
	Buckets   int
	Bandwidth float64
	// ClientsPerEpoch is the synthetic cohort size. Defaults to 3000.
	ClientsPerEpoch int
	// BatchSize chunks the reports into POST /batch requests. Defaults to
	// 500.
	BatchSize int
	// Seed makes every cohort deterministic. Defaults to 1.
	Seed uint64
	// MaxW1 and MaxKS bound the distance between each served window
	// estimate and its cohort's (bucketized) truth. Zero disables that
	// bound.
	MaxW1, MaxKS float64
	// Timeout bounds each wait for a fresh estimate or a rotation.
	// Defaults to 30s.
	Timeout time.Duration
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// AdvanceEpoch advances the collector's rotation clock by one epoch
	// (e.g. by moving the mock clock the server's Config.Clock reads).
	// Required. The harness then polls GET /streams until the rotation is
	// observed, so the caller never sleeps.
	AdvanceEpoch func() error
}

func (o WindowServingOptions) filled() WindowServingOptions {
	if o.ClientsPerEpoch <= 0 {
		o.ClientsPerEpoch = 3000
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 500
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	return o
}

// WindowServingReport is the measured outcome for one cohort's window.
type WindowServingReport struct {
	// Epoch is the epoch index the cohort lived in.
	Epoch int
	// Live is the measurement of window=last:1 taken while the cohort's
	// epoch was still live; Sealed the measurement of window=epochs:e..e
	// after every rotation finished (zero-valued for the final cohort,
	// whose epoch never seals).
	Live, Sealed ServingReport
}

// CheckWindowServing runs one cohort per epoch: sample ClientsPerEpoch
// private values from cohorts[e], randomize them on the client, ship them
// over POST /batch, poll GET /estimate?window=last:1 until the served
// sliding-window estimate covers the cohort, and compare it against that
// cohort's truth — then advance the clock one epoch and repeat with the
// next, shifted cohort. After the last cohort, every sealed epoch is
// re-queried with window=epochs:e..e and must still answer for its own
// cohort within the same bounds. The returned reports always carry the
// measured distances; the error is non-nil on transport failures, bound
// violations, or rotations that never happen.
func CheckWindowServing(baseURL string, cohorts []func(*randx.Rand) float64, opts WindowServingOptions) ([]WindowServingReport, error) {
	opts = opts.filled()
	if opts.AdvanceEpoch == nil {
		return nil, fmt.Errorf("ldptest: CheckWindowServing needs AdvanceEpoch")
	}
	if len(cohorts) == 0 {
		return nil, fmt.Errorf("ldptest: CheckWindowServing needs at least one cohort")
	}
	client := core.NewClient(core.Config{
		Epsilon:   opts.Epsilon,
		Buckets:   opts.Buckets,
		Bandwidth: opts.Bandwidth,
		Smoothing: true,
	})
	reports := make([]WindowServingReport, len(cohorts))
	truths := make([][]float64, len(cohorts))
	for e, sample := range cohorts {
		rng := randx.New(opts.Seed + uint64(e)*7919)
		values := make([]float64, opts.ClientsPerEpoch)
		randomized := make([]any, opts.ClientsPerEpoch)
		for i := range values {
			values[i] = sample(rng)
			randomized[i] = client.Report(values[i], rng)
		}
		for start := 0; start < len(randomized); start += opts.BatchSize {
			end := min(start+opts.BatchSize, len(randomized))
			if err := postBatch(opts.HTTPClient, baseURL, opts.Stream, randomized[start:end]); err != nil {
				return reports, err
			}
		}
		est, err := pollWindowEstimate(opts.HTTPClient, baseURL, opts.Stream, "last:1",
			opts.ClientsPerEpoch, opts.Timeout)
		if err != nil {
			return reports, fmt.Errorf("ldptest: epoch %d: %w", e, err)
		}
		truths[e] = histogram.FromSamples(values, len(est.Distribution)).Distribution()
		reports[e] = WindowServingReport{Epoch: e, Live: measure(truths[e], est)}
		if err := checkBounds(reports[e].Live, opts.MaxW1, opts.MaxKS); err != nil {
			return reports, fmt.Errorf("ldptest: live window of epoch %d: %w", e, err)
		}
		if e < len(cohorts)-1 {
			if err := opts.AdvanceEpoch(); err != nil {
				return reports, fmt.Errorf("ldptest: advance after epoch %d: %w", e, err)
			}
			if err := pollRotation(opts.HTTPClient, baseURL, opts.Stream, e+1, opts.Timeout); err != nil {
				return reports, err
			}
		}
	}
	// Sealed epochs must still answer for their own cohort.
	for e := 0; e < len(cohorts)-1; e++ {
		sel := fmt.Sprintf("epochs:%d..%d", e, e)
		est, err := pollWindowEstimate(opts.HTTPClient, baseURL, opts.Stream, sel,
			opts.ClientsPerEpoch, opts.Timeout)
		if err != nil {
			return reports, fmt.Errorf("ldptest: sealed epoch %d: %w", e, err)
		}
		reports[e].Sealed = measure(truths[e], est)
		if err := checkBounds(reports[e].Sealed, opts.MaxW1, opts.MaxKS); err != nil {
			return reports, fmt.Errorf("ldptest: sealed epoch %d: %w", e, err)
		}
	}
	return reports, nil
}

func measure(truth []float64, est servedEstimate) ServingReport {
	return ServingReport{
		N:        est.N,
		W1:       metrics.Wasserstein(truth, est.Distribution),
		KS:       metrics.KS(truth, est.Distribution),
		Truth:    truth,
		Estimate: est.Distribution,
	}
}

func checkBounds(rep ServingReport, maxW1, maxKS float64) error {
	if maxW1 > 0 && rep.W1 > maxW1 {
		return ServingViolation{Metric: "W1", Got: rep.W1, Bound: maxW1}
	}
	if maxKS > 0 && rep.KS > maxKS {
		return ServingViolation{Metric: "KS", Got: rep.KS, Bound: maxKS}
	}
	return nil
}

// pollWindowEstimate polls GET /estimate with a window selector until the
// served estimate covers wantN reports (503/409 mean "keep polling" — the
// collector answers instead of blocking).
func pollWindowEstimate(hc *http.Client, baseURL, stream, sel string, wantN int, timeout time.Duration) (servedEstimate, error) {
	url := baseURL + "/estimate?window=" + sel
	if stream != "" {
		url += "&stream=" + stream
	}
	deadline := time.Now().Add(timeout)
	var last servedEstimate
	for {
		resp, err := hc.Get(url)
		if err != nil {
			return last, fmt.Errorf("ldptest: GET /estimate: %w", err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			err = json.NewDecoder(resp.Body).Decode(&last)
			resp.Body.Close()
			if err != nil {
				return last, fmt.Errorf("ldptest: decode window estimate: %w", err)
			}
			if last.N >= wantN {
				return last, nil
			}
		case http.StatusServiceUnavailable, http.StatusConflict:
			// Window estimate pending / reports still racing in — retry.
			resp.Body.Close()
		default:
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return last, fmt.Errorf("ldptest: GET %s status %d: %s", url, resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			return last, fmt.Errorf("ldptest: window %s never covered %d reports within %v (last N=%d)",
				sel, wantN, timeout, last.N)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// pollRotation polls GET /streams until the stream's live epoch index
// reaches wantEpoch.
func pollRotation(hc *http.Client, baseURL, stream string, wantEpoch int, timeout time.Duration) error {
	if stream == "" {
		stream = "default"
	}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := hc.Get(baseURL + "/streams")
		if err != nil {
			return fmt.Errorf("ldptest: GET /streams: %w", err)
		}
		var body struct {
			Streams []struct {
				Name   string `json:"name"`
				Window *struct {
					CurrentEpoch int `json:"current_epoch"`
				} `json:"window"`
			} `json:"streams"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("ldptest: decode /streams: %w", err)
		}
		for _, row := range body.Streams {
			if row.Name == stream && row.Window != nil && row.Window.CurrentEpoch >= wantEpoch {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ldptest: stream %q never rotated to epoch %d within %v", stream, wantEpoch, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
