// Package ldptest provides empirical verification that a randomization
// mechanism satisfies ε-local differential privacy. It estimates, by Monte
// Carlo, the worst-case ratio Pr[Ψ(v₁) ∈ T]/Pr[Ψ(v₂) ∈ T] over a grid of
// input pairs and output cells and checks it against e^ε with a sampling
// allowance.
//
// The checker is used by the test suites of every mechanism package (GRR,
// OLH, HRR, SW/GW, SR, PM) and is exported as a library feature so users
// adding their own wave shapes or oracles can validate them the same way.
package ldptest

import (
	"fmt"
	"math"

	"repro/internal/randx"
)

// DiscreteMechanism randomizes a discrete value into a discrete report.
type DiscreteMechanism interface {
	// OutputSize is the number of distinct outputs.
	OutputSize() int
	// Sample draws one randomized output for the input value.
	Sample(v int, rng *randx.Rand) int
}

// ContinuousMechanism randomizes a float64 in [0,1] into a float64 report.
type ContinuousMechanism interface {
	// OutputRange bounds the reports.
	OutputRange() (lo, hi float64)
	// Sample draws one randomized output.
	Sample(v float64, rng *randx.Rand) float64
}

// Options tunes the empirical check.
type Options struct {
	// Samples per input value. Defaults to 200,000.
	Samples int
	// Slack multiplies the e^ε bound to absorb sampling error.
	// Defaults to 1.15.
	Slack float64
	// Cells discretizes continuous outputs. Defaults to 20.
	Cells int
	// Inputs is the input grid to test. Defaults to every value for
	// discrete mechanisms (when the domain is small) and an 11-point grid
	// for continuous ones.
	Inputs []float64
	// Seed for the sampling randomness. Defaults to 1.
	Seed uint64
}

func (o Options) filled() Options {
	if o.Samples <= 0 {
		o.Samples = 200000
	}
	if o.Slack <= 0 {
		o.Slack = 1.15
	}
	if o.Cells <= 0 {
		o.Cells = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Violation describes an observed breach of the privacy bound.
type Violation struct {
	V1, V2 float64 // the input pair
	Cell   int     // output cell index
	Ratio  float64 // observed probability ratio
	Bound  float64 // e^ε · slack
}

// Error formats the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("ldptest: Pr[Ψ(%v)∈cell %d] / Pr[Ψ(%v)∈cell %d] = %.4f exceeds bound %.4f",
		v.V1, v.Cell, v.V2, v.Cell, v.Ratio, v.Bound)
}

// CheckDiscrete empirically verifies ε-LDP for a discrete mechanism over
// the input domain {0..domain−1}. It returns nil when no cell's probability
// ratio exceeds e^ε·Slack, and the first Violation otherwise.
func CheckDiscrete(m DiscreteMechanism, domain int, eps float64, opts Options) error {
	opts = opts.filled()
	inputs := make([]int, 0, domain)
	if opts.Inputs != nil {
		for _, v := range opts.Inputs {
			inputs = append(inputs, int(v))
		}
	} else {
		for v := 0; v < domain; v++ {
			inputs = append(inputs, v)
		}
	}
	rng := randx.New(opts.Seed)
	freqs := make(map[int][]float64, len(inputs))
	for _, v := range inputs {
		f := make([]float64, m.OutputSize())
		for i := 0; i < opts.Samples; i++ {
			f[m.Sample(v, rng)]++
		}
		for j := range f {
			f[j] /= float64(opts.Samples)
		}
		freqs[v] = f
	}
	bound := math.Exp(eps) * opts.Slack
	// Probabilities below this resolution are too noisy to ratio-test.
	minProb := 10.0 / float64(opts.Samples)
	for _, v1 := range inputs {
		for _, v2 := range inputs {
			for cell := 0; cell < m.OutputSize(); cell++ {
				p1, p2 := freqs[v1][cell], freqs[v2][cell]
				if p2 < minProb {
					continue
				}
				if ratio := p1 / p2; ratio > bound {
					return Violation{V1: float64(v1), V2: float64(v2), Cell: cell, Ratio: ratio, Bound: bound}
				}
			}
		}
	}
	return nil
}

// CheckContinuous empirically verifies ε-LDP for a continuous mechanism
// over inputs in [0,1], discretizing the output range into Cells.
func CheckContinuous(m ContinuousMechanism, eps float64, opts Options) error {
	opts = opts.filled()
	inputs := opts.Inputs
	if inputs == nil {
		inputs = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
	}
	lo, hi := m.OutputRange()
	if hi <= lo {
		return fmt.Errorf("ldptest: empty output range [%v, %v]", lo, hi)
	}
	rng := randx.New(opts.Seed)
	freqs := make([][]float64, len(inputs))
	for i, v := range inputs {
		f := make([]float64, opts.Cells)
		for s := 0; s < opts.Samples; s++ {
			x := m.Sample(v, rng)
			j := int((x - lo) / (hi - lo) * float64(opts.Cells))
			if j < 0 {
				j = 0
			}
			if j >= opts.Cells {
				j = opts.Cells - 1
			}
			f[j]++
		}
		for j := range f {
			f[j] /= float64(opts.Samples)
		}
		freqs[i] = f
	}
	bound := math.Exp(eps) * opts.Slack
	minProb := 10.0 / float64(opts.Samples)
	for i1 := range inputs {
		for i2 := range inputs {
			for cell := 0; cell < opts.Cells; cell++ {
				p1, p2 := freqs[i1][cell], freqs[i2][cell]
				if p2 < minProb {
					continue
				}
				if ratio := p1 / p2; ratio > bound {
					return Violation{V1: inputs[i1], V2: inputs[i2], Cell: cell, Ratio: ratio, Bound: bound}
				}
			}
		}
	}
	return nil
}
