package ldptest

import (
	"strings"
	"testing"

	"repro/internal/fo"
	"repro/internal/randx"
	"repro/internal/sw"
)

// grrAdapter adapts fo.GRR to DiscreteMechanism.
type grrAdapter struct{ g *fo.GRR }

func (a grrAdapter) OutputSize() int                   { return a.g.Domain() }
func (a grrAdapter) Sample(v int, rng *randx.Rand) int { return a.g.Perturb(v, rng) }

// discreteSWAdapter adapts sw.Discrete.
type discreteSWAdapter struct{ s sw.Discrete }

func (a discreteSWAdapter) OutputSize() int                   { return a.s.Dt() }
func (a discreteSWAdapter) Sample(v int, rng *randx.Rand) int { return a.s.Perturb(v, rng) }

// waveAdapter adapts sw.Wave to ContinuousMechanism.
type waveAdapter struct{ w sw.Wave }

func (a waveAdapter) OutputRange() (float64, float64) { return a.w.OutLo(), a.w.OutHi() }
func (a waveAdapter) Sample(v float64, rng *randx.Rand) float64 {
	return a.w.Sample(v, rng)
}

// brokenMechanism deliberately violates LDP: it reports the truth with 99%
// probability.
type brokenMechanism struct{ d int }

func (b brokenMechanism) OutputSize() int { return b.d }
func (b brokenMechanism) Sample(v int, rng *randx.Rand) int {
	if rng.Bernoulli(0.99) {
		return v
	}
	return rng.IntN(b.d)
}

func TestGRRPasses(t *testing.T) {
	g := fo.NewGRR(6, 1.0)
	if err := CheckDiscrete(grrAdapter{g}, 6, 1.0, Options{Samples: 100000}); err != nil {
		t.Errorf("GRR flagged: %v", err)
	}
}

func TestDiscreteSWPasses(t *testing.T) {
	s := sw.NewDiscreteWithB(12, 1.0, 2)
	if err := CheckDiscrete(discreteSWAdapter{s}, 12, 1.0, Options{Samples: 100000}); err != nil {
		t.Errorf("discrete SW flagged: %v", err)
	}
}

func TestContinuousWavesPass(t *testing.T) {
	for _, rho := range []float64{0, 0.5, 1} {
		w := sw.NewWave(1.0, 0.25, rho)
		if err := CheckContinuous(waveAdapter{w}, 1.0, Options{Samples: 150000}); err != nil {
			t.Errorf("wave rho=%v flagged: %v", rho, err)
		}
	}
}

func TestBrokenMechanismCaught(t *testing.T) {
	err := CheckDiscrete(brokenMechanism{d: 6}, 6, 1.0, Options{Samples: 100000})
	if err == nil {
		t.Fatal("broken mechanism passed the check")
	}
	v, ok := err.(Violation)
	if !ok {
		t.Fatalf("error is %T, want Violation", err)
	}
	if v.Ratio <= v.Bound {
		t.Errorf("violation ratio %v should exceed bound %v", v.Ratio, v.Bound)
	}
	if !strings.Contains(v.Error(), "exceeds bound") {
		t.Errorf("violation message = %q", v.Error())
	}
}

func TestWrongEpsilonCaught(t *testing.T) {
	// A mechanism calibrated for ε=3 must fail a check against ε=1.
	g := fo.NewGRR(6, 3.0)
	if err := CheckDiscrete(grrAdapter{g}, 6, 1.0, Options{Samples: 200000}); err == nil {
		t.Error("ε=3 mechanism passed an ε=1 check")
	}
}

func TestCheckContinuousBadRange(t *testing.T) {
	if err := CheckContinuous(badRange{}, 1, Options{Samples: 10}); err == nil {
		t.Error("empty output range should error")
	}
}

type badRange struct{}

func (badRange) OutputRange() (float64, float64)         { return 1, 1 }
func (badRange) Sample(v float64, r *randx.Rand) float64 { return 0 }

func TestInputSubset(t *testing.T) {
	// Restricting the input grid is honored (only two inputs sampled).
	g := fo.NewGRR(64, 1.0)
	err := CheckDiscrete(grrAdapter{g}, 64, 1.0, Options{
		Samples: 50000,
		Inputs:  []float64{0, 63},
	})
	if err != nil {
		t.Errorf("subset check flagged: %v", err)
	}
}
