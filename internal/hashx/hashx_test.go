package hashx

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, 2) != Hash64(1, 2) {
		t.Error("Hash64 not deterministic")
	}
	if Hash64(1, 2) == Hash64(2, 1) {
		t.Error("seed and value are interchangeable; mixing is too weak")
	}
	if Hash64(0, 0) == Hash64(0, 1) {
		t.Error("adjacent values collide under seed 0")
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	var totalFlips, trials int
	for seed := uint64(0); seed < 16; seed++ {
		for bit := 0; bit < 64; bit++ {
			a := Hash64(seed, 12345)
			b := Hash64(seed, 12345^(1<<bit))
			totalFlips += bits.OnesCount64(a ^ b)
			trials++
		}
	}
	avg := float64(totalFlips) / float64(trials)
	if avg < 28 || avg > 36 {
		t.Errorf("avalanche average = %v flipped bits, want ~32", avg)
	}
}

func TestMul64(t *testing.T) {
	tests := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, tc := range tests {
		hi, lo := mul64(tc.a, tc.b)
		if hi != tc.hi || lo != tc.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", tc.a, tc.b, hi, lo, tc.hi, tc.lo)
		}
	}
}

func TestMul64MatchesBits(t *testing.T) {
	err := quick.Check(func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		whi, wlo := bits.Mul64(a, b)
		return hi == whi && lo == wlo
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Error(err)
	}
}

func TestFamilyRange(t *testing.T) {
	f := NewFamily(7)
	if f.G() != 7 {
		t.Fatalf("G = %d", f.G())
	}
	for seed := uint64(0); seed < 100; seed++ {
		for v := 0; v < 50; v++ {
			h := f.Apply(seed, v)
			if h < 0 || h >= 7 {
				t.Fatalf("Apply(%d,%d) = %d out of range", seed, v, h)
			}
		}
	}
}

func TestFamilyUniformity(t *testing.T) {
	// Over many seeds, each value should hash approximately uniformly
	// across the g buckets; this is what OLH's unbiasedness relies on.
	const g = 8
	f := NewFamily(g)
	const seeds = 80000
	for _, v := range []int{0, 1, 500, 1023} {
		counts := make([]int, g)
		for seed := uint64(0); seed < seeds; seed++ {
			counts[f.Apply(seed, v)]++
		}
		for b, c := range counts {
			got := float64(c) / seeds
			if math.Abs(got-1.0/g) > 0.01 {
				t.Errorf("value %d bucket %d frequency = %v, want %v", v, b, got, 1.0/g)
			}
		}
	}
}

func TestFamilyPairwiseCollisions(t *testing.T) {
	// For two distinct values the collision rate over random seeds should
	// be close to 1/g (pairwise near-uniformity).
	const g = 16
	f := NewFamily(g)
	const seeds = 100000
	pairs := [][2]int{{0, 1}, {3, 900}, {511, 512}}
	for _, p := range pairs {
		coll := 0
		for seed := uint64(0); seed < seeds; seed++ {
			if f.Apply(seed, p[0]) == f.Apply(seed, p[1]) {
				coll++
			}
		}
		got := float64(coll) / seeds
		if math.Abs(got-1.0/g) > 0.005 {
			t.Errorf("pair %v collision rate = %v, want %v", p, got, 1.0/g)
		}
	}
}

func TestNewFamilyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFamily(1) should panic")
		}
	}()
	NewFamily(1)
}

func BenchmarkFamilyApply(b *testing.B) {
	f := NewFamily(16)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += f.Apply(uint64(i), i&1023)
	}
	_ = sink
}
