// Package hashx implements the seeded 64-bit hash family used by the
// Optimized Local Hashing (OLH) frequency oracle. OLH requires a public
// family of hash functions H_s : {0..d-1} → {0..g-1} indexed by a seed s that
// each user samples uniformly; the aggregator must be able to re-evaluate
// any user's hash on any domain value. A keyed xxhash64-style finalizer over
// the (seed, value) pair provides exactly that with good avalanche behaviour
// and zero allocations per call.
package hashx

const (
	prime1 = 0x9E3779B185EBCA87
	prime2 = 0xC2B2AE3D27D4EB4F
	prime3 = 0x165667B19E3779F9
	prime4 = 0x85EBCA77C2B2AE63
	prime5 = 0x27D4EB2F165667C5
)

// Hash64 mixes a seed and a 64-bit value into a 64-bit digest using the
// xxhash64 single-lane routine (the input is always exactly 8 bytes, so the
// striped body of full xxhash64 never runs).
func Hash64(seed, v uint64) uint64 {
	h := seed + prime5 + 8
	k := v * prime2
	k = rotl(k, 31)
	k *= prime1
	h ^= k
	h = rotl(h, 27)*prime1 + prime4
	// Finalization (avalanche).
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

func rotl(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

// Family is a public hash family H_s : {0,...,d-1} → {0,...,g-1}. The zero
// value is unusable; construct with NewFamily.
type Family struct {
	g uint64
}

// NewFamily returns a hash family with range size g >= 2.
func NewFamily(g int) Family {
	if g < 2 {
		panic("hashx: family range must be at least 2")
	}
	return Family{g: uint64(g)}
}

// G returns the range size of the family.
func (f Family) G() int { return int(f.g) }

// Apply evaluates the seed-th member of the family on value v, returning a
// bucket in [0, g).
func (f Family) Apply(seed uint64, v int) int {
	// Multiply-shift reduction avoids the modulo bias a plain % would
	// introduce and is faster than a division.
	h := Hash64(seed, uint64(v))
	hi, _ := mul64(h, f.g)
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo). Implemented
// manually so the package has no dependency beyond the language; the
// compiler lowers this to a single MUL on amd64/arm64.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}
