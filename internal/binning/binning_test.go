package binning

import (
	"testing"

	"repro/internal/histogram"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/randx"
)

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(1, _) should panic")
		}
	}()
	New(1, 1)
}

func TestCollectShapeAndValidity(t *testing.T) {
	m := New(16, 1)
	rng := randx.New(1)
	values := make([]float64, 5000)
	for i := range values {
		values[i] = rng.Float64()
	}
	dist := m.Collect(values, 256, rng)
	if len(dist) != 256 {
		t.Fatalf("len = %d, want 256", len(dist))
	}
	if !mathx.IsDistribution(dist, 1e-9) {
		t.Error("output is not a valid distribution")
	}
	// Uniform within each bin: all 16 sub-buckets of a bin are equal.
	for b := 0; b < 16; b++ {
		for j := 1; j < 16; j++ {
			if dist[b*16+j] != dist[b*16] {
				t.Fatalf("bin %d not uniformly spread", b)
			}
		}
	}
}

func TestCollectPanicsOnBadGranularity(t *testing.T) {
	m := New(16, 1)
	rng := randx.New(2)
	defer func() {
		if recover() == nil {
			t.Error("non-multiple granularity should panic")
		}
	}()
	m.Collect([]float64{0.5}, 100, rng)
}

func TestOracleSelection(t *testing.T) {
	// c=16 at eps=2.5: 14 < 3e^2.5 → GRR. c=64 at eps=0.5: OLH.
	if got := New(16, 2.5).OracleName(); got != "GRR" {
		t.Errorf("c=16 eps=2.5 oracle = %s, want GRR", got)
	}
	if got := New(64, 0.5).OracleName(); got != "OLH" {
		t.Errorf("c=64 eps=0.5 oracle = %s, want OLH", got)
	}
}

func TestCollectRecoverseDistribution(t *testing.T) {
	// At a generous budget the binned estimate must be close to the bin-
	// averaged truth.
	const d = 256
	rng := randx.New(3)
	values := make([]float64, 100000)
	truthHist := histogram.New(d)
	for i := range values {
		v := rng.Beta(5, 2)
		values[i] = v
		truthHist.Add(v)
	}
	truth := truthHist.Distribution()
	m := New(32, 2.5)
	dist := m.Collect(values, d, rng)
	if got := metrics.Wasserstein(truth, dist); got > 0.02 {
		t.Errorf("W1 = %v, want < 0.02 at eps=2.5, n=100k", got)
	}
}

func TestBiasNoiseTradeoff(t *testing.T) {
	// The paper's Section 4.1 story, averaged over seeds: at tiny ε few
	// bins beat many bins (noise dominates); at large ε many bins beat few
	// (bias dominates). Use a sharply peaked distribution so 8 bins carry
	// real bias.
	const d = 256
	sample := func(r *randx.Rand) float64 { return mathx.Clamp(r.Normal(0.31, 0.02), 0, 1) }
	avgW1 := func(c int, eps float64) float64 {
		var acc float64
		const runs = 8
		for run := 0; run < runs; run++ {
			rng := randx.New(uint64(100*run + 7))
			values := make([]float64, 20000)
			truthHist := histogram.New(d)
			for i := range values {
				v := sample(rng)
				values[i] = v
				truthHist.Add(v)
			}
			truth := truthHist.Distribution()
			acc += metrics.Wasserstein(truth, New(c, eps).Collect(values, d, rng))
		}
		return acc / runs
	}
	if w8, w64 := avgW1(8, 0.25), avgW1(64, 0.25); w8 >= w64 {
		t.Errorf("at eps=0.25 coarse bins should win: W1(8)=%v, W1(64)=%v", w8, w64)
	}
	if w8, w64 := avgW1(8, 4.0), avgW1(64, 4.0); w64 >= w8 {
		t.Errorf("at eps=4 fine bins should win: W1(8)=%v, W1(64)=%v", w8, w64)
	}
}

func BenchmarkCollect(b *testing.B) {
	m := New(32, 1)
	rng := randx.New(1)
	values := make([]float64, 10000)
	for i := range values {
		values[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Collect(values, 256, rng)
	}
}
