// Package binning implements the CFO-with-binning baseline of Section 4.1:
// the numerical domain [0,1] is split into c consecutive bins, each user
// reports its bin through the lower-variance categorical frequency oracle
// (GRR or OLH), the aggregator post-processes the noisy bin frequencies with
// Norm-Sub, and the bin distribution is spread uniformly within each bin to
// produce an estimate at the target granularity d.
//
// Choosing c trades noise (more bins → more noise) against binning bias
// (fewer bins → coarser shape); the paper evaluates c ∈ {16, 32, 64} and
// shows no fixed choice beats SW+EMS.
package binning

import (
	"fmt"

	"repro/internal/fo"
	"repro/internal/histogram"
	"repro/internal/postprocess"
	"repro/internal/randx"
)

// Method is a CFO-with-binning estimator with c bins at budget eps.
type Method struct {
	c      int
	eps    float64
	oracle fo.Oracle
}

// New returns the method with c bins. The frequency oracle is chosen
// adaptively (fo.Best).
func New(c int, eps float64) *Method {
	if c < 2 {
		panic(fmt.Sprintf("binning: need at least 2 bins, got %d", c))
	}
	return &Method{c: c, eps: eps, oracle: fo.Best(c, eps)}
}

// Bins returns the number of bins c.
func (m *Method) Bins() int { return m.c }

// Epsilon returns the privacy budget.
func (m *Method) Epsilon() float64 { return m.eps }

// OracleName reports which CFO the method selected ("GRR" or "OLH").
func (m *Method) OracleName() string { return m.oracle.Name() }

// Collect runs a full round over private values in [0,1] and returns an
// estimated distribution over d buckets (d must be a multiple of c). The
// result is a valid probability distribution.
func (m *Method) Collect(values []float64, d int, rng *randx.Rand) []float64 {
	if d%m.c != 0 {
		panic(fmt.Sprintf("binning: target granularity %d is not a multiple of %d bins", d, m.c))
	}
	bins := make([]int, len(values))
	for i, v := range values {
		bins[i] = histogram.BucketOf(v, m.c)
	}
	est := m.oracle.Collect(bins, rng)
	dist := postprocess.NormSub(est)
	return histogram.Upsample(dist, d/m.c)
}
