package plot

import (
	"strings"
	"testing"
)

func twoSeries() map[string][]Point {
	return map[string][]Point{
		"SW-EMS": {{0.5, 0.02}, {1, 0.01}, {2, 0.004}},
		"HH":     {{0.5, 0.05}, {1, 0.02}, {2, 0.01}},
	}
}

func TestChartBasics(t *testing.T) {
	out := Chart(twoSeries(), Options{Title: "W1 vs eps", XLabel: "epsilon"})
	// Markers are assigned in sorted-name order: HH before SW-EMS.
	for _, want := range []string{"W1 vs eps", "* HH", "o SW-EMS", "(x: epsilon)"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Plot area has the requested default height of 16 rows.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") {
			rows++
		}
	}
	if rows != 16 {
		t.Errorf("plot rows = %d, want 16", rows)
	}
}

func TestChartLogY(t *testing.T) {
	out := Chart(twoSeries(), Options{LogY: true})
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("log chart missing markers:\n%s", out)
	}
	// Non-positive values must not panic under LogY.
	bad := map[string][]Point{"z": {{0, 0}, {1, 0.5}}}
	out = Chart(bad, Options{LogY: true})
	if !strings.Contains(out, "^") && !strings.Contains(out, "*") {
		t.Errorf("chart with zero y rendered nothing:\n%s", out)
	}
}

func TestChartMonotoneSeriesOrientation(t *testing.T) {
	// A decreasing series should put its first marker on a higher row
	// than its last marker.
	series := map[string][]Point{"only": {{0, 10}, {1, 1}}}
	out := Chart(series, Options{Width: 20, Height: 10})
	lines := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for i, line := range lines {
		if !strings.Contains(line, "|") {
			continue
		}
		body := line[strings.Index(line, "|"):]
		if idx := strings.IndexRune(body, '*'); idx >= 0 {
			if firstRow == -1 || idx <= 2 {
				if idx <= 2 && firstRow == -1 {
					firstRow = i
				}
			}
			lastRow = i
		}
		_ = body
	}
	if firstRow == -1 || lastRow == -1 || firstRow >= lastRow {
		t.Errorf("decreasing series should slope downward (rows %d -> %d):\n%s",
			firstRow, lastRow, out)
	}
}

func TestChartEmpty(t *testing.T) {
	if got := Chart(nil, Options{}); got != "(no data)\n" {
		t.Errorf("empty chart = %q", got)
	}
}

func TestChartSinglePointAndFlatSeries(t *testing.T) {
	// Degenerate spans (xmin == xmax, ymin == ymax) must not divide by
	// zero.
	series := map[string][]Point{"p": {{1, 5}}}
	out := Chart(series, Options{Width: 10, Height: 5})
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
	flat := map[string][]Point{"f": {{0, 2}, {1, 2}, {2, 2}}}
	out = Chart(flat, Options{})
	if !strings.Contains(out, "*") {
		t.Errorf("flat series not plotted:\n%s", out)
	}
}

func TestManySeriesGetDistinctMarkers(t *testing.T) {
	series := map[string][]Point{}
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		series[name] = []Point{{0, 1}, {1, 2}}
	}
	out := Chart(series, Options{})
	for _, m := range []string{"* a", "o b", "+ c", "x d", "# e"} {
		if !strings.Contains(out, m) {
			t.Errorf("legend missing %q:\n%s", m, out)
		}
	}
}
