// Package plot renders small ASCII line charts for the experiment CLI, so
// `experiments -exp fig2 -chart` shows the figure's shape (who wins, where
// curves cross) directly in the terminal without any plotting dependency.
// Series are drawn over a shared axis grid with one marker rune per series
// and an optional log-scaled y axis (the paper's figures are log-y).
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Options sizes and scales the chart.
type Options struct {
	// Width and Height of the plotting area in characters. Default 60×16.
	Width, Height int
	// LogY uses a log10 y axis (non-positive values are clamped to the
	// smallest positive y present).
	LogY bool
	// Title is printed above the chart.
	Title string
	// XLabel annotates the x axis.
	XLabel string
}

func (o *Options) fillDefaults() {
	if o.Width <= 0 {
		o.Width = 60
	}
	if o.Height <= 0 {
		o.Height = 16
	}
}

// markers are assigned to series in sorted-name order.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '~', '^', '&'}

// Chart renders the series into a multi-line string. Series are drawn in
// sorted name order; each point is the nearest character cell, with linear
// interpolation between consecutive points of a series.
func Chart(series map[string][]Point, opts Options) string {
	opts.fillDefaults()
	if len(series) == 0 {
		return "(no data)\n"
	}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)

	// Bounds.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	minPosY := math.Inf(1)
	for _, pts := range series {
		for _, p := range pts {
			xmin = math.Min(xmin, p.X)
			xmax = math.Max(xmax, p.X)
			ymin = math.Min(ymin, p.Y)
			ymax = math.Max(ymax, p.Y)
			if p.Y > 0 {
				minPosY = math.Min(minPosY, p.Y)
			}
		}
	}
	if math.IsInf(xmin, 1) {
		return "(no data)\n"
	}
	ty := func(y float64) float64 { return y }
	if opts.LogY {
		if math.IsInf(minPosY, 1) {
			minPosY = 1e-12
		}
		ty = func(y float64) float64 {
			if y < minPosY {
				y = minPosY
			}
			return math.Log10(y)
		}
		ymin, ymax = ty(math.Max(ymin, minPosY)), ty(ymax)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, opts.Height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", opts.Width))
	}
	cell := func(p Point) (col, row int, ok bool) {
		cx := (p.X - xmin) / (xmax - xmin)
		cy := (ty(p.Y) - ymin) / (ymax - ymin)
		col = int(cx * float64(opts.Width-1))
		row = opts.Height - 1 - int(cy*float64(opts.Height-1))
		if col < 0 || col >= opts.Width || row < 0 || row >= opts.Height {
			return 0, 0, false
		}
		return col, row, true
	}

	for si, name := range names {
		m := markers[si%len(markers)]
		pts := append([]Point(nil), series[name]...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		// Interpolated trace between consecutive points.
		for i := 0; i+1 < len(pts); i++ {
			a, b := pts[i], pts[i+1]
			steps := opts.Width / 2
			for s := 0; s <= steps; s++ {
				f := float64(s) / float64(steps)
				y := a.Y*(1-f) + b.Y*f
				if opts.LogY && a.Y > 0 && b.Y > 0 {
					y = math.Pow(10, ty(a.Y)*(1-f)+ty(b.Y)*f)
				}
				if col, row, ok := cell(Point{X: a.X*(1-f) + b.X*f, Y: y}); ok {
					if grid[row][col] == ' ' {
						grid[row][col] = '·'
					}
				}
			}
		}
		for _, p := range pts {
			if col, row, ok := cell(p); ok {
				grid[row][col] = m
			}
		}
	}

	var sb strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&sb, "%s\n", opts.Title)
	}
	yLabel := func(row int) string {
		frac := float64(opts.Height-1-row) / float64(opts.Height-1)
		v := ymin + frac*(ymax-ymin)
		if opts.LogY {
			v = math.Pow(10, v)
		}
		return fmt.Sprintf("%9.3g", v)
	}
	for r := 0; r < opts.Height; r++ {
		label := strings.Repeat(" ", 9)
		if r == 0 || r == opts.Height-1 || r == opts.Height/2 {
			label = yLabel(r)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", 9), strings.Repeat("-", opts.Width))
	fmt.Fprintf(&sb, "%s  %-10.3g%s%10.3g\n", strings.Repeat(" ", 9), xmin,
		strings.Repeat(" ", maxInt(1, opts.Width-22)), xmax)
	if opts.XLabel != "" {
		fmt.Fprintf(&sb, "%s  (x: %s)\n", strings.Repeat(" ", 9), opts.XLabel)
	}
	for si, name := range names {
		fmt.Fprintf(&sb, "  %c %s\n", markers[si%len(markers)], name)
	}
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
