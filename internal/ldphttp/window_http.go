package ldphttp

// Windowed (epoch-rotated) collection: streams declared with an epoch
// duration rotate their live histogram into sealed epochs (package window)
// and serve sliding-window estimates for any retained contiguous epoch
// range. The request path never runs EM: the first request for a window
// registers the resolved range in the stream's window cache and answers 503
// (with Retry-After), the background engine reconstructs it — warm-started
// from that window's previous estimate when there is one, from the
// neighboring shifted-by-one-epoch window after a rotation, or from the
// stream's full-range estimate — and subsequent requests serve the cache.
// Fully-sealed ranges are immutable, so their cached estimates never
// recompute and restore bit-identically from snapshots.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/histogram"
	"repro/internal/window"
)

// Duration is a time.Duration that marshals as a human-readable Go duration
// string ("1m30s") in JSON and unmarshals from either that syntax or integer
// nanoseconds, so curl users write {"epoch": "1m"} instead of 60000000000.
type Duration time.Duration

// MarshalJSON renders the Go duration syntax.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "1m30s" or integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("ldphttp: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err == nil {
		*d = Duration(n)
		return nil
	}
	return fmt.Errorf("ldphttp: bad duration %s (want a Go duration string or nanoseconds)", b)
}

// EpochRange is the resolved inclusive epoch range of a window answer.
type EpochRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// WindowInfo is the windowing block of a GET /streams row.
type WindowInfo struct {
	// Epoch is the rotation period; Retain the sealed-epoch retention.
	Epoch  Duration `json:"epoch"`
	Retain int      `json:"retain"`
	// CurrentEpoch is the live epoch's index; OldestEpoch the lowest index
	// still addressable; SealedEpochs how many sealed epochs are retained.
	CurrentEpoch int `json:"current_epoch"`
	OldestEpoch  int `json:"oldest_epoch"`
	SealedEpochs int `json:"sealed_epochs"`
	// LiveN is the report count of the live epoch alone.
	LiveN int `json:"live_n"`
}

// windowCache is one cached sliding-window reconstruction. The engine owns
// init and all stores; requests only Load.
type windowCache struct {
	rng       window.Range
	est       atomic.Pointer[EstimateResponse]
	published atomic.Int64 // reports covered by est
	init      []float64    // engine-owned warm-start vector
}

// windowCacheFor returns the stream's cache entry for a resolved range,
// creating (and thereby requesting) it if needed.
func (st *stream) windowCacheFor(g window.Range) *windowCache {
	st.winMu.Lock()
	defer st.winMu.Unlock()
	wc, ok := st.wins[g]
	if !ok {
		wc = &windowCache{rng: g}
		st.wins[g] = wc
	}
	return wc
}

// evictAgedWindows drops cache entries whose range fell out of retention.
func (st *stream) evictAgedWindows() {
	oldest := st.ring.Oldest()
	st.winMu.Lock()
	defer st.winMu.Unlock()
	for g := range st.wins {
		if g.Lo < oldest {
			delete(st.wins, g)
		}
	}
}

// windowCaches snapshots the cache entries in deterministic (Lo, Hi) order.
func (st *stream) windowCaches() []*windowCache {
	st.winMu.Lock()
	defer st.winMu.Unlock()
	out := make([]*windowCache, 0, len(st.wins))
	for _, wc := range st.wins {
		out = append(out, wc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].rng.Lo != out[j].rng.Lo {
			return out[i].rng.Lo < out[j].rng.Lo
		}
		return out[i].rng.Hi < out[j].rng.Hi
	})
	return out
}

// neighborInit finds the warm-start vector of the shifted-by-one-epoch
// window — after a rotation, last:K resolves one epoch later, and the
// previous window's estimate is the natural warm start for the new one.
func (st *stream) neighborInit(g window.Range) []float64 {
	st.winMu.Lock()
	defer st.winMu.Unlock()
	if prev, ok := st.wins[window.Range{Lo: g.Lo - 1, Hi: g.Hi - 1}]; ok {
		if est := prev.est.Load(); est != nil {
			return est.Distribution
		}
	}
	return nil
}

// refreshWindows re-estimates every stale requested window of one windowed
// stream. Refresh workers only, under the stream's busy flag. Fully-sealed
// ranges compute once and are then skipped forever (published matches and
// sealed counts are frozen); live-inclusive ranges recompute whenever their
// report count moves.
func (s *Server) refreshWindows(st *stream) {
	for _, wc := range st.windowCaches() {
		select {
		case <-s.done:
			return
		default:
		}
		n, err := st.ring.RangeN(wc.rng)
		if err != nil {
			continue // aged out under us; eviction removes it on the next rotation
		}
		if n == 0 || int64(n) == wc.published.Load() {
			continue
		}
		st.winScratch, n, err = st.ring.Merge(wc.rng, st.winScratch)
		if err != nil || n == 0 {
			continue
		}
		init := wc.init
		if init == nil {
			if prev := wc.est.Load(); prev != nil && len(prev.Distribution) > 0 {
				init = prev.Distribution // snapshot-restored cache
			} else if nb := st.neighborInit(wc.rng); nb != nil {
				init = nb
			} else if prev := st.est.Load(); prev != nil && len(prev.Distribution) > 0 {
				init = prev.Distribution // the stream's full-range estimate
			}
		}
		res := st.agg.EstimateInto(&st.ws, st.winScratch, init)
		wc.init = append(wc.init[:0], res.Estimate...)
		users := st.agg.Users(st.winScratch, n)
		warm := init != nil && st.agg.Channel() != nil
		// res.Estimate aliases the stream's workspace; publish a copy.
		dist := append([]float64(nil), res.Estimate...)
		resp := s.windowEstimateResponse(st, wc.rng, users, dist, res.Iterations, res.Converged, warm, false)
		resp.raw = n
		wc.est.Store(resp)
		wc.published.Store(int64(n))
	}
}

// windowEstimateResponse assembles the served shape of a window estimate.
func (s *Server) windowEstimateResponse(st *stream, g window.Range, n int, dist []float64, iters int, converged, warm, restored bool) *EstimateResponse {
	return &EstimateResponse{
		Stream:       st.name,
		N:            n,
		Epsilon:      st.cfg.Epsilon,
		Mechanism:    st.cfg.Mechanism,
		Distribution: dist,
		Mean:         histogram.Mean(dist),
		Variance:     histogram.Variance(dist),
		Median:       histogram.Quantile(dist, 0.5),
		Iterations:   iters,
		Converged:    converged,
		WarmStart:    warm,
		Restored:     restored,
		Window:       g.String(),
		Epochs:       &EpochRange{Lo: g.Lo, Hi: g.Hi},
	}
}

// loadWindowEstimate is the window-selector counterpart of loadEstimate: it
// resolves the selector against the stream's ring, registers the range in
// the window cache, and serves the cached reconstruction — 400 for
// non-windowed streams and malformed selectors, 410 for ranges that aged out
// of retention, 409 for windows with no reports, 503 (with Retry-After)
// while the engine computes the first estimate for the range.
func (s *Server) loadWindowEstimate(w http.ResponseWriter, st *stream, rawSel string) (*EstimateResponse, int, bool) {
	if st.ring == nil {
		errorJSON(w, http.StatusBadRequest, CodeNotWindowed,
			"stream %q is not windowed; declare it with an epoch to enable window queries", st.name)
		return nil, 0, false
	}
	sel, err := window.ParseSelector(rawSel)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return nil, 0, false
	}
	g, err := st.ring.Resolve(sel)
	if err != nil {
		status, code := http.StatusBadRequest, CodeBadRequest
		if window.IsAgedOut(err) {
			status, code = http.StatusGone, CodeWindowAgedOut
		}
		errorJSON(w, status, code, "%v", err)
		return nil, 0, false
	}
	n, err := st.ring.RangeN(g)
	if err != nil { // the range aged out between Resolve and RangeN
		errorJSON(w, http.StatusGone, CodeWindowAgedOut, "%v", err)
		return nil, 0, false
	}
	if n == 0 {
		errorJSON(w, http.StatusConflict, CodeNoReports, "no reports in window %s on stream %q", g, st.name)
		return nil, 0, false
	}
	wc := st.windowCacheFor(g)
	cached := wc.est.Load()
	if cached == nil {
		s.wake()
		retryJSON(w, http.StatusServiceUnavailable, CodeEstimatePending, time.Second,
			map[string]any{"stream": st.name, "window": g.String(), "pending_reports": n},
			"window estimate pending: reconstruction in progress")
		return nil, 0, false
	}
	// Staleness is tracked in raw histogram increments, not the user count
	// the cached response carries.
	pub := int(wc.published.Load())
	if n != pub {
		s.wake() // refresh in the background; serve the cache now
	}
	pending := n - pub
	if pending < 0 {
		pending = 0
	}
	return cached, pending, true
}

// loadEstimateOrWindow dispatches between the whole-stream cache and the
// window cache on the presence of a window selector.
func (s *Server) loadEstimateOrWindow(w http.ResponseWriter, st *stream, rawSel string) (*EstimateResponse, int, bool) {
	if rawSel == "" {
		return s.loadEstimate(w, st)
	}
	return s.loadWindowEstimate(w, st, rawSel)
}

// handleStreamItem serves /streams/{name}: DELETE retires a stream.
func (s *Server) handleStreamItem(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		methodNotAllowed(w, r, http.MethodDelete)
		return
	}
	name := r.URL.Path[len("/streams/"):]
	if name == "" {
		errorJSON(w, http.StatusBadRequest, CodeBadRequest, "missing stream name (DELETE /streams/{name})")
		return
	}
	s.serveStreamDelete(w, name)
}
