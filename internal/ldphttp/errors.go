package ldphttp

// Uniform error envelope: every non-2xx response across every endpoint —
// legacy, /v1, federation, admission control — carries the same JSON shape:
//
//	{"error": {"code": "<machine-readable>", "message": "...",
//	           "retry_after_ms": N}}
//
// plus optional endpoint-specific top-level fields (a pending estimate's
// stream and pending_reports, a federation rejection's full PushResponse).
// Codes are stable API: clients branch on them, messages are for humans.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Stable error codes. Federation rejections additionally use the
// machine-readable reason strings of package federate (seq_gap,
// fingerprint_mismatch, unknown_stream, federation_disabled) as codes.
const (
	// CodeBadRequest: malformed JSON, parameters, or report payloads.
	CodeBadRequest = "bad_request"
	// CodeMethodNotAllowed: the resource exists but not under this method.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotFound: no such route.
	CodeNotFound = "not_found"
	// CodeUnknownStream: the addressed stream is not declared.
	CodeUnknownStream = "unknown_stream"
	// CodeStreamConflict: a declaration conflicts with the live stream.
	CodeStreamConflict = "stream_conflict"
	// CodeStreamMismatch: a /v1/streams/{name}/... body names a different
	// stream than the path.
	CodeStreamMismatch = "stream_mismatch"
	// CodeNoReports: the stream (or window) has no reports to estimate.
	CodeNoReports = "no_reports"
	// CodeEstimatePending: the first reconstruction is still being
	// computed; retry after retry_after_ms.
	CodeEstimatePending = "estimate_pending"
	// CodeNotWindowed: a window selector addressed a stream without epochs.
	CodeNotWindowed = "not_windowed"
	// CodeWindowAgedOut: the requested epoch range fell out of retention.
	CodeWindowAgedOut = "window_aged_out"
	// CodeBodyTooLarge: the request body exceeds the admission bound.
	CodeBodyTooLarge = "body_too_large"
	// CodeUnsupportedMedia: the request declared a Content-Type the
	// endpoint does not speak (absent and application/json always work;
	// ingest endpoints additionally accept application/x-ldp-binary).
	CodeUnsupportedMedia = "unsupported_media_type"
	// CodeRateLimited: admission control shed the request; retry after
	// retry_after_ms.
	CodeRateLimited = "rate_limited"
	// CodeNotReady: the server has not finished restoring its snapshot.
	CodeNotReady = "not_ready"
	// CodeEngineStopped / CodeEngineStalled: liveness probe failures.
	CodeEngineStopped = "engine_stopped"
	CodeEngineStalled = "engine_stalled"
)

// ErrorBody is the envelope's "error" object.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS, when non-zero, is how long the client should wait
	// before retrying (429 and 503 responses; mirrored in the Retry-After
	// header, which rounds up to whole seconds).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// RequestID identifies this request in the access log (req_id field)
	// and the X-Request-Id response header — quote it when reporting an
	// error so the operator can find the matching log line and trace.
	RequestID string `json:"request_id,omitempty"`
}

// writeEnvelope writes a non-2xx envelope with optional extra top-level
// fields. A RetryAfterMS also sets the Retry-After header (ceiling of whole
// seconds, minimum 1 — the header has no sub-second syntax).
func writeEnvelope(w http.ResponseWriter, status int, body ErrorBody, extra map[string]any) {
	// Stamp the request ID when the middleware's writer is underneath;
	// minting here (not per request) keeps the 2xx path free of IDs.
	if rw, ok := w.(interface{ requestID() string }); ok {
		body.RequestID = rw.requestID()
	}
	w.Header().Set("Content-Type", "application/json")
	if body.RetryAfterMS > 0 {
		secs := (body.RetryAfterMS + 999) / 1000
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.WriteHeader(status)
	payload := map[string]any{"error": body}
	for k, v := range extra {
		payload[k] = v
	}
	json.NewEncoder(w).Encode(payload)
}

// errorJSON writes a plain envelope (code + formatted message).
func errorJSON(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeEnvelope(w, status, ErrorBody{Code: code, Message: fmt.Sprintf(format, args...)}, nil)
}

// retryJSON writes an envelope that asks the client to come back.
func retryJSON(w http.ResponseWriter, status int, code string, retryAfter time.Duration, extra map[string]any, format string, args ...any) {
	ms := retryAfter.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	writeEnvelope(w, status, ErrorBody{
		Code: code, Message: fmt.Sprintf(format, args...), RetryAfterMS: ms,
	}, extra)
}

// methodNotAllowed answers an unsupported method the way RFC 9110 asks: 405
// with an Allow header listing what the resource supports, in the uniform
// JSON envelope.
func methodNotAllowed(w http.ResponseWriter, r *http.Request, allowed ...string) {
	allow := strings.Join(allowed, ", ")
	w.Header().Set("Allow", allow)
	errorJSON(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
		"method %s not allowed on %s (allow: %s)", r.Method, r.URL.Path, allow)
}

// decodeJSON decodes a request body and writes the envelope on failure —
// 413 body_too_large when the admission body cap truncated it, 400
// bad_request otherwise. The body must be exactly one JSON value: trailing
// bytes after the first value (`{"report":1}garbage`) are a 400, not
// silently ignored, so a concatenated or corrupted payload can never be
// half-accepted.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dsp := spanOf(w).Child("decode").Attr("codec", codecJSON)
	defer dsp.End()
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			dsp.Fail(CodeBodyTooLarge)
			errorJSON(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				"request body exceeds the %d-byte admission bound", tooBig.Limit)
			return false
		}
		dsp.Fail(CodeBadRequest)
		errorJSON(w, http.StatusBadRequest, CodeBadRequest, "bad request: %v", err)
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			dsp.Fail(CodeBodyTooLarge)
			errorJSON(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				"request body exceeds the %d-byte admission bound", tooBig.Limit)
			return false
		}
		dsp.Fail(CodeBadRequest)
		errorJSON(w, http.StatusBadRequest, CodeBadRequest,
			"bad request: trailing data after JSON body")
		return false
	}
	return true
}
