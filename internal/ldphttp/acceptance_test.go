package ldphttp

// Statistical acceptance tests for the serving path (ldptest.CheckServing):
// synthetic client populations run full HTTP rounds — randomize on the
// client, POST /batch, poll GET /estimate — and the served reconstruction
// must land within paper-level Wasserstein/KS distance of the truth. All
// rounds are seeded, so failures reproduce exactly.

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/ldptest"
	"repro/internal/metrics"
	"repro/internal/randx"
)

// Paper-level bounds for n ≈ 4–5k, ε = 1, d = 64: SW-EMS lands around
// W1 ≈ 0.01–0.02 on smooth unimodal inputs (Figure 2 is at n = 10^6, where
// it is far tighter); 0.05/0.12 leaves room for sampling noise while still
// failing loudly on any systematic serving bug (a uniform answer against
// Beta(5,2) truth has W1 ≈ 0.21).
const (
	acceptW1 = 0.05
	acceptKS = 0.12
)

func TestServingAcceptanceSingleStream(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: 10 * time.Millisecond})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	rep, err := ldptest.CheckServing(ts.URL,
		func(rng *randx.Rand) float64 { return rng.Beta(5, 2) },
		ldptest.ServingOptions{
			Epsilon: 1, Buckets: 64, Clients: 5000, Seed: 42,
			MaxW1: acceptW1, MaxKS: acceptKS,
		})
	t.Logf("single stream: N=%d W1=%.4f KS=%.4f", rep.N, rep.W1, rep.KS)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 5000 {
		t.Errorf("estimate covers %d reports, want 5000", rep.N)
	}
}

// TestServingAcceptanceMultiStream is the acceptance criterion of the
// multi-stream layer: two streams with different domains and budgets ingest
// concurrently, and each served estimate must match its own population — no
// cross-stream bleed, no lost reports, both within bounds.
func TestServingAcceptanceMultiStream(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: 10 * time.Millisecond})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	if err := s.CreateStream("age", StreamConfig{Epsilon: 1, Buckets: 64}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateStream("income", StreamConfig{Epsilon: 2, Buckets: 32}); err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		name string
		rep  ldptest.ServingReport
		err  error
	}
	results := make(chan outcome, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		// Ages: right-skewed Beta(5,2).
		rep, err := ldptest.CheckServing(ts.URL,
			func(rng *randx.Rand) float64 { return rng.Beta(5, 2) },
			ldptest.ServingOptions{
				Stream: "age", Epsilon: 1, Buckets: 64, Clients: 4000, Seed: 7,
				MaxW1: acceptW1, MaxKS: acceptKS,
			})
		results <- outcome{"age", rep, err}
	}()
	go func() {
		defer wg.Done()
		// Incomes: left-skewed Beta(2,6) — a distinctly different truth, at
		// a different budget and granularity, ingesting at the same time.
		rep, err := ldptest.CheckServing(ts.URL,
			func(rng *randx.Rand) float64 { return rng.Beta(2, 6) },
			ldptest.ServingOptions{
				Stream: "income", Epsilon: 2, Buckets: 32, Clients: 4000, Seed: 11,
				MaxW1: acceptW1, MaxKS: acceptKS,
			})
		results <- outcome{"income", rep, err}
	}()
	wg.Wait()
	close(results)

	for out := range results {
		t.Logf("%s: N=%d W1=%.4f KS=%.4f", out.name, out.rep.N, out.rep.W1, out.rep.KS)
		if out.err != nil {
			t.Errorf("stream %s: %v", out.name, out.err)
		}
		if out.rep.N != 4000 {
			t.Errorf("stream %s covers %d reports, want 4000", out.name, out.rep.N)
		}
	}
	// The populations must not have bled into each other.
	if n := s.StreamN("age"); n != 4000 {
		t.Errorf("age N = %d, want 4000", n)
	}
	if n := s.StreamN("income"); n != 4000 {
		t.Errorf("income N = %d, want 4000", n)
	}
	if n := s.StreamN(""); n != 0 {
		t.Errorf("default stream N = %d, want 0", n)
	}
}

// TestWindowServingAcceptanceDrift is the acceptance criterion of the
// windowed-collection subsystem: three cohorts with distinctly different
// distributions arrive in consecutive epochs of a mock-clock-driven stream,
// and window=last:1 must track each shifted cohort within the same W1/KS
// bounds the static serving check enforces — then every sealed epoch must
// keep answering for the cohort that lived in it.
func TestWindowServingAcceptanceDrift(t *testing.T) {
	clock := newMockClock()
	s := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: 5 * time.Millisecond, Clock: clock.Now})
	t.Cleanup(s.Close)
	if err := s.CreateStream("lat", StreamConfig{
		Epsilon: 1, Buckets: 64, Epoch: Duration(time.Minute), Retain: 6,
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	cohorts := []func(*randx.Rand) float64{
		func(rng *randx.Rand) float64 { return rng.Beta(5, 2) }, // right-skewed
		func(rng *randx.Rand) float64 { return rng.Beta(2, 6) }, // shifts left
		func(rng *randx.Rand) float64 { return rng.Beta(8, 8) }, // tightens to the middle
	}
	reports, err := ldptest.CheckWindowServing(ts.URL, cohorts, ldptest.WindowServingOptions{
		Stream: "lat", Epsilon: 1, Buckets: 64,
		ClientsPerEpoch: 4000, Seed: 99,
		MaxW1: acceptW1, MaxKS: acceptKS,
		AdvanceEpoch: func() error { clock.Advance(time.Minute); return nil },
	})
	for _, rep := range reports {
		t.Logf("epoch %d: live N=%d W1=%.4f KS=%.4f | sealed N=%d W1=%.4f KS=%.4f",
			rep.Epoch, rep.Live.N, rep.Live.W1, rep.Live.KS,
			rep.Sealed.N, rep.Sealed.W1, rep.Sealed.KS)
	}
	if err != nil {
		t.Fatal(err)
	}
	// The drift must be visible: cohort 0's truth is far from cohort 1's,
	// so last:1 estimates from adjacent epochs must differ far more than
	// the per-epoch error bound — i.e. the window really tracked the shift
	// instead of averaging over history.
	if len(reports) == 3 {
		w1 := ldptestWasserstein(reports[0].Live.Estimate, reports[1].Live.Estimate)
		if w1 < 2*acceptW1 {
			t.Errorf("adjacent-epoch estimates only W1=%.4f apart; window did not track the cohort shift", w1)
		}
	}
}

// ldptestWasserstein mirrors metrics.Wasserstein for test-local comparisons.
func ldptestWasserstein(p, q []float64) float64 {
	return metrics.Wasserstein(p, q)
}
