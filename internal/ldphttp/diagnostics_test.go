package ldphttp

// Coverage for the estimate-quality surface: the per-stream and fleet
// diagnostics endpoints (shape, filters, envelope discipline), the gzip
// content negotiation on /metrics, and the end-to-end drift story — a
// seeded cohort shift on one windowed stream raises a drift alert visible
// in /metrics, in the diagnostics JSON and through the fleet filter, while
// a stationary control stream stays quiet, and the alert clears again after
// enough quiet epochs.

import (
	"compress/gzip"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/randx"
	"repro/internal/telemetry"
)

func getDiagnostics(t *testing.T, baseURL, stream string) StreamDiagnostics {
	t.Helper()
	resp, _ := doReq(t, baseURL, "GET", "/v1/streams/"+stream+"/diagnostics", "")
	if resp.StatusCode != 200 {
		t.Fatalf("GET diagnostics(%s): %d", stream, resp.StatusCode)
	}
	resp2, err := http.Get(baseURL + "/v1/streams/" + stream + "/diagnostics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var d StreamDiagnostics
	if err := json.NewDecoder(resp2.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiagnosticsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 3; i++ {
		if resp, _ := doReq(t, ts.URL, "POST", "/v1/streams/default/report", `{"report": 0.5}`); resp.StatusCode != 200 {
			t.Fatalf("report %d: %d", i, resp.StatusCode)
		}
	}
	getFreshEstimate(t, ts.URL, 3)

	d := getDiagnostics(t, ts.URL, "default")
	if d.Stream != "default" || d.Mechanism != "sw" {
		t.Errorf("identity = %s/%s, want default/sw", d.Stream, d.Mechanism)
	}
	if !d.EMBased {
		t.Error("sw stream should be EM-based")
	}
	if d.Refreshes < 1 {
		t.Errorf("refreshes = %d, want >= 1", d.Refreshes)
	}
	if d.Convergence.Iterations < 1 {
		t.Errorf("iterations = %d, want >= 1", d.Convergence.Iterations)
	}
	if d.Users != 3 || d.PendingReports != 0 {
		t.Errorf("users/pending = %d/%d, want 3/0", d.Users, d.PendingReports)
	}
	if d.LastRefreshAgeSeconds < 0 {
		t.Errorf("refresh age = %v, want >= 0 after a refresh", d.LastRefreshAgeSeconds)
	}
	if d.Confidence.Level != 0.95 || d.Confidence.HalfWidth <= 0 {
		t.Errorf("confidence = %+v, want level 0.95 and a positive half-width", d.Confidence)
	}
	if !d.Confidence.Approximate {
		t.Error("sw confidence should be flagged approximate")
	}
	if d.Drift != nil {
		t.Error("unwindowed stream grew a drift block")
	}
	if d.WarmStart.ColdIterations < 1 {
		t.Errorf("cold iterations = %d, want >= 1", d.WarmStart.ColdIterations)
	}

	// The estimate quality gauges landed in the exposition.
	sc := scrape(t, ts.URL)
	if v, ok := sc.Value("ldp_estimate_ci_halfwidth", "stream=default"); !ok || v <= 0 {
		t.Errorf("ldp_estimate_ci_halfwidth{stream=default} = %v (present %v), want > 0", v, ok)
	}
	if v, ok := sc.Value("ldp_em_converged", "stream=default"); !ok || v != 1 {
		t.Errorf("ldp_em_converged{stream=default} = %v (present %v), want 1", v, ok)
	}
	if _, ok := sc.Value("ldp_estimate_loglik", "stream=default"); !ok {
		t.Error("ldp_estimate_loglik{stream=default} missing")
	}

	// The stream's links advertise the resource.
	var info StreamInfo
	resp, err := http.Get(ts.URL + "/v1/streams/default")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if info.Links.Diagnostics != "/v1/streams/default/diagnostics" {
		t.Errorf("links.diagnostics = %q", info.Links.Diagnostics)
	}

	// Envelope discipline: unknown stream 404s, wrong method 405s with Allow.
	if resp, env := doReq(t, ts.URL, "GET", "/v1/streams/nope/diagnostics", ""); resp.StatusCode != 404 || env.Error.Code != CodeUnknownStream {
		t.Errorf("unknown stream: %d %q", resp.StatusCode, env.Error.Code)
	}
	if resp, env := doReq(t, ts.URL, "POST", "/v1/streams/default/diagnostics", "{}"); resp.StatusCode != 405 ||
		env.Error.Code != CodeMethodNotAllowed || resp.Header.Get("Allow") != "GET" {
		t.Errorf("POST diagnostics: %d %q Allow=%q", resp.StatusCode, env.Error.Code, resp.Header.Get("Allow"))
	}
	if resp, env := doReq(t, ts.URL, "DELETE", "/v1/diagnostics", ""); resp.StatusCode != 405 || env.Error.Code != CodeMethodNotAllowed {
		t.Errorf("DELETE fleet diagnostics: %d %q", resp.StatusCode, env.Error.Code)
	}
}

func TestFleetDiagnosticsFilters(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.CreateStream("age", StreamConfig{Epsilon: 2, Buckets: 16, Mechanism: "oue"}); err != nil {
		t.Fatal(err)
	}

	fetch := func(query string) FleetDiagnostics {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/diagnostics" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET /v1/diagnostics%s: %d", query, resp.StatusCode)
		}
		var f FleetDiagnostics
		if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
			t.Fatal(err)
		}
		return f
	}

	if f := fetch(""); len(f.Streams) != 2 {
		t.Fatalf("unfiltered fleet = %d streams, want 2", len(f.Streams))
	}
	if f := fetch("?stream=age"); len(f.Streams) != 1 || f.Streams[0].Stream != "age" {
		t.Errorf("stream filter returned %+v", f.Streams)
	}
	if f := fetch("?mechanism=oue"); len(f.Streams) != 1 || f.Streams[0].Mechanism != "oue" {
		t.Errorf("mechanism filter returned %+v", f.Streams)
	}
	if f := fetch("?alerting=false"); len(f.Streams) != 2 {
		t.Errorf("alerting=false returned %d streams, want 2 (nothing alerts)", len(f.Streams))
	}
	if f := fetch("?alerting=true"); len(f.Streams) != 0 {
		t.Errorf("alerting=true returned %d streams, want 0", len(f.Streams))
	}
	if resp, env := doReq(t, ts.URL, "GET", "/v1/diagnostics?alerting=sideways", ""); resp.StatusCode != 400 || env.Error.Code != CodeBadRequest {
		t.Errorf("bad alerting filter: %d %q", resp.StatusCode, env.Error.Code)
	}
}

func TestMetricsGzipNegotiation(t *testing.T) {
	_, ts := newTestServer(t)
	// A transport with transparent decompression disabled shows the raw
	// negotiation result.
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	get := func(acceptEncoding string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("GET", ts.URL+"/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		if acceptEncoding != "" {
			req.Header.Set("Accept-Encoding", acceptEncoding)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := get("gzip")
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", resp.Header.Get("Content-Encoding"))
	}
	if !strings.Contains(resp.Header.Get("Vary"), "Accept-Encoding") {
		t.Errorf("Vary = %q, want Accept-Encoding", resp.Header.Get("Vary"))
	}
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := telemetry.ParseText(gz)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("gzipped exposition does not lint: %v", err)
	}
	if v, _ := sc.Value("ldp_up"); v != 1 {
		t.Errorf("ldp_up through gzip = %v, want 1", v)
	}

	// No opt-in, or an explicit opt-out, keeps the identity encoding.
	for _, enc := range []string{"", "identity", "gzip;q=0", "br"} {
		resp := get(enc)
		if ce := resp.Header.Get("Content-Encoding"); ce != "" {
			t.Errorf("Accept-Encoding %q got Content-Encoding %q, want identity", enc, ce)
		}
		if _, err := telemetry.ParseText(resp.Body); err != nil {
			t.Errorf("identity exposition (%q) does not lint: %v", enc, err)
		}
		resp.Body.Close()
	}

	// q-valued and listed forms still negotiate gzip.
	for _, enc := range []string{"gzip;q=0.5", "br, gzip", "GZIP"} {
		resp := get(enc)
		if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
			t.Errorf("Accept-Encoding %q got Content-Encoding %q, want gzip", enc, ce)
		}
		resp.Body.Close()
	}
}

// postShapedReports ingests n sw reports drawn from Beta(a, b) into stream.
func postShapedReports(t *testing.T, url, stream string, seed uint64, n int, a, b float64) {
	t.Helper()
	client := core.NewClient(core.Config{Epsilon: 1, Buckets: 32, Smoothing: true})
	rng := randx.New(seed)
	reports := make([]float64, n)
	for i := range reports {
		reports[i] = client.Report(rng.Beta(a, b), rng)
	}
	blob, _ := json.Marshal(map[string]any{"reports": reports})
	resp, err := http.Post(url+"/v1/streams/"+stream+"/batch", "application/json", strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
}

// waitDrift polls a stream's diagnostics until cond accepts the drift block.
func waitDrift(t *testing.T, baseURL, stream, what string, cond func(*diagnose.Drift) bool) StreamDiagnostics {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last StreamDiagnostics
	for {
		last = getDiagnostics(t, baseURL, stream)
		if last.Drift != nil && cond(last.Drift) {
			return last
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream %q never reached %s (last drift: %+v)", stream, what, last.Drift)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDriftAlertEndToEnd is the acceptance story: a seeded cohort shift on
// one windowed stream fires a drift alert observable in /metrics, in the
// diagnostics endpoint and through the fleet filter, while a stationary
// control stream ingesting the same volume stays quiet; once the shifted
// cohort stabilizes, the alert clears after ClearCount quiet epochs.
func TestDriftAlertEndToEnd(t *testing.T) {
	clock := newMockClock()
	s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: 5 * time.Millisecond, Clock: clock.Now})
	t.Cleanup(s.Close)
	for _, name := range []string{"shift", "control"} {
		if err := s.CreateStream(name, StreamConfig{
			Epsilon: 1, Buckets: 32, Epoch: Duration(time.Minute), Retain: 4,
		}); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const perEpoch = 1200
	epoch := func(e int, shiftA, shiftB float64) {
		postShapedReports(t, ts.URL, "shift", uint64(100+e), perEpoch, shiftA, shiftB)
		postShapedReports(t, ts.URL, "control", uint64(200+e), perEpoch, 5, 2)
		clock.Advance(time.Minute)
		waitRotation(t, s, "shift", e+1)
		waitRotation(t, s, "control", e+1)
	}

	// Epochs 0–1: both cohorts sample Beta(5, 2). Epoch 0 primes the drift
	// baseline, epoch 1 produces the first (quiet) score.
	epoch(0, 5, 2)
	epoch(1, 5, 2)
	d := waitDrift(t, ts.URL, "shift", "a first score", func(dr *diagnose.Drift) bool { return dr.EpochsScored >= 1 })
	if d.Drift.Alerting {
		t.Fatalf("stationary epochs already alert: %+v", d.Drift)
	}

	// Epoch 2: the shift cohort jumps to Beta(2, 5).
	epoch(2, 2, 5)
	d = waitDrift(t, ts.URL, "shift", "the drift alert", func(dr *diagnose.Drift) bool { return dr.Alerting })
	if d.Drift.AlertsTotal != 1 {
		t.Errorf("alerts_total = %d, want 1", d.Drift.AlertsTotal)
	}
	if d.Drift.W1 < 0.08 && d.Drift.KS < 0.2 {
		t.Errorf("alerting with sub-threshold scores: %+v", d.Drift)
	}

	// The alert is visible in the exposition, on this stream only.
	sc := scrape(t, ts.URL)
	if v, ok := sc.Value("ldp_drift_alerts_total", "stream=shift"); !ok || v != 1 {
		t.Errorf("ldp_drift_alerts_total{stream=shift} = %v (present %v), want 1", v, ok)
	}
	if v, _ := sc.Value("ldp_drift_alerts_total", "stream=control"); v != 0 {
		t.Errorf("ldp_drift_alerts_total{stream=control} = %v, want 0", v)
	}
	if w1, ok := sc.Value("ldp_drift_score", "stream=shift", "metric=w1"); !ok {
		t.Error("ldp_drift_score{stream=shift,metric=w1} missing")
	} else if ks, _ := sc.Value("ldp_drift_score", "stream=shift", "metric=ks"); w1 < 0.08 && ks < 0.2 {
		t.Errorf("exposed drift scores below both fire thresholds: w1=%v ks=%v", w1, ks)
	}

	// The control stream never alerted, and the fleet filter finds exactly
	// the alerting stream.
	if cd := getDiagnostics(t, ts.URL, "control"); cd.Drift == nil || cd.Drift.Alerting {
		t.Errorf("control drift = %+v, want quiet", cd.Drift)
	}
	resp, err := http.Get(ts.URL + "/v1/diagnostics?alerting=true")
	if err != nil {
		t.Fatal(err)
	}
	var fleet FleetDiagnostics
	json.NewDecoder(resp.Body).Decode(&fleet)
	resp.Body.Close()
	if len(fleet.Streams) != 1 || fleet.Streams[0].Stream != "shift" {
		t.Errorf("alerting fleet filter = %+v, want exactly [shift]", fleet.Streams)
	}

	// Epochs 3–5: the shifted cohort stabilizes on Beta(2, 5); three quiet
	// epochs clear the alert without a second raise.
	epoch(3, 2, 5)
	epoch(4, 2, 5)
	epoch(5, 2, 5)
	d = waitDrift(t, ts.URL, "shift", "the alert clearing", func(dr *diagnose.Drift) bool { return !dr.Alerting })
	if d.Drift.AlertsTotal != 1 {
		t.Errorf("alerts_total after clearing = %d, want still 1", d.Drift.AlertsTotal)
	}
	if d.Drift.EpochsScored < 5 {
		t.Errorf("epochs_scored = %d, want >= 5", d.Drift.EpochsScored)
	}
}
