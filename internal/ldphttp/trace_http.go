package ldphttp

// Request tracing: the HTTP face of the internal/trace flight recorder.
//
// Every engine route runs under a span — continued from an incoming W3C
// traceparent header when the client sent one, started fresh otherwise —
// with per-stage child spans (decode, bucketize, ingest, absorb, ...)
// recorded by the handlers. The per-report hot path is sampled (one atomic
// add per untraced request, TraceConfig.SampleEvery); everything else is
// always-on. Sampled ingest trace IDs additionally land in a small
// per-stream ring so the federation pusher can forward them
// (X-LDP-Trace-Link) and the root can mint link markers — that is how a
// trace stamped by repro.Reporter stays findable at the root even though
// the reports themselves dissolve into aggregated histogram deltas.
//
// The flight recorder is served on GET /v1/debug/traces — deliberately NOT
// part of Handler(): DebugHandler() is a separate surface for a separate
// listener (cmd/ldpserver -debug-addr), so trace data is never exposed on
// the public port.

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// TraceConfig bundles the tracing knobs of OpsConfig. The zero value is
// tracing on with the defaults of package trace: a 4096-span flight
// recorder sampling 1 in 128 header-less report requests.
type TraceConfig struct {
	// Disable turns the tracing subsystem off entirely: no spans, no
	// flight recorder, /v1/debug/traces answers 404.
	Disable bool
	// Capacity is the flight recorder's span count (0 = 4096).
	Capacity int
	// SampleEvery traces 1 in SampleEvery header-less /report and /batch
	// requests (0 = 128, 1 = every request, negative = none). Requests
	// carrying a sampled traceparent header, and every engine/federation
	// span, are always recorded.
	SampleEvery int
	// SlowRequest, when positive, logs one slow_request line (through
	// the structured access logger) for every request at least this slow,
	// carrying the request ID and, when sampled, the trace ID.
	SlowRequest time.Duration
}

// traceMode is a route's tracing policy.
type traceMode int

const (
	// traceOff: never trace (operational endpoints — probes and scrapes
	// would otherwise flood the recorder).
	traceOff traceMode = iota
	// traceSampled: continue a sampled traceparent, else trace 1 in
	// SampleEvery (the per-report ingest hot path).
	traceSampled
	// traceAlways: continue a sampled traceparent, else start a fresh
	// trace (engine and federation routes).
	traceAlways
)

// spanOf recovers the request's span from the middleware's statusWriter.
// Handlers receive the wrapped writer, so this is a single type assertion;
// it returns nil (trace nothing) for unsampled requests and bare writers.
func spanOf(w http.ResponseWriter) *trace.Span {
	if sw, ok := w.(*statusWriter); ok {
		return sw.span
	}
	return nil
}

// Request IDs: a boot-random prefix plus an atomic counter, generated
// lazily — only when an error envelope or a log line actually needs one —
// so the 2xx hot path never pays for them.
var (
	reqIDPrefix = func() string {
		var b [4]byte
		v := rand.Uint32()
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return hex.EncodeToString(b[:])
	}()
	reqIDCounter atomic.Uint64
)

// requestID returns the request's ID, minting one on first use and echoing
// it in the X-Request-Id response header (best effort: the header only
// lands when minting happens before the status line is written).
func (sw *statusWriter) requestID() string {
	if sw.reqID == "" {
		sw.reqID = fmt.Sprintf("%s-%06x", reqIDPrefix, reqIDCounter.Add(1))
		if sw.status == 0 {
			sw.Header().Set("X-Request-Id", sw.reqID)
		}
	}
	return sw.reqID
}

// maxTraceLinks bounds both the per-stream ring of recent sampled ingest
// trace IDs and the number of IDs one federation push forwards.
const maxTraceLinks = 8

// traceLinkRing is a small bounded ring of recent sampled ingest trace IDs,
// one per stream. The federation pusher drains it on each push and forwards
// the IDs in the X-LDP-Trace-Link header; delivery is best-effort
// diagnostics (a failed push drops the drained IDs), never load-bearing.
type traceLinkRing struct {
	mu  sync.Mutex
	ids []string
}

func (l *traceLinkRing) add(id string) {
	if id == "" {
		return
	}
	l.mu.Lock()
	if len(l.ids) >= maxTraceLinks {
		copy(l.ids, l.ids[1:])
		l.ids = l.ids[:maxTraceLinks-1]
	}
	l.ids = append(l.ids, id)
	l.mu.Unlock()
}

func (l *traceLinkRing) drain() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ids) == 0 {
		return nil
	}
	out := l.ids
	l.ids = nil
	return out
}

// drainTraceLinks collects recent sampled ingest trace IDs across every
// stream for the federation pusher, capped at maxTraceLinks.
func (s *Server) drainTraceLinks() []string {
	var out []string
	for _, st := range s.streamList() {
		for _, id := range st.links.drain() {
			if len(out) < maxTraceLinks {
				out = append(out, id)
			}
		}
	}
	return out
}

// parseTraceLinks splits an X-LDP-Trace-Link header value (comma-separated
// 32-hex trace IDs), dropping anything malformed, capped at maxTraceLinks.
func parseTraceLinks(h string) []string {
	if h == "" {
		return nil
	}
	var out []string
	for _, id := range strings.Split(h, ",") {
		id = strings.TrimSpace(id)
		if len(id) != 32 {
			continue
		}
		if _, err := hex.DecodeString(id); err != nil {
			continue
		}
		out = append(out, strings.ToLower(id))
		if len(out) == maxTraceLinks {
			break
		}
	}
	return out
}

// logSlow writes the threshold-gated slow-request line through the
// structured access logger: the one line an operator greps for when the
// latency histogram shows a tail, carrying the IDs that lead to the trace.
func (s *Server) logSlow(r *http.Request, sw *statusWriter, endpoint string, dur time.Duration) {
	if s.accessLog == nil {
		return
	}
	ts := time.Now().UTC().Format(time.RFC3339Nano)
	traceID := sw.span.TraceID()
	var line string
	if s.logJSON {
		b, err := json.Marshal(map[string]any{
			"ts":       ts,
			"slow":     true,
			"endpoint": endpoint,
			"method":   r.Method,
			"status":   sw.status,
			"dur_ms":   float64(dur.Microseconds()) / 1000,
			"req_id":   sw.requestID(),
			"trace":    traceID,
		})
		if err != nil {
			return
		}
		line = string(b) + "\n"
	} else {
		line = fmt.Sprintf("ts=%s slow=true endpoint=%q method=%s status=%d dur_ms=%.3f req_id=%s trace=%s\n",
			ts, endpoint, r.Method, sw.status, float64(dur.Microseconds())/1000, sw.requestID(), traceID)
	}
	s.logMu.Lock()
	s.accessLog.Write([]byte(line))
	s.logMu.Unlock()
}

// DebugTracesResponse is the JSON shape of GET /v1/debug/traces.
type DebugTracesResponse struct {
	// Capacity is the flight recorder's span capacity; Recorded how many
	// spans were ever recorded (min(Recorded, Capacity) are still held).
	Capacity int    `json:"capacity"`
	Recorded uint64 `json:"recorded"`
	// Spans are the matching records, oldest first.
	Spans []trace.Record `json:"spans"`
	// Exemplars are the most recent trace-annotated observations of the
	// request-duration histogram, keyed by endpoint — the bridge from a
	// latency tail on /metrics to a trace ID queryable here.
	Exemplars map[string]telemetry.Exemplar `json:"exemplars,omitempty"`
}

// DebugHandler returns the diagnostics surface: GET /v1/debug/traces with
// stream/route/trace/min_duration/limit filters. It is intentionally not
// part of Handler() — bind it (and pprof) on a separate private listener
// (cmd/ldpserver -debug-addr), never on the public port.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/debug/traces", s.handleDebugTraces)
	return mux
}

// handleDebugTraces serves the flight recorder. Filters (all optional,
// conjunctive): stream=<name>, route=<template> (matches the trace's
// "http <template>" root span and its children by trace), trace=<32hex>,
// min_duration=<Go duration>, limit=<n> (most recent n after filtering).
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, r, http.MethodGet)
		return
	}
	t := s.tracer
	if t == nil {
		errorJSON(w, http.StatusNotFound, CodeNotFound, "tracing is disabled on this server")
		return
	}
	q := r.URL.Query()
	var minDur time.Duration
	if raw := q.Get("min_duration"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil {
			errorJSON(w, http.StatusBadRequest, CodeBadRequest, "bad min_duration %q: %v", raw, err)
			return
		}
		minDur = d
	}
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		if _, err := fmt.Sscanf(raw, "%d", &limit); err != nil || limit < 0 {
			errorJSON(w, http.StatusBadRequest, CodeBadRequest, "bad limit %q (want a non-negative integer)", raw)
			return
		}
	}
	streamF := q.Get("stream")
	traceF := strings.ToLower(q.Get("trace"))
	routeF := q.Get("route")

	recs := t.Snapshot()
	// A route filter selects whole traces whose root span is "http <route>".
	var routeTraces map[string]bool
	if routeF != "" {
		routeTraces = make(map[string]bool)
		stage := "http " + routeF
		for _, rec := range recs {
			if rec.Stage == stage {
				routeTraces[rec.TraceID] = true
			}
		}
	}
	out := recs[:0]
	for _, rec := range recs {
		if streamF != "" && rec.Stream != streamF {
			continue
		}
		if traceF != "" && rec.TraceID != traceF {
			continue
		}
		if routeTraces != nil && !routeTraces[rec.TraceID] {
			continue
		}
		if rec.Duration < minDur {
			continue
		}
		out = append(out, rec)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	resp := DebugTracesResponse{Capacity: t.Capacity(), Recorded: t.Recorded(), Spans: out}
	if m := s.metrics; m != nil {
		if ex := m.reqDur.Exemplars(); len(ex) > 0 {
			resp.Exemplars = ex
		}
	}
	writeJSON(w, resp)
}
