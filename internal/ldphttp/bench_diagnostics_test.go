package ldphttp

// Benchmarks for the observability additions: the diagnostics bookkeeping
// riding on the refresh path (the <5% overhead contract), and the /metrics
// scrape at fleet scale, identity vs gzip.

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/diagnose"
)

// BenchmarkRefreshWithDiagnostics is the full forced-refresh path of one
// 2000-report stream — EM reconstruction, publication, and the diagnostics
// bookkeeping (ObserveRefresh + quality gauge writes) this PR added. The
// bookkeeping itself is measured in isolation by
// BenchmarkDiagnosticsBookkeeping; the ratio of the two is the refresh-path
// overhead.
func BenchmarkRefreshWithDiagnostics(b *testing.B) {
	s := NewServer(Config{Epsilon: 1, Buckets: 256, RefreshInterval: time.Hour})
	defer s.Close()
	st := s.lookup(DefaultStream)
	for r := 0; r < 2000; r++ {
		st.add((r * 37) % 256)
	}
	st.mustRefresh.Store(true)
	s.refreshStream(st) // cold reconstruction outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.mustRefresh.Store(true)
		s.refreshStream(st)
	}
}

// BenchmarkDiagnosticsBookkeeping is the per-refresh diagnostics cost alone:
// one ObserveRefresh plus the Snapshot a diagnostics poll would take.
func BenchmarkDiagnosticsBookkeeping(b *testing.B) {
	tr := diagnose.NewTracker(diagnose.TrackerConfig{
		Mechanism: "sw", Epsilon: 1, Buckets: 256, EMBased: true,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ObserveRefresh(diagnose.Refresh{
			Iterations: 12, LogLikelihood: -15000, LastDelta: 0.004,
			Converged: true, Warm: true, Users: 2000,
		})
		_ = tr.Snapshot(0)
	}
}

// BenchmarkScrapeMetrics64Streams renders the /metrics exposition of a
// 64-stream fleet through the full HTTP handler, identity vs gzip.
func BenchmarkScrapeMetrics64Streams(b *testing.B) {
	s := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: time.Hour})
	defer s.Close()
	for i := 0; i < 63; i++ {
		if err := s.CreateStream(fmt.Sprintf("s%02d", i), StreamConfig{Epsilon: 1, Buckets: 64}); err != nil {
			b.Fatal(err)
		}
	}
	for _, st := range s.streamList() {
		for r := 0; r < 100; r++ {
			st.add(r % 64)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}

	for _, enc := range []string{"identity", "gzip"} {
		b.Run(enc, func(b *testing.B) {
			var wire, decoded int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req, err := http.NewRequest("GET", ts.URL+"/metrics", nil)
				if err != nil {
					b.Fatal(err)
				}
				req.Header.Set("Accept-Encoding", enc)
				resp, err := client.Do(req)
				if err != nil {
					b.Fatal(err)
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					b.Fatal(err)
				}
				wire = int64(len(body))
				decoded = wire
				if enc == "gzip" {
					if resp.Header.Get("Content-Encoding") != "gzip" {
						b.Fatal("gzip not negotiated")
					}
					gz, err := gzip.NewReader(bytes.NewReader(body))
					if err != nil {
						b.Fatal(err)
					}
					plain, err := io.ReadAll(gz)
					if err != nil {
						b.Fatal(err)
					}
					decoded = int64(len(plain))
				}
			}
			b.ReportMetric(float64(wire), "wire-B/op")
			b.ReportMetric(float64(decoded), "exposition-B/op")
		})
	}
}
