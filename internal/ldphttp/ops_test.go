package ldphttp

// Coverage for the operational surface: the /metrics exposition (linted
// through the telemetry parser), the health/readiness probes, the uniform
// error envelope across every endpoint and failure mode, the v1 tree vs the
// deprecated flat aliases, admission control, and the chaos property the
// whole PR exists for — an overloaded collector sheds, it never stalls.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/federate"
	"repro/internal/sw"
	"repro/internal/telemetry"
)

// envelope is the uniform non-2xx body.
type envelope struct {
	Error struct {
		Code         string `json:"code"`
		Message      string `json:"message"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	} `json:"error"`
}

// doReq fires one request and decodes the envelope (zero-valued on 2xx).
func doReq(t *testing.T, baseURL, method, path, body string) (*http.Response, envelope) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, baseURL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob := new(bytes.Buffer)
	blob.ReadFrom(resp.Body)
	var env envelope
	if resp.StatusCode >= 300 {
		if err := json.Unmarshal(blob.Bytes(), &env); err != nil {
			t.Fatalf("%s %s: %d with a non-envelope body %q: %v", method, path, resp.StatusCode, blob.Bytes(), err)
		}
	}
	return resp, env
}

// scrape fetches and lints /metrics through the exposition parser.
func scrape(t *testing.T, baseURL string) *telemetry.Scrape {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics Content-Type = %q", ct)
	}
	sc, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not lint: %v", err)
	}
	return sc
}

// TestEnvelopeMatrix drives every endpoint family through its failure modes
// and demands the same envelope shape — a stable machine-readable code, a
// human message — plus the status each mode owns.
func TestEnvelopeMatrix(t *testing.T) {
	s := NewServer(Config{
		Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour,
		Federation: FederationConfig{Accept: true},
		Ops:        OpsConfig{MaxBodyBytes: 2 << 10},
	})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if err := s.CreateStream("age", StreamConfig{Epsilon: 2, Buckets: 16}); err != nil {
		t.Fatal(err)
	}
	ghostPush, err := federate.EncodePush("e1", 1, []federate.StreamDelta{{
		Stream: "ghost",
		Fingerprint: federate.Fingerprint{Mechanism: "sw", Epsilon: 1, Buckets: 8,
			OutputBuckets: 8, Bandwidth: sw.BOpt(1)},
		Epochs: []federate.EpochDelta{{Epoch: 0, N: 1, Counts: []uint64{1, 0, 0, 0, 0, 0, 0, 0}}},
	}})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"v1 unknown stream", "GET", "/v1/streams/nope/estimate", "", 404, CodeUnknownStream},
		{"v1 delete unknown", "DELETE", "/v1/streams/nope", "", 404, CodeUnknownStream},
		{"legacy unknown stream", "GET", "/estimate?stream=nope", "", 404, CodeUnknownStream},
		{"malformed JSON", "POST", "/v1/streams/default/report", `{not json`, 400, CodeBadRequest},
		{"legacy malformed JSON", "POST", "/report", `{not json`, 400, CodeBadRequest},
		{"invalid report", "POST", "/v1/streams/default/report", `{"report": [1, 2]}`, 400, CodeBadRequest},
		{"empty batch", "POST", "/v1/streams/default/batch", `{"reports": []}`, 400, CodeBadRequest},
		{"stream mismatch", "POST", "/v1/streams/age/report", `{"stream": "default", "report": 0.5}`, 400, CodeStreamMismatch},
		{"declare conflict", "POST", "/v1/streams", `{"name": "age", "epsilon": 3, "buckets": 16}`, 409, CodeStreamConflict},
		{"estimate before reports", "GET", "/v1/streams/age/estimate", "", 409, CodeNoReports},
		{"window on unwindowed", "GET", "/v1/streams/age/estimate?window=last:2", "", 400, CodeNotWindowed},
		{"method not allowed", "PUT", "/v1/streams", "", 405, CodeMethodNotAllowed},
		{"v1 item method", "POST", "/v1/streams/age", "", 405, CodeMethodNotAllowed},
		{"no such route", "GET", "/nope", "", 404, CodeNotFound},
		{"v1 deep nesting", "GET", "/v1/streams/age/estimate/extra", "", 404, CodeNotFound},
		{"v1 unknown action", "GET", "/v1/streams/age/frobnicate", "", 404, CodeNotFound},
		{"body too large", "POST", "/v1/streams/default/report", `{"report": [` + strings.Repeat("1,", 4096) + `1]}`, 413, CodeBodyTooLarge},
		{"federation unknown stream", "POST", "/federation/push", string(ghostPush), 409, federate.ReasonUnknownStream},
		{"federation malformed", "POST", "/federation/push", `{not json`, 400, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, env := doReq(t, ts.URL, tc.method, tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("%s %s: status %d, want %d (envelope %+v)", tc.method, tc.path, resp.StatusCode, tc.wantStatus, env)
			}
			if env.Error.Code != tc.wantCode {
				t.Errorf("%s %s: code %q, want %q", tc.method, tc.path, env.Error.Code, tc.wantCode)
			}
			if env.Error.Message == "" {
				t.Errorf("%s %s: envelope carries no message", tc.method, tc.path)
			}
		})
	}
}

// TestRateLimitEnvelope covers the 429 modes: the global admission tier and
// the per-edge federation tier, each with an honest Retry-After.
func TestRateLimitEnvelope(t *testing.T) {
	s := NewServer(Config{
		Epsilon: 1, Buckets: 16, RefreshInterval: time.Hour,
		Federation: FederationConfig{Accept: true, AutoDeclare: true},
		Ops:        OpsConfig{RateLimit: 0.001, RateBurst: 2, EdgeRateLimit: 0.001, EdgeRateBurst: 1},
	})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Burst 2: two requests pass, the third sheds with ~1000s to wait.
	counts := []uint64{1, 0, 0, 0, 0, 0, 0, 0}
	push := func(seq int64) string {
		blob, err := federate.EncodePush("e1", seq, []federate.StreamDelta{{
			Stream: "s",
			Fingerprint: federate.Fingerprint{Mechanism: "sw", Epsilon: 1, Buckets: 8,
				OutputBuckets: 8, Bandwidth: sw.BOpt(1)},
			Epochs: []federate.EpochDelta{{Epoch: 0, N: 1, Counts: counts}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	if resp, _ := doReq(t, ts.URL, "POST", "/federation/push", push(1)); resp.StatusCode != 200 {
		t.Fatalf("first push: %d", resp.StatusCode)
	}
	// Second push: past the edge bucket (burst 1) but within the global
	// bucket (burst 2) — the 429 must come from the edge tier.
	resp, env := doReq(t, ts.URL, "POST", "/federation/push", push(2))
	if resp.StatusCode != http.StatusTooManyRequests || env.Error.Code != CodeRateLimited {
		t.Fatalf("edge-tier push: %d %+v, want 429 rate_limited", resp.StatusCode, env)
	}
	if env.Error.RetryAfterMS <= 0 {
		t.Fatalf("429 without retry_after_ms: %+v", env)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	// Third request: the global bucket (2 tokens, both consumed) sheds.
	resp, env = doReq(t, ts.URL, "POST", "/report", `{"report": 0.5}`)
	if resp.StatusCode != http.StatusTooManyRequests || env.Error.Code != CodeRateLimited {
		t.Fatalf("global-tier report: %d %+v, want 429 rate_limited", resp.StatusCode, env)
	}
	// The operational endpoints stay exempt while the server sheds.
	for _, path := range []string{"/metrics", "/healthz", "/readyz"} {
		if resp, _ := doReq(t, ts.URL, "GET", path, ""); resp.StatusCode != 200 {
			t.Errorf("GET %s during shedding: %d, want 200", path, resp.StatusCode)
		}
	}
	sc := scrape(t, ts.URL)
	if v, _ := sc.Value("ldp_shed_total", "endpoint=/federation/push", "scope=edge"); v != 1 {
		t.Errorf("edge shed counter = %v, want 1", v)
	}
	if v := sc.Counter("ldp_shed_total", "scope=global"); v < 1 {
		t.Errorf("global shed counter = %v, want >= 1", v)
	}
}

// TestMetricsExposition is the golden test for /metrics: the exposition
// lints, every expected family is declared with the right type, and the
// counters agree with the traffic that produced them.
func TestMetricsExposition(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.CreateStream("age", StreamConfig{Epsilon: 2, Buckets: 16, Mechanism: "oue"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if resp, _ := doReq(t, ts.URL, "POST", "/v1/streams/default/report", `{"report": 0.5}`); resp.StatusCode != 200 {
			t.Fatalf("report %d: %d", i, resp.StatusCode)
		}
	}
	getFreshEstimate(t, ts.URL, 3)

	sc := scrape(t, ts.URL)
	families := map[string]telemetry.Kind{
		"ldp_requests_total":                 telemetry.KindCounter,
		"ldp_request_duration_seconds":       telemetry.KindHistogram,
		"ldp_shed_total":                     telemetry.KindCounter,
		"ldp_reports_total":                  telemetry.KindCounter,
		"ldp_em_refresh_seconds":             telemetry.KindHistogram,
		"ldp_em_iterations":                  telemetry.KindHistogram,
		"ldp_em_refreshes_total":             telemetry.KindCounter,
		"ldp_em_refresh_queue_depth":         telemetry.KindGauge,
		"ldp_em_staleness_reports":           telemetry.KindGauge,
		"ldp_em_refresh_age_seconds":         telemetry.KindGauge,
		"ldp_epoch_rotations_total":          telemetry.KindCounter,
		"ldp_streams":                        telemetry.KindGauge,
		"ldp_snapshots_total":                telemetry.KindCounter,
		"ldp_snapshot_seconds":               telemetry.KindHistogram,
		"ldp_federation_absorbed_total":      telemetry.KindCounter,
		"ldp_federation_push_lag_seconds":    telemetry.KindGauge,
		"ldp_up":                             telemetry.KindGauge,
		"ldp_ready":                          telemetry.KindGauge,
		"ldp_healthy":                        telemetry.KindGauge,
		"ldp_scrape_duration_seconds":        telemetry.KindHistogram,
		"ldp_scrape_errors_total":            telemetry.KindCounter,
		"ldp_estimate_loglik":                telemetry.KindGauge,
		"ldp_estimate_ci_halfwidth":          telemetry.KindGauge,
		"ldp_em_converged":                   telemetry.KindGauge,
		"ldp_drift_score":                    telemetry.KindGauge,
		"ldp_drift_alerts_total":             telemetry.KindCounter,
		"ldp_telemetry_series":               telemetry.KindGauge,
		"ldp_telemetry_dropped_series_total": telemetry.KindCounter,
	}
	for name, kind := range families {
		fam, ok := sc.Families[name]
		if !ok {
			t.Errorf("family %s missing from the exposition", name)
			continue
		}
		if fam.Kind != kind {
			t.Errorf("family %s is a %s, want %s", name, fam.Kind, kind)
		}
		if fam.Help == "" {
			t.Errorf("family %s has no HELP", name)
		}
	}
	if v, ok := sc.Value("ldp_reports_total", "stream=default", "mechanism=sw"); !ok || v != 3 {
		t.Errorf("ldp_reports_total{stream=default} = %v (present %v), want 3", v, ok)
	}
	if v, _ := sc.Value("ldp_streams"); v != 2 {
		t.Errorf("ldp_streams = %v, want 2", v)
	}
	for _, probe := range []string{"ldp_up", "ldp_ready", "ldp_healthy"} {
		if v, _ := sc.Value(probe); v != 1 {
			t.Errorf("%s = %v, want 1", probe, v)
		}
	}
	// The EM refresh histogram observed at least the first reconstruction,
	// the iteration histogram observed its iteration count, and the refresh
	// was attributed to histogram growth.
	if v, _ := sc.Value("ldp_em_refresh_seconds_count", "stream=default"); v < 1 {
		t.Errorf("ldp_em_refresh_seconds_count{stream=default} = %v, want >= 1", v)
	}
	if v, _ := sc.Value("ldp_em_iterations_count", "stream=default"); v < 1 {
		t.Errorf("ldp_em_iterations_count{stream=default} = %v, want >= 1", v)
	}
	if v, _ := sc.Value("ldp_em_refreshes_total", "stream=default", "reason=growth"); v < 1 {
		t.Errorf("ldp_em_refreshes_total{stream=default,reason=growth} = %v, want >= 1", v)
	}
	// Staleness is zero right after a fresh estimate.
	if v, ok := sc.Value("ldp_em_staleness_reports", "stream=default"); !ok || v != 0 {
		t.Errorf("ldp_em_staleness_reports{stream=default} = %v, want 0", v)
	}
	// Requests were counted under stable route-template labels.
	if v, _ := sc.Value("ldp_requests_total", "endpoint=/v1/streams/{name}/report", "method=POST", "code=200"); v != 3 {
		t.Errorf("ldp_requests_total{endpoint=/v1/streams/{name}/report} = %v, want 3", v)
	}
	// Scrape self-metrics: the second exposition carries the first one's
	// duration observation and a zero error count.
	sc2 := scrape(t, ts.URL)
	if v, _ := sc2.Value("ldp_scrape_duration_seconds_count"); v < 1 {
		t.Errorf("ldp_scrape_duration_seconds_count = %v, want >= 1", v)
	}
	if v, ok := sc2.Value("ldp_scrape_errors_total"); !ok || v != 0 {
		t.Errorf("ldp_scrape_errors_total = %v (present %v), want 0", v, ok)
	}
}

// TestTelemetryDisabled covers the opt-out: no /metrics, no panics on the
// instrumented paths.
func TestTelemetryDisabled(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 16, RefreshInterval: time.Hour,
		Ops: OpsConfig{DisableTelemetry: true}})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if resp, _ := doReq(t, ts.URL, "POST", "/v1/streams/default/report", `{"report": 0.5}`); resp.StatusCode != 200 {
		t.Fatalf("report with telemetry disabled: %d", resp.StatusCode)
	}
	resp, env := doReq(t, ts.URL, "GET", "/metrics", "")
	if resp.StatusCode != 404 || env.Error.Code != CodeNotFound {
		t.Fatalf("GET /metrics with telemetry disabled: %d %+v, want 404 not_found", resp.StatusCode, env)
	}
	// The probes still work.
	if resp, _ := doReq(t, ts.URL, "GET", "/healthz", ""); resp.StatusCode != 200 {
		t.Fatalf("GET /healthz with telemetry disabled: %d", resp.StatusCode)
	}
}

// TestReadyzAwaitsRestore pins the readiness lifecycle: a server configured
// to await a snapshot restore fails /readyz (503 not_ready, with a
// Retry-After) until LoadSnapshot succeeds, while /healthz stays green the
// whole time.
func TestReadyzAwaitsRestore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	donor := NewServer(Config{Epsilon: 1, Buckets: 16, RefreshInterval: time.Hour})
	if err := donor.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	donor.Close()

	s := NewServer(Config{Epsilon: 1, Buckets: 16, RefreshInterval: time.Hour,
		Ops: OpsConfig{AwaitRestore: true}})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, env := doReq(t, ts.URL, "GET", "/readyz", "")
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != CodeNotReady {
		t.Fatalf("pre-restore /readyz: %d %+v, want 503 not_ready", resp.StatusCode, env)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("pre-restore /readyz carries no Retry-After")
	}
	if resp, _ := doReq(t, ts.URL, "GET", "/healthz", ""); resp.StatusCode != 200 {
		t.Errorf("pre-restore /healthz: %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}
	if v, _ := scrape(t, ts.URL).Value("ldp_ready"); v != 0 {
		t.Errorf("pre-restore ldp_ready = %v, want 0", v)
	}

	if err := s.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if resp, _ := doReq(t, ts.URL, "GET", "/readyz", ""); resp.StatusCode != 200 {
		t.Fatalf("post-restore /readyz: %d, want 200", resp.StatusCode)
	}
	if v, _ := scrape(t, ts.URL).Value("ldp_ready"); v != 1 {
		t.Errorf("post-restore ldp_ready = %v, want 1", v)
	}

	// MarkReady is the cold-start path (no snapshot on disk yet).
	cold := NewServer(Config{Epsilon: 1, Buckets: 16, RefreshInterval: time.Hour,
		Ops: OpsConfig{AwaitRestore: true}})
	t.Cleanup(cold.Close)
	if cold.Ready() {
		t.Fatal("AwaitRestore server started ready")
	}
	cold.MarkReady()
	if !cold.Ready() {
		t.Fatal("MarkReady did not flip readiness")
	}
}

// TestHealthzReportsStoppedEngine: closing the server turns /healthz into a
// 503 engine_stopped.
func TestHealthzReportsStoppedEngine(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 16, RefreshInterval: time.Hour})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if resp, _ := doReq(t, ts.URL, "GET", "/healthz", ""); resp.StatusCode != 200 {
		t.Fatalf("live /healthz: %d", resp.StatusCode)
	}
	s.Close()
	resp, env := doReq(t, ts.URL, "GET", "/healthz", "")
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != CodeEngineStopped {
		t.Fatalf("closed /healthz: %d %+v, want 503 engine_stopped", resp.StatusCode, env)
	}
}

// TestV1LegacyParity proves the flat aliases and the v1 tree share one
// implementation: same ingestion, same estimates, same config — the legacy
// routes merely add the deprecation headers.
func TestV1LegacyParity(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.CreateStream("age", StreamConfig{Epsilon: 2, Buckets: 16}); err != nil {
		t.Fatal(err)
	}
	// Ingest through both surfaces into one stream.
	if resp, _ := doReq(t, ts.URL, "POST", "/v1/streams/age/report", `{"report": 0.25}`); resp.StatusCode != 200 {
		t.Fatalf("v1 report: %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, ts.URL, "POST", "/report", `{"stream": "age", "report": 0.75}`); resp.StatusCode != 200 {
		t.Fatalf("legacy report: %d", resp.StatusCode)
	}
	getFreshStreamEstimate(t, ts.URL, "age", 2)

	// Byte-identical answers from both estimate routes.
	get := func(path string) ([]byte, http.Header) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		return buf.Bytes(), resp.Header
	}
	v1Est, v1Hdr := get("/v1/streams/age/estimate")
	legEst, legHdr := get("/estimate?stream=age")
	if !bytes.Equal(v1Est, legEst) {
		t.Errorf("estimate bodies diverge:\nv1:     %s\nlegacy: %s", v1Est, legEst)
	}
	v1Cfg, _ := get("/v1/streams/age/config")
	legCfg, _ := get("/config?stream=age")
	if !bytes.Equal(v1Cfg, legCfg) {
		t.Errorf("config bodies diverge:\nv1:     %s\nlegacy: %s", v1Cfg, legCfg)
	}

	// Deprecation headers only on the legacy surface.
	if legHdr.Get("Deprecation") != "true" {
		t.Errorf("legacy /estimate Deprecation = %q, want true", legHdr.Get("Deprecation"))
	}
	wantLink := `</v1/streams/{name}/estimate>; rel="successor-version"`
	if got := legHdr.Get("Link"); got != wantLink {
		t.Errorf("legacy /estimate Link = %q, want %q", got, wantLink)
	}
	if v1Hdr.Get("Deprecation") != "" || v1Hdr.Get("Link") != "" {
		t.Errorf("v1 estimate carries deprecation headers: Deprecation=%q Link=%q",
			v1Hdr.Get("Deprecation"), v1Hdr.Get("Link"))
	}

	// GET /v1/streams/{name} answers the full effective config plus links —
	// the divergence fix: no more guessing which fields each route carries.
	var info StreamInfo
	blob, _ := get("/v1/streams/age")
	if err := json.Unmarshal(blob, &info); err != nil {
		t.Fatal(err)
	}
	var cfg ConfigResponse
	if err := json.Unmarshal(v1Cfg, &cfg); err != nil {
		t.Fatal(err)
	}
	if info.Config != cfg {
		t.Errorf("stream info config block %+v != GET /config %+v", info.Config, cfg)
	}
	if info.Links.Self != "/v1/streams/age" || info.Links.Report != "/v1/streams/age/report" {
		t.Errorf("stream info links wrong: %+v", info.Links)
	}
	// The listing carries the same blocks.
	var list struct {
		Streams []StreamInfo `json:"streams"`
	}
	blob, _ = get("/v1/streams")
	if err := json.Unmarshal(blob, &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, si := range list.Streams {
		if si.Name == "age" {
			found = true
			if si.Config != cfg || si.Links != info.Links {
				t.Errorf("listing entry diverges from item: %+v", si)
			}
		}
	}
	if !found {
		t.Fatal("stream age missing from GET /v1/streams")
	}

	// v1 delete through the path, no query parameter.
	if resp, _ := doReq(t, ts.URL, "DELETE", "/v1/streams/age", ""); resp.StatusCode != 200 {
		t.Fatalf("v1 delete: %d", resp.StatusCode)
	}
	if resp, env := doReq(t, ts.URL, "GET", "/v1/streams/age", ""); resp.StatusCode != 404 || env.Error.Code != CodeUnknownStream {
		t.Fatalf("deleted stream still answers: %d %+v", resp.StatusCode, env)
	}
}

// TestShedsNeverStalls is the chaos property: a collector drowning in
// traffic sheds the excess with 429s — and keeps answering its probes and
// serving its metrics the whole time. Nothing blocks, nothing 500s.
func TestShedsNeverStalls(t *testing.T) {
	s := NewServer(Config{
		Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour,
		Ops: OpsConfig{RateLimit: 25, RateBurst: 50},
	})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const (
		workers   = 8
		perWorker = 50
		totalReqs = workers * perWorker
	)
	var ok, shed, other atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Post(ts.URL+"/report", "application/json",
					strings.NewReader(`{"report": 0.5}`))
				if err != nil {
					other.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						other.Add(1)
					} else {
						shed.Add(1)
					}
				default:
					other.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	// While the storm runs, the operational surface must answer promptly.
	probeDone := make(chan struct{})
	var slowProbe atomic.Int64
	go func() {
		defer close(probeDone)
		for i := 0; i < 20; i++ {
			for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
				start := time.Now()
				resp, err := http.Get(ts.URL + path)
				if err != nil || resp.StatusCode != http.StatusOK {
					slowProbe.Add(1)
					if err == nil {
						resp.Body.Close()
					}
					continue
				}
				resp.Body.Close()
				if time.Since(start) > 2*time.Second {
					slowProbe.Add(1)
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-probeDone

	if other.Load() != 0 {
		t.Fatalf("%d requests answered something other than 200 or enveloped 429", other.Load())
	}
	if got := ok.Load() + shed.Load(); got != totalReqs {
		t.Fatalf("accounted for %d of %d requests", got, totalReqs)
	}
	if ok.Load() == 0 {
		t.Fatal("everything shed: the burst capacity admitted nothing")
	}
	if shed.Load() == 0 {
		t.Skip("load too slow to trip the limiter on this machine")
	}
	if slowProbe.Load() != 0 {
		t.Fatalf("%d probe requests failed or stalled during the storm", slowProbe.Load())
	}
	// The shed counter agrees with what the clients saw.
	sc := scrape(t, ts.URL)
	if v, _ := sc.Value("ldp_shed_total", "endpoint=/report", "scope=global"); int64(v) != shed.Load() {
		t.Errorf("ldp_shed_total = %v, clients saw %d 429s", v, shed.Load())
	}
	if v, _ := sc.Value("ldp_requests_total", "endpoint=/report", "method=POST", "code=429"); int64(v) != shed.Load() {
		t.Errorf("ldp_requests_total{code=429} = %v, clients saw %d", v, shed.Load())
	}
	// Ingestion stayed exact for everything admitted.
	if n := s.N(); n != int(ok.Load()) {
		t.Errorf("server ingested %d reports, admitted %d", n, ok.Load())
	}
}

// TestAccessLog covers both structured formats.
func TestAccessLog(t *testing.T) {
	for _, jsonFmt := range []bool{false, true} {
		var buf bytes.Buffer
		var mu sync.Mutex
		s := NewServer(Config{Epsilon: 1, Buckets: 16, RefreshInterval: time.Hour,
			Ops: OpsConfig{AccessLog: &syncWriter{w: &buf, mu: &mu}, LogJSON: jsonFmt}})
		ts := httptest.NewServer(s.Handler())
		if resp, _ := doReq(t, ts.URL, "POST", "/v1/streams/default/report", `{"report": 0.5}`); resp.StatusCode != 200 {
			t.Fatalf("report: %d", resp.StatusCode)
		}
		ts.Close()
		s.Close()
		mu.Lock()
		line := strings.TrimSpace(buf.String())
		mu.Unlock()
		if jsonFmt {
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("access log line is not JSON: %q: %v", line, err)
			}
			if rec["method"] != "POST" || rec["status"] != float64(200) {
				t.Errorf("JSON access log fields wrong: %v", rec)
			}
		} else {
			if !strings.Contains(line, "method=POST") || !strings.Contains(line, "status=200") ||
				!strings.Contains(line, `path="/v1/streams/default/report"`) {
				t.Errorf("kv access log line wrong: %q", line)
			}
		}
	}
}

type syncWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (sw *syncWriter) Write(b []byte) (int, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.w.Write(b)
}

// BenchmarkTelemetryOverhead compares the /report hot path across the
// observability configurations; the CI contract is under 5% regression for
// both telemetry (instrumented vs disabled) and tracing at the default
// sampling rate (traced vs untraced). traced-always is the worst case —
// every request allocating and recording spans — and is informational.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, ops OpsConfig) {
		s := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: time.Hour,
			Ops: ops})
		defer s.Close()
		h := s.Handler()
		body := []byte(`{"report": 0.5}`)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/streams/default/report", bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("report answered %d", rec.Code)
			}
		}
	}
	// traced: telemetry plus tracing at the default 1-in-128 sampling — the
	// shipped configuration. untraced: telemetry on, tracing fully off.
	b.Run("traced", func(b *testing.B) { run(b, OpsConfig{}) })
	b.Run("untraced", func(b *testing.B) { run(b, OpsConfig{Trace: TraceConfig{Disable: true}}) })
	b.Run("traced-always", func(b *testing.B) { run(b, OpsConfig{Trace: TraceConfig{SampleEvery: 1}}) })
	b.Run("instrumented", func(b *testing.B) { run(b, OpsConfig{}) })
	b.Run("disabled", func(b *testing.B) {
		run(b, OpsConfig{DisableTelemetry: true, Trace: TraceConfig{Disable: true}})
	})
}
