package ldphttp

// Serving-path acceptance for the pluggable mechanism layer: streams
// declared with non-SW mechanisms must serve /estimate and /query end to
// end through the same HTTP surface, /config must echo the full effective
// configuration, snapshots must carry the mechanism through a restart
// bit-identically (payload version 3), and mixing mechanisms across streams
// must stay race-free under concurrent load.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ldptest"
	"repro/internal/randx"
	"repro/internal/snapshot"
)

// TestServingAcceptanceGRR drives seeded synthetic GRR clients through full
// HTTP rounds: categorical randomized response on the client, scalar wire
// reports, EM/EMS reconstruction through the structured flat+diagonal
// channel on the server.
func TestServingAcceptanceGRR(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: 10 * time.Millisecond})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	if err := s.CreateStream("os", StreamConfig{Epsilon: 4, Buckets: 32, Mechanism: "grr"}); err != nil {
		t.Fatal(err)
	}
	rep, err := ldptest.CheckServing(ts.URL,
		func(rng *randx.Rand) float64 { return rng.Beta(5, 2) },
		ldptest.ServingOptions{
			Stream: "os", Mechanism: "grr", Epsilon: 4, Buckets: 32,
			Clients: 5000, Seed: 21, MaxW1: acceptW1, MaxKS: acceptKS,
		})
	t.Logf("grr: N=%d W1=%.4f KS=%.4f", rep.N, rep.W1, rep.KS)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 5000 {
		t.Errorf("estimate covers %d reports, want 5000", rep.N)
	}
}

// TestServingAcceptanceOUE drives seeded synthetic OUE clients end to end:
// vector wire reports (set-bit indices), fan-out ingestion with the user
// marker cell, matrix-free debiased reconstruction.
func TestServingAcceptanceOUE(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: 10 * time.Millisecond})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	if err := s.CreateStream("lang", StreamConfig{Epsilon: 3, Buckets: 32, Mechanism: "oue"}); err != nil {
		t.Fatal(err)
	}
	rep, err := ldptest.CheckServing(ts.URL,
		func(rng *randx.Rand) float64 { return rng.Beta(2, 6) },
		ldptest.ServingOptions{
			Stream: "lang", Mechanism: "oue", Epsilon: 3, Buckets: 32,
			Clients: 5000, Seed: 23, MaxW1: acceptW1, MaxKS: acceptKS,
		})
	t.Logf("oue: N=%d W1=%.4f KS=%.4f", rep.N, rep.W1, rep.KS)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 5000 {
		t.Errorf("estimate covers %d reports, want 5000", rep.N)
	}
}

// TestMechanismStreamsEndToEnd is the acceptance criterion of the mechanism
// layer: for each of oue, grr, olh and auto, a stream declared over HTTP
// serves /estimate and /query, /config reports the full effective
// configuration, and the stream survives a snapshot restart (written as
// payload v3) with a bit-identical cached estimate.
func TestMechanismStreamsEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mech.snap")

	s1 := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: 10 * time.Millisecond})
	ts1 := httptest.NewServer(s1.Handler())

	streams := []struct {
		name     string
		declared string // mechanism as declared
		want     string // concrete mechanism after auto-resolution
		eps      float64
		buckets  int
	}{
		{"s-oue", "oue", "oue", 2, 32},
		{"s-grr", "grr", "grr", 2, 32},
		{"s-olh", "olh", "olh", 2, 32},
		// ε=2, d=64: 62 ≥ 3e² ≈ 22.2 — auto must resolve to olh.
		{"s-auto", "auto", "olh", 2, 64},
	}
	estimates := make(map[string][]float64)
	for _, tc := range streams {
		blob, _ := json.Marshal(map[string]any{
			"name": tc.name, "epsilon": tc.eps, "buckets": tc.buckets, "mechanism": tc.declared,
		})
		resp, err := http.Post(ts1.URL+"/streams", "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("declare %s: status %d", tc.name, resp.StatusCode)
		}

		// The full effective configuration comes back on /config.
		var cfg ConfigResponse
		getJSON(t, ts1.URL+"/config?stream="+tc.name, &cfg)
		if cfg.Mechanism != tc.want {
			t.Errorf("%s: /config mechanism = %q, want %q", tc.name, cfg.Mechanism, tc.want)
		}
		if cfg.Epsilon != tc.eps || cfg.Buckets != tc.buckets {
			t.Errorf("%s: /config = %+v", tc.name, cfg)
		}
		if cfg.OutputBuckets == 0 || cfg.Shards == 0 {
			t.Errorf("%s: /config missing effective values: %+v", tc.name, cfg)
		}

		// Full serving round, loose bounds (small n — this checks the
		// plumbing; the statistical acceptance lives in the dedicated
		// GRR/OUE tests above).
		rep, err := ldptest.CheckServing(ts1.URL,
			func(rng *randx.Rand) float64 { return rng.Beta(5, 2) },
			ldptest.ServingOptions{
				Stream: tc.name, Mechanism: tc.want, Epsilon: tc.eps, Buckets: tc.buckets,
				Clients: 3000, Seed: 31, MaxW1: 0.12, MaxKS: 0.25,
			})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rep.N != 3000 {
			t.Errorf("%s: estimate covers %d reports, want 3000", tc.name, rep.N)
		}
		estimates[tc.name] = rep.Estimate

		// /query serves analytics computed from the same reconstruction.
		var q struct {
			N      int       `json:"n"`
			Values []float64 `json:"values"`
		}
		getJSON(t, ts1.URL+"/query?stream="+tc.name+"&type=quantile&q=0.5", &q)
		if q.N != 3000 || len(q.Values) != 1 || q.Values[0] < 0 || q.Values[0] > 1 {
			t.Errorf("%s: /query answered %+v", tc.name, q)
		}
	}

	if err := s1.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.Close()

	// The snapshot is a v3 file carrying concrete mechanism ids.
	recs, err := snapshot.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]snapshot.Stream)
	for _, rec := range recs {
		byName[rec.Name] = rec
	}
	for _, tc := range streams {
		if got := byName[tc.name].Mechanism; got != tc.want {
			t.Errorf("snapshot %s mechanism = %q, want %q", tc.name, got, tc.want)
		}
	}

	// Restart: streams come back with their mechanisms and bit-identical
	// cached estimates.
	s2 := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: time.Hour})
	t.Cleanup(s2.Close)
	if err := s2.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	for _, tc := range streams {
		est := getFreshStreamEstimate(t, ts2.URL, tc.name, 3000)
		if !est.Restored {
			t.Errorf("%s: restored estimate not marked restored", tc.name)
		}
		if est.Mechanism != tc.want {
			t.Errorf("%s: restored estimate mechanism = %q, want %q", tc.name, est.Mechanism, tc.want)
		}
		want := estimates[tc.name]
		if len(est.Distribution) != len(want) {
			t.Fatalf("%s: restored %d buckets, want %d", tc.name, len(est.Distribution), len(want))
		}
		for i := range want {
			if est.Distribution[i] != want[i] {
				t.Fatalf("%s bucket %d: restored %v != original %v (not bit-identical)",
					tc.name, i, est.Distribution[i], want[i])
			}
		}
	}
	// Redeclaring a restored stream with a different mechanism must fail.
	if err := s2.CreateStream("s-oue", StreamConfig{Epsilon: 2, Buckets: 32, Mechanism: "grr"}); err == nil {
		t.Error("redeclaring s-oue as grr was accepted")
	}
}

// TestMechanismWireValidation: malformed vector reports are a 400, never a
// panic or a silent mis-ingest, and a bad report in a batch rejects the
// whole batch.
func TestMechanismWireValidation(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 16, Mechanism: "oue", RefreshInterval: time.Hour})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	for _, body := range []string{
		`{"report": [3, 3]}`,      // duplicate set bit
		`{"report": [16]}`,        // out of domain
		`{"report": [2.5]}`,       // non-integer
		`{"report": "zz"}`,        // not a number or array
		`{"report": [-1]}`,        // negative index
		`{"report": [5, 2]}`,      // not increasing
		`{"report": [0, 1, 2.7]}`, // trailing junk
	} {
		resp, err := http.Post(ts.URL+"/report", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST /report %s: status %d, want 400", body, resp.StatusCode)
		}
	}
	if n := s.StreamN(""); n != 0 {
		t.Fatalf("invalid reports were ingested: N = %d", n)
	}

	// A batch with one bad report must be rejected atomically.
	blob := []byte(`{"reports": [[1], [2], [99]]}`)
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad batch status %d, want 400", resp.StatusCode)
	}
	if n := s.StreamN(""); n != 0 {
		t.Fatalf("half-applied batch: N = %d, want 0", n)
	}

	// And a valid empty OUE report (no surviving bits) still counts.
	resp, err = http.Post(ts.URL+"/report", "application/json", bytes.NewReader([]byte(`{"report": []}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("empty oue report status %d, want 200", resp.StatusCode)
	}
	if n := s.StreamN(""); n != 1 {
		t.Errorf("empty oue report: N = %d, want 1", n)
	}
}

// TestStressMixedMechanisms mixes four mechanisms across four streams under
// concurrent ingestion, estimate/query pollers and live snapshots — the
// -race case of the mechanism layer.
func TestStressMixedMechanisms(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: 5 * time.Millisecond})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	snapPath := filepath.Join(t.TempDir(), "mix.snap")

	mechs := []string{"sw", "grr", "oue", "olh"}
	for _, name := range mechs {
		if err := s.CreateStream(name, StreamConfig{Epsilon: 2, Buckets: 16, Mechanism: name}); err != nil {
			t.Fatal(err)
		}
	}

	const (
		perStreamWorkers = 2
		perWorker        = 150
	)
	var wg sync.WaitGroup
	errs := make(chan error, len(mechs)*perStreamWorkers+8)

	for _, name := range mechs {
		for w := 0; w < perStreamWorkers; w++ {
			wg.Add(1)
			go func(mech string, id int) {
				defer wg.Done()
				client := core.NewClient(core.Config{Epsilon: 2, Buckets: 16, Mechanism: mech, Smoothing: true})
				rng := randx.New(uint64(1000 + id))
				for i := 0; i < perWorker; i++ {
					rep := client.Perturb(rng.Beta(5, 2), rng)
					var wire any = []float64(rep)
					if client.Mechanism().Scalar() {
						wire = rep[0]
					}
					blob, _ := json.Marshal(map[string]any{"stream": mech, "report": wire})
					resp, err := http.Post(ts.URL+"/report", "application/json", bytes.NewReader(blob))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("%s report status %d", mech, resp.StatusCode)
						return
					}
				}
			}(name, len(errs)+w)
		}
	}

	stop := make(chan struct{})
	var aux sync.WaitGroup
	// Estimate/query pollers across all streams.
	for i := 0; i < 2; i++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, name := range mechs {
					resp, err := http.Get(ts.URL + "/estimate?stream=" + name)
					if err == nil {
						resp.Body.Close()
					}
					resp, err = http.Get(ts.URL + "/query?stream=" + name + "&type=mean")
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}()
	}
	// Live snapshots while everything churns.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.SaveSnapshot(snapPath); err != nil {
				errs <- fmt.Errorf("snapshot: %w", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)
	aux.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	wantPerStream := perStreamWorkers * perWorker
	for _, name := range mechs {
		if n := s.StreamN(name); n != wantPerStream {
			t.Errorf("stream %s N = %d, want %d (lost or duplicated reports)", name, n, wantPerStream)
		}
	}
	// The final snapshot must restore every stream with its mechanism.
	if err := s.SaveSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour})
	t.Cleanup(s2.Close)
	if err := s2.LoadSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	for _, name := range mechs {
		if n := s2.StreamN(name); n != wantPerStream {
			t.Errorf("restored stream %s N = %d, want %d", name, n, wantPerStream)
		}
	}
	for _, info := range s2.Streams() {
		if info.Name == DefaultStream {
			continue
		}
		if info.Mechanism != info.Name {
			t.Errorf("restored stream %s carries mechanism %q", info.Name, info.Mechanism)
		}
	}
}

// getJSON decodes a 200 response into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
