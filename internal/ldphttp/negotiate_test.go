package ldphttp

// Tests for the request-parsing fixes and the wire-codec negotiation: the
// v1 router must resolve percent-escaped stream names exactly once, JSON
// bodies must be exactly one value, unknown Content-Types must 415 with the
// stable code, and the binary codec must land reports identically to JSON.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestV1EscapedStreamNameRoundTrip is the regression test for the
// double-unescape bug: a stream named `50%off` or `a b/c` must be
// creatable, and the self-links the server emits must resolve back to the
// same stream — previously the router unescaped r.URL.Path a second time,
// so the server's own links 404ed.
func TestV1EscapedStreamNameRoundTrip(t *testing.T) {
	for _, name := range []string{"50%off", "a b/c", "emoji✓", "q?x=1"} {
		t.Run(name, func(t *testing.T) {
			_, ts := newTestServer(t)
			resp := postJSON(t, ts.URL+"/v1/streams", map[string]any{"name": name, "epsilon": 1.0, "buckets": 16})
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("create %q status = %d", name, resp.StatusCode)
			}
			var info StreamCreateResponse
			if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
				t.Fatalf("decode create response: %v", err)
			}
			resp.Body.Close()
			if info.Stream != name {
				t.Fatalf("created stream %q, want %q", info.Stream, name)
			}

			// The emitted links must round-trip: GET self, POST report.
			resp, err := http.Get(ts.URL + info.Links.Self)
			if err != nil {
				t.Fatal(err)
			}
			var got StreamInfo
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatalf("decode GET %s: %v", info.Links.Self, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || got.Name != name {
				t.Fatalf("GET %s = %d stream %q, want 200 %q", info.Links.Self, resp.StatusCode, got.Name, name)
			}
			resp, err = http.Post(ts.URL+info.Links.Report, "application/json",
				strings.NewReader(`{"report": 0.5}`))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST %s = %d: %s", info.Links.Report, resp.StatusCode, body)
			}
		})
	}
}

// TestDecodeJSONRejectsTrailingGarbage: a body with trailing bytes after
// the first JSON value must answer 400 bad_request on every enveloped
// endpoint, not be silently half-parsed.
func TestDecodeJSONRejectsTrailingGarbage(t *testing.T) {
	_, ts := newTestServer(t)
	paths := []string{
		"/report", "/batch",
		"/v1/streams/default/report", "/v1/streams/default/batch",
		"/v1/streams/default/query",
	}
	bodies := []string{
		`{"report":0.5}garbage`,
		`{"report":0.5}{"report":0.5}`,
		`{"reports":[0.5]} []`,
	}
	for _, path := range paths {
		for _, body := range bodies {
			resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var env struct {
				Error ErrorBody `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("POST %s %q: undecodable error body: %v", path, body, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest || env.Error.Code != CodeBadRequest {
				t.Errorf("POST %s %q = %d code %q, want 400 %q",
					path, body, resp.StatusCode, env.Error.Code, CodeBadRequest)
			}
		}
		// A clean single value still parses (404/400 for semantic reasons is
		// fine; the decode layer must not reject it).
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(`{"report": 0.5}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusUnsupportedMediaType {
			t.Errorf("POST %s rejected application/json", path)
		}
	}
}

// TestContentTypeNegotiation: absent and application/json keep working,
// application/x-ldp-binary selects the binary codec, and anything else is
// a 415 with the stable unsupported_media_type code.
func TestContentTypeNegotiation(t *testing.T) {
	_, ts := newTestServer(t)

	post := func(ct, body string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/report", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	for _, ct := range []string{"", "application/json", "application/json; charset=utf-8"} {
		resp := post(ct, `{"report": 0.5}`)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("Content-Type %q status = %d, want 200", ct, resp.StatusCode)
		}
	}
	for _, ct := range []string{"text/plain", "application/xml", "application/json-x", "multipart/form-data; boundary"} {
		resp := post(ct, `{"report": 0.5}`)
		var env struct {
			Error ErrorBody `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("Content-Type %q: undecodable error body: %v", ct, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType || env.Error.Code != CodeUnsupportedMedia {
			t.Errorf("Content-Type %q = %d code %q, want 415 %q",
				ct, resp.StatusCode, env.Error.Code, CodeUnsupportedMedia)
		}
	}

	// Codec selection is counted in /metrics.
	resp := post(wire.ContentType, string(wire.EncodeReports([][]float64{{0.5}})))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary report status = %d", resp.StatusCode)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`ldp_codec_requests_total{endpoint="/report",codec="json"}`,
		`ldp_codec_requests_total{endpoint="/report",codec="binary"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestBinaryIngestMatchesJSON: the same reports shipped binary and JSON
// must land in identical histograms (the codec is representation, not
// semantics), across scalar and fan-out report shapes.
func TestBinaryIngestMatchesJSON(t *testing.T) {
	sJSON, tsJSON := newTestServer(t)
	sBin, tsBin := newTestServer(t)

	reports := [][]float64{{0.25}, {-0.1}, {0.97}, {0.5}, {0.125}}
	var jsonBody bytes.Buffer
	fmt.Fprintf(&jsonBody, `{"reports": [%s`, encodeJSONReport(reports[0]))
	for _, rep := range reports[1:] {
		fmt.Fprintf(&jsonBody, ", %s", encodeJSONReport(rep))
	}
	jsonBody.WriteString("]}")
	resp, err := http.Post(tsJSON.URL+"/v1/streams/default/batch", "application/json", &jsonBody)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON batch status = %d", resp.StatusCode)
	}

	resp, err = http.Post(tsBin.URL+"/v1/streams/default/batch", wire.ContentType,
		bytes.NewReader(wire.EncodeReports(reports)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary batch status = %d", resp.StatusCode)
	}

	hj, nj := histogramOf(t, sJSON, DefaultStream)
	hb, nb := histogramOf(t, sBin, DefaultStream)
	if nj != nb {
		t.Fatalf("report counts differ: json %d, binary %d", nj, nb)
	}
	if len(hj) != len(hb) {
		t.Fatalf("histogram widths differ: %d vs %d", len(hj), len(hb))
	}
	for i := range hj {
		if hj[i] != hb[i] {
			t.Fatalf("bucket %d differs: json %v, binary %v", i, hj[i], hb[i])
		}
	}

	// A multi-report binary frame on the single-report endpoint is a 400.
	resp, err = http.Post(tsBin.URL+"/v1/streams/default/report", wire.ContentType,
		bytes.NewReader(wire.EncodeReports(reports)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("multi-report frame on /report status = %d, want 400", resp.StatusCode)
	}

	// A corrupted frame fails its CRC cleanly.
	frame := wire.EncodeReports(reports)
	frame[len(frame)-5] ^= 0x40
	resp, err = http.Post(tsBin.URL+"/v1/streams/default/batch", wire.ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt frame status = %d, want 400", resp.StatusCode)
	}
}

func encodeJSONReport(rep []float64) string {
	b, _ := json.Marshal(rep)
	return string(b)
}

// histogramOf snapshots one stream's report histogram.
func histogramOf(t *testing.T, s *Server, name string) ([]float64, int) {
	t.Helper()
	st := s.lookup(name)
	if st == nil {
		t.Fatalf("stream %q missing", name)
	}
	counts, n := st.counts.Snapshot(nil)
	return counts, n
}

// TestPendingEstimateStaysJSON ensures the negotiation change did not leak
// into response encoding: responses are always JSON, whatever the request
// codec.
func TestPendingEstimateStaysJSON(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/streams/default/batch", wire.ContentType,
		bytes.NewReader(wire.EncodeReports([][]float64{{0.5}})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "application/json") {
		t.Fatalf("binary request answered Content-Type %q, want application/json", got)
	}
	var ack struct {
		Accepted int    `json:"accepted"`
		Stream   string `json:"stream"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatalf("decode ack: %v", err)
	}
	if ack.Accepted != 1 || ack.Stream != DefaultStream {
		t.Fatalf("ack = %+v", ack)
	}
	// Give the refresh engine a moment; not strictly needed, but keeps the
	// estimate path exercised under the binary ingest.
	time.Sleep(30 * time.Millisecond)
}
