package ldphttp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/randx"
)

// TestStressConcurrentIngestionWithEstimates hammers POST /report and
// POST /batch from many goroutines while other goroutines poll GET
// /estimate, then asserts that not a single report was lost and that the
// estimate catches up to the full population. Run with -race: every handler
// path, the striped accumulator and the background estimation engine are
// exercised concurrently.
func TestStressConcurrentIngestionWithEstimates(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: 5 * time.Millisecond})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const (
		reporters   = 6
		perReporter = 120
		batchers    = 4
		batches     = 8
		batchSize   = 50
		pollers     = 3
	)
	wantN := reporters*perReporter + batchers*batches*batchSize

	var (
		wg       sync.WaitGroup
		ingested atomic.Int64
		errs     = make(chan error, reporters+batchers+pollers)
	)

	for w := 0; w < reporters; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := core.NewClient(core.Config{Epsilon: 1, Buckets: 32, Smoothing: true})
			rng := randx.New(uint64(id + 1))
			for i := 0; i < perReporter; i++ {
				blob, _ := json.Marshal(map[string]float64{"report": client.Report(rng.Beta(5, 2), rng)})
				resp, err := http.Post(ts.URL+"/report", "application/json", bytes.NewReader(blob))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("report status %d", resp.StatusCode)
					return
				}
				ingested.Add(1)
			}
		}(w)
	}

	for w := 0; w < batchers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := core.NewClient(core.Config{Epsilon: 1, Buckets: 32, Smoothing: true})
			rng := randx.New(uint64(100 + id))
			for bi := 0; bi < batches; bi++ {
				reports := make([]float64, batchSize)
				for i := range reports {
					reports[i] = client.Report(rng.Beta(5, 2), rng)
				}
				blob, _ := json.Marshal(map[string]any{"reports": reports})
				resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(blob))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("batch status %d", resp.StatusCode)
					return
				}
				ingested.Add(batchSize)
			}
		}(w)
	}

	stopPolling := make(chan struct{})
	var pollWG sync.WaitGroup
	for w := 0; w < pollers; w++ {
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			for {
				select {
				case <-stopPolling:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/estimate")
				if err != nil {
					errs <- err
					return
				}
				var est EstimateResponse
				decErr := json.NewDecoder(resp.Body).Decode(&est)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if decErr != nil {
						errs <- decErr
						return
					}
					// A served estimate must never cover more reports
					// than have finished ingesting at read time...
					if est.N > wantN {
						errs <- fmt.Errorf("estimate N=%d exceeds population %d", est.N, wantN)
						return
					}
					// ...and must always be a full-granularity simplex
					// point.
					if len(est.Distribution) != 32 {
						errs <- fmt.Errorf("estimate has %d buckets", len(est.Distribution))
						return
					}
				case http.StatusConflict, http.StatusServiceUnavailable:
					// No reports yet / first estimate pending — legal
					// early on; the server answered instead of blocking.
				default:
					errs <- fmt.Errorf("estimate status %d", resp.StatusCode)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	wg.Wait()
	close(stopPolling)
	pollWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := s.N(); got != wantN {
		t.Fatalf("reports lost: N = %d, want %d", got, wantN)
	}
	est := getFreshEstimate(t, ts.URL, wantN)
	if !est.WarmStart && est.Iterations == 0 {
		t.Error("final estimate looks uncomputed")
	}
	var sum float64
	for _, p := range est.Distribution {
		if p < 0 {
			t.Fatalf("negative probability %v", p)
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("distribution sums to %v", sum)
	}
}

// TestStressMultiStreamSnapshotQuery exercises the full new surface under
// -race at once: concurrent ingestion into multiple named streams, /query
// pollers reading cached estimates, periodic SaveSnapshot of the live
// server, and stream declaration racing with everything else. Asserts no
// report is lost on any stream and a concurrent snapshot restores into a
// fresh server with every stream intact.
func TestStressMultiStreamSnapshotQuery(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: 5 * time.Millisecond})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	streams := []string{"age", "income", "sessions"}
	for _, name := range streams {
		if err := s.CreateStream(name, StreamConfig{Epsilon: 1, Buckets: 32}); err != nil {
			t.Fatal(err)
		}
	}

	const (
		perStreamWriters = 2
		batchesPerWriter = 6
		batchSize        = 40
		queryPollers     = 2
		snapshotters     = 2
		snapshotSaves    = 5
	)
	wantPerStream := perStreamWriters * batchesPerWriter * batchSize
	snapPath := filepath.Join(t.TempDir(), "stress.snap")

	var wg sync.WaitGroup
	errs := make(chan error, len(streams)*perStreamWriters+queryPollers+snapshotters+2)

	// Writers: every stream gets its own concurrent batchers.
	for si, name := range streams {
		for w := 0; w < perStreamWriters; w++ {
			wg.Add(1)
			go func(stream string, seed uint64) {
				defer wg.Done()
				client := core.NewClient(core.Config{Epsilon: 1, Buckets: 32, Smoothing: true})
				rng := randx.New(seed)
				for b := 0; b < batchesPerWriter; b++ {
					reports := make([]float64, batchSize)
					for i := range reports {
						reports[i] = client.Report(rng.Beta(5, 2), rng)
					}
					blob, _ := json.Marshal(map[string]any{"stream": stream, "reports": reports})
					resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(blob))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("batch to %s status %d", stream, resp.StatusCode)
						return
					}
				}
			}(name, uint64(si*100+w+1))
		}
	}

	stop := make(chan struct{})
	var bgWG sync.WaitGroup

	// Query pollers: rotate through streams and query types against the
	// cached estimates.
	for w := 0; w < queryPollers; w++ {
		bgWG.Add(1)
		go func(id int) {
			defer bgWG.Done()
			paths := []string{
				"/query?type=quantile&q=0.5,0.9",
				"/query?type=cdf&q=0.25,0.75",
				"/query?type=range&lo=0.2&hi=0.8",
				"/query?type=mean",
				"/query?type=topk&k=3",
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				stream := streams[i%len(streams)]
				resp, err := http.Get(ts.URL + paths[i%len(paths)] + "&stream=" + stream)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusConflict, http.StatusServiceUnavailable:
				default:
					errs <- fmt.Errorf("query on %s status %d", stream, resp.StatusCode)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	// Snapshotters: persist the live server repeatedly while it ingests.
	for w := 0; w < snapshotters; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			path := fmt.Sprintf("%s.%d", snapPath, id)
			for i := 0; i < snapshotSaves; i++ {
				if err := s.SaveSnapshot(path); err != nil {
					errs <- fmt.Errorf("snapshot %d: %w", i, err)
					return
				}
				time.Sleep(3 * time.Millisecond)
			}
		}(w)
	}

	// One goroutine races stream declarations with the traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			blob, _ := json.Marshal(map[string]any{
				"name": fmt.Sprintf("late-%d", i), "epsilon": 1.0, "buckets": 16})
			resp, err := http.Post(ts.URL+"/streams", "application/json", bytes.NewReader(blob))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("late stream create status %d", resp.StatusCode)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)
	bgWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, name := range streams {
		if n := s.StreamN(name); n != wantPerStream {
			t.Errorf("stream %s lost reports: N = %d, want %d", name, n, wantPerStream)
		}
		est := getFreshStreamEstimate(t, ts.URL, name, wantPerStream)
		if len(est.Distribution) != 32 {
			t.Errorf("stream %s estimate has %d buckets", name, len(est.Distribution))
		}
	}

	// A final snapshot of the fully-ingested server restores into a fresh
	// one with every stream and count intact.
	if err := s.SaveSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: 5 * time.Millisecond})
	t.Cleanup(s2.Close)
	if err := s2.LoadSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	for _, name := range streams {
		if n := s2.StreamN(name); n != wantPerStream {
			t.Errorf("restored stream %s N = %d, want %d", name, n, wantPerStream)
		}
	}
	if got, want := len(s2.Streams()), len(s.Streams()); got != want {
		t.Errorf("restored server has %d streams, want %d", got, want)
	}
}

// TestStressWindowRotation races epoch rotation against everything at once
// on a windowed stream: concurrent batch ingestion, window-query pollers
// cycling through selectors, live SaveSnapshot, and a mock clock advancing
// every few milliseconds so the engine rotates continuously. Run with
// -race. Retention exceeds the rotation count, so at the end not a single
// report may have been lost across all the epoch seals.
func TestStressWindowRotation(t *testing.T) {
	clock := newMockClock()
	s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Millisecond, Clock: clock.Now})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const (
		rotations        = 12
		writers          = 4
		batchesPerWriter = 10
		batchSize        = 50
		pollers          = 2
	)
	if err := s.CreateStream("win", StreamConfig{
		Epsilon: 1, Buckets: 32, Epoch: Duration(time.Minute), Retain: rotations + 2,
	}); err != nil {
		t.Fatal(err)
	}
	wantN := writers * batchesPerWriter * batchSize
	snapPath := filepath.Join(t.TempDir(), "winstress.snap")

	var wg sync.WaitGroup
	errs := make(chan error, writers+pollers+2)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := core.NewClient(core.Config{Epsilon: 1, Buckets: 32, Smoothing: true})
			rng := randx.New(uint64(id + 1))
			for b := 0; b < batchesPerWriter; b++ {
				reports := make([]float64, batchSize)
				for i := range reports {
					reports[i] = client.Report(rng.Beta(5, 2), rng)
				}
				blob, _ := json.Marshal(map[string]any{"stream": "win", "reports": reports})
				resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(blob))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("batch status %d", resp.StatusCode)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	stop := make(chan struct{})
	var bgWG sync.WaitGroup
	for w := 0; w < pollers; w++ {
		bgWG.Add(1)
		go func(id int) {
			defer bgWG.Done()
			selectors := []string{"last:1", "last:3", "last:100", "epochs:0..0"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/estimate?stream=win&window=" + selectors[i%len(selectors)])
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusConflict, http.StatusServiceUnavailable, http.StatusGone:
					// All legal while rotation races the poll.
				default:
					errs <- fmt.Errorf("window poll status %d", resp.StatusCode)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	// Snapshotter: persist the rotating server while it ingests.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := s.SaveSnapshot(snapPath); err != nil {
				errs <- fmt.Errorf("snapshot %d: %w", i, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// The clock: one rotation every few milliseconds of real time.
	for r := 0; r < rotations; r++ {
		clock.Advance(time.Minute)
		s.wake()
		time.Sleep(4 * time.Millisecond)
	}

	wg.Wait()
	close(stop)
	bgWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := s.StreamN("win"); got != wantN {
		t.Fatalf("reports lost across rotations: N = %d, want %d", got, wantN)
	}
	// The final full-window estimate covers the whole population.
	est := getFreshStreamEstimate(t, ts.URL, "win", wantN)
	if len(est.Distribution) != 32 {
		t.Fatalf("estimate has %d buckets", len(est.Distribution))
	}
	// And a final snapshot restores with every retained epoch intact.
	if err := s.SaveSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour, Clock: clock.Now})
	t.Cleanup(s2.Close)
	if err := s2.LoadSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	if got := s2.StreamN("win"); got != wantN {
		t.Fatalf("restored windowed stream N = %d, want %d", got, wantN)
	}
}

// TestStressRefreshPoolConcurrency drives the concurrent refresh scheduler
// with everything that can race it at once: many streams refreshed by a
// multi-worker pool, concurrent batch ingestion, epoch rotation on a mock
// clock, federation pushes absorbing into a dedicated stream (the forced
// refresh path), live SaveSnapshot, and estimate pollers reading published
// snapshots. Run with -race: the per-stream busy serialization, the queue,
// and the copy-on-publish contract are all on trial here.
func TestStressRefreshPoolConcurrency(t *testing.T) {
	clock := newMockClock()
	s := NewServer(Config{
		Epsilon: 1, Buckets: 32,
		RefreshInterval: 2 * time.Millisecond,
		RefreshWorkers:  4,
		Clock:           clock.Now,
		Federation:      FederationConfig{Accept: true},
	})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	plain := []string{"s0", "s1", "s2", "s3", "s4"}
	for _, name := range plain {
		if err := s.CreateStream(name, StreamConfig{Epsilon: 1, Buckets: 32}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CreateStream("win", StreamConfig{
		Epsilon: 1, Buckets: 32, Epoch: Duration(time.Minute), Retain: 16,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateStream("fed", StreamConfig{Epsilon: 1, Buckets: 32}); err != nil {
		t.Fatal(err)
	}

	const (
		writersPerStream = 2
		batchesPerWriter = 5
		batchSize        = 40
		pushes           = 10
		perPush          = 8
		rotations        = 8
	)
	ingestStreams := append(append([]string(nil), plain...), "win")
	wantPerStream := writersPerStream * batchesPerWriter * batchSize

	var wg sync.WaitGroup
	errs := make(chan error, len(ingestStreams)*writersPerStream+8)

	for si, name := range ingestStreams {
		for w := 0; w < writersPerStream; w++ {
			wg.Add(1)
			go func(stream string, seed uint64) {
				defer wg.Done()
				client := core.NewClient(core.Config{Epsilon: 1, Buckets: 32, Smoothing: true})
				rng := randx.New(seed)
				for b := 0; b < batchesPerWriter; b++ {
					reports := make([]float64, batchSize)
					for i := range reports {
						reports[i] = client.Report(rng.Beta(5, 2), rng)
					}
					blob, _ := json.Marshal(map[string]any{"stream": stream, "reports": reports})
					resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(blob))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("batch to %s status %d", stream, resp.StatusCode)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}(name, uint64(si*37+w+1))
		}
	}

	// Federation edge: sequential seq numbers, each push absorbing counts
	// into the fed stream and forcing its next refresh.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for seq := int64(1); seq <= pushes; seq++ {
			counts := make([]uint64, 32)
			for i := 0; i < perPush; i++ {
				counts[(int(seq)*7+i*5)%32]++
			}
			body := encodePush(t, s, "edge-1", seq, "fed", 0, counts)
			if _, status := pushBody(t, ts.URL, body); status != http.StatusOK {
				errs <- fmt.Errorf("push seq %d status %d", seq, status)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Snapshotter against the live, concurrently-refreshing server.
	snapPath := filepath.Join(t.TempDir(), "pool.snap")
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := s.SaveSnapshot(snapPath); err != nil {
				errs <- fmt.Errorf("snapshot %d: %w", i, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Estimate pollers across all streams.
	stop := make(chan struct{})
	var bgWG sync.WaitGroup
	for w := 0; w < 3; w++ {
		bgWG.Add(1)
		go func(id int) {
			defer bgWG.Done()
			all := append(append([]string(nil), ingestStreams...), "fed")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/estimate?stream=" + all[(i+id)%len(all)])
				if err != nil {
					errs <- err
					return
				}
				var est EstimateResponse
				decErr := json.NewDecoder(resp.Body).Decode(&est)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if decErr != nil {
						errs <- decErr
						return
					}
					if len(est.Distribution) != 32 {
						errs <- fmt.Errorf("estimate has %d buckets", len(est.Distribution))
						return
					}
					var sum float64
					for _, p := range est.Distribution {
						if p < 0 {
							errs <- fmt.Errorf("negative probability %v in published estimate", p)
							return
						}
						sum += p
					}
					if sum < 0.999 || sum > 1.001 {
						errs <- fmt.Errorf("published distribution sums to %v", sum)
						return
					}
				case http.StatusConflict, http.StatusServiceUnavailable:
				default:
					errs <- fmt.Errorf("estimate status %d", resp.StatusCode)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	// The clock: rotate the windowed stream while everything else runs.
	for r := 0; r < rotations; r++ {
		clock.Advance(time.Minute)
		s.wake()
		time.Sleep(3 * time.Millisecond)
	}

	wg.Wait()
	close(stop)
	bgWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, name := range ingestStreams {
		if n := s.StreamN(name); n != wantPerStream {
			t.Errorf("stream %s lost reports: N = %d, want %d", name, n, wantPerStream)
		}
	}
	if n := s.StreamN("fed"); n != pushes*perPush {
		t.Errorf("fed stream N = %d, want %d", n, pushes*perPush)
	}
	for _, name := range ingestStreams {
		est := getFreshStreamEstimate(t, ts.URL, name, wantPerStream)
		if len(est.Distribution) != 32 {
			t.Errorf("stream %s estimate has %d buckets", name, len(est.Distribution))
		}
	}
	est := getFreshStreamEstimate(t, ts.URL, "fed", pushes*perPush)
	if est.Iterations == 0 {
		t.Error("fed estimate looks uncomputed")
	}
}
