package ldphttp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/randx"
)

// TestStressConcurrentIngestionWithEstimates hammers POST /report and
// POST /batch from many goroutines while other goroutines poll GET
// /estimate, then asserts that not a single report was lost and that the
// estimate catches up to the full population. Run with -race: every handler
// path, the striped accumulator and the background estimation engine are
// exercised concurrently.
func TestStressConcurrentIngestionWithEstimates(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: 5 * time.Millisecond})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const (
		reporters   = 6
		perReporter = 120
		batchers    = 4
		batches     = 8
		batchSize   = 50
		pollers     = 3
	)
	wantN := reporters*perReporter + batchers*batches*batchSize

	var (
		wg       sync.WaitGroup
		ingested atomic.Int64
		errs     = make(chan error, reporters+batchers+pollers)
	)

	for w := 0; w < reporters; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := core.NewClient(core.Config{Epsilon: 1, Buckets: 32, Smoothing: true})
			rng := randx.New(uint64(id + 1))
			for i := 0; i < perReporter; i++ {
				blob, _ := json.Marshal(map[string]float64{"report": client.Report(rng.Beta(5, 2), rng)})
				resp, err := http.Post(ts.URL+"/report", "application/json", bytes.NewReader(blob))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("report status %d", resp.StatusCode)
					return
				}
				ingested.Add(1)
			}
		}(w)
	}

	for w := 0; w < batchers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := core.NewClient(core.Config{Epsilon: 1, Buckets: 32, Smoothing: true})
			rng := randx.New(uint64(100 + id))
			for bi := 0; bi < batches; bi++ {
				reports := make([]float64, batchSize)
				for i := range reports {
					reports[i] = client.Report(rng.Beta(5, 2), rng)
				}
				blob, _ := json.Marshal(map[string]any{"reports": reports})
				resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(blob))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("batch status %d", resp.StatusCode)
					return
				}
				ingested.Add(batchSize)
			}
		}(w)
	}

	stopPolling := make(chan struct{})
	var pollWG sync.WaitGroup
	for w := 0; w < pollers; w++ {
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			for {
				select {
				case <-stopPolling:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/estimate")
				if err != nil {
					errs <- err
					return
				}
				var est EstimateResponse
				decErr := json.NewDecoder(resp.Body).Decode(&est)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if decErr != nil {
						errs <- decErr
						return
					}
					// A served estimate must never cover more reports
					// than have finished ingesting at read time...
					if est.N > wantN {
						errs <- fmt.Errorf("estimate N=%d exceeds population %d", est.N, wantN)
						return
					}
					// ...and must always be a full-granularity simplex
					// point.
					if len(est.Distribution) != 32 {
						errs <- fmt.Errorf("estimate has %d buckets", len(est.Distribution))
						return
					}
				case http.StatusConflict:
					// No reports ingested yet — legal early on.
				default:
					errs <- fmt.Errorf("estimate status %d", resp.StatusCode)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	wg.Wait()
	close(stopPolling)
	pollWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := s.N(); got != wantN {
		t.Fatalf("reports lost: N = %d, want %d", got, wantN)
	}
	est := getFreshEstimate(t, ts.URL, wantN)
	if !est.WarmStart && est.Iterations == 0 {
		t.Error("final estimate looks uncomputed")
	}
	var sum float64
	for _, p := range est.Distribution {
		if p < 0 {
			t.Fatalf("negative probability %v", p)
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("distribution sums to %v", sum)
	}
}
