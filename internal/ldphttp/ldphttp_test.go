package ldphttp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/randx"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: 20 * time.Millisecond})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// getFreshEstimate polls GET /estimate until the served reconstruction
// covers every ingested report (the background engine refreshes
// asynchronously, so a bounded number of responses may be stale and the very
// first polls may see 503 while the initial reconstruction runs).
func getFreshEstimate(t *testing.T, url string, wantN int) EstimateResponse {
	t.Helper()
	return getFreshStreamEstimate(t, url, "", wantN)
}

// getFreshStreamEstimate is getFreshEstimate for a named stream.
func getFreshStreamEstimate(t *testing.T, url, stream string, wantN int) EstimateResponse {
	t.Helper()
	target := url + "/estimate"
	if stream != "" {
		target += "?stream=" + stream
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(target)
		if err != nil {
			t.Fatal(err)
		}
		var est EstimateResponse
		switch resp.StatusCode {
		case http.StatusOK:
			err = json.NewDecoder(resp.Body).Decode(&est)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if est.N == wantN {
				if est.PendingReports != 0 {
					t.Errorf("fresh estimate reports %d pending", est.PendingReports)
				}
				return est
			}
		case http.StatusServiceUnavailable:
			// First estimate pending — the server answered instead of
			// hanging; keep polling.
			resp.Body.Close()
		default:
			resp.Body.Close()
			t.Fatalf("estimate status = %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatalf("estimate never caught up: N = %d, want %d", est.N, wantN)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestReportAndEstimate(t *testing.T) {
	srv, ts := newTestServer(t)

	// Client side: randomize locally, ship reports.
	client := core.NewClient(core.Config{Epsilon: 1, Buckets: 64, Smoothing: true})
	rng := randx.New(1)
	const n = 3000
	for i := 0; i < n; i++ {
		resp := postJSON(t, ts.URL+"/report", map[string]float64{"report": client.Report(rng.Beta(5, 2), rng)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report status = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if srv.N() != n {
		t.Errorf("server N = %d, want %d", srv.N(), n)
	}

	est := getFreshEstimate(t, ts.URL, n)
	if len(est.Distribution) != 64 {
		t.Errorf("estimate buckets=%d", len(est.Distribution))
	}
	if math.Abs(est.Mean-5.0/7.0) > 0.05 {
		t.Errorf("estimated mean = %v, want ≈ 0.714", est.Mean)
	}
}

func TestBatchEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	client := core.NewClient(core.Config{Epsilon: 1, Buckets: 64, Smoothing: true})
	rng := randx.New(2)
	reports := make([]float64, 500)
	for i := range reports {
		reports[i] = client.Report(rng.Float64(), rng)
	}
	resp := postJSON(t, ts.URL+"/batch", map[string]any{"reports": reports})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if srv.N() != 500 {
		t.Errorf("N = %d", srv.N())
	}
}

func TestConfigEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/config")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cfg ConfigResponse
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Epsilon != 1 || cfg.Buckets != 64 {
		t.Errorf("config = %+v", cfg)
	}
	// The response carries the FULL effective configuration: the concrete
	// mechanism, the resolved (not declared-zero) bandwidth, the derived
	// output granularity and the effective stripe count.
	if cfg.Mechanism != "sw" {
		t.Errorf("config mechanism = %q, want sw", cfg.Mechanism)
	}
	if cfg.Bandwidth <= 0 || cfg.Bandwidth > 2 {
		t.Errorf("config bandwidth not resolved: %v", cfg.Bandwidth)
	}
	if cfg.OutputBuckets != 64 {
		t.Errorf("config output_buckets = %d, want 64", cfg.OutputBuckets)
	}
	if cfg.Shards <= 0 {
		t.Errorf("config shards not resolved: %d", cfg.Shards)
	}
}

// TestConfigEndpointWindowed: epoch/retain — the fields PR 2/3 added — come
// back on /config, so clients can reproduce a windowed stream's setup.
func TestConfigEndpointWindowed(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour})
	t.Cleanup(s.Close)
	if err := s.CreateStream("lat", StreamConfig{Epsilon: 1, Buckets: 32,
		Epoch: Duration(time.Minute), Retain: 6}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/config?stream=lat")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cfg ConfigResponse
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Epoch != Duration(time.Minute) || cfg.Retain != 6 {
		t.Errorf("windowed config = %+v, want epoch 1m retain 6", cfg)
	}
}

func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t)
	// Estimate before any reports: 409.
	resp, _ := http.Get(ts.URL + "/estimate")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("empty estimate status = %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
	// Wrong method.
	resp, _ = http.Get(ts.URL + "/report")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /report status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Malformed JSON.
	r, _ := http.Post(ts.URL+"/report", "application/json", bytes.NewReader([]byte("{")))
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d", r.StatusCode)
	}
	r.Body.Close()
	// Empty batch.
	resp = postJSON(t, ts.URL+"/batch", map[string]any{"reports": []float64{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestEstimatePending503 pins the non-blocking contract: reports are in but
// the first reconstruction has not been published, so GET /estimate must
// answer immediately with 503 and the pending count — never hang the client.
func TestEstimatePending503(t *testing.T) {
	// A huge refresh interval guarantees the engine has not run when the
	// first GET arrives (nothing kicks it before that).
	s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	postJSON(t, ts.URL+"/report", map[string]any{"report": 0.4}).Body.Close()

	done := make(chan struct{})
	var status int
	var body struct {
		PendingReports int `json:"pending_reports"`
	}
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/estimate")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		status = resp.StatusCode
		json.NewDecoder(resp.Body).Decode(&body)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("GET /estimate blocked waiting for the first estimate")
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("pending estimate status = %d, want 503", status)
	}
	if body.PendingReports != 1 {
		t.Errorf("pending_reports = %d, want 1", body.PendingReports)
	}
	// The 503 also woke the engine, so the estimate materializes without
	// waiting for the hour-long tick.
	est := getFreshEstimate(t, ts.URL, 1)
	if est.N != 1 {
		t.Errorf("post-wake estimate N = %d", est.N)
	}
}

func TestStreamLifecycle(t *testing.T) {
	srv, ts := newTestServer(t)

	// The default stream exists from birth.
	resp, err := http.Get(ts.URL + "/streams")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Streams []StreamInfo `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Streams) != 1 || listing.Streams[0].Name != DefaultStream {
		t.Fatalf("initial streams = %+v", listing.Streams)
	}

	// Declare a stream with its own domain parameters.
	resp = postJSON(t, ts.URL+"/streams", map[string]any{"name": "age", "epsilon": 2.0, "buckets": 32})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create stream status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Redeclaring identically is idempotent; changing parameters conflicts.
	resp = postJSON(t, ts.URL+"/streams", map[string]any{"name": "age", "epsilon": 2.0, "buckets": 32})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("idempotent redeclare status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/streams", map[string]any{"name": "age", "epsilon": 0.5, "buckets": 32})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("conflicting redeclare status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Shards is a performance knob, not a mechanism parameter: redeclaring
	// with a different stripe count must not conflict (a restart with a
	// different -shards value re-declares restored streams this way).
	if err := srv.CreateStream("age", StreamConfig{Epsilon: 2, Buckets: 32, Shards: 2}); err != nil {
		t.Errorf("shards-only redeclare rejected: %v", err)
	}

	// Invalid names and parameters are rejected. Stream names are wide
	// (spaces, '%', '/' are all fine — they travel escaped in v1 URLs) but
	// control characters and over-long names are not.
	for _, bad := range []map[string]any{
		{"name": "", "epsilon": 1.0},
		{"name": "ctrl\x00char", "epsilon": 1.0},
		{"name": strings.Repeat("x", 65), "epsilon": 1.0},
		{"name": "x", "epsilon": -1.0},
		{"name": "x", "epsilon": 1.0, "buckets": 1},
	} {
		resp = postJSON(t, ts.URL+"/streams", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("create %v status = %d, want 400", bad, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Reports route to their stream; unknown streams 404.
	resp = postJSON(t, ts.URL+"/report", map[string]any{"stream": "age", "report": 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream report status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/report", map[string]any{"stream": "nope", "report": 0.5})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown stream report status = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	if n := srv.StreamN("age"); n != 1 {
		t.Errorf("age stream N = %d, want 1", n)
	}
	if n := srv.StreamN(""); n != 0 {
		t.Errorf("default stream N = %d, want 0", n)
	}
	if srv.StreamN("nope") != -1 {
		t.Error("StreamN of unknown stream should be -1")
	}

	// Per-stream config is served.
	resp, err = http.Get(ts.URL + "/config?stream=age")
	if err != nil {
		t.Fatal(err)
	}
	var cfg struct {
		Stream  string  `json:"stream"`
		Epsilon float64 `json:"epsilon"`
		Buckets int     `json:"buckets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cfg.Stream != "age" || cfg.Epsilon != 2 || cfg.Buckets != 32 {
		t.Errorf("age config = %+v", cfg)
	}
}

func TestQueryEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	// Ingest a tight population around 0.7 so the analytics are sharp.
	client := core.NewClient(core.Config{Epsilon: 1, Buckets: 64, Smoothing: true})
	rng := randx.New(7)
	reports := make([]float64, 4000)
	for i := range reports {
		reports[i] = client.Report(rng.Beta(5, 2), rng)
	}
	postJSON(t, ts.URL+"/batch", map[string]any{"reports": reports}).Body.Close()
	getFreshEstimate(t, ts.URL, len(reports))

	get := func(t *testing.T, path string) (int, QueryResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out QueryResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, out
	}

	status, q := get(t, "/query?type=quantile&q=0.1,0.5,0.9")
	if status != http.StatusOK || len(q.Values) != 3 {
		t.Fatalf("quantile query: status %d, values %v", status, q.Values)
	}
	if q.Values[0] >= q.Values[1] || q.Values[1] >= q.Values[2] {
		t.Errorf("quantiles not monotone: %v", q.Values)
	}
	if math.Abs(q.Values[1]-0.736) > 0.08 { // Beta(5,2) median ≈ 0.7356
		t.Errorf("median = %v, want ≈ 0.736", q.Values[1])
	}
	if q.N != 4000 {
		t.Errorf("query N = %d", q.N)
	}

	status, q = get(t, "/query?type=cdf&q=0,1")
	if status != http.StatusOK || len(q.Values) != 2 {
		t.Fatalf("cdf query: status %d, %v", status, q.Values)
	}
	if math.Abs(q.Values[0]) > 1e-6 || math.Abs(q.Values[1]-1) > 1e-6 {
		t.Errorf("cdf endpoints = %v, want [0, 1]", q.Values)
	}

	status, q = get(t, "/query?type=range&lo=0.5&hi=1")
	if status != http.StatusOK {
		t.Fatalf("range query status %d", status)
	}
	if math.Abs(q.Value-0.89) > 0.08 { // Pr[Beta(5,2) > 0.5] ≈ 0.891
		t.Errorf("range mass = %v, want ≈ 0.89", q.Value)
	}

	status, q = get(t, "/query?type=mean")
	if status != http.StatusOK || math.Abs(q.Value-5.0/7.0) > 0.05 {
		t.Errorf("mean query: status %d, value %v, want ≈ 0.714", status, q.Value)
	}

	status, q = get(t, "/query?type=topk&k=3")
	if status != http.StatusOK || len(q.Bins) != 3 {
		t.Fatalf("topk query: status %d, bins %v", status, q.Bins)
	}
	if c := (q.Bins[0].Lo + q.Bins[0].Hi) / 2; c < 0.5 || c > 0.95 {
		t.Errorf("top bin centered at %v, want near the Beta(5,2) mode", c)
	}

	// Malformed queries are 400s.
	for _, bad := range []string{
		"/query?type=quantile",         // no points
		"/query?type=quantile&q=junk",  // unparsable
		"/query?type=nope&q=0.5",       // unknown type
		"/query?type=range&lo=1&hi=0",  // inverted
		"/query?type=topk&k=0",         // bad k
		"/query?type=topk&k=notanint",  // unparsable k
		"/query?type=range&lo=x&hi=.5", // unparsable lo
	} {
		if status, _ := get(t, bad); status != http.StatusBadRequest {
			t.Errorf("GET %s status = %d, want 400", bad, status)
		}
	}
	// Unknown stream is 404.
	if status, _ := get(t, "/query?stream=nope&type=mean"); status != http.StatusNotFound {
		t.Errorf("unknown stream query status = %d, want 404", status)
	}

	// Batched POST /query answers every query against one estimate.
	resp := postJSON(t, ts.URL+"/query", map[string]any{
		"queries": []map[string]any{
			{"type": "quantile", "q": []float64{0.5}},
			{"type": "range", "lo": 0.25, "hi": 0.75},
			{"type": "variance"},
			{"type": "histogram"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch query status = %d", resp.StatusCode)
	}
	var batch BatchQueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(batch.Results) != 4 || batch.N != 4000 {
		t.Fatalf("batch = %+v", batch)
	}
	if len(batch.Results[3].Values) != 64 {
		t.Errorf("histogram result has %d buckets", len(batch.Results[3].Values))
	}

	// A bad query anywhere in the batch rejects the whole batch.
	resp = postJSON(t, ts.URL+"/query", map[string]any{
		"queries": []map[string]any{{"type": "mean"}, {"type": "bogus"}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mixed batch status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	// An empty batch is a 400 too.
	resp = postJSON(t, ts.URL+"/query", map[string]any{"queries": []map[string]any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestQueryBeforeReports pins /query's not-ready statuses: 409 with no
// reports, 503 while the first estimate is pending.
func TestQueryBeforeReports(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/query?type=mean")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("query with no reports status = %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	postJSON(t, ts.URL+"/report", map[string]any{"report": 0.4}).Body.Close()
	resp, err = http.Get(ts.URL + "/query?type=mean")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("query with pending estimate status = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestConcurrentIngestion(t *testing.T) {
	srv, ts := newTestServer(t)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := core.NewClient(core.Config{Epsilon: 1, Buckets: 64, Smoothing: true})
			rng := randx.New(uint64(id + 1))
			for i := 0; i < perWorker; i++ {
				blob, _ := json.Marshal(map[string]float64{"report": client.Report(rng.Float64(), rng)})
				resp, err := http.Post(ts.URL+"/report", "application/json", bytes.NewReader(blob))
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.N() != workers*perWorker {
		t.Errorf("N = %d, want %d", srv.N(), workers*perWorker)
	}
}
