package ldphttp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/randx"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: 20 * time.Millisecond})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// getFreshEstimate polls GET /estimate until the served reconstruction
// covers every ingested report (the background engine refreshes
// asynchronously, so a bounded number of responses may be stale).
func getFreshEstimate(t *testing.T, url string, wantN int) EstimateResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/estimate")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("estimate status = %d", resp.StatusCode)
		}
		var est EstimateResponse
		err = json.NewDecoder(resp.Body).Decode(&est)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if est.N == wantN {
			if est.PendingReports != 0 {
				t.Errorf("fresh estimate reports %d pending", est.PendingReports)
			}
			return est
		}
		if time.Now().After(deadline) {
			t.Fatalf("estimate never caught up: N = %d, want %d", est.N, wantN)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestReportAndEstimate(t *testing.T) {
	srv, ts := newTestServer(t)

	// Client side: randomize locally, ship reports.
	client := core.NewClient(core.Config{Epsilon: 1, Buckets: 64, Smoothing: true})
	rng := randx.New(1)
	const n = 3000
	for i := 0; i < n; i++ {
		resp := postJSON(t, ts.URL+"/report", map[string]float64{"report": client.Report(rng.Beta(5, 2), rng)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report status = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if srv.N() != n {
		t.Errorf("server N = %d, want %d", srv.N(), n)
	}

	est := getFreshEstimate(t, ts.URL, n)
	if len(est.Distribution) != 64 {
		t.Errorf("estimate buckets=%d", len(est.Distribution))
	}
	if math.Abs(est.Mean-5.0/7.0) > 0.05 {
		t.Errorf("estimated mean = %v, want ≈ 0.714", est.Mean)
	}
}

func TestBatchEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	client := core.NewClient(core.Config{Epsilon: 1, Buckets: 64, Smoothing: true})
	rng := randx.New(2)
	reports := make([]float64, 500)
	for i := range reports {
		reports[i] = client.Report(rng.Float64(), rng)
	}
	resp := postJSON(t, ts.URL+"/batch", map[string]any{"reports": reports})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if srv.N() != 500 {
		t.Errorf("N = %d", srv.N())
	}
}

func TestConfigEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/config")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cfg Config
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Epsilon != 1 || cfg.Buckets != 64 {
		t.Errorf("config = %+v", cfg)
	}
}

func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t)
	// Estimate before any reports: 409.
	resp, _ := http.Get(ts.URL + "/estimate")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("empty estimate status = %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
	// Wrong method.
	resp, _ = http.Get(ts.URL + "/report")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /report status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Malformed JSON.
	r, _ := http.Post(ts.URL+"/report", "application/json", bytes.NewReader([]byte("{")))
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d", r.StatusCode)
	}
	r.Body.Close()
	// Empty batch.
	resp = postJSON(t, ts.URL+"/batch", map[string]any{"reports": []float64{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestConcurrentIngestion(t *testing.T) {
	srv, ts := newTestServer(t)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := core.NewClient(core.Config{Epsilon: 1, Buckets: 64, Smoothing: true})
			rng := randx.New(uint64(id + 1))
			for i := 0; i < perWorker; i++ {
				blob, _ := json.Marshal(map[string]float64{"report": client.Report(rng.Float64(), rng)})
				resp, err := http.Post(ts.URL+"/report", "application/json", bytes.NewReader(blob))
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.N() != workers*perWorker {
		t.Errorf("N = %d, want %d", srv.N(), workers*perWorker)
	}
}
