package ldphttp

// Snapshot migration matrix (payload v1/v2/v3 → v4): fixtures derived from
// a real v4 save by stripping exactly the fields the older versions lacked
// must load into a v4 build — v1/v2 defaulting every stream to the "sw"
// mechanism, v3 loading with empty federation cursors — and serve
// bit-identical cached estimates after the engine's next pass (which must
// conclude there is nothing to recompute).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ldptest"
	"repro/internal/randx"
)

// downgradeSnapshot rewrites a current snapshot file as an older payload
// version, stripping exactly the fields each version lacked: the federation
// block (v4), the mechanism and raw-total fields (v3), and the window blocks
// (v2). Numbers pass through json.Number, so float64 payloads survive
// byte-for-byte.
func downgradeSnapshot(t *testing.T, src, dst string, version int) {
	t.Helper()
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.IndexByte(raw, '\n')
	if idx < 0 {
		t.Fatalf("snapshot %s has no header line", src)
	}
	dec := json.NewDecoder(bytes.NewReader(raw[idx+1:]))
	dec.UseNumber()
	var payload map[string]any
	if err := dec.Decode(&payload); err != nil {
		t.Fatal(err)
	}
	payload["version"] = version
	if version < 4 {
		delete(payload, "federation")
	}
	streams, ok := payload["streams"].([]any)
	if !ok {
		t.Fatalf("snapshot %s has no streams", src)
	}
	for _, raw := range streams {
		stream := raw.(map[string]any)
		if version < 3 {
			delete(stream, "mechanism")
			delete(stream, "estimate_raw")
		}
		if version < 2 {
			delete(stream, "window")
		} else if win, ok := stream["window"].(map[string]any); ok && version < 3 {
			if ests, ok := win["estimates"].([]any); ok {
				for _, e := range ests {
					delete(e.(map[string]any), "raw")
				}
			}
		}
	}
	blob, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	header := fmt.Sprintf("LDPSNAP1 %08x %d\n", crc32.ChecksumIEEE(blob), len(blob))
	if err := os.WriteFile(dst, append([]byte(header), blob...), 0o644); err != nil {
		t.Fatal(err)
	}
	// Sanity: the first line of the derived file still parses as a header.
	if _, err := bufio.NewReader(strings.NewReader(header)).ReadString('\n'); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotMigrationMatrix(t *testing.T) {
	dir := t.TempDir()
	v4Path := filepath.Join(dir, "v4.snap")

	// A real workload: the default sw stream plus a second plain stream,
	// both with cached estimates — and, for the v3 case, federation state
	// from one applied edge push (a third stream keeps it out of the
	// estimate assertions).
	s1 := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: 10 * time.Millisecond,
		Federation: FederationConfig{Accept: true}})
	ts1 := httptest.NewServer(s1.Handler())
	if err := s1.CreateStream("age", StreamConfig{Epsilon: 2, Buckets: 32}); err != nil {
		t.Fatal(err)
	}
	if err := s1.CreateStream("fed", StreamConfig{Epsilon: 1, Buckets: 16}); err != nil {
		t.Fatal(err)
	}
	fedCounts := make([]uint64, 16)
	fedCounts[2] = 9
	if pr, code := pushBody(t, ts1.URL, encodePush(t, s1, "mig-edge", 1, "fed", 0, fedCounts)); code != 200 || !pr.Applied {
		t.Fatalf("seed push answered %d %+v", code, pr)
	}
	repDefault, err := ldptest.CheckServing(ts1.URL,
		func(rng *randx.Rand) float64 { return rng.Beta(5, 2) },
		ldptest.ServingOptions{Epsilon: 1, Buckets: 64, Clients: 1500, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	repAge, err := ldptest.CheckServing(ts1.URL,
		func(rng *randx.Rand) float64 { return rng.Beta(2, 6) },
		ldptest.ServingOptions{Stream: "age", Epsilon: 2, Buckets: 32, Clients: 1500, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.SaveSnapshot(v4Path); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.Close()

	want := map[string][]float64{
		DefaultStream: repDefault.Estimate,
		"age":         repAge.Estimate,
	}

	for _, version := range []int{1, 2, 3} {
		version := version
		t.Run(fmt.Sprintf("v%d", version), func(t *testing.T) {
			path := filepath.Join(dir, fmt.Sprintf("v%d.snap", version))
			downgradeSnapshot(t, v4Path, path, version)

			s := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: 5 * time.Millisecond})
			t.Cleanup(s.Close)
			if err := s.LoadSnapshot(path); err != nil {
				t.Fatalf("load v%d: %v", version, err)
			}
			ts := httptest.NewServer(s.Handler())
			t.Cleanup(ts.Close)

			// Every restored stream defaults to the sw mechanism (the
			// source streams are sw, so this holds for v3 too, where the
			// field is preserved rather than defaulted).
			for _, info := range s.Streams() {
				if info.Mechanism != "sw" {
					t.Errorf("v%d: stream %s restored with mechanism %q, want sw",
						version, info.Name, info.Mechanism)
				}
			}

			// Pre-v4 files carry no federation block: the restored server
			// has empty cursors — no peers, nothing to replay against —
			// while the pushed histogram itself survives in the stream.
			if peers := s.Peers(); len(peers) != 0 {
				t.Errorf("v%d: restored server has %d federation peers, want 0", version, len(peers))
			}
			if got := s.StreamN("fed"); got != 9 {
				t.Errorf("v%d: fed stream restored %d reports, want 9", version, got)
			}

			// Give the engine several passes: with published == raw counts it
			// must decide there is nothing to recompute, leaving the restored
			// estimates untouched — bit-identical to the v3 originals.
			s.wake()
			time.Sleep(50 * time.Millisecond)
			for stream, wantDist := range want {
				est := getFreshStreamEstimate(t, ts.URL, stream, 1500)
				if !est.Restored {
					t.Errorf("v%d: stream %q estimate recomputed (not served from the restore)", version, stream)
				}
				if len(est.Distribution) != len(wantDist) {
					t.Fatalf("v%d: stream %q has %d buckets, want %d",
						version, stream, len(est.Distribution), len(wantDist))
				}
				for i := range wantDist {
					if est.Distribution[i] != wantDist[i] {
						t.Fatalf("v%d: stream %q bucket %d: %v != %v (not bit-identical)",
							version, stream, i, est.Distribution[i], wantDist[i])
					}
				}
			}

			// Saving again writes a v3 file with the defaulted mechanism.
			again := filepath.Join(t.TempDir(), "again.snap")
			if err := s.SaveSnapshot(again); err != nil {
				t.Fatal(err)
			}
			for _, rec := range loadRecords(t, again) {
				if rec.Mechanism != "sw" {
					t.Errorf("v%d: resaved stream %q carries mechanism %q, want sw",
						version, rec.Name, rec.Mechanism)
				}
				if rec.EstimateRaw != rec.EstimateN {
					t.Errorf("v%d: resaved stream %q raw %d != n %d for an sw stream",
						version, rec.Name, rec.EstimateRaw, rec.EstimateN)
				}
			}
		})
	}

	// A v2 windowed fixture keeps its window state through the migration:
	// reuse the windowed determinism scenario at version 2.
	t.Run("v2-windowed", func(t *testing.T) {
		clock := newMockClock()
		sw := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: 5 * time.Millisecond, Clock: clock.Now})
		tsw := httptest.NewServer(sw.Handler())
		if err := sw.CreateStream("lat", StreamConfig{Epsilon: 1, Buckets: 32,
			Epoch: Duration(time.Minute), Retain: 4}); err != nil {
			t.Fatal(err)
		}
		if _, err := ldptest.CheckServing(tsw.URL,
			func(rng *randx.Rand) float64 { return rng.Beta(5, 2) },
			ldptest.ServingOptions{Stream: "lat", Epsilon: 1, Buckets: 32, Clients: 800, Seed: 5}); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Minute) // seal epoch 0
		winEst := getWindowEstimate(t, tsw.URL, "lat", "epochs:0..0", 800)

		v3win := filepath.Join(t.TempDir(), "win3.snap")
		if err := sw.SaveSnapshot(v3win); err != nil {
			t.Fatal(err)
		}
		tsw.Close()
		sw.Close()

		v2win := filepath.Join(t.TempDir(), "win2.snap")
		downgradeSnapshot(t, v3win, v2win, 2)

		clock2 := newMockClock()
		s2 := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour, Clock: clock2.Now})
		t.Cleanup(s2.Close)
		if err := s2.CreateStream("lat", StreamConfig{Epsilon: 1, Buckets: 32,
			Epoch: Duration(time.Minute), Retain: 4}); err != nil {
			t.Fatal(err)
		}
		if err := s2.LoadSnapshot(v2win); err != nil {
			t.Fatal(err)
		}
		ts2 := httptest.NewServer(s2.Handler())
		t.Cleanup(ts2.Close)
		got := getWindowEstimate(t, ts2.URL, "lat", "epochs:0..0", 800)
		if len(got.Distribution) != len(winEst.Distribution) {
			t.Fatalf("window restored %d buckets, want %d", len(got.Distribution), len(winEst.Distribution))
		}
		for i := range winEst.Distribution {
			if got.Distribution[i] != winEst.Distribution[i] {
				t.Fatalf("window bucket %d: %v != %v (not bit-identical)",
					i, got.Distribution[i], winEst.Distribution[i])
			}
		}
	})
}
