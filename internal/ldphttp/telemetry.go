package ldphttp

// Operational telemetry: the serverMetrics bundle registers every collector
// metric in one zero-dependency telemetry.Registry and GET /metrics renders
// it in Prometheus text format. Counters and histograms are written on the
// hot paths through handles resolved once (stream creation, route
// registration); derived gauges — staleness, refresh age, federation lag,
// the edge pusher's cursor — are recomputed by an OnScrape hook so the
// exposition is always current without any background work. GET /healthz
// and GET /readyz are the probe surface: liveness is "the estimation engine
// is ticking", readiness is "snapshot restore has completed".

import (
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// defaultMaxSeries is the per-family series cap applied when OpsConfig
// leaves MaxSeriesPerFamily at zero. 1024 label-sets per family comfortably
// covers hundreds of streams while bounding a declaration storm.
const defaultMaxSeries = 1024

// serverMetrics holds every metric family the collector exports.
type serverMetrics struct {
	reg *telemetry.Registry

	// HTTP surface.
	requests *telemetry.CounterVec   // endpoint, method, code
	reqDur   *telemetry.HistogramVec // endpoint
	shed     *telemetry.CounterVec   // endpoint, scope (global|edge)
	codecSel *telemetry.CounterVec   // endpoint, codec (json|binary)

	// Ingestion and estimation engine.
	reports      *telemetry.CounterVec   // stream, mechanism
	emRefresh    *telemetry.HistogramVec // stream
	emIters      *telemetry.HistogramVec // stream
	emStaleness  *telemetry.GaugeVec     // stream
	emRefreshAge *telemetry.GaugeVec     // stream
	rotations    *telemetry.CounterVec   // stream
	refreshes    *telemetry.CounterVec   // stream, reason (growth|rotation|forced)
	queueDepth   *telemetry.GaugeVec     // scrape-derived refresh queue depth
	streams      *telemetry.GaugeVec

	// Snapshots.
	snapshots *telemetry.CounterVec   // op (save|load), status (ok|error)
	snapDur   *telemetry.HistogramVec // op

	// Federation, root side (counted at push handling).
	fedAbsorbed   *telemetry.CounterVec // edge
	fedDuplicates *telemetry.CounterVec // edge
	fedRejects    *telemetry.CounterVec // edge, code
	fedDropped    *telemetry.CounterVec // edge
	fedLag        *telemetry.GaugeVec   // edge (scrape-derived)

	// Federation, edge side (scrape-derived from PusherStatus).
	pushAckedSeq *telemetry.GaugeVec // edge
	pushFailures *telemetry.GaugeVec // edge
	pushBackoff  *telemetry.GaugeVec // edge
	pushLag      *telemetry.GaugeVec // edge
	pushShipped  *telemetry.GaugeVec // edge
	pushDiverged *telemetry.GaugeVec // edge

	// Estimate quality (written at refresh/seal time, not per scrape).
	estLoglik   *telemetry.GaugeVec   // stream (EM-based streams only)
	estCI       *telemetry.GaugeVec   // stream
	emConverged *telemetry.GaugeVec   // stream
	driftScore  *telemetry.GaugeVec   // stream, metric (w1|ks)
	driftAlerts *telemetry.CounterVec // stream

	// Probes as gauges, so dashboards see what the probes see.
	up      *telemetry.GaugeVec
	ready   *telemetry.GaugeVec
	healthy *telemetry.GaugeVec

	// Scrape self-metrics: how long /metrics itself takes, and how many
	// expositions failed mid-write (client gone, broken pipe).
	scrapeDur  *telemetry.HistogramVec
	scrapeErrs *telemetry.CounterVec
}

// newServerMetrics registers every family and installs the scrape hook.
// Called once from NewServer, before any stream exists.
func newServerMetrics(s *Server) *serverMetrics {
	limit := s.cfg.Ops.MaxSeriesPerFamily
	switch {
	case limit == 0:
		limit = defaultMaxSeries
	case limit < 0:
		limit = 0 // explicit opt-out: unbounded
	}
	r := telemetry.NewWithOptions(telemetry.Options{MaxSeriesPerFamily: limit})
	m := &serverMetrics{
		reg: r,
		requests: r.Counter("ldp_requests_total",
			"HTTP requests served, by endpoint, method and status code.",
			"endpoint", "method", "code"),
		reqDur: r.Histogram("ldp_request_duration_seconds",
			"HTTP request latency by endpoint.", telemetry.DefBuckets, "endpoint"),
		shed: r.Counter("ldp_shed_total",
			"Requests shed by admission control before reaching the engine.",
			"endpoint", "scope"),
		codecSel: r.Counter("ldp_codec_requests_total",
			"Ingest requests by negotiated wire codec (json or binary).",
			"endpoint", "codec"),
		reports: r.Counter("ldp_reports_total",
			"Randomized reports ingested, by stream and mechanism.",
			"stream", "mechanism"),
		emRefresh: r.Histogram("ldp_em_refresh_seconds",
			"Background EM/EMS reconstruction latency per refresh.",
			telemetry.DefBuckets, "stream"),
		emIters: r.Histogram("ldp_em_iterations",
			"EM/EMS iterations per published refresh (warm starts converge in few).",
			[]float64{1, 2, 5, 10, 20, 50, 100, 200}, "stream"),
		emStaleness: r.Gauge("ldp_em_staleness_reports",
			"Histogram increments ingested after the published estimate.", "stream"),
		emRefreshAge: r.Gauge("ldp_em_refresh_age_seconds",
			"Seconds since the stream's estimate was last refreshed.", "stream"),
		rotations: r.Counter("ldp_epoch_rotations_total",
			"Epoch rotations performed on windowed streams.", "stream"),
		refreshes: r.Counter("ldp_em_refreshes_total",
			"Published estimate refreshes, by stream and trigger (growth|rotation|forced).",
			"stream", "reason"),
		queueDepth: r.Gauge("ldp_em_refresh_queue_depth",
			"Streams waiting in the refresh queue for a worker."),
		streams: r.Gauge("ldp_streams", "Streams currently declared."),
		snapshots: r.Counter("ldp_snapshots_total",
			"Snapshot operations, by op (save|load) and outcome.", "op", "status"),
		snapDur: r.Histogram("ldp_snapshot_seconds",
			"Snapshot save/load duration.", telemetry.DefBuckets, "op"),
		fedAbsorbed: r.Counter("ldp_federation_absorbed_total",
			"Histogram increments absorbed from federation pushes, per edge.", "edge"),
		fedDuplicates: r.Counter("ldp_federation_duplicate_pushes_total",
			"Replayed pushes skipped by the replay cursor, per edge.", "edge"),
		fedRejects: r.Counter("ldp_federation_rejected_pushes_total",
			"Pushes rejected, per edge and rejection code.", "edge", "code"),
		fedDropped: r.Counter("ldp_federation_dropped_total",
			"Pushed increments dropped (epoch outside the root's window), per edge.", "edge"),
		fedLag: r.Gauge("ldp_federation_push_lag_seconds",
			"Seconds since each edge's last applied push (root side).", "edge"),
		pushAckedSeq: r.Gauge("ldp_push_acked_seq",
			"Edge pusher: last acknowledged sequence number.", "edge"),
		pushFailures: r.Gauge("ldp_push_consecutive_failures",
			"Edge pusher: consecutive failed push attempts.", "edge"),
		pushBackoff: r.Gauge("ldp_push_backoff_seconds",
			"Edge pusher: current failure backoff (0 = healthy).", "edge"),
		pushLag: r.Gauge("ldp_push_last_success_age_seconds",
			"Edge pusher: seconds since the last acknowledged push.", "edge"),
		pushShipped: r.Gauge("ldp_push_shipped_reports",
			"Edge pusher: total increments shipped and acknowledged.", "edge"),
		pushDiverged: r.Gauge("ldp_push_diverged",
			"Edge pusher: 1 when the root provably holds a different history.", "edge"),
		estLoglik: r.Gauge("ldp_estimate_loglik",
			"Count-weighted log-likelihood of the published EM reconstruction.", "stream"),
		estCI: r.Gauge("ldp_estimate_ci_halfwidth",
			"Analytic 95% CI half-width per probability cell at the current user count.", "stream"),
		emConverged: r.Gauge("ldp_em_converged",
			"1 when the published reconstruction met the EM convergence tolerance.", "stream"),
		driftScore: r.Gauge("ldp_drift_score",
			"Epoch-over-epoch distribution drift, by metric (w1|ks).", "stream", "metric"),
		driftAlerts: r.Counter("ldp_drift_alerts_total",
			"Drift alerts raised by the hysteresis state machine.", "stream"),
		up:      r.Gauge("ldp_up", "Process uptime indicator, always 1 while serving."),
		ready:   r.Gauge("ldp_ready", "Readiness probe state (1 = ready)."),
		healthy: r.Gauge("ldp_healthy", "Liveness probe state (1 = engine ticking)."),
		scrapeDur: r.Histogram("ldp_scrape_duration_seconds",
			"Wall time spent rendering the /metrics exposition.", telemetry.DefBuckets),
		scrapeErrs: r.Counter("ldp_scrape_errors_total",
			"Metric expositions that failed mid-write."),
	}
	// The scrape error counter should read 0, not be absent, on a healthy
	// server — dashboards alert on increase(), which needs a base sample.
	m.scrapeErrs.With().Add(0)
	r.OnScrape(func() { s.scrapeRefresh(m) })
	return m
}

// scrapeRefresh recomputes every derived gauge at exposition time.
func (s *Server) scrapeRefresh(m *serverMetrics) {
	now := time.Now()
	list := s.streamList()
	m.streams.With().Set(float64(len(list)))
	m.queueDepth.With().Set(float64(s.rq.depth()))
	for _, st := range list {
		n := st.reports()
		pub := int(st.published.Load())
		pending := n - pub
		if pending < 0 {
			pending = 0
		}
		st.mStaleness.Set(float64(pending))
		if lr := st.lastRefresh.Load(); lr > 0 {
			st.mRefreshAge.Set(now.Sub(time.Unix(0, lr)).Seconds())
		}
	}
	s.fedMu.Lock()
	// Push lag compares against watermarks stamped with the server clock
	// (applyPushLocked uses s.now()), so it must read the same clock — a
	// mock-clock test would otherwise see wall time leak into the gauge.
	fedNow := s.now()
	for edge, p := range s.peers {
		if !p.lastPush.IsZero() {
			m.fedLag.With(edge).Set(fedNow.Sub(p.lastPush).Seconds())
		}
	}
	pusher := s.pusher
	s.fedMu.Unlock()
	if pusher != nil {
		ps := pusher.Status()
		m.pushAckedSeq.With(ps.Edge).Set(float64(ps.AckedSeq))
		m.pushFailures.With(ps.Edge).Set(float64(ps.Failures))
		m.pushBackoff.With(ps.Edge).Set(ps.Backoff.Seconds())
		m.pushShipped.With(ps.Edge).Set(float64(ps.Reports))
		if !ps.LastSuccess.IsZero() {
			m.pushLag.With(ps.Edge).Set(now.Sub(ps.LastSuccess).Seconds())
		}
		diverged := 0.0
		if ps.Diverged {
			diverged = 1
		}
		m.pushDiverged.With(ps.Edge).Set(diverged)
	}
	m.up.With().Set(1)
	boolGauge(m.ready.With(), s.Ready())
	boolGauge(m.healthy.With(), s.healthErr() == nil)
}

func boolGauge(g *telemetry.Gauge, v bool) {
	if v {
		g.Set(1)
	} else {
		g.Set(0)
	}
}

// observeSnapshot records one snapshot save/load outcome.
func (s *Server) observeSnapshot(op string, start time.Time, err error) {
	m := s.metrics
	if m == nil {
		return
	}
	status := "ok"
	if err != nil {
		status = "error"
	}
	m.snapshots.With(op, status).Inc()
	m.snapDur.With(op).Observe(time.Since(start).Seconds())
}

// admissionBurst resolves a configured burst against its rate: zero means
// 2× the per-second rate (at least 1), so a default bucket rides out a
// one-second spike at twice the sustained load.
func admissionBurst(rate, burst float64) float64 {
	if burst > 0 {
		return burst
	}
	if b := 2 * rate; b >= 1 {
		return b
	}
	return 1
}

// MarkReady flips the readiness probe to ready. LoadSnapshot calls it on a
// successful restore; cmd/ldpserver calls it explicitly when a configured
// snapshot file does not exist yet (cold start).
func (s *Server) MarkReady() { s.ready.Store(true) }

// Ready reports the readiness probe state.
func (s *Server) Ready() bool { return s.ready.Load() }

// healthErr is the liveness check: nil while the estimation engine is
// alive. The engine is considered stalled when it has not completed a loop
// pass for well over its refresh cadence — a deliberately generous bound
// (ten refresh intervals, at least 10s) so a slow EM pass on a huge stream
// set degrades health only when it is genuinely drowning.
func (s *Server) healthErr() error {
	select {
	case <-s.done:
		return fmt.Errorf("estimation engine stopped (server closed)")
	default:
	}
	threshold := 10 * s.refresh
	if threshold < 10*time.Second {
		threshold = 10 * time.Second
	}
	age := time.Since(time.Unix(0, s.lastTick.Load()))
	if age > threshold {
		return fmt.Errorf("estimation engine stalled: no loop pass for %v (threshold %v)", age.Round(time.Millisecond), threshold)
	}
	return nil
}

// gzipPool recycles scrape compressors: a gzip.Writer carries ~256KiB of
// internal state, far too much to allocate per scrape.
var gzipPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}

// acceptsGzip reports whether the Accept-Encoding header opts into gzip.
// It tolerates the usual comma list with optional q-values and rejects an
// explicit q=0 ("gzip;q=0" means "never send me gzip").
func acceptsGzip(header string) bool {
	for _, part := range strings.Split(header, ",") {
		enc, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		enc = strings.ToLower(strings.TrimSpace(enc))
		if enc != "gzip" && enc != "*" {
			continue
		}
		params = strings.ReplaceAll(strings.ToLower(params), " ", "")
		if strings.HasPrefix(params, "q=0") && !strings.HasPrefix(params, "q=0.") {
			return false
		}
		return true
	}
	return false
}

// handleMetrics serves the Prometheus text exposition, gzip-compressed when
// the scraper asks for it (a 64-stream exposition shrinks roughly 10×,
// which matters at sub-second scrape intervals).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, r, http.MethodGet)
		return
	}
	if s.metrics == nil {
		errorJSON(w, http.StatusNotFound, CodeNotFound, "telemetry is disabled on this server")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Add("Vary", "Accept-Encoding")
	start := time.Now()
	var err error
	if acceptsGzip(r.Header.Get("Accept-Encoding")) {
		w.Header().Set("Content-Encoding", "gzip")
		gz := gzipPool.Get().(*gzip.Writer)
		gz.Reset(w)
		err = s.metrics.reg.WriteText(gz)
		if cerr := gz.Close(); err == nil {
			err = cerr
		}
		gzipPool.Put(gz)
	} else {
		err = s.metrics.reg.WriteText(w)
	}
	// Self-observations land after the exposition is rendered, so this
	// scrape's own duration shows up on the next one — the exposition
	// itself stays a consistent point-in-time snapshot. The duration
	// includes compression: that is the real cost a scraper induces.
	s.metrics.scrapeDur.With().Observe(time.Since(start).Seconds())
	if err != nil {
		s.metrics.scrapeErrs.With().Inc()
	}
}

// handleHealthz is the liveness probe: 200 while the estimation engine is
// ticking, 503 engine_stalled/engine_stopped otherwise.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, r, http.MethodGet)
		return
	}
	if err := s.healthErr(); err != nil {
		code := CodeEngineStalled
		select {
		case <-s.done:
			code = CodeEngineStopped
		default:
		}
		errorJSON(w, http.StatusServiceUnavailable, code, "%v", err)
		return
	}
	writeJSON(w, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

// handleReadyz is the readiness probe: 200 once snapshot restore has
// completed (or immediately, when the server never awaited one).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, r, http.MethodGet)
		return
	}
	if !s.Ready() {
		retryJSON(w, http.StatusServiceUnavailable, CodeNotReady, time.Second, nil,
			"snapshot restore has not completed")
		return
	}
	writeJSON(w, map[string]any{"status": "ready"})
}
