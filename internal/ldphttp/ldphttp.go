// Package ldphttp exposes LDP collection rounds over HTTP: clients POST
// their randomized reports to a collector endpoint and anyone may GET the
// current reconstructed distribution and the analytics computed from it.
// This is the deployment shape of the real-world LDP systems the paper cites
// (RAPPOR in Chrome, Apple's and Microsoft's telemetry): randomization
// happens strictly on the client; the server only ever sees ε-LDP reports.
//
// Endpoints:
//
//	POST   /streams  {"name": "age", "epsilon": 1, "buckets": 256}  declare a stream
//	POST   /streams  {"name": "os", "epsilon": 1, "buckets": 64,
//	                  "mechanism": "oue"}           declare a non-SW stream
//	POST   /streams  {"name": "lat", "epsilon": 1, "buckets": 256,
//	                  "epoch": "1m", "retain": 12}  declare an epoch-rotated stream
//	GET    /streams                                list streams and their state
//	DELETE /streams/{name}                         retire a stream
//	POST   /report   {"stream": "age", "report": 0.1234}           one report
//	POST   /report   {"stream": "os", "report": [3, 17, 40]}       one vector report
//	POST   /batch    {"stream": "age", "reports": [0.1, 0.2]}      many reports
//	GET    /estimate?stream=age                    reconstruction + statistics
//	GET    /estimate?stream=lat&window=last:6      sliding-window reconstruction
//	GET    /query?stream=age&type=quantile&q=0.5,0.9,0.99          analytics
//	GET    /query?stream=lat&type=mean&window=epochs:3..7          windowed analytics
//	POST   /query    {"stream": "age", "queries": [...]}           batched analytics
//	GET    /config?stream=age                      effective stream configuration
//
// The flat routes above are the legacy surface, kept as thin aliases that
// answer with Deprecation: true and a Link: </v1/...>; rel="successor-version"
// header. The same operations — one code path, two surfaces — live under the
// versioned v1 resource tree:
//
//	GET    /v1/streams                   list streams
//	POST   /v1/streams                   declare a stream (same body as /streams)
//	GET    /v1/streams/{name}            one stream's info, config and links
//	DELETE /v1/streams/{name}            retire a stream
//	POST   /v1/streams/{name}/report    {"report": 0.1234}
//	POST   /v1/streams/{name}/batch     {"reports": [0.1, 0.2]}
//	GET    /v1/streams/{name}/estimate?window=last:6
//	GET    /v1/streams/{name}/query?type=quantile&q=0.5
//	POST   /v1/streams/{name}/query     {"queries": [...]}
//	GET    /v1/streams/{name}/config
//
// Operational endpoints (exempt from admission control, never deprecated):
//
//	GET /metrics   Prometheus text exposition, format 0.0.4 (see Ops below)
//	GET /healthz   liveness: the estimation engine is ticking
//	GET /readyz    readiness: snapshot restore has completed
//
// Every non-2xx response — including federation rejections and admission
// sheds — carries the uniform envelope
// {"error": {"code": "...", "message": "...", "retry_after_ms": N}}; the
// stable code catalog lives in errors.go.
//
// # Mechanisms
//
// Every stream runs one reporting mechanism from package mechanism,
// declared as "mechanism" on POST /streams (or mech= in the ldpserver
// -stream flag): the continuous Square Wave "sw" (the paper's contribution
// and the default), the discrete "sw-discrete", and the categorical
// frequency oracles "grr", "oue", "sue", "olh" and "hrr". "auto" picks the
// lower-variance oracle for the stream's (ε, d) by the Section 4.1 rule —
// GRR when d−2 < 3e^ε, OLH otherwise — at declaration. Wire reports are
// bare numbers for scalar mechanisms and small arrays for the rest (see
// WireReport); each stream's histogram accumulates the mechanism's exact
// sufficient statistic, and the engine reconstructs through EM/EMS when the
// mechanism has a transition channel or through the direct debiased
// estimate plus Norm-Sub projection when it does not.
//
// The stream field/parameter is optional everywhere: omitting it addresses
// the default stream every server is born with, so single-attribute
// deployments never have to mention streams at all.
//
// # Architecture
//
// A server hosts any number of named attribute streams, each with its own
// domain, privacy budget and granularity — one survey server can collect
// ages, incomes and session lengths at once. Ingestion and estimation are
// decoupled so neither blocks the other: each stream's reports land in its
// own striped atomic histogram (package aggregate) — no lock on the request
// path — while a pool of refresh workers (Config.RefreshWorkers, default
// GOMAXPROCS) drains a staleness-ordered dirty queue: every tick the
// scheduler enqueues the streams whose histograms have grown, rotation-due
// and forced refreshes jump the queue, and otherwise the stream with the
// most unpublished reports goes first. Each worker re-runs the EMS
// reconstruction warm-started from that stream's previous estimate into a
// per-stream reusable workspace (zero allocations once warm); a per-stream
// busy flag keeps refreshes of one stream serialized, so results are
// bit-identical to the old single-goroutine engine regardless of pool size.
// GET /estimate and /query never run EM on a request goroutine: they serve
// the cached reconstruction (503 with pending_reports while the very first
// one is still being computed) and report how many reports arrived after it.
//
// # Windowed collection
//
// A stream declared with an epoch duration becomes a time-series: the live
// histogram rotates into a sealed epoch every period (package window, driven
// by the engine's clock), the last Retain sealed epochs are kept, and any
// contiguous retained range is addressable with window=last:K or
// window=epochs:i..j on /estimate and /query. Window reconstructions are
// also engine-computed and cached — the first request for a range answers
// 503 and wakes the engine, which merges the range's epochs and runs EMS
// warm-started from that window's previous estimate (or its one-epoch-back
// neighbor after a rotation, or the stream's full-range estimate). A
// fully-sealed range is immutable, so its cached estimate never recomputes.
//
// SaveSnapshot/LoadSnapshot persist every stream's histogram and cached
// estimate through package snapshot (atomic temp-file rename, checksummed),
// so a restarted collector resumes warm; windowed streams additionally
// persist rotation clock, sealed epochs and window estimates, so restarts
// resume mid-epoch with bit-identical window answers; cmd/ldpserver wires
// this to the -snapshot flag.
//
// # Ops
//
// OpsConfig turns on the operational surface: a zero-dependency Prometheus
// exposition on GET /metrics (ingest rates per stream and mechanism, EM
// refresh latency and staleness, epoch rotations, snapshot durations,
// federation push lag and replay/drop counters per edge), liveness and
// readiness probes, structured request logging, a global token-bucket
// admission limiter plus a per-edge tier for federation pushes, and a bound
// on request bodies. Shed requests answer 429 with an honest Retry-After
// before they ever touch the engine; sheds are themselves counted in
// /metrics (ldp_shed_total).
package ldphttp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/em"
	"repro/internal/federate"
	"repro/internal/histogram"
	"repro/internal/mechanism"
	"repro/internal/ratelimit"
	"repro/internal/snapshot"
	"repro/internal/sw"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/window"
)

// DefaultStream is the name of the stream every server starts with; requests
// that do not name a stream address it.
const DefaultStream = "default"

// Config mirrors the default stream's mechanism parameters plus server-side
// tuning knobs (omitted from /config when zero).
type Config struct {
	// Epsilon is the LDP budget.
	Epsilon float64 `json:"epsilon"`
	// Buckets is the reconstruction granularity.
	Buckets int `json:"buckets"`
	// Mechanism selects the default stream's reporting mechanism ("" =
	// "sw"; "auto" resolves to the lower-variance categorical oracle for
	// the stream's (ε, d) at creation).
	Mechanism string `json:"mechanism,omitempty"`
	// Bandwidth is the wave half-width (0 = optimal; sw family only).
	Bandwidth float64 `json:"bandwidth"`
	// Shards overrides the ingestion stripe count (0 = one per CPU,
	// rounded up to a power of two).
	Shards int `json:"shards,omitempty"`
	// EMWorkers sets the EM parallelism of the background estimator:
	// 0 uses every CPU, 1 forces serial, n > 1 uses n partitions. Note
	// the zero value is "automatic" like every knob in this Config —
	// unlike em.Options.Workers and repro.Options.Workers, whose zero
	// value is the library's conservative serial default.
	EMWorkers int `json:"em_workers,omitempty"`
	// RefreshWorkers sets how many background refresh workers drain the
	// staleness-ordered refresh queue concurrently — streams re-estimate
	// in parallel, each stream still strictly serialized. 0 uses
	// runtime.GOMAXPROCS(0); negative forces a single worker.
	RefreshWorkers int `json:"-"`
	// RefreshInterval is the cadence at which the background estimator
	// re-checks every stream for new reports (0 = 500ms). Estimate and
	// query requests that find a cache missing also wake it immediately.
	RefreshInterval time.Duration `json:"-"`
	// Epoch and Retain window the default stream (see StreamConfig). They
	// apply to the default stream only; other streams opt into windowing
	// per declaration.
	Epoch  time.Duration `json:"-"`
	Retain int           `json:"-"`
	// Clock overrides the rotation clock (nil = time.Now). Tests drive a
	// mock clock through it; rotation advances on the engine's cadence.
	Clock func() time.Time `json:"-"`
	// Federation configures the root side of the federation tier (see
	// POST /federation/push): whether this server accepts delta pushes
	// from edge collectors, and whether it auto-declares streams it does
	// not host yet from the pushed fingerprints.
	Federation FederationConfig `json:"-"`
	// Ops configures telemetry, probes, logging and admission control.
	Ops OpsConfig `json:"-"`
}

// OpsConfig bundles the operational knobs. The zero value is a server with
// telemetry on and everything else off: metrics and probes always answer,
// but nothing is shed, bounded, or logged until asked.
type OpsConfig struct {
	// DisableTelemetry skips metric registration and all per-request
	// instrumentation (benchmark baselines); /metrics then answers 404.
	DisableTelemetry bool
	// MaxBodyBytes bounds every request body except federation pushes,
	// which keep their own 64 MiB cap (deltas are legitimately large).
	// Oversized bodies answer 413 body_too_large. 0 = unbounded.
	MaxBodyBytes int64
	// RateLimit is the global admission rate in requests per second over
	// every non-operational endpoint; 0 = unlimited. RateBurst is the
	// bucket depth (0 = 2×RateLimit, minimum 1). Requests beyond the
	// bucket are shed with 429 rate_limited and a Retry-After before they
	// reach the engine.
	RateLimit float64
	RateBurst float64
	// EdgeRateLimit is a second admission tier for POST /federation/push,
	// one bucket per pushing edge, so a runaway edge collector cannot
	// starve its fleet; 0 = unlimited. EdgeRateBurst as above.
	EdgeRateLimit float64
	EdgeRateBurst float64
	// AccessLog, when non-nil, receives one structured line per request:
	// key=value pairs, or JSON objects when LogJSON is set.
	AccessLog io.Writer
	LogJSON   bool
	// AwaitRestore starts the server unready: GET /readyz answers 503
	// not_ready until LoadSnapshot succeeds or MarkReady is called.
	// cmd/ldpserver sets it when a -snapshot path is configured.
	AwaitRestore bool
	// MaxSeriesPerFamily caps the label-set count of every metric family,
	// so a stream-declaration storm cannot grow /metrics memory and
	// scrape latency without bound; over-cap series fold into a
	// "~overflow" bucket (see telemetry.Options). 0 = the default of
	// 1024; negative = unbounded.
	MaxSeriesPerFamily int
	// Drift tunes the per-stream drift-alert state machine (zero value =
	// the diagnose package defaults).
	Drift diagnose.DriftConfig
	// Trace configures the tracing subsystem (on by default; see
	// TraceConfig).
	Trace TraceConfig
}

// FederationConfig is the root-side federation surface. Both knobs are
// opt-in: a server that never asked to be a root rejects pushes outright.
type FederationConfig struct {
	// Accept serves POST /federation/push.
	Accept bool
	// AutoDeclare creates unknown streams from the fingerprint an edge
	// pushes, so a fleet of edges can sync their stream declarations to
	// the root without an operator pre-declaring every stream.
	AutoDeclare bool
}

// StreamConfig is the per-stream subset of Config. Zero fields inherit the
// server defaults (Epoch/Retain excepted: windowing is opt-in per stream).
type StreamConfig struct {
	Epsilon float64 `json:"epsilon"`
	Buckets int     `json:"buckets"`
	// Mechanism selects the stream's reporting mechanism: "sw" (default),
	// "sw-discrete", "grr", "oue", "sue", "olh", "hrr", or "auto" (pick
	// the lower-variance categorical oracle for this (ε, d)). "auto"
	// resolves at creation; the stream always reports its concrete
	// mechanism afterwards.
	Mechanism string  `json:"mechanism,omitempty"`
	Bandwidth float64 `json:"bandwidth,omitempty"`
	Shards    int     `json:"shards,omitempty"`
	// Epoch, when positive, makes the stream epoch-rotated: its live
	// histogram seals every Epoch and sliding-window estimates become
	// addressable with window=last:K / window=epochs:i..j selectors.
	// Retain bounds how many sealed epochs are kept (0 = 8). Windowing is
	// fixed at stream creation; redeclaring with different values is an
	// error, redeclaring with zero values inherits the existing ones.
	Epoch  Duration `json:"epoch,omitempty"`
	Retain int      `json:"retain,omitempty"`
}

// windowed reports whether the configuration asks for epoch rotation.
func (c StreamConfig) windowed() bool { return c.Epoch > 0 }

// stream is one named attribute: immutable mechanism state, a striped
// ingestion histogram (plain or epoch-rotated), and the engine's cached
// reconstructions. Whether a stream is windowed is fixed at construction, so
// request handlers read counts/ring without synchronization.
type stream struct {
	name   string
	cfg    StreamConfig
	agg    *core.Aggregator   // immutable channel + EM config; counts unused
	counts *aggregate.Striped // plain ingestion histogram; nil when windowed
	ring   *window.Ring       // epoch-rotated state; nil when not windowed

	est       atomic.Pointer[EstimateResponse]
	published atomic.Int64 // reports covered by est

	// Window estimate cache: requests register resolved epoch ranges, the
	// engine reconstructs them (windowed streams only).
	winMu sync.Mutex
	wins  map[window.Range]*windowCache

	// Refresh-scheduler state: queued dedupes queue entries, busy
	// serializes refresh work per stream (one worker at a time — the
	// acquire/release pair on busy also publishes the scratch buffers
	// below between workers).
	queued atomic.Bool
	busy   atomic.Bool

	// Worker-owned scratch (guarded by busy): warm-start vector,
	// snapshot/merge buffers, and the reusable EM workspace — a warm
	// refresh allocates only the published estimate copy.
	init       []float64
	scratch    []float64
	winScratch []float64
	ws         em.Workspace
	// Telemetry handles, resolved once at stream creation so the ingest
	// hot path is a single atomic add. All nil when telemetry is disabled.
	mReports    *telemetry.Counter
	mRefresh    *telemetry.Histogram
	mIters      *telemetry.Histogram
	mStaleness  *telemetry.Gauge
	mRefreshAge *telemetry.Gauge
	mRotations  *telemetry.Counter
	// mRefreshes counts published refreshes by trigger, pre-resolved per
	// reason (indexed by refreshGrowth/refreshRotation/refreshForced).
	mRefreshes [3]*telemetry.Counter
	// diag accumulates the stream's estimate-quality record; the engine
	// writes it at refresh/seal time, the diagnostics endpoints and the
	// quality gauges below read it. Never nil.
	diag *diagnose.Tracker
	// Quality gauges, written at publish time so scrapes stay O(series):
	// mLoglik only for EM-reconstructed streams, the drift pair and the
	// alert counter only for windowed ones; nil otherwise (and when
	// telemetry is disabled).
	mLoglik      *telemetry.Gauge
	mCIHalf      *telemetry.Gauge
	mConverged   *telemetry.Gauge
	mDriftW1     *telemetry.Gauge
	mDriftKS     *telemetry.Gauge
	mDriftAlerts *telemetry.Counter
	// driftScratch is the engine-owned merge buffer for sealed-epoch
	// drift reconstructions (guarded by busy, like the buffers above).
	driftScratch []float64
	// lastRefresh is the wall-clock nanos of the last published estimate
	// (0 = none yet); the scrape hook derives refresh age from it.
	lastRefresh atomic.Int64
	// mustRefresh forces the next re-estimate after a rotation (age-out
	// can change the population without changing its size, so the count
	// comparison alone is not enough). Atomic because both the engine and
	// the federation push handler rotate rings.
	mustRefresh atomic.Bool
	// links holds recent sampled ingest trace IDs for the federation
	// pusher to forward (X-LDP-Trace-Link), so a Reporter-stamped trace
	// stays findable at the root after aggregation.
	links traceLinkRing
}

// add, addBatch, addN and reports dispatch ingestion and counting to the
// plain histogram or the live epoch of the ring.
func (st *stream) add(bucket int) {
	if st.ring != nil {
		st.ring.Add(bucket)
		return
	}
	st.counts.Add(bucket)
}

func (st *stream) addBatch(buckets []int) {
	if st.ring != nil {
		st.ring.AddBatch(buckets)
		return
	}
	st.counts.AddBatch(buckets)
}

func (st *stream) addN(bucket int, n uint64) {
	if st.ring != nil {
		st.ring.AddN(bucket, n)
		return
	}
	st.counts.AddN(bucket, n)
}

// reports is the population still visible to estimates: everything for a
// plain stream, the live plus retained epochs for a windowed one.
func (st *stream) reports() int {
	if st.ring != nil {
		return st.ring.N()
	}
	return st.counts.N()
}

// histBuckets is the report-histogram granularity.
func (st *stream) histBuckets() int {
	if st.ring != nil {
		return st.ring.Buckets()
	}
	return st.counts.Buckets()
}

// histShards is the effective ingestion stripe count.
func (st *stream) histShards() int {
	if st.cfg.Shards > 0 {
		return st.cfg.Shards
	}
	return aggregate.DefaultShards()
}

// Server hosts named streams behind an http.Handler, with one shared
// background estimation engine.
type Server struct {
	cfg     Config
	refresh time.Duration
	workers int              // resolved EM parallelism
	now     func() time.Time // rotation clock (time.Now unless overridden)

	mu      sync.RWMutex
	streams map[string]*stream
	order   []*stream // declaration order

	rq             refreshQueue // staleness-ordered dirty-stream queue
	refreshWorkers int          // resolved refresh pool size

	kick      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	snapMu    sync.Mutex // serializes SaveSnapshot

	// Federation state. fedMu serializes push application against snapshot
	// capture, so a snapshot's histograms and peer watermarks are always
	// mutually consistent (lock order: snapMu → fedMu → mu).
	fedMu   sync.Mutex
	peers   map[string]*peerState
	tracker *federate.Tracker
	pusher  *federate.Pusher
	// restoredCursor stashes an edge push cursor loaded from a snapshot
	// before EnablePush was called (boot order is declare → restore →
	// enable, but both orders work).
	restoredCursor *federate.CursorState

	// Operational state: telemetry registry and handles (nil when
	// disabled), admission buckets (nil when unlimited), probe state.
	metrics   *serverMetrics
	tracer    *trace.Tracer // flight recorder (nil when tracing is disabled)
	slowReq   time.Duration // slow-request log threshold (0 = off)
	limiter   *ratelimit.Bucket
	edgeLim   *ratelimit.Keyed
	maxBody   int64
	accessLog io.Writer
	logJSON   bool
	logMu     sync.Mutex   // serializes access-log writes
	ready     atomic.Bool  // readiness probe state
	lastTick  atomic.Int64 // wall-clock nanos of the engine's last loop pass
	started   time.Time
}

// NewServer builds a collection server with its default stream and starts
// the background refresh scheduler and its worker pool. Call Close when done
// with the server to stop them.
func NewServer(cfg Config) *Server {
	workers := cfg.EMWorkers
	if workers == 0 {
		workers = -1 // em semantics: negative = all CPUs
	}
	refreshWorkers := cfg.RefreshWorkers
	if refreshWorkers == 0 {
		refreshWorkers = runtime.GOMAXPROCS(0)
	}
	if refreshWorkers < 1 {
		refreshWorkers = 1
	}
	refresh := cfg.RefreshInterval
	if refresh <= 0 {
		refresh = 500 * time.Millisecond
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Server{
		cfg:            cfg,
		refresh:        refresh,
		workers:        workers,
		refreshWorkers: refreshWorkers,
		now:            clock,
		streams:        make(map[string]*stream),
		peers:          make(map[string]*peerState),
		kick:           make(chan struct{}, 1),
		done:           make(chan struct{}),
		maxBody:        cfg.Ops.MaxBodyBytes,
		accessLog:      cfg.Ops.AccessLog,
		logJSON:        cfg.Ops.LogJSON,
		started:        time.Now(),
	}
	s.rq.cond = sync.NewCond(&s.rq.mu)
	s.ready.Store(!cfg.Ops.AwaitRestore)
	s.lastTick.Store(time.Now().UnixNano())
	if lim := cfg.Ops.RateLimit; lim > 0 {
		s.limiter = ratelimit.New(lim, admissionBurst(lim, cfg.Ops.RateBurst))
	}
	if lim := cfg.Ops.EdgeRateLimit; lim > 0 {
		s.edgeLim = ratelimit.NewKeyed(lim, admissionBurst(lim, cfg.Ops.EdgeRateBurst))
	}
	if !cfg.Ops.DisableTelemetry {
		s.metrics = newServerMetrics(s)
	}
	if tc := cfg.Ops.Trace; !tc.Disable {
		s.tracer = trace.New(trace.Config{Capacity: tc.Capacity, SampleEvery: tc.SampleEvery})
		s.slowReq = tc.SlowRequest
	}
	if err := s.CreateStream(DefaultStream, StreamConfig{
		Epsilon:   cfg.Epsilon,
		Buckets:   cfg.Buckets,
		Mechanism: cfg.Mechanism,
		Bandwidth: cfg.Bandwidth,
		Shards:    cfg.Shards,
		Epoch:     Duration(cfg.Epoch),
		Retain:    cfg.Retain,
	}); err != nil {
		// The registry is empty and the name valid, so this only fires on
		// an unusable Config (non-positive epsilon, retain without epoch) —
		// the same contract core.Config has always had.
		panic(err)
	}
	s.wg.Add(1 + refreshWorkers)
	go s.scheduler()
	for i := 0; i < refreshWorkers; i++ {
		go s.refreshWorker()
	}
	return s
}

// newStream builds the immutable per-stream machinery. For windowed
// configurations the ingestion histogram is an epoch ring born in epoch 0
// at the server clock's now; Retain is filled to its default here so the
// stored cfg always carries the effective retention.
func (s *Server) newStream(name string, cfg StreamConfig) *stream {
	agg := core.NewAggregator(core.Config{
		Epsilon:   cfg.Epsilon,
		Buckets:   cfg.Buckets,
		Mechanism: cfg.Mechanism,
		Bandwidth: cfg.Bandwidth,
		Smoothing: true,
		EM:        em.Options{Workers: s.workers},
	})
	st := &stream{name: name, agg: agg}
	if cfg.windowed() {
		wcfg, err := window.Config{Epoch: time.Duration(cfg.Epoch), Retain: cfg.Retain}.Validate()
		if err != nil {
			panic(err) // unreachable: fillStreamDefaults validated the window options
		}
		cfg.Retain = wcfg.Retain
		st.ring = window.New(agg.OutputBuckets(), cfg.Shards, wcfg, s.now())
		st.wins = make(map[window.Range]*windowCache)
	} else {
		st.counts = aggregate.New(agg.OutputBuckets(), cfg.Shards)
	}
	st.cfg = cfg
	st.diag = diagnose.NewTracker(diagnose.TrackerConfig{
		Mechanism: cfg.Mechanism,
		Epsilon:   cfg.Epsilon,
		Buckets:   cfg.Buckets,
		EMBased:   agg.Channel() != nil,
		Windowed:  cfg.windowed(),
		Drift:     s.cfg.Ops.Drift,
	})
	if m := s.metrics; m != nil {
		st.mReports = m.reports.With(name, cfg.Mechanism)
		st.mRefresh = m.emRefresh.With(name)
		st.mIters = m.emIters.With(name)
		st.mStaleness = m.emStaleness.With(name)
		st.mRefreshAge = m.emRefreshAge.With(name)
		st.mRotations = m.rotations.With(name)
		for r, reason := range refreshReasons {
			st.mRefreshes[r] = m.refreshes.With(name, reason)
		}
		st.mCIHalf = m.estCI.With(name)
		st.mConverged = m.emConverged.With(name)
		if agg.Channel() != nil {
			st.mLoglik = m.estLoglik.With(name)
		}
		if cfg.windowed() {
			st.mDriftW1 = m.driftScore.With(name, "w1")
			st.mDriftKS = m.driftScore.With(name, "ks")
			st.mDriftAlerts = m.driftAlerts.With(name)
		}
	}
	return st
}

// fillStreamDefaults resolves zero fields against the server defaults and
// validates the result.
func (s *Server) fillStreamDefaults(cfg StreamConfig) (StreamConfig, error) {
	if cfg.Epsilon == 0 {
		cfg.Epsilon = s.cfg.Epsilon
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = s.cfg.Buckets
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 1024 // the library-wide default granularity
	}
	if cfg.Shards == 0 {
		cfg.Shards = s.cfg.Shards
	}
	if cfg.Mechanism == "" {
		cfg.Mechanism = s.cfg.Mechanism
	}
	if cfg.Epsilon <= 0 {
		return cfg, fmt.Errorf("ldphttp: stream epsilon must be positive, got %v", cfg.Epsilon)
	}
	if cfg.Buckets < 2 {
		return cfg, fmt.Errorf("ldphttp: stream needs at least 2 buckets, got %d", cfg.Buckets)
	}
	if !mechanism.Valid(cfg.Mechanism) {
		return cfg, fmt.Errorf("ldphttp: unknown stream mechanism %q (want one of %v, or auto)",
			cfg.Mechanism, mechanism.Names())
	}
	// "auto" (and "") resolve at declaration, so the stream's configuration,
	// /config echo, and snapshots always carry the concrete mechanism.
	mech, err := mechanism.Resolve(cfg.Mechanism, cfg.Epsilon, cfg.Buckets)
	if err != nil {
		return cfg, fmt.Errorf("ldphttp: %v", err)
	}
	cfg.Mechanism = mech
	if cfg.Bandwidth < 0 || cfg.Bandwidth > 2 {
		return cfg, fmt.Errorf("ldphttp: stream bandwidth %v out of range [0, 2]", cfg.Bandwidth)
	}
	if cfg.Bandwidth != 0 && mech != mechanism.SW && mech != mechanism.SWDiscrete {
		return cfg, fmt.Errorf("ldphttp: bandwidth only applies to the sw family, not %q", mech)
	}
	if cfg.Epoch < 0 {
		return cfg, fmt.Errorf("ldphttp: stream epoch %v must not be negative", time.Duration(cfg.Epoch))
	}
	if cfg.Retain != 0 && !cfg.windowed() {
		return cfg, fmt.Errorf("ldphttp: stream retain %d needs an epoch duration", cfg.Retain)
	}
	if cfg.windowed() {
		if _, err := (window.Config{Epoch: time.Duration(cfg.Epoch), Retain: cfg.Retain}).Validate(); err != nil {
			return cfg, fmt.Errorf("ldphttp: %v", err)
		}
	}
	return cfg, nil
}

// ErrStreamConfigMismatch is wrapped by CreateStream when a stream already
// exists with different parameters.
var ErrStreamConfigMismatch = fmt.Errorf("stream exists with different configuration")

// effectiveBandwidth resolves a declared wave half-width the way the
// mechanism layer does: for the sw family, 0 means the mutual-information
// optimum for the stream's ε; other mechanisms have no bandwidth. Stream
// compatibility is judged on this resolved value, so "declare the default"
// and "declare the optimum explicitly" (e.g. a stream auto-declared from a
// federation fingerprint, which always carries resolved values) are the
// same configuration.
func effectiveBandwidth(mech string, epsilon, bandwidth float64) float64 {
	if mech != mechanism.SW && mech != mechanism.SWDiscrete {
		return 0
	}
	if bandwidth != 0 {
		return bandwidth
	}
	return sw.BOpt(epsilon)
}

// CreateStream declares a named stream. Declaring an existing stream with
// the same mechanism parameters (mechanism, ε, buckets, bandwidth) is a
// no-op — Shards
// is a pure ingestion-performance knob and is deliberately ignored, so a
// restart with a different -shards value still accepts matching -stream
// flags against snapshot-restored streams. Different mechanism parameters
// are an error (the report histogram of the live stream would be
// meaningless under the new mechanism).
func (s *Server) CreateStream(name string, cfg StreamConfig) error {
	if !snapshot.ValidStreamName(name) {
		return fmt.Errorf("ldphttp: invalid stream name %q (want 1-64 bytes with no control characters)", name)
	}
	cfg, err := s.fillStreamDefaults(cfg)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.streams[name]; ok {
		if existing.cfg.Epsilon != cfg.Epsilon || existing.cfg.Buckets != cfg.Buckets ||
			existing.cfg.Mechanism != cfg.Mechanism ||
			effectiveBandwidth(existing.cfg.Mechanism, existing.cfg.Epsilon, existing.cfg.Bandwidth) !=
				effectiveBandwidth(cfg.Mechanism, cfg.Epsilon, cfg.Bandwidth) {
			return fmt.Errorf("ldphttp: %w: %q has %+v, requested %+v",
				ErrStreamConfigMismatch, name, existing.cfg, cfg)
		}
		// Windowing is fixed at stream creation: zero Epoch/Retain inherit
		// whatever the stream has, non-zero values must match it exactly.
		if cfg.windowed() {
			if existing.ring == nil {
				return fmt.Errorf("ldphttp: %w: %q is not windowed; drop and redeclare it to enable epochs",
					ErrStreamConfigMismatch, name)
			}
			if existing.cfg.Epoch != cfg.Epoch ||
				(cfg.Retain != 0 && existing.cfg.Retain != cfg.Retain) {
				return fmt.Errorf("ldphttp: %w: %q rotates every %v retaining %d, requested %v/%d",
					ErrStreamConfigMismatch, name, time.Duration(existing.cfg.Epoch),
					existing.cfg.Retain, time.Duration(cfg.Epoch), cfg.Retain)
			}
		}
		return nil
	}
	st := s.newStream(name, cfg)
	s.streams[name] = st
	s.order = append(s.order, st)
	return nil
}

// DropStream retires a named stream: it disappears from the registry, the
// engine's rotation and future snapshots, and its reports are discarded.
// Dropping the default stream is allowed (requests without a stream then
// 404) — an operator who never uses it can reclaim it. In-flight requests
// that already resolved the stream finish against its final state.
func (s *Server) DropStream(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.streams[name]
	if !ok {
		return fmt.Errorf("ldphttp: unknown stream %q", name)
	}
	delete(s.streams, name)
	for i, o := range s.order {
		if o == st {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return nil
}

// lookup resolves a stream name ("" means the default stream).
func (s *Server) lookup(name string) *stream {
	if name == "" {
		name = DefaultStream
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.streams[name]
}

// streamList snapshots the declaration-ordered stream slice.
func (s *Server) streamList() []*stream {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*stream(nil), s.order...)
}

// StreamInfo is one row of GET /streams (and the whole body of GET
// /v1/streams/{name}). Epsilon/Buckets/Mechanism/Bandwidth/Shards echo the
// declaration; Config carries the full resolved configuration — identical
// field for field to GET /v1/streams/{name}/config — so the list view and
// the item view can never diverge again.
type StreamInfo struct {
	Name      string  `json:"name"`
	Epsilon   float64 `json:"epsilon"`
	Buckets   int     `json:"buckets"`
	Mechanism string  `json:"mechanism"`
	Bandwidth float64 `json:"bandwidth,omitempty"`
	Shards    int     `json:"shards,omitempty"`
	// N is the number of reports still visible to estimates (for a
	// windowed stream, reports in aged-out epochs no longer count);
	// EstimateN the number covered by the cached reconstruction (0 = none
	// yet).
	N         int `json:"n"`
	EstimateN int `json:"estimate_n"`
	// Window carries the epoch-rotation state of a windowed stream.
	Window *WindowInfo `json:"window,omitempty"`
	// Config is the stream's effective configuration, every value resolved.
	Config ConfigResponse `json:"config"`
	// Links locates the stream's v1 subresources.
	Links StreamLinks `json:"links"`
}

// StreamLinks are the v1 URLs of one stream's resources.
type StreamLinks struct {
	Self        string `json:"self"`
	Report      string `json:"report"`
	Estimate    string `json:"estimate"`
	Query       string `json:"query"`
	Config      string `json:"config"`
	Diagnostics string `json:"diagnostics"`
}

func streamLinks(name string) StreamLinks {
	base := "/v1/streams/" + url.PathEscape(name)
	return StreamLinks{
		Self:        base,
		Report:      base + "/report",
		Estimate:    base + "/estimate",
		Query:       base + "/query",
		Config:      base + "/config",
		Diagnostics: base + "/diagnostics",
	}
}

// users reads the report (user) count visible to estimates. Fan-out
// mechanisms (oue/sue, olh) track it in their marker cell — by convention
// the last output cell — read directly in O(shards) without merging the
// histogram, so this is safe on the ingest-acknowledgement hot path;
// everything else counts increments, also O(shards).
func (st *stream) users() int {
	n := st.reports()
	if n == 0 || !st.agg.Mechanism().FanOut() {
		return n
	}
	marker := st.histBuckets() - 1
	if st.ring != nil {
		return st.ring.Cell(marker)
	}
	return st.counts.Cell(marker)
}

// streamInfo assembles one stream's info row.
func (s *Server) streamInfo(st *stream) StreamInfo {
	estN := 0
	if est := st.est.Load(); est != nil {
		estN = est.N
	}
	return StreamInfo{
		Name:      st.name,
		Epsilon:   st.cfg.Epsilon,
		Buckets:   st.cfg.Buckets,
		Mechanism: st.cfg.Mechanism,
		Bandwidth: st.cfg.Bandwidth,
		Shards:    st.cfg.Shards,
		N:         st.users(),
		EstimateN: estN,
		Window:    st.windowInfo(),
		Config:    s.configOf(st),
		Links:     streamLinks(st.name),
	}
}

// Streams lists every stream in declaration order.
func (s *Server) Streams() []StreamInfo {
	list := s.streamList()
	infos := make([]StreamInfo, len(list))
	for i, st := range list {
		infos[i] = s.streamInfo(st)
	}
	return infos
}

// N returns the total number of reports (users) visible across every
// stream.
func (s *Server) N() int {
	var n int
	for _, st := range s.streamList() {
		n += st.users()
	}
	return n
}

// StreamN returns the report (user) count of one stream ("" = default), or
// -1 if the stream does not exist.
func (s *Server) StreamN(name string) int {
	st := s.lookup(name)
	if st == nil {
		return -1
	}
	return st.users()
}

// Close stops the refresh scheduler and its worker pool and waits for them
// to exit. The handler keeps accepting reports after Close, but estimates
// are no longer refreshed.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		s.rq.close()
	})
	s.wg.Wait()
}

// wake nudges the refresh scheduler without blocking.
func (s *Server) wake() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Refresh trigger taxonomy, exported as the reason label of
// ldp_em_refreshes_total. Indexes into stream.mRefreshes.
const (
	refreshGrowth   = iota // the visible histogram grew
	refreshRotation        // an epoch rotated during this pass
	refreshForced          // mustRefresh was set externally (federation, age-out)
)

var refreshReasons = [3]string{"growth", "rotation", "forced"}

// refreshQueue is the dirty-stream queue between the scheduler and the
// worker pool. Entries are deduped by stream.queued; workers pop the
// highest-priority entry (see popLocked), not FIFO.
type refreshQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*stream
	closed bool
}

func (q *refreshQueue) push(st *stream) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, st)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

func (q *refreshQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// depth reports the number of queued streams (the scrape-time gauge).
func (q *refreshQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// pop blocks for the next stream to refresh, false when the queue is
// closed. The most urgent entry wins: streams that must refresh (rotation
// due, or an external mustRefresh) beat the rest, then larger staleness
// (reports not yet covered by the published estimate) beats smaller.
func (q *refreshQueue) pop(s *Server) (*stream, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return nil, false
	}
	best, bestBoost, bestStale := 0, false, int64(0)
	for i, st := range q.items {
		boost, stale := s.refreshPriority(st)
		if i == 0 || (boost && !bestBoost) || (boost == bestBoost && stale > bestStale) {
			best, bestBoost, bestStale = i, boost, stale
		}
	}
	st := q.items[best]
	last := len(q.items) - 1
	q.items[best] = q.items[last]
	q.items[last] = nil
	q.items = q.items[:last]
	return st, true
}

// refreshPriority ranks one queued stream: a boolean urgency boost (an
// epoch rotation is due, or something forced the next refresh) and the
// staleness in histogram increments.
func (s *Server) refreshPriority(st *stream) (boost bool, staleness int64) {
	if st.mustRefresh.Load() {
		boost = true
	} else if st.ring != nil {
		_, start := st.ring.Current()
		if !s.now().Before(start.Add(time.Duration(st.cfg.Epoch))) {
			boost = true // rotation due: the pass will seal an epoch
		}
	}
	return boost, int64(st.reports()) - st.published.Load()
}

// scheduler is the refresh pacemaker: on every tick (or wake) it stamps the
// liveness clock and enqueues every stream not already queued; the worker
// pool does the actual re-estimation. Every stream is enqueued — not just
// visibly-dirty ones — because rotation clocks and window caches advance
// inside the refresh pass itself, exactly as the old single-goroutine
// engine walked all streams each tick.
func (s *Server) scheduler() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.refresh)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-s.kick:
		case <-ticker.C:
		}
		s.lastTick.Store(time.Now().UnixNano())
		for _, st := range s.streamList() {
			if st.queued.CompareAndSwap(false, true) {
				s.rq.push(st)
			}
		}
	}
}

// refreshWorker drains the refresh queue. Per-stream work is serialized by
// the busy flag: a stream already being refreshed is skipped (the next tick
// re-enqueues it), so workers parallelize across streams, never within one.
func (s *Server) refreshWorker() {
	defer s.wg.Done()
	for {
		st, ok := s.rq.pop(s)
		if !ok {
			return
		}
		st.queued.Store(false)
		if !st.busy.CompareAndSwap(false, true) {
			continue
		}
		s.refreshStream(st)
		st.busy.Store(false)
	}
}

// refreshStream advances a windowed stream's rotation clock, re-estimates
// the stream if its visible histogram changed since the last published
// estimate (growth, or epochs aging out), and refreshes any requested
// window estimates. Refresh workers only, one per stream at a time (the
// busy flag): the stream's scratch buffers and EM workspace are theirs for
// the duration.
func (s *Server) refreshStream(st *stream) {
	reason := refreshGrowth
	if st.ring != nil {
		// Rotation holds the registry read-lock: LoadSnapshot (exclusive
		// lock) can therefore never observe a ring rotating between its
		// validation and its adopt, which keeps restores all-or-nothing.
		s.mu.RLock()
		rotated := st.ring.Advance(s.now())
		s.mu.RUnlock()
		if rotated > 0 {
			reason = refreshRotation
			st.evictAgedWindows()
			st.mustRefresh.Store(true)
			if st.mRotations != nil {
				st.mRotations.Add(uint64(rotated))
			}
			epoch, _ := st.ring.Current()
			rsp := s.tracer.NewTrace("epoch/rotate")
			rsp.SetStream(st.name)
			rsp.Attr("rotated", fmt.Sprintf("%d", rotated)).
				Attr("epoch", fmt.Sprintf("%d", epoch)).End()
			s.scoreSealedEpoch(st, rotated)
		}
		defer s.refreshWindows(st)
	}
	var n int
	if st.ring != nil {
		st.scratch, n = st.ring.MergeAll(st.scratch)
	} else {
		st.scratch, n = st.counts.Snapshot(st.scratch)
	}
	forced := st.mustRefresh.Load()
	if n == 0 || (int64(n) == st.published.Load() && !forced) {
		return
	}
	if forced && reason == refreshGrowth {
		reason = refreshForced
	}
	st.mustRefresh.Store(false)
	init := st.init
	if init == nil {
		// Warm-start from a snapshot-restored estimate when there is one.
		if prev := st.est.Load(); prev != nil && len(prev.Distribution) > 0 {
			init = prev.Distribution
		}
	}
	esp := s.tracer.NewTrace("em/refresh")
	esp.SetStream(st.name)
	esp.Attr("n", fmt.Sprintf("%d", n))
	emStart := time.Now()
	res := st.agg.EstimateInto(&st.ws, st.scratch, init)
	esp.Attr("iterations", fmt.Sprintf("%d", res.Iterations)).End()
	if st.mRefresh != nil {
		st.mRefresh.ObserveExemplar(time.Since(emStart).Seconds(), esp.TraceID())
	}
	if st.mIters != nil {
		st.mIters.Observe(float64(res.Iterations))
	}
	if c := st.mRefreshes[reason]; c != nil {
		c.Inc()
	}
	st.lastRefresh.Store(time.Now().UnixNano())
	st.init = append(st.init[:0], res.Estimate...)
	// res.Estimate aliases the stream's workspace; the published response
	// needs its own immutable copy.
	dist := append([]float64(nil), res.Estimate...)
	users := st.agg.Users(st.scratch, n)
	warm := init != nil && st.agg.Channel() != nil
	st.est.Store(&EstimateResponse{
		Stream:       st.name,
		N:            users,
		Epsilon:      st.cfg.Epsilon,
		Mechanism:    st.cfg.Mechanism,
		Distribution: dist,
		Mean:         histogram.Mean(dist),
		Variance:     histogram.Variance(dist),
		Median:       histogram.Quantile(dist, 0.5),
		Iterations:   res.Iterations,
		Converged:    res.Converged,
		WarmStart:    warm,
		raw:          n,
	})
	st.published.Store(int64(n))
	st.diag.ObserveRefresh(diagnose.Refresh{
		Iterations:    res.Iterations,
		LogLikelihood: res.LogLikelihood,
		LastDelta:     res.LastDelta,
		Converged:     res.Converged,
		Warm:          warm,
		Users:         users,
	})
	if st.mLoglik != nil {
		st.mLoglik.Set(res.LogLikelihood)
	}
	if st.mCIHalf != nil {
		v, _ := diagnose.Variance(st.cfg.Mechanism, st.cfg.Epsilon, st.cfg.Buckets, users)
		st.mCIHalf.Set(diagnose.HalfWidth(v))
	}
	if st.mConverged != nil {
		conv := 0.0
		if res.Converged {
			conv = 1
		}
		st.mConverged.Set(conv)
	}
}

// WireReport is one randomized report as it travels in JSON: either a bare
// number (scalar mechanisms — sw, sw-discrete, grr — and backward-compatible
// with every pre-mechanism client) or an array of numbers (olh: [seed, y];
// hrr: [row, ±1]; oue/sue: the set-bit indices, possibly empty).
type WireReport mechanism.Report

// UnmarshalJSON accepts a JSON number or an array of numbers.
func (r *WireReport) UnmarshalJSON(b []byte) error {
	var f float64
	if err := json.Unmarshal(b, &f); err == nil {
		*r = WireReport{f}
		return nil
	}
	var v []float64
	if err := json.Unmarshal(b, &v); err == nil {
		*r = v
		return nil
	}
	return fmt.Errorf("ldphttp: bad report %s (want a number or an array of numbers)", b)
}

// MarshalJSON renders scalar reports as bare numbers.
func (r WireReport) MarshalJSON() ([]byte, error) {
	if len(r) == 1 {
		return json.Marshal(r[0])
	}
	return json.Marshal([]float64(r))
}

type reportRequest struct {
	Stream string     `json:"stream"`
	Report WireReport `json:"report"`
}

type batchRequest struct {
	Stream  string       `json:"stream"`
	Reports []WireReport `json:"reports"`
}

// EstimateResponse is the JSON shape of GET /estimate.
type EstimateResponse struct {
	Stream string `json:"stream"`
	// N is the number of reports (users) the estimate covers.
	N         int     `json:"n"`
	Epsilon   float64 `json:"epsilon"`
	Mechanism string  `json:"mechanism,omitempty"`
	// Distribution is the reconstruction over the stream's Buckets.
	Distribution []float64 `json:"distribution"`
	Mean         float64   `json:"mean"`
	Variance     float64   `json:"variance"`
	Median       float64   `json:"median"`
	Iterations   int       `json:"iterations"`
	Converged    bool      `json:"converged"`
	// WarmStart reports whether the reconstruction was warm-started from
	// the previous estimate (false only for the first one).
	WarmStart bool `json:"warm_start"`
	// Restored reports that the estimate was loaded from a snapshot rather
	// than computed by this process.
	Restored bool `json:"restored,omitempty"`
	// PendingReports is the number of histogram increments ingested after
	// the served estimate was computed — the staleness of a cached
	// response. For one-cell-per-report mechanisms this equals the number
	// of pending reports; fan-out oracles (oue/sue, olh) count support-cell
	// increments, so it overstates the pending report count by the fan-out
	// factor. The background engine is already re-estimating when this is
	// non-zero.
	PendingReports int `json:"pending_reports,omitempty"`
	// Window and Epochs identify a sliding-window answer: the canonical
	// selector ("epochs:3..7") and the resolved inclusive epoch range. Both
	// are absent on whole-stream estimates.
	Window string      `json:"window,omitempty"`
	Epochs *EpochRange `json:"epochs,omitempty"`

	// raw is the histogram increment total the estimate covers — internal
	// staleness bookkeeping (published mirrors it), persisted to snapshots
	// as EstimateRaw. Equal to N except for fan-out mechanisms.
	raw int
}

// resolveStream finds the request's stream or writes a 404.
func (s *Server) resolveStream(w http.ResponseWriter, name string) *stream {
	st := s.lookup(name)
	if st == nil {
		errorJSON(w, http.StatusNotFound, CodeUnknownStream,
			"unknown stream %q (declare it with POST /v1/streams)", name)
	}
	return st
}

// cellPool recycles the bucket-cell scratch of the ingest hot path: every
// /report and /batch request needs a []int for Bucketize's output, and at
// high report rates those allocations dominate the handler. The striped
// histogram consumes the cells synchronously, so the buffer is free again
// when the handler returns.
var cellPool = sync.Pool{New: func() any { b := make([]int, 0, 256); return &b }}

// serveReport is the shared core of POST /report and POST
// /v1/streams/{name}/report: bucketize one report and land it in the
// stream's histogram.
func (s *Server) serveReport(w http.ResponseWriter, name string, rep WireReport) {
	st := s.resolveStream(w, name)
	if st == nil {
		return
	}
	sp := spanOf(w)
	sp.SetStream(st.name)
	bsp := sp.Child("bucketize")
	bufp := cellPool.Get().(*[]int)
	cells, err := st.agg.Bucketize((*bufp)[:0], mechanism.Report(rep))
	*bufp = cells[:0]
	bsp.End()
	if err != nil {
		cellPool.Put(bufp)
		sp.Fail(CodeBadRequest)
		errorJSON(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	isp := sp.Child("ingest")
	if len(cells) == 1 {
		st.add(cells[0])
	} else {
		st.addBatch(cells)
	}
	isp.End()
	cellPool.Put(bufp)
	if st.mReports != nil {
		st.mReports.Inc()
	}
	if sp != nil {
		st.links.add(sp.TraceID())
	}
	writeJSON(w, map[string]any{"accepted": true, "stream": st.name, "n": st.users()})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, r, http.MethodPost)
		return
	}
	codec, ok := s.negotiateCodec(w, r, "/report")
	if !ok {
		return
	}
	if codec == codecBinary {
		// A binary frame carries no stream field; it addresses the default
		// stream, the same rule as a JSON body with the field omitted.
		s.serveBinaryReport(w, r, "")
		return
	}
	var req reportRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	s.serveReport(w, req.Stream, req.Report)
}

// serveBatch is the shared core of POST /batch and POST
// /v1/streams/{name}/batch.
func (s *Server) serveBatch(w http.ResponseWriter, name string, reports []WireReport) {
	if len(reports) == 0 {
		errorJSON(w, http.StatusBadRequest, CodeBadRequest, "empty batch")
		return
	}
	st := s.resolveStream(w, name)
	if st == nil {
		return
	}
	sp := spanOf(w)
	sp.SetStream(st.name)
	// Validate the whole batch before ingesting anything, so a bad report
	// in the middle cannot leave a half-applied batch behind.
	bsp := sp.Child("bucketize").Attr("reports", fmt.Sprintf("%d", len(reports)))
	bufp := cellPool.Get().(*[]int)
	buckets := (*bufp)[:0]
	defer func() {
		*bufp = buckets[:0]
		cellPool.Put(bufp)
	}()
	var err error
	for i, rep := range reports {
		if buckets, err = st.agg.Bucketize(buckets, mechanism.Report(rep)); err != nil {
			bsp.Fail(CodeBadRequest).End()
			errorJSON(w, http.StatusBadRequest, CodeBadRequest, "report %d: %v", i, err)
			return
		}
	}
	bsp.End()
	isp := sp.Child("ingest")
	st.addBatch(buckets)
	isp.End()
	if st.mReports != nil {
		st.mReports.Add(uint64(len(reports)))
	}
	if sp != nil {
		st.links.add(sp.TraceID())
	}
	writeJSON(w, map[string]any{"accepted": len(reports), "stream": st.name, "n": st.users()})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, r, http.MethodPost)
		return
	}
	codec, ok := s.negotiateCodec(w, r, "/batch")
	if !ok {
		return
	}
	if codec == codecBinary {
		s.serveBinaryBatch(w, r, "")
		return
	}
	var req batchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	s.serveBatch(w, req.Stream, req.Reports)
}

// loadEstimate fetches a stream's cached reconstruction for serving,
// handling the two not-ready cases uniformly for /estimate and /query:
// 409 when the stream has no reports at all, 503 (with pending_reports and
// Retry-After, never blocking the client) while the first estimate is still
// being computed. The returned pending count is how many reports arrived
// after the cached estimate, clamped at zero — the engine can publish an
// estimate covering more reports than the count read here.
func (s *Server) loadEstimate(w http.ResponseWriter, st *stream) (cached *EstimateResponse, pending int, ok bool) {
	n := st.reports()
	if n == 0 {
		errorJSON(w, http.StatusConflict, CodeNoReports, "no reports yet on stream %q", st.name)
		return nil, 0, false
	}
	cached = st.est.Load()
	if cached == nil {
		// First estimate still pending: tell the client instead of
		// hanging, and make sure the engine is on it.
		s.wake()
		retryJSON(w, http.StatusServiceUnavailable, CodeEstimatePending, time.Second,
			map[string]any{"stream": st.name, "pending_reports": n},
			"estimate pending: first reconstruction in progress")
		return nil, 0, false
	}
	// Staleness is tracked in raw histogram increments (published), not the
	// user count the response carries — for fan-out mechanisms the two
	// differ.
	pub := int(st.published.Load())
	if pub != n {
		s.wake() // refresh in the background; serve the cache now
	}
	if n > pub {
		pending = n - pub
	}
	return cached, pending, true
}

// serveEstimate is the shared core of GET /estimate and GET
// /v1/streams/{name}/estimate.
func (s *Server) serveEstimate(w http.ResponseWriter, name, windowSel string) {
	st := s.resolveStream(w, name)
	if st == nil {
		return
	}
	cached, pending, ok := s.loadEstimateOrWindow(w, st, windowSel)
	if !ok {
		return
	}
	// The cached response is shared — copy, don't mutate.
	out := *cached
	out.PendingReports = pending
	writeJSON(w, out)
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, r, http.MethodGet)
		return
	}
	s.serveEstimate(w, r.URL.Query().Get("stream"), r.URL.Query().Get("window"))
}

// StreamCreateResponse is the JSON shape of POST /streams: the full
// effective configuration of the declared stream (identical to GET /config)
// plus whether this request created it. Re-declaring an existing stream with
// a compatible configuration is idempotent — 200 with the existing config —
// so a fleet of edge collectors can blindly sync their declarations to a
// root; only a genuinely conflicting configuration is refused with 409.
type StreamCreateResponse struct {
	ConfigResponse
	Created bool `json:"created"`
	// Links locates the created stream's v1 subresources, pre-escaped, so
	// clients never build (and possibly mis-escape) stream URLs themselves.
	Links StreamLinks `json:"links"`
}

// serveStreamList and serveStreamCreate are the shared cores of /streams and
// /v1/streams.
func (s *Server) serveStreamList(w http.ResponseWriter) {
	writeJSON(w, map[string]any{"streams": s.Streams()})
}

func (s *Server) serveStreamCreate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
		StreamConfig
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	s.mu.RLock()
	_, existed := s.streams[req.Name] // exact name: "" must not alias the default stream
	s.mu.RUnlock()
	if err := s.CreateStream(req.Name, req.StreamConfig); err != nil {
		// 409 is reserved for a real configuration conflict with the
		// live stream; a malformed declaration is 400 whether or not
		// the name exists.
		status, code := http.StatusBadRequest, CodeBadRequest
		if errors.Is(err, ErrStreamConfigMismatch) {
			status, code = http.StatusConflict, CodeStreamConflict
		}
		errorJSON(w, status, code, "%v", err)
		return
	}
	st := s.lookup(req.Name)
	if !existed {
		w.WriteHeader(http.StatusCreated)
	}
	writeJSON(w, StreamCreateResponse{ConfigResponse: s.configOf(st), Created: !existed, Links: streamLinks(st.name)})
}

func (s *Server) handleStreams(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.serveStreamList(w)
	case http.MethodPost:
		s.serveStreamCreate(w, r)
	default:
		methodNotAllowed(w, r, http.MethodGet, http.MethodPost)
	}
}

// serveStreamDelete is the shared core of DELETE /streams/{name} and DELETE
// /v1/streams/{name}.
func (s *Server) serveStreamDelete(w http.ResponseWriter, name string) {
	if err := s.DropStream(name); err != nil {
		errorJSON(w, http.StatusNotFound, CodeUnknownStream, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"dropped": name})
}

// serveStreamInfo answers GET /v1/streams/{name}.
func (s *Server) serveStreamInfo(w http.ResponseWriter, name string) {
	st := s.resolveStream(w, name)
	if st == nil {
		return
	}
	writeJSON(w, s.streamInfo(st))
}

// ConfigResponse is the JSON shape of GET /config: the full effective
// configuration of one stream — every value resolved, not as declared — so
// a client can reproduce the stream's setup (or build a matching client
// mechanism) from this response alone.
type ConfigResponse struct {
	Stream    string  `json:"stream"`
	Mechanism string  `json:"mechanism"`
	Epsilon   float64 `json:"epsilon"`
	Buckets   int     `json:"buckets"`
	// OutputBuckets is the report-histogram granularity the mechanism
	// derived (equals Buckets for sw unless overridden).
	OutputBuckets int `json:"output_buckets"`
	// Bandwidth is the effective wave half-width as a domain fraction (sw
	// family only; the declared 0 = "optimal" comes back resolved).
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// Shards is the effective ingestion stripe count.
	Shards int `json:"shards"`
	// Epoch and Retain carry the windowing of an epoch-rotated stream.
	Epoch  Duration `json:"epoch,omitempty"`
	Retain int      `json:"retain,omitempty"`
	// EMWorkers is the resolved server-wide EM parallelism (em.Options
	// semantics: negative = every CPU, 1 = serial, n > 1 = n partitions).
	EMWorkers int `json:"em_workers"`
}

// serveConfig is the shared core of GET /config and GET
// /v1/streams/{name}/config.
func (s *Server) serveConfig(w http.ResponseWriter, name string) {
	st := s.resolveStream(w, name)
	if st == nil {
		return
	}
	writeJSON(w, s.configOf(st))
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, r, http.MethodGet)
		return
	}
	s.serveConfig(w, r.URL.Query().Get("stream"))
}

// configOf assembles the full effective configuration of one stream.
func (s *Server) configOf(st *stream) ConfigResponse {
	params := st.agg.Mechanism().Params()
	return ConfigResponse{
		Stream:        st.name,
		Mechanism:     st.cfg.Mechanism,
		Epsilon:       st.cfg.Epsilon,
		Buckets:       st.cfg.Buckets,
		OutputBuckets: st.agg.OutputBuckets(),
		Bandwidth:     params.Bandwidth,
		Shards:        st.histShards(),
		Epoch:         st.cfg.Epoch,
		Retain:        st.cfg.Retain,
		EMWorkers:     s.workers,
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing useful to do but log via the
		// standard error path of the server.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
