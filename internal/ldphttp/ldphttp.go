// Package ldphttp exposes a Square Wave collection round over HTTP: clients
// POST their randomized reports to a collector endpoint and anyone may GET
// the current reconstructed distribution. This is the deployment shape of
// the real-world LDP systems the paper cites (RAPPOR in Chrome, Apple's and
// Microsoft's telemetry): randomization happens strictly on the client; the
// server only ever sees ε-LDP reports.
//
// Endpoints:
//
//	POST /report   {"report": 0.1234}            one randomized report
//	POST /batch    {"reports": [0.1, 0.2, ...]}  many reports at once
//	GET  /estimate                               reconstruction + statistics
//	GET  /config                                 mechanism parameters clients need
//
// The handler serializes access internally and is safe for concurrent use.
package ldphttp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/core"
	"repro/internal/histogram"
)

// Server wraps a core.Aggregator behind an http.Handler.
type Server struct {
	cfg Config

	mu  sync.Mutex
	agg *core.Aggregator
}

// Config mirrors the mechanism parameters clients and server must share.
type Config struct {
	// Epsilon is the LDP budget.
	Epsilon float64 `json:"epsilon"`
	// Buckets is the reconstruction granularity.
	Buckets int `json:"buckets"`
	// Bandwidth is the wave half-width (0 = optimal).
	Bandwidth float64 `json:"bandwidth"`
}

// NewServer builds a collection server.
func NewServer(cfg Config) *Server {
	agg := core.NewAggregator(core.Config{
		Epsilon:   cfg.Epsilon,
		Buckets:   cfg.Buckets,
		Bandwidth: cfg.Bandwidth,
		Smoothing: true,
	})
	return &Server{cfg: cfg, agg: agg}
}

// N returns the number of reports ingested.
func (s *Server) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agg.N()
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/config", s.handleConfig)
	return mux
}

type reportRequest struct {
	Report float64 `json:"report"`
}

type batchRequest struct {
	Reports []float64 `json:"reports"`
}

// EstimateResponse is the JSON shape of GET /estimate.
type EstimateResponse struct {
	N            int       `json:"n"`
	Epsilon      float64   `json:"epsilon"`
	Distribution []float64 `json:"distribution"`
	Mean         float64   `json:"mean"`
	Variance     float64   `json:"variance"`
	Median       float64   `json:"median"`
	Iterations   int       `json:"iterations"`
	Converged    bool      `json:"converged"`
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req reportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.agg.Ingest(req.Report)
	n := s.agg.N()
	s.mu.Unlock()
	writeJSON(w, map[string]any{"accepted": true, "n": n})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Reports) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	for _, rep := range req.Reports {
		s.agg.Ingest(rep)
	}
	n := s.agg.N()
	s.mu.Unlock()
	writeJSON(w, map[string]any{"accepted": len(req.Reports), "n": n})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	n := s.agg.N()
	if n == 0 {
		s.mu.Unlock()
		http.Error(w, "no reports yet", http.StatusConflict)
		return
	}
	res := s.agg.Estimate()
	s.mu.Unlock()

	writeJSON(w, EstimateResponse{
		N:            n,
		Epsilon:      s.cfg.Epsilon,
		Distribution: res.Estimate,
		Mean:         histogram.Mean(res.Estimate),
		Variance:     histogram.Variance(res.Estimate),
		Median:       histogram.Quantile(res.Estimate, 0.5),
		Iterations:   res.Iterations,
		Converged:    res.Converged,
	})
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.cfg)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing useful to do but log via the
		// standard error path of the server.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
