// Package ldphttp exposes a Square Wave collection round over HTTP: clients
// POST their randomized reports to a collector endpoint and anyone may GET
// the current reconstructed distribution. This is the deployment shape of
// the real-world LDP systems the paper cites (RAPPOR in Chrome, Apple's and
// Microsoft's telemetry): randomization happens strictly on the client; the
// server only ever sees ε-LDP reports.
//
// Endpoints:
//
//	POST /report   {"report": 0.1234}            one randomized report
//	POST /batch    {"reports": [0.1, 0.2, ...]}  many reports at once
//	GET  /estimate                               reconstruction + statistics
//	GET  /config                                 mechanism parameters clients need
//
// # Architecture
//
// Ingestion and estimation are decoupled so neither blocks the other.
// Reports land in a striped atomic histogram (package aggregate) — no lock
// is taken on the request path, so POST /report and POST /batch scale with
// the hardware. A single background goroutine re-runs the EMS
// reconstruction over non-blocking snapshots of that histogram, warm-started
// from its previous estimate (which converges in a fraction of the
// iterations) and with the E-step matrix products partitioned across the
// worker pool. GET /estimate never runs EM on the request goroutine: it
// serves the cached reconstruction — waiting only when no estimate has been
// computed yet — and reports how many reports arrived after the served
// estimate was computed.
package ldphttp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/histogram"
)

// Config mirrors the mechanism parameters clients and server must share,
// plus server-side tuning knobs (omitted from /config when zero).
type Config struct {
	// Epsilon is the LDP budget.
	Epsilon float64 `json:"epsilon"`
	// Buckets is the reconstruction granularity.
	Buckets int `json:"buckets"`
	// Bandwidth is the wave half-width (0 = optimal).
	Bandwidth float64 `json:"bandwidth"`
	// Shards overrides the ingestion stripe count (0 = one per CPU,
	// rounded up to a power of two).
	Shards int `json:"shards,omitempty"`
	// EMWorkers sets the EM parallelism of the background estimator:
	// 0 uses every CPU, 1 forces serial, n > 1 uses n partitions. Note
	// the zero value is "automatic" like every knob in this Config —
	// unlike em.Options.Workers and repro.Options.Workers, whose zero
	// value is the library's conservative serial default.
	EMWorkers int `json:"em_workers,omitempty"`
	// RefreshInterval is the cadence at which the background estimator
	// re-checks for new reports (0 = 500ms). Estimate requests that find
	// the cache stale also wake it immediately.
	RefreshInterval time.Duration `json:"-"`
}

// Server wraps striped ingestion and a background estimation engine behind
// an http.Handler.
type Server struct {
	cfg     Config
	refresh time.Duration
	agg     *core.Aggregator // immutable channel + EM config; counts unused
	counts  *aggregate.Striped

	est       atomic.Pointer[EstimateResponse]
	kick      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	firstOnce sync.Once
	first     chan struct{} // closed once the first estimate is published
	wg        sync.WaitGroup
}

// NewServer builds a collection server and starts its background estimator.
// Call Close when done with the server to stop the estimator goroutine.
func NewServer(cfg Config) *Server {
	workers := cfg.EMWorkers
	if workers == 0 {
		workers = -1 // em semantics: negative = all CPUs
	}
	agg := core.NewAggregator(core.Config{
		Epsilon:   cfg.Epsilon,
		Buckets:   cfg.Buckets,
		Bandwidth: cfg.Bandwidth,
		Smoothing: true,
		EM:        em.Options{Workers: workers},
	})
	refresh := cfg.RefreshInterval
	if refresh <= 0 {
		refresh = 500 * time.Millisecond
	}
	s := &Server{
		cfg:     cfg,
		refresh: refresh,
		agg:     agg,
		counts:  aggregate.New(agg.OutputBuckets(), cfg.Shards),
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		first:   make(chan struct{}),
	}
	s.wg.Add(1)
	go s.estimator()
	return s
}

// N returns the number of reports ingested.
func (s *Server) N() int { return s.counts.N() }

// Close stops the background estimator and waits for it to exit. The
// handler keeps accepting reports after Close, but estimates are no longer
// refreshed.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	s.wg.Wait()
}

// wake nudges the background estimator without blocking.
func (s *Server) wake() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// estimator is the background estimation engine: on every tick (or wake) it
// snapshots the striped histogram and, if new reports arrived, re-runs EMS
// warm-started from the previous estimate.
func (s *Server) estimator() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.refresh)
	defer ticker.Stop()
	var (
		counts    []float64
		init      []float64
		published int
	)
	for {
		select {
		case <-s.done:
			return
		case <-s.kick:
		case <-ticker.C:
		}
		var n int
		counts, n = s.counts.Snapshot(counts)
		if n == 0 || n == published {
			continue
		}
		res := s.agg.EstimateFrom(counts, init)
		init = append(init[:0], res.Estimate...)
		s.est.Store(&EstimateResponse{
			N:            n,
			Epsilon:      s.cfg.Epsilon,
			Distribution: res.Estimate,
			Mean:         histogram.Mean(res.Estimate),
			Variance:     histogram.Variance(res.Estimate),
			Median:       histogram.Quantile(res.Estimate, 0.5),
			Iterations:   res.Iterations,
			Converged:    res.Converged,
			WarmStart:    published > 0,
		})
		published = n
		s.firstOnce.Do(func() { close(s.first) })
	}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/config", s.handleConfig)
	return mux
}

type reportRequest struct {
	Report float64 `json:"report"`
}

type batchRequest struct {
	Reports []float64 `json:"reports"`
}

// EstimateResponse is the JSON shape of GET /estimate.
type EstimateResponse struct {
	N            int       `json:"n"`
	Epsilon      float64   `json:"epsilon"`
	Distribution []float64 `json:"distribution"`
	Mean         float64   `json:"mean"`
	Variance     float64   `json:"variance"`
	Median       float64   `json:"median"`
	Iterations   int       `json:"iterations"`
	Converged    bool      `json:"converged"`
	// WarmStart reports whether the reconstruction was warm-started from
	// the previous estimate (false only for the first one).
	WarmStart bool `json:"warm_start"`
	// PendingReports is the number of reports ingested after the served
	// estimate was computed — the staleness of a cached response. The
	// background engine is already re-estimating when this is non-zero.
	PendingReports int `json:"pending_reports,omitempty"`
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req reportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	s.counts.Add(s.agg.Bucket(req.Report))
	writeJSON(w, map[string]any{"accepted": true, "n": s.counts.N()})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Reports) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	buckets := make([]int, len(req.Reports))
	for i, rep := range req.Reports {
		buckets[i] = s.agg.Bucket(rep)
	}
	s.counts.AddBatch(buckets)
	writeJSON(w, map[string]any{"accepted": len(req.Reports), "n": s.counts.N()})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	n := s.counts.N()
	if n == 0 {
		http.Error(w, "no reports yet", http.StatusConflict)
		return
	}
	if cached := s.est.Load(); cached != nil {
		if cached.N != n {
			s.wake() // refresh in the background; serve stale now
		}
		serveEstimate(w, cached, n)
		return
	}
	// Cold cache: the first estimate is being computed — wait for it (on
	// the background goroutine, never this one).
	s.wake()
	select {
	case <-s.first:
		serveEstimate(w, s.est.Load(), n)
	case <-r.Context().Done():
		http.Error(w, "estimate not ready", http.StatusServiceUnavailable)
	case <-s.done:
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	}
}

// serveEstimate writes a cached estimate, stamping its staleness relative to
// the current ingestion total. The cached response is shared — copy, don't
// mutate.
func serveEstimate(w http.ResponseWriter, cached *EstimateResponse, n int) {
	out := *cached
	if n > cached.N {
		out.PendingReports = n - cached.N
	}
	writeJSON(w, out)
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.cfg)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing useful to do but log via the
		// standard error path of the server.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
