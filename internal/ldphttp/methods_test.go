package ldphttp

// Satellite coverage: idempotent stream declaration and uniform
// method-not-allowed handling (405 + Allow header + JSON error body) across
// every JSON endpoint.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/federate"
	"repro/internal/sw"
)

func TestStreamsDeclareIdempotent(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: time.Hour})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	declare := func(body string) (StreamCreateResponse, int) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/streams", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out StreamCreateResponse
		if resp.StatusCode < 300 {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return out, resp.StatusCode
	}

	// First declaration: 201 with the full effective config.
	out, code := declare(`{"name": "age", "epsilon": 2, "buckets": 32, "mechanism": "oue"}`)
	if code != http.StatusCreated || !out.Created {
		t.Fatalf("create answered %d %+v", code, out)
	}
	if out.Stream != "age" || out.Mechanism != "oue" || out.OutputBuckets == 0 || out.Shards == 0 {
		t.Fatalf("create response not the full config: %+v", out)
	}

	// Byte-identical re-declaration: 200, created=false, same config — the
	// edge auto-sync path.
	out, code = declare(`{"name": "age", "epsilon": 2, "buckets": 32, "mechanism": "oue"}`)
	if code != http.StatusOK || out.Created {
		t.Fatalf("re-declare answered %d %+v", code, out)
	}
	if out.Stream != "age" || out.Epsilon != 2 || out.Buckets != 32 || out.Mechanism != "oue" {
		t.Fatalf("re-declare did not echo the existing config: %+v", out)
	}

	// Conflicting config: 409.
	if _, code = declare(`{"name": "age", "epsilon": 3, "buckets": 32, "mechanism": "oue"}`); code != http.StatusConflict {
		t.Fatalf("conflicting re-declare answered %d, want 409", code)
	}
	// A malformed declaration is 400 even when the stream exists — 409 is
	// reserved for genuine conflicts.
	if _, code = declare(`{"name": "age", "epsilon": -1}`); code != http.StatusBadRequest {
		t.Fatalf("invalid re-declare answered %d, want 400", code)
	}
	if _, code = declare(`{"name": "age", "epsilon": 2, "buckets": 32, "mechanism": "bogus"}`); code != http.StatusBadRequest {
		t.Fatalf("unknown-mechanism re-declare answered %d, want 400", code)
	}
}

func TestStreamsRedeclareAfterAutoDeclare(t *testing.T) {
	// An auto-declared stream carries the RESOLVED bandwidth from the
	// pushed fingerprint; a human (or edge) re-declaring it with the
	// equivalent "0 = optimal" default must still get the idempotent 200 —
	// compatibility is judged on effective values, not declared ones.
	_, ts := newRoot(t, true)
	counts := make([]uint64, 64)
	counts[5] = 3
	body, err := federate.EncodePush("e1", 1, []federate.StreamDelta{{
		Stream: "age",
		Fingerprint: federate.Fingerprint{Mechanism: "sw", Epsilon: 1, Buckets: 64,
			OutputBuckets: 64, Bandwidth: sw.BOpt(1)},
		Epochs: []federate.EpochDelta{{Epoch: 0, N: 3, Counts: counts}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if pr, code := pushBody(t, ts.URL, body); code != 200 || !pr.Applied {
		t.Fatalf("auto-declare push answered %d %+v", code, pr)
	}

	resp, err := http.Post(ts.URL+"/streams", "application/json",
		strings.NewReader(`{"name": "age", "epsilon": 1, "buckets": 64}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("equivalent re-declare answered %d, want 200", resp.StatusCode)
	}
	var out StreamCreateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Created || out.Bandwidth != sw.BOpt(1) {
		t.Fatalf("re-declare response %+v", out)
	}
	// An explicit non-optimal bandwidth is still a conflict.
	resp2, err := http.Post(ts.URL+"/streams", "application/json",
		strings.NewReader(`{"name": "age", "epsilon": 1, "buckets": 64, "bandwidth": 0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("non-optimal re-declare answered %d, want 409", resp2.StatusCode)
	}
}

func TestMethodNotAllowedMatrix(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 16, RefreshInterval: time.Hour,
		Federation: FederationConfig{Accept: true}})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	cases := []struct {
		path   string
		method string
		allow  string
	}{
		{"/streams", http.MethodDelete, "GET, POST"},
		{"/streams", http.MethodPut, "GET, POST"},
		{"/streams/age", http.MethodGet, "DELETE"},
		{"/streams/age", http.MethodPost, "DELETE"},
		{"/report", http.MethodGet, "POST"},
		{"/report", http.MethodDelete, "POST"},
		{"/batch", http.MethodGet, "POST"},
		{"/estimate", http.MethodPost, "GET"},
		{"/estimate", http.MethodDelete, "GET"},
		{"/query", http.MethodDelete, "GET, POST"},
		{"/config", http.MethodPost, "GET"},
		{"/federation/push", http.MethodGet, "POST"},
		{"/federation/peers", http.MethodPost, "GET"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s: Allow %q, want %q", tc.method, tc.path, got, tc.allow)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s: Content-Type %q, want application/json", tc.method, tc.path, ct)
		}
		var body struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error.Message == "" {
			t.Errorf("%s %s: body is not a JSON error envelope (%v)", tc.method, tc.path, err)
		}
		if body.Error.Code != CodeMethodNotAllowed {
			t.Errorf("%s %s: error code %q, want %q", tc.method, tc.path, body.Error.Code, CodeMethodNotAllowed)
		}
		resp.Body.Close()
	}
}
