package ldphttp

// Tests of the windowed-collection subsystem: mock-clock rotation through
// the engine, window selectors on /estimate and /query, DELETE /streams,
// windowed CreateStream validation, and the acceptance criterion that
// sliding-window estimates survive a snapshot save → kill → restore cycle
// bit-identically.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/randx"
)

// mockClock is a thread-safe manual clock for Config.Clock.
type mockClock struct {
	mu  sync.Mutex
	now time.Time
}

func newMockClock() *mockClock {
	return &mockClock{now: time.Date(2026, 7, 30, 12, 0, 0, 0, time.UTC)}
}

func (c *mockClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *mockClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newWindowedServer(t *testing.T, clock *mockClock) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: 5 * time.Millisecond, Clock: clock.Now})
	t.Cleanup(s.Close)
	if err := s.CreateStream("lat", StreamConfig{
		Epsilon: 1, Buckets: 32, Epoch: Duration(time.Minute), Retain: 4,
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postReports(t *testing.T, url, stream string, seed uint64, n int) {
	t.Helper()
	client := core.NewClient(core.Config{Epsilon: 1, Buckets: 32, Smoothing: true})
	rng := randx.New(seed)
	reports := make([]float64, n)
	for i := range reports {
		reports[i] = client.Report(rng.Beta(5, 2), rng)
	}
	blob, _ := json.Marshal(map[string]any{"stream": stream, "reports": reports})
	resp, err := http.Post(url+"/batch", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
}

// waitRotation polls the server until the stream's live epoch reaches want.
func waitRotation(t *testing.T, s *Server, stream string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, info := range s.Streams() {
			if info.Name == stream && info.Window != nil && info.Window.CurrentEpoch >= want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream %q never rotated to epoch %d", stream, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// getWindowEstimate polls until the window estimate covers wantN reports.
func getWindowEstimate(t *testing.T, url, stream, sel string, wantN int) EstimateResponse {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var est EstimateResponse
	for {
		resp, err := http.Get(url + "/estimate?stream=" + stream + "&window=" + sel)
		if err != nil {
			t.Fatal(err)
		}
		status := resp.StatusCode
		if status == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
				resp.Body.Close()
				t.Fatal(err)
			}
			resp.Body.Close()
			if est.N >= wantN {
				return est
			}
		} else {
			resp.Body.Close()
			if status != http.StatusServiceUnavailable && status != http.StatusConflict {
				t.Fatalf("GET /estimate window=%s status %d", sel, status)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("window %s never covered %d reports (last N=%d)", sel, wantN, est.N)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestWindowRotationAndSelectors(t *testing.T) {
	clock := newMockClock()
	s, ts := newWindowedServer(t, clock)

	// Epoch 0: 600 reports.
	postReports(t, ts.URL, "lat", 1, 600)
	est := getWindowEstimate(t, ts.URL, "lat", "last:1", 600)
	if est.Window != "epochs:0..0" || est.Epochs == nil || est.Epochs.Lo != 0 || est.Epochs.Hi != 0 {
		t.Fatalf("live window answer mislabeled: window=%q epochs=%+v", est.Window, est.Epochs)
	}

	// Rotate; epoch 1 gets 400 reports.
	clock.Advance(time.Minute)
	waitRotation(t, s, "lat", 1)
	postReports(t, ts.URL, "lat", 2, 400)

	if est := getWindowEstimate(t, ts.URL, "lat", "last:1", 400); est.N != 400 {
		t.Fatalf("last:1 after rotation covers %d, want 400", est.N)
	}
	if est := getWindowEstimate(t, ts.URL, "lat", "epochs:0..0", 600); est.N != 600 {
		t.Fatalf("sealed epoch 0 covers %d, want 600", est.N)
	}
	if est := getWindowEstimate(t, ts.URL, "lat", "last:2", 1000); est.N != 1000 {
		t.Fatalf("last:2 covers %d, want 1000", est.N)
	}
	// The whole-stream estimate covers everything retained.
	if est := getFreshStreamEstimate(t, ts.URL, "lat", 1000); est.Window != "" {
		t.Fatalf("whole-stream estimate carries window %q", est.Window)
	}

	// Selector errors.
	for _, tc := range []struct {
		sel, stream string
		status      int
	}{
		{"hourly", "lat", http.StatusBadRequest},
		{"last:0", "lat", http.StatusBadRequest},
		{"epochs:2..9", "lat", http.StatusBadRequest}, // future
		{"last:1", "", http.StatusBadRequest},         // default stream is not windowed
	} {
		url := ts.URL + "/estimate?window=" + tc.sel
		if tc.stream != "" {
			url += "&stream=" + tc.stream
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("window=%s stream=%q: status %d, want %d", tc.sel, tc.stream, resp.StatusCode, tc.status)
		}
	}

	// An empty window answers 409, not 503: rotate to an empty live epoch.
	clock.Advance(time.Minute)
	waitRotation(t, s, "lat", 2)
	resp, err := http.Get(ts.URL + "/estimate?stream=lat&window=last:1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("empty window status %d, want 409", resp.StatusCode)
	}

	// Age out epoch 0 (retain 4): rotate until oldest > 0, then 410.
	for e := 3; e <= 6; e++ {
		clock.Advance(time.Minute)
		waitRotation(t, s, "lat", e)
	}
	resp, err = http.Get(ts.URL + "/estimate?stream=lat&window=epochs:0..0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Errorf("aged-out window status %d, want 410", resp.StatusCode)
	}
}

func TestWindowQueries(t *testing.T) {
	clock := newMockClock()
	s, ts := newWindowedServer(t, clock)
	postReports(t, ts.URL, "lat", 3, 500)
	getWindowEstimate(t, ts.URL, "lat", "last:1", 500) // wait until computed
	clock.Advance(time.Minute)
	waitRotation(t, s, "lat", 1)
	postReports(t, ts.URL, "lat", 4, 300)
	getWindowEstimate(t, ts.URL, "lat", "epochs:1..1", 300)

	// GET /query with a window selector answers from that window's cache.
	resp, err := http.Get(ts.URL + "/query?stream=lat&type=mean&window=epochs:0..0")
	if err != nil {
		t.Fatal(err)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("windowed query status %d", resp.StatusCode)
	}
	if qr.N != 500 || qr.Window != "epochs:0..0" || qr.Epochs == nil || qr.Epochs.Hi != 0 {
		t.Fatalf("windowed query provenance: N=%d window=%q epochs=%+v", qr.N, qr.Window, qr.Epochs)
	}
	if qr.Value <= 0 || qr.Value >= 1 {
		t.Fatalf("windowed mean %v out of (0,1)", qr.Value)
	}

	// POST /query with a window field scopes the whole batch. Warm the
	// last:2 window first — a cold window cache answers 503 by design.
	getWindowEstimate(t, ts.URL, "lat", "last:2", 800)
	blob, _ := json.Marshal(map[string]any{
		"stream": "lat", "window": "last:2",
		"queries": []map[string]any{{"type": "mean"}, {"type": "quantile", "q": []float64{0.5}}},
	})
	resp, err = http.Post(ts.URL+"/query", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var br BatchQueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch windowed query status %d", resp.StatusCode)
	}
	if br.N != 800 || br.Window != "epochs:0..1" || len(br.Results) != 2 {
		t.Fatalf("batch windowed query: N=%d window=%q results=%d", br.N, br.Window, len(br.Results))
	}
}

func TestDropStream(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 16, RefreshInterval: 5 * time.Millisecond})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if err := s.CreateStream("tmp", StreamConfig{Epsilon: 1, Buckets: 16}); err != nil {
		t.Fatal(err)
	}
	postReports(t, ts.URL, "tmp", 5, 50)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/streams/tmp", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	// Gone from the registry, from /streams, and from request routing.
	if s.StreamN("tmp") != -1 {
		t.Error("dropped stream still resolvable")
	}
	for _, info := range s.Streams() {
		if info.Name == "tmp" {
			t.Error("dropped stream still listed")
		}
	}
	resp, err = http.Get(ts.URL + "/estimate?stream=tmp")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("estimate on dropped stream status %d, want 404", resp.StatusCode)
	}

	// Deleting again is 404; deleting without a name is 400; non-DELETE 405.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/streams/tmp", nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("double DELETE status %d, want 404", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/streams/", nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("nameless DELETE status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/streams/whatever")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /streams/{name} status %d, want 405", resp.StatusCode)
	}

	// A dropped name can be redeclared fresh — including with new windowing.
	if err := s.CreateStream("tmp", StreamConfig{
		Epsilon: 1, Buckets: 16, Epoch: Duration(time.Minute),
	}); err != nil {
		t.Fatalf("redeclare after drop: %v", err)
	}
	if s.StreamN("tmp") != 0 {
		t.Errorf("redeclared stream inherited %d reports", s.StreamN("tmp"))
	}
}

func TestWindowedStreamConfigRules(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 16, RefreshInterval: time.Hour})
	t.Cleanup(s.Close)

	// Retain without epoch, negative epoch: rejected.
	if err := s.CreateStream("a", StreamConfig{Epsilon: 1, Buckets: 16, Retain: 3}); err == nil {
		t.Error("retain without epoch accepted")
	}
	if err := s.CreateStream("b", StreamConfig{Epsilon: 1, Buckets: 16, Epoch: Duration(-time.Second)}); err == nil {
		t.Error("negative epoch accepted")
	}

	// Windowed declaration fills the default retention.
	if err := s.CreateStream("win", StreamConfig{Epsilon: 1, Buckets: 16, Epoch: Duration(time.Minute)}); err != nil {
		t.Fatal(err)
	}
	var info *StreamInfo
	for _, row := range s.Streams() {
		if row.Name == "win" {
			row := row
			info = &row
		}
	}
	if info == nil || info.Window == nil {
		t.Fatal("windowed stream not reported as windowed")
	}
	if info.Window.Retain == 0 || info.Window.Epoch != Duration(time.Minute) {
		t.Fatalf("window info %+v", info.Window)
	}

	// Redeclaration: zero window fields inherit; matching values are a
	// no-op; different values or de-windowing attempts are errors.
	if err := s.CreateStream("win", StreamConfig{Epsilon: 1, Buckets: 16}); err != nil {
		t.Errorf("inheriting redeclaration failed: %v", err)
	}
	if err := s.CreateStream("win", StreamConfig{Epsilon: 1, Buckets: 16, Epoch: Duration(time.Minute)}); err != nil {
		t.Errorf("matching redeclaration failed: %v", err)
	}
	if err := s.CreateStream("win", StreamConfig{Epsilon: 1, Buckets: 16, Epoch: Duration(2 * time.Minute)}); err == nil {
		t.Error("epoch change accepted")
	}
	if err := s.CreateStream("win", StreamConfig{Epsilon: 1, Buckets: 16, Epoch: Duration(time.Minute), Retain: 99}); err == nil {
		t.Error("retain change accepted")
	}
	// Windowing a plain stream is an error (drop and redeclare instead).
	if err := s.CreateStream(DefaultStream, StreamConfig{Epsilon: 1, Buckets: 16, Epoch: Duration(time.Minute)}); err == nil {
		t.Error("windowing an existing plain stream accepted")
	}
}

// TestWindowSnapshotDeterminism is the acceptance criterion: sliding-window
// estimates are bit-identical across a snapshot save → kill → restore
// cycle, and the restored collector resumes mid-epoch on the same rotation
// clock.
func TestWindowSnapshotDeterminism(t *testing.T) {
	clock := newMockClock()
	s, ts := newWindowedServer(t, clock)

	// Two sealed cohorts plus a live partial epoch.
	postReports(t, ts.URL, "lat", 11, 700)
	getWindowEstimate(t, ts.URL, "lat", "last:1", 700)
	clock.Advance(time.Minute)
	waitRotation(t, s, "lat", 1)
	postReports(t, ts.URL, "lat", 12, 500)
	getWindowEstimate(t, ts.URL, "lat", "epochs:1..1", 500)
	clock.Advance(time.Minute)
	waitRotation(t, s, "lat", 2)
	postReports(t, ts.URL, "lat", 13, 300) // live, mid-epoch
	clock.Advance(30 * time.Second)        // ...and mid-period on the clock

	selectors := []string{"epochs:0..0", "epochs:1..1", "last:2", "last:3"}
	before := make(map[string]EstimateResponse)
	for _, sel := range selectors {
		before[sel] = getWindowEstimate(t, ts.URL, "lat", sel, 1)
	}
	wholeBefore := getFreshStreamEstimate(t, ts.URL, "lat", 1500)

	path := filepath.Join(t.TempDir(), "win.snap")
	if err := s.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	s.Close() // "kill" the collector

	// Restart: declare the stream (the boot shape), restore, re-serve.
	s2 := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour, Clock: clock.Now})
	t.Cleanup(s2.Close)
	if err := s2.CreateStream("lat", StreamConfig{
		Epsilon: 1, Buckets: 32, Epoch: Duration(time.Minute), Retain: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s2.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)

	for _, sel := range selectors {
		after := getWindowEstimate(t, ts2.URL, "lat", sel, before[sel].N)
		if !after.Restored {
			t.Errorf("window %s not served from the restored cache", sel)
		}
		if after.N != before[sel].N {
			t.Errorf("window %s N = %d, want %d", sel, after.N, before[sel].N)
		}
		if len(after.Distribution) != len(before[sel].Distribution) {
			t.Fatalf("window %s distribution length changed", sel)
		}
		for i := range after.Distribution {
			if after.Distribution[i] != before[sel].Distribution[i] {
				t.Fatalf("window %s bucket %d: %v != %v (not bit-identical)",
					sel, i, after.Distribution[i], before[sel].Distribution[i])
			}
		}
	}
	wholeAfter := getFreshStreamEstimate(t, ts2.URL, "lat", 1500)
	for i := range wholeAfter.Distribution {
		if wholeAfter.Distribution[i] != wholeBefore.Distribution[i] {
			t.Fatalf("whole-stream bucket %d differs after restore", i)
		}
	}

	// The restored collector resumed mid-epoch: same epoch index, same
	// live count, and the next rotation lands on the original boundary
	// (30s away, not a full minute).
	var win *WindowInfo
	for _, info := range s2.Streams() {
		if info.Name == "lat" {
			win = info.Window
		}
	}
	if win == nil || win.CurrentEpoch != 2 || win.LiveN != 300 {
		t.Fatalf("restored window state %+v, want epoch 2 with 300 live reports", win)
	}
	clock.Advance(30 * time.Second)
	s2.wake()
	waitRotation(t, s2, "lat", 3)
}

// TestWindowV1SnapshotCompat: a v1-shaped restore (no window block) into a
// windowed declaration lands in the live epoch and seals whole at the next
// rotation.
func TestWindowV1SnapshotCompat(t *testing.T) {
	// Build a v1-style snapshot from a plain server.
	plain := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour})
	t.Cleanup(plain.Close)
	tsPlain := httptest.NewServer(plain.Handler())
	t.Cleanup(tsPlain.Close)
	if err := plain.CreateStream("lat", StreamConfig{Epsilon: 1, Buckets: 32}); err != nil {
		t.Fatal(err)
	}
	postReports(t, tsPlain.URL, "lat", 21, 400)
	path := filepath.Join(t.TempDir(), "old.snap")
	if err := plain.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	clock := newMockClock()
	s, ts := newWindowedServer(t, clock)
	if err := s.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if n := s.StreamN("lat"); n != 400 {
		t.Fatalf("restored %d reports, want 400", n)
	}
	// The old history is the live epoch; the first rotation seals it whole.
	clock.Advance(time.Minute)
	waitRotation(t, s, "lat", 1)
	if est := getWindowEstimate(t, ts.URL, "lat", "epochs:0..0", 400); est.N != 400 {
		t.Fatalf("sealed old history covers %d, want 400", est.N)
	}

	// The reverse mismatch fails loudly: a windowed snapshot cannot restore
	// into a plain declaration.
	winPath := filepath.Join(t.TempDir(), "win.snap")
	if err := s.SaveSnapshot(winPath); err != nil {
		t.Fatal(err)
	}
	plain2 := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour})
	t.Cleanup(plain2.Close)
	if err := plain2.CreateStream("lat", StreamConfig{Epsilon: 1, Buckets: 32}); err != nil {
		t.Fatal(err)
	}
	if err := plain2.LoadSnapshot(winPath); err == nil {
		t.Fatal("windowed snapshot restored into a plain stream")
	}
	// A fresh server (stream undeclared) restores the windowed stream whole.
	fresh := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour, Clock: clock.Now})
	t.Cleanup(fresh.Close)
	if err := fresh.LoadSnapshot(winPath); err != nil {
		t.Fatal(err)
	}
	for _, info := range fresh.Streams() {
		if info.Name == "lat" {
			if info.Window == nil || info.Window.CurrentEpoch != 1 {
				t.Fatalf("fresh restore window state %+v", info.Window)
			}
		}
	}
}

func TestWindowDurationJSON(t *testing.T) {
	var cfg StreamConfig
	if err := json.Unmarshal([]byte(`{"epsilon":1,"buckets":16,"epoch":"90s","retain":5}`), &cfg); err != nil {
		t.Fatal(err)
	}
	if time.Duration(cfg.Epoch) != 90*time.Second || cfg.Retain != 5 {
		t.Fatalf("parsed %+v", cfg)
	}
	if err := json.Unmarshal([]byte(`{"epoch":60000000000}`), &cfg); err != nil {
		t.Fatal(err)
	}
	if time.Duration(cfg.Epoch) != time.Minute {
		t.Fatalf("nanosecond epoch parsed as %v", time.Duration(cfg.Epoch))
	}
	if err := json.Unmarshal([]byte(`{"epoch":"soon"}`), &cfg); err == nil {
		t.Error("bad duration accepted")
	}
	blob, err := json.Marshal(StreamConfig{Epsilon: 1, Buckets: 16, Epoch: Duration(time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(blob, []byte(`"epoch":"1m0s"`)) {
		t.Errorf("epoch marshaled as %s", blob)
	}

	// Declaring a windowed stream over HTTP round-trips the syntax.
	s := NewServer(Config{Epsilon: 1, Buckets: 16, RefreshInterval: time.Hour})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+"/streams", "application/json",
		bytes.NewReader([]byte(`{"name":"w","epsilon":1,"buckets":16,"epoch":"2m","retain":6}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("windowed POST /streams status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/config?stream=w")
	if err != nil {
		t.Fatal(err)
	}
	var cfgOut struct {
		Epoch  string `json:"epoch"`
		Retain int    `json:"retain"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cfgOut); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cfgOut.Epoch != "2m0s" || cfgOut.Retain != 6 {
		t.Fatalf("/config reports epoch=%q retain=%d", cfgOut.Epoch, cfgOut.Retain)
	}
}
