package ldphttp

// Handler-level federation tests: the push protocol state machine (replay,
// sequence gaps, fingerprint conflicts, auto-declaration), epoch placement
// into windowed streams, peer bookkeeping, and snapshot persistence of the
// cursors on both sides.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/federate"
	"repro/internal/window"
)

// newRoot builds an accepting root server (auto-declare per flag).
func newRoot(t *testing.T, autoDeclare bool) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{
		Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour,
		Federation: FederationConfig{Accept: true, AutoDeclare: autoDeclare},
	})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// pushBody POSTs a raw payload to /federation/push and decodes the answer.
func pushBody(t *testing.T, url string, body []byte) (federate.PushResponse, int) {
	t.Helper()
	resp, err := http.Post(url+"/federation/push", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr federate.PushResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decode push response: %v", err)
	}
	return pr, resp.StatusCode
}

// encodePush builds a payload for one stream/epoch with the fingerprint of
// the given server stream.
func encodePush(t *testing.T, s *Server, edge string, seq int64, stream string, epoch int, counts []uint64) []byte {
	t.Helper()
	st := s.lookup(stream)
	if st == nil {
		t.Fatalf("stream %q not found for fingerprint", stream)
	}
	d, ok := federate.NewEpochDelta(epoch, counts)
	if !ok {
		t.Fatal("empty delta")
	}
	body, err := federate.EncodePush(edge, seq, []federate.StreamDelta{{
		Stream: stream, Fingerprint: s.fingerprintOf(st), Epochs: []federate.EpochDelta{d},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestFederationPushDisabled(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 16, RefreshInterval: time.Hour})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	body := encodePush(t, s, "e1", 1, DefaultStream, 0, []uint64{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	pr, code := pushBody(t, ts.URL, body)
	if code != http.StatusForbidden || pr.Reason != federate.ReasonDisabled {
		t.Fatalf("disabled root answered %d %+v", code, pr)
	}
}

func TestFederationPushAppliesAndCounts(t *testing.T) {
	s, ts := newRoot(t, false)
	counts := make([]uint64, 32)
	counts[3], counts[17] = 5, 2
	pr, code := pushBody(t, ts.URL, encodePush(t, s, "e1", 1, DefaultStream, 0, counts))
	if code != http.StatusOK || !pr.Applied || pr.Reports != 7 || pr.LastSeq != 1 {
		t.Fatalf("push answered %d %+v", code, pr)
	}
	if got := s.StreamN(DefaultStream); got != 7 {
		t.Fatalf("root stream has %d reports, want 7", got)
	}
	// The engine's staleness accounting covers federated increments: the
	// estimate eventually covers them.
	est := getFreshStreamEstimate(t, ts.URL, "", 7)
	if est.N != 7 {
		t.Fatalf("estimate covers %d, want 7", est.N)
	}

	peers := s.Peers()
	if len(peers) != 1 || peers[0].Edge != "e1" || peers[0].LastSeq != 1 ||
		peers[0].Reports != 7 || len(peers[0].Streams) != 1 || peers[0].Streams[0].N != 7 {
		t.Fatalf("peers %+v", peers)
	}
}

func TestFederationReplayAndSeqGap(t *testing.T) {
	s, ts := newRoot(t, false)
	counts := make([]uint64, 32)
	counts[0] = 4
	body := encodePush(t, s, "e1", 1, DefaultStream, 0, counts)
	if pr, code := pushBody(t, ts.URL, body); code != 200 || !pr.Applied {
		t.Fatalf("first push %d %+v", code, pr)
	}
	// Byte-identical replay: skipped, CRC echoed, nothing double-counted.
	pr, code := pushBody(t, ts.URL, body)
	if code != 200 || !pr.Duplicate || pr.Applied || pr.CRC == "" {
		t.Fatalf("replay answered %d %+v", code, pr)
	}
	if got := s.StreamN(DefaultStream); got != 4 {
		t.Fatalf("replay double-counted: N=%d", got)
	}
	// A sequence far ahead is a gap conflict.
	pr, code = pushBody(t, ts.URL, encodePush(t, s, "e1", 9, DefaultStream, 0, counts))
	if code != http.StatusConflict || pr.Reason != federate.ReasonSeqGap || pr.LastSeq != 1 {
		t.Fatalf("gap push answered %d %+v", code, pr)
	}
}

func TestFederationUnknownStreamAndAutoDeclare(t *testing.T) {
	// Without auto-declare: 409 with the machine-readable reason.
	s, ts := newRoot(t, false)
	body, err := federate.EncodePush("e1", 1, []federate.StreamDelta{{
		Stream: "mystery",
		Fingerprint: federate.Fingerprint{
			Mechanism: "grr", Epsilon: 1, Buckets: 8, OutputBuckets: 8,
		},
		Epochs: []federate.EpochDelta{{Epoch: 0, N: 1, Counts: []uint64{1, 0, 0, 0, 0, 0, 0, 0}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	pr, code := pushBody(t, ts.URL, body)
	if code != http.StatusConflict || pr.Reason != federate.ReasonUnknownStream {
		t.Fatalf("unknown stream answered %d %+v", code, pr)
	}
	if s.lookup("mystery") != nil {
		t.Fatal("stream appeared without auto-declare")
	}

	// With auto-declare: the stream is created from the fingerprint and the
	// delta lands.
	s2, ts2 := newRoot(t, true)
	pr, code = pushBody(t, ts2.URL, body)
	if code != 200 || !pr.Applied {
		t.Fatalf("auto-declare push answered %d %+v", code, pr)
	}
	st := s2.lookup("mystery")
	if st == nil {
		t.Fatal("auto-declared stream missing")
	}
	if st.cfg.Mechanism != "grr" || st.cfg.Buckets != 8 || st.cfg.Epsilon != 1 {
		t.Fatalf("auto-declared config %+v", st.cfg)
	}
	if got := s2.StreamN("mystery"); got != 1 {
		t.Fatalf("auto-declared stream has %d reports", got)
	}
}

func TestFederationFingerprintMismatch(t *testing.T) {
	s, ts := newRoot(t, true)
	if err := s.CreateStream("age", StreamConfig{Epsilon: 2, Buckets: 16}); err != nil {
		t.Fatal(err)
	}
	st := s.lookup("age")
	fp := s.fingerprintOf(st)
	fp.Epsilon = 1 // the edge disagrees about ε
	body, err := federate.EncodePush("e1", 1, []federate.StreamDelta{{
		Stream: "age", Fingerprint: fp,
		Epochs: []federate.EpochDelta{{Epoch: 0, N: 1, Counts: append([]uint64{1}, make([]uint64, 15)...)}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	pr, code := pushBody(t, ts.URL, body)
	if code != http.StatusConflict || pr.Reason != federate.ReasonFingerprint {
		t.Fatalf("mismatched push answered %d %+v", code, pr)
	}
	if got := s.StreamN("age"); got != 0 {
		t.Fatalf("mismatched push merged %d reports", got)
	}
	// The sequence did not advance: a corrected payload with the same seq
	// applies.
	good := encodePush(t, s, "e1", 1, "age", 0, append([]uint64{1}, make([]uint64, 15)...))
	if pr, code := pushBody(t, ts.URL, good); code != 200 || !pr.Applied {
		t.Fatalf("corrected push answered %d %+v", code, pr)
	}
}

func TestFederationPushAtomicAcrossStreams(t *testing.T) {
	// A payload with one good stream and one conflicting stream must apply
	// nothing.
	s, ts := newRoot(t, false)
	if err := s.CreateStream("good", StreamConfig{Epsilon: 1, Buckets: 16}); err != nil {
		t.Fatal(err)
	}
	goodSt := s.lookup("good")
	body, err := federate.EncodePush("e1", 1, []federate.StreamDelta{
		{Stream: "good", Fingerprint: s.fingerprintOf(goodSt),
			Epochs: []federate.EpochDelta{{Epoch: 0, N: 3, Counts: append([]uint64{3}, make([]uint64, 15)...)}}},
		{Stream: "absent", Fingerprint: fingerprintStub(),
			Epochs: []federate.EpochDelta{{Epoch: 0, N: 1, Counts: []uint64{1, 0}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pr, code := pushBody(t, ts.URL, body); code != http.StatusConflict || pr.Applied {
		t.Fatalf("partial push answered %d %+v", code, pr)
	}
	if got := s.StreamN("good"); got != 0 {
		t.Fatalf("rejected push still merged %d reports into the good stream", got)
	}
}

func fingerprintStub() federate.Fingerprint {
	return federate.Fingerprint{Mechanism: "sw", Epsilon: 1, Buckets: 2, OutputBuckets: 2, Bandwidth: 0.5}
}

func TestFederationMalformedPayloads(t *testing.T) {
	s, ts := newRoot(t, false)
	cases := map[string][]byte{
		"not json": []byte("nope"),
		"empty":    nil,
		"bad crc":  []byte(`{"version":1,"edge":"e","seq":1,"payload_crc32":"00000000","streams":[]}`),
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/federation/push", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	// A delta whose width disagrees with the stream's histogram is 400, and
	// the sequence does not advance.
	body, err := federate.EncodePush("e1", 1, []federate.StreamDelta{{
		Stream: DefaultStream, Fingerprint: s.fingerprintOf(s.lookup(DefaultStream)),
		Epochs: []federate.EpochDelta{{Epoch: 0, N: 1, Counts: []uint64{1}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, code := pushBody(t, ts.URL, body); code != http.StatusBadRequest {
		t.Fatalf("wrong-width delta answered %d", code)
	}
	if len(s.Peers()) != 0 {
		t.Fatal("failed push left a peer cursor behind")
	}

	// A delta addressing a non-zero epoch of a plain stream is 400.
	counts := make([]uint64, 32)
	counts[0] = 1
	if _, code := pushBody(t, ts.URL, encodePush(t, s, "e1", 1, DefaultStream, 3, counts)); code != http.StatusBadRequest {
		t.Fatalf("plain-stream epoch-3 delta answered %d", code)
	}
}

func TestFederationWindowedEpochPlacement(t *testing.T) {
	clock := newMockClock()
	s := NewServer(Config{
		Epsilon: 1, Buckets: 16, RefreshInterval: time.Hour, Clock: clock.Now,
		Federation: FederationConfig{Accept: true},
	})
	t.Cleanup(s.Close)
	if err := s.CreateStream("lat", StreamConfig{Epsilon: 1, Buckets: 16,
		Epoch: Duration(time.Minute), Retain: 2}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	one := func(b int) []uint64 { c := make([]uint64, 16); c[b] = 1; return c }

	// Epoch 0 while live.
	if pr, code := pushBody(t, ts.URL, encodePush(t, s, "e1", 1, "lat", 0, one(0))); code != 200 || !pr.Applied {
		t.Fatalf("live push %d %+v", code, pr)
	}
	// Rotate to epoch 2; epoch 0 is now sealed. The push path itself
	// advances the ring on the shared clock.
	clock.Advance(2 * time.Minute)
	if pr, code := pushBody(t, ts.URL, encodePush(t, s, "e1", 2, "lat", 0, one(1))); code != 200 || pr.Streams[0].AppliedEpochs != 1 {
		t.Fatalf("sealed push %d %+v", code, pr)
	}
	st := s.lookup("lat")
	if cur, _ := st.ring.Current(); cur != 2 {
		t.Fatalf("push did not advance the ring: current %d", cur)
	}
	// The sealed epoch holds both increments.
	hist, n, err := st.ring.Merge(window.Range{Lo: 0, Hi: 0}, nil)
	if err != nil || n != 2 || hist[0] != 1 || hist[1] != 1 {
		t.Fatalf("sealed epoch 0: hist=%v n=%d err=%v", hist, n, err)
	}

	// A future epoch is dropped and reported, not an error.
	pr, code := pushBody(t, ts.URL, encodePush(t, s, "e1", 3, "lat", 9, one(2)))
	if code != 200 || !pr.Applied || len(pr.Streams[0].DroppedEpochs) != 1 || pr.Streams[0].DroppedEpochs[0] != 9 {
		t.Fatalf("future-epoch push %d %+v", code, pr)
	}
	// An aged-out epoch likewise (retain 2, current 2 → oldest kept is 0;
	// advance so epoch 0 ages out).
	clock.Advance(2 * time.Minute)
	pr, code = pushBody(t, ts.URL, encodePush(t, s, "e1", 4, "lat", 0, one(3)))
	if code != 200 || !pr.Applied || pr.Streams[0].DroppedN != 1 {
		t.Fatalf("aged-epoch push %d %+v", code, pr)
	}
	peers := s.Peers()
	if peers[0].Dropped != 2 {
		t.Fatalf("dropped counter %d, want 2", peers[0].Dropped)
	}
	// Watermarks for aged epochs are pruned.
	for _, psi := range peers[0].Streams {
		for _, ep := range psi.Epochs {
			if ep.Epoch < st.ring.Oldest() {
				t.Fatalf("stale watermark for epoch %d survives", ep.Epoch)
			}
		}
	}
}

func TestFederationRootSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "root.snap")
	s, ts := newRoot(t, false)
	counts := make([]uint64, 32)
	counts[5] = 6
	body := encodePush(t, s, "e1", 1, DefaultStream, 0, counts)
	if pr, code := pushBody(t, ts.URL, body); code != 200 || !pr.Applied {
		t.Fatalf("push %d %+v", code, pr)
	}
	if err := s.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// A restored root remembers the peer cursor: the replay is skipped and
	// the histogram is not double-counted.
	s2 := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour,
		Federation: FederationConfig{Accept: true}})
	t.Cleanup(s2.Close)
	if err := s2.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	if got := s2.StreamN(DefaultStream); got != 6 {
		t.Fatalf("restored root has %d reports", got)
	}
	pr, code := pushBody(t, ts2.URL, body)
	if code != 200 || !pr.Duplicate || pr.CRC == "" {
		t.Fatalf("replay on restored root answered %d %+v", code, pr)
	}
	if got := s2.StreamN(DefaultStream); got != 6 {
		t.Fatalf("restored root double-counted: %d", got)
	}
	peers := s2.Peers()
	if len(peers) != 1 || peers[0].LastSeq != 1 || peers[0].Reports != 6 {
		t.Fatalf("restored peers %+v", peers)
	}
}

func TestFederationPeersEndpointAndMethods(t *testing.T) {
	_, ts := newRoot(t, false)
	resp, err := http.Get(ts.URL + "/federation/peers")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Peers []PeerInfo `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(out.Peers) != 0 {
		t.Fatalf("empty peers answered %d %+v", resp.StatusCode, out)
	}
}

func TestEnablePushValidation(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 8, RefreshInterval: time.Hour})
	t.Cleanup(s.Close)
	if err := s.EnablePush(PushOptions{URL: "http://x", Edge: "bad name!"}); err == nil {
		t.Fatal("invalid edge id accepted")
	}
	if err := s.EnablePush(PushOptions{URL: ":/bad", Edge: "e"}); err == nil {
		t.Fatal("invalid URL accepted")
	}
	if _, err := s.PushNow(); err == nil {
		t.Fatal("PushNow without EnablePush succeeded")
	}
	if st := s.PushStatus(); st.Edge != "" {
		t.Fatalf("status without pusher: %+v", st)
	}
	if err := s.EnablePush(PushOptions{URL: "http://127.0.0.1:0", Edge: "e", Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if err := s.EnablePush(PushOptions{URL: "http://127.0.0.1:0", Edge: "e", Interval: time.Hour}); err == nil {
		t.Fatal("double EnablePush accepted")
	}
}

func TestFederationEdgeSnapshotCursorStash(t *testing.T) {
	// An edge snapshot with a push cursor loads before EnablePush (the
	// normal boot order) and the cursor survives into the tracker.
	dir := t.TempDir()
	path := filepath.Join(dir, "edge.snap")

	root, rootTS := newRoot(t, true)
	_ = root

	edge := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour})
	if err := edge.EnablePush(PushOptions{URL: rootTS.URL, Edge: "e1", Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	edgeTS := httptest.NewServer(edge.Handler())
	t.Cleanup(edgeTS.Close)
	if resp := postJSON(t, edgeTS.URL+"/report", map[string]float64{"report": 0.25}); resp.StatusCode != http.StatusOK {
		t.Fatalf("report status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if acked, err := edge.PushNow(); err != nil || !acked {
		t.Fatalf("edge push: acked=%v err=%v", acked, err)
	}
	if err := edge.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	edge.Close()

	edge2 := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour})
	t.Cleanup(edge2.Close)
	if err := edge2.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if err := edge2.EnablePush(PushOptions{URL: rootTS.URL, Edge: "e1", Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if got := edge2.PushStatus().AckedSeq; got != 1 {
		t.Fatalf("restored edge acked seq %d, want 1", got)
	}
	// Nothing new to ship: the acked basis survived, so no delta is built
	// and the root is not double-fed.
	if acked, err := edge2.PushNow(); err != nil || acked {
		t.Fatalf("restored edge re-shipped: acked=%v err=%v", acked, err)
	}
	if got := root.StreamN(DefaultStream); got != 1 {
		t.Fatalf("root has %d reports, want 1", got)
	}
}

func TestFederationWindowedOriginMismatch(t *testing.T) {
	// Two windowed streams whose epoch indexes name different wall-clock
	// intervals must not merge: the origin is part of the fingerprint, so
	// the misalignment is a loud 409 instead of reports silently landing
	// in the wrong epochs.
	clock := newMockClock()
	root := NewServer(Config{Epsilon: 1, Buckets: 16, RefreshInterval: time.Hour,
		Clock: clock.Now, Federation: FederationConfig{Accept: true}})
	t.Cleanup(root.Close)
	if err := root.CreateStream("lat", StreamConfig{Epsilon: 1, Buckets: 16,
		Epoch: Duration(time.Minute), Retain: 4}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(root.Handler())
	t.Cleanup(ts.Close)

	st := root.lookup("lat")
	fp := root.fingerprintOf(st)
	fp.EpochOriginNanos += int64(30 * time.Second) // an edge born 30s later
	counts := make([]uint64, 16)
	counts[0] = 1
	body, err := federate.EncodePush("late-edge", 1, []federate.StreamDelta{{
		Stream: "lat", Fingerprint: fp,
		Epochs: []federate.EpochDelta{{Epoch: 0, N: 1, Counts: counts}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	pr, code := pushBody(t, ts.URL, body)
	if code != http.StatusConflict || pr.Reason != federate.ReasonFingerprint {
		t.Fatalf("misaligned push answered %d %+v", code, pr)
	}
	if got := root.StreamN("lat"); got != 0 {
		t.Fatalf("misaligned push merged %d reports", got)
	}
}

func TestFederationAutoDeclareAdoptsEdgeOrigin(t *testing.T) {
	// A root that auto-declares a windowed stream re-anchors its ring on
	// the edge's epoch origin, fast-forwarded to the root's clock — so the
	// edge's epoch indexes land in the right wall-clock intervals even
	// though the root first heard of the stream much later.
	clock := newMockClock()
	root := NewServer(Config{Epsilon: 1, Buckets: 16, RefreshInterval: time.Hour,
		Clock: clock.Now, Federation: FederationConfig{Accept: true, AutoDeclare: true}})
	t.Cleanup(root.Close)
	ts := httptest.NewServer(root.Handler())
	t.Cleanup(ts.Close)

	// The edge's stream was born 3 epochs before the push arrives.
	origin := clock.Now().Add(-3 * time.Minute).UnixNano()
	fp := federate.Fingerprint{
		Mechanism: "sw", Epsilon: 1, Buckets: 16, OutputBuckets: 16,
		Bandwidth:  swBOpt1(t),
		EpochNanos: int64(time.Minute), Retain: 8, EpochOriginNanos: origin,
	}
	counts := make([]uint64, 16)
	counts[2] = 4
	body, err := federate.EncodePush("e1", 1, []federate.StreamDelta{{
		Stream: "lat", Fingerprint: fp,
		Epochs: []federate.EpochDelta{{Epoch: 3, N: 4, Counts: counts}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	pr, code := pushBody(t, ts.URL, body)
	if code != 200 || !pr.Applied || pr.Streams[0].AppliedEpochs != 1 {
		t.Fatalf("origin-adopting push answered %d %+v", code, pr)
	}
	st := root.lookup("lat")
	if cur, _ := st.ring.Current(); cur != 3 {
		t.Fatalf("auto-declared ring current epoch %d, want 3", cur)
	}
	if got := root.fingerprintOf(st).EpochOriginNanos; got != origin {
		t.Fatalf("auto-declared origin %d, want %d", got, origin)
	}
	if got := root.StreamN("lat"); got != 4 {
		t.Fatalf("stream has %d reports, want 4", got)
	}
}

// swBOpt1 resolves the effective optimal sw bandwidth for ε=1 through a
// throwaway stream, keeping the test independent of internal/sw.
func swBOpt1(t *testing.T) float64 {
	t.Helper()
	s := NewServer(Config{Epsilon: 1, Buckets: 16, RefreshInterval: time.Hour})
	t.Cleanup(s.Close)
	return s.fingerprintOf(s.lookup(DefaultStream)).Bandwidth
}

func TestLoadSnapshotAbortsBeforeMergeOnCursorConflict(t *testing.T) {
	// A v4 snapshot carrying an edge push cursor must not half-apply when
	// the live tracker already acked pushes: the load fails before any
	// histogram merge, so a later retry cannot double-count.
	dir := t.TempDir()
	path := filepath.Join(dir, "edge.snap")
	root, rootTS := newRoot(t, true)
	_ = root

	edge := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour})
	t.Cleanup(edge.Close)
	if err := edge.EnablePush(PushOptions{URL: rootTS.URL, Edge: "e1", Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	edgeTS := httptest.NewServer(edge.Handler())
	t.Cleanup(edgeTS.Close)
	if resp := postJSON(t, edgeTS.URL+"/report", map[string]float64{"report": 0.5}); resp.StatusCode != http.StatusOK {
		t.Fatalf("report status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if acked, err := edge.PushNow(); err != nil || !acked {
		t.Fatalf("push: acked=%v err=%v", acked, err)
	}
	if err := edge.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	before := edge.StreamN(DefaultStream)
	// The tracker has acked seq 1, so restoring the same cursor conflicts.
	if err := edge.LoadSnapshot(path); err == nil {
		t.Fatal("cursor-conflicting load succeeded")
	}
	if got := edge.StreamN(DefaultStream); got != before {
		t.Fatalf("failed load still merged: %d -> %d reports", before, got)
	}
}
