package ldphttp

// End-to-end federation acceptance: three edge collectors driven by seeded
// synthetic clients fold into one root over real HTTP, across the PR-4
// mechanism table (sw, grr, oue), and the root's state is bit-identical to a
// single collector that ingested the union of the reports — including one
// edge killed mid-push (its ack lost) and restarted from its snapshot
// without double counting. A -race stress test mixes pushes with live
// queries, ingestion, rotation and snapshots.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/snapshot"
)

// dropResponseTransport forwards requests to the real transport but reports
// failure to the caller — the push is applied at the root, the ack is lost,
// exactly the crash window the write-ahead cursor has to survive.
type dropResponseTransport struct {
	inner http.RoundTripper
	mu    sync.Mutex
	drops int
}

func (d *dropResponseTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := d.inner.RoundTrip(req)
	d.mu.Lock()
	defer d.mu.Unlock()
	if err == nil && d.drops > 0 {
		d.drops--
		resp.Body.Close()
		return nil, fmt.Errorf("response lost in flight")
	}
	return resp, err
}

// fedStream is one mechanism-table stream of the e2e scenario.
type fedStream struct {
	name    string
	mech    string
	eps     float64
	buckets int
	sample  func(*randx.Rand) float64
}

func fedTable() []fedStream {
	return []fedStream{
		{"vals-sw", "sw", 1, 48, func(rng *randx.Rand) float64 { return rng.Beta(5, 2) }},
		{"cat-grr", "grr", 1, 24, func(rng *randx.Rand) float64 { return rng.Beta(2, 2) }},
		{"cat-oue", "oue", 0.8, 24, func(rng *randx.Rand) float64 { return rng.Beta(2, 6) }},
	}
}

func (fs fedStream) config() StreamConfig {
	return StreamConfig{Epsilon: fs.eps, Buckets: fs.buckets, Mechanism: fs.mech}
}

// wireReports perturbs n sampled values with the stream's mechanism,
// returning the JSON wire shapes (bare numbers for scalar mechanisms).
func (fs fedStream) wireReports(rng *randx.Rand, n int) []any {
	client := core.NewClient(core.Config{
		Epsilon: fs.eps, Buckets: fs.buckets, Mechanism: fs.mech, Smoothing: true,
	})
	scalar := client.Mechanism().Scalar()
	out := make([]any, n)
	for i := range out {
		rep := client.Perturb(fs.sample(rng), rng)
		if scalar {
			out[i] = rep[0]
		} else {
			out[i] = []float64(rep)
		}
	}
	return out
}

func postWireBatch(t *testing.T, url, stream string, reports []any) {
	t.Helper()
	blob, err := json.Marshal(map[string]any{"stream": stream, "reports": reports})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/batch", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch to %s stream %s: status %d", url, stream, resp.StatusCode)
	}
}

// declareTable declares every mechanism-table stream on a server.
func declareTable(t *testing.T, s *Server) {
	t.Helper()
	for _, fs := range fedTable() {
		if err := s.CreateStream(fs.name, fs.config()); err != nil {
			t.Fatal(err)
		}
	}
}

// quietServer builds a server whose engine only runs when woken or polled.
func quietServer(fed FederationConfig) *Server {
	return NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour, Federation: fed})
}

// snapshotCounts loads a snapshot and indexes histograms by stream name.
func snapshotCounts(t *testing.T, path string) map[string][]uint64 {
	t.Helper()
	recs, err := snapshot.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]uint64, len(recs))
	for _, rec := range recs {
		out[rec.Name] = rec.Counts
	}
	return out
}

// stripEstimates rewrites a snapshot without any cached estimates (or
// federation cursors), so a fresh server restoring it computes every
// reconstruction cold — the determinism anchor for bit-identical
// comparisons.
func stripEstimates(t *testing.T, src, dst string) {
	t.Helper()
	recs, err := snapshot.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		recs[i].Estimate = nil
		recs[i].EstimateN = 0
		recs[i].EstimateRaw = 0
		if recs[i].Window != nil {
			recs[i].Window.Estimates = nil
		}
	}
	if err := snapshot.Save(dst, recs); err != nil {
		t.Fatal(err)
	}
}

func TestFederationEndToEndBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-server federation round in -short mode")
	}
	// The exactness guarantee is codec-independent: the same scenario runs
	// with every edge on JSON, every edge on the binary push codec, and a
	// mixed fleet where only the crashing edge speaks binary — and is then
	// restarted as a JSON pusher, so its frozen binary pending must replay
	// by body sniffing, not by configuration.
	t.Run("json", func(t *testing.T) { runFederationE2E(t, [3]bool{}, false) })
	t.Run("binary", func(t *testing.T) { runFederationE2E(t, [3]bool{true, true, true}, true) })
	t.Run("mixed", func(t *testing.T) { runFederationE2E(t, [3]bool{false, true, false}, false) })
}

func runFederationE2E(t *testing.T, edgeBinary [3]bool, restartBinary bool) {
	dir := t.TempDir()
	const perEdge = 400
	const extra = 150

	// The root accepts pushes and lets edges declare their streams; the
	// control collector ingests the union of every edge's reports directly.
	root := quietServer(FederationConfig{Accept: true, AutoDeclare: true})
	defer root.Close()
	rootTS := httptest.NewServer(root.Handler())
	defer rootTS.Close()
	control := quietServer(FederationConfig{})
	defer control.Close()
	controlTS := httptest.NewServer(control.Handler())
	defer controlTS.Close()
	declareTable(t, control)

	// Three edges, every stream declared on each.
	edges := make([]*Server, 3)
	edgeTS := make([]*httptest.Server, 3)
	for i := range edges {
		edges[i] = quietServer(FederationConfig{})
		declareTable(t, edges[i])
		edgeTS[i] = httptest.NewServer(edges[i].Handler())
		defer edgeTS[i].Close()
	}
	edgeNames := []string{"edge-0", "edge-1", "edge-2"}

	// Seeded synthetic clients: every report goes to exactly one edge and
	// to the control collector.
	for si, fs := range fedTable() {
		rng := randx.New(uint64(100 + si))
		reports := fs.wireReports(rng, 3*perEdge)
		for i := 0; i < 3; i++ {
			slice := reports[i*perEdge : (i+1)*perEdge]
			postWireBatch(t, edgeTS[i].URL, fs.name, slice)
			postWireBatch(t, controlTS.URL, fs.name, slice)
		}
	}

	// Edge 0 and 2 push normally.
	for _, i := range []int{0, 2} {
		if err := edges[i].EnablePush(PushOptions{URL: rootTS.URL, Edge: edgeNames[i], Interval: time.Hour,
			Binary: edgeBinary[i]}); err != nil {
			t.Fatal(err)
		}
		if acked, err := edges[i].PushNow(); err != nil || !acked {
			t.Fatalf("edge %d push: acked=%v err=%v", i, acked, err)
		}
	}

	// Edge 1 is killed mid-push: the root applies its delta but the ack is
	// lost, and the process dies before hearing it. Its snapshot — written
	// ahead of the transmission — carries the frozen pending payload.
	snapPath := filepath.Join(dir, "edge1.snap")
	drop := &dropResponseTransport{inner: http.DefaultTransport, drops: 1}
	if err := edges[1].EnablePush(PushOptions{
		URL: rootTS.URL, Edge: edgeNames[1], Interval: time.Hour, Binary: edgeBinary[1],
		HTTPClient: &http.Client{Transport: drop},
		Persist:    func() error { return edges[1].SaveSnapshot(snapPath) },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := edges[1].PushNow(); err == nil {
		t.Fatal("edge 1 push should have lost its response")
	}
	rootAfterCrash := root.StreamN(fedTable()[0].name)
	edges[1].Close() // the edge dies without ever folding the ack

	// Restart edge 1 from its snapshot: the frozen payload replays
	// verbatim, the root proves it a duplicate, and nothing double-counts.
	edge1b := quietServer(FederationConfig{})
	defer edge1b.Close()
	declareTable(t, edge1b)
	if err := edge1b.LoadSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	if err := edge1b.EnablePush(PushOptions{URL: rootTS.URL, Edge: edgeNames[1], Interval: time.Hour,
		Binary: restartBinary}); err != nil {
		t.Fatal(err)
	}
	edge1bTS := httptest.NewServer(edge1b.Handler())
	defer edge1bTS.Close()
	if acked, err := edge1b.PushNow(); err != nil || !acked {
		t.Fatalf("restarted edge replay: acked=%v err=%v", acked, err)
	}
	if got := root.StreamN(fedTable()[0].name); got != rootAfterCrash {
		t.Fatalf("replay changed the root: %d != %d", got, rootAfterCrash)
	}

	// Life goes on: the restarted edge collects more reports and ships
	// them under the next sequence.
	for si, fs := range fedTable() {
		rng := randx.New(uint64(900 + si))
		reports := fs.wireReports(rng, extra)
		postWireBatch(t, edge1bTS.URL, fs.name, reports)
		postWireBatch(t, controlTS.URL, fs.name, reports)
	}
	if acked, err := edge1b.PushNow(); err != nil || !acked {
		t.Fatalf("post-restart push: acked=%v err=%v", acked, err)
	}

	// The root's histograms equal the control's exactly, stream by stream.
	rootSnap := filepath.Join(dir, "root.snap")
	controlSnap := filepath.Join(dir, "control.snap")
	if err := root.SaveSnapshot(rootSnap); err != nil {
		t.Fatal(err)
	}
	if err := control.SaveSnapshot(controlSnap); err != nil {
		t.Fatal(err)
	}
	rootCounts := snapshotCounts(t, rootSnap)
	controlCounts := snapshotCounts(t, controlSnap)
	for _, fs := range fedTable() {
		rc, cc := rootCounts[fs.name], controlCounts[fs.name]
		if len(rc) == 0 || len(rc) != len(cc) {
			t.Fatalf("stream %s: histogram shapes %d vs %d", fs.name, len(rc), len(cc))
		}
		for b := range rc {
			if rc[b] != cc[b] {
				t.Fatalf("stream %s bucket %d: root %d != control %d (federation is not exact)",
					fs.name, b, rc[b], cc[b])
			}
		}
	}

	// Bit-identical serving: both histograms restored into fresh servers
	// compute the same cold reconstruction through the whole serving stack.
	rootStripped := filepath.Join(dir, "root-cold.snap")
	controlStripped := filepath.Join(dir, "control-cold.snap")
	stripEstimates(t, rootSnap, rootStripped)
	stripEstimates(t, controlSnap, controlStripped)
	fresh := func(path string) (*Server, *httptest.Server) {
		s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: 50 * time.Millisecond})
		if err := s.LoadSnapshot(path); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		return s, ts
	}
	rootFresh, rootFreshTS := fresh(rootStripped)
	defer rootFresh.Close()
	defer rootFreshTS.Close()
	controlFresh, controlFreshTS := fresh(controlStripped)
	defer controlFresh.Close()
	defer controlFreshTS.Close()
	wantUsers := 3*perEdge + extra
	for _, fs := range fedTable() {
		re := getFreshStreamEstimate(t, rootFreshTS.URL, fs.name, wantUsers)
		ce := getFreshStreamEstimate(t, controlFreshTS.URL, fs.name, wantUsers)
		if re.N != wantUsers || ce.N != wantUsers {
			t.Fatalf("stream %s: root N=%d control N=%d want %d", fs.name, re.N, ce.N, wantUsers)
		}
		if len(re.Distribution) != len(ce.Distribution) {
			t.Fatalf("stream %s: distribution shapes differ", fs.name)
		}
		for b := range re.Distribution {
			if re.Distribution[b] != ce.Distribution[b] {
				t.Fatalf("stream %s bucket %d: %v != %v (served estimates not bit-identical)",
					fs.name, b, re.Distribution[b], ce.Distribution[b])
			}
		}
	}

	// The peers endpoint accounts for all three edges.
	peers := root.Peers()
	if len(peers) != 3 {
		t.Fatalf("root knows %d peers, want 3", len(peers))
	}
	wantSeq := map[string]int64{"edge-0": 1, "edge-1": 2, "edge-2": 1}
	for _, p := range peers {
		if p.LastSeq != wantSeq[p.Edge] {
			t.Errorf("peer %s last_seq %d, want %d", p.Edge, p.LastSeq, wantSeq[p.Edge])
		}
		if p.Dropped != 0 {
			t.Errorf("peer %s dropped %d increments", p.Edge, p.Dropped)
		}
	}
}

func TestFederationWindowedLockstep(t *testing.T) {
	// A windowed stream federates epoch-exactly when edge and root share an
	// epoch origin: both servers run on one mock clock, and the edge's
	// sealed-epoch deltas land in the root's matching sealed epochs even
	// when they arrive after the root rotated.
	dir := t.TempDir()
	clock := newMockClock()
	mk := func(fed FederationConfig) *Server {
		s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: 5 * time.Millisecond,
			Clock: clock.Now, Federation: fed})
		t.Cleanup(s.Close)
		if err := s.CreateStream("lat", StreamConfig{Epsilon: 1, Buckets: 32,
			Epoch: Duration(time.Minute), Retain: 6}); err != nil {
			t.Fatal(err)
		}
		return s
	}
	root := mk(FederationConfig{Accept: true})
	rootTS := httptest.NewServer(root.Handler())
	t.Cleanup(rootTS.Close)
	edge := mk(FederationConfig{})
	edgeTS := httptest.NewServer(edge.Handler())
	t.Cleanup(edgeTS.Close)
	control := mk(FederationConfig{})
	controlTS := httptest.NewServer(control.Handler())
	t.Cleanup(controlTS.Close)
	if err := edge.EnablePush(PushOptions{URL: rootTS.URL, Edge: "win-edge", Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}

	send := func(seed uint64, n int) {
		postReports(t, edgeTS.URL, "lat", seed, n)
		postReports(t, controlTS.URL, "lat", seed, n)
	}

	// Epoch 0: collect, and ship while live.
	send(21, 300)
	if acked, err := edge.PushNow(); err != nil || !acked {
		t.Fatalf("epoch-0 push: acked=%v err=%v", acked, err)
	}
	// Epoch 0 keeps growing after the push; these increments ship later,
	// after the epoch has sealed on both sides.
	send(22, 200)

	clock.Advance(time.Minute)
	waitRotation(t, edge, "lat", 1)
	waitRotation(t, root, "lat", 1)
	waitRotation(t, control, "lat", 1)

	// Epoch 1: collect, then ship — the payload carries the sealed tail of
	// epoch 0 plus the live epoch 1, each keyed by its index.
	send(23, 250)
	if acked, err := edge.PushNow(); err != nil || !acked {
		t.Fatalf("epoch-1 push: acked=%v err=%v", acked, err)
	}

	// Per-epoch exactness: sealed epoch 0 and live epoch 1 agree between
	// root and control.
	rootSnap := filepath.Join(dir, "root.snap")
	controlSnap := filepath.Join(dir, "control.snap")
	if err := root.SaveSnapshot(rootSnap); err != nil {
		t.Fatal(err)
	}
	if err := control.SaveSnapshot(controlSnap); err != nil {
		t.Fatal(err)
	}
	loadRec := func(path string) snapshot.Stream {
		for _, rec := range loadRecords(t, path) {
			if rec.Name == "lat" {
				return rec
			}
		}
		t.Fatal("lat record missing")
		return snapshot.Stream{}
	}
	rr, cr := loadRec(rootSnap), loadRec(controlSnap)
	if rr.Window == nil || cr.Window == nil || len(rr.Window.Sealed) != len(cr.Window.Sealed) {
		t.Fatalf("window blocks differ: %+v vs %+v", rr.Window, cr.Window)
	}
	for i := range rr.Window.Sealed {
		rs, cs := rr.Window.Sealed[i], cr.Window.Sealed[i]
		if rs.Index != cs.Index || rs.N != cs.N {
			t.Fatalf("sealed epoch %d: root n=%d control n=%d", rs.Index, rs.N, cs.N)
		}
		for b := range rs.Counts {
			if rs.Counts[b] != cs.Counts[b] {
				t.Fatalf("sealed epoch %d bucket %d: %d != %d", rs.Index, b, rs.Counts[b], cs.Counts[b])
			}
		}
	}
	for b := range rr.Counts {
		if rr.Counts[b] != cr.Counts[b] {
			t.Fatalf("live epoch bucket %d: %d != %d", b, rr.Counts[b], cr.Counts[b])
		}
	}

	// Served window estimates over the sealed epoch are bit-identical from
	// cold restores.
	rootStripped := filepath.Join(dir, "root-cold.snap")
	controlStripped := filepath.Join(dir, "control-cold.snap")
	stripEstimates(t, rootSnap, rootStripped)
	stripEstimates(t, controlSnap, controlStripped)
	freshWin := func(path string) *httptest.Server {
		clock2 := newMockClock()
		s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: 20 * time.Millisecond, Clock: clock2.Now})
		t.Cleanup(s.Close)
		if err := s.CreateStream("lat", StreamConfig{Epsilon: 1, Buckets: 32,
			Epoch: Duration(time.Minute), Retain: 6}); err != nil {
			t.Fatal(err)
		}
		if err := s.LoadSnapshot(path); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	rootFresh := freshWin(rootStripped)
	controlFresh := freshWin(controlStripped)
	re := getWindowEstimate(t, rootFresh.URL, "lat", "epochs:0..0", 500)
	ce := getWindowEstimate(t, controlFresh.URL, "lat", "epochs:0..0", 500)
	if re.N != 500 || ce.N != 500 {
		t.Fatalf("window N: root %d control %d want 500", re.N, ce.N)
	}
	for b := range re.Distribution {
		if re.Distribution[b] != ce.Distribution[b] {
			t.Fatalf("window bucket %d: %v != %v", b, re.Distribution[b], ce.Distribution[b])
		}
	}
}

func TestStressFederation(t *testing.T) {
	// Race detector workout: two live edges pushing on a tight interval
	// while clients ingest into them, the root serves queries and rotates a
	// windowed stream, and snapshots fire on both tiers. Exactness is
	// asserted for the plain stream after a final drain.
	if testing.Short() {
		t.Skip("federation stress in -short mode")
	}
	dir := t.TempDir()
	root := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: 3 * time.Millisecond,
		Federation: FederationConfig{Accept: true, AutoDeclare: true}})
	defer root.Close()
	rootTS := httptest.NewServer(root.Handler())
	defer rootTS.Close()

	const edgesN = 2
	var edges [edgesN]*Server
	var edgeURLs [edgesN]string
	for i := 0; i < edgesN; i++ {
		edges[i] = NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: 3 * time.Millisecond})
		defer edges[i].Close()
		if err := edges[i].CreateStream("plain", StreamConfig{Epsilon: 1, Buckets: 32}); err != nil {
			t.Fatal(err)
		}
		// Each edge gets its own windowed stream: real-clock processes have
		// distinct epoch origins, so a shared windowed stream would be a
		// fingerprint conflict by design — the root auto-declares each one
		// aligned to its edge's origin.
		if err := edges[i].CreateStream(fmt.Sprintf("win-%d", i), StreamConfig{Epsilon: 1, Buckets: 32,
			Epoch: Duration(40 * time.Millisecond), Retain: 64}); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(edges[i].Handler())
		defer ts.Close()
		edgeURLs[i] = ts.URL
		if err := edges[i].EnablePush(PushOptions{
			URL: rootTS.URL, Edge: []string{"stress-a", "stress-b"}[i], Interval: 4 * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ingested [edgesN]atomic.Int64
	// Ingestion: 2 writers per edge.
	for i := 0; i < edgesN; i++ {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(i, w int) {
				defer wg.Done()
				client := core.NewClient(core.Config{Epsilon: 1, Buckets: 32, Smoothing: true})
				rng := randx.New(uint64(1000 + 10*i + w))
				for n := 0; ; n++ {
					select {
					case <-stop:
						return
					default:
					}
					stream := "plain"
					if n%3 == 0 {
						stream = fmt.Sprintf("win-%d", i)
					}
					blob, _ := json.Marshal(map[string]any{
						"stream": stream, "report": client.Report(rng.Beta(5, 2), rng),
					})
					resp, err := http.Post(edgeURLs[i]+"/report", "application/json", bytes.NewReader(blob))
					if err == nil {
						resp.Body.Close()
						if stream == "plain" && resp.StatusCode == http.StatusOK {
							// Only count what the server acknowledged.
							ingested[i].Add(1)
						}
					}
				}
			}(i, w)
		}
	}
	// Root-side query pollers (tolerate 409/503 while data races in).
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(rootTS.URL + "/estimate?stream=plain")
				if err == nil {
					resp.Body.Close()
				}
				resp, err = http.Get(rootTS.URL + "/federation/peers")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	// Snapshot churn on the root and one edge.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			root.SaveSnapshot(filepath.Join(dir, "root.snap"))
			edges[0].SaveSnapshot(filepath.Join(dir, "edge0.snap"))
			time.Sleep(3 * time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Drain: push until every edge has nothing left to ship.
	var want int64
	for i := 0; i < edgesN; i++ {
		want += ingested[i].Load()
		deadline := time.Now().Add(10 * time.Second)
		for {
			acked, err := edges[i].PushNow()
			if err == nil && !acked {
				break // nothing left
			}
			if time.Now().After(deadline) {
				t.Fatalf("edge %d never drained: acked=%v err=%v", i, acked, err)
			}
		}
	}
	if got := int64(root.StreamN("plain")); got != want {
		t.Fatalf("root plain stream has %d reports, edges ingested %d", got, want)
	}
}
