package ldphttp

// Ingest-path benchmarks for the wire codecs: one report per request
// (unbatched) against 128- and 1024-report batches, each as JSON and as the
// binary frame. time/op divided by the batch size is the amortized
// per-report cost the client-side Batcher buys. Results recorded in
// BENCH_wire.json.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/wire"
)

func benchIngestServer(b *testing.B) http.Handler {
	b.Helper()
	s := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: time.Hour})
	b.Cleanup(s.Close)
	return s.Handler()
}

func benchIngestReports(n int) [][]float64 {
	reports := make([][]float64, n)
	for i := range reports {
		reports[i] = []float64{float64(i%64) / 64}
	}
	return reports
}

func BenchmarkIngestUnbatched(b *testing.B) {
	run := func(b *testing.B, contentType string, body []byte) {
		h := benchIngestServer(b)
		b.SetBytes(int64(len(body)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/streams/default/report", bytes.NewReader(body))
			req.Header.Set("Content-Type", contentType)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("report answered %d: %s", rec.Code, rec.Body)
			}
		}
	}
	b.Run("json", func(b *testing.B) {
		run(b, "application/json", []byte(`{"report": 0.5}`))
	})
	b.Run("binary", func(b *testing.B) {
		run(b, wire.ContentType, wire.EncodeReports([][]float64{{0.5}}))
	})
}

func BenchmarkIngestBatched(b *testing.B) {
	for _, n := range []int{128, 1024} {
		reports := benchIngestReports(n)
		jsonBody, err := json.Marshal(map[string]any{"reports": reports})
		if err != nil {
			b.Fatal(err)
		}
		binBody := wire.EncodeReports(reports)
		run := func(b *testing.B, contentType string, body []byte) {
			h := benchIngestServer(b)
			b.SetBytes(int64(len(body)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/streams/default/batch", bytes.NewReader(body))
				req.Header.Set("Content-Type", contentType)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("batch answered %d: %s", rec.Code, rec.Body)
				}
			}
		}
		b.Run(fmt.Sprintf("json/n=%d", n), func(b *testing.B) { run(b, "application/json", jsonBody) })
		b.Run(fmt.Sprintf("binary/n=%d", n), func(b *testing.B) { run(b, wire.ContentType, binBody) })
	}
}
