package ldphttp

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkEngineSweep measures one full refresh sweep of the background
// engine over a fleet of dirty streams: every stream gets one new report,
// the scheduler is woken, and the sweep is complete when every stream has
// republished. This is the end-to-end cost a collector pays per refresh
// interval, and the knob under test is the refresh worker pool size (on a
// single-core runner the pool sizes tie; on a multi-core one the sweep
// parallelizes across streams).
func BenchmarkEngineSweep(b *testing.B) {
	const streams = 8
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("streams=%d/refresh-workers=%d", streams, workers), func(b *testing.B) {
			s := NewServer(Config{
				Epsilon: 1, Buckets: 256,
				RefreshInterval: time.Hour, // sweeps run only when woken
				RefreshWorkers:  workers,
			})
			defer s.Close()
			for i := 0; i < streams-1; i++ {
				if err := s.CreateStream(fmt.Sprintf("s%d", i), StreamConfig{Epsilon: 1, Buckets: 256}); err != nil {
					b.Fatal(err)
				}
			}
			list := s.streamList()
			for _, st := range list {
				for r := 0; r < 2000; r++ {
					st.add((r * 37) % 256)
				}
			}
			waitSweep := func() {
				for _, st := range list {
					for int(st.published.Load()) != st.reports() {
						time.Sleep(20 * time.Microsecond)
					}
				}
			}
			s.wake()
			waitSweep() // first (cold) reconstruction outside the timer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, st := range list {
					st.add(i % 256)
				}
				s.wake()
				waitSweep()
			}
		})
	}
}
