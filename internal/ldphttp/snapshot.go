package ldphttp

// Durability: SaveSnapshot/LoadSnapshot persist every stream's report
// histogram and cached reconstruction through package snapshot, so a
// restarted collector resumes exactly where the previous process stopped —
// the restored estimate is served immediately (bit-identical: JSON float64
// encoding round-trips exactly) and the engine warm-starts from it when new
// reports arrive.

import (
	"fmt"

	"repro/internal/histogram"
	"repro/internal/snapshot"
)

// SaveSnapshot atomically writes the state of every stream to path. Safe to
// call concurrently with ingestion and estimation: each stream's histogram
// is captured with a non-blocking consistent snapshot, and concurrent saves
// are serialized.
func (s *Server) SaveSnapshot(path string) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	list := s.streamList()
	records := make([]snapshot.Stream, 0, len(list))
	for _, st := range list {
		counts, _ := st.counts.Snapshot(nil)
		rec := snapshot.Stream{
			Name:      st.name,
			Epsilon:   st.cfg.Epsilon,
			Buckets:   st.cfg.Buckets,
			Bandwidth: st.cfg.Bandwidth,
			Shards:    st.cfg.Shards,
			Counts:    make([]uint64, len(counts)),
		}
		for i, c := range counts {
			rec.Counts[i] = uint64(c)
		}
		if est := st.est.Load(); est != nil {
			rec.Estimate = est.Distribution
			rec.EstimateN = est.N
		}
		records = append(records, rec)
	}
	return snapshot.Save(path, records)
}

// LoadSnapshot restores streams from a snapshot file. Streams that do not
// exist are created with their persisted configuration; the persisted
// histogram of a stream that already exists (e.g. the default stream on a
// fresh boot) is merged into it, provided the mechanism parameters match. A
// persisted cached estimate is installed when the live stream had no reports
// before the merge, so GET /estimate serves instantly after a restart.
// Corrupt, truncated, or incompatible files return an error and change
// nothing: the whole restore — validation of every record, construction of
// every missing stream, then the merge — happens atomically under the
// registry lock, so no concurrent stream declaration can slip between
// validation and apply, and no error path leaves a partial merge behind.
func (s *Server) LoadSnapshot(path string) error {
	records, err := snapshot.Load(path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Phase 1 — validate every record and build (but do not register) the
	// streams that are missing. Nothing is mutated until every record has
	// a proven-compatible destination.
	targets := make([]*stream, len(records))
	fresh := make([]bool, len(records))
	for i, rec := range records {
		st, ok := s.streams[rec.Name]
		if ok {
			if st.cfg.Epsilon != rec.Epsilon || st.cfg.Buckets != rec.Buckets ||
				st.cfg.Bandwidth != rec.Bandwidth {
				return fmt.Errorf("ldphttp: snapshot stream %q has (ε=%v, buckets=%d, b=%v) but the live stream has (ε=%v, buckets=%d, b=%v)",
					rec.Name, rec.Epsilon, rec.Buckets, rec.Bandwidth,
					st.cfg.Epsilon, st.cfg.Buckets, st.cfg.Bandwidth)
			}
		} else {
			cfg, err := s.fillStreamDefaults(StreamConfig{
				Epsilon:   rec.Epsilon,
				Buckets:   rec.Buckets,
				Bandwidth: rec.Bandwidth,
				Shards:    rec.Shards,
			})
			if err != nil {
				return fmt.Errorf("ldphttp: restore stream %q: %w", rec.Name, err)
			}
			st = s.newStream(rec.Name, cfg)
			fresh[i] = true
		}
		if st.counts.Buckets() != len(rec.Counts) {
			return fmt.Errorf("ldphttp: snapshot stream %q has %d histogram buckets, the %s stream has %d",
				rec.Name, len(rec.Counts), map[bool]string{true: "restored", false: "live"}[fresh[i]],
				st.counts.Buckets())
		}
		targets[i] = st
	}
	// Phase 2 — register and merge; no failure paths remain.
	for i, rec := range records {
		st := targets[i]
		if fresh[i] {
			s.streams[st.name] = st
			s.order = append(s.order, st)
		}
		wasEmpty := st.counts.N() == 0
		for bucket, c := range rec.Counts {
			st.counts.AddN(bucket, c)
		}
		if wasEmpty && len(rec.Estimate) > 0 {
			dist := append([]float64(nil), rec.Estimate...)
			st.est.Store(&EstimateResponse{
				Stream:       st.name,
				N:            rec.EstimateN,
				Epsilon:      st.cfg.Epsilon,
				Distribution: dist,
				Mean:         histogram.Mean(dist),
				Variance:     histogram.Variance(dist),
				Median:       histogram.Quantile(dist, 0.5),
				Converged:    true,
				WarmStart:    true,
				Restored:     true,
			})
			st.published.Store(int64(rec.EstimateN))
		}
	}
	s.wake() // re-estimate any stream whose counts moved past its estimate
	return nil
}
