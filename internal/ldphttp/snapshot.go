package ldphttp

// Durability: SaveSnapshot/LoadSnapshot persist every stream's report
// histogram and cached reconstruction through package snapshot, so a
// restarted collector resumes exactly where the previous process stopped —
// the restored estimate is served immediately (bit-identical: JSON float64
// encoding round-trips exactly) and the engine warm-starts from it when new
// reports arrive. Windowed streams additionally persist their rotation
// clock, sealed epochs and cached window estimates, so a restart resumes
// mid-epoch and serves bit-identical window estimates. Payload version 3
// carries each stream's mechanism identifier and the raw increment totals
// its cached estimates cover; version ≤ 2 files still load, their streams
// defaulting to the "sw" mechanism (the only one those versions could have
// written). Version-1 snapshots additionally carry no window state, and a
// v1 record restoring into a stream that was declared windowed lands in the
// live epoch — the old history behaves as a single epoch that seals whole
// at the next rotation.

import (
	"fmt"
	"time"

	"repro/internal/histogram"
	"repro/internal/snapshot"
	"repro/internal/window"
)

// SaveSnapshot atomically writes the state of every stream to path. Safe to
// call concurrently with ingestion and estimation: each stream's histogram
// is captured with a non-blocking consistent snapshot, and concurrent saves
// are serialized. Federation cursors (payload version 4) are captured under
// the same lock that serializes push application, so the persisted peer
// watermarks and histograms always agree — a restored root skips exactly
// the replays whose increments its histograms already contain.
func (s *Server) SaveSnapshot(path string) error {
	sp := s.tracer.NewTrace("snapshot/save")
	start := time.Now()
	err := s.saveSnapshot(path)
	s.observeSnapshot("save", start, err)
	if err != nil {
		sp.Fail("save_failed")
	}
	sp.End()
	return err
}

func (s *Server) saveSnapshot(path string) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	// fedMu covers only the in-memory capture: holding it across the file
	// write would stall every incoming federation push on disk I/O. snapMu
	// alone serializes concurrent saves.
	s.fedMu.Lock()
	list := s.streamList()
	records := make([]snapshot.Stream, 0, len(list))
	for _, st := range list {
		rec := snapshot.Stream{
			Name:      st.name,
			Epsilon:   st.cfg.Epsilon,
			Buckets:   st.cfg.Buckets,
			Mechanism: st.cfg.Mechanism,
			Bandwidth: st.cfg.Bandwidth,
			Shards:    st.cfg.Shards,
		}
		if st.ring != nil {
			state := st.ring.State()
			rec.Counts = state.Live
			if rec.Counts == nil {
				rec.Counts = make([]uint64, st.ring.Buckets())
			}
			rec.Window = windowRecord(st, state)
		} else {
			counts, _ := st.counts.Snapshot(nil)
			rec.Counts = make([]uint64, len(counts))
			for i, c := range counts {
				rec.Counts[i] = uint64(c)
			}
		}
		if est := st.est.Load(); est != nil {
			rec.Estimate = est.Distribution
			rec.EstimateN = est.N
			rec.EstimateRaw = est.raw
		}
		records = append(records, rec)
	}
	fed := s.federationRecordLocked()
	s.fedMu.Unlock()
	return snapshot.SaveFile(path, &snapshot.File{Streams: records, Federation: fed})
}

// windowRecord converts a ring state plus the stream's cached window
// estimates into the persisted window block.
func windowRecord(st *stream, state window.State) *snapshot.Window {
	win := snapshot.NewWindow(state)
	for _, wc := range st.windowCaches() {
		est := wc.est.Load()
		// Only persist estimates whose range is still resolvable against
		// the captured state — a cache can briefly outlive its epochs
		// between a rotation and the next eviction.
		if est == nil || wc.rng.Hi > state.Current {
			continue
		}
		if oldest := oldestOf(state); wc.rng.Lo < oldest {
			continue
		}
		win.Estimates = append(win.Estimates, snapshot.WindowEstimate{
			Lo: wc.rng.Lo, Hi: wc.rng.Hi, N: est.N, Raw: est.raw, Estimate: est.Distribution,
		})
	}
	return win
}

func oldestOf(state window.State) int {
	if len(state.Sealed) == 0 {
		return state.Current
	}
	return state.Sealed[0].Index
}

// windowState converts a persisted window block back into a ring state.
func windowState(rec snapshot.Stream) window.State {
	return rec.Window.State(rec.Counts)
}

// LoadSnapshot restores streams from a snapshot file. Streams that do not
// exist are created with their persisted configuration (including epoch
// rotation state); the persisted histogram of a stream that already exists
// (e.g. the default stream on a fresh boot) is merged into it, provided the
// mechanism parameters match. A windowed record restoring into a live
// windowed stream requires matching epoch/retain and a stream that has not
// rotated yet (the boot-time shape: declare flags, then restore); a v1
// record restoring into a windowed stream merges into the live epoch. A
// persisted cached estimate is installed when the live stream had no
// reports before the merge, so GET /estimate — and any persisted window
// estimate — serves instantly and bit-identically after a restart. Corrupt,
// truncated, or incompatible files return an error and change nothing: the
// whole restore — validation of every record, construction of every missing
// stream, then the merge — happens atomically under the registry lock, so
// neither a concurrent stream declaration nor an engine rotation (which
// takes the registry read-lock) can slip between validation and apply, and
// no error path leaves a partial merge behind.
func (s *Server) LoadSnapshot(path string) error {
	sp := s.tracer.NewTrace("snapshot/load")
	start := time.Now()
	err := s.loadSnapshot(path)
	s.observeSnapshot("load", start, err)
	if err != nil {
		sp.Fail("load_failed")
	}
	sp.End()
	if err == nil {
		// Restore completed: a server started with Ops.AwaitRestore is now
		// safe to serve from (readiness probe flips to 200).
		s.MarkReady()
	}
	return err
}

func (s *Server) loadSnapshot(path string) error {
	file, err := snapshot.LoadFile(path)
	if err != nil {
		return err
	}
	records := file.Streams
	// Lock order: fedMu before the registry lock, matching the push path —
	// the restore must exclude concurrent pushes, or a push applied between
	// the histogram merge and the peer-cursor install would be forgotten.
	s.fedMu.Lock()
	defer s.fedMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Phase 1 — validate every record and build (but do not register) the
	// streams that are missing. Nothing live is mutated until every record
	// has a proven-compatible destination.
	targets := make([]*stream, len(records))
	fresh := make([]bool, len(records))
	for i, rec := range records {
		st, ok := s.streams[rec.Name]
		if ok {
			if st.cfg.Epsilon != rec.Epsilon || st.cfg.Buckets != rec.Buckets ||
				effectiveBandwidth(st.cfg.Mechanism, st.cfg.Epsilon, st.cfg.Bandwidth) !=
					effectiveBandwidth(rec.MechanismName(), rec.Epsilon, rec.Bandwidth) {
				return fmt.Errorf("ldphttp: snapshot stream %q has (ε=%v, buckets=%d, b=%v) but the live stream has (ε=%v, buckets=%d, b=%v)",
					rec.Name, rec.Epsilon, rec.Buckets, rec.Bandwidth,
					st.cfg.Epsilon, st.cfg.Buckets, st.cfg.Bandwidth)
			}
			if st.cfg.Mechanism != rec.MechanismName() {
				return fmt.Errorf("ldphttp: snapshot stream %q uses mechanism %q but the live stream uses %q",
					rec.Name, rec.MechanismName(), st.cfg.Mechanism)
			}
			if rec.Window != nil {
				if st.ring == nil {
					return fmt.Errorf("ldphttp: snapshot stream %q is windowed (epoch %v) but the live stream is not; declare it with an epoch before restoring",
						rec.Name, time.Duration(rec.Window.EpochNanos))
				}
				if int64(time.Duration(st.cfg.Epoch)) != rec.Window.EpochNanos ||
					st.cfg.Retain != rec.Window.Retain {
					return fmt.Errorf("ldphttp: snapshot stream %q rotates every %v retaining %d but the live stream rotates every %v retaining %d",
						rec.Name, time.Duration(rec.Window.EpochNanos), rec.Window.Retain,
						time.Duration(st.cfg.Epoch), st.cfg.Retain)
				}
				if err := st.ring.CanAdopt(windowState(rec)); err != nil {
					return fmt.Errorf("ldphttp: restore stream %q: %w", rec.Name, err)
				}
			}
		} else {
			cfg := StreamConfig{
				Epsilon:   rec.Epsilon,
				Buckets:   rec.Buckets,
				Mechanism: rec.MechanismName(),
				Bandwidth: rec.Bandwidth,
				Shards:    rec.Shards,
			}
			if rec.Window != nil {
				cfg.Epoch = Duration(rec.Window.EpochNanos)
				cfg.Retain = rec.Window.Retain
			}
			cfg, err := s.fillStreamDefaults(cfg)
			if err != nil {
				return fmt.Errorf("ldphttp: restore stream %q: %w", rec.Name, err)
			}
			st = s.newStream(rec.Name, cfg)
			if rec.Window != nil {
				// The fresh ring is pristine and unregistered; adopting the
				// persisted clock and sealed history cannot race anything.
				if err := st.ring.Adopt(windowState(rec)); err != nil {
					return fmt.Errorf("ldphttp: restore stream %q: %w", rec.Name, err)
				}
			}
			fresh[i] = true
		}
		if st.histBuckets() != len(rec.Counts) {
			return fmt.Errorf("ldphttp: snapshot stream %q has %d histogram buckets, the %s stream has %d",
				rec.Name, len(rec.Counts), map[bool]string{true: "restored", false: "live"}[fresh[i]],
				st.histBuckets())
		}
		targets[i] = st
	}
	// The edge push cursor restores between validation and the merges: its
	// one failure mode — a tracker that already acked pushes this process
	// made, state the snapshot cannot know about — must abort the load
	// while nothing has merged yet, or a retry would double-merge. The
	// cursor installed here agrees with the histograms only once phase 2
	// lands, which it now cannot fail to do.
	if err := s.restorePushCursorLocked(file.Federation); err != nil {
		return fmt.Errorf("ldphttp: restore federation state: %w", err)
	}
	// Phase 2 — register and merge; no failure paths remain: the engine
	// rotates rings only under the registry read-lock, which this restore
	// holds exclusively, so a ring validated as adoptable in phase 1 is
	// still adoptable here.
	for i, rec := range records {
		st := targets[i]
		// fresh streams were empty by construction (the phase-1 adopt of a
		// fresh windowed ring already carried the persisted reports in).
		wasEmpty := fresh[i] || st.reports() == 0
		if fresh[i] {
			s.streams[st.name] = st
			s.order = append(s.order, st)
		}
		if rec.Window != nil {
			if !fresh[i] {
				if err := st.ring.Adopt(windowState(rec)); err != nil {
					return fmt.Errorf("ldphttp: restore stream %q: %w", rec.Name, err)
				}
			}
		} else {
			for bucket, c := range rec.Counts {
				st.addN(bucket, c)
			}
		}
		if wasEmpty && len(rec.Estimate) > 0 {
			dist := append([]float64(nil), rec.Estimate...)
			raw := rec.EstimateRaw
			if raw == 0 {
				raw = rec.EstimateN // version ≤ 2, or a non-fan-out stream
			}
			st.est.Store(&EstimateResponse{
				Stream:       st.name,
				N:            rec.EstimateN,
				Epsilon:      st.cfg.Epsilon,
				Mechanism:    st.cfg.Mechanism,
				Distribution: dist,
				Mean:         histogram.Mean(dist),
				Variance:     histogram.Variance(dist),
				Median:       histogram.Quantile(dist, 0.5),
				Converged:    true,
				WarmStart:    true,
				Restored:     true,
				raw:          raw,
			})
			st.published.Store(int64(raw))
		}
		if rec.Window != nil && wasEmpty {
			st.restoreWindowEstimates(s, rec.Window.Estimates)
		}
	}
	// Phase 3 — root-side peer cursors (validated in LoadFile, install
	// cannot fail).
	s.restorePeersLocked(file.Federation)
	s.wake() // re-estimate any stream whose counts moved past its estimate
	return nil
}

// restoreWindowEstimates installs persisted window reconstructions into the
// stream's cache, so window queries after a restart serve bit-identically
// without recomputation (fully-sealed ranges never recompute at all).
func (st *stream) restoreWindowEstimates(s *Server, ests []snapshot.WindowEstimate) {
	st.winMu.Lock()
	defer st.winMu.Unlock()
	for _, we := range ests {
		g := window.Range{Lo: we.Lo, Hi: we.Hi}
		wc := &windowCache{rng: g}
		dist := append([]float64(nil), we.Estimate...)
		wc.init = append([]float64(nil), dist...)
		raw := we.Raw
		if raw == 0 {
			raw = we.N
		}
		resp := s.windowEstimateResponse(st, g, we.N, dist, 0, true, true, true)
		resp.raw = raw
		wc.est.Store(resp)
		wc.published.Store(int64(raw))
		st.wins[g] = wc
	}
}
