package ldphttp

// Tracing acceptance: a client-stamped trace survives the whole pipeline —
// edge ingest (decode/bucketize/ingest stage spans), epoch sealing, the
// federation push, and the root's absorb — and stays recoverable from the
// root's flight recorder as an absorb-link marker. Also: the
// /v1/debug/traces filter surface, a mock-clock test proving the federation
// lag gauge and the push/absorb spans agree on a delayed edge, and a -race
// stress mixing tracing with ingestion, rotation, scrapes and snapshots.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/trace"
)

// fetchTraces hits a DebugHandler test server with a raw query string.
func fetchTraces(t *testing.T, debugURL, query string) DebugTracesResponse {
	t.Helper()
	u := debugURL + "/v1/debug/traces"
	if query != "" {
		u += "?" + query
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", u, resp.StatusCode)
	}
	var out DebugTracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// stageSet indexes records by stage name.
func stageSet(recs []trace.Record) map[string][]trace.Record {
	out := make(map[string][]trace.Record)
	for _, rec := range recs {
		out[rec.Stage] = append(out[rec.Stage], rec)
	}
	return out
}

// attrOf returns the value of a span attribute ("" when absent).
func attrOf(rec trace.Record, key string) string {
	for _, a := range rec.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// postTracedBatch ships one batch stamped with a client-minted traceparent,
// exactly as repro.Reporter does, and returns the trace context.
func postTracedBatch(t *testing.T, url, stream string, seed uint64, n int) trace.SpanContext {
	t.Helper()
	client := core.NewClient(core.Config{Epsilon: 1, Buckets: 32, Smoothing: true})
	rng := randx.New(seed)
	reports := make([]float64, n)
	for i := range reports {
		reports[i] = client.Report(rng.Beta(5, 2), rng)
	}
	blob, err := json.Marshal(map[string]any{"reports": reports})
	if err != nil {
		t.Fatal(err)
	}
	sc := trace.NewContext()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/streams/"+stream+"/batch", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", sc.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced batch: status %d", resp.StatusCode)
	}
	return sc
}

func TestTraceEndToEndFederation(t *testing.T) {
	// The acceptance path: Reporter-style stamped batch → edge ingest with
	// decode/bucketize/ingest stage spans → epoch seal → federation push →
	// root absorb — and the client's trace ID is recoverable from the
	// root's flight recorder.
	clock := newMockClock()
	mk := func(fed FederationConfig) (*Server, *httptest.Server, *httptest.Server) {
		s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: 5 * time.Millisecond,
			Clock: clock.Now, Federation: fed})
		t.Cleanup(s.Close)
		if err := s.CreateStream("lat", StreamConfig{Epsilon: 1, Buckets: 32,
			Epoch: Duration(time.Minute), Retain: 6}); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		dts := httptest.NewServer(s.DebugHandler())
		t.Cleanup(dts.Close)
		return s, ts, dts
	}
	root, rootTS, rootDbg := mk(FederationConfig{Accept: true})
	edge, edgeTS, edgeDbg := mk(FederationConfig{})

	sc := postTracedBatch(t, edgeTS.URL, "lat", 7, 200)

	// The edge recorded the full ingest pipeline under the client's trace.
	got := fetchTraces(t, edgeDbg.URL, "trace="+sc.TraceID)
	stages := stageSet(got.Spans)
	httpRoot := stages["http /v1/streams/{name}/batch"]
	if len(httpRoot) != 1 {
		t.Fatalf("trace %s: http root spans = %d, want 1 (stages %v)", sc.TraceID, len(httpRoot), len(got.Spans))
	}
	if httpRoot[0].TraceID != sc.TraceID {
		t.Fatalf("continued trace ID %s, want %s", httpRoot[0].TraceID, sc.TraceID)
	}
	for _, stage := range []string{"decode", "bucketize", "ingest"} {
		children := stages[stage]
		if len(children) != 1 {
			t.Fatalf("trace %s: %q spans = %d, want 1", sc.TraceID, stage, len(children))
		}
		if children[0].ParentID != httpRoot[0].SpanID {
			t.Errorf("%q span parent %s, want the http span %s", stage, children[0].ParentID, httpRoot[0].SpanID)
		}
	}
	if codec := attrOf(stages["decode"][0], "codec"); codec != "json" {
		t.Errorf("decode codec attr %q, want json", codec)
	}
	if n := attrOf(stages["bucketize"][0], "reports"); n != "200" {
		t.Errorf("bucketize reports attr %q, want 200", n)
	}
	if stream := stages["ingest"][0].Stream; stream != "lat" {
		t.Errorf("ingest span stream %q, want lat", stream)
	}

	// Epoch seal: both tiers rotate on the shared clock, and the rotation
	// itself leaves a stream-scoped engine span.
	clock.Advance(time.Minute)
	waitRotation(t, edge, "lat", 1)
	waitRotation(t, root, "lat", 1)
	if rot := stageSet(fetchTraces(t, edgeDbg.URL, "stream=lat").Spans)["epoch/rotate"]; len(rot) == 0 {
		t.Fatal("edge recorded no epoch/rotate span for lat")
	}

	// Push: the edge span and the root's absorb span bracket the transfer,
	// and the sampled ingest trace ID rides along as a link.
	if err := edge.EnablePush(PushOptions{URL: rootTS.URL, Edge: "trace-edge", Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if acked, err := edge.PushNow(); err != nil || !acked {
		t.Fatalf("push: acked=%v err=%v", acked, err)
	}
	pushSpans := stageSet(fetchTraces(t, edgeDbg.URL, "").Spans)["federation/push"]
	if len(pushSpans) != 1 {
		t.Fatalf("edge federation/push spans = %d, want 1", len(pushSpans))
	}
	if e := attrOf(pushSpans[0], "edge"); e != "trace-edge" {
		t.Errorf("push span edge attr %q", e)
	}
	if pushSpans[0].Err != "" {
		t.Errorf("push span failed: %s", pushSpans[0].Err)
	}

	rootStages := stageSet(fetchTraces(t, rootDbg.URL, "route=/federation/push").Spans)
	absorb := rootStages["absorb"]
	if len(absorb) != 1 {
		t.Fatalf("root absorb spans = %d, want 1", len(absorb))
	}
	if e := attrOf(absorb[0], "edge"); e != "trace-edge" {
		t.Errorf("absorb span edge attr %q", e)
	}
	if attrOf(absorb[0], "seq") != attrOf(pushSpans[0], "seq") || attrOf(absorb[0], "seq") == "" {
		t.Errorf("push/absorb seq attrs disagree: %q vs %q",
			attrOf(pushSpans[0], "seq"), attrOf(absorb[0], "seq"))
	}
	if len(rootStages["http /federation/push"]) != 1 {
		t.Error("root did not trace the push request itself")
	}

	// The client's trace ID is recoverable at the root: the absorbed push
	// minted a link marker under the original trace.
	links := fetchTraces(t, rootDbg.URL, "trace="+sc.TraceID).Spans
	if len(links) == 0 {
		t.Fatalf("trace %s not recoverable at the root", sc.TraceID)
	}
	for _, rec := range links {
		if rec.Stage != "federation/absorb-link" {
			t.Errorf("root span under the client trace has stage %q", rec.Stage)
		}
		if e := attrOf(rec, "edge"); e != "trace-edge" {
			t.Errorf("absorb-link edge attr %q", e)
		}
	}
}

func TestDebugTracesFilters(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour,
		Ops: OpsConfig{Trace: TraceConfig{SampleEvery: 1}}})
	t.Cleanup(s.Close)
	for _, name := range []string{"a", "b"} {
		if err := s.CreateStream(name, StreamConfig{Epsilon: 1, Buckets: 32}); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	dts := httptest.NewServer(s.DebugHandler())
	t.Cleanup(dts.Close)

	postReports(t, ts.URL, "a", 1, 10)
	postReports(t, ts.URL, "b", 2, 10)
	sc := postTracedBatch(t, ts.URL, "a", 3, 5)

	all := fetchTraces(t, dts.URL, "")
	if all.Capacity != 4096 {
		t.Errorf("default recorder capacity %d, want 4096", all.Capacity)
	}
	if all.Recorded == 0 || len(all.Spans) == 0 {
		t.Fatalf("recorder empty: recorded=%d spans=%d", all.Recorded, len(all.Spans))
	}
	// Exemplars bridge the latency histogram to trace IDs.
	ex, ok := all.Exemplars["/v1/streams/{name}/batch"]
	if !ok {
		t.Fatalf("no exemplar for the batch endpoint (have %v)", len(all.Exemplars))
	}
	if ex.TraceID != sc.TraceID {
		t.Errorf("batch exemplar trace %s, want the most recent batch %s", ex.TraceID, sc.TraceID)
	}

	for _, rec := range fetchTraces(t, dts.URL, "stream=a").Spans {
		if rec.Stream != "a" {
			t.Errorf("stream=a filter returned span of stream %q", rec.Stream)
		}
	}
	byRoute := fetchTraces(t, dts.URL, "route=/v1/streams/{name}/batch").Spans
	if len(byRoute) == 0 {
		t.Fatal("route filter returned nothing")
	}
	roots := make(map[string]bool)
	for _, rec := range byRoute {
		if rec.Stage == "http /v1/streams/{name}/batch" {
			roots[rec.TraceID] = true
		}
	}
	for _, rec := range byRoute {
		if !roots[rec.TraceID] {
			t.Errorf("route filter returned span of unrooted trace %s (stage %q)", rec.TraceID, rec.Stage)
		}
	}
	for _, rec := range fetchTraces(t, dts.URL, "trace="+strings.ToUpper(sc.TraceID)).Spans {
		if rec.TraceID != sc.TraceID {
			t.Errorf("trace filter returned %s", rec.TraceID)
		}
	}
	if n := len(fetchTraces(t, dts.URL, "min_duration=1h").Spans); n != 0 {
		t.Errorf("min_duration=1h returned %d spans", n)
	}
	if n := len(fetchTraces(t, dts.URL, "limit=2").Spans); n > 2 {
		t.Errorf("limit=2 returned %d spans", n)
	}

	// Error surface: bad filters 400, wrong method 405.
	resp, err := http.Get(dts.URL + "/v1/debug/traces?min_duration=fast")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad min_duration: status %d", resp.StatusCode)
	}
	resp, err = http.Post(dts.URL+"/v1/debug/traces", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/debug/traces: status %d", resp.StatusCode)
	}

	// A server with tracing disabled serves 404 and records nothing.
	off := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour,
		Ops: OpsConfig{Trace: TraceConfig{Disable: true}}})
	t.Cleanup(off.Close)
	offDbg := httptest.NewServer(off.DebugHandler())
	t.Cleanup(offDbg.Close)
	resp, err = http.Get(offDbg.URL + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled tracing: status %d, want 404", resp.StatusCode)
	}
}

func TestErrorEnvelopeRequestID(t *testing.T) {
	s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/streams/default/report", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", resp.StatusCode)
	}
	var envelope struct {
		Error ErrorBody `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.RequestID == "" {
		t.Fatal("error envelope carries no request_id")
	}
	if hdr := resp.Header.Get("X-Request-Id"); hdr != envelope.Error.RequestID {
		t.Errorf("X-Request-Id header %q != envelope request_id %q", hdr, envelope.Error.RequestID)
	}
}

func TestFederationLagTraceAgreement(t *testing.T) {
	// A delayed edge, mock clocks: the root runs 2 epochs ahead of an edge
	// that never rotated. The lag gauge — computed against the root's own
	// clock — and the push/absorb span pair must tell the same story:
	// the push applied (same seq on both sides, no failure) exactly one
	// epoch of gauge-visible lag after the root last heard from the edge.
	rootClock := newMockClock()
	edgeClock := newMockClock() // same origin, so the streams fingerprint equal
	mk := func(clock *mockClock, fed FederationConfig) *Server {
		s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: 5 * time.Millisecond,
			Clock: clock.Now, Federation: fed})
		t.Cleanup(s.Close)
		// Pre-declare on both tiers: auto-declaring from the pushed
		// fingerprint would align the root's ring to its own (advanced)
		// clock and drop the skewed edge's epoch-0 deltas.
		if err := s.CreateStream("lat", StreamConfig{Epsilon: 1, Buckets: 32,
			Epoch: Duration(time.Minute), Retain: 6}); err != nil {
			t.Fatal(err)
		}
		return s
	}
	root := mk(rootClock, FederationConfig{Accept: true})
	rootTS := httptest.NewServer(root.Handler())
	t.Cleanup(rootTS.Close)
	rootDbg := httptest.NewServer(root.DebugHandler())
	t.Cleanup(rootDbg.Close)
	edge := mk(edgeClock, FederationConfig{})
	edgeTS := httptest.NewServer(edge.Handler())
	t.Cleanup(edgeTS.Close)
	edgeDbg := httptest.NewServer(edge.DebugHandler())
	t.Cleanup(edgeDbg.Close)
	if err := edge.EnablePush(PushOptions{URL: rootTS.URL, Edge: "lag-edge", Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}

	// The edge collects in its (still live) epoch 0 while the root's clock
	// runs two epochs ahead — skew ≥ 1 epoch.
	postReports(t, edgeTS.URL, "lat", 5, 200)
	rootClock.Advance(2 * time.Minute)
	waitRotation(t, root, "lat", 2)

	if acked, err := edge.PushNow(); err != nil || !acked {
		t.Fatalf("delayed-edge push: acked=%v err=%v", acked, err)
	}

	// One more root epoch passes with no further pushes: the lag gauge must
	// read exactly one epoch, on the root's clock, not wall time.
	rootClock.Advance(time.Minute)
	lag, ok := scrape(t, rootTS.URL).Value("ldp_federation_push_lag_seconds", "edge=lag-edge")
	if !ok || lag != 60 {
		t.Fatalf("federation lag gauge = %v (present %v), want exactly 60", lag, ok)
	}

	// Span agreement: the edge's push span and the root's absorb span carry
	// the same sequence number and neither failed — the delta was applied,
	// not dropped, despite the skew.
	pushSpans := stageSet(fetchTraces(t, edgeDbg.URL, "").Spans)["federation/push"]
	if len(pushSpans) != 1 {
		t.Fatalf("edge push spans = %d, want 1", len(pushSpans))
	}
	absorbSpans := stageSet(fetchTraces(t, rootDbg.URL, "route=/federation/push").Spans)["absorb"]
	if len(absorbSpans) != 1 {
		t.Fatalf("root absorb spans = %d, want 1", len(absorbSpans))
	}
	push, absorb := pushSpans[0], absorbSpans[0]
	if push.Err != "" || absorb.Err != "" {
		t.Fatalf("push/absorb failed: %q / %q", push.Err, absorb.Err)
	}
	if seq := attrOf(push, "seq"); seq == "" || seq != attrOf(absorb, "seq") {
		t.Fatalf("push seq %q != absorb seq %q", seq, attrOf(absorb, "seq"))
	}
	if attrOf(absorb, "edge") != "lag-edge" || attrOf(absorb, "reports") == "" {
		t.Fatalf("absorb span attrs incomplete: %+v", absorb.Attrs)
	}
	// The peer really did apply — nothing dropped outside the window.
	for _, p := range root.Peers() {
		if p.Edge == "lag-edge" && p.Dropped != 0 {
			t.Fatalf("root dropped %d increments from the delayed edge", p.Dropped)
		}
	}
}

func TestStressTracing(t *testing.T) {
	// Race-detector workout for the tracing subsystem: every request traced
	// (SampleEvery 1, small recorder so the ring wraps constantly) while
	// ingestion, epoch rotation, snapshots, scrapes and debug reads all run
	// concurrently.
	if testing.Short() {
		t.Skip("tracing stress in -short mode")
	}
	dir := t.TempDir()
	clock := newMockClock()
	s := NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: 3 * time.Millisecond,
		Clock: clock.Now,
		Ops:   OpsConfig{Trace: TraceConfig{SampleEvery: 1, Capacity: 64}}})
	t.Cleanup(s.Close)
	if err := s.CreateStream("win", StreamConfig{Epsilon: 1, Buckets: 32,
		Epoch: Duration(40 * time.Millisecond), Retain: 64}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	dts := httptest.NewServer(s.DebugHandler())
	t.Cleanup(dts.Close)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Ingesters: alternate default/windowed streams, every third batch
	// stamped with a client traceparent.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := core.NewClient(core.Config{Epsilon: 1, Buckets: 32, Smoothing: true})
			rng := randx.New(uint64(2000 + w))
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				stream := "default"
				if n%2 == 0 {
					stream = "win"
				}
				blob, _ := json.Marshal(map[string]any{"reports": []float64{client.Report(rng.Beta(5, 2), rng)}})
				req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/streams/"+stream+"/batch", bytes.NewReader(blob))
				req.Header.Set("Content-Type", "application/json")
				if n%3 == 0 {
					req.Header.Set("traceparent", trace.NewContext().Header())
				}
				if resp, err := http.DefaultClient.Do(req); err == nil {
					resp.Body.Close()
				}
			}
		}(w)
	}
	// Debug reader, scraper, snapshotter, clock advancer.
	readers := []func(){
		func() {
			resp, err := http.Get(dts.URL + "/v1/debug/traces?stream=win&limit=16")
			if err == nil {
				resp.Body.Close()
			}
		},
		func() {
			resp, err := http.Get(ts.URL + "/metrics")
			if err == nil {
				resp.Body.Close()
			}
		},
		func() { s.SaveSnapshot(filepath.Join(dir, "trace-stress.snap")) },
		func() { clock.Advance(10 * time.Millisecond); time.Sleep(2 * time.Millisecond) },
	}
	for _, fn := range readers {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}(fn)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	got := fetchTraces(t, dts.URL, "")
	if got.Recorded == 0 {
		t.Fatal("stress run recorded no spans")
	}
	if len(got.Spans) > got.Capacity {
		t.Fatalf("recorder over capacity: %d > %d", len(got.Spans), got.Capacity)
	}
}
