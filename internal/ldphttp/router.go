package ldphttp

// Routing and middleware: Handler assembles the versioned /v1 resource
// tree, the legacy flat aliases (same cores, plus Deprecation/Link
// headers), the federation and operational endpoints — each wrapped by one
// middleware that sheds over-rate requests before the engine, bounds
// bodies, counts and times the request, and writes the access log line.
//
// The v1 tree is dispatched by hand rather than with ServeMux method
// patterns so unsupported methods keep answering 405 with an Allow header
// and the JSON envelope (a mux pattern miss would produce a bare text 404).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/trace"
)

// routeOpts configures the middleware for one endpoint.
type routeOpts struct {
	// admit subjects the endpoint to the global admission bucket. Off for
	// the operational endpoints: a load-shedding server must keep
	// answering its probes and exposing its shed counters.
	admit bool
	// capBody bounds the request body at Ops.MaxBodyBytes. Off for
	// federation pushes, which keep their own 64 MiB cap.
	capBody bool
	// successor, when set, marks the endpoint deprecated and names the v1
	// route that replaces it.
	successor string
	// trace is the endpoint's tracing policy: off for operational probes,
	// sampled for the per-report ingest hot path, always-on elsewhere.
	trace traceMode
}

// statusWriter captures the status code, body size, request span, the
// negotiated codec, and the lazily-minted request ID for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	span   *trace.Span
	codec  string
	reqID  string
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

// route wraps a handler with the operational middleware. endpoint is the
// stable label carried by ldp_requests_total and the access log — the
// route template ("/v1/streams/{name}/report"), never the raw path, so the
// label space stays bounded.
func (s *Server) route(endpoint string, opts routeOpts, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		if t := s.tracer; t != nil && opts.trace != traceOff {
			if parent, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
				sw.span = t.StartSpan(parent, "http "+endpoint)
			} else if opts.trace == traceAlways || t.SampleReport() {
				sw.span = t.NewTrace("http " + endpoint)
			}
		}
		if opts.successor != "" {
			sw.Header().Set("Deprecation", "true")
			sw.Header().Set("Link", "<"+opts.successor+`>; rel="successor-version"`)
		}
		shed := false
		if opts.admit && s.limiter != nil {
			if ok, retry := s.limiter.Allow(); !ok {
				shed = true
				if m := s.metrics; m != nil {
					m.shed.With(endpoint, "global").Inc()
				}
				retryJSON(sw, http.StatusTooManyRequests, CodeRateLimited, retry, nil,
					"server over admission rate; retry in %v", retry)
			}
		}
		if !shed {
			if opts.capBody && s.maxBody > 0 && r.Body != nil {
				r.Body = http.MaxBytesReader(sw, r.Body, s.maxBody)
			}
			h(sw, r)
		}
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := time.Since(start)
		if m := s.metrics; m != nil {
			m.requests.With(endpoint, r.Method, fmt.Sprintf("%d", sw.status)).Inc()
			if sw.span != nil {
				m.reqDur.With(endpoint).ObserveExemplar(dur.Seconds(), sw.span.TraceID())
			} else {
				m.reqDur.With(endpoint).Observe(dur.Seconds())
			}
		}
		if sp := sw.span; sp != nil {
			sp.Attr("status", fmt.Sprintf("%d", sw.status))
			if sw.codec != "" {
				sp.Attr("codec", sw.codec)
			}
			if shed {
				sp.Fail(CodeRateLimited)
			} else if sw.status >= 500 {
				sp.Fail(fmt.Sprintf("http_%d", sw.status))
			}
			sp.End()
		}
		if s.slowReq > 0 && dur >= s.slowReq {
			s.logSlow(r, sw, endpoint, dur)
		}
		s.logRequest(r, sw, dur)
	}
}

// logRequest writes one structured access-log line (key=value or JSON).
func (s *Server) logRequest(r *http.Request, sw *statusWriter, dur time.Duration) {
	if s.accessLog == nil {
		return
	}
	ts := time.Now().UTC().Format(time.RFC3339Nano)
	codec := sw.codec
	if codec == "" {
		codec = "-"
	}
	var line string
	if s.logJSON {
		fields := map[string]any{
			"ts":     ts,
			"method": r.Method,
			"path":   r.URL.RequestURI(),
			"status": sw.status,
			"dur_ms": float64(dur.Microseconds()) / 1000,
			"bytes":  sw.bytes,
			"codec":  codec,
			"req_id": sw.requestID(),
			"remote": r.RemoteAddr,
		}
		if id := sw.span.TraceID(); id != "" {
			fields["trace"] = id
		}
		b, err := json.Marshal(fields)
		if err != nil {
			return
		}
		line = string(b) + "\n"
	} else {
		traceField := ""
		if id := sw.span.TraceID(); id != "" {
			traceField = " trace=" + id
		}
		line = fmt.Sprintf("ts=%s method=%s path=%q status=%d dur_ms=%.3f bytes=%d codec=%s req_id=%s%s remote=%s\n",
			ts, r.Method, r.URL.RequestURI(), sw.status, float64(dur.Microseconds())/1000, sw.bytes, codec, sw.requestID(), traceField, r.RemoteAddr)
	}
	s.logMu.Lock()
	s.accessLog.Write([]byte(line))
	s.logMu.Unlock()
}

// Handler returns the HTTP routes: the v1 tree, the legacy aliases, the
// federation surface, and the operational endpoints.
func (s *Server) Handler() http.Handler {
	engine := routeOpts{admit: true, capBody: true, trace: traceAlways}
	ops := routeOpts{}
	dep := func(successor string, mode traceMode) routeOpts {
		return routeOpts{admit: true, capBody: true, successor: successor, trace: mode}
	}

	mux := http.NewServeMux()
	// Legacy flat surface: same cores as v1, marked deprecated. The ingest
	// hot paths (/report, /batch) sample; the rest trace always-on.
	mux.HandleFunc("/streams", s.route("/streams", dep("/v1/streams", traceAlways), s.handleStreams))
	mux.HandleFunc("/streams/", s.route("/streams/{name}", dep("/v1/streams/{name}", traceAlways), s.handleStreamItem))
	mux.HandleFunc("/report", s.route("/report", dep("/v1/streams/{name}/report", traceSampled), s.handleReport))
	mux.HandleFunc("/batch", s.route("/batch", dep("/v1/streams/{name}/batch", traceSampled), s.handleBatch))
	mux.HandleFunc("/estimate", s.route("/estimate", dep("/v1/streams/{name}/estimate", traceAlways), s.handleEstimate))
	mux.HandleFunc("/query", s.route("/query", dep("/v1/streams/{name}/query", traceAlways), s.handleQuery))
	mux.HandleFunc("/config", s.route("/config", dep("/v1/streams/{name}/config", traceAlways), s.handleConfig))

	// Versioned v1 resource tree.
	mux.HandleFunc("/v1/streams", s.route("/v1/streams", engine, s.handleStreams))
	mux.HandleFunc("/v1/streams/", s.v1StreamRoutes())
	mux.HandleFunc("/v1/diagnostics", s.route("/v1/diagnostics", engine, s.handleFleetDiagnostics))

	// Federation: push carries its own body cap and the per-edge tier.
	mux.HandleFunc("/federation/push", s.route("/federation/push", routeOpts{admit: true, trace: traceAlways}, s.handleFederationPush))
	mux.HandleFunc("/federation/peers", s.route("/federation/peers", engine, s.handleFederationPeers))

	// Operational surface: exempt from admission control.
	mux.HandleFunc("/metrics", s.route("/metrics", ops, s.handleMetrics))
	mux.HandleFunc("/healthz", s.route("/healthz", ops, s.handleHealthz))
	mux.HandleFunc("/readyz", s.route("/readyz", ops, s.handleReadyz))

	// Everything else 404s with the envelope, not the mux's text body.
	mux.HandleFunc("/", s.route("/", ops, func(w http.ResponseWriter, r *http.Request) {
		errorJSON(w, http.StatusNotFound, CodeNotFound, "no route %s", r.URL.Path)
	}))
	return mux
}

// v1StreamRoutes dispatches /v1/streams/{name}[/{action}]. Middleware is
// pre-built per action so every endpoint label is a stable route template.
func (s *Server) v1StreamRoutes() http.HandlerFunc {
	engine := routeOpts{admit: true, capBody: true, trace: traceAlways}
	ingest := routeOpts{admit: true, capBody: true, trace: traceSampled}
	item := s.route("/v1/streams/{name}", engine, func(w http.ResponseWriter, r *http.Request) {
		name, _, _ := v1StreamPath(r)
		switch r.Method {
		case http.MethodGet:
			s.serveStreamInfo(w, name)
		case http.MethodDelete:
			s.serveStreamDelete(w, name)
		default:
			methodNotAllowed(w, r, http.MethodGet, http.MethodDelete)
		}
	})
	actions := map[string]http.HandlerFunc{
		"report": s.route("/v1/streams/{name}/report", ingest, func(w http.ResponseWriter, r *http.Request) {
			name, _, _ := v1StreamPath(r)
			if r.Method != http.MethodPost {
				methodNotAllowed(w, r, http.MethodPost)
				return
			}
			codec, ok := s.negotiateCodec(w, r, "/v1/streams/{name}/report")
			if !ok {
				return
			}
			if codec == codecBinary {
				s.serveBinaryReport(w, r, name)
				return
			}
			var req reportRequest
			if !decodeJSON(w, r, &req) {
				return
			}
			if !v1StreamMatches(w, name, req.Stream) {
				return
			}
			s.serveReport(w, name, req.Report)
		}),
		"batch": s.route("/v1/streams/{name}/batch", ingest, func(w http.ResponseWriter, r *http.Request) {
			name, _, _ := v1StreamPath(r)
			if r.Method != http.MethodPost {
				methodNotAllowed(w, r, http.MethodPost)
				return
			}
			codec, ok := s.negotiateCodec(w, r, "/v1/streams/{name}/batch")
			if !ok {
				return
			}
			if codec == codecBinary {
				s.serveBinaryBatch(w, r, name)
				return
			}
			var req batchRequest
			if !decodeJSON(w, r, &req) {
				return
			}
			if !v1StreamMatches(w, name, req.Stream) {
				return
			}
			s.serveBatch(w, name, req.Reports)
		}),
		"estimate": s.route("/v1/streams/{name}/estimate", engine, func(w http.ResponseWriter, r *http.Request) {
			name, _, _ := v1StreamPath(r)
			if r.Method != http.MethodGet {
				methodNotAllowed(w, r, http.MethodGet)
				return
			}
			s.serveEstimate(w, name, r.URL.Query().Get("window"))
		}),
		"query": s.route("/v1/streams/{name}/query", engine, func(w http.ResponseWriter, r *http.Request) {
			name, _, _ := v1StreamPath(r)
			switch r.Method {
			case http.MethodGet:
				s.serveQueryGet(w, r, name)
			case http.MethodPost:
				var req batchQueryRequest
				if !decodeJSON(w, r, &req) {
					return
				}
				if !v1StreamMatches(w, name, req.Stream) {
					return
				}
				s.serveQueryPost(w, name, req)
			default:
				methodNotAllowed(w, r, http.MethodGet, http.MethodPost)
			}
		}),
		"config": s.route("/v1/streams/{name}/config", engine, func(w http.ResponseWriter, r *http.Request) {
			name, _, _ := v1StreamPath(r)
			if r.Method != http.MethodGet {
				methodNotAllowed(w, r, http.MethodGet)
				return
			}
			s.serveConfig(w, name)
		}),
		"diagnostics": s.route("/v1/streams/{name}/diagnostics", engine, func(w http.ResponseWriter, r *http.Request) {
			name, _, _ := v1StreamPath(r)
			if r.Method != http.MethodGet {
				methodNotAllowed(w, r, http.MethodGet)
				return
			}
			s.serveStreamDiagnostics(w, name)
		}),
	}
	notFound := s.route("/v1/streams/{name}", routeOpts{}, func(w http.ResponseWriter, r *http.Request) {
		errorJSON(w, http.StatusNotFound, CodeNotFound, "no route %s", r.URL.Path)
	})
	return func(w http.ResponseWriter, r *http.Request) {
		name, action, ok := v1StreamPath(r)
		if !ok || name == "" {
			notFound(w, r)
			return
		}
		if action == "" {
			item(w, r)
			return
		}
		h, known := actions[action]
		if !known {
			notFound(w, r)
			return
		}
		h(w, r)
	}
}

// v1StreamPath parses /v1/streams/{name}[/{action}]; ok is false for
// deeper nesting or an unescapable name. The segments come from
// EscapedPath, not Path: net/http has already percent-decoded r.URL.Path,
// so unescaping that a second time would mangle names containing '%' and
// split names containing an escaped '/' — the exact names the server's own
// PathEscape-built links carry.
func v1StreamPath(r *http.Request) (name, action string, ok bool) {
	rest := strings.TrimPrefix(r.URL.EscapedPath(), "/v1/streams/")
	parts := strings.Split(rest, "/")
	if len(parts) > 2 {
		return "", "", false
	}
	name, err := url.PathUnescape(parts[0])
	if err != nil {
		return "", "", false
	}
	if len(parts) == 2 {
		action = parts[1]
	}
	return name, action, true
}

// v1StreamMatches rejects a v1 body that names a different stream than the
// path; an empty body field inherits the path (the legacy field is simply
// redundant on v1).
func v1StreamMatches(w http.ResponseWriter, path, body string) bool {
	if body != "" && body != path {
		errorJSON(w, http.StatusBadRequest, CodeStreamMismatch,
			"body addresses stream %q but the path addresses %q", body, path)
		return false
	}
	return true
}
