package ldphttp

// Durability tests: ingest → snapshot → reload must be lossless (bit-identical
// cached estimates, identical histograms), a kill/restart must resume within
// the statistical acceptance bounds, and damaged snapshot files must fail
// cleanly without touching server state.

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ldptest"
	"repro/internal/metrics"
	"repro/internal/randx"
	"repro/internal/snapshot"
)

// loadRecords reads a snapshot file's stream records, failing the test on
// any error.
func loadRecords(t *testing.T, path string) []snapshot.Stream {
	t.Helper()
	recs, err := snapshot.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestSnapshotRoundTripBitIdentical is the property test of the durability
// layer: after save → close → new server → load, the restored cached
// estimate is bit-for-bit the one the first server computed, and the report
// histograms match count for count.
func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")

	s1 := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: 10 * time.Millisecond})
	ts1 := httptest.NewServer(s1.Handler())
	if err := s1.CreateStream("age", StreamConfig{Epsilon: 2, Buckets: 32}); err != nil {
		t.Fatal(err)
	}

	// Deterministic ingestion into both streams, then fresh estimates.
	rep1, err := ldptest.CheckServing(ts1.URL,
		func(rng *randx.Rand) float64 { return rng.Beta(5, 2) },
		ldptest.ServingOptions{Epsilon: 1, Buckets: 64, Clients: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := ldptest.CheckServing(ts1.URL,
		func(rng *randx.Rand) float64 { return rng.Beta(2, 6) },
		ldptest.ServingOptions{Stream: "age", Epsilon: 2, Buckets: 32, Clients: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	if err := s1.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	// Kill the first server entirely.
	ts1.Close()
	s1.Close()

	// Restart: a fresh process restores from the snapshot.
	s2 := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: time.Hour})
	t.Cleanup(s2.Close)
	if err := s2.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)

	// The restored server serves estimates immediately (no re-estimation
	// possible: the engine's tick is an hour out and nothing new arrived),
	// and they are bit-identical to the pre-kill ones.
	for _, tc := range []struct {
		stream string
		want   []float64
		n      int
	}{
		{"", rep1.Estimate, 2000},
		{"age", rep2.Estimate, 2000},
	} {
		est := getFreshStreamEstimate(t, ts2.URL, tc.stream, tc.n)
		if !est.Restored {
			t.Errorf("stream %q estimate not marked restored", tc.stream)
		}
		if len(est.Distribution) != len(tc.want) {
			t.Fatalf("stream %q restored %d buckets, want %d", tc.stream, len(est.Distribution), len(tc.want))
		}
		for i := range tc.want {
			if est.Distribution[i] != tc.want[i] {
				t.Fatalf("stream %q bucket %d: restored %v != original %v (not bit-identical)",
					tc.stream, i, est.Distribution[i], tc.want[i])
			}
		}
	}

	// Count-for-count histogram equality: snapshotting the restored server
	// reproduces the same file payload modulo the save timestamp — compare
	// the parsed records instead of bytes.
	path2 := filepath.Join(t.TempDir(), "state2.snap")
	if err := s2.SaveSnapshot(path2); err != nil {
		t.Fatal(err)
	}
	recs1 := loadRecords(t, path)
	recs2 := loadRecords(t, path2)
	if len(recs1) != len(recs2) {
		t.Fatalf("round trip changed stream count: %d -> %d", len(recs1), len(recs2))
	}
	for i := range recs1 {
		a, b := recs1[i], recs2[i]
		if a.Name != b.Name || len(a.Counts) != len(b.Counts) {
			t.Fatalf("round trip changed stream %q shape", a.Name)
		}
		for j := range a.Counts {
			if a.Counts[j] != b.Counts[j] {
				t.Errorf("stream %q count[%d]: %d -> %d", a.Name, j, a.Counts[j], b.Counts[j])
			}
		}
	}
}

// TestSnapshotRestartWithinBounds is the kill/restart acceptance criterion:
// the estimate a restarted server serves from its snapshot must still be
// within the statistical acceptance bounds of the true distribution, and
// ingestion must resume seamlessly on top of the restored state.
func TestSnapshotRestartWithinBounds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")

	s1 := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: 10 * time.Millisecond})
	ts1 := httptest.NewServer(s1.Handler())
	rep, err := ldptest.CheckServing(ts1.URL,
		func(rng *randx.Rand) float64 { return rng.Beta(5, 2) },
		ldptest.ServingOptions{Epsilon: 1, Buckets: 64, Clients: 4000, Seed: 17,
			MaxW1: acceptW1, MaxKS: acceptKS})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.Close()

	s2 := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: 10 * time.Millisecond})
	t.Cleanup(s2.Close)
	if err := s2.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)

	restored := getFreshStreamEstimate(t, ts2.URL, "", 4000)
	w1 := metrics.Wasserstein(rep.Truth, restored.Distribution)
	ks := metrics.KS(rep.Truth, restored.Distribution)
	t.Logf("restored: W1=%.4f KS=%.4f", w1, ks)
	if w1 > acceptW1 {
		t.Errorf("restored estimate W1 = %.4f exceeds acceptance bound %.4f", w1, acceptW1)
	}
	if ks > acceptKS {
		t.Errorf("restored estimate KS = %.4f exceeds acceptance bound %.4f", ks, acceptKS)
	}

	// The restored histogram keeps accumulating: a second population lands
	// on top and the estimate still tracks the (unchanged) truth shape.
	rep2, err := ldptest.CheckServing(ts2.URL,
		func(rng *randx.Rand) float64 { return rng.Beta(5, 2) },
		ldptest.ServingOptions{Epsilon: 1, Buckets: 64, Clients: 4000, Seed: 19,
			Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// CheckServing polls until N ≥ its own population; with the restored
	// 4000 the estimate covers 8000.
	final := getFreshStreamEstimate(t, ts2.URL, "", 8000)
	w1 = metrics.Wasserstein(rep2.Truth, final.Distribution)
	if w1 > acceptW1 {
		t.Errorf("post-restart combined estimate W1 = %.4f exceeds %.4f", w1, acceptW1)
	}
}

// TestLoadSnapshotErrors asserts damaged or incompatible files fail cleanly
// and leave the server untouched.
func TestLoadSnapshotErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.snap")

	s := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: time.Hour})
	t.Cleanup(s.Close)
	if err := s.CreateStream("age", StreamConfig{Epsilon: 1, Buckets: 32}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshot(good); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	fresh := func(t *testing.T) *Server {
		t.Helper()
		srv := NewServer(Config{Epsilon: 1, Buckets: 64, RefreshInterval: time.Hour})
		t.Cleanup(srv.Close)
		return srv
	}

	t.Run("missing file", func(t *testing.T) {
		if err := fresh(t).LoadSnapshot(filepath.Join(dir, "nope.snap")); err == nil {
			t.Error("loading a missing file succeeded")
		}
	})

	t.Run("truncated", func(t *testing.T) {
		p := filepath.Join(dir, "trunc.snap")
		if err := os.WriteFile(p, blob[:len(blob)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		srv := fresh(t)
		if err := srv.LoadSnapshot(p); err == nil {
			t.Error("loading a truncated file succeeded")
		}
		if len(srv.Streams()) != 1 || srv.N() != 0 {
			t.Error("failed load mutated server state")
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[len(bad)-3] ^= 0x55
		p := filepath.Join(dir, "corrupt.snap")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := fresh(t).LoadSnapshot(p); err == nil {
			t.Error("loading a corrupt file succeeded")
		}
	})

	t.Run("atomic: bad record later in the file merges nothing", func(t *testing.T) {
		// First record is valid and targets the live default stream; the
		// second fails stream construction (bandwidth out of range, which
		// only ldphttp validates). The restore must reject the whole file
		// without merging the first record's counts.
		p := filepath.Join(dir, "mixed.snap")
		recs := []snapshot.Stream{
			{Name: DefaultStream, Epsilon: 1, Buckets: 64, Counts: make([]uint64, 64)},
			{Name: "broken", Epsilon: 1, Buckets: 32, Bandwidth: 3, Counts: make([]uint64, 32)},
		}
		recs[0].Counts[10] = 500
		if err := snapshot.Save(p, recs); err != nil {
			t.Fatal(err)
		}
		srv := fresh(t)
		if err := srv.LoadSnapshot(p); err == nil {
			t.Fatal("restore with an invalid record succeeded")
		}
		if srv.N() != 0 {
			t.Errorf("partial restore merged %d reports, want 0", srv.N())
		}
		if len(srv.Streams()) != 1 {
			t.Errorf("partial restore registered %d streams, want 1", len(srv.Streams()))
		}
	})

	t.Run("config mismatch", func(t *testing.T) {
		// A live stream with different parameters than the snapshot's
		// record must reject the whole restore, and nothing may merge.
		srv := fresh(t)
		if err := srv.CreateStream("age", StreamConfig{Epsilon: 3, Buckets: 16}); err != nil {
			t.Fatal(err)
		}
		if err := srv.LoadSnapshot(good); err == nil {
			t.Error("config-mismatched restore succeeded")
		}
		if srv.N() != 0 {
			t.Error("rejected restore still merged counts")
		}
	})
}
