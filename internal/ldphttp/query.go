package ldphttp

// HTTP surface of the analytics layer (package query): GET /query answers a
// single query from URL parameters, POST /query answers a batch against one
// consistent snapshot of a stream's estimate.

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/query"
)

// QueryResponse is the JSON shape of a /query answer: the evaluated
// query.Response plus the provenance of the estimate it was computed from.
type QueryResponse struct {
	Stream string `json:"stream"`
	// N is the number of reports covered by the estimate the answer was
	// computed from; PendingReports how many arrived after it.
	N              int `json:"n"`
	PendingReports int `json:"pending_reports,omitempty"`
	// Window and Epochs echo the sliding-window the answer was computed
	// over (absent on whole-stream queries).
	Window string      `json:"window,omitempty"`
	Epochs *EpochRange `json:"epochs,omitempty"`
	query.Response
}

// BatchQueryResponse is the JSON shape of POST /query.
type BatchQueryResponse struct {
	Stream         string           `json:"stream"`
	N              int              `json:"n"`
	PendingReports int              `json:"pending_reports,omitempty"`
	Window         string           `json:"window,omitempty"`
	Epochs         *EpochRange      `json:"epochs,omitempty"`
	Results        []query.Response `json:"results"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.serveQueryGet(w, r, r.URL.Query().Get("stream"))
	case http.MethodPost:
		var req batchQueryRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		s.serveQueryPost(w, req.Stream, req)
	default:
		methodNotAllowed(w, r, http.MethodGet, http.MethodPost)
	}
}

// serveQueryGet is the shared core of GET /query and GET
// /v1/streams/{name}/query; the stream name arrives resolved (parameter or
// path) while every other parameter reads from the URL.
func (s *Server) serveQueryGet(w http.ResponseWriter, r *http.Request, name string) {
	params := r.URL.Query()
	req, err := parseQueryParams(params)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	st := s.resolveStream(w, name)
	if st == nil {
		return
	}
	cached, pending, ok := s.loadEstimateOrWindow(w, st, params.Get("window"))
	if !ok {
		return
	}
	qsp := spanOf(w).Child("query/eval")
	qsp.SetStream(st.name)
	resp, err := query.Eval(cached.Distribution, cached.N, req)
	qsp.End()
	if err != nil {
		errorJSON(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	writeJSON(w, QueryResponse{
		Stream:         st.name,
		N:              cached.N,
		PendingReports: pending,
		Window:         cached.Window,
		Epochs:         cached.Epochs,
		Response:       resp,
	})
}

type batchQueryRequest struct {
	Stream string `json:"stream"`
	// Window optionally scopes the whole batch to one sliding window
	// ("last:K" or "epochs:i..j"), so every answer reads the same epoch
	// range.
	Window  string          `json:"window,omitempty"`
	Queries []query.Request `json:"queries"`
}

// serveQueryPost is the shared core of POST /query and POST
// /v1/streams/{name}/query; name is the resolved stream (body field or
// path).
func (s *Server) serveQueryPost(w http.ResponseWriter, name string, req batchQueryRequest) {
	if len(req.Queries) == 0 {
		errorJSON(w, http.StatusBadRequest, CodeBadRequest, "empty query batch")
		return
	}
	// Validate the whole batch before evaluating anything, so a bad query
	// in the middle cannot produce a half-answered 400.
	for i, q := range req.Queries {
		if err := query.Validate(q); err != nil {
			errorJSON(w, http.StatusBadRequest, CodeBadRequest, "query %d: %v", i, err)
			return
		}
	}
	st := s.resolveStream(w, name)
	if st == nil {
		return
	}
	cached, pending, ok := s.loadEstimateOrWindow(w, st, req.Window)
	if !ok {
		return
	}
	// Every query in the batch reads the same cached estimate, so the
	// answers are mutually consistent even under concurrent ingestion.
	qsp := spanOf(w).Child("query/eval").Attr("queries", fmt.Sprintf("%d", len(req.Queries)))
	qsp.SetStream(st.name)
	results := make([]query.Response, len(req.Queries))
	for i, q := range req.Queries {
		resp, err := query.Eval(cached.Distribution, cached.N, q)
		if err != nil {
			qsp.Fail(CodeBadRequest).End()
			errorJSON(w, http.StatusBadRequest, CodeBadRequest, "query %d: %v", i, err)
			return
		}
		results[i] = resp
	}
	qsp.End()
	writeJSON(w, BatchQueryResponse{
		Stream:         st.name,
		N:              cached.N,
		PendingReports: pending,
		Window:         cached.Window,
		Epochs:         cached.Epochs,
		Results:        results,
	})
}

// parseQueryParams maps GET /query URL parameters onto a query.Request:
// type (required), q (comma-separated points for quantile/cdf), lo/hi
// (range), k (topk).
func parseQueryParams(params url.Values) (query.Request, error) {
	req := query.Request{Type: query.Type(params.Get("type"))}
	if raw := params.Get("q"); raw != "" {
		for _, tok := range strings.Split(raw, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return req, fmt.Errorf("bad q value %q", tok)
			}
			req.Qs = append(req.Qs, v)
		}
	}
	var err error
	if req.Lo, err = parseFloatParam(params, "lo", 0); err != nil {
		return req, err
	}
	if req.Hi, err = parseFloatParam(params, "hi", 0); err != nil {
		return req, err
	}
	if raw := params.Get("k"); raw != "" {
		k, err := strconv.Atoi(raw)
		if err != nil {
			return req, fmt.Errorf("bad k value %q", raw)
		}
		req.K = k
	}
	return req, query.Validate(req)
}

func parseFloatParam(params url.Values, name string, def float64) (float64, error) {
	raw := params.Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return def, fmt.Errorf("bad %s value %q", name, raw)
	}
	return v, nil
}
