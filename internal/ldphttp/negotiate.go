package ldphttp

// Content-Type negotiation for the ingest surface. Every ingest endpoint
// (legacy /report and /batch, the v1 report/batch actions, and
// /federation/push) speaks two codecs: the JSON envelope (the default, and
// what an absent Content-Type means) and the compact binary frame of
// package wire / package federate under application/x-ldp-binary. A
// declared-but-unknown Content-Type is a 415 with the stable
// unsupported_media_type code — never silently parsed as JSON — and every
// accepted request increments ldp_codec_requests_total{endpoint, codec}.
// Responses are always JSON; the Accept header is advisory.

import (
	"errors"
	"io"
	"mime"
	"net/http"

	"repro/internal/wire"
)

// Codec labels carried by ldp_codec_requests_total.
const (
	codecJSON   = "json"
	codecBinary = "binary"
)

// negotiateCodec classifies the request's Content-Type for an ingest
// endpoint, answering 415 (and returning ok=false) for media types the
// endpoint does not speak. endpoint is the stable route template, the
// metrics label.
func (s *Server) negotiateCodec(w http.ResponseWriter, r *http.Request, endpoint string) (codec string, ok bool) {
	codec = codecJSON
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil {
			errorJSON(w, http.StatusUnsupportedMediaType, CodeUnsupportedMedia,
				"unparseable Content-Type %q (speak application/json or %s)", ct, wire.ContentType)
			return "", false
		}
		switch mt {
		case "application/json":
		case wire.ContentType:
			codec = codecBinary
		default:
			errorJSON(w, http.StatusUnsupportedMediaType, CodeUnsupportedMedia,
				"unsupported Content-Type %q (speak application/json or %s)", mt, wire.ContentType)
			return "", false
		}
	}
	if m := s.metrics; m != nil {
		m.codecSel.With(endpoint, codec).Inc()
	}
	if sw, isSW := w.(*statusWriter); isSW {
		sw.codec = codec
	}
	return codec, true
}

// readBinaryReports reads and decodes a binary (LDPR) request body into
// wire reports, writing the uniform envelope on failure — 413 when the
// admission body cap truncated the read, 400 for any malformed frame.
func readBinaryReports(w http.ResponseWriter, r *http.Request) ([]WireReport, bool) {
	dsp := spanOf(w).Child("decode").Attr("codec", codecBinary)
	defer dsp.End()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			dsp.Fail(CodeBodyTooLarge)
			errorJSON(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				"request body exceeds the %d-byte admission bound", tooBig.Limit)
			return nil, false
		}
		dsp.Fail(CodeBadRequest)
		errorJSON(w, http.StatusBadRequest, CodeBadRequest, "bad request: %v", err)
		return nil, false
	}
	raw, err := wire.DecodeReports(body)
	if err != nil {
		dsp.Fail(CodeBadRequest)
		errorJSON(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return nil, false
	}
	reports := make([]WireReport, len(raw))
	for i, rep := range raw {
		reports[i] = WireReport(rep)
	}
	return reports, true
}

// serveBinaryReport is the binary sibling of the JSON report cores: the
// frame is a batch; the report endpoints require exactly one.
func (s *Server) serveBinaryReport(w http.ResponseWriter, r *http.Request, name string) {
	reports, ok := readBinaryReports(w, r)
	if !ok {
		return
	}
	if len(reports) != 1 {
		errorJSON(w, http.StatusBadRequest, CodeBadRequest,
			"binary report frame carries %d reports; POST the frame to the batch endpoint", len(reports))
		return
	}
	s.serveReport(w, name, reports[0])
}

// serveBinaryBatch is the binary sibling of the JSON batch cores.
func (s *Server) serveBinaryBatch(w http.ResponseWriter, r *http.Request, name string) {
	reports, ok := readBinaryReports(w, r)
	if !ok {
		return
	}
	s.serveBatch(w, name, reports)
}
