package ldphttp

// Federation tier: edge collectors merging into a root over HTTP.
//
// The root side lives here — POST /federation/push validates an edge's
// delta payload (versioned, CRC-checked, fingerprint-carrying; see package
// federate), applies it atomically against the per-edge replay cursor, and
// merges every epoch delta into the matching live or sealed epoch of the
// target stream. GET /federation/peers exposes the per-edge high-water
// marks. The edge side is a federate.Pusher bound to this server through
// EnablePush: it gathers per-stream, per-epoch histogram snapshots, freezes
// deltas, and ships them on a jittered interval with exponential backoff.
//
// Consistency: push application and snapshot capture serialize on fedMu, so
// a snapshot's stream histograms and peer watermarks always agree — a root
// restored from its snapshot detects exactly the replays it must skip.
// Federated increments flow through the same striped histograms as direct
// reports, so the background engine's staleness accounting (published raw
// increments vs. current counts) covers them with no special casing: a push
// leaves pending_reports non-zero until the next engine pass re-estimates.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/federate"
	"repro/internal/snapshot"
	"repro/internal/window"
)

// peerState is the root-side cursor of one edge.
type peerState struct {
	edge     string
	lastSeq  int64
	lastCRC  string
	lastPush time.Time
	reports  uint64 // increments absorbed
	dropped  uint64 // increments dropped (epoch outside the root's window)
	// absorbed is the per-stream, per-epoch high-water mark of merged
	// increments — the audit trail GET /federation/peers serves.
	absorbed map[string]map[int]uint64
}

// PeerEpochInfo is one absorbed-count watermark of GET /federation/peers.
type PeerEpochInfo struct {
	Epoch int    `json:"epoch"`
	N     uint64 `json:"n"`
}

// PeerStreamInfo is the per-stream block of a peer row.
type PeerStreamInfo struct {
	Stream string `json:"stream"`
	// N sums the epochs' absorbed increments.
	N      uint64          `json:"n"`
	Epochs []PeerEpochInfo `json:"epochs,omitempty"`
}

// PeerInfo is one row of GET /federation/peers: everything the root knows
// about one edge. LastSeq is the replay high-water mark — a restarted edge
// resumes against it without double counting.
type PeerInfo struct {
	Edge     string           `json:"edge"`
	LastSeq  int64            `json:"last_seq"`
	LastPush string           `json:"last_push,omitempty"`
	Reports  uint64           `json:"reports"`
	Dropped  uint64           `json:"dropped,omitempty"`
	Streams  []PeerStreamInfo `json:"streams,omitempty"`
}

// Peers lists every edge that has pushed to this root, sorted by edge id.
func (s *Server) Peers() []PeerInfo {
	s.fedMu.Lock()
	defer s.fedMu.Unlock()
	out := make([]PeerInfo, 0, len(s.peers))
	for _, p := range s.peers {
		out = append(out, p.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Edge < out[j].Edge })
	return out
}

func (p *peerState) info() PeerInfo {
	info := PeerInfo{
		Edge:    p.edge,
		LastSeq: p.lastSeq,
		Reports: p.reports,
		Dropped: p.dropped,
	}
	if !p.lastPush.IsZero() {
		info.LastPush = p.lastPush.UTC().Format(time.RFC3339Nano)
	}
	names := make([]string, 0, len(p.absorbed))
	for name := range p.absorbed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		psi := PeerStreamInfo{Stream: name}
		epochs := make([]int, 0, len(p.absorbed[name]))
		for e := range p.absorbed[name] {
			epochs = append(epochs, e)
		}
		sort.Ints(epochs)
		for _, e := range epochs {
			n := p.absorbed[name][e]
			psi.Epochs = append(psi.Epochs, PeerEpochInfo{Epoch: e, N: n})
			psi.N += n
		}
		info.Streams = append(info.Streams, psi)
	}
	return info
}

func (s *Server) handleFederationPeers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, r, http.MethodGet)
		return
	}
	writeJSON(w, map[string]any{"peers": s.Peers()})
}

// maxPushBytes bounds a push payload (64 MiB holds thousands of dense
// 4096-bucket streams; anything bigger is hostile or misconfigured).
const maxPushBytes = 64 << 20

func (s *Server) handleFederationPush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, r, http.MethodPost)
		return
	}
	if !s.cfg.Federation.Accept {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusForbidden)
		writeJSONBody(w, federate.PushResponse{
			Error:  "this collector does not accept federation pushes (start it with -accept-federation)",
			Reason: federate.ReasonDisabled,
		})
		return
	}
	codec, ok := s.negotiateCodec(w, r, "/federation/push")
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPushBytes))
	if err != nil {
		errorJSON(w, http.StatusBadRequest, CodeBadRequest, "read push payload: %v", err)
		return
	}
	// The declared Content-Type picks the decoder; the body is never
	// sniffed here, so a mislabeled payload fails loudly instead of being
	// guessed at.
	decode := federate.DecodePush
	if codec == codecBinary {
		decode = federate.DecodePushBinary
	}
	push, err := decode(body)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if !snapshot.ValidName(push.Edge) {
		errorJSON(w, http.StatusBadRequest, CodeBadRequest,
			"invalid edge id %q (want 1-64 chars of [A-Za-z0-9._-])", push.Edge)
		return
	}
	// The per-edge admission tier sits after edge-id validation (so the key
	// space stays operator-controlled) and before the engine: a runaway edge
	// is shed here without touching cursors or histograms.
	if s.edgeLim != nil {
		if ok, retry := s.edgeLim.Allow(push.Edge); !ok {
			if m := s.metrics; m != nil {
				m.shed.With("/federation/push", "edge").Inc()
			}
			retryJSON(w, http.StatusTooManyRequests, CodeRateLimited, retry, nil,
				"edge %q is pushing faster than the root admits; retry in %v", push.Edge, retry)
			return
		}
	}

	asp := spanOf(w).Child("absorb").Attr("edge", push.Edge).Attr("seq", fmt.Sprintf("%d", push.Seq))
	s.fedMu.Lock()
	resp, status := s.applyPushLocked(push)
	s.fedMu.Unlock()
	switch {
	case resp.Applied:
		asp.Attr("reports", fmt.Sprintf("%d", resp.Reports))
	case resp.Duplicate:
		asp.Attr("duplicate", "true")
	default:
		code := resp.Reason
		if code == "" {
			code = CodeBadRequest
		}
		asp.Fail(code)
	}
	asp.End()
	if resp.Applied {
		// Mint link markers for the sampled edge ingest traces this push
		// carried: the edge's trace IDs become findable in the root's
		// flight recorder even though the reports arrive pre-aggregated.
		for _, id := range parseTraceLinks(r.Header.Get("X-LDP-Trace-Link")) {
			s.tracer.Link(id, "federation/absorb-link").Attr("edge", push.Edge).End()
		}
		s.wake() // the engine re-estimates the touched streams
	}
	if m := s.metrics; m != nil {
		switch {
		case resp.Duplicate:
			m.fedDuplicates.With(push.Edge).Inc()
		case resp.Applied:
			m.fedAbsorbed.With(push.Edge).Add(resp.Reports)
			var dropped uint64
			for _, sr := range resp.Streams {
				dropped += sr.DroppedN
			}
			if dropped > 0 {
				m.fedDropped.With(push.Edge).Add(dropped)
			}
		default:
			code := resp.Reason
			if code == "" {
				code = CodeBadRequest
			}
			m.fedRejects.With(push.Edge, code).Inc()
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSONBody(w, resp)
}

// applyPushLocked runs the replay-cursor state machine and, for an
// in-sequence push, validates every stream fingerprint before merging
// anything: a push is applied in full or not at all (epoch drops excepted —
// those are time-window misses, counted and reported, never a rejection).
// Caller holds fedMu.
func (s *Server) applyPushLocked(push federate.Push) (federate.PushResponse, int) {
	// A peer entry is registered only once a push from it applies: a
	// rejected or malformed push must not leave cursor state behind.
	peer := s.peers[push.Edge]
	if peer == nil {
		peer = &peerState{edge: push.Edge, absorbed: make(map[string]map[int]uint64)}
	}
	resp := federate.PushResponse{Seq: push.Seq, LastSeq: peer.lastSeq}
	switch {
	case push.Seq <= peer.lastSeq:
		// Replay of an already-applied sequence: skip, and prove which
		// payload was applied so the edge can fold (or detect divergence).
		resp.Duplicate = true
		if push.Seq == peer.lastSeq {
			resp.CRC = peer.lastCRC
		}
		return resp, http.StatusOK
	case push.Seq > peer.lastSeq+1:
		resp.Reason = federate.ReasonSeqGap
		resp.Error = fmt.Sprintf("push seq %d but the high-water mark for edge %q is %d",
			push.Seq, push.Edge, peer.lastSeq)
		return resp, http.StatusConflict
	}

	// Validate every stream first; nothing merges unless all of them fit.
	targets := make([]*stream, len(push.Streams))
	dense := make([][][]uint64, len(push.Streams))
	for i, sd := range push.Streams {
		st := s.lookup(sd.Stream)
		if st == nil {
			if !s.cfg.Federation.AutoDeclare {
				resp.Reason = federate.ReasonUnknownStream
				resp.Error = fmt.Sprintf("unknown stream %q (declare it, or start the root with auto-declaration)", sd.Stream)
				return resp, http.StatusConflict
			}
			var err error
			if st, err = s.autoDeclareStream(sd.Stream, sd.Fingerprint); err != nil {
				resp.Reason = federate.ReasonFingerprint
				resp.Error = fmt.Sprintf("auto-declare stream %q: %v", sd.Stream, err)
				return resp, http.StatusConflict
			}
		}
		if fp := s.fingerprintOf(st); !fp.Equal(sd.Fingerprint) {
			resp.Reason = federate.ReasonFingerprint
			resp.Error = fmt.Sprintf("stream %q fingerprint mismatch: edge has [%s], root has [%s]",
				sd.Stream, sd.Fingerprint, fp)
			return resp, http.StatusConflict
		}
		dense[i] = make([][]uint64, len(sd.Epochs))
		for j, d := range sd.Epochs {
			counts, err := d.Dense(st.histBuckets())
			if err != nil {
				resp.Error = fmt.Sprintf("stream %q: %v", sd.Stream, err)
				return resp, http.StatusBadRequest
			}
			if st.ring == nil && d.Epoch != 0 {
				resp.Error = fmt.Sprintf("stream %q is not windowed but the delta addresses epoch %d",
					sd.Stream, d.Epoch)
				return resp, http.StatusBadRequest
			}
			dense[i][j] = counts
		}
		targets[i] = st
	}

	// Merge. Rotation happens first (under the registry read-lock, exactly
	// like the engine) so a delta addressed at an epoch the root's clock
	// has reached but the engine has not yet sealed still lands correctly.
	for i, sd := range push.Streams {
		st := targets[i]
		if st.ring != nil {
			s.mu.RLock()
			rotated := st.ring.Advance(s.now())
			s.mu.RUnlock()
			if rotated > 0 {
				st.evictAgedWindows()
				st.mustRefresh.Store(true)
			}
		}
		result := federate.StreamResult{Stream: sd.Stream}
		for j, d := range sd.Epochs {
			if applied := st.applyEpochCounts(d.Epoch, dense[i][j]); !applied {
				result.DroppedEpochs = append(result.DroppedEpochs, d.Epoch)
				result.DroppedN += d.N
				peer.dropped += d.N
				continue
			}
			result.AppliedEpochs++
			result.N += d.N
			absorbed := peer.absorbed[sd.Stream]
			if absorbed == nil {
				absorbed = make(map[int]uint64)
				peer.absorbed[sd.Stream] = absorbed
			}
			absorbed[d.Epoch] += d.N
		}
		resp.Reports += result.N
		peer.reports += result.N
		resp.Streams = append(resp.Streams, result)
		s.pruneWatermarksLocked(st)
	}
	peer.lastSeq = push.Seq
	peer.lastCRC = push.CRC
	peer.lastPush = s.now()
	s.peers[push.Edge] = peer
	resp.Applied = true
	resp.LastSeq = push.Seq
	return resp, http.StatusOK
}

// applyEpochCounts merges one dense epoch delta into the stream's histogram:
// the matching live or sealed epoch of a windowed stream, the single
// histogram of a plain one. It reports false when the epoch is outside the
// root's window (aged out, or not started on the root's clock).
func (st *stream) applyEpochCounts(epoch int, counts []uint64) bool {
	if st.ring != nil {
		return st.ring.AddEpochCounts(epoch, counts) == nil
	}
	return st.counts.AddCounts(counts) == nil
}

// autoDeclareStream creates a stream from a pushed fingerprint. A windowed
// stream adopts the edge's epoch origin, so the root's epoch indexes mean
// the same wall-clock intervals as the pushing edge's — the alignment the
// index-keyed delta protocol requires.
func (s *Server) autoDeclareStream(name string, fp federate.Fingerprint) (*stream, error) {
	cfg := StreamConfig{
		Epsilon:   fp.Epsilon,
		Buckets:   fp.Buckets,
		Mechanism: fp.Mechanism,
		Bandwidth: fp.Bandwidth,
		Epoch:     Duration(fp.EpochNanos),
		Retain:    fp.Retain,
	}
	if err := s.CreateStream(name, cfg); err != nil {
		return nil, err
	}
	st := s.lookup(name)
	if st == nil {
		return nil, fmt.Errorf("ldphttp: stream %q vanished during auto-declaration", name)
	}
	if st.ring != nil && fp.EpochNanos > 0 {
		// Re-anchor the pristine ring on the edge's origin, fast-forwarded
		// to the epoch the root's clock is in now (the gap epochs never
		// existed here, so there is nothing to seal).
		origin := fp.EpochOriginNanos
		now := s.now().UnixNano()
		cur := 0
		if now > origin {
			cur = int((now - origin) / fp.EpochNanos)
		}
		if err := st.ring.Adopt(window.State{
			Epoch:   time.Duration(fp.EpochNanos),
			Retain:  st.cfg.Retain,
			Current: cur,
			Start:   time.Unix(0, origin+int64(cur)*fp.EpochNanos),
		}); err != nil {
			return nil, fmt.Errorf("ldphttp: align stream %q to edge epoch origin: %w", name, err)
		}
	}
	return st, nil
}

// fingerprintOf computes a stream's federation fingerprint. Bandwidth is the
// resolved effective value (mechanism params), not the declared one, so
// "declare 0 = optimal" and "declare the optimum explicitly" match. For a
// windowed stream the fingerprint also pins the epoch origin — the
// wall-clock instant of epoch 0, invariant under rotation — because
// index-keyed deltas are only meaningful between streams whose indexes name
// the same wall-clock intervals.
func (s *Server) fingerprintOf(st *stream) federate.Fingerprint {
	fp := federate.Fingerprint{
		Mechanism:     st.cfg.Mechanism,
		Epsilon:       st.cfg.Epsilon,
		Buckets:       st.cfg.Buckets,
		OutputBuckets: st.agg.OutputBuckets(),
		Bandwidth:     st.agg.Mechanism().Params().Bandwidth,
		EpochNanos:    int64(time.Duration(st.cfg.Epoch)),
		Retain:        st.cfg.Retain,
	}
	if st.ring != nil {
		cur, start := st.ring.Current()
		fp.EpochOriginNanos = start.UnixNano() - int64(cur)*fp.EpochNanos
	}
	return fp
}

// federationStates gathers every stream's per-epoch histogram for the edge
// pusher: plain streams present a single epoch 0; windowed streams present
// every retained sealed epoch plus the live one, keyed by global index.
func (s *Server) federationStates() []federate.StreamState {
	list := s.streamList()
	out := make([]federate.StreamState, 0, len(list))
	for _, st := range list {
		state := federate.StreamState{Name: st.name, Fingerprint: s.fingerprintOf(st)}
		if st.ring != nil {
			rs := st.ring.State()
			for _, ep := range rs.Sealed {
				state.Epochs = append(state.Epochs, federate.EpochCounts{Epoch: ep.Index, Counts: ep.Counts})
			}
			state.Epochs = append(state.Epochs, federate.EpochCounts{Epoch: rs.Current, Counts: rs.Live})
		} else {
			counts, n := st.counts.Snapshot(nil)
			ep := federate.EpochCounts{Epoch: 0}
			if n > 0 {
				ep.Counts = make([]uint64, len(counts))
				for b, c := range counts {
					ep.Counts[b] = uint64(c)
				}
			}
			state.Epochs = append(state.Epochs, ep)
		}
		out = append(out, state)
	}
	return out
}

// pruneWatermarksLocked drops absorbed-count entries for epochs that aged
// out of a windowed stream's retention — they can never be pushed again, so
// the audit map stays bounded by the ring size. Caller holds fedMu.
func (s *Server) pruneWatermarksLocked(st *stream) {
	if st.ring == nil {
		return
	}
	oldest := st.ring.Oldest()
	for _, peer := range s.peers {
		for epoch := range peer.absorbed[st.name] {
			if epoch < oldest {
				delete(peer.absorbed[st.name], epoch)
			}
		}
	}
}

// PushOptions configures this server's edge side: a background loop shipping
// delta pushes to a root collector.
type PushOptions struct {
	// URL is the root's base URL; Edge this collector's stable identity at
	// the root. Both required.
	URL  string
	Edge string
	// Interval is the push cadence (0 = 10s, jittered ±10%).
	Interval time.Duration
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// Persist is the write-ahead hook: called after a new delta payload is
	// frozen and before its first transmission (pass a SaveSnapshot
	// closure so a crash replays the identical bytes). Optional — without
	// it, an edge that crashes mid-push and restarts without a snapshot
	// re-ships from scratch, which the root's replay cursor still keeps
	// exact.
	Persist func() error
	// Binary freezes push payloads in the compact binary codec
	// (Content-Type application/x-ldp-binary) instead of JSON. A pending
	// payload restored from a snapshot keeps its original codec.
	Binary bool
	// Logf receives push-loop diagnostics (nil = silent).
	Logf func(format string, args ...any)
}

// EnablePush starts the edge side: a federate.Pusher shipping this server's
// streams to the root at opts.URL until Close. A cursor restored by an
// earlier LoadSnapshot is adopted, so the boot order "declare streams →
// restore snapshot → enable push" resumes the sequence exactly. EnablePush
// can be called at most once.
func (s *Server) EnablePush(opts PushOptions) error {
	if !snapshot.ValidName(opts.Edge) {
		return fmt.Errorf("ldphttp: invalid edge id %q (want 1-64 chars of [A-Za-z0-9._-])", opts.Edge)
	}
	s.fedMu.Lock()
	if s.pusher != nil {
		s.fedMu.Unlock()
		return fmt.Errorf("ldphttp: push already enabled")
	}
	tracker := federate.NewTracker()
	if s.restoredCursor != nil {
		if err := tracker.Restore(*s.restoredCursor); err != nil {
			s.fedMu.Unlock()
			return fmt.Errorf("ldphttp: restore push cursor: %w", err)
		}
		s.restoredCursor = nil
	}
	pusher, err := federate.NewPusher(federate.PusherConfig{
		URL:        opts.URL,
		Edge:       opts.Edge,
		Interval:   opts.Interval,
		HTTPClient: opts.HTTPClient,
		Gather:     s.federationStates,
		Persist:    opts.Persist,
		Binary:     opts.Binary,
		Logf:       opts.Logf,
		Tracer:     s.tracer,
		TraceLinks: s.drainTraceLinks,
	}, tracker)
	if err != nil {
		s.fedMu.Unlock()
		return err
	}
	s.tracker = tracker
	s.pusher = pusher
	s.fedMu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		pusher.Run(s.done)
	}()
	return nil
}

// PushNow performs one synchronous push attempt (tests, shutdown flush). It
// reports whether a payload was acknowledged; (false, nil) means there was
// nothing to ship.
func (s *Server) PushNow() (bool, error) {
	s.fedMu.Lock()
	pusher := s.pusher
	s.fedMu.Unlock()
	if pusher == nil {
		return false, fmt.Errorf("ldphttp: push not enabled")
	}
	return pusher.PushOnce()
}

// PushStatus reports the edge push loop's health (zero value when push is
// not enabled).
func (s *Server) PushStatus() federate.PusherStatus {
	s.fedMu.Lock()
	pusher := s.pusher
	s.fedMu.Unlock()
	if pusher == nil {
		return federate.PusherStatus{}
	}
	return pusher.Status()
}

// federationRecordLocked captures the federation block for a snapshot:
// peer cursors (root side) and the push cursor (edge side). Caller holds
// fedMu. Returns nil when there is nothing to persist.
func (s *Server) federationRecordLocked() *snapshot.Federation {
	var fed snapshot.Federation
	edges := make([]string, 0, len(s.peers))
	for edge := range s.peers {
		edges = append(edges, edge)
	}
	sort.Strings(edges)
	for _, edge := range edges {
		p := s.peers[edge]
		rec := snapshot.FederationPeer{
			Edge:    p.edge,
			LastSeq: p.lastSeq,
			LastCRC: p.lastCRC,
			Reports: p.reports,
			Dropped: p.dropped,
		}
		if !p.lastPush.IsZero() {
			rec.LastUnixNanos = p.lastPush.UnixNano()
		}
		names := make([]string, 0, len(p.absorbed))
		for name := range p.absorbed {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ps := snapshot.FederationPeerStream{Stream: name}
			epochs := make([]int, 0, len(p.absorbed[name]))
			for e := range p.absorbed[name] {
				epochs = append(epochs, e)
			}
			sort.Ints(epochs)
			for _, e := range epochs {
				ps.Epochs = append(ps.Epochs, snapshot.FederationEpochN{Epoch: e, N: p.absorbed[name][e]})
			}
			rec.Streams = append(rec.Streams, ps)
		}
		fed.Peers = append(fed.Peers, rec)
	}
	if s.tracker != nil {
		cs := s.tracker.State()
		fed.Push = &cs
	} else if s.restoredCursor != nil {
		// Loaded but never enabled: carry the cursor forward unchanged.
		cs := *s.restoredCursor
		fed.Push = &cs
	}
	if len(fed.Peers) == 0 && fed.Push == nil {
		return nil
	}
	return &fed
}

// restorePushCursorLocked installs a snapshot's edge push cursor into the
// tracker (or stashes it for a later EnablePush). Caller holds fedMu. It
// fails only against a tracker that has already acked pushes — LoadSnapshot
// runs it before merging any histogram precisely so that failure aborts the
// whole restore cleanly.
func (s *Server) restorePushCursorLocked(fed *snapshot.Federation) error {
	if fed == nil || fed.Push == nil {
		return nil
	}
	if s.tracker != nil {
		return s.tracker.Restore(*fed.Push)
	}
	cs := *fed.Push
	s.restoredCursor = &cs
	return nil
}

// restorePeersLocked installs a snapshot's root-side peer cursors. Caller
// holds fedMu (and the registry lock, per LoadSnapshot). The peer cursors
// replace any same-named live ones — the snapshot's histograms already
// include those peers' contributions, so keeping a newer in-memory cursor
// would desynchronize the two.
func (s *Server) restorePeersLocked(fed *snapshot.Federation) {
	if fed == nil {
		return
	}
	for _, rec := range fed.Peers {
		p := &peerState{
			edge:     rec.Edge,
			lastSeq:  rec.LastSeq,
			lastCRC:  rec.LastCRC,
			reports:  rec.Reports,
			dropped:  rec.Dropped,
			absorbed: make(map[string]map[int]uint64, len(rec.Streams)),
		}
		if rec.LastUnixNanos != 0 {
			p.lastPush = time.Unix(0, rec.LastUnixNanos)
		}
		for _, ps := range rec.Streams {
			m := make(map[int]uint64, len(ps.Epochs))
			for _, ep := range ps.Epochs {
				m[ep.Epoch] = ep.N
			}
			p.absorbed[ps.Stream] = m
		}
		s.peers[rec.Edge] = p
	}
}

// writeJSONBody encodes v without touching headers (the caller already wrote
// the status line).
func writeJSONBody(w http.ResponseWriter, v any) {
	json.NewEncoder(w).Encode(v)
}
