package ldphttp

// FuzzWireReport drives POST /report body parsing with hostile input: bare
// numbers, vectors, malformed JSON, NaN/Inf spellings, absurd shapes. The
// collector must never panic, must answer 200 or 400 (404 for unknown
// streams), and every non-200 must carry a JSON error body. The WireReport
// codec itself is round-tripped for any body that parses.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

var (
	fuzzOnce   sync.Once
	fuzzServer *Server
)

// fuzzHandler builds one shared collector with a scalar (sw), a fan-out
// (oue) and a pair-report (olh) stream, so the fuzzer reaches every
// Bucketize shape.
func fuzzHandler() http.Handler {
	fuzzOnce.Do(func() {
		fuzzServer = NewServer(Config{Epsilon: 1, Buckets: 32, RefreshInterval: time.Hour})
		for name, mech := range map[string]string{"oue": "oue", "olh": "olh", "grr": "grr"} {
			if err := fuzzServer.CreateStream(name, StreamConfig{Epsilon: 1, Buckets: 16, Mechanism: mech}); err != nil {
				panic(err)
			}
		}
	})
	return fuzzServer.Handler()
}

func FuzzWireReport(f *testing.F) {
	seeds := []string{
		`{"report": 0.5}`,
		`{"report": -0.1}`,
		`{"report": 1e999}`,
		`{"report": "NaN"}`,
		`{"report": [3, 17, 40]}`,
		`{"stream": "oue", "report": [0, 15, 16]}`,
		`{"stream": "oue", "report": []}`,
		`{"stream": "olh", "report": [9007199254740993, 3]}`,
		`{"stream": "olh", "report": [1.5, -2]}`,
		`{"stream": "grr", "report": 7}`,
		`{"stream": "grr", "report": -1}`,
		`{"stream": "nope", "report": 0.5}`,
		`{"report": [1e308, 1e308]}`,
		`{"report": {"a": 1}}`,
		`{"report":`,
		`[]`,
		`null`,
		``,
		`{"stream": 3, "report": 0.5}`,
		`{"report": [null]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	handler := fuzzHandler()
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/report", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound:
		default:
			t.Fatalf("POST /report %q answered %d", body, rec.Code)
		}
		if rec.Code != http.StatusOK {
			var e struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error.Code == "" || e.Error.Message == "" {
				t.Fatalf("POST /report %q: %d without a JSON error envelope: %s", body, rec.Code, rec.Body.Bytes())
			}
		}

		// Codec round-trip: any report that unmarshals must re-marshal to
		// JSON that unmarshals to the same report.
		var req2 reportRequest
		if err := json.Unmarshal(body, &req2); err == nil && req2.Report != nil {
			blob, err := json.Marshal(req2.Report)
			if err != nil {
				t.Fatalf("report %v does not re-marshal: %v", req2.Report, err)
			}
			var again WireReport
			if err := json.Unmarshal(blob, &again); err != nil {
				t.Fatalf("re-marshaled report %s does not parse: %v", blob, err)
			}
			if len(again) != len(req2.Report) {
				t.Fatalf("round trip changed arity: %v -> %v", req2.Report, again)
			}
			for i := range again {
				// NaN never survives json.Marshal, so elements compare
				// directly.
				if again[i] != req2.Report[i] {
					t.Fatalf("round trip changed element %d: %v -> %v", i, req2.Report, again)
				}
			}
		}
	})
}
