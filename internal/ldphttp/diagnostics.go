package ldphttp

// Estimate-quality serving surface: GET /v1/streams/{name}/diagnostics
// returns one stream's full quality record — EM convergence trajectory,
// analytic confidence interval, warm-start effectiveness, and (for windowed
// streams) epoch-over-epoch drift scores with the alert state — and GET
// /v1/diagnostics the fleet-wide view with filters. The records themselves
// are accumulated by the refresh engine (diagnose.Tracker), so serving a
// diagnostic is a lock-snapshot and a JSON encode, never a reconstruction.

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/diagnose"
	"repro/internal/window"
)

// StreamDiagnostics is the body of GET /v1/streams/{name}/diagnostics and
// one row of GET /v1/diagnostics: the stream's identity, its live ingest
// state, and the embedded quality record.
type StreamDiagnostics struct {
	Stream    string  `json:"stream"`
	Mechanism string  `json:"mechanism"`
	Epsilon   float64 `json:"epsilon"`
	Buckets   int     `json:"buckets"`
	// Users is the report (user) count currently visible to estimates;
	// PendingReports the increments ingested after the published estimate.
	Users          int `json:"users"`
	PendingReports int `json:"pending_reports"`
	// LastRefreshAgeSeconds is the age of the published estimate, -1 until
	// the first refresh publishes one.
	LastRefreshAgeSeconds float64 `json:"last_refresh_age_seconds"`
	diagnose.Record
	// Window carries the epoch-rotation state of a windowed stream.
	Window *WindowInfo `json:"window,omitempty"`
}

// FleetDiagnostics is the body of GET /v1/diagnostics.
type FleetDiagnostics struct {
	Streams []StreamDiagnostics `json:"streams"`
}

// streamDiagnostics assembles one stream's diagnostics row.
func (s *Server) streamDiagnostics(st *stream) StreamDiagnostics {
	users := st.users()
	pending := st.reports() - int(st.published.Load())
	if pending < 0 {
		pending = 0
	}
	age := -1.0
	if lr := st.lastRefresh.Load(); lr > 0 {
		age = time.Since(time.Unix(0, lr)).Seconds()
	}
	return StreamDiagnostics{
		Stream:                st.name,
		Mechanism:             st.cfg.Mechanism,
		Epsilon:               st.cfg.Epsilon,
		Buckets:               st.cfg.Buckets,
		Users:                 users,
		PendingReports:        pending,
		LastRefreshAgeSeconds: age,
		Record:                st.diag.Snapshot(users),
		Window:                st.windowInfo(),
	}
}

// windowInfo snapshots the epoch-rotation state, nil for unwindowed streams.
func (st *stream) windowInfo() *WindowInfo {
	if st.ring == nil {
		return nil
	}
	cur, _ := st.ring.Current()
	return &WindowInfo{
		Epoch:        st.cfg.Epoch,
		Retain:       st.cfg.Retain,
		CurrentEpoch: cur,
		OldestEpoch:  st.ring.Oldest(),
		SealedEpochs: st.ring.SealedLen(),
		LiveN:        st.ring.LiveN(),
	}
}

// serveStreamDiagnostics answers GET /v1/streams/{name}/diagnostics.
func (s *Server) serveStreamDiagnostics(w http.ResponseWriter, name string) {
	st := s.resolveStream(w, name)
	if st == nil {
		return
	}
	writeJSON(w, s.streamDiagnostics(st))
}

// handleFleetDiagnostics answers GET /v1/diagnostics: every stream's row in
// declaration order, optionally filtered by ?stream= (exact name),
// ?mechanism=, and ?alerting=true|false (drift alert state).
func (s *Server) handleFleetDiagnostics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, r, http.MethodGet)
		return
	}
	q := r.URL.Query()
	var alerting *bool
	if v := q.Get("alerting"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			errorJSON(w, http.StatusBadRequest, CodeBadRequest,
				"bad alerting filter %q (want true or false)", v)
			return
		}
		alerting = &b
	}
	nameF, mechF := q.Get("stream"), q.Get("mechanism")
	out := []StreamDiagnostics{}
	for _, st := range s.streamList() {
		if nameF != "" && st.name != nameF {
			continue
		}
		if mechF != "" && st.cfg.Mechanism != mechF {
			continue
		}
		if alerting != nil && st.diag.Alerting() != *alerting {
			continue
		}
		out = append(out, s.streamDiagnostics(st))
	}
	writeJSON(w, FleetDiagnostics{Streams: out})
}

// scoreSealedEpoch reconstructs the epoch that rotation just sealed and
// feeds its lone estimate to the stream's drift tracker. Refresh workers
// only, busy held: the EM workspace and driftScratch are exclusively ours,
// and the main refresh that follows passes its own warm start explicitly,
// so borrowing the workspace here is safe. The sealed epoch is warm-started
// from the previous sealed estimate (falling back to the stream's rolling
// init), which keeps the extra reconstruction a few iterations in steady
// state.
func (s *Server) scoreSealedEpoch(st *stream, rotated int) {
	cur, _ := st.ring.Current()
	sealed := cur - rotated
	if sealed < st.ring.Oldest() {
		return // rotated straight out of retention: nothing to score
	}
	var n int
	var err error
	st.driftScratch, n, err = st.ring.Merge(window.Range{Lo: sealed, Hi: sealed}, st.driftScratch)
	if err != nil || n == 0 {
		return
	}
	init := st.diag.LastEpochEstimate()
	if len(init) == 0 {
		init = st.init
	}
	if len(init) == 0 {
		init = nil
	}
	res := st.agg.EstimateInto(&st.ws, st.driftScratch, init)
	w1, ks, scored, raised := st.diag.ObserveEpoch(sealed, res.Estimate)
	if raised && st.mDriftAlerts != nil {
		st.mDriftAlerts.Inc()
	}
	if scored {
		if st.mDriftW1 != nil {
			st.mDriftW1.Set(w1)
		}
		if st.mDriftKS != nil {
			st.mDriftKS.Set(ks)
		}
	}
}
